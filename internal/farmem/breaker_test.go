package farmem

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// toggleStore injects failures under a flag that tests flip to simulate
// a far tier dying and coming back. The mutex makes the flag safe to
// flip while the breaker's prober goroutine is pinging.
type toggleStore struct {
	inner   Store
	mu      sync.Mutex
	failing bool
}

func (s *toggleStore) setFailing(f bool) {
	s.mu.Lock()
	s.failing = f
	s.mu.Unlock()
}

func (s *toggleStore) down() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failing
}

func (s *toggleStore) ReadObj(ds, idx int, dst []byte) error {
	if s.down() {
		return errInjected
	}
	return s.inner.ReadObj(ds, idx, dst)
}

func (s *toggleStore) WriteObj(ds, idx int, src []byte) error {
	if s.down() {
		return errInjected
	}
	return s.inner.WriteObj(ds, idx, src)
}

// pingToggleStore adds the Pinger probe surface.
type pingToggleStore struct {
	*toggleStore
}

func (s *pingToggleStore) Ping() error {
	if s.down() {
		return errInjected
	}
	return nil
}

// writeWorkingSet dirties objects 0..n-1 (value 1000+i), forcing
// evictions when n exceeds the resident budget.
func writeWorkingSet(t *testing.T, r *Runtime, addr uint64, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		p, err := r.Guard(addr+uint64(i*4096), true)
		if err != nil {
			t.Fatalf("write obj %d: %v", i, err)
		}
		r.WriteWord(p, uint64(1000+i))
	}
}

func breakerRuntime(t *testing.T, store Store, probe time.Duration) (*Runtime, uint64) {
	t.Helper()
	r := New(Config{
		PinnedBudget:     1 << 20,
		RemotableBudget:  2 * 4096,
		Store:            store,
		BreakerThreshold: 2,
		BreakerProbe:     probe,
	})
	t.Cleanup(func() { r.Close() })
	if _, err := r.RegisterDS(0, DSMeta{Name: "d", ObjSize: 4096}); err != nil {
		t.Fatal(err)
	}
	r.SetPlacement(0, PlaceRemotable)
	addr, err := r.DSAlloc(0, 8*4096)
	if err != nil {
		t.Fatal(err)
	}
	return r, addr
}

func TestStoreRetryHealsTransientFaults(t *testing.T) {
	// Each op fails twice then succeeds; RetryMax 3 rides through.
	r := New(Config{
		PinnedBudget:    1 << 20,
		RemotableBudget: 2 * 4096,
		Store:           &flaky{inner: NewMapStore(), failFirst: 2},
		RetryMax:        3,
	})
	r.RegisterDS(0, DSMeta{ObjSize: 4096})
	r.SetPlacement(0, PlaceRemotable)
	addr, _ := r.DSAlloc(0, 8*4096)
	writeWorkingSet(t, r, addr, 6)
	if _, err := r.Guard(addr, false); err != nil {
		t.Fatalf("retries should heal the flaky store: %v", err)
	}
	if r.Stats().StoreRetries == 0 {
		t.Fatal("expected StoreRetries > 0")
	}
	if r.Link().Retries == 0 {
		t.Fatal("expected link retry charges")
	}
}

// flaky fails failFirst out of every failFirst+1 store calls, so any op
// with at least failFirst retries eventually lands.
type flaky struct {
	inner     Store
	failFirst int
	calls     int
}

func (f *flaky) ReadObj(ds, idx int, dst []byte) error {
	return f.call(func() error { return f.inner.ReadObj(ds, idx, dst) })
}

func (f *flaky) WriteObj(ds, idx int, src []byte) error {
	return f.call(func() error { return f.inner.WriteObj(ds, idx, src) })
}

func (f *flaky) call(op func() error) error {
	f.calls++
	if f.calls%(f.failFirst+1) != 0 {
		return errInjected
	}
	return op()
}

func TestBreakerTripsAndDegrades(t *testing.T) {
	ts := &toggleStore{inner: NewMapStore()}
	r, addr := breakerRuntime(t, ts, time.Hour) // probe never fires
	writeWorkingSet(t, r, addr, 6)              // objs 4,5 resident dirty; 0..3 remote
	ts.setFailing(true)

	// Two consecutive failures trip the breaker (threshold 2).
	for i := 0; i < 2; i++ {
		if _, err := r.Guard(addr, false); err == nil {
			t.Fatal("expected failure while store is down")
		}
	}
	if got := r.Stats().BreakerTrips; got != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", got)
	}
	if r.BreakerState() != BreakerOpen {
		t.Fatalf("state = %v, want open", r.BreakerState())
	}

	// Remote derefs now fail fast with ErrDegraded...
	fetchesBefore := r.Stats().RemoteFetches
	if _, err := r.Guard(addr, false); !errors.Is(err, ErrDegraded) {
		t.Fatalf("err = %v, want ErrDegraded", err)
	}
	if r.Stats().RemoteFetches != fetchesBefore {
		t.Fatal("degraded deref must not attempt a fetch")
	}
	if r.Stats().DegradedOps == 0 {
		t.Fatal("expected DegradedOps > 0")
	}

	// ...while resident objects keep serving.
	p, err := r.Guard(addr+5*4096, false)
	if err != nil {
		t.Fatalf("resident deref while degraded: %v", err)
	}
	if v, _ := r.ReadWord(p); v != 1005 {
		t.Fatalf("resident value = %d, want 1005", v)
	}

	// New (uninit) objects materialize by growing the budget past its
	// configured size instead of evicting the dirty residents.
	if _, err := r.Guard(addr+6*4096, true); err != nil {
		t.Fatalf("materialize while degraded: %v", err)
	}
	if _, err := r.Guard(addr+7*4096, true); err != nil {
		t.Fatalf("materialize while degraded: %v", err)
	}
	if r.RemotableUsed() <= 2*4096 {
		t.Fatalf("remotable used = %d, want growth beyond the 8192 budget", r.RemotableUsed())
	}
	for i := 4; i <= 7; i++ {
		if st := r.DSByID(0).objs[i].state; st != objLocal {
			t.Fatalf("obj %d state = %v, want local (dirty residents pinned)", i, st)
		}
	}
}

func TestBreakerRecoveryViaProberDrainsDirty(t *testing.T) {
	ts := &pingToggleStore{&toggleStore{inner: NewMapStore()}}
	r, addr := breakerRuntime(t, ts, 2*time.Millisecond)
	writeWorkingSet(t, r, addr, 6)
	ts.setFailing(true)
	for i := 0; i < 2; i++ {
		r.Guard(addr, false)
	}
	if r.BreakerState() != BreakerOpen {
		t.Fatal("breaker should be open")
	}

	// Heal the store; the prober should arm half-open shortly.
	ts.setFailing(false)
	deadline := time.Now().Add(2 * time.Second)
	for r.BreakerState() == BreakerOpen {
		if time.Now().After(deadline) {
			t.Fatal("prober never armed half-open")
		}
		time.Sleep(time.Millisecond)
	}

	// The next remote deref is the trial: it must close the breaker,
	// drain the dirty residents, and restore the budget.
	p, err := r.Guard(addr, false)
	if err != nil {
		t.Fatalf("trial deref: %v", err)
	}
	if v, _ := r.ReadWord(p); v != 1000 {
		t.Fatalf("recovered value = %d, want 1000", v)
	}
	st := r.Stats()
	if st.BreakerRecoveries != 1 {
		t.Fatalf("BreakerRecoveries = %d, want 1", st.BreakerRecoveries)
	}
	if st.DrainedWriteBacks == 0 {
		t.Fatal("expected dirty residents drained on recovery")
	}
	if r.remotableBudget != r.baseRemotableBudget {
		t.Fatalf("budget not restored: %d != %d", r.remotableBudget, r.baseRemotableBudget)
	}
	// The whole working set must read back intact after the outage.
	for i := 0; i < 6; i++ {
		p, err := r.Guard(addr+uint64(i*4096), false)
		if err != nil {
			t.Fatalf("post-recovery read %d: %v", i, err)
		}
		if v, _ := r.ReadWord(p); v != uint64(1000+i) {
			t.Fatalf("obj %d = %d, want %d", i, v, 1000+i)
		}
	}
}

func TestBreakerHalfOpenByElapsedTimeWithoutPinger(t *testing.T) {
	ts := &toggleStore{inner: NewMapStore()} // no Ping method
	r, addr := breakerRuntime(t, ts, 5*time.Millisecond)
	writeWorkingSet(t, r, addr, 6)
	ts.setFailing(true)
	for i := 0; i < 2; i++ {
		r.Guard(addr, false)
	}
	if r.BreakerState() != BreakerOpen {
		t.Fatal("breaker should be open")
	}
	if _, err := r.Guard(addr, false); !errors.Is(err, ErrDegraded) {
		t.Fatalf("err = %v, want ErrDegraded before probe window", err)
	}

	ts.setFailing(false)
	time.Sleep(10 * time.Millisecond)
	// gate self-arms half-open after probeEvery; this deref is the trial.
	if _, err := r.Guard(addr, false); err != nil {
		t.Fatalf("trial deref after elapsed probe window: %v", err)
	}
	if r.Stats().BreakerRecoveries != 1 {
		t.Fatalf("BreakerRecoveries = %d, want 1", r.Stats().BreakerRecoveries)
	}
}

func TestBreakerHalfOpenTrialFailureReopens(t *testing.T) {
	ts := &toggleStore{inner: NewMapStore()}
	r, addr := breakerRuntime(t, ts, 5*time.Millisecond)
	writeWorkingSet(t, r, addr, 6)
	ts.setFailing(true)
	for i := 0; i < 2; i++ {
		r.Guard(addr, false)
	}
	time.Sleep(10 * time.Millisecond)
	// Probe window elapsed but the store is still down: the trial fails
	// and the breaker re-opens without another trip being counted.
	if _, err := r.Guard(addr, false); err == nil || errors.Is(err, ErrDegraded) {
		t.Fatalf("trial should fail with the store error, got %v", err)
	}
	if r.BreakerState() != BreakerOpen {
		t.Fatalf("state = %v, want re-opened", r.BreakerState())
	}
	if got := r.Stats().BreakerTrips; got != 1 {
		t.Fatalf("BreakerTrips = %d, want 1 (re-open is not a new trip)", got)
	}
}

func TestDegradedDerefDoesNotLeakBudget(t *testing.T) {
	// A failed remote read must hand its frame back — otherwise every
	// faulted deref under an outage erodes the remotable budget.
	ts := &toggleStore{inner: NewMapStore()}
	r, addr := breakerRuntime(t, ts, time.Hour)
	writeWorkingSet(t, r, addr, 6)
	used := r.RemotableUsed()
	ts.setFailing(true)
	for i := 0; i < 10; i++ {
		r.Guard(addr, false) // store errors, then ErrDegraded
	}
	if r.RemotableUsed() != used {
		t.Fatalf("remotable used %d -> %d: failed fetches leaked frames", used, r.RemotableUsed())
	}
}
