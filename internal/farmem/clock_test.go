package farmem

import "testing"

// TestRemoveRingEntryHandFollowsSwappedTail pins the swap-delete hand
// semantics: when the hand points at the tail entry and a removal at an
// earlier position swaps that tail entry forward, the hand must follow
// it to the new position — otherwise the moved entry silently loses its
// turn for a full CLOCK lap.
func TestRemoveRingEntryHandFollowsSwappedTail(t *testing.T) {
	r := New(Config{})
	d, _ := r.RegisterDS(0, DSMeta{ObjSize: 64})

	reset := func(hand int) {
		r.ring = []clockEntry{{d, 0, 0}, {d, 1, 0}, {d, 2, 0}, {d, 3, 0}}
		r.hand = hand
	}

	// Hand on the tail, removal earlier: hand follows the moved entry.
	reset(3)
	r.removeRingEntry(1)
	if r.hand != 1 {
		t.Fatalf("hand = %d after tail swap to pos 1, want 1", r.hand)
	}
	if r.ring[1].idx != 3 {
		t.Fatalf("ring[1].idx = %d, want 3 (swapped tail)", r.ring[1].idx)
	}

	// Hand on the tail, removing the tail itself: wrap to 0.
	reset(3)
	r.removeRingEntry(3)
	if r.hand != 0 {
		t.Fatalf("hand = %d after removing the tail under the hand, want 0", r.hand)
	}

	// Hand past the ring (post-increment state): wrap to 0.
	reset(4)
	r.removeRingEntry(0)
	if r.hand != 0 {
		t.Fatalf("hand = %d with hand past the ring, want 0", r.hand)
	}

	// Hand before the removal point: untouched.
	reset(1)
	r.removeRingEntry(2)
	if r.hand != 1 {
		t.Fatalf("hand = %d with hand before removal, want 1", r.hand)
	}
}

// TestClockOrderPreservedAcrossFallbackEviction is the end-to-end
// regression: a deref-scope fallback eviction removes a ring entry
// while the hand rests on the tail. The swapped-forward tail entry must
// be the next scanned (and, with its reference bit clear, the next
// victim); the pre-fix code skipped it and evicted the wrong object.
func TestClockOrderPreservedAcrossFallbackEviction(t *testing.T) {
	const obj = 64
	r := New(Config{PinnedBudget: 1 << 16, RemotableBudget: 4 * obj})
	r.RegisterDS(0, DSMeta{ObjSize: obj})
	r.SetPlacement(0, PlaceRemotable)
	addr, err := r.DSAlloc(0, 4*obj)
	if err != nil {
		t.Fatal(err)
	}
	d := r.DSByID(0)

	// Localize 0,1,2,3 (ring order), then re-touch 0,2,3 so object 1 is
	// the least recently used while everything stays inside the
	// deref-scope window — forcing the fallback eviction path.
	for _, i := range []int{0, 1, 2, 3, 0, 2, 3} {
		if _, err := r.Guard(addr+uint64(i*obj), true); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(r.ring); n != 4 {
		t.Fatalf("ring has %d entries, want 4", n)
	}

	// Park the hand so the scan ends exactly on the tail entry: from
	// start position 2, the 3*len+1 = 13 protected steps leave hand = 3.
	r.hand = 2
	if err := r.evictOne(); err != nil {
		t.Fatal(err)
	}
	if d.objs[1].state != objRemote {
		t.Fatalf("fallback eviction took obj state %v, want obj 1 (LRU) evicted", d.objs[1].state)
	}
	if r.hand != 1 {
		t.Fatalf("hand = %d after tail entry swapped to pos 1, want 1", r.hand)
	}

	// Age everything out of the deref-scope window and clear second
	// chances (the fallback scan already consumed them). The next victim
	// must be the swapped tail entry — object 3 — not object 0, which the
	// pre-fix hand (wrapped to 0) would have scanned first.
	r.accessSeq += 100
	if err := r.evictOne(); err != nil {
		t.Fatal(err)
	}
	if d.objs[3].state != objRemote {
		t.Fatalf("post-swap eviction skipped the moved tail entry (obj 3 state %v)", d.objs[3].state)
	}
	if d.objs[0].state != objLocal {
		t.Fatal("obj 0 evicted out of turn: CLOCK order perturbed by swap-delete")
	}
}
