package farmem

import (
	"fmt"
	"io"

	"cards/internal/obs"
)

// EventKind classifies runtime events for tracing.
type EventKind uint8

// Trace event kinds.
const (
	// EvFetch: a demand miss fetched an object from the far tier.
	EvFetch EventKind = iota + 1
	// EvPrefetch: an asynchronous prefetch was issued.
	EvPrefetch
	// EvPrefetchHit: a demand access consumed an in-flight prefetch.
	EvPrefetchHit
	// EvEvict: an object was evicted (Dirty reports a write-back).
	EvEvict
	// EvSpill: the runtime overrode a pinned hint (structure remoted).
	EvSpill
	// EvMaterialize: first touch of an uninitialized object.
	EvMaterialize
	// EvBreakerTrip: the circuit breaker opened after consecutive
	// remote-tier failures; the runtime degrades to local memory.
	EvBreakerTrip
	// EvBreakerRecover: a probe succeeded; remoting resumed and dirty
	// objects were drained back to the far tier.
	EvBreakerRecover
)

func (k EventKind) String() string {
	switch k {
	case EvFetch:
		return "fetch"
	case EvPrefetch:
		return "prefetch"
	case EvPrefetchHit:
		return "prefetch-hit"
	case EvEvict:
		return "evict"
	case EvSpill:
		return "spill"
	case EvMaterialize:
		return "materialize"
	case EvBreakerTrip:
		return "breaker-trip"
	case EvBreakerRecover:
		return "breaker-recover"
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one traced runtime occurrence.
type Event struct {
	Cycle uint64
	Kind  EventKind
	DS    int
	Obj   int
	Dirty bool
}

// String renders the event in the one-line trace format.
func (e Event) String() string {
	s := fmt.Sprintf("%12d %-13s ds%-3d obj%-6d", e.Cycle, e.Kind, e.DS, e.Obj)
	if e.Dirty {
		s += " dirty"
	}
	return s
}

// EventHook receives trace events synchronously on the runtime's
// single thread. Install with SetEventHook; nil disables the hook.
// The hook must not call back into the runtime.
//
// The hook is the legacy single-subscriber path; the obs.Tracer passed
// via Config.Tracer receives the same events into a bounded ring with
// multiple-subscriber fan-out and Chrome-trace export.
type EventHook func(Event)

// SetEventHook installs (or clears) the trace hook.
func (r *Runtime) SetEventHook(h EventHook) {
	r.hook = h
	r.tracing = r.hook != nil || r.tracer != nil
}

// SetTracer installs (or clears) the ring tracer after construction.
func (r *Runtime) SetTracer(t *obs.Tracer) {
	r.tracer = t
	r.tracing = r.hook != nil || r.tracer != nil
}

// emit delivers an instant event at the current virtual time. The
// single-bool guard (rather than checking hook and tracer separately)
// keeps emit and emitSpan under the inlining budget, so call sites on
// the fault path pay one predictable branch when tracing is off.
func (r *Runtime) emit(kind EventKind, ds, obj int, dirty bool) {
	if !r.tracing {
		return
	}
	r.deliver(kind, ds, obj, dirty, r.clock.Now(), 0)
}

// emitSpan delivers an event covering [start, now] in virtual time —
// the fetch/prefetch-wait/evict latencies the trace viewer shows as
// horizontal bars.
func (r *Runtime) emitSpan(kind EventKind, ds, obj int, dirty bool, start uint64) {
	if !r.tracing {
		return
	}
	r.deliver(kind, ds, obj, dirty, start, r.clock.Now()-start)
}

func (r *Runtime) deliver(kind EventKind, ds, obj int, dirty bool, start, dur uint64) {
	if r.hook != nil {
		r.hook(Event{Cycle: start + dur, Kind: kind, DS: ds, Obj: obj, Dirty: dirty})
	}
	if r.tracer != nil {
		d := int64(0)
		if dirty {
			d = 1
		}
		r.tracer.Emit(obs.TraceEvent{
			TS:       start / cyclesPerMicro,
			Dur:      dur / cyclesPerMicro,
			Cat:      "farmem",
			Name:     kind.String(),
			TID:      ds,
			Trace:    r.curTrace,
			Arg1Name: "obj", Arg1: int64(obj),
			Arg2Name: "dirty", Arg2: d,
		})
	}
}

// beginRoot opens a distributed root span context if a hub is
// configured and no root is already open. Transports sharing the hub
// pick the context up synchronously (the runtime is single-threaded,
// so every enqueue below the caller runs inside the window) and carry
// it across the wire; runtime events emitted inside the window are
// labeled with the sampled trace ID. Nested causes — a prefetch issued
// while handling a miss, an eviction write-back triggered by a
// prefetch's frame allocation — join the enclosing root, which is what
// makes the exported span tree causal rather than flat. Returns true
// when this call opened the root; pass that to endRoot.
func (r *Runtime) beginRoot() bool {
	if r.hub == nil || r.rootActive {
		return false
	}
	ctx := r.hub.StartTrace()
	r.hub.SetActive(ctx)
	r.rootActive = true
	if ctx.Sampled {
		r.curTrace = ctx.TraceID
	}
	return true
}

// endRoot closes the root span window opened by the beginRoot call
// that returned mine=true; a no-op otherwise.
func (r *Runtime) endRoot(mine bool) {
	if !mine {
		return
	}
	r.hub.ClearActive()
	r.rootActive = false
	r.curTrace = 0
}

// TraceWriter returns an EventHook that renders each event to w, one
// line per event — handy for piping a run's far-memory behaviour into a
// file for inspection.
func TraceWriter(w io.Writer) EventHook {
	return func(e Event) { fmt.Fprintln(w, e) }
}

// EventCounter tallies events by kind; a convenient hook for tests and
// summaries.
type EventCounter struct {
	Counts map[EventKind]int
}

// NewEventCounter creates an empty counter.
func NewEventCounter() *EventCounter {
	return &EventCounter{Counts: make(map[EventKind]int)}
}

// Hook returns the EventHook that feeds the counter.
func (c *EventCounter) Hook() EventHook {
	return func(e Event) { c.Counts[e.Kind]++ }
}
