package farmem

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// slowStore is a fake AsyncStore: IssueRead returns immediately and the
// completion is delivered from another goroutine after `delay` — the
// shape of the pipelined TCP client, with a controllable RTT.
type slowStore struct {
	*MapStore
	delay time.Duration

	mu      sync.Mutex
	issued  int
	failIdx int // idx whose async read fails (-1: never)
}

func newSlowStore(delay time.Duration) *slowStore {
	return &slowStore{MapStore: NewMapStore(), delay: delay, failIdx: -1}
}

func (s *slowStore) IssueRead(ds, idx int, dst []byte, done func(error)) {
	s.mu.Lock()
	s.issued++
	fail := idx == s.failIdx
	s.mu.Unlock()
	go func() {
		time.Sleep(s.delay)
		if fail {
			done(errors.New("injected async failure"))
			return
		}
		done(s.ReadObj(ds, idx, dst))
	}()
}

func (s *slowStore) issuedReads() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.issued
}

// remoteFill registers DS 0 with nObjs objects of objSize, writes
// distinct first words through guards, and evicts everything to the
// store by shrinking the working set walk. Returns the base address.
func remoteFill(t *testing.T, r *Runtime, objSize, nObjs int) uint64 {
	t.Helper()
	r.RegisterDS(0, DSMeta{ObjSize: objSize})
	r.SetPlacement(0, PlaceRemotable)
	addr, err := r.DSAlloc(0, int64(nObjs*objSize))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nObjs; i++ {
		p, err := r.Guard(addr+uint64(i*objSize), true)
		if err != nil {
			t.Fatal(err)
		}
		r.WriteWord(p, uint64(1000+i))
	}
	return addr
}

func TestAsyncStoreDetected(t *testing.T) {
	if r := New(Config{Store: NewMapStore()}); r.astore != nil {
		t.Fatal("MapStore must not be detected as async")
	}
	if r := New(Config{Store: newSlowStore(0)}); r.astore == nil {
		t.Fatal("slowStore should be detected as async")
	}
}

// TestPrefetchIssueDoesNotBlock is the acceptance test: K prefetches
// against a delayed store must issue in far less than K*RTT — the old
// synchronous path paid the full delay per prefetch.
func TestPrefetchIssueDoesNotBlock(t *testing.T) {
	const (
		obj = 512
		k   = 8
		rtt = 50 * time.Millisecond
	)
	store := newSlowStore(rtt)
	// Budget holds 4k objects; walking 16k writes evicts the early ones
	// to the store, leaving plenty remote to prefetch.
	r := New(Config{
		PinnedBudget: 1 << 20, RemotableBudget: uint64(4 * k * obj),
		Store: store, MaxInflight: k,
	})
	addr := remoteFill(t, r, obj, 16*k)
	d := r.DSByID(0)

	var idxs []int
	for i := range d.objs {
		if d.objs[i].state == objRemote {
			idxs = append(idxs, i)
			if len(idxs) == k {
				break
			}
		}
	}
	if len(idxs) < k {
		t.Fatalf("only %d remote objects", len(idxs))
	}

	start := time.Now()
	for _, idx := range idxs {
		r.PrefetchObj(d, idx)
	}
	issueTime := time.Since(start)
	if got := store.issuedReads(); got != k {
		t.Fatalf("issued %d async reads, want %d", got, k)
	}
	// K blocking prefetches would take >= k*rtt = 400ms. Issuing must not
	// wait for even one RTT.
	if issueTime >= rtt {
		t.Fatalf("issuing %d prefetches took %v (>= one %v RTT): prefetch blocked", k, issueTime, rtt)
	}

	// Harvest through demand accesses: every object must carry its data.
	for j, idx := range idxs {
		p, err := r.Guard(addr+uint64(idx*obj), false)
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := r.ReadWord(p); v != uint64(1000+idx) {
			t.Fatalf("object %d (prefetch %d) = %d, want %d", idx, j, v, 1000+idx)
		}
	}
	if hits := d.Stats().PrefetchHits; hits != k {
		t.Fatalf("PrefetchHits = %d, want %d", hits, k)
	}
	// All prefetches harvested: nothing left pending.
	for i := range d.objs {
		if d.objs[i].pending != nil {
			t.Fatalf("object %d still has a pending fetch", i)
		}
	}
}

// TestAsyncPrefetchOverlap: total wall time for issue-all-then-read-all
// must be about one RTT, not K RTTs — the overlap the tentpole exists
// to provide.
func TestAsyncPrefetchOverlap(t *testing.T) {
	const (
		obj = 256
		k   = 6
		rtt = 40 * time.Millisecond
	)
	store := newSlowStore(rtt)
	r := New(Config{
		PinnedBudget: 1 << 20, RemotableBudget: uint64(4 * k * obj),
		Store: store, MaxInflight: k,
	})
	addr := remoteFill(t, r, obj, 16*k)
	d := r.DSByID(0)
	var idxs []int
	for i := range d.objs {
		if d.objs[i].state == objRemote {
			idxs = append(idxs, i)
			if len(idxs) == k {
				break
			}
		}
	}
	start := time.Now()
	for _, idx := range idxs {
		r.PrefetchObj(d, idx)
	}
	for _, idx := range idxs {
		if _, err := r.Guard(addr+uint64(idx*obj), false); err != nil {
			t.Fatal(err)
		}
	}
	total := time.Since(start)
	if total >= time.Duration(len(idxs))*rtt/2 {
		t.Fatalf("%d overlapped fetches took %v, want ~1 RTT (%v): no overlap", len(idxs), total, rtt)
	}
}

// TestAsyncFailureFallsBackToSyncRead: a failed async read must not
// surface if the synchronous retry succeeds.
func TestAsyncFailureFallsBackToSyncRead(t *testing.T) {
	const obj = 256
	store := newSlowStore(time.Millisecond)
	r := New(Config{
		PinnedBudget: 1 << 20, RemotableBudget: 16 * obj,
		Store: store, MaxInflight: 8,
	})
	addr := remoteFill(t, r, obj, 64)
	d := r.DSByID(0)
	var idx = -1
	for i := range d.objs {
		if d.objs[i].state == objRemote {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("no remote object")
	}
	store.failIdx = idx
	r.PrefetchObj(d, idx)
	p, err := r.Guard(addr+uint64(idx*obj), false)
	if err != nil {
		t.Fatalf("deref should fall back to sync read: %v", err)
	}
	if v, _ := r.ReadWord(p); v != uint64(1000+idx) {
		t.Fatalf("fallback read = %d, want %d", v, 1000+idx)
	}
}

// TestUnusedAsyncPrefetchSettles: CLOCK must be able to settle an
// unconsumed async prefetch (once its completion arrived) so speculative
// frames cannot wedge the cache.
func TestUnusedAsyncPrefetchSettles(t *testing.T) {
	const obj = 512
	store := newSlowStore(time.Millisecond)
	// Remotable budget of 4 objects: prefetching then touching new
	// objects forces eviction pressure over the in-flight frame.
	r := New(Config{
		PinnedBudget: 1 << 20, RemotableBudget: 4 * obj,
		Store: store, MaxInflight: 8,
	})
	addr := remoteFill(t, r, obj, 8)
	d := r.DSByID(0)
	var idx = -1
	for i := range d.objs {
		if d.objs[i].state == objRemote {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("no remote object")
	}
	r.PrefetchObj(d, idx)
	if d.objs[idx].state != objInFlight {
		t.Fatal("prefetch did not mark in-flight")
	}
	// Let the async completion arrive, then advance the virtual clock
	// past readyAt so the settle path sees a landed payload.
	time.Sleep(20 * time.Millisecond)
	r.Clock().Advance(r.Model().RemoteRTT * 100)

	// Touch other objects until the prefetched frame has been settled and
	// recycled. It must not wedge: all derefs succeed.
	for round := 0; round < 4; round++ {
		for i := 0; i < 8; i++ {
			if i == idx {
				continue
			}
			if _, err := r.Guard(addr+uint64(i*obj), false); err != nil {
				t.Fatalf("eviction pressure wedged on in-flight frame: %v", err)
			}
		}
	}
	if st := d.objs[idx].state; st == objInFlight {
		t.Fatal("unused async prefetch never settled")
	}
}

// TestMapStoreConcurrent exercises the MapStore mutex under -race:
// concurrent readers and writers on overlapping keys.
func TestMapStoreConcurrent(t *testing.T) {
	s := NewMapStore()
	const (
		goroutines = 8
		iters      = 200
	)
	var wg sync.WaitGroup
	wg.Add(2 * goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			defer wg.Done()
			buf := []byte{byte(g), 0, 0, 0}
			for i := 0; i < iters; i++ {
				if err := s.WriteObj(0, i%16, buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			buf := make([]byte, 4)
			for i := 0; i < iters; i++ {
				if err := s.ReadObj(0, i%16, buf); err != nil {
					t.Error(err)
					return
				}
				s.Objects()
			}
		}()
	}
	wg.Wait()
	if n := s.Objects(); n != 16 {
		t.Fatalf("Objects = %d, want 16", n)
	}
}
