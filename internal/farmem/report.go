package farmem

import (
	"fmt"
	"io"

	"cards/internal/obs"
	"cards/internal/stats"
)

// Report writes a per-data-structure summary table: placement, footprint,
// hit rates, prefetch effectiveness, and evictions — the at-a-glance view
// for deciding which structures a policy should pin.
//
// The table is rendered from a Registry snapshot (ObsSnapshot), so every
// number it shows is byte-for-byte the value a /metrics or /stats export
// of the same snapshot would carry.
func (r *Runtime) Report(w io.Writer) {
	r.WriteReport(w, r.ObsSnapshot())
}

// WriteReport renders the Report table from an already-taken snapshot.
// Only the structure names and placement strings come from the runtime;
// every numeric cell is looked up in snap.
func (r *Runtime) WriteReport(w io.Writer, snap *obs.Snapshot) {
	fmt.Fprintf(w, "%-4s %-28s %-9s %10s %10s %8s %8s %8s %9s %9s\n",
		"id", "data structure", "placement", "pinned-B", "remote-B",
		"hits", "misses", "evict", "pf-acc", "pf-cov")
	for _, d := range r.dss {
		l := d.label
		placement := d.placement.String()
		if snap.Gauge(MetricDSSpilled, "ds", l) != 0 {
			placement += "!"
		}
		hits := snap.Counter(MetricDSHits, "ds", l)
		misses := snap.Counter(MetricDSMisses, "ds", l)
		pfIssued := snap.Counter(MetricDSPrefetchIssued, "ds", l)
		pfHits := snap.Counter(MetricDSPrefetchHits, "ds", l)
		fmt.Fprintf(w, "%-4d %-28s %-9s %10d %10d %8d %8d %8d %8.0f%% %8.0f%%\n",
			d.ID, truncName(d.Meta.Name, 28), placement,
			snap.Counter(MetricDSPinnedBytes, "ds", l),
			snap.Counter(MetricDSRemoteBytes, "ds", l),
			hits, misses,
			snap.Counter(MetricDSEvictions, "ds", l),
			100*stats.Ratio(pfHits, pfIssued),
			100*stats.Ratio(pfHits, pfHits+misses))
	}
	fmt.Fprintf(w, "total: %d guard checks (%d fast-path), %d derefs, %d remote fetches, %d evictions",
		snap.Counter(MetricGuardChecks), snap.Counter(MetricFastPathHits),
		snap.Counter(MetricDerefCalls), snap.Counter(MetricRemoteFetches),
		snap.Counter(MetricEvictions))
	if n := snap.Counter(MetricSpilledDS); n > 0 {
		fmt.Fprintf(w, ", %d spilled structures ('!' above)", n)
	}
	if n := snap.Counter(MetricOvercommitBytes); n > 0 {
		fmt.Fprintf(w, ", %d bytes pinned over budget", n)
	}
	fmt.Fprintln(w)
}

func truncName(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
