package farmem

import (
	"fmt"
	"io"

	"cards/internal/stats"
)

// Report writes a per-data-structure summary table: placement, footprint,
// hit rates, prefetch effectiveness, and evictions — the at-a-glance view
// for deciding which structures a policy should pin.
func (r *Runtime) Report(w io.Writer) {
	fmt.Fprintf(w, "%-4s %-28s %-9s %10s %10s %8s %8s %8s %9s %9s\n",
		"id", "data structure", "placement", "pinned-B", "remote-B",
		"hits", "misses", "evict", "pf-acc", "pf-cov")
	for _, d := range r.dss {
		st := d.Stats()
		placement := d.placement.String()
		if d.spilled {
			placement += "!"
		}
		fmt.Fprintf(w, "%-4d %-28s %-9s %10d %10d %8d %8d %8d %8.0f%% %8.0f%%\n",
			d.ID, truncName(d.Meta.Name, 28), placement,
			st.PinnedBytes, st.RemoteBytes,
			st.Hits, st.Misses, st.Evictions,
			100*stats.Ratio(st.PrefetchHits, st.PrefetchIssued),
			100*stats.Ratio(st.PrefetchHits, st.PrefetchHits+st.Misses))
	}
	s := r.Stats()
	fmt.Fprintf(w, "total: %d guard checks (%d fast-path), %d derefs, %d remote fetches, %d evictions",
		s.GuardChecks, s.FastPathHits, s.DerefCalls, s.RemoteFetches, s.Evictions)
	if s.SpilledDS > 0 {
		fmt.Fprintf(w, ", %d spilled structures ('!' above)", s.SpilledDS)
	}
	if s.OvercommitBytes > 0 {
		fmt.Fprintf(w, ", %d bytes pinned over budget", s.OvercommitBytes)
	}
	fmt.Fprintln(w)
}

func truncName(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
