// Package farmem implements the CaRDS runtime system (paper §4.2): an
// AIFM-derived far-memory manager that tracks objects at data-structure
// granularity, tags remotable pointers with their data structure handle
// in the non-canonical address bits, services guard faults (Listing 4's
// cards_deref), evicts cold objects with a CLOCK policy, and keeps
// per-data-structure hit/miss statistics that drive dynamic policy
// decisions.
//
// Local memory is split into pinned memory (never remoted; allocations
// from non-remotable data structures) and remotable memory (a cache over
// the remote store), mirroring the paper's "Remoting policy selection".
// All time is charged to a virtual clock through the netsim cost model;
// the data path (arena bytes, remote store contents) is real, so programs
// executed on the runtime compute real results.
package farmem

import "fmt"

// Address layout (Figure 3 / Listing 2): CaRDS appends the data structure
// handle to the non-canonical bits of the pointer. Bit 63 marks a
// CaRDS-managed (remotable) address; bits 48..62 carry the DS handle;
// bits 0..47 are the byte offset within the data structure's virtual
// extent. Pinned allocations return plain (untagged) arena offsets, so
// the custody check falls through at the cost of one shift+branch.
const (
	// TagBit marks CaRDS-managed remotable addresses.
	TagBit = uint64(1) << 63
	// DSShift is the bit position of the DS handle (paper: ORT_POS).
	DSShift = 48
	// DSMask extracts the handle after shifting.
	DSMask = (uint64(1) << 15) - 1
	// OffMask extracts the intra-DS byte offset.
	OffMask = (uint64(1) << DSShift) - 1
	// MaxDS is the largest representable DS handle.
	MaxDS = int(DSMask)
)

// MakeAddr builds a tagged remotable address.
func MakeAddr(ds int, off uint64) uint64 {
	return TagBit | (uint64(ds)&DSMask)<<DSShift | (off & OffMask)
}

// IsTagged reports whether addr is CaRDS-managed (the custody check).
func IsTagged(addr uint64) bool { return addr&TagBit != 0 }

// DSOf extracts the data structure handle from a tagged address.
func DSOf(addr uint64) int { return int((addr >> DSShift) & DSMask) }

// OffOf extracts the intra-DS byte offset from a tagged address.
func OffOf(addr uint64) uint64 { return addr & OffMask }

// ErrBadAddress reports a malformed or out-of-range address.
type ErrBadAddress struct {
	Addr uint64
	Why  string
}

func (e *ErrBadAddress) Error() string {
	return fmt.Sprintf("farmem: bad address %#x: %s", e.Addr, e.Why)
}

// ErrUnsafeAccess reports a direct access to remotable memory that did
// not pass through a guard — exactly the class of bug guard insertion
// exists to prevent. The interpreter surfaces it as a compiler bug.
type ErrUnsafeAccess struct {
	Addr uint64
}

func (e *ErrUnsafeAccess) Error() string {
	return fmt.Sprintf("farmem: unguarded access to remotable address %#x", e.Addr)
}
