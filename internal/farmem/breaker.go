package farmem

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Circuit-breaker degradation to local memory.
//
// When the remote tier dies outright (server crash, partition), per-op
// retries only multiply the pain: every miss and every dirty eviction
// stalls through a full retry budget before failing. The breaker
// converts that into fail-fast degraded service: after
// Config.BreakerThreshold consecutive store failures it trips OPEN, and
// while open the runtime
//
//   - serves derefs of resident objects as usual (they never touch the
//     store),
//   - fails derefs of remote objects immediately with ErrDegraded,
//   - stops evicting dirty objects (their only copy is local now —
//     write-back has nowhere to go) and instead grows the remotable
//     budget up to a ceiling, pinning the working set in local memory,
//   - issues no prefetches.
//
// Recovery: a background prober pings the store (when it has a Ping
// method) on a wall-clock interval; a successful ping arms HALF-OPEN
// and the next runtime store operation is the trial. If the trial
// succeeds the breaker closes, the dirty working set is drained back to
// the far tier, and the remotable budget shrinks to its configured
// size. Without a Ping method the breaker arms half-open by elapsed
// wall time alone.

// ErrDegraded reports a remote-object access while the breaker is open:
// the far tier is unreachable and the object is not resident locally.
var ErrDegraded = errors.New("farmem: remote tier degraded (circuit breaker open)")

// Pinger is the optional liveness probe surface of a Store (the remote
// clients implement it); detected by type assertion.
type Pinger interface {
	Ping() error
}

// Recoverable is the optional recovery-signal surface of a Store whose
// failures are narrower than the whole tier (the sharded store). Its
// epoch advances every time a previously degraded slice of the store
// comes back; the runtime compares epochs after successful operations
// and drains the dirty write-backs stranded by the outage exactly once
// per recovery. Detected by type assertion.
type Recoverable interface {
	RecoveryEpoch() uint64
}

// DrainScoper is the optional drain-scoping surface of a Recoverable
// store. Without it, a recovery-epoch advance drains every dirty
// object and parked write-back in the cache — including objects owned
// by slices that never failed, and fail-fast attempts against slices
// still down. With it, the runtime asks per object:
//
//   - ShouldDrain: did the slice owning (ds, idx) recover after
//     sinceEpoch (and is it serving again)? Only then is the object's
//     write-back reissued on this epoch advance.
//   - Stranded: is the owning slice still refusing writes? Such
//     objects stay pinned (degradedDirty stays armed) for a future
//     epoch; objects on healthy slices that never failed are neither
//     drained nor counted as stranded.
//
// Detected by type assertion.
type DrainScoper interface {
	ShouldDrain(ds, idx int, sinceEpoch uint64) bool
	Stranded(ds, idx int) bool
}

// BreakerState enumerates the circuit-breaker states.
type BreakerState int32

// Breaker states.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// breaker holds the state machine. It is shared between the
// single-threaded runtime and the background prober goroutine, hence
// the mutex; every transition is cheap and rare.
type breaker struct {
	threshold  int
	probeEvery time.Duration
	hasPinger  bool

	mu       sync.Mutex
	state    BreakerState
	consec   int       // consecutive failures while closed
	openedAt time.Time // wall clock of the last trip
}

// gate is consulted before a store operation. It returns false when the
// operation must fail fast with ErrDegraded. In the open state without
// a prober it self-arms half-open once probeEvery has elapsed.
func (b *breaker) gate() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return true
	}
	if !b.hasPinger && time.Since(b.openedAt) >= b.probeEvery {
		b.state = BreakerHalfOpen
		return true
	}
	return false
}

// onSuccess records a successful store operation; reports true when
// this was the half-open trial that closed the breaker (the caller then
// runs recovery).
func (b *breaker) onSuccess() (recovered bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consec = 0
	if b.state == BreakerClosed {
		return false
	}
	b.state = BreakerClosed
	return true
}

// onFailure records a failed store operation; reports true when this
// failure tripped the breaker open (a half-open trial failure re-opens
// without re-reporting).
func (b *breaker) onFailure() (tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consec++
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = time.Now()
	case BreakerClosed:
		if b.consec >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = time.Now()
			return true
		}
	}
	return false
}

// armHalfOpen moves open -> half-open (called by the prober after a
// successful ping); the next store operation is the trial.
func (b *breaker) armHalfOpen() {
	b.mu.Lock()
	if b.state == BreakerOpen {
		b.state = BreakerHalfOpen
	}
	b.mu.Unlock()
}

// State returns the current state.
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// isOpen is the hot-path check the allocator and evictor use.
func (r *Runtime) breakerIsOpen() bool {
	return r.breaker != nil && r.breaker.State() != BreakerClosed
}

// BreakerState reports the breaker's current state (BreakerClosed when
// no breaker is configured).
func (r *Runtime) BreakerState() BreakerState {
	if r.breaker == nil {
		return BreakerClosed
	}
	return r.breaker.State()
}

// storeRead is the fault path's read through the breaker + retry
// wrapper.
func (r *Runtime) storeRead(d *DS, idx int, dst []byte) error {
	return r.storeOp(func() error { return r.store.ReadObj(d.ID, idx, dst) })
}

// storeWrite is the write-back path through the breaker + retry
// wrapper. Replaying a write-back is safe at this layer: write-backs
// carry the full object and the runtime is the single writer, so a
// duplicated (uncertain) write is idempotent — which is exactly why the
// transport refuses to make this call and the runtime gets to.
func (r *Runtime) storeWrite(d *DS, idx int, src []byte) error {
	return r.storeOp(func() error { return r.store.WriteObj(d.ID, idx, src) })
}

// storeOp runs one store operation under the breaker gate with up to
// Config.RetryMax reissues, charging each reissue to the simulated link
// (a wasted round trip plus backoff). A success that closes a half-open
// breaker triggers recovery: budget restore + dirty drain.
func (r *Runtime) storeOp(op func() error) error {
	b := r.breaker
	if b != nil && !b.gate() {
		r.stats.DegradedOps++
		return ErrDegraded
	}
	var err error
	for attempt := 0; ; attempt++ {
		if err = op(); err == nil {
			if b != nil && b.onSuccess() {
				r.recoverRemote()
			}
			r.maybeDrainShards()
			return nil
		}
		if errors.Is(err, ErrDegraded) {
			// A sharded store refused the operation because the one shard
			// owning this object is down. The failure is already contained
			// to that shard's breaker: retrying cannot help (the gate fails
			// fast until the shard recovers) and counting it against the
			// global breaker would wrongly degrade the healthy shards too.
			r.stats.DegradedOps++
			return err
		}
		if attempt >= r.retryMax {
			break
		}
		r.stats.StoreRetries++
		r.link.Retry()
	}
	if b != nil && b.onFailure() {
		r.stats.BreakerTrips++
		r.emit(EvBreakerTrip, -1, 0, false)
	}
	return err
}

// recoverRemote runs after the half-open trial closed the breaker:
// drain every dirty resident object back to the far tier, then shrink
// the remotable budget to its configured size (subsequent allocations
// evict back down to it). A failure mid-drain re-trips the breaker and
// aborts; the remaining dirty objects stay pinned until the next
// recovery.
func (r *Runtime) recoverRemote() {
	r.stats.BreakerRecoveries++
	r.emit(EvBreakerRecover, -1, 0, false)
	for _, d := range r.dss {
		for idx := range d.objs {
			obj := &d.objs[idx]
			if obj.state != objLocal || !obj.dirty {
				continue
			}
			if err := r.storeWrite(d, idx, r.arena.Bytes(obj.frame, d.Meta.ObjSize)); err != nil {
				if errors.Is(err, ErrDegraded) {
					// The owning shard is still down; its objects stay
					// pinned until that shard's own recovery epoch.
					r.degradedDirty = true
					continue
				}
				return // re-tripped (or transient): stop, stay pinned
			}
			r.link.WriteBack(d.Meta.ObjSize)
			obj.dirty = false
			d.stats.WriteBacks++
			r.stats.DrainedWriteBacks++
		}
	}
	// Staged write-backs parked while the tier was down hold the only
	// copy of their objects outside any frame; reissue them too.
	if r.drainParkedWB() {
		r.degradedDirty = true
	}
	r.remotableBudget = r.baseRemotableBudget
}

// maybeDrainShards runs after every successful store operation: when the
// store's recovery epoch has advanced (a shard came back) and dirty
// objects were stranded by per-shard degradation, it drains them back to
// the far tier and shrinks the remotable budget once nothing is left
// pinned. Write-backs to shards that are still down fail fast with
// ErrDegraded and stay pinned for the next epoch.
func (r *Runtime) maybeDrainShards() {
	if r.recoverable == nil || r.draining {
		return
	}
	ep := r.recoverable.RecoveryEpoch()
	if ep == r.lastRecoveryEpoch {
		return
	}
	prev := r.lastRecoveryEpoch
	r.lastRecoveryEpoch = ep
	if !r.degradedDirty {
		return
	}
	r.draining = true
	defer func() { r.draining = false }()
	r.emit(EvBreakerRecover, -1, 0, false)
	// With a DrainScoper the drain touches only objects whose owning
	// slice recovered in (prev, ep]; objects on slices still down stay
	// pinned without a wasted fail-fast write, and objects on healthy
	// slices that were never stranded are not re-written at all.
	scope := r.drainScoper
	remain := false
	for _, d := range r.dss {
		for idx := range d.objs {
			obj := &d.objs[idx]
			if obj.state != objLocal || !obj.dirty {
				continue
			}
			if scope != nil && !scope.ShouldDrain(d.ID, idx, prev) {
				if scope.Stranded(d.ID, idx) {
					remain = true
				}
				continue
			}
			if err := r.storeWrite(d, idx, r.arena.Bytes(obj.frame, d.Meta.ObjSize)); err != nil {
				remain = true
				continue
			}
			r.link.WriteBack(d.Meta.ObjSize)
			obj.dirty = false
			d.stats.WriteBacks++
			r.stats.DrainedWriteBacks++
		}
	}
	// Parked staged write-backs stranded by the same shard outage drain
	// through the identical fail-fast path, under the same scope.
	if r.drainParkedWBScoped(prev) {
		remain = true
	}
	r.degradedDirty = remain
	if !remain {
		r.remotableBudget = r.baseRemotableBudget
	}
}

// growBudgetFor implements degraded-mode allocation: while the breaker
// is open the remotable budget grows (up to the ceiling) instead of
// evicting — dirty evictions are impossible and clean evictions would
// shrink the only copy of the working set we can still serve.
func (r *Runtime) growBudgetFor(sz uint64) bool {
	if !r.breakerIsOpen() {
		return false
	}
	return r.growBudget(sz)
}

// growBudget grows the remotable budget up to the ceiling. It is the
// unconditional half of degraded-mode allocation, also used when the
// global breaker is closed but eviction found only victims whose dirty
// write-backs are refused by a degraded shard.
func (r *Runtime) growBudget(sz uint64) bool {
	want := r.remotableUsed + sz
	if want <= r.remotableBudget {
		return true
	}
	if want > r.breakerCeiling {
		return false
	}
	r.remotableBudget = want
	return true
}

// probeLoop is the background prober: while the breaker is open it
// pings the store every probeEvery; a successful ping arms half-open so
// the next runtime operation trials the recovery. It runs on wall
// clock, not virtual cycles — probing is real-world I/O, invisible to
// the simulation until the trial op succeeds.
func (r *Runtime) probeLoop(p Pinger) {
	t := time.NewTicker(r.breaker.probeEvery)
	defer t.Stop()
	for {
		select {
		case <-r.breakerStop:
			return
		case <-t.C:
			if r.breaker.State() != BreakerOpen {
				continue
			}
			if p.Ping() == nil {
				r.breaker.armHalfOpen()
			}
		}
	}
}

// Close settles any staged write-backs still in flight (the far tier
// must hold every dirty payload once the runtime is gone) and releases
// background resources (the breaker prober). Safe to call multiple
// times; a Runtime without a breaker needs no Close but tolerates one.
func (r *Runtime) Close() error {
	var err error
	r.closeOnce.Do(func() {
		err = r.DrainWriteBacks()
		if r.breakerStop != nil {
			close(r.breakerStop)
		}
	})
	return err
}

// errDegradedDeref wraps ErrDegraded with the faulting object for
// diagnostics while keeping errors.Is(err, ErrDegraded) true.
func errDegradedDeref(ds, idx int) error {
	return fmt.Errorf("farmem: deref ds%d[%d]: %w", ds, idx, ErrDegraded)
}
