package farmem

import (
	"strings"
	"testing"
)

// failingAsyncStore is an AsyncStore whose asynchronous reads of failIdx
// always fail and whose synchronous reads of failIdx fail while syncFail
// is set. Writes always succeed, so eviction write-backs keep working
// while the read paths are under fault. The runtime and the (immediate)
// completion callback run on one goroutine, so no locking is needed.
type failingAsyncStore struct {
	inner    *MapStore
	failIdx  int
	syncFail bool
}

func (s *failingAsyncStore) ReadObj(ds, idx int, dst []byte) error {
	if s.syncFail && idx == s.failIdx {
		return errInjected
	}
	return s.inner.ReadObj(ds, idx, dst)
}

func (s *failingAsyncStore) WriteObj(ds, idx int, src []byte) error {
	return s.inner.WriteObj(ds, idx, src)
}

func (s *failingAsyncStore) IssueRead(ds, idx int, dst []byte, done func(error)) {
	if idx == s.failIdx {
		done(errInjected)
		return
	}
	done(s.inner.ReadObj(ds, idx, dst))
}

func asyncFaultRuntime(t *testing.T, store Store) (*Runtime, uint64) {
	t.Helper()
	r := New(Config{
		PinnedBudget:    1 << 20,
		RemotableBudget: 2 * 4096,
		Store:           store,
	})
	if _, err := r.RegisterDS(0, DSMeta{Name: "d", ObjSize: 4096}); err != nil {
		t.Fatal(err)
	}
	r.SetPlacement(0, PlaceRemotable)
	addr, err := r.DSAlloc(0, 8*4096)
	if err != nil {
		t.Fatal(err)
	}
	return r, addr
}

func TestHarvestRetriesFailedAsyncReadSynchronously(t *testing.T) {
	s := &failingAsyncStore{inner: NewMapStore(), failIdx: 0}
	r, addr := asyncFaultRuntime(t, s)
	writeWorkingSet(t, r, addr, 6) // objs 0..3 evicted to the store
	d := r.DSByID(0)

	r.PrefetchObj(d, 0) // async read fails immediately into the staging buffer
	if d.objs[0].state != objInFlight {
		t.Fatalf("obj 0 state = %v, want in-flight", d.objs[0].state)
	}
	// The demand deref harvests the failed completion and must fall back
	// to a synchronous re-read transparently.
	p, err := r.Guard(addr, false)
	if err != nil {
		t.Fatalf("deref with failed async read: %v", err)
	}
	if v, _ := r.ReadWord(p); v != 1000 {
		t.Fatalf("value = %d, want 1000", v)
	}
}

func TestHarvestFailurePropagatesAndRevertsObject(t *testing.T) {
	s := &failingAsyncStore{inner: NewMapStore(), failIdx: 0}
	r, addr := asyncFaultRuntime(t, s)
	writeWorkingSet(t, r, addr, 6)
	d := r.DSByID(0)

	r.PrefetchObj(d, 0)
	s.syncFail = true // the synchronous fallback fails too
	used := r.RemotableUsed()
	_, err := r.Guard(addr, false)
	if err == nil || !strings.Contains(err.Error(), "async fetch") {
		t.Fatalf("err = %v, want async fetch failure", err)
	}
	if d.objs[0].state != objRemote {
		t.Fatalf("obj 0 state = %v, want reverted to remote", d.objs[0].state)
	}
	if r.RemotableUsed() != used-4096 {
		t.Fatalf("failed harvest leaked its frame: used %d -> %d", used, r.RemotableUsed())
	}

	// Heal the store: the object must localize correctly afterwards.
	s.syncFail = false
	s.failIdx = -1
	p, err := r.Guard(addr, false)
	if err != nil {
		t.Fatalf("deref after heal: %v", err)
	}
	if v, _ := r.ReadWord(p); v != 1000 {
		t.Fatalf("value after heal = %d, want 1000", v)
	}
}

func TestClockSettleRevertsFailedPrefetch(t *testing.T) {
	// A failed async prefetch that no access consumes is settled by the
	// CLOCK pass: the settle harvest fails, the object reverts to remote,
	// and eviction continues without surfacing an error to the caller.
	s := &failingAsyncStore{inner: NewMapStore(), failIdx: 0, syncFail: true}
	r, addr := asyncFaultRuntime(t, s)
	writeWorkingSet(t, r, addr, 6)
	d := r.DSByID(0)

	r.PrefetchObj(d, 0)
	// Advance virtual time past the prefetch's arrival, then force
	// evictions: obj 1's fetch advances the clock a full RTT, and the
	// later derefs need frames the wedged prefetch would otherwise hold.
	for i := 1; i < 4; i++ {
		if _, err := r.Guard(addr+uint64(i*4096), false); err != nil {
			t.Fatalf("deref obj %d during settle pressure: %v", i, err)
		}
	}
	if d.objs[0].state != objRemote {
		t.Fatalf("obj 0 state = %v, want settled back to remote", d.objs[0].state)
	}
	if d.inflight != 0 {
		t.Fatalf("inflight = %d, want 0 after settle", d.inflight)
	}

	s.syncFail = false
	s.failIdx = -1
	p, err := r.Guard(addr, false)
	if err != nil {
		t.Fatalf("deref after heal: %v", err)
	}
	if v, _ := r.ReadWord(p); v != 1000 {
		t.Fatalf("value after heal = %d, want 1000", v)
	}
}
