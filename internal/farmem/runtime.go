package farmem

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"cards/internal/netsim"
	"cards/internal/obs"
	"cards/internal/rdma"
	"cards/internal/stats"
)

// Pattern mirrors the compiler's access-pattern classification. The
// runtime keeps its own copy of the enum so it can stand alone (the
// public library API constructs DSMeta directly, without the compiler).
type Pattern int

// Access-pattern hints delivered by the compiler at ds_init.
const (
	PatternUnknown Pattern = iota
	PatternStrided
	PatternPointerChase
	PatternIndirect
)

// DSMeta is the compiler-provided description of one data structure,
// delivered to the runtime at registration (the ds_init hints of §4.2).
type DSMeta struct {
	Name       string
	ObjSize    int   // object granularity in bytes (power of two)
	ElemSize   int   // element size in bytes
	Stride     int64 // majority stride for strided structures
	Pattern    Pattern
	Recursive  bool
	PtrOffsets []int // pointer-field offsets within one element
	UseScore   int   // eq. 1 score
	ReachScore int   // caller/callee chain score
	// WriteFootprint lists the [lo, hi) byte ranges within one element
	// that stores through this structure may modify (compiler-derived).
	// It bounds the dirty rectangle of a spanless write so range
	// write-back stays available when a guard carries no span.
	WriteFootprint [][2]int
}

// Placement is the remoting decision for a data structure.
type Placement int

// Placement modes (paper §4.2 "Remoting policy selection").
const (
	// PlaceLinear defers the decision to allocation time: pinned while
	// pinned memory remains, remotable afterwards (the Linear policy).
	PlaceLinear Placement = iota
	// PlacePinned statically marks the structure non-remotable; the
	// runtime may still override (spill) if it does not fit.
	PlacePinned
	// PlaceRemotable statically marks the structure remotable.
	PlaceRemotable
)

func (p Placement) String() string {
	switch p {
	case PlacePinned:
		return "pinned"
	case PlaceRemotable:
		return "remotable"
	}
	return "linear"
}

// objState tracks where an object's bytes currently live.
type objState uint8

const (
	objUninit   objState = iota // allocated, never touched
	objRemote                   // resident only in the remote store
	objInFlight                 // prefetch issued, payload arriving
	objLocal                    // resident in the local arena
)

// FarObj is one entry of a data structure's object table (the
// pool_manager->ptrs_ array of Listing 4).
type FarObj struct {
	state   objState
	frame   uint64 // arena offset when local
	readyAt uint64 // arrival cycle when in flight
	lastUse uint64 // global access sequence number at last deref
	dirty   bool
	ref     bool // CLOCK reference bit
	epoch   uint32
	// rect is the accumulated written region while dirty (dirtyrange.go);
	// reset when the object ceases to be dirty.
	rect dirtyRect
	// pending carries the staging state of an AsyncStore read while the
	// object is in flight; nil on the sync path.
	pending *pendingFetch
}

// pendingFetch is the completion state of one asynchronous read. The
// store's completion callback fills exactly one slot of done (buffered,
// so the callback never blocks); the single-threaded runtime harvests it
// with wait/ready and caches the result in err/settled.
//
// The payload lands in buf — a private staging buffer, not the arena
// frame — because the arena slab may be reallocated (grown) while the
// read is in flight, which would invalidate any slice into it.
type pendingFetch struct {
	buf     []byte
	done    chan error
	err     error
	settled bool
}

// wait blocks until the read completes and returns its error.
func (p *pendingFetch) wait() error {
	if !p.settled {
		p.err = <-p.done
		p.settled = true
	}
	return p.err
}

// ready polls for completion without blocking.
func (p *pendingFetch) ready() bool {
	if p.settled {
		return true
	}
	select {
	case err := <-p.done:
		p.err = err
		p.settled = true
		return true
	default:
		return false
	}
}

// DSStats is a snapshot of one structure's runtime counters.
type DSStats struct {
	Hits, Misses, ColdFaults     uint64
	Evictions, WriteBacks        uint64
	PrefetchIssued, PrefetchHits uint64
	PinnedBytes, RemoteBytes     uint64
}

// DS is the runtime state of one data structure instance.
type DS struct {
	ID   int
	Meta DSMeta

	placement Placement
	// everRemote is set once any allocation of this structure received a
	// tagged address; cards_all_local then answers false for it.
	everRemote bool
	// spilled is set when a pinned structure ran out of pinned memory
	// and the runtime overrode the static hint.
	spilled bool
	// localPromise is set once a cards_all_local check has committed an
	// unguarded code path to this structure: all later growth must stay
	// local.
	localPromise bool

	objShift uint
	size     uint64 // virtual extent of the tagged region
	objs     []FarObj

	prefetcher  Prefetcher
	maxInflight int
	inflight    int

	// chaseGen invalidates in-flight traversal offloads: it advances on
	// every dirty eviction (write-back) of the structure, and a chase
	// result issued under an older generation is dropped (see chase.go).
	chaseGen uint64

	// label is the ds="<id>" metric label.
	label string

	stats DSStats

	// The latency histograms are single-writer locals (the runtime is
	// single-threaded): a plain Observe costs ~2 ns where the registry's
	// atomic one costs ~20, which is measurable even on the remote-fault
	// path. PublishObs copies them into the registry's concurrent
	// series. They sit last so their ~1.5 KB of buckets stays off the
	// cache lines the fault path walks.
	fetchHist  stats.LocalHistogram
	pfWaitHist stats.LocalHistogram
	evictHist  stats.LocalHistogram
}

// Stats returns a copy of the structure's counters.
func (d *DS) Stats() DSStats { return d.stats }

// Placement returns the structure's configured placement.
func (d *DS) Placement() Placement { return d.placement }

// Spilled reports whether the runtime overrode a pinned hint.
func (d *DS) Spilled() bool { return d.spilled }

// Local reports whether the structure has never been remoted (the
// cards_all_local predicate for a single structure).
func (d *DS) Local() bool { return !d.everRemote }

// Size returns the tagged virtual extent in bytes.
func (d *DS) Size() uint64 { return d.size }

// Prefetcher decides which objects to pull ahead of demand. The runtime
// invokes it after every deref of its data structure; implementations
// call Runtime.PrefetchObj for the objects they want in flight.
type Prefetcher interface {
	Name() string
	OnAccess(r *Runtime, d *DS, objIdx int, miss bool)
}

// nullPrefetcher never prefetches.
type nullPrefetcher struct{}

func (nullPrefetcher) Name() string                      { return "none" }
func (nullPrefetcher) OnAccess(*Runtime, *DS, int, bool) {}

// Store is the remote memory tier: a keyed object store addressed by
// (data structure, object index). Implementations: the in-process
// MapStore below, and the TCP-backed client in internal/remote.
type Store interface {
	// ReadObj fills dst with the object's bytes (zeros if never written).
	ReadObj(ds, idx int, dst []byte) error
	// WriteObj persists the object's bytes.
	WriteObj(ds, idx int, src []byte) error
}

// AsyncStore is a Store that can additionally issue reads without
// blocking the caller. IssueRead starts filling dst and returns
// immediately; done is invoked exactly once — possibly on another
// goroutine, possibly before IssueRead returns — when dst is complete or
// the read has failed, and must not block. The runtime detects the
// capability by type assertion, so plain Stores (simulations, MapStore)
// keep the synchronous prefetch path unchanged.
type AsyncStore interface {
	Store
	IssueRead(ds, idx int, dst []byte, done func(error))
}

// MapStore is the in-process remote store used by simulations and tests.
// It is safe for concurrent use: async completions and concurrent
// runtimes may touch the map from different goroutines.
type MapStore struct {
	mu sync.RWMutex
	m  map[[2]int][]byte
}

// NewMapStore creates an empty in-process store.
func NewMapStore() *MapStore { return &MapStore{m: make(map[[2]int][]byte)} }

// ReadObj implements Store.
func (s *MapStore) ReadObj(ds, idx int, dst []byte) error {
	s.mu.RLock()
	b, ok := s.m[[2]int{ds, idx}]
	s.mu.RUnlock()
	if ok {
		copy(dst, b)
		return nil
	}
	clear(dst)
	return nil
}

// WriteObj implements Store.
func (s *MapStore) WriteObj(ds, idx int, src []byte) error {
	b := make([]byte, len(src))
	copy(b, src)
	s.mu.Lock()
	s.m[[2]int{ds, idx}] = b
	s.mu.Unlock()
	return nil
}

// Objects returns the number of objects resident in the store.
func (s *MapStore) Objects() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Config configures a Runtime.
type Config struct {
	// Model is the cycle cost model; zero value uses the defaults.
	Model netsim.CostModel
	// PinnedBudget and RemotableBudget split local memory (bytes).
	PinnedBudget, RemotableBudget uint64
	// Store is the remote tier; nil uses an in-process MapStore.
	Store Store
	// MaxInflight caps outstanding prefetches per data structure.
	MaxInflight int
	// TrackFMGuards switches guard/fault cost accounting to the TrackFM
	// cost profile of Table 1 (used by the baseline).
	TrackFMGuards bool
	// Obs is the metrics registry the runtime publishes into; nil gives
	// the runtime a private registry (reachable via Runtime.Obs). Sharing
	// one registry across runtimes accumulates histograms but makes
	// published counters last-publish-wins.
	Obs *obs.Registry
	// Tracer receives runtime events into the bounded ring (in addition
	// to any legacy SetEventHook subscriber); nil disables ring tracing.
	Tracer *obs.Tracer
	// TraceHub, when non-nil, makes the runtime the root of distributed
	// traces: every remote miss, prefetch issue, and eviction write-back
	// opens a root span context that the transport (when sharing the
	// hub) picks up synchronously and carries across the wire, and
	// runtime trace events are labeled with the sampled trace ID.
	TraceHub *obs.TraceHub

	// RetryMax is the number of times a failed store operation is
	// reissued before the failure propagates (each reissue charges a
	// wasted round trip plus backoff to the link). 0 disables retries.
	RetryMax int
	// BreakerThreshold arms the circuit breaker: after this many
	// consecutive store failures the runtime degrades to local memory
	// (see breaker.go). 0 disables the breaker.
	BreakerThreshold int
	// BreakerCeiling bounds how far the remotable budget may grow while
	// degraded; 0 means 4x RemotableBudget.
	BreakerCeiling uint64
	// BreakerProbe is the wall-clock interval between recovery probes
	// while the breaker is open; 0 means 250ms.
	BreakerProbe time.Duration

	// WriteBackBudget bounds the bytes of dirty eviction payloads staged
	// for asynchronous write-back (writeback.go); 0 means
	// RemotableBudget/4. Once staged-but-unsettled payload exceeds the
	// budget, the next dirty eviction blocks on the oldest staged write.
	WriteBackBudget uint64

	// RangeWriteback enables dirty-range write-back (dirtyrange.go):
	// evictions of objects whose writes the guards bounded ship only the
	// modified byte ranges when the store supports it (RangeWriteStore).
	RangeWriteback bool
}

// clockEntry is one CLOCK ring slot.
type clockEntry struct {
	ds    *DS
	idx   int
	epoch uint32
}

// RuntimeStats aggregates global counters.
type RuntimeStats struct {
	GuardChecks   uint64 // custody checks executed
	FastPathHits  uint64 // untagged addresses (pinned memory)
	DerefCalls    uint64 // slow-path cards_deref invocations
	RemoteFetches uint64
	Evictions     uint64
	SpilledDS     uint64
	AllLocalCalls uint64
	// OvercommitBytes counts pinned allocations beyond the pinned budget
	// forced by local promises (unguarded code paths).
	OvercommitBytes uint64

	// Fault-tolerance counters (see breaker.go).
	StoreRetries      uint64 // store operations reissued after a failure
	DegradedOps       uint64 // store operations refused while the breaker was open
	BreakerTrips      uint64 // closed -> open transitions
	BreakerRecoveries uint64 // half-open -> closed transitions
	DrainedWriteBacks uint64 // dirty objects written back during recovery

	// Asynchronous write-back pipeline counters (see writeback.go).
	StagedWriteBacks     uint64 // dirty evictions staged for async write-back
	WriteBackStalls      uint64 // evictions that blocked on the staging budget or per-object ordering
	WriteBackReissues    uint64 // failed/uncertain async writes reissued synchronously
	WriteBackStagingHits uint64 // derefs served read-your-writes from a staging buffer

	// Dirty-range write-back counters (see dirtyrange.go).
	RangeWriteBacks uint64 // evictions that shipped extents instead of the full object
	RangeBytesSaved uint64 // object bytes elided from the wire by range write-backs

	// Traversal-offload counters (see chase.go).
	ChasesIssued     uint64 // traversal programs shipped to the far tier
	ChaseHopsStaged  uint64 // path objects delivered and staged for deref
	ChaseStagingHits uint64 // derefs served from chase-staged objects
	ChaseStale       uint64 // chase results dropped by the generation guard
	ChaseFallbacks   uint64 // chases that failed; traversal fell back to per-hop reads
}

// Runtime is the CaRDS far-memory runtime.
type Runtime struct {
	model  netsim.CostModel
	clock  *netsim.Clock
	link   *netsim.Link
	arena  *Arena
	store  Store
	astore AsyncStore // non-nil iff store supports IssueRead

	// Asynchronous write-back pipeline (writeback.go).
	rwstore   RangeWriteStore // non-nil iff range write-back is on and supported
	extFree   [][]rdma.Extent // pooled extent slices (dirtyrange.go)
	awstore   AsyncWriteStore // non-nil iff store supports IssueWrite
	wbPending map[wbKey]*pendingWB
	wbOrder   []*pendingWB // issue-order FIFO (entries validated lazily)
	wbBytes   uint64       // staged-but-unsettled payload bytes
	wbBudget  uint64
	wbFree    map[int][][]byte // staging buffer free lists, by size
	wbBusy    bool             // order-list scan reentrancy guard

	// Traversal offload (chase.go).
	chaser           AsyncChaseStore // non-nil iff store supports IssueChase
	chaseStaged      map[wbKey][]byte
	chaseStarts      map[wbKey]*pendingChase // in-flight programs by start object
	chaseInflight    []*pendingChase
	chaseStagedBytes uint64
	chaseHarvesting  bool // reentrancy guard (settle can issue, issue harvests)

	pinnedBudget, remotableBudget uint64
	pinnedUsed, remotableUsed     uint64

	dss  []*DS
	ring []clockEntry
	hand int

	trackFM            bool
	defaultMaxInflight int
	accessSeq          uint64
	inflightBytes      uint64
	hook               EventHook
	tracer             *obs.Tracer
	tracing            bool // hook != nil || tracer != nil
	reg                *obs.Registry

	// Distributed tracing (see beginRoot/endRoot in trace.go). The
	// runtime is single-threaded, so the active-root bookkeeping needs
	// no synchronization; curTrace is the sampled trace ID attached to
	// runtime events while a root is open (0 otherwise).
	hub        *obs.TraceHub
	rootActive bool
	curTrace   uint64

	// Fault tolerance (breaker.go). baseRemotableBudget is the configured
	// budget the breaker restores after degraded-mode growth.
	retryMax            int
	breaker             *breaker
	breakerCeiling      uint64
	baseRemotableBudget uint64
	breakerStop         chan struct{}
	closeOnce           sync.Once

	// Per-shard fault domains (sharded stores; see Recoverable).
	// degradedDirty records that some dirty object's write-back was
	// refused with ErrDegraded — the cue that a later recovery epoch has
	// work to drain. draining guards maybeDrainShards against reentry
	// (its write-backs run through storeOp themselves).
	recoverable       Recoverable
	drainScoper       DrainScoper
	lastRecoveryEpoch uint64
	degradedDirty     bool
	draining          bool

	stats RuntimeStats
}

// New creates a runtime with the given configuration.
func New(cfg Config) *Runtime {
	model := cfg.Model
	if model.Instr == 0 {
		model = netsim.DefaultCostModel()
	}
	if cfg.TrackFMGuards {
		// TrackFM's remote guard path is leaner than a CaRDS fault
		// (Table 1: ~46K vs ~59K cycles): its fixed-block tracking skips
		// the per-structure dispatch the AIFM-derived fault path pays.
		// Model it as a shorter effective round trip so that
		// guard + RTT + 4 KiB transfer lands at the measured ~46K.
		model.RemoteRTT = (model.TrackFMGuardRemoteRead + model.TrackFMGuardRemoteWrite) / 2
	}
	clock := &netsim.Clock{}
	store := cfg.Store
	if store == nil {
		store = NewMapStore()
	}
	mi := cfg.MaxInflight
	if mi <= 0 {
		mi = 16
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	r := &Runtime{
		model:               model,
		clock:               clock,
		link:                netsim.NewLink(model, clock),
		arena:               NewArena(initialArenaCap(cfg.PinnedBudget + cfg.RemotableBudget)),
		store:               store,
		pinnedBudget:        cfg.PinnedBudget,
		remotableBudget:     cfg.RemotableBudget,
		baseRemotableBudget: cfg.RemotableBudget,
		trackFM:             cfg.TrackFMGuards,
		tracer:              cfg.Tracer,
		tracing:             cfg.Tracer != nil,
		reg:                 reg,
		hub:                 cfg.TraceHub,
		retryMax:            cfg.RetryMax,
	}
	if as, ok := store.(AsyncStore); ok {
		r.astore = as
	}
	if aw, ok := store.(AsyncWriteStore); ok {
		r.awstore = aw
		if cfg.RangeWriteback {
			if rw, ok := store.(RangeWriteStore); ok {
				r.rwstore = rw
			}
		}
		r.wbPending = make(map[wbKey]*pendingWB)
		r.wbFree = make(map[int][][]byte)
		r.wbBudget = cfg.WriteBackBudget
		if r.wbBudget == 0 {
			r.wbBudget = cfg.RemotableBudget / 4
		}
	}
	if cs, ok := store.(AsyncChaseStore); ok {
		r.chaser = cs
		r.chaseStaged = make(map[wbKey][]byte)
		r.chaseStarts = make(map[wbKey]*pendingChase)
	}
	if rec, ok := store.(Recoverable); ok {
		r.recoverable = rec
		r.lastRecoveryEpoch = rec.RecoveryEpoch()
		if sc, ok := store.(DrainScoper); ok {
			r.drainScoper = sc
		}
	}
	r.defaultMaxInflight = mi
	// The ceiling caps degraded-mode budget growth. It applies both to
	// the global breaker and to per-shard degradation (which needs no
	// breaker configured), so it is set unconditionally.
	r.breakerCeiling = cfg.BreakerCeiling
	if r.breakerCeiling == 0 {
		r.breakerCeiling = 4 * cfg.RemotableBudget
	}
	if cfg.BreakerThreshold > 0 {
		probe := cfg.BreakerProbe
		if probe <= 0 {
			probe = 250 * time.Millisecond
		}
		p, hasPinger := store.(Pinger)
		r.breaker = &breaker{
			threshold:  cfg.BreakerThreshold,
			probeEvery: probe,
			hasPinger:  hasPinger,
		}
		if hasPinger {
			r.breakerStop = make(chan struct{})
			go r.probeLoop(p)
		}
	}
	return r
}

// initialArenaCap caps the arena's eager capacity: budgets may be set
// far larger than the memory a run actually touches (e.g. Mira's
// unconstrained profiling pass), and the arena grows on demand anyway.
func initialArenaCap(budget uint64) int64 {
	const eager = 1 << 24 // 16 MiB
	if budget+(1<<16) < eager {
		return int64(budget + (1 << 16))
	}
	return eager
}

// Clock returns the runtime's virtual clock.
func (r *Runtime) Clock() *netsim.Clock { return r.clock }

// Link returns the simulated network link.
func (r *Runtime) Link() *netsim.Link { return r.link }

// Model returns the cost model in use.
func (r *Runtime) Model() *netsim.CostModel { return &r.model }

// Arena exposes the local memory slab (the interpreter reads and writes
// through it using localized addresses).
func (r *Runtime) Arena() *Arena { return r.arena }

// Stats returns a copy of the global counters.
func (r *Runtime) Stats() RuntimeStats { return r.stats }

// DSByID returns the data structure with the given handle, or nil.
func (r *Runtime) DSByID(id int) *DS {
	if id < 0 || id >= len(r.dss) {
		return nil
	}
	return r.dss[id]
}

// NumDS returns the number of registered data structures.
func (r *Runtime) NumDS() int { return len(r.dss) }

// PinnedUsed and RemotableUsed report current local memory consumption.
func (r *Runtime) PinnedUsed() uint64 { return r.pinnedUsed }

// RemotableUsed reports bytes of remotable local memory in use.
func (r *Runtime) RemotableUsed() uint64 { return r.remotableUsed }

// RegisterDS registers a data structure with compiler-provided metadata
// and returns its runtime state. IDs must be registered densely from 0.
func (r *Runtime) RegisterDS(id int, meta DSMeta) (*DS, error) {
	if id != len(r.dss) {
		return nil, fmt.Errorf("farmem: non-dense DS id %d (have %d)", id, len(r.dss))
	}
	if id > MaxDS {
		return nil, fmt.Errorf("farmem: DS id %d exceeds handle space", id)
	}
	if meta.ObjSize <= 0 {
		meta.ObjSize = 4096
	}
	meta.ObjSize = nextPow2(meta.ObjSize)
	d := &DS{
		ID:          id,
		Meta:        meta,
		objShift:    log2(meta.ObjSize),
		prefetcher:  nullPrefetcher{},
		maxInflight: r.defaultMaxInflight,
		label:       strconv.Itoa(id),
	}
	r.dss = append(r.dss, d)
	return d, nil
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func log2(n int) uint {
	s := uint(0)
	for 1<<s < n {
		s++
	}
	return s
}

// SetPlacement configures the remoting decision for a structure.
func (r *Runtime) SetPlacement(id int, p Placement) error {
	d := r.DSByID(id)
	if d == nil {
		return fmt.Errorf("farmem: SetPlacement: unknown DS %d", id)
	}
	d.placement = p
	return nil
}

// SetPrefetcher installs a prefetcher for a structure.
func (r *Runtime) SetPrefetcher(id int, p Prefetcher) error {
	d := r.DSByID(id)
	if d == nil {
		return fmt.Errorf("farmem: SetPrefetcher: unknown DS %d", id)
	}
	if p == nil {
		p = nullPrefetcher{}
	}
	d.prefetcher = p
	return nil
}
