package farmem

import (
	"errors"

	"cards/internal/rdma"
)

// Asynchronous batched write-back pipeline.
//
// On the synchronous path a dirty eviction pays a full store round trip
// inside the deref that triggered it: the application thread blocks on
// WriteObj before the freed frame can be reused. With a store that
// implements AsyncWriteStore (the pipelined remote client, the sharded
// store), the runtime instead
//
//   - copies the dirty payload into a pooled staging buffer,
//   - frees the frame immediately (the eviction completes at memory
//     speed),
//   - issues the write asynchronously; the transport coalesces staged
//     writes from many evictions into WRITEBATCH doorbells.
//
// Invariants the staging map enforces:
//
//   - Read-your-writes: while a write-back is staged, the staging buffer
//     holds the freshest bytes. A deref of the object is served by
//     copying staging -> frame (derefFromStaging), never by a remote
//     READ that could observe the pre-write value; prefetchers skip such
//     objects for the same reason.
//   - Per-object write ordering: the transport may reorder independent
//     WRITEBATCH frames (they execute on a worker pool), so the runtime
//     never has two unacknowledged writes of one object in flight — a
//     re-eviction waits out the object's previous staged write first.
//   - Never silently retry a write: an uncertain or failed async write
//     is reissued *here*, synchronously, where the full-object payload
//     makes the replay idempotent (see storeWrite). If even the reissue
//     is refused (degraded shard), the entry parks: the staging buffer
//     then holds the only durable copy until a recovery drain.
//
// Memory is bounded by Config.WriteBackBudget: once staged-but-unsettled
// payload exceeds it, the next dirty eviction blocks on the oldest
// staged write (backpressure), after first harvesting any completions
// that arrived opportunistically.

// AsyncWriteStore is a Store that can additionally issue writes without
// blocking the caller. IssueWrite starts persisting src and returns
// immediately; done is invoked exactly once — possibly on another
// goroutine, possibly before IssueWrite returns — when the write is
// durable or has failed, and must not block. src must remain valid and
// unmodified until done fires. Detected by type assertion, so plain
// Stores keep the synchronous eviction path unchanged.
type AsyncWriteStore interface {
	Store
	IssueWrite(ds, idx int, src []byte, done func(error))
}

// wbKey identifies one staged object.
type wbKey struct {
	ds, idx int
}

// pendingWB is one staged write-back: the payload snapshot, its
// completion channel, and the virtual cycle at which the transfer
// settles. Like pendingFetch, the store's completion callback fills
// exactly one slot of done and the single-threaded runtime harvests it.
type pendingWB struct {
	key  wbKey
	d    *DS
	idx  int
	buf  []byte // pooled staging snapshot of the dirty payload
	size int
	// exts, when non-nil, are the modified ranges within buf: the write
	// was issued as a range write (dirtyrange.go). buf still holds the
	// FULL object so a synchronous reissue replays the whole image.
	exts    []rdma.Extent
	doneAt  uint64 // virtual settle cycle (link.WriteBackAsync)
	done    chan error
	err     error
	settled bool
	// parked marks an entry whose write — async and sync reissue both —
	// was refused (degraded shard): buf holds the only durable copy and
	// the entry waits for a recovery drain.
	parked bool
}

// wait blocks until the write completes and returns its error.
func (p *pendingWB) wait() error {
	if !p.settled {
		p.err = <-p.done
		p.settled = true
	}
	return p.err
}

// ready polls for completion without blocking.
func (p *pendingWB) ready() bool {
	if p.settled {
		return true
	}
	select {
	case err := <-p.done:
		p.err = err
		p.settled = true
		return true
	default:
		return false
	}
}

// getWBBuf returns a staging buffer of exactly n bytes from the
// runtime's free list (single-threaded, so no locking). Buffers are
// pooled per size — data structures have fixed object sizes, so the
// lists converge to a handful of classes.
func (r *Runtime) getWBBuf(n int) []byte {
	if free := r.wbFree[n]; len(free) > 0 {
		b := free[len(free)-1]
		r.wbFree[n] = free[:len(free)-1]
		return b
	}
	return make([]byte, n)
}

// putWBBuf parks a staging buffer for reuse, keeping at most a small
// number of spares per size class.
func (r *Runtime) putWBBuf(b []byte) {
	if b == nil {
		return
	}
	if free := r.wbFree[len(b)]; len(free) < 32 {
		r.wbFree[len(b)] = append(free, b)
	}
}

// releaseWB removes a settled entry from the pending set and recycles
// its staging buffer. Order-list entries are dropped lazily (validity is
// rechecked against the map on every scan).
func (r *Runtime) releaseWB(p *pendingWB) {
	delete(r.wbPending, p.key)
	r.wbBytes -= uint64(p.size)
	r.putWBBuf(p.buf)
	p.buf = nil
	r.putExtBuf(p.exts)
	p.exts = nil
}

// settleWB consumes one staged write's completion (blocking if needed).
// On failure it records the fault against the breaker — unless the
// failure is a contained per-shard degradation — and reissues the write
// synchronously from the staging snapshot (the idempotent replay the
// transport refuses to do). Returns true when the entry was released,
// false when it parked on a degraded shard.
func (r *Runtime) settleWB(p *pendingWB) bool {
	if err := p.wait(); err == nil {
		r.releaseWB(p)
		return true
	}
	if r.breaker != nil && !errors.Is(p.err, ErrDegraded) && r.breaker.onFailure() {
		r.stats.BreakerTrips++
		r.emit(EvBreakerTrip, -1, 0, false)
	}
	r.stats.WriteBackReissues++
	if err := r.storeWrite(p.d, p.idx, p.buf); err == nil {
		r.link.WriteBack(p.size)
		r.releaseWB(p)
		return true
	}
	p.parked = true
	r.degradedDirty = true
	return false
}

// harvestWriteBacks opportunistically settles every staged write whose
// completion has already arrived, without blocking. Called before the
// budget check so completed writes never cause a backpressure stall.
//
// The wbBusy guard makes order-list scans non-reentrant: settleWB's
// synchronous reissue runs through storeOp, whose recovery hooks call
// drainParkedWB — which must not rebuild wbOrder under an active scan.
func (r *Runtime) harvestWriteBacks() {
	if r.wbBusy {
		return
	}
	r.wbBusy = true
	defer func() { r.wbBusy = false }()
	kept := r.wbOrder[:0]
	for _, p := range r.wbOrder {
		if r.wbPending[p.key] != p {
			continue // settled earlier; lazy order-list cleanup
		}
		if !p.parked && r.clock.Now() >= p.doneAt && p.ready() {
			if r.settleWB(p) {
				continue
			}
		}
		kept = append(kept, p)
	}
	r.wbOrder = kept
}

// waitOldestWB blocks on the oldest unsettled staged write to free
// budget. Returns false when nothing can be waited for (only parked
// entries remain, or nothing is pending).
func (r *Runtime) waitOldestWB() bool {
	for _, p := range r.wbOrder {
		if r.wbPending[p.key] != p || p.parked {
			continue
		}
		r.stats.WriteBackStalls++
		r.link.WaitUntil(p.doneAt)
		r.settleWB(p)
		return true
	}
	return false
}

// tryAsyncWriteBack stages the dirty payload of (d, idx) for
// asynchronous write-back and reports whether it did; false sends the
// eviction down the synchronous path (no async store, breaker not
// closed, budget unfree-able, or the object's previous write parked).
func (r *Runtime) tryAsyncWriteBack(d *DS, idx int) bool {
	if r.awstore == nil || r.breakerIsOpen() {
		return false
	}
	key := wbKey{d.ID, idx}
	if p, ok := r.wbPending[key]; ok {
		// Per-object ordering: the transport may reorder independent
		// batches, so wait out this object's previous write before
		// putting a newer one on the wire.
		if p.parked {
			return false
		}
		r.stats.WriteBackStalls++
		r.link.WaitUntil(p.doneAt)
		if !r.settleWB(p) {
			return false
		}
	}
	sz := d.Meta.ObjSize
	r.harvestWriteBacks()
	for r.wbBytes+uint64(sz) > r.wbBudget {
		if !r.waitOldestWB() {
			return false
		}
	}
	obj := &d.objs[idx]
	buf := r.getWBBuf(sz)
	copy(buf, r.arena.Bytes(obj.frame, sz))
	exts := r.rangeExtents(d, obj)
	p := &pendingWB{key: key, d: d, idx: idx, buf: buf, size: sz, exts: exts,
		done: make(chan error, 1)}
	if exts != nil {
		// Only the extent bytes ride the wire; the virtual link charge
		// shrinks with them.
		shipped := 0
		for _, e := range exts {
			shipped += int(e.Len)
		}
		p.doneAt = r.link.WriteBackAsync(shipped)
		r.stats.RangeWriteBacks++
		r.stats.RangeBytesSaved += uint64(sz - shipped)
	} else {
		p.doneAt = r.link.WriteBackAsync(sz)
	}
	r.wbPending[key] = p
	r.wbOrder = append(r.wbOrder, p)
	r.wbBytes += uint64(sz)
	r.stats.StagedWriteBacks++
	if exts != nil {
		r.rwstore.IssueWriteRanges(d.ID, idx, buf, exts, func(err error) { p.done <- err })
	} else {
		r.awstore.IssueWrite(d.ID, idx, buf, func(err error) { p.done <- err })
	}
	return true
}

// derefFromStaging serves the re-localization of an object whose
// freshest bytes sit in a staged write-back buffer (read-your-writes
// coherence). No network, no breaker gate — the bytes are local.
// Returns (false, nil) when the object has no staged write.
func (r *Runtime) derefFromStaging(d *DS, idx int) (bool, error) {
	key := wbKey{d.ID, idx}
	p, ok := r.wbPending[key]
	if !ok {
		return false, nil
	}
	// Snapshot the payload before allocFrame: evicting to make room can
	// settle (and recycle) this very entry through write-back
	// backpressure or a recovery drain.
	sz := d.Meta.ObjSize
	tmp := r.getWBBuf(sz)
	copy(tmp, p.buf)
	frame, err := r.allocFrame(d, idx)
	if err != nil {
		r.putWBBuf(tmp)
		return false, err
	}
	copy(r.arena.Bytes(frame, sz), tmp)
	r.putWBBuf(tmp)
	obj := &d.objs[idx]
	obj.frame = frame
	obj.state = objLocal
	if q, live := r.wbPending[key]; live && q == p && p.parked {
		// The parked staging copy was the only durable copy; the frame
		// takes over that role, so the object re-localizes dirty and the
		// staging budget is released. The remote base predates the parked
		// write, so the dirty region is unknown: full-object write-back.
		r.releaseWB(p)
		obj.dirty = true
		obj.rect = dirtyRect{full: true}
	}
	r.stats.WriteBackStagingHits++
	r.emit(EvMaterialize, d.ID, idx, false)
	return true, nil
}

// drainParkedWB reissues every parked staged write (called once a
// recovery epoch says their shards may be back). Returns true when some
// entries are still refused and remain parked.
func (r *Runtime) drainParkedWB() (remain bool) {
	return r.drainParked(nil, 0)
}

// drainParkedWBScoped is drainParkedWB restricted by the store's
// DrainScoper (when it has one): only entries whose owning slice
// recovered after sinceEpoch are reissued; the rest stay parked
// without a fail-fast attempt.
func (r *Runtime) drainParkedWBScoped(sinceEpoch uint64) (remain bool) {
	return r.drainParked(r.drainScoper, sinceEpoch)
}

func (r *Runtime) drainParked(scope DrainScoper, sinceEpoch uint64) (remain bool) {
	if r.wbBusy {
		// An order-list scan is active above us; leave its list alone and
		// report work remaining so degradedDirty stays armed.
		return true
	}
	r.wbBusy = true
	defer func() { r.wbBusy = false }()
	kept := r.wbOrder[:0]
	for _, p := range r.wbOrder {
		if r.wbPending[p.key] != p {
			continue
		}
		if !p.parked {
			kept = append(kept, p)
			continue
		}
		if scope != nil && !scope.ShouldDrain(p.d.ID, p.idx, sinceEpoch) {
			// Parked entries are stranded by definition; keep this one
			// armed for a future recovery epoch.
			remain = true
			kept = append(kept, p)
			continue
		}
		if err := r.storeWrite(p.d, p.idx, p.buf); err != nil {
			remain = true
			kept = append(kept, p)
			continue
		}
		r.link.WriteBack(p.size)
		r.stats.DrainedWriteBacks++
		r.releaseWB(p)
	}
	r.wbOrder = kept
	return remain
}

// DrainWriteBacks settles every staged write-back, blocking for
// in-flight ones and reissuing parked ones. It is the write-barrier a
// caller needs before treating the far tier as authoritative (benchmark
// epochs, checksum verification, Close). Entries whose reissue is still
// refused stay parked; the first such error is returned.
func (r *Runtime) DrainWriteBacks() error {
	if r.wbBusy {
		return nil
	}
	r.wbBusy = true
	defer func() { r.wbBusy = false }()
	var firstErr error
	order := r.wbOrder
	kept := order[:0]
	for _, p := range order {
		if r.wbPending[p.key] != p {
			continue
		}
		if !p.parked {
			r.link.WaitUntil(p.doneAt)
			if r.settleWB(p) {
				continue
			}
		}
		// Parked (possibly just now): one more synchronous attempt — a
		// recovered shard accepts it and the entry retires.
		r.stats.WriteBackReissues++
		if err := r.storeWrite(p.d, p.idx, p.buf); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			kept = append(kept, p)
			continue
		}
		r.link.WriteBack(p.size)
		r.releaseWB(p)
	}
	r.wbOrder = kept
	return firstErr
}

// StagedWriteBackBytes reports the staged-but-unsettled payload bytes
// currently held by the write-back pipeline.
func (r *Runtime) StagedWriteBackBytes() uint64 { return r.wbBytes }

// StagedWriteBackEntries reports the number of staged write-backs
// (in flight or parked).
func (r *Runtime) StagedWriteBackEntries() int { return len(r.wbPending) }
