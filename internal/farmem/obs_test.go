package farmem

import (
	"bytes"
	"encoding/json"
	"testing"

	"cards/internal/obs"
)

// driveRuntime produces fetches, prefetch hits, evictions and a spill on
// a small runtime so every observability surface has data.
func driveRuntime(t *testing.T) *Runtime {
	t.Helper()
	const obj = 4096
	r := New(Config{PinnedBudget: 1 << 12, RemotableBudget: 2 * obj, Tracer: obs.NewTracer(256)})
	if _, err := r.RegisterDS(0, DSMeta{Name: "probe", ObjSize: obj}); err != nil {
		t.Fatal(err)
	}
	r.SetPlacement(0, PlacePinned) // tiny pinned budget: will spill
	if _, err := r.DSAlloc(0, 1<<12); err != nil {
		t.Fatal(err)
	}
	addr, err := r.DSAlloc(0, 6*obj)
	if err != nil {
		t.Fatal(err)
	}
	// First-touch writes: materialize each object, then overflow the
	// 2-frame remotable budget so the cold ones are evicted dirty.
	for i := 0; i < 6; i++ {
		if _, err := r.Guard(addr+uint64(i*obj), true); err != nil {
			t.Fatal(err)
		}
	}
	// Object 0 was evicted above; touching it again is a demand fetch.
	if _, err := r.Guard(addr, false); err != nil {
		t.Fatal(err)
	}
	// Prefetch immediately before the access so the guard lands while
	// the line is still in flight (prefetch-hit path).
	d := r.DSByID(0)
	for i := 1; i < 6; i++ {
		r.PrefetchObj(d, 1+i)
		if _, err := r.Guard(addr+uint64(i*obj), false); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

// TestReportMatchesSnapshot verifies the acceptance property: every
// number Report prints is the value the Registry snapshot carries, so
// re-rendering from the same snapshot is byte-for-byte identical and the
// snapshot's counters equal the runtime's own tallies.
func TestReportMatchesSnapshot(t *testing.T) {
	r := driveRuntime(t)

	snap := r.ObsSnapshot()
	var a, b bytes.Buffer
	r.WriteReport(&a, snap)
	r.WriteReport(&b, snap)
	if a.String() != b.String() {
		t.Fatal("WriteReport is not deterministic for a fixed snapshot")
	}
	var c bytes.Buffer
	r.Report(&c)
	if c.String() != a.String() {
		t.Fatalf("Report() diverges from WriteReport(snapshot):\n%s\nvs\n%s", c.String(), a.String())
	}

	st := r.DSByID(0).Stats()
	rs := r.Stats()
	checks := []struct {
		name   string
		labels []string
		want   uint64
	}{
		{MetricDSHits, []string{"ds", "0"}, st.Hits},
		{MetricDSMisses, []string{"ds", "0"}, st.Misses},
		{MetricDSEvictions, []string{"ds", "0"}, st.Evictions},
		{MetricDSPrefetchIssued, []string{"ds", "0"}, st.PrefetchIssued},
		{MetricDSPrefetchHits, []string{"ds", "0"}, st.PrefetchHits},
		{MetricDSPinnedBytes, []string{"ds", "0"}, st.PinnedBytes},
		{MetricDSRemoteBytes, []string{"ds", "0"}, st.RemoteBytes},
		{MetricGuardChecks, nil, rs.GuardChecks},
		{MetricRemoteFetches, nil, rs.RemoteFetches},
		{MetricEvictions, nil, rs.Evictions},
		{MetricSpilledDS, nil, rs.SpilledDS},
		{MetricLinkBytesIn, nil, r.Link().BytesIn},
	}
	for _, c := range checks {
		if got := snap.Counter(c.name, c.labels...); got != c.want {
			t.Errorf("snapshot %s%v = %d, want %d", c.name, c.labels, got, c.want)
		}
	}
	if rs.RemoteFetches == 0 || rs.SpilledDS != 1 {
		t.Fatalf("workload did not exercise the slow paths: %+v", rs)
	}
}

// TestLatencyHistogramsObserved checks the live per-DS histograms fill
// on the fetch / prefetch-wait / evict paths.
func TestLatencyHistogramsObserved(t *testing.T) {
	r := driveRuntime(t)
	snap := r.ObsSnapshot()

	fetch := snap.Histogram(MetricFetchCycles, "ds", "0")
	if fetch.Count == 0 {
		t.Fatal("fetch histogram empty after remote fetches")
	}
	// A fetch costs at least the RTT; the histogram upper bound must
	// reflect that order of magnitude (factor-of-two buckets).
	if fetch.P50 < r.Model().RemoteRTT/2 {
		t.Fatalf("fetch P50 = %d, implausibly below RTT %d", fetch.P50, r.Model().RemoteRTT)
	}
	if snap.Histogram(MetricEvictCycles, "ds", "0").Count == 0 {
		t.Fatal("evict histogram empty after evictions")
	}
	if snap.Histogram(MetricPrefetchWaitCycles, "ds", "0").Count == 0 {
		t.Fatal("prefetch-wait histogram empty after prefetch hits")
	}
	if snap.Histogram(MetricLinkQueueDelay).Count == 0 {
		t.Fatal("adopted link queue-delay histogram missing from snapshot")
	}
}

// TestRuntimeTraceRing checks the runtime feeds the ring tracer and that
// the result exports as valid Chrome trace JSON.
func TestRuntimeTraceRing(t *testing.T) {
	r := driveRuntime(t)
	tr := r.Tracer()
	if tr.Len() == 0 {
		t.Fatal("tracer ring empty after instrumented run")
	}
	kinds := map[string]bool{}
	for _, ev := range tr.Events() {
		if ev.Cat != "farmem" {
			t.Fatalf("unexpected category %q", ev.Cat)
		}
		kinds[ev.Name] = true
	}
	for _, want := range []string{"fetch", "prefetch", "prefetch-hit", "evict", "spill", "materialize"} {
		if !kinds[want] {
			t.Errorf("trace missing %q events (have %v)", want, kinds)
		}
	}
	var b bytes.Buffer
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome trace invalid JSON: %v", err)
	}
}

// TestHookAndTracerCoexist verifies the legacy hook still fires when a
// ring tracer is installed, with identical event streams.
func TestHookAndTracerCoexist(t *testing.T) {
	const obj = 4096
	r := New(Config{PinnedBudget: 0, RemotableBudget: 2 * obj, Tracer: obs.NewTracer(64)})
	r.RegisterDS(0, DSMeta{Name: "d", ObjSize: obj})
	r.SetPlacement(0, PlaceRemotable)
	counter := NewEventCounter()
	r.SetEventHook(counter.Hook())
	addr, err := r.DSAlloc(0, 4*obj)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := r.Guard(addr+uint64(i*obj), true); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for _, n := range counter.Counts {
		total += n
	}
	if total == 0 {
		t.Fatal("legacy hook saw no events")
	}
	if got := r.Tracer().Len(); got != total {
		t.Fatalf("tracer saw %d events, hook saw %d", got, total)
	}
}
