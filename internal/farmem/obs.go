package farmem

import (
	"cards/internal/netsim"
	"cards/internal/obs"
)

// Metric names published by the runtime, following the project-wide
// cards_<layer>_<name> scheme. Per-data-structure series carry a
// ds="<id>" label; everything else is a single global series.
const (
	// Per-DS counters (label ds="<id>").
	MetricDSHits           = "cards_farmem_ds_hits_total"
	MetricDSMisses         = "cards_farmem_ds_misses_total"
	MetricDSColdFaults     = "cards_farmem_ds_cold_faults_total"
	MetricDSEvictions      = "cards_farmem_ds_evictions_total"
	MetricDSWriteBacks     = "cards_farmem_ds_writebacks_total"
	MetricDSPrefetchIssued = "cards_farmem_ds_prefetch_issued_total"
	MetricDSPrefetchHits   = "cards_farmem_ds_prefetch_hits_total"
	MetricDSPinnedBytes    = "cards_farmem_ds_pinned_bytes"
	MetricDSRemoteBytes    = "cards_farmem_ds_remote_bytes"
	MetricDSSpilled        = "cards_farmem_ds_spilled"

	// Per-DS latency histograms in virtual cycles (label ds="<id>"),
	// observed into single-writer locals on the slow paths and copied
	// into the registry by PublishObs.
	MetricFetchCycles        = "cards_farmem_fetch_cycles"
	MetricPrefetchWaitCycles = "cards_farmem_prefetch_wait_cycles"
	MetricEvictCycles        = "cards_farmem_evict_cycles"

	// Global runtime counters.
	MetricGuardChecks     = "cards_farmem_guard_checks_total"
	MetricFastPathHits    = "cards_farmem_fastpath_hits_total"
	MetricDerefCalls      = "cards_farmem_deref_calls_total"
	MetricRemoteFetches   = "cards_farmem_remote_fetches_total"
	MetricEvictions       = "cards_farmem_evictions_total"
	MetricSpilledDS       = "cards_farmem_spilled_ds_total"
	MetricAllLocalCalls   = "cards_farmem_all_local_calls_total"
	MetricOvercommitBytes = "cards_farmem_overcommit_bytes"

	// Fault-tolerance counters and the circuit-breaker state gauge
	// (0=closed 1=open 2=half-open; see breaker.go).
	MetricStoreRetries      = "cards_farmem_store_retries_total"
	MetricDegradedOps       = "cards_farmem_degraded_ops_total"
	MetricBreakerTrips      = "cards_farmem_breaker_trips_total"
	MetricBreakerRecoveries = "cards_farmem_breaker_recoveries_total"
	MetricDrainedWriteBacks = "cards_farmem_drained_writebacks_total"
	MetricBreakerState      = "cards_farmem_breaker_state"
	MetricRemotableBudget   = "cards_farmem_remotable_budget_bytes"

	// Asynchronous write-back pipeline (writeback.go): staged evictions,
	// backpressure stalls, synchronous reissues of failed async writes,
	// read-your-writes derefs served from staging, and the current
	// staged payload occupancy.
	MetricStagedWriteBacks       = "cards_farmem_staged_writebacks_total"
	MetricWriteBackStalls        = "cards_farmem_writeback_stalls_total"
	MetricWriteBackReissues      = "cards_farmem_writeback_reissues_total"
	MetricWriteBackStagingHits   = "cards_farmem_writeback_staging_hits_total"
	MetricWriteBackStagedBytes   = "cards_farmem_writeback_staged_bytes"
	MetricWriteBackStagedEntries = "cards_farmem_writeback_staged_entries"

	// Dirty-range write-back (dirtyrange.go): evictions that shipped
	// only the modified extents, and the object bytes that elision kept
	// off the wire.
	MetricRangeWriteBacks = "cards_farmem_range_writebacks_total"
	MetricRangeBytesSaved = "cards_farmem_range_bytes_saved_total"

	// Traversal offload (chase.go): programs shipped, path objects
	// delivered ahead of demand, derefs served from the chase staging
	// area, stale results dropped by the write-back generation guard,
	// and chases that degraded to per-hop reads.
	MetricChasesIssued     = "cards_chase_issued_total"
	MetricChaseHopsStaged  = "cards_chase_offloaded_hops_total"
	MetricChaseStagingHits = "cards_chase_staging_hits_total"
	MetricChaseStale       = "cards_chase_stale_total"
	MetricChaseFallbacks   = "cards_chase_fallbacks_total"
	MetricChaseStagedBytes = "cards_chase_staged_bytes"

	// Local memory occupancy gauges.
	MetricArenaUsed     = "cards_farmem_arena_used_bytes"
	MetricPinnedUsed    = "cards_farmem_pinned_used_bytes"
	MetricRemotableUsed = "cards_farmem_remotable_used_bytes"
	MetricInflightBytes = "cards_farmem_inflight_bytes"

	// Simulated link counters and queue depth.
	MetricLinkFetches      = "cards_netsim_fetches_total"
	MetricLinkPrefetches   = "cards_netsim_prefetches_total"
	MetricLinkWriteBacks   = "cards_netsim_writebacks_total"
	MetricLinkBytesIn      = "cards_netsim_bytes_in_total"
	MetricLinkBytesOut     = "cards_netsim_bytes_out_total"
	MetricLinkQueueBacklog = "cards_netsim_queue_backlog_cycles"
	MetricLinkQueueDelay   = "cards_netsim_queue_delay_cycles"
	MetricLinkRetries      = "cards_netsim_retries_total"
)

// cyclesPerMicro converts virtual cycles to trace microseconds at the
// paper's 2.4 GHz clock.
const cyclesPerMicro = uint64(netsim.DefaultHz / 1e6)

// Obs returns the runtime's metrics registry.
func (r *Runtime) Obs() *obs.Registry { return r.reg }

// Tracer returns the runtime's trace sink (nil when tracing is off).
func (r *Runtime) Tracer() *obs.Tracer { return r.tracer }

// PublishObs copies the runtime's single-threaded tallies — per-DS and
// global counters, latency histograms, occupancy gauges, link activity
// — into the registry, so a subsequent Snapshot sees a coherent
// point-in-time view.
func (r *Runtime) PublishObs() {
	reg := r.reg
	for _, d := range r.dss {
		st := d.stats
		l := d.label
		d.fetchHist.PublishTo(reg.Histogram(MetricFetchCycles, "ds", l))
		d.pfWaitHist.PublishTo(reg.Histogram(MetricPrefetchWaitCycles, "ds", l))
		d.evictHist.PublishTo(reg.Histogram(MetricEvictCycles, "ds", l))
		reg.Counter(MetricDSHits, "ds", l).Store(st.Hits)
		reg.Counter(MetricDSMisses, "ds", l).Store(st.Misses)
		reg.Counter(MetricDSColdFaults, "ds", l).Store(st.ColdFaults)
		reg.Counter(MetricDSEvictions, "ds", l).Store(st.Evictions)
		reg.Counter(MetricDSWriteBacks, "ds", l).Store(st.WriteBacks)
		reg.Counter(MetricDSPrefetchIssued, "ds", l).Store(st.PrefetchIssued)
		reg.Counter(MetricDSPrefetchHits, "ds", l).Store(st.PrefetchHits)
		reg.Counter(MetricDSPinnedBytes, "ds", l).Store(st.PinnedBytes)
		reg.Counter(MetricDSRemoteBytes, "ds", l).Store(st.RemoteBytes)
		spilled := int64(0)
		if d.spilled {
			spilled = 1
		}
		reg.Gauge(MetricDSSpilled, "ds", l).Set(spilled)
	}

	s := r.stats
	reg.Counter(MetricGuardChecks).Store(s.GuardChecks)
	reg.Counter(MetricFastPathHits).Store(s.FastPathHits)
	reg.Counter(MetricDerefCalls).Store(s.DerefCalls)
	reg.Counter(MetricRemoteFetches).Store(s.RemoteFetches)
	reg.Counter(MetricEvictions).Store(s.Evictions)
	reg.Counter(MetricSpilledDS).Store(s.SpilledDS)
	reg.Counter(MetricAllLocalCalls).Store(s.AllLocalCalls)
	reg.Counter(MetricOvercommitBytes).Store(s.OvercommitBytes)

	reg.Counter(MetricStoreRetries).Store(s.StoreRetries)
	reg.Counter(MetricDegradedOps).Store(s.DegradedOps)
	reg.Counter(MetricBreakerTrips).Store(s.BreakerTrips)
	reg.Counter(MetricBreakerRecoveries).Store(s.BreakerRecoveries)
	reg.Counter(MetricDrainedWriteBacks).Store(s.DrainedWriteBacks)
	reg.Gauge(MetricBreakerState).Set(int64(r.BreakerState()))
	reg.Gauge(MetricRemotableBudget).Set(int64(r.remotableBudget))

	reg.Counter(MetricStagedWriteBacks).Store(s.StagedWriteBacks)
	reg.Counter(MetricWriteBackStalls).Store(s.WriteBackStalls)
	reg.Counter(MetricWriteBackReissues).Store(s.WriteBackReissues)
	reg.Counter(MetricWriteBackStagingHits).Store(s.WriteBackStagingHits)
	reg.Counter(MetricRangeWriteBacks).Store(s.RangeWriteBacks)
	reg.Counter(MetricRangeBytesSaved).Store(s.RangeBytesSaved)
	reg.Gauge(MetricWriteBackStagedBytes).Set(int64(r.wbBytes))
	reg.Gauge(MetricWriteBackStagedEntries).Set(int64(len(r.wbPending)))

	reg.Counter(MetricChasesIssued).Store(s.ChasesIssued)
	reg.Counter(MetricChaseHopsStaged).Store(s.ChaseHopsStaged)
	reg.Counter(MetricChaseStagingHits).Store(s.ChaseStagingHits)
	reg.Counter(MetricChaseStale).Store(s.ChaseStale)
	reg.Counter(MetricChaseFallbacks).Store(s.ChaseFallbacks)
	reg.Gauge(MetricChaseStagedBytes).Set(int64(r.chaseStagedBytes))

	reg.Gauge(MetricArenaUsed).Set(int64(r.arena.Used()))
	reg.Gauge(MetricPinnedUsed).Set(int64(r.pinnedUsed))
	reg.Gauge(MetricRemotableUsed).Set(int64(r.remotableUsed))
	reg.Gauge(MetricInflightBytes).Set(int64(r.inflightBytes))

	reg.Counter(MetricLinkFetches).Store(r.link.Fetches)
	reg.Counter(MetricLinkPrefetches).Store(r.link.Prefetches)
	reg.Counter(MetricLinkWriteBacks).Store(r.link.WriteBacks)
	reg.Counter(MetricLinkBytesIn).Store(r.link.BytesIn)
	reg.Counter(MetricLinkBytesOut).Store(r.link.BytesOut)
	reg.Counter(MetricLinkRetries).Store(r.link.Retries)
	reg.Gauge(MetricLinkQueueBacklog).Set(int64(r.link.QueueBacklog()))
	r.link.QueueDelay.PublishTo(reg.Histogram(MetricLinkQueueDelay))
}

// ObsSnapshot publishes the current tallies and returns the resulting
// point-in-time snapshot — the single source Report, /stats and
// /metrics-style exports all render from.
func (r *Runtime) ObsSnapshot() *obs.Snapshot {
	r.PublishObs()
	return r.reg.Snapshot()
}
