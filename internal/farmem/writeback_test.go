package farmem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// slowWriteStore is a fake AsyncWriteStore: IssueWrite returns
// immediately and the completion is delivered from another goroutine
// after `delay` (or once `block` closes) — the shape of the pipelined
// TCP client's write window, with a controllable RTT.
type slowWriteStore struct {
	*MapStore
	delay time.Duration
	block chan struct{} // when non-nil, completions wait for close

	mu      sync.Mutex
	issued  int
	reads   int
	failIdx int // idx whose async write fails (-1: never)
}

func newSlowWriteStore(delay time.Duration) *slowWriteStore {
	return &slowWriteStore{MapStore: NewMapStore(), delay: delay, failIdx: -1}
}

func (s *slowWriteStore) ReadObj(ds, idx int, dst []byte) error {
	s.mu.Lock()
	s.reads++
	s.mu.Unlock()
	return s.MapStore.ReadObj(ds, idx, dst)
}

func (s *slowWriteStore) IssueWrite(ds, idx int, src []byte, done func(error)) {
	s.mu.Lock()
	s.issued++
	fail := idx == s.failIdx
	s.mu.Unlock()
	go func() {
		if s.block != nil {
			<-s.block
		} else if s.delay > 0 {
			time.Sleep(s.delay)
		}
		if fail {
			done(errors.New("injected async write failure"))
			return
		}
		done(s.WriteObj(ds, idx, src))
	}()
}

func (s *slowWriteStore) issuedWrites() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.issued
}

func (s *slowWriteStore) readCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reads
}

// storeWord reads the first 8 bytes of an object directly from the far
// tier (bypassing the runtime cache).
func storeWord(t *testing.T, st Store, objSize, idx int) uint64 {
	t.Helper()
	buf := make([]byte, objSize)
	if err := st.ReadObj(0, idx, buf); err != nil {
		t.Fatalf("store read obj %d: %v", idx, err)
	}
	return binary.LittleEndian.Uint64(buf)
}

func TestAsyncWriteStoreDetected(t *testing.T) {
	if r := New(Config{Store: NewMapStore()}); r.awstore != nil {
		t.Fatal("MapStore must not be detected as an async write store")
	}
	if r := New(Config{Store: newSlowWriteStore(0)}); r.awstore == nil {
		t.Fatal("slowWriteStore should be detected as an async write store")
	}
}

// TestEvictionDoesNotBlockOnWriteRTT is the tentpole's acceptance test
// at unit scope: K dirty evictions against a store with a long write
// RTT must complete in far less than one RTT — the synchronous path
// paid the full round trip inside each eviction.
func TestEvictionDoesNotBlockOnWriteRTT(t *testing.T) {
	const (
		obj = 256
		k   = 8
		rtt = 50 * time.Millisecond
	)
	store := newSlowWriteStore(rtt)
	r := New(Config{
		PinnedBudget: 1 << 20, RemotableBudget: uint64(2 * obj),
		Store: store, WriteBackBudget: 1 << 20,
	})
	r.RegisterDS(0, DSMeta{ObjSize: obj})
	r.SetPlacement(0, PlaceRemotable)
	addr, err := r.DSAlloc(0, int64((k+2)*obj))
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	for i := 0; i < k+2; i++ {
		p, err := r.Guard(addr+uint64(i*obj), true)
		if err != nil {
			t.Fatal(err)
		}
		r.WriteWord(p, uint64(1000+i))
	}
	elapsed := time.Since(start)
	if elapsed >= rtt {
		t.Fatalf("dirty-eviction walk took %v (>= one %v write RTT): eviction blocked on write-back", elapsed, rtt)
	}
	if got := r.Stats().StagedWriteBacks; got < k {
		t.Fatalf("StagedWriteBacks = %d, want >= %d", got, k)
	}

	if err := r.DrainWriteBacks(); err != nil {
		t.Fatal(err)
	}
	if n := r.StagedWriteBackEntries(); n != 0 {
		t.Fatalf("%d write-backs still staged after drain", n)
	}
	d := r.DSByID(0)
	for i := 0; i < k+2; i++ {
		if d.objs[i].state != objRemote {
			continue
		}
		if got := storeWord(t, store.MapStore, obj, i); got != uint64(1000+i) {
			t.Fatalf("far tier obj %d = %d, want %d", i, got, 1000+i)
		}
	}
}

// TestDerefServedFromStagingBuffer: while an object's write-back is in
// flight, a deref must observe the written bytes from the staging
// buffer — a remote READ would race the write and return the pre-write
// value (here: zeros, since the store never saw the object).
func TestDerefServedFromStagingBuffer(t *testing.T) {
	const obj = 128
	store := newSlowWriteStore(0)
	store.block = make(chan struct{})
	r := New(Config{
		PinnedBudget: 1 << 20, RemotableBudget: uint64(2 * obj),
		Store: store, WriteBackBudget: 1 << 20,
	})
	r.RegisterDS(0, DSMeta{ObjSize: obj})
	r.SetPlacement(0, PlaceRemotable)
	addr, err := r.DSAlloc(0, 3*obj)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		p, err := r.Guard(addr+uint64(i*obj), true)
		if err != nil {
			t.Fatal(err)
		}
		r.WriteWord(p, uint64(111+i))
	}
	d := r.DSByID(0)
	if d.objs[0].state != objRemote {
		t.Fatalf("obj 0 state = %d, want evicted (remote)", d.objs[0].state)
	}
	if r.StagedWriteBackEntries() == 0 {
		t.Fatal("no write-back staged for the evicted dirty object")
	}

	// Write-back still blocked: the store holds nothing for obj 0, so any
	// remote READ would return 0.
	p, err := r.Guard(addr, false)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := r.ReadWord(p); v != 111 {
		t.Fatalf("deref during in-flight write-back read %d, want 111 (stale remote read?)", v)
	}
	if got := r.Stats().WriteBackStagingHits; got != 1 {
		t.Fatalf("WriteBackStagingHits = %d, want 1", got)
	}

	close(store.block)
	if err := r.DrainWriteBacks(); err != nil {
		t.Fatal(err)
	}
	if got := storeWord(t, store.MapStore, obj, 0); got != 111 {
		t.Fatalf("far tier obj 0 = %d after drain, want 111", got)
	}
}

// TestWriteBackBudgetBackpressure: a staging budget of two objects must
// throttle a long dirty walk by blocking on the oldest staged write,
// never by unbounded staging — and every payload still lands.
func TestWriteBackBudgetBackpressure(t *testing.T) {
	const (
		obj = 128
		n   = 34
	)
	store := newSlowWriteStore(time.Millisecond)
	r := New(Config{
		PinnedBudget: 1 << 20, RemotableBudget: uint64(2 * obj),
		Store: store, WriteBackBudget: uint64(2 * obj),
	})
	r.RegisterDS(0, DSMeta{ObjSize: obj})
	r.SetPlacement(0, PlaceRemotable)
	addr, err := r.DSAlloc(0, int64(n*obj))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		p, err := r.Guard(addr+uint64(i*obj), true)
		if err != nil {
			t.Fatal(err)
		}
		r.WriteWord(p, uint64(2000+i))
	}
	if r.StagedWriteBackBytes() > uint64(2*obj) {
		t.Fatalf("staged bytes %d exceed the %d budget", r.StagedWriteBackBytes(), 2*obj)
	}
	if r.Stats().WriteBackStalls == 0 {
		t.Fatal("a 2-object staging budget over a 32-eviction walk must stall at least once")
	}
	if err := r.DrainWriteBacks(); err != nil {
		t.Fatal(err)
	}
	d := r.DSByID(0)
	for i := 0; i < n; i++ {
		if d.objs[i].state != objRemote {
			continue
		}
		if got := storeWord(t, store.MapStore, obj, i); got != uint64(2000+i) {
			t.Fatalf("far tier obj %d = %d, want %d", i, got, 2000+i)
		}
	}
}

// TestFailedAsyncWriteReissuedSynchronously: the transport never
// silently retries an unacknowledged write; the runtime reissues it
// here, where the full-object payload makes the replay idempotent.
func TestFailedAsyncWriteReissuedSynchronously(t *testing.T) {
	const obj = 128
	store := newSlowWriteStore(0)
	store.failIdx = 0
	r := New(Config{
		PinnedBudget: 1 << 20, RemotableBudget: uint64(2 * obj),
		Store: store, WriteBackBudget: 1 << 20,
	})
	r.RegisterDS(0, DSMeta{ObjSize: obj})
	r.SetPlacement(0, PlaceRemotable)
	addr, err := r.DSAlloc(0, 3*obj)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		p, err := r.Guard(addr+uint64(i*obj), true)
		if err != nil {
			t.Fatal(err)
		}
		r.WriteWord(p, uint64(300+i))
	}
	if err := r.DrainWriteBacks(); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().WriteBackReissues; got == 0 {
		t.Fatal("failed async write must be reissued synchronously")
	}
	if got := storeWord(t, store.MapStore, obj, 0); got != 300 {
		t.Fatalf("far tier obj 0 = %d after reissue, want 300", got)
	}
	if n := r.StagedWriteBackEntries(); n != 0 {
		t.Fatalf("%d write-backs still staged after drain", n)
	}
}

// flakyWriteStore fails writes with ErrDegraded while degraded and
// advances a recovery epoch on heal — the sharded store's contract.
type flakyWriteStore struct {
	*MapStore
	mu       sync.Mutex
	degraded bool
	epoch    uint64
}

func (s *flakyWriteStore) setDegraded(v bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.degraded && !v {
		s.epoch++
	}
	s.degraded = v
}

func (s *flakyWriteStore) RecoveryEpoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

func (s *flakyWriteStore) WriteObj(ds, idx int, src []byte) error {
	s.mu.Lock()
	bad := s.degraded
	s.mu.Unlock()
	if bad {
		return fmt.Errorf("flaky shard: %w", ErrDegraded)
	}
	return s.MapStore.WriteObj(ds, idx, src)
}

func (s *flakyWriteStore) IssueWrite(ds, idx int, src []byte, done func(error)) {
	done(s.WriteObj(ds, idx, src))
}

// parkStagedWrite drives a runtime over a degraded flakyWriteStore
// until one staged write-back is parked, returning the runtime, store,
// and the base address. Object 0 carries value 777; objects 1 and 2 are
// clean residents/evictees.
func parkStagedWrite(t *testing.T) (*Runtime, *flakyWriteStore, uint64) {
	t.Helper()
	const obj = 128
	store := &flakyWriteStore{MapStore: NewMapStore()}
	r := New(Config{
		PinnedBudget: 1 << 20, RemotableBudget: uint64(obj),
		Store: store, WriteBackBudget: 1 << 20,
	})
	r.RegisterDS(0, DSMeta{ObjSize: obj})
	r.SetPlacement(0, PlaceRemotable)
	addr, err := r.DSAlloc(0, 3*obj)
	if err != nil {
		t.Fatal(err)
	}
	// Materialize obj 1 clean (cold fault, no store traffic).
	if _, err := r.Guard(addr+obj, false); err != nil {
		t.Fatal(err)
	}
	store.setDegraded(true)
	// Dirty obj 0; its eviction (forced by touching obj 2) stages a
	// write-back whose async completion is ErrDegraded, and the drain's
	// synchronous reissue is refused too -> the entry parks.
	p, err := r.Guard(addr, true)
	if err != nil {
		t.Fatal(err)
	}
	r.WriteWord(p, 777)
	if _, err := r.Guard(addr+2*obj, false); err != nil {
		t.Fatal(err)
	}
	if n := r.StagedWriteBackEntries(); n != 1 {
		t.Fatalf("staged entries = %d, want 1", n)
	}
	if err := r.DrainWriteBacks(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("drain during shard outage: err = %v, want ErrDegraded", err)
	}
	if n := r.StagedWriteBackEntries(); n != 1 {
		t.Fatalf("parked entries = %d, want 1 (the refused write-back must survive)", n)
	}
	return r, store, addr
}

// TestParkedWriteBackDrainsOnRecoveryEpoch: a staged write refused by a
// degraded shard parks (the staging buffer is the only copy) and drains
// once the shard's recovery epoch advances.
func TestParkedWriteBackDrainsOnRecoveryEpoch(t *testing.T) {
	const obj = 128
	r, store, addr := parkStagedWrite(t)
	store.setDegraded(false)
	// Any successful store operation notices the epoch advance; reading
	// clean remote obj 1 is one.
	if _, err := r.Guard(addr+obj, false); err != nil {
		t.Fatal(err)
	}
	if n := r.StagedWriteBackEntries(); n != 0 {
		t.Fatalf("%d write-backs still parked after recovery epoch drain", n)
	}
	if got := r.Stats().DrainedWriteBacks; got == 0 {
		t.Fatal("recovery drain must count the parked write-back")
	}
	if got := storeWord(t, store.MapStore, obj, 0); got != 777 {
		t.Fatalf("far tier obj 0 = %d after recovery, want 777", got)
	}
}

// TestParkedWriteBackReclaimedByDeref: dereffing an object whose staged
// write is parked re-localizes it dirty from the staging buffer — no
// remote READ, no data loss — and releases the staging budget.
func TestParkedWriteBackReclaimedByDeref(t *testing.T) {
	const obj = 128
	r, store, addr := parkStagedWrite(t)
	p, err := r.Guard(addr, false)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := r.ReadWord(p); v != 777 {
		t.Fatalf("deref of parked object read %d, want 777", v)
	}
	d := r.DSByID(0)
	if !d.objs[0].dirty {
		t.Fatal("reclaimed object must re-localize dirty: the frame is now the only copy")
	}
	if n := r.StagedWriteBackEntries(); n != 0 {
		t.Fatalf("staged entries = %d after reclaim, want 0", n)
	}
	// After the shard heals, the ordinary dirty-drain paths persist it.
	store.setDegraded(false)
	if _, err := r.Guard(addr+obj, false); err != nil {
		t.Fatal(err)
	}
	if err := r.DrainWriteBacks(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if got := storeWord(t, store.MapStore, obj, 0); got != 777 {
		t.Fatalf("far tier obj 0 = %d, want 777", got)
	}
}

// TestPrefetchSkipsStagedWriteBack: speculatively re-fetching an object
// with an in-flight write-back would read the stale remote copy.
func TestPrefetchSkipsStagedWriteBack(t *testing.T) {
	const obj = 128
	store := newSlowWriteStore(0)
	store.block = make(chan struct{})
	defer close(store.block)
	r := New(Config{
		PinnedBudget: 1 << 20, RemotableBudget: uint64(4 * obj),
		Store: store, WriteBackBudget: 1 << 20,
	})
	r.RegisterDS(0, DSMeta{ObjSize: obj})
	r.SetPlacement(0, PlaceRemotable)
	addr, err := r.DSAlloc(0, 5*obj)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p, err := r.Guard(addr+uint64(i*obj), true)
		if err != nil {
			t.Fatal(err)
		}
		r.WriteWord(p, uint64(i))
	}
	d := r.DSByID(0)
	if d.objs[0].state != objRemote || r.StagedWriteBackEntries() == 0 {
		t.Fatal("setup: obj 0 should be evicted with its write-back staged")
	}
	before := store.readCount()
	r.PrefetchObj(d, 0)
	if d.objs[0].state != objRemote {
		t.Fatalf("prefetch of staged object changed state to %d", d.objs[0].state)
	}
	if got := store.readCount(); got != before {
		t.Fatal("prefetch of a staged object must not touch the store")
	}
	if got := d.Stats().PrefetchIssued; got != 0 {
		t.Fatalf("PrefetchIssued = %d, want 0", got)
	}
}
