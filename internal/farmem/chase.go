package farmem

import "cards/internal/rdma"

// Server-side traversal offload (the FeatChase extension, paper §4.2's
// pointer-chase pattern taken to its logical end). A K-hop pointer chase
// is the one access pattern a pipelined window cannot help: each hop's
// address comes out of the previous object, so K hops cost K dependent
// round trips even with every read in flight. When the far tier speaks
// the chase verbs, the runtime instead ships a compact traversal
// program — the data structure, a start object, the next-pointer field
// offset, and a hop budget — and receives the whole path in one round
// trip.
//
// The returned hops land in a staging area (chaseStaged) the deref slow
// path consults before paying a remote fetch, so the traversal's
// subsequent derefs complete at memory speed. Coherence invariants:
//
//   - Only hops whose object is remote AND has no staged write-back are
//     staged: for any other state the local tier holds fresher bytes.
//   - A dirty eviction (write-back) of any object of the structure bumps
//     the structure's chase generation; in-flight chase results issued
//     under an older generation are dropped wholesale rather than risk
//     staging bytes the server read before the write landed.
//   - An eviction of an object with a staged chase entry drops the entry
//     (the frame's bytes were newer if the object was dirty).
//
// Chases are always issued at full fidelity (Mask == 0): a staged hop
// must be byte-complete to serve an arbitrary later deref. The wire
// protocol's field-filter mask exists for clients that provably read
// only the filtered fields (see rdma.ChaseReq); the runtime cannot prove
// that for general derefs, so it never filters.

// ChaseStore is the synchronous traversal-offload surface of a far tier
// (remote.Resilient, shardmap.ShardedStore, replica.Store). Capability
// is advisory and session-scoped: it can flip after a reconnect or
// failover, so callers must still handle errors by degrading to per-hop
// reads.
type ChaseStore interface {
	ChaseCapable() bool
	Chase(req rdma.ChaseReq) (rdma.ChaseResult, error)
}

// AsyncChaseStore is a ChaseStore that can additionally issue a chase
// without blocking the caller; done is invoked exactly once — possibly
// on another goroutine — with a caller-owned result, and must not block.
// The runtime detects the capability by type assertion and only offloads
// through stores that support async issue (a blocking chase on the
// prefetch path would stall the application thread it exists to unblock).
type AsyncChaseStore interface {
	ChaseStore
	IssueChase(req rdma.ChaseReq, done func(rdma.ChaseResult, error))
}

// DefaultChaseHops is the hop budget a chase prefetcher ships per
// program when the caller does not choose one.
const DefaultChaseHops = 16

// pendingChase is one in-flight traversal program. Like pendingFetch,
// the store's completion callback fills exactly one slot of done and the
// single-threaded runtime harvests it with wait/ready.
type pendingChase struct {
	d        *DS
	start    int
	gen      uint64 // d.chaseGen at issue; stale results are dropped
	bytes    uint64 // inflightBytes charged (hop budget x object size)
	readyAt  uint64 // virtual settle cycle (link.FetchAsync)
	res      rdma.ChaseResult
	done     chan error
	err      error
	settled  bool
	consumed bool // settleChase ran; guards double-accounting
}

func (p *pendingChase) wait() error {
	if !p.settled {
		p.err = <-p.done
		p.settled = true
	}
	return p.err
}

func (p *pendingChase) ready() bool {
	if p.settled {
		return true
	}
	select {
	case err := <-p.done:
		p.err = err
		p.settled = true
		return true
	default:
		return false
	}
}

// ChaseReady reports whether traversal offload is currently usable for
// d: the far tier speaks the chase verbs on its live session, the
// breaker allows speculation, and the structure is a single-successor
// linked structure (the only shape a one-offset traversal program can
// describe). Prefetchers consult it to pick between offload and their
// per-hop fallback.
func (r *Runtime) ChaseReady(d *DS) bool {
	return r.chaser != nil && !r.breakerIsOpen() &&
		d.Meta.Recursive && len(d.Meta.PtrOffsets) == 1 &&
		r.chaser.ChaseCapable()
}

// chaseNextOff is the next-pointer offset a traversal program for d
// carries. Objects pack ObjSize/ElemSize elements, and the chain walks
// the elements in order — so the cross-OBJECT edge is the successor
// field of the last element packed into each object; every earlier
// element's successor stays inside the object. A program chasing the
// first element's field would visit the same object over and over.
func chaseNextOff(d *DS) int {
	off := d.Meta.PtrOffsets[0]
	if es := d.Meta.ElemSize; es > 0 && d.Meta.ObjSize >= 2*es {
		off += (d.Meta.ObjSize/es - 1) * es
	}
	return off
}

// ChasePrefetch offloads the traversal ahead of object idx of d: it
// reads the successor pointer of the (resident) object and, when the
// successor is remote and not already covered, ships a traversal program
// with the given hop budget. It reports whether the traversal ahead is
// covered by the offload machinery — false means the caller should fall
// back to per-hop prefetching.
func (r *Runtime) ChasePrefetch(d *DS, idx, hops int) bool {
	if !r.ChaseReady(d) {
		return false
	}
	word, ok := r.ObjectWord(d, idx, chaseNextOff(d))
	if !ok || !IsTagged(word) || DSOf(word) != d.ID {
		// End of chain, a cross-structure edge, or the object is not
		// resident: nothing a traversal program from here can cover.
		return false
	}
	off := OffOf(word)
	if off >= d.size {
		return false
	}
	start := int(off >> d.objShift)
	if d.objs[start].state != objRemote {
		return true // successor already local or arriving: covered
	}
	key := wbKey{d.ID, start}
	if _, staged := r.chaseStaged[key]; staged {
		return true // a previous chase already delivered it
	}
	if _, inflight := r.chaseStarts[key]; inflight {
		return true // a chase from here is already on the wire
	}
	if _, wb := r.wbPending[key]; wb {
		// The successor's freshest bytes sit in a staged write-back; the
		// deref path serves it from staging, and a chase through it could
		// observe the pre-write image.
		return false
	}
	return r.issueChase(d, start, hops)
}

// issueChase ships one traversal program starting at a remote object.
func (r *Runtime) issueChase(d *DS, start, hops int) bool {
	if hops <= 0 {
		hops = DefaultChaseHops
	}
	// The staged path and the in-flight programs together must not crowd
	// the cache: cap both at half the remotable budget, like prefetches.
	// Rather than starve when the full window does not fit (a tight budget
	// with per-hop prefetches already in flight), shrink the program to
	// the available headroom — a shorter chase still collapses its hops
	// into one round trip. Below two hops the program degenerates into a
	// plain prefetch read and is not worth a verb.
	objSize := uint64(d.Meta.ObjSize)
	half := r.remotableBudget / 2
	r.harvestChases()
	avail := uint64(0)
	if r.inflightBytes < half {
		avail = half - r.inflightBytes
	}
	if staged := uint64(0); r.chaseStagedBytes < half {
		staged = half - r.chaseStagedBytes
		if staged < avail {
			avail = staged
		}
	} else {
		avail = 0
	}
	if maxHops := avail / objSize; uint64(hops) > maxHops {
		if maxHops < 2 {
			return false
		}
		hops = int(maxHops)
	}
	bytes := uint64(hops) * objSize
	rootMine := r.beginRoot()
	p := &pendingChase{
		d:     d,
		start: start,
		gen:   d.chaseGen,
		bytes: bytes,
		done:  make(chan error, 1),
	}
	req := rdma.ChaseReq{
		DS:      uint32(d.ID),
		Start:   uint32(start),
		ObjSize: uint32(d.Meta.ObjSize),
		NextOff: uint32(chaseNextOff(d)),
		Hops:    uint32(hops),
	}
	r.chaser.IssueChase(req, func(res rdma.ChaseResult, err error) {
		p.res = res
		p.done <- err
	})
	// One round trip carries the whole window's payload.
	p.readyAt = r.link.FetchAsync(int(bytes))
	r.chaseStarts[wbKey{d.ID, start}] = p
	r.chaseInflight = append(r.chaseInflight, p)
	r.inflightBytes += bytes
	r.stats.ChasesIssued++
	d.stats.PrefetchIssued++
	r.emit(EvPrefetch, d.ID, start, false)
	r.endRoot(rootMine)
	return true
}

// harvestChases opportunistically settles every in-flight chase whose
// completion has arrived, staging the returned path. Non-blocking.
// Settling can issue a continuation program (which appends to the
// in-flight list) and issueChase harvests to reclaim headroom, so each
// program is unlinked before it settles and reentrant calls are no-ops.
func (r *Runtime) harvestChases() {
	if r.chaseHarvesting || len(r.chaseInflight) == 0 {
		return
	}
	r.chaseHarvesting = true
	for i := 0; i < len(r.chaseInflight); i++ {
		p := r.chaseInflight[i]
		if r.clock.Now() < p.readyAt || !p.ready() {
			continue
		}
		last := len(r.chaseInflight) - 1
		r.chaseInflight[i] = r.chaseInflight[last]
		r.chaseInflight[last] = nil
		r.chaseInflight = r.chaseInflight[:last]
		i--
		r.settleChase(p)
	}
	r.chaseHarvesting = false
}

// settleChase consumes one completed chase: release its in-flight
// charge, validate it against the structure's chase generation, and
// stage every hop the coherence invariants allow. A follow-up program is
// issued when the server stopped on the hop budget with the chain still
// live, so a long traversal keeps exactly one window on the wire.
func (r *Runtime) settleChase(p *pendingChase) {
	if p.consumed {
		return
	}
	p.consumed = true
	key := wbKey{p.d.ID, p.start}
	if r.chaseStarts[key] == p {
		delete(r.chaseStarts, key)
	}
	r.inflightBytes -= p.bytes
	if p.err != nil {
		// Transport trouble or a downgraded session: the traversal
		// degrades to per-hop reads (the deref path never depended on
		// this result arriving).
		r.stats.ChaseFallbacks++
		return
	}
	d := p.d
	if d.chaseGen != p.gen {
		// A write-back landed while the program was in flight: the server
		// may have walked a pre-write image. Drop the whole path.
		r.stats.ChaseStale++
		return
	}
	for _, h := range p.res.Hops {
		idx := int(h.Idx)
		if idx < 0 || idx >= len(d.objs) || len(h.Data) != d.Meta.ObjSize {
			continue
		}
		if d.objs[idx].state != objRemote {
			continue // local tier holds fresher (or equal) bytes
		}
		hkey := wbKey{d.ID, idx}
		if _, wb := r.wbPending[hkey]; wb {
			continue // staged write-back is fresher
		}
		if _, dup := r.chaseStaged[hkey]; dup {
			continue
		}
		// The hop data is caller-owned (the transport deep-copied it out
		// of the reply frame), so it stages without another copy.
		r.chaseStaged[hkey] = h.Data
		r.chaseStagedBytes += uint64(len(h.Data))
		r.stats.ChaseHopsStaged++
	}
	if p.res.Status == rdma.ChaseHops {
		// Budget spent, chain still live: keep the pipeline primed by
		// chasing on from the first unvisited node.
		word := p.res.Final
		if IsTagged(word) && DSOf(word) == d.ID && r.ChaseReady(d) {
			off := OffOf(word)
			if off < d.size {
				next := int(off >> d.objShift)
				nkey := wbKey{d.ID, next}
				_, staged := r.chaseStaged[nkey]
				_, inflight := r.chaseStarts[nkey]
				_, wb := r.wbPending[nkey]
				if !staged && !inflight && !wb && d.objs[next].state == objRemote {
					r.issueChase(d, next, int(p.bytes/uint64(d.Meta.ObjSize)))
				}
			}
		}
	}
}

// derefFromChase serves the re-localization of a remote object from the
// chase staging area, or by waiting out an in-flight chase that started
// exactly at this object (the common case when a traversal catches up
// with its offload window). Returns (false, nil) when the chase
// machinery has nothing for this object.
func (r *Runtime) derefFromChase(d *DS, idx int) (bool, error) {
	if r.chaser == nil {
		return false, nil
	}
	key := wbKey{d.ID, idx}
	r.harvestChases()
	b, ok := r.chaseStaged[key]
	if !ok {
		p, inflight := r.chaseStarts[key]
		if !inflight {
			return false, nil
		}
		// The chase covering this object is still on the wire: wait it
		// out — the remaining flight time is cheaper than a round trip.
		// Unlink before settling: settle can issue a continuation, which
		// harvests, and a still-linked settled program would settle twice.
		start := r.clock.Now()
		r.link.WaitUntil(p.readyAt)
		p.wait()
		r.removeChaseInflight(p)
		r.settleChase(p)
		d.pfWaitHist.Observe(r.clock.Now() - start)
		b, ok = r.chaseStaged[key]
		if !ok {
			return false, nil
		}
	}
	delete(r.chaseStaged, key)
	r.chaseStagedBytes -= uint64(len(b))
	frame, err := r.allocFrame(d, idx)
	if err != nil {
		return false, err
	}
	copy(r.arena.Bytes(frame, d.Meta.ObjSize), b)
	obj := &d.objs[idx]
	obj.frame = frame
	obj.state = objLocal
	r.stats.ChaseStagingHits++
	d.stats.PrefetchHits++
	r.emit(EvPrefetchHit, d.ID, idx, false)
	return true, nil
}

// removeChaseInflight drops one settled program from the in-flight list
// (harvestChases compacts the list itself; this is for the targeted
// settle on the deref wait path).
func (r *Runtime) removeChaseInflight(p *pendingChase) {
	for i, q := range r.chaseInflight {
		if q == p {
			last := len(r.chaseInflight) - 1
			r.chaseInflight[i] = r.chaseInflight[last]
			r.chaseInflight[last] = nil
			r.chaseInflight = r.chaseInflight[:last]
			return
		}
	}
}

// invalidateChase drops the staged chase entry of one object (called on
// eviction: the evicted frame's bytes supersede the staged snapshot).
func (r *Runtime) invalidateChase(d *DS, idx int) {
	if r.chaseStaged == nil {
		return
	}
	key := wbKey{d.ID, idx}
	if b, ok := r.chaseStaged[key]; ok {
		delete(r.chaseStaged, key)
		r.chaseStagedBytes -= uint64(len(b))
	}
}

// ChaseStagedEntries reports the number of chase-delivered objects
// currently staged for deref consumption.
func (r *Runtime) ChaseStagedEntries() int { return len(r.chaseStaged) }
