package farmem

import (
	"bytes"
	"strings"
	"testing"
)

func TestEventTraceCoversLifecycle(t *testing.T) {
	obj := 4096
	r := New(Config{PinnedBudget: 1 << 12, RemotableBudget: uint64(2 * obj)})
	r.RegisterDS(0, DSMeta{Name: "d", ObjSize: obj})
	r.SetPlacement(0, PlacePinned) // tiny pinned budget: will spill

	counter := NewEventCounter()
	var buf bytes.Buffer
	writer := TraceWriter(&buf)
	r.SetEventHook(func(e Event) {
		counter.Hook()(e)
		writer(e)
	})

	addr1, err := r.DSAlloc(0, 1<<12) // fills pinned
	if err != nil {
		t.Fatal(err)
	}
	addr2, err := r.DSAlloc(0, int64(6*obj)) // forces the spill
	if err != nil {
		t.Fatal(err)
	}
	if IsTagged(addr1) || !IsTagged(addr2) {
		t.Fatal("placement expectations wrong")
	}
	// Touch everything (materialize + evictions), then re-read (fetch).
	for i := 0; i < 6; i++ {
		if _, err := r.Guard(addr2+uint64(i*obj), true); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Guard(addr2, false); err != nil {
		t.Fatal(err)
	}
	// Prefetch a remote object, then consume it.
	d := r.DSByID(0)
	for i := 1; i < 6; i++ {
		r.PrefetchObj(d, i)
	}
	for i := 1; i < 6; i++ {
		if _, err := r.Guard(addr2+uint64(i*obj), false); err != nil {
			t.Fatal(err)
		}
	}

	for _, kind := range []EventKind{EvSpill, EvMaterialize, EvEvict, EvFetch, EvPrefetch, EvPrefetchHit} {
		if counter.Counts[kind] == 0 {
			t.Errorf("no %s events traced; counts = %v", kind, counter.Counts)
		}
	}
	text := buf.String()
	for _, want := range []string{"spill", "materialize", "evict", "fetch", "dirty"} {
		if !strings.Contains(text, want) {
			t.Errorf("trace text missing %q:\n%s", want, text)
		}
	}
}

func TestNilHookIsFree(t *testing.T) {
	r := New(Config{PinnedBudget: 1 << 16, RemotableBudget: 1 << 16})
	r.RegisterDS(0, DSMeta{ObjSize: 4096})
	r.SetPlacement(0, PlaceRemotable)
	addr, _ := r.DSAlloc(0, 4096)
	if _, err := r.Guard(addr, true); err != nil {
		t.Fatal(err)
	}
	r.SetEventHook(nil) // clearing must be safe
	if _, err := r.Guard(addr, false); err != nil {
		t.Fatal(err)
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EvFetch, EvPrefetch, EvPrefetchHit, EvEvict, EvSpill, EvMaterialize}
	for _, k := range kinds {
		if strings.HasPrefix(k.String(), "event(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if !strings.HasPrefix(EventKind(99).String(), "event(") {
		t.Error("unknown kind should fall back")
	}
}

func TestReportRendersSummary(t *testing.T) {
	obj := 4096
	r := New(Config{PinnedBudget: 1 << 12, RemotableBudget: uint64(2 * obj)})
	r.RegisterDS(0, DSMeta{Name: "a-very-long-structure-name-indeed", ObjSize: obj})
	r.RegisterDS(1, DSMeta{Name: "pinned", ObjSize: obj})
	r.SetPlacement(0, PlaceRemotable)
	r.SetPlacement(1, PlacePinned)
	a0, _ := r.DSAlloc(0, int64(4*obj))
	r.DSAlloc(1, 512)
	for i := 0; i < 4; i++ {
		if _, err := r.Guard(a0+uint64(i*obj), true); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	r.Report(&buf)
	text := buf.String()
	for _, want := range []string{"remotable", "pinned", "guard checks", "evict", "…"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}
