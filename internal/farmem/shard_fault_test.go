package farmem

import (
	"errors"
	"fmt"
	"testing"
)

// shardFake models a sharded store from the runtime's point of view:
// objects with idx%2 == 1 live on a "shard" that can be degraded, in
// which case their operations fail fast with ErrDegraded. Recovery
// bumps the epoch like shardmap.ShardedStore does.
type shardFake struct {
	inner    *MapStore
	degraded bool
	epoch    uint64

	degradedOps int
}

func (s *shardFake) owns(idx int) bool { return idx%2 == 1 }

func (s *shardFake) gate(idx int) error {
	if s.degraded && s.owns(idx) {
		s.degradedOps++
		return fmt.Errorf("shard 1: %w", ErrDegraded)
	}
	return nil
}

func (s *shardFake) ReadObj(ds, idx int, dst []byte) error {
	if err := s.gate(idx); err != nil {
		return err
	}
	return s.inner.ReadObj(ds, idx, dst)
}

func (s *shardFake) WriteObj(ds, idx int, src []byte) error {
	if err := s.gate(idx); err != nil {
		return err
	}
	return s.inner.WriteObj(ds, idx, src)
}

func (s *shardFake) recover() {
	s.degraded = false
	s.epoch++
}

func (s *shardFake) RecoveryEpoch() uint64 { return s.epoch }

// shardFaultRuntime builds a runtime over the fake with a 4-object
// remotable budget and a 16-object working set, no global breaker.
func shardFaultRuntime(t *testing.T, store *shardFake) (*Runtime, *DS, uint64) {
	t.Helper()
	const objSize = 4096
	r := New(Config{
		PinnedBudget:    1 << 20,
		RemotableBudget: 4 * objSize,
		Store:           store,
	})
	d, err := r.RegisterDS(0, DSMeta{Name: "a", ObjSize: objSize, ElemSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetPlacement(0, PlaceRemotable); err != nil {
		t.Fatal(err)
	}
	addr, err := r.DSAlloc(0, 16*objSize)
	if err != nil {
		t.Fatal(err)
	}
	return r, d, addr
}

func writeObj(t *testing.T, r *Runtime, addr uint64, idx int, v uint64) {
	t.Helper()
	p, err := r.Guard(addr+uint64(idx)*4096, true)
	if err != nil {
		t.Fatalf("write obj %d: %v", idx, err)
	}
	if err := r.WriteWord(p, v); err != nil {
		t.Fatal(err)
	}
}

func readObj(t *testing.T, r *Runtime, addr uint64, idx int) (uint64, error) {
	t.Helper()
	p, err := r.Guard(addr+uint64(idx)*4096, false)
	if err != nil {
		return 0, err
	}
	return r.ReadWord(p)
}

func TestShardDegradedDerefFailsFastWithoutGlobalTrip(t *testing.T) {
	store := &shardFake{inner: NewMapStore()}
	r, _, addr := shardFaultRuntime(t, store)
	defer r.Close()

	// Materialize and evict everything so all objects are remote.
	for idx := 0; idx < 16; idx++ {
		writeObj(t, r, addr, idx, uint64(idx))
	}
	for idx := 0; idx < 16; idx++ {
		if _, err := readObj(t, r, addr, idx); err != nil {
			t.Fatal(err)
		}
	}

	store.degraded = true
	// Remote derefs of shard-1 objects fail fast with ErrDegraded; the
	// retry loop must not spin (one gate refusal per deref).
	failed := 0
	for idx := 1; idx < 16; idx += 2 {
		if _, err := readObj(t, r, addr, idx); err != nil {
			if !errors.Is(err, ErrDegraded) {
				t.Fatalf("obj %d: %v, want ErrDegraded", idx, err)
			}
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("no shard-1 object was remote; working set too small")
	}
	if store.degradedOps != failed {
		t.Fatalf("%d store refusals for %d failed derefs: retried a degraded shard", store.degradedOps, failed)
	}
	if r.Stats().BreakerTrips != 0 {
		t.Fatal("per-shard degradation tripped the global breaker")
	}
	// Shard-0 objects keep serving exactly.
	for idx := 0; idx < 16; idx += 2 {
		v, err := readObj(t, r, addr, idx)
		if err != nil {
			t.Fatalf("healthy shard obj %d: %v", idx, err)
		}
		if v != uint64(idx) {
			t.Fatalf("obj %d = %d, want %d", idx, v, idx)
		}
	}
}

func TestShardDegradedDirtyPinnedThenDrainedOnEpoch(t *testing.T) {
	store := &shardFake{inner: NewMapStore()}
	r, d, addr := shardFaultRuntime(t, store)
	defer r.Close()

	// Bring two shard-1 objects local and dirty them, then degrade the
	// shard: their write-backs now have nowhere to go.
	writeObj(t, r, addr, 1, 101)
	writeObj(t, r, addr, 3, 103)
	store.degraded = true

	// Thrash shard-0 objects well past the 4-object budget. Eviction
	// must route around the two pinned dirty objects (growing the budget
	// if everything else is protected) and the run must stay error-free.
	for round := 0; round < 4; round++ {
		for idx := 0; idx < 16; idx += 2 {
			writeObj(t, r, addr, idx, uint64(1000+idx))
		}
	}
	if used, ceil := r.RemotableUsed(), uint64(4*4*4096); used > ceil {
		t.Fatalf("remotable used %d exceeds ceiling %d", used, ceil)
	}
	if drained := r.Stats().DrainedWriteBacks; drained != 0 {
		t.Fatalf("%d write-backs drained while shard down", drained)
	}

	// Recover the shard and run one more successful store op (obj 5 is
	// on the recovered shard and could not have been fetched during the
	// outage, so reading it must miss): the epoch drain then writes the
	// stranded objects back and unpins them.
	store.recover()
	if _, err := readObj(t, r, addr, 5); err != nil {
		t.Fatal(err)
	}
	if drained := r.Stats().DrainedWriteBacks; drained < 2 {
		t.Fatalf("drained %d write-backs after recovery, want >= 2", drained)
	}
	// The drained copies must be the dirty values.
	buf := make([]byte, 8)
	if err := store.inner.ReadObj(d.ID, 1, buf); err != nil {
		t.Fatal(err)
	}
	if got := uint64(buf[0]) | uint64(buf[1])<<8; got != 101 {
		t.Fatalf("store holds %d for obj 1, want 101", got)
	}
	// And the budget shrinks back to its configured size as the cache
	// evicts down.
	for idx := 0; idx < 16; idx++ {
		if v, err := readObj(t, r, addr, idx); err != nil {
			t.Fatalf("post-recovery obj %d: %v", idx, err)
		} else if idx == 1 && v != 101 || idx == 3 && v != 103 {
			t.Fatalf("post-recovery obj %d = %d", idx, v)
		}
	}
}
