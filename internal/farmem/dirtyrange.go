package farmem

import "cards/internal/rdma"

// Compiler-aided dirty-range write-back.
//
// A write guard knows statically which bytes the guarded store touches
// (the field offset and width the compiler derived — ir.Instr.GLo/GHi).
// The runtime accumulates those spans per resident object into a dirty
// rectangle: the element rows touched × the byte range within one
// element. At eviction time, when the rectangle covers a small fraction
// of the object, the write-back ships only the modified byte ranges as
// (offset, length) extents over the transport's WRITERANGE sub-encoding
// (remote.IssueWriteRanges) instead of the whole object; the far tier
// splices them into its stored image (read-modify-write).
//
// Soundness: a local frame always starts as an exact copy of the remote
// image (a fetch) or as zeros matching an absent remote object (a cold
// materialize), and every store through the runtime marks its range —
// spanless writes (plain Guard/Deref, WriteFootprint-less structures)
// widen the rectangle to the whole object. Bytes outside the rectangle
// are therefore identical on both sides, and splicing only the
// rectangle reproduces the full local image remotely. The staging
// buffer still snapshots the FULL object, so the synchronous reissue of
// a failed or uncertain range write (settleWB, drainParked) replays the
// whole image idempotently — correctness never depends on the range
// path.

// dirtyRect is the accumulated written region of one resident object:
// element rows [eLo, eHi] (inclusive) crossed with the byte range
// [fLo, fHi) within one element row. full marks unknown coverage (a
// spanless write): the whole object is dirty.
type dirtyRect struct {
	eLo, eHi uint16
	fLo, fHi uint16
	full     bool
}

// rangeCoverageMax gates the range write-back: extents are shipped only
// while they cover at most ~60% of the object (coverage*10 <= size*6);
// past that the framing overhead and the server-side splice cost more
// than the bytes saved, and the full object goes out instead.
const rangeCoverageMax = 6

// rectElem returns the dirty-rectangle row size for d: the element size
// when elements tile the object exactly and offsets fit the rect's u16
// fields, else the whole object (a single row).
func rectElem(d *DS) int {
	es := d.Meta.ElemSize
	if es > 0 && d.Meta.ObjSize%es == 0 && d.Meta.ObjSize <= 0xFFFF {
		return es
	}
	return d.Meta.ObjSize
}

// markDirty folds one written byte span [objOff+lo, objOff+hi) into the
// object's dirty rectangle. hi <= lo means the span is unknown; the
// structure's compiler-derived write footprint (DSMeta.WriteFootprint)
// then bounds the field range for the touched element, and when even
// that is absent the rectangle widens to the whole object.
func (r *Runtime) markDirty(d *DS, obj *FarObj, objOff, lo, hi int) {
	fresh := !obj.dirty
	obj.dirty = true
	if obj.rect.full && !fresh {
		return
	}
	elem := rectElem(d)
	a, b := objOff+lo, objOff+hi
	if hi <= lo {
		// Spanless write: fall back to the structure's static footprint.
		if fp := d.Meta.WriteFootprint; len(fp) > 0 && elem != d.Meta.ObjSize {
			e := uint16(objOff / elem)
			f0, f1 := fp[0][0], fp[0][1]
			for _, w := range fp[1:] {
				f0, f1 = min(f0, w[0]), max(f1, w[1])
			}
			r.unionRect(obj, fresh, e, e, clampU16(f0, elem), clampU16(f1, elem))
			return
		}
		obj.rect = dirtyRect{full: true}
		return
	}
	if a < 0 {
		a = 0
	}
	if b > d.Meta.ObjSize {
		b = d.Meta.ObjSize
	}
	if b <= a {
		return
	}
	e0, e1 := a/elem, (b-1)/elem
	var f0, f1 int
	if e0 == e1 {
		f0, f1 = a-e0*elem, b-e0*elem
	} else {
		// The span crosses element rows: the rectangle abstraction can
		// only widen the field range to the full row.
		f0, f1 = 0, elem
	}
	r.unionRect(obj, fresh, uint16(e0), uint16(e1), clampU16(f0, elem), clampU16(f1, elem))
}

func clampU16(v, lim int) uint16 {
	if v < 0 {
		return 0
	}
	if v > lim {
		v = lim
	}
	return uint16(v)
}

func (r *Runtime) unionRect(obj *FarObj, fresh bool, eLo, eHi, fLo, fHi uint16) {
	if fresh {
		obj.rect = dirtyRect{eLo: eLo, eHi: eHi, fLo: fLo, fHi: fHi}
		return
	}
	if obj.rect.full {
		return
	}
	rc := &obj.rect
	rc.eLo, rc.eHi = min(rc.eLo, eLo), max(rc.eHi, eHi)
	rc.fLo, rc.fHi = min(rc.fLo, fLo), max(rc.fHi, fHi)
}

// RangeWriteStore is an AsyncWriteStore that can ship only the modified
// byte ranges of an object: src is the full image, exts the modified
// (offset, length) ranges within it, and the far tier splices the
// extent bytes into its stored copy. Implemented by the compact-tier
// remote clients; detected by type assertion when Config.RangeWriteback
// is set.
type RangeWriteStore interface {
	AsyncWriteStore
	IssueWriteRanges(ds, idx int, src []byte, exts []rdma.Extent, done func(error))
}

// rangeExtents derives the write-back extents for obj from its dirty
// rectangle, one extent per touched element row. It returns nil — full
// object — when the range path is off, the rectangle is unknown, the
// coverage gate fails, or the row count exceeds the wire's extent cap.
func (r *Runtime) rangeExtents(d *DS, obj *FarObj) []rdma.Extent {
	if r.rwstore == nil || obj.rect.full || !obj.dirty {
		return nil
	}
	rc := obj.rect
	elem := rectElem(d)
	rows := int(rc.eHi) - int(rc.eLo) + 1
	fw := int(rc.fHi) - int(rc.fLo)
	if fw <= 0 || rows <= 0 || rows > rdma.MaxExtents {
		return nil
	}
	covered := rows * fw
	if covered*10 > d.Meta.ObjSize*rangeCoverageMax {
		return nil
	}
	if fw == elem && rows > 1 {
		// Adjacent full rows merge into one contiguous extent.
		exts := r.getExtBuf(1)
		return append(exts, rdma.Extent{Off: uint32(int(rc.eLo) * elem), Len: uint32(covered)})
	}
	exts := r.getExtBuf(rows)
	for i := 0; i < rows; i++ {
		off := (int(rc.eLo)+i)*elem + int(rc.fLo)
		exts = append(exts, rdma.Extent{Off: uint32(off), Len: uint32(fw)})
	}
	return exts
}

// getExtBuf and putExtBuf pool extent slices like getWBBuf pools
// staging buffers (single-threaded runtime, no locking).
func (r *Runtime) getExtBuf(n int) []rdma.Extent {
	if l := len(r.extFree); l > 0 {
		b := r.extFree[l-1]
		r.extFree = r.extFree[:l-1]
		return b[:0]
	}
	return make([]rdma.Extent, 0, n)
}

func (r *Runtime) putExtBuf(b []rdma.Extent) {
	if b != nil && len(r.extFree) < 32 {
		r.extFree = append(r.extFree, b)
	}
}
