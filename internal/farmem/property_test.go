package farmem

import (
	"math/rand"
	"sync"
	"testing"
)

// chaosAsyncStore is an AsyncStore over a MapStore that injects failures
// probabilistically (deterministic given the seed and draw order) on
// every surface: sync reads, write-backs, and async completions — which
// are delivered from their own goroutines so CLOCK settle and revert
// race the op stream the way the pipelined TCP client makes them.
type chaosAsyncStore struct {
	*MapStore

	mu       sync.Mutex
	rng      *rand.Rand
	failP    float64
	injected int
	wg       sync.WaitGroup
}

func newChaosAsyncStore(seed int64, failP float64) *chaosAsyncStore {
	return &chaosAsyncStore{MapStore: NewMapStore(), rng: rand.New(rand.NewSource(seed)), failP: failP}
}

// heal turns off injection and waits out in-flight completions.
func (s *chaosAsyncStore) heal() {
	s.mu.Lock()
	s.failP = 0
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *chaosAsyncStore) inject() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rng.Float64() < s.failP {
		s.injected++
		return true
	}
	return false
}

func (s *chaosAsyncStore) injectedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.injected
}

func (s *chaosAsyncStore) ReadObj(ds, idx int, dst []byte) error {
	if s.inject() {
		return errInjected
	}
	return s.MapStore.ReadObj(ds, idx, dst)
}

func (s *chaosAsyncStore) WriteObj(ds, idx int, src []byte) error {
	if s.inject() {
		return errInjected
	}
	return s.MapStore.WriteObj(ds, idx, src)
}

func (s *chaosAsyncStore) IssueRead(ds, idx int, dst []byte, done func(error)) {
	fail := s.inject()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		if fail {
			done(errInjected)
			return
		}
		done(s.MapStore.ReadObj(ds, idx, dst))
	}()
}

// TestPropertyClockOracle drives seeded random op sequences — guarded
// reads, guarded writes, prefetches — over a working set 8x the
// remotable budget, against a chaos async store, and checks after every
// op that (a) the runtime never holds more remotable bytes than its
// budget, and at the end that (b) every byte the runtime serves equals
// a flat in-memory oracle. Failed ops (injected) must leave both
// invariants intact: a failed write mutates nothing, a failed prefetch
// reverts its frame (the CLOCK settle/revert paths), a failed eviction
// keeps the victim resident.
func TestPropertyClockOracle(t *testing.T) {
	const (
		objSize = 256
		nObjs   = 32
		budget  = 4 * objSize // 4 resident objects vs 32-object set
		nOps    = 600
	)
	for _, seed := range []int64{1, 7, 42, 1234} {
		seed := seed
		t.Run("", func(t *testing.T) {
			store := newChaosAsyncStore(seed, 0.2)
			r := New(Config{
				PinnedBudget:    1 << 20,
				RemotableBudget: budget,
				Store:           store,
				MaxInflight:     4,
				// No retries, no breaker: every injected failure surfaces
				// raw, exercising the bare settle/revert machinery.
			})
			defer r.Close()
			if _, err := r.RegisterDS(0, DSMeta{Name: "prop", ObjSize: objSize}); err != nil {
				t.Fatal(err)
			}
			r.SetPlacement(0, PlaceRemotable)
			addr, err := r.DSAlloc(0, nObjs*objSize)
			if err != nil {
				t.Fatal(err)
			}
			d := r.DSByID(0)

			// Oracle: word address -> value; absent means still zero.
			oracle := make(map[uint64]uint64)
			rng := rand.New(rand.NewSource(seed * 31))

			checkBudget := func(op string, i int) {
				t.Helper()
				if r.RemotableUsed() > r.remotableBudget {
					t.Fatalf("op %d (%s): remotable used %d exceeds budget %d",
						i, op, r.RemotableUsed(), r.remotableBudget)
				}
			}
			for i := 0; i < nOps; i++ {
				obj := rng.Intn(nObjs)
				word := rng.Intn(objSize/8) * 8
				va := addr + uint64(obj*objSize+word)
				switch rng.Intn(4) {
				case 0, 1: // guarded read, compared against the oracle
					p, err := r.Guard(va, false)
					if err != nil {
						checkBudget("read-fail", i)
						continue // injected miss: nothing may have changed
					}
					got, err := r.ReadWord(p)
					if err != nil {
						t.Fatalf("op %d: ReadWord: %v", i, err)
					}
					if want := oracle[va]; got != want {
						t.Fatalf("op %d: obj %d word %d: got %#x, oracle %#x",
							i, obj, word, got, want)
					}
					checkBudget("read", i)
				case 2: // guarded write; the oracle records it only on success
					v := rng.Uint64()
					p, err := r.Guard(va, true)
					if err != nil {
						checkBudget("write-fail", i)
						continue
					}
					if err := r.WriteWord(p, v); err != nil {
						t.Fatalf("op %d: WriteWord: %v", i, err)
					}
					oracle[va] = v
					checkBudget("write", i)
				case 3: // prefetch hint: async issue, harvested by later guards
					r.PrefetchObj(d, obj)
					checkBudget("prefetch", i)
				}
			}

			// Heal the store, then read back every word of every object
			// through the runtime: contents must be byte-exact vs the
			// oracle regardless of which ops failed along the way.
			store.heal()
			for obj := 0; obj < nObjs; obj++ {
				for word := 0; word < objSize; word += 8 {
					va := addr + uint64(obj*objSize+word)
					p, err := r.Guard(va, false)
					if err != nil {
						t.Fatalf("final scan obj %d: %v", obj, err)
					}
					got, err := r.ReadWord(p)
					if err != nil {
						t.Fatalf("final scan obj %d word %d: %v", obj, word, err)
					}
					if want := oracle[va]; got != want {
						t.Fatalf("final scan obj %d word %d: got %#x, oracle %#x",
							obj, word, got, want)
					}
				}
				checkBudget("final-scan", obj)
			}

			// The run must actually have exercised the interesting paths:
			// prefetches issued (settle/harvest) and failures injected
			// (revert, failed evictions, failed misses).
			if d.Stats().PrefetchIssued == 0 {
				t.Fatal("sequence issued no prefetches")
			}
			if store.injectedCount() == 0 {
				t.Fatal("sequence injected no failures")
			}
			if r.Stats().Evictions == 0 {
				t.Fatal("sequence evicted nothing: budget not under pressure")
			}
		})
	}
}
