package farmem

import (
	"errors"
	"fmt"
	"testing"
)

// scopedFake models a three-shard store (idx%3) implementing
// Recoverable + DrainScoper, with per-shard degradation toggles and
// per-shard write counters, so the tests can prove a recovery-epoch
// drain touches only the recovering shard's objects.
type scopedFake struct {
	inner    *MapStore
	degraded [3]bool
	epoch    uint64
	lastRec  [3]uint64

	writes      [3]int
	degradedOps int
}

func (s *scopedFake) shardOf(idx int) int { return idx % 3 }

func (s *scopedFake) gate(idx int) error {
	if s.degraded[s.shardOf(idx)] {
		s.degradedOps++
		return fmt.Errorf("shard %d: %w", s.shardOf(idx), ErrDegraded)
	}
	return nil
}

func (s *scopedFake) ReadObj(ds, idx int, dst []byte) error {
	if err := s.gate(idx); err != nil {
		return err
	}
	return s.inner.ReadObj(ds, idx, dst)
}

func (s *scopedFake) WriteObj(ds, idx int, src []byte) error {
	if err := s.gate(idx); err != nil {
		return err
	}
	s.writes[s.shardOf(idx)]++
	return s.inner.WriteObj(ds, idx, src)
}

func (s *scopedFake) IssueWrite(ds, idx int, src []byte, done func(error)) {
	done(s.WriteObj(ds, idx, src))
}

func (s *scopedFake) down(i int) { s.degraded[i] = true }

func (s *scopedFake) recover(i int) {
	s.degraded[i] = false
	s.epoch++
	s.lastRec[i] = s.epoch
}

func (s *scopedFake) RecoveryEpoch() uint64 { return s.epoch }

func (s *scopedFake) ShouldDrain(ds, idx int, since uint64) bool {
	i := s.shardOf(idx)
	return s.lastRec[i] > since && !s.degraded[i]
}

func (s *scopedFake) Stranded(ds, idx int) bool {
	return s.degraded[s.shardOf(idx)]
}

// TestScopedDrainTouchesOnlyRecoveredShard is the regression test for
// the over-broad epoch drain: with shards 1 and 2 down and parked
// write-backs on both, recovering shard 1 must drain shard-1 objects
// only — no fail-fast attempts against still-down shard 2, and no
// rewrite of a merely-dirty resident owned by never-failed shard 0.
func TestScopedDrainTouchesOnlyRecoveredShard(t *testing.T) {
	store := &scopedFake{inner: NewMapStore()}
	const objSize = 4096
	r := New(Config{
		PinnedBudget:    1 << 20,
		RemotableBudget: 4 * objSize,
		// Room to stage all four stranded objects' parked write-backs.
		WriteBackBudget: 8 * objSize,
		Store:           store,
	})
	defer r.Close()
	if _, err := r.RegisterDS(0, DSMeta{Name: "a", ObjSize: objSize, ElemSize: 8}); err != nil {
		t.Fatal(err)
	}
	if err := r.SetPlacement(0, PlaceRemotable); err != nil {
		t.Fatal(err)
	}
	addr, err := r.DSAlloc(0, 16*objSize)
	if err != nil {
		t.Fatal(err)
	}

	// Seed a shard-0 object the store will hold at a known value, so we
	// can later prove the scoped drain did not rewrite it.
	writeObj(t, r, addr, 3, 303)

	// Dirty two objects on shard 1 (idx 1, 4) and two on shard 2
	// (idx 2, 5), then take both shards down: their write-backs now
	// have nowhere to go and park on eviction.
	for _, idx := range []int{1, 4, 2, 5} {
		writeObj(t, r, addr, idx, uint64(100+idx))
	}
	store.down(1)
	store.down(2)

	// One write round then read rounds over shard-0 objects: the reads
	// churn frames past the 4-object budget, evicting the stranded
	// dirty objects (their staged write-backs park) while leaving only
	// clean shard-0 residents behind.
	for idx := 0; idx < 16; idx += 3 {
		writeObj(t, r, addr, idx, uint64(1000+idx))
	}
	for round := 0; round < 3; round++ {
		for idx := 0; idx < 16; idx += 3 {
			if _, err := readObj(t, r, addr, idx); err != nil {
				t.Fatal(err)
			}
		}
	}
	if parked := r.StagedWriteBackEntries(); parked < 4 {
		t.Fatalf("%d write-backs parked, want the 4 stranded objects", parked)
	}
	// Re-dirty the shard-0 object in place (a cache hit — the store
	// keeps 1003): if the drain wrongly touched healthy shards, the
	// store would now see 2003.
	writeObj(t, r, addr, 3, 2003)

	preW2, preDeg := store.writes[2], store.degradedOps

	// Recover shard 1 only; the next successful store op (idx 0 was
	// evicted by the read churn, so this read misses to shard 0)
	// triggers the epoch drain.
	store.recover(1)
	if _, err := readObj(t, r, addr, 0); err != nil {
		t.Fatal(err)
	}

	// Shard-1 values drained to the store.
	buf := make([]byte, 8)
	for _, idx := range []int{1, 4} {
		if err := store.inner.ReadObj(0, idx, buf); err != nil {
			t.Fatalf("shard-1 obj %d not drained: %v", idx, err)
		}
		if got := uint64(buf[0]) | uint64(buf[1])<<8; got != uint64(100+idx) {
			t.Fatalf("shard-1 obj %d drained %d, want %d", idx, got, 100+idx)
		}
	}
	// No fail-fast attempt against still-down shard 2.
	if store.degradedOps != preDeg {
		t.Fatalf("drain issued %d fail-fast ops against a still-down shard", store.degradedOps-preDeg)
	}
	if store.writes[2] != preW2 {
		t.Fatal("drain wrote to a still-down shard")
	}
	// The healthy shard-0 dirty resident was not rewritten: the store
	// still holds the pre-dirty value.
	if err := store.inner.ReadObj(0, 3, buf); err != nil {
		t.Fatal(err)
	}
	if got := uint64(buf[0]) | uint64(buf[1])<<8; got == 2003 {
		t.Fatal("drain rewrote a healthy-shard dirty resident")
	}

	// Recovering shard 2 drains the rest (the explicit barrier reissues
	// whatever the next epoch drain has not already picked up).
	store.recover(2)
	if err := r.DrainWriteBacks(); err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{2, 5} {
		if err := store.inner.ReadObj(0, idx, buf); err != nil {
			t.Fatalf("shard-2 obj %d not drained after recovery: %v", idx, err)
		}
		if got := uint64(buf[0]) | uint64(buf[1])<<8; got != uint64(100+idx) {
			t.Fatalf("shard-2 obj %d drained %d, want %d", idx, got, 100+idx)
		}
	}
	if r.StagedWriteBackEntries() != 0 {
		t.Fatalf("%d write-backs still parked after full recovery", r.StagedWriteBackEntries())
	}
}

// TestScopedDrainKeepsStrandedArmed proves degradedDirty survives a
// partial recovery: after draining shard 1, the runtime must still
// drain shard 2's objects on shard 2's own later epoch (a lost arm
// here would leave them parked forever).
func TestScopedDrainKeepsStrandedArmed(t *testing.T) {
	store := &scopedFake{inner: NewMapStore()}
	const objSize = 4096
	r := New(Config{
		PinnedBudget:    1 << 20,
		RemotableBudget: 4 * objSize,
		Store:           store,
	})
	defer r.Close()
	if _, err := r.RegisterDS(0, DSMeta{Name: "a", ObjSize: objSize, ElemSize: 8}); err != nil {
		t.Fatal(err)
	}
	if err := r.SetPlacement(0, PlaceRemotable); err != nil {
		t.Fatal(err)
	}
	addr, err := r.DSAlloc(0, 16*objSize)
	if err != nil {
		t.Fatal(err)
	}

	writeObj(t, r, addr, 2, 42) // shard 2
	store.down(1)
	store.down(2)
	for round := 0; round < 4; round++ {
		for idx := 0; idx < 16; idx += 3 {
			writeObj(t, r, addr, idx, uint64(idx))
		}
	}
	// Shard 1 recovers with nothing of its own stranded; shard 2's
	// object must remain armed, then drain on shard 2's epoch.
	store.recover(1)
	if _, err := readObj(t, r, addr, 1); err != nil {
		t.Fatal(err)
	}
	store.recover(2)
	if _, err := readObj(t, r, addr, 5); err != nil && !errors.Is(err, ErrDegraded) {
		t.Fatal(err)
	}
	if err := r.DrainWriteBacks(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if err := store.inner.ReadObj(0, 2, buf); err != nil {
		t.Fatalf("shard-2 obj never drained: %v", err)
	}
	if got := uint64(buf[0]) | uint64(buf[1])<<8; got != 42 {
		t.Fatalf("shard-2 obj drained %d, want 42", got)
	}
}
