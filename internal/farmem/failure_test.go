package farmem

import (
	"errors"
	"strings"
	"testing"
)

// failingStore injects remote-tier failures after a configurable number
// of successful operations.
type failingStore struct {
	inner      Store
	readsLeft  int
	writesLeft int
}

var errInjected = errors.New("injected far-tier failure")

func (s *failingStore) ReadObj(ds, idx int, dst []byte) error {
	if s.readsLeft <= 0 {
		return errInjected
	}
	s.readsLeft--
	return s.inner.ReadObj(ds, idx, dst)
}

func (s *failingStore) WriteObj(ds, idx int, src []byte) error {
	if s.writesLeft <= 0 {
		return errInjected
	}
	s.writesLeft--
	return s.inner.WriteObj(ds, idx, src)
}

func pressured(t *testing.T, store Store) (*Runtime, uint64) {
	t.Helper()
	obj := 4096
	r := New(Config{
		PinnedBudget:    1 << 20,
		RemotableBudget: uint64(2 * obj),
		Store:           store,
	})
	if _, err := r.RegisterDS(0, DSMeta{Name: "d", ObjSize: obj}); err != nil {
		t.Fatal(err)
	}
	r.SetPlacement(0, PlaceRemotable)
	addr, err := r.DSAlloc(0, int64(8*obj))
	if err != nil {
		t.Fatal(err)
	}
	return r, addr
}

func TestRemoteReadFailurePropagates(t *testing.T) {
	fs := &failingStore{inner: NewMapStore(), readsLeft: 0, writesLeft: 1 << 30}
	r, addr := pressured(t, fs)
	// Dirty two objects, then push them out by touching more.
	for i := 0; i < 6; i++ {
		if _, err := r.Guard(addr+uint64(i*4096), true); err != nil {
			t.Fatal(err)
		}
	}
	// Re-reading an evicted object must surface the injected error.
	_, err := r.Guard(addr, false)
	if err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("err = %v, want injected failure", err)
	}
}

func TestWriteBackFailurePropagates(t *testing.T) {
	fs := &failingStore{inner: NewMapStore(), readsLeft: 1 << 30, writesLeft: 0}
	r, addr := pressured(t, fs)
	// Dirty objects until an eviction write-back is forced.
	var err error
	for i := 0; i < 8 && err == nil; i++ {
		_, err = r.Guard(addr+uint64(i*4096), true)
	}
	if err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("err = %v, want injected write-back failure", err)
	}
}

func TestRuntimeUsableAfterTransientFailure(t *testing.T) {
	// One failing read, then recovery: the runtime must keep working and
	// the data must still be intact (the failed localize did not corrupt
	// the object table).
	fs := &failingStore{inner: NewMapStore(), readsLeft: 0, writesLeft: 1 << 30}
	r, addr := pressured(t, fs)
	for i := 0; i < 6; i++ {
		p, err := r.Guard(addr+uint64(i*4096), true)
		if err != nil {
			t.Fatal(err)
		}
		r.WriteWord(p, uint64(1000+i))
	}
	if _, err := r.Guard(addr, false); err == nil {
		t.Fatal("expected injected failure")
	}
	// Heal the store and retry.
	fs.readsLeft = 1 << 30
	p, err := r.Guard(addr, false)
	if err != nil {
		t.Fatalf("retry after heal: %v", err)
	}
	v, err := r.ReadWord(p)
	if err != nil || v != 1000 {
		t.Fatalf("data lost across failure: %d, %v", v, err)
	}
}

func TestObjectWordBounds(t *testing.T) {
	r := New(Config{PinnedBudget: 1 << 20, RemotableBudget: 1 << 20})
	r.RegisterDS(0, DSMeta{ObjSize: 4096})
	r.SetPlacement(0, PlaceRemotable)
	addr, _ := r.DSAlloc(0, 4096)
	d := r.DSByID(0)
	if _, ok := r.ObjectWord(d, 0, 0); ok {
		t.Fatal("uninitialized object should not be readable")
	}
	r.Guard(addr, true)
	if _, ok := r.ObjectWord(d, 0, 0); !ok {
		t.Fatal("resident object should be readable")
	}
	if _, ok := r.ObjectWord(d, 0, 4096); ok {
		t.Fatal("offset beyond object should fail")
	}
	if _, ok := r.ObjectWord(d, -1, 0); ok {
		t.Fatal("negative index should fail")
	}
	if _, ok := r.ObjectWord(d, 99, 0); ok {
		t.Fatal("out-of-table index should fail")
	}
	if d.NumObjects() != 1 {
		t.Fatalf("NumObjects = %d", d.NumObjects())
	}
}

func TestPlacementString(t *testing.T) {
	if PlacePinned.String() != "pinned" || PlaceRemotable.String() != "remotable" ||
		PlaceLinear.String() != "linear" {
		t.Fatal("placement names wrong")
	}
}

func TestPow2Helpers(t *testing.T) {
	cases := []struct{ in, want int }{{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {4096, 4096}, {4097, 8192}}
	for _, c := range cases {
		if got := nextPow2(c.in); got != c.want {
			t.Errorf("nextPow2(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	if log2(1) != 0 || log2(2) != 1 || log2(4096) != 12 {
		t.Fatal("log2 wrong")
	}
}

func TestInitialArenaCap(t *testing.T) {
	if got := initialArenaCap(1 << 40); got != 1<<24 {
		t.Fatalf("huge budget should cap eager arena: %d", got)
	}
	if got := initialArenaCap(1024); got != 1024+(1<<16) {
		t.Fatalf("small budget cap = %d", got)
	}
}

func TestDSExtentLimit(t *testing.T) {
	r := New(Config{PinnedBudget: 0, RemotableBudget: 1 << 20})
	r.RegisterDS(0, DSMeta{ObjSize: 4096})
	r.SetPlacement(0, PlaceRemotable)
	if _, err := r.DSAlloc(0, 1<<49); err == nil {
		t.Fatal("allocation beyond the 48-bit extent must fail")
	}
}

func TestDSAllocUnknownStructureFallsBack(t *testing.T) {
	r := New(Config{PinnedBudget: 1 << 20, RemotableBudget: 1 << 20})
	addr, err := r.DSAlloc(999, 64) // no such DS: plain local allocation
	if err != nil {
		t.Fatal(err)
	}
	if IsTagged(addr) {
		t.Fatal("fallback allocation should be untagged")
	}
}
