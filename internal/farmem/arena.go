package farmem

import (
	"encoding/binary"
	"math"
)

// Arena is the local physical memory: a growable byte slab with size-class
// free lists for the object frames the runtime localizes and evicts.
// Offset 0 is reserved so that 0 can serve as a null address.
type Arena struct {
	mem  []byte
	brk  uint64
	free map[int][]uint64 // size -> free frame offsets
}

// NewArena creates an arena with the given initial capacity in bytes.
func NewArena(capacity int64) *Arena {
	if capacity < 64 {
		capacity = 64
	}
	return &Arena{
		mem:  make([]byte, 0, capacity),
		brk:  8, // reserve null
		free: make(map[int][]uint64),
	}
}

// Alloc returns the offset of a zeroed region of the given size.
func (a *Arena) Alloc(size int) uint64 {
	if size <= 0 {
		size = 8
	}
	size = align8(size)
	if frames := a.free[size]; len(frames) > 0 {
		off := frames[len(frames)-1]
		a.free[size] = frames[:len(frames)-1]
		clear(a.mem[off : off+uint64(size)])
		return off
	}
	off := a.brk
	a.brk += uint64(size)
	a.ensure(a.brk)
	return off
}

// Free returns a frame of the given size to the free list.
func (a *Arena) Free(off uint64, size int) {
	size = align8(size)
	a.free[size] = append(a.free[size], off)
}

// Used returns the high-water byte usage (excluding freed frames).
func (a *Arena) Used() uint64 { return a.brk }

func (a *Arena) ensure(n uint64) {
	if uint64(len(a.mem)) < n {
		grown := make([]byte, n, max(n*2, uint64(cap(a.mem))))
		copy(grown, a.mem)
		a.mem = grown
	}
}

func align8(n int) int { return (n + 7) &^ 7 }

// Read8 loads a 64-bit little-endian word at off.
func (a *Arena) Read8(off uint64) uint64 {
	return binary.LittleEndian.Uint64(a.mem[off : off+8])
}

// Write8 stores a 64-bit little-endian word at off.
func (a *Arena) Write8(off uint64, v uint64) {
	binary.LittleEndian.PutUint64(a.mem[off:off+8], v)
}

// ReadF loads a float64 at off.
func (a *Arena) ReadF(off uint64) float64 { return math.Float64frombits(a.Read8(off)) }

// WriteF stores a float64 at off.
func (a *Arena) WriteF(off uint64, v float64) { a.Write8(off, math.Float64bits(v)) }

// Bytes returns the slab slice [off, off+n) for bulk copies (object
// localization and eviction).
func (a *Arena) Bytes(off uint64, n int) []byte { return a.mem[off : off+uint64(n)] }

// InBounds reports whether [off, off+n) lies inside allocated memory.
func (a *Arena) InBounds(off uint64, n int) bool {
	return off >= 8 && off+uint64(n) <= a.brk
}
