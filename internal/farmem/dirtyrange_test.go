package farmem

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"cards/internal/rdma"
)

// rangeWriteStore is a fake RangeWriteStore. IssueWriteRanges splices
// ONLY the extent bytes into the stored image (read-modify-write), so a
// test passes only if the runtime's extents alone reproduce the full
// local image remotely — the soundness claim of dirtyrange.go.
type rangeWriteStore struct {
	*MapStore
	mu       sync.Mutex
	rangeOps int
	fullOps  int
	lastExts []rdma.Extent
	failNext bool
}

func newRangeWriteStore() *rangeWriteStore {
	return &rangeWriteStore{MapStore: NewMapStore()}
}

func (s *rangeWriteStore) IssueWrite(ds, idx int, src []byte, done func(error)) {
	s.mu.Lock()
	s.fullOps++
	s.mu.Unlock()
	done(s.WriteObj(ds, idx, src))
}

func (s *rangeWriteStore) IssueWriteRanges(ds, idx int, src []byte, exts []rdma.Extent, done func(error)) {
	s.mu.Lock()
	s.rangeOps++
	s.lastExts = append(s.lastExts[:0], exts...)
	fail := s.failNext
	s.failNext = false
	s.mu.Unlock()
	if fail {
		done(errors.New("injected range write failure"))
		return
	}
	cur := make([]byte, len(src))
	s.MapStore.ReadObj(ds, idx, cur) // absent objects read as zeros
	for _, e := range exts {
		copy(cur[e.Off:e.Off+e.Len], src[e.Off:e.Off+e.Len])
	}
	done(s.WriteObj(ds, idx, cur))
}

func (s *rangeWriteStore) counts() (rangeOps, fullOps int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rangeOps, s.fullOps
}

func (s *rangeWriteStore) extents() []rdma.Extent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]rdma.Extent(nil), s.lastExts...)
}

func newRangeRuntime(t *testing.T, store Store, meta DSMeta, objs int) (*Runtime, uint64) {
	t.Helper()
	r := New(Config{
		PinnedBudget: 1 << 20, RemotableBudget: uint64(2 * meta.ObjSize),
		Store: store, WriteBackBudget: 1 << 20,
		RangeWriteback: true,
	})
	r.RegisterDS(0, meta)
	r.SetPlacement(0, PlaceRemotable)
	addr, err := r.DSAlloc(0, int64(objs*meta.ObjSize))
	if err != nil {
		t.Fatal(err)
	}
	return r, addr
}

// evictObj0 touches objects 1 and 2 so the two-object budget forces
// object 0 (the dirty one under test) out through the write-back path.
func evictObj0(t *testing.T, r *Runtime, addr uint64, objSize int) {
	t.Helper()
	for i := 1; i <= 2; i++ {
		if _, err := r.Guard(addr+uint64(i*objSize), false); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.DrainWriteBacks(); err != nil {
		t.Fatal(err)
	}
}

func TestRangeWriteStoreDetection(t *testing.T) {
	if r := New(Config{Store: newRangeWriteStore()}); r.rwstore != nil {
		t.Fatal("range store must not be detected without Config.RangeWriteback")
	}
	if r := New(Config{Store: newRangeWriteStore(), RangeWriteback: true}); r.rwstore == nil {
		t.Fatal("RangeWriteback + RangeWriteStore backend should enable the range path")
	}
	if r := New(Config{Store: newSlowWriteStore(0), RangeWriteback: true}); r.rwstore != nil {
		t.Fatal("a plain AsyncWriteStore must not be detected as a range store")
	}
}

// TestRangeWriteBackShipsOnlyDirtyExtents: span-bounded writes to two
// element rows of a 1 KiB object must evict as a handful of 8-byte
// extents, and the spliced far-tier image must equal the local one.
func TestRangeWriteBackShipsOnlyDirtyExtents(t *testing.T) {
	const (
		obj  = 1024
		elem = 64
	)
	store := newRangeWriteStore()
	r, addr := newRangeRuntime(t, store, DSMeta{ObjSize: obj, ElemSize: elem}, 3)

	// Write field [8,16) of rows 2 and 5 with exact compiler spans.
	for _, row := range []int{2, 5} {
		p, err := r.GuardSpan(addr+uint64(row*elem+8), true, 0, 8)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.WriteWord(p, uint64(0xA0+row)); err != nil {
			t.Fatal(err)
		}
	}
	evictObj0(t, r, addr, obj)

	rangeOps, fullOps := store.counts()
	if rangeOps != 1 || fullOps != 0 {
		t.Fatalf("rangeOps=%d fullOps=%d, want exactly one range write-back", rangeOps, fullOps)
	}
	// Rect rows 2..5 × field [8,16): one extent per row, untouched rows
	// 3 and 4 ride along (identical bytes on both sides — sound).
	exts := store.extents()
	want := []rdma.Extent{{Off: 2*elem + 8, Len: 8}, {Off: 3*elem + 8, Len: 8}, {Off: 4*elem + 8, Len: 8}, {Off: 5*elem + 8, Len: 8}}
	if len(exts) != len(want) {
		t.Fatalf("extents = %v, want %v", exts, want)
	}
	for i := range want {
		if exts[i] != want[i] {
			t.Fatalf("extent %d = %v, want %v", i, exts[i], want[i])
		}
	}
	img := make([]byte, obj)
	if err := store.MapStore.ReadObj(0, 0, img); err != nil {
		t.Fatal(err)
	}
	wantImg := make([]byte, obj)
	for _, row := range []int{2, 5} {
		wantImg[row*elem+8] = byte(0xA0 + row)
	}
	if !bytes.Equal(img, wantImg) {
		t.Fatal("spliced far-tier image differs from the local image")
	}

	st := r.Stats()
	if st.RangeWriteBacks == 0 {
		t.Fatal("RangeWriteBacks counter not advanced")
	}
	if st.RangeBytesSaved != uint64(obj-4*8) {
		t.Fatalf("RangeBytesSaved = %d, want %d", st.RangeBytesSaved, obj-4*8)
	}
}

// TestRangeWriteBackFullRowsMerge: adjacent rows written edge to edge
// collapse into a single contiguous extent.
func TestRangeWriteBackFullRowsMerge(t *testing.T) {
	const (
		obj  = 1024
		elem = 8
	)
	store := newRangeWriteStore()
	r, addr := newRangeRuntime(t, store, DSMeta{ObjSize: obj, ElemSize: elem}, 3)
	for row := 16; row < 24; row++ {
		p, err := r.GuardSpan(addr+uint64(row*elem), true, 0, elem)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.WriteWord(p, uint64(row)); err != nil {
			t.Fatal(err)
		}
	}
	evictObj0(t, r, addr, obj)
	exts := store.extents()
	if len(exts) != 1 || exts[0] != (rdma.Extent{Off: 16 * elem, Len: 8 * elem}) {
		t.Fatalf("extents = %v, want one merged extent {%d %d}", exts, 16*elem, 8*elem)
	}
}

// TestRangeWriteBackCoverageGate: once the rectangle covers more than
// ~60% of the object, the full image ships instead of extents.
func TestRangeWriteBackCoverageGate(t *testing.T) {
	const obj = 256
	store := newRangeWriteStore()
	r, addr := newRangeRuntime(t, store, DSMeta{ObjSize: obj, ElemSize: obj}, 3)
	p, err := r.GuardSpan(addr, true, 0, 200) // 200/256 > 60%
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WriteWord(p, 0xBEEF); err != nil {
		t.Fatal(err)
	}
	evictObj0(t, r, addr, obj)
	rangeOps, fullOps := store.counts()
	if rangeOps != 0 || fullOps == 0 {
		t.Fatalf("rangeOps=%d fullOps=%d, want full-object fallback past the coverage gate", rangeOps, fullOps)
	}
	if got := storeWord(t, store.MapStore, obj, 0); got != 0xBEEF {
		t.Fatalf("far tier word = %#x, want 0xBEEF", got)
	}
}

// TestSpanlessWriteWithoutFootprintShipsFullObject: a plain write guard
// (no compiler span, no static footprint) must widen the rectangle to
// the whole object.
func TestSpanlessWriteWithoutFootprintShipsFullObject(t *testing.T) {
	const obj = 512
	store := newRangeWriteStore()
	r, addr := newRangeRuntime(t, store, DSMeta{ObjSize: obj, ElemSize: 64}, 3)
	p, err := r.Guard(addr+128, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WriteWord(p, 42); err != nil {
		t.Fatal(err)
	}
	evictObj0(t, r, addr, obj)
	rangeOps, fullOps := store.counts()
	if rangeOps != 0 || fullOps == 0 {
		t.Fatalf("rangeOps=%d fullOps=%d, want full-object write for a spanless write", rangeOps, fullOps)
	}
}

// TestSpanlessWriteUsesStaticFootprint: without a guard span, the
// structure's compiler-derived write footprint bounds the field range
// for the touched element row.
func TestSpanlessWriteUsesStaticFootprint(t *testing.T) {
	const (
		obj  = 512
		elem = 64
	)
	store := newRangeWriteStore()
	meta := DSMeta{ObjSize: obj, ElemSize: elem, WriteFootprint: [][2]int{{0, 8}}}
	r, addr := newRangeRuntime(t, store, meta, 3)
	p, err := r.Guard(addr+2*elem, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WriteWord(p, 77); err != nil {
		t.Fatal(err)
	}
	evictObj0(t, r, addr, obj)
	rangeOps, _ := store.counts()
	if rangeOps != 1 {
		t.Fatalf("rangeOps=%d, want the footprint-bounded range path", rangeOps)
	}
	exts := store.extents()
	if len(exts) != 1 || exts[0] != (rdma.Extent{Off: 2 * elem, Len: 8}) {
		t.Fatalf("extents = %v, want [{%d 8}]", exts, 2*elem)
	}
	img := make([]byte, obj)
	if err := store.MapStore.ReadObj(0, 0, img); err != nil {
		t.Fatal(err)
	}
	if img[2*elem] != 77 {
		t.Fatalf("far tier byte at footprint offset = %d, want 77", img[2*elem])
	}
}

// TestFailedRangeWriteReissuedFullObject: a NAKed range write must be
// reissued synchronously as the full staged image — the staging buffer
// keeps the whole object precisely so the replay is idempotent.
func TestFailedRangeWriteReissuedFullObject(t *testing.T) {
	const (
		obj  = 1024
		elem = 64
	)
	store := newRangeWriteStore()
	store.failNext = true
	r, addr := newRangeRuntime(t, store, DSMeta{ObjSize: obj, ElemSize: elem}, 3)
	p, err := r.GuardSpan(addr+uint64(3*elem), true, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WriteWord(p, 0xDD); err != nil {
		t.Fatal(err)
	}
	evictObj0(t, r, addr, obj)
	if got := r.Stats().WriteBackReissues; got == 0 {
		t.Fatal("failed range write must be reissued synchronously")
	}
	img := make([]byte, obj)
	if err := store.MapStore.ReadObj(0, 0, img); err != nil {
		t.Fatal(err)
	}
	if img[3*elem] != 0xDD {
		t.Fatalf("far tier byte = %#x after reissue, want 0xDD", img[3*elem])
	}
}
