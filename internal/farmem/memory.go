package farmem

import (
	"errors"
	"fmt"
)

// DSAlloc services a dsalloc(size, handle) call (Listing 2): it allocates
// n bytes belonging to data structure id and returns the address the
// program will use. Pinned structures receive plain local addresses (so
// the custody check falls through); remotable structures receive tagged
// addresses in their virtual extent.
//
// The remoting decision follows §4.2: the static placement hint is
// consulted first, but the runtime overrides it when the structure does
// not fit in pinned memory (the hint-override path), and the Linear
// placement decides purely at allocation time.
func (r *Runtime) DSAlloc(id int, n int64) (uint64, error) {
	if n <= 0 {
		n = 8
	}
	n = int64(align8(int(n)))
	d := r.DSByID(id)
	if d == nil {
		// Allocation outside any identified structure: plain local.
		return r.AllocLocal(n)
	}

	pinned := false
	switch d.placement {
	case PlacePinned:
		pinned = !d.spilled
	case PlaceRemotable:
		pinned = false
	case PlaceLinear:
		pinned = r.pinnedUsed+uint64(n) <= r.pinnedBudget
	}
	if d.localPromise {
		// A cards_all_local check already steered execution onto the
		// uninstrumented path for this structure, so later growth MUST
		// stay local — the fast path has no guards (paper §4.2: "In
		// cases where dynamic data structures grow during execution,
		// the runtime tracks allocations to ensure they remain local").
		// Overcommit is recorded rather than remoting unsafely.
		pinned = true
		if r.pinnedUsed+uint64(n) > r.pinnedBudget {
			r.stats.OvercommitBytes += uint64(n)
		}
	} else if pinned && r.pinnedUsed+uint64(n) > r.pinnedBudget {
		// Static hint says pinned but local memory is exhausted: the
		// runtime overrides and remotes the structure from here on.
		d.spilled = true
		r.stats.SpilledDS++
		r.emit(EvSpill, d.ID, 0, false)
		pinned = false
	}

	if pinned {
		r.clock.Advance(r.model.AllocLocal)
		off := r.arena.Alloc(int(n))
		r.pinnedUsed += uint64(n)
		d.stats.PinnedBytes += uint64(n)
		return off, nil
	}

	r.clock.Advance(r.model.AllocRemote)
	d.everRemote = true
	base := d.size
	// A single allocation must never straddle an object boundary:
	// redundant guard elimination assumes that two field offsets within
	// one allocation share one object. Bump the base to the next object
	// when the allocation would cross (for allocations larger than one
	// object, align to the object size).
	objSz := uint64(d.Meta.ObjSize)
	if base%objSz != 0 && base/objSz != (base+uint64(n)-1)/objSz {
		base = (base + objSz - 1) &^ (objSz - 1)
	}
	d.size = base + uint64(n)
	if d.size > OffMask {
		return 0, fmt.Errorf("farmem: DS %d exceeds 48-bit extent", id)
	}
	want := int((d.size + uint64(d.Meta.ObjSize) - 1) >> d.objShift)
	for len(d.objs) < want {
		d.objs = append(d.objs, FarObj{state: objUninit})
	}
	d.stats.RemoteBytes += uint64(n)
	return MakeAddr(id, base), nil
}

// AllocLocal allocates plain (non-remotable, untagged) local memory, the
// path taken by allocations outside any identified data structure.
func (r *Runtime) AllocLocal(n int64) (uint64, error) {
	if n <= 0 {
		n = 8
	}
	r.clock.Advance(r.model.AllocLocal)
	off := r.arena.Alloc(int(n))
	r.pinnedUsed += uint64(n)
	return off, nil
}

// Guard performs the inline custody check of Figure 3 and, for tagged
// addresses, the cards_deref slow path. It returns the localized
// (directly dereferenceable) address.
func (r *Runtime) Guard(addr uint64, write bool) (uint64, error) {
	return r.GuardSpan(addr, write, 0, 0)
}

// GuardSpan is Guard carrying the compiler-derived written byte span
// [gLo, gHi) relative to addr (ir.Instr.GLo/GHi): the bytes this guard's
// store — and every store elided onto it — may modify. gHi <= gLo means
// the span is unknown and a write dirties conservatively (the whole
// object, or the structure's static write footprint).
func (r *Runtime) GuardSpan(addr uint64, write bool, gLo, gHi int) (uint64, error) {
	r.stats.GuardChecks++
	if r.trackFM {
		// TrackFM's guards run the full lookup on every access —
		// costlier locally (Table 1: 462/579 vs custody-check
		// fall-through), modelled as a flat local charge here.
		if write {
			r.clock.Advance(r.model.TrackFMGuardLocalWrite)
		} else {
			r.clock.Advance(r.model.TrackFMGuardLocalRead)
		}
	} else {
		r.clock.Advance(r.model.CustodyCheck)
	}
	if !IsTagged(addr) {
		r.stats.FastPathHits++
		return addr, nil
	}
	return r.DerefSpan(addr, write, gLo, gHi)
}

// Deref is the cards_deref slow path (Listing 4): map the tagged address
// to its data structure and object, localize the object if necessary,
// and return the physical (arena) address.
func (r *Runtime) Deref(addr uint64, write bool) (uint64, error) {
	return r.DerefSpan(addr, write, 0, 0)
}

// DerefSpan is Deref carrying a write span for the dirty rectangle; see
// GuardSpan.
func (r *Runtime) DerefSpan(addr uint64, write bool, gLo, gHi int) (uint64, error) {
	r.stats.DerefCalls++
	id := DSOf(addr)
	d := r.DSByID(id)
	if d == nil {
		return 0, &ErrBadAddress{Addr: addr, Why: "unknown data structure"}
	}
	off := OffOf(addr)
	if off >= d.size {
		return 0, &ErrBadAddress{Addr: addr, Why: fmt.Sprintf("offset beyond DS extent %d", d.size)}
	}
	idx := int(off >> d.objShift)
	obj := &d.objs[idx]
	r.accessSeq++
	obj.lastUse = r.accessSeq

	// Per-deref bookkeeping cost (DS lookup + object table walk).
	if !r.trackFM {
		if write {
			r.clock.Advance(r.model.DerefLocalWrite)
		} else {
			r.clock.Advance(r.model.DerefLocalRead)
		}
	}

	missed := false
	rootMine := false
	switch obj.state {
	case objLocal:
		d.stats.Hits++

	case objInFlight:
		// A prefetch raced ahead of us: wait out the remaining flight
		// time instead of paying a full round trip. On the async path this
		// also harvests the completion (blocking until the payload really
		// landed, then copying staging buffer -> arena frame).
		start := r.clock.Now()
		r.link.WaitUntil(obj.readyAt)
		d.inflight--
		r.inflightBytes -= uint64(d.Meta.ObjSize)
		if err := r.harvest(d, idx); err != nil {
			return 0, err
		}
		d.pfWaitHist.Observe(r.clock.Now() - start)
		obj.state = objLocal
		d.stats.PrefetchHits++
		d.stats.Hits++
		r.emitSpan(EvPrefetchHit, d.ID, idx, false, start)

	case objUninit:
		// First touch: materialize a zeroed frame locally; no network.
		frame, err := r.allocFrame(d, idx)
		if err != nil {
			return 0, err
		}
		obj.frame = frame
		obj.state = objLocal
		d.stats.ColdFaults++
		r.emit(EvMaterialize, d.ID, idx, false)

	case objRemote:
		// Read-your-writes coherence: while an asynchronous write-back of
		// this object is staged (in flight or parked), its staging buffer
		// holds the freshest bytes — a remote READ could race the write
		// and observe the pre-write value. Serve the re-localization from
		// staging, with no network and regardless of breaker state.
		if hit, err := r.derefFromStaging(d, idx); err != nil {
			return 0, err
		} else if hit {
			d.stats.Hits++
			break
		}
		// A chase-delivered path object (or an in-flight chase that
		// started here) serves the re-localization without a round trip
		// — also before the breaker gate: staged bytes are local.
		if hit, err := r.derefFromChase(d, idx); err != nil {
			return 0, err
		} else if hit {
			d.stats.Hits++
			break
		}
		// Fail fast while degraded — and BEFORE allocFrame, so refused
		// derefs cannot erode the clean resident set through evictions.
		if r.breaker != nil && !r.breaker.gate() {
			r.stats.DegradedOps++
			return 0, errDegradedDeref(d.ID, idx)
		}
		missed = true
		// The guard miss is the root cause of everything below it: the
		// fetch, any evictions allocFrame triggers, their staged
		// write-backs, and the prefetches OnAccess issues at the end of
		// this deref all join this trace.
		rootMine = r.beginRoot()
		d.stats.Misses++
		r.stats.RemoteFetches++
		start := r.clock.Now()
		frame, err := r.allocFrame(d, idx)
		if err != nil {
			r.endRoot(rootMine)
			return 0, err
		}
		if err := r.storeRead(d, idx, r.arena.Bytes(frame, d.Meta.ObjSize)); err != nil {
			// Give the frame back and bump the epoch so the ring entry
			// allocFrame just registered goes stale — otherwise every
			// failed fetch would leak remotable budget.
			r.arena.Free(frame, d.Meta.ObjSize)
			r.remotableUsed -= uint64(d.Meta.ObjSize)
			obj.epoch++
			r.endRoot(rootMine)
			return 0, fmt.Errorf("farmem: remote read ds%d[%d]: %w", d.ID, idx, err)
		}
		r.link.FetchSync(d.Meta.ObjSize)
		d.fetchHist.Observe(r.clock.Now() - start)
		obj.frame = frame
		obj.state = objLocal
		r.emitSpan(EvFetch, d.ID, idx, false, start)
	}

	obj.ref = true
	if write {
		r.markDirty(d, obj, int(off&(uint64(d.Meta.ObjSize)-1)), gLo, gHi)
	}
	d.prefetcher.OnAccess(r, d, idx, missed)
	r.endRoot(rootMine)
	return obj.frame + (off & (uint64(d.Meta.ObjSize) - 1)), nil
}

// allocFrame reserves a local frame for one object of d, evicting cold
// objects if the remotable budget is exhausted, and registers the object
// in the CLOCK ring.
func (r *Runtime) allocFrame(d *DS, idx int) (uint64, error) {
	sz := uint64(d.Meta.ObjSize)
	for r.remotableUsed+sz > r.remotableBudget {
		if r.growBudgetFor(sz) {
			// Degraded mode: grow the budget (up to the ceiling) instead
			// of evicting — see breaker.go.
			break
		}
		if err := r.evictOne(); err != nil {
			if errors.Is(err, ErrDegraded) && r.growBudget(sz) {
				// Every remaining victim is dirty on a degraded shard:
				// pin them (their frames hold the only copy) and grow
				// the budget instead, exactly as under a global outage.
				break
			}
			return 0, err
		}
	}
	frame := r.arena.Alloc(d.Meta.ObjSize)
	r.remotableUsed += sz
	r.ring = append(r.ring, clockEntry{ds: d, idx: idx, epoch: d.objs[idx].epoch})
	return frame, nil
}

// recentWindow is the number of most-recently derefed objects immune
// from eviction. It plays the role of AIFM's dereference scopes: a guard
// may hand out a localized address that later instructions in the same
// basic block reuse (redundant guard elimination), so the frames behind
// the last few guards must stay resident.
const recentWindow = 8

// evictOne runs CLOCK pass steps until a victim is evicted. When the
// only evictable victims are dirty objects whose owning shard is
// degraded (their write-back has nowhere to go), it returns an error
// wrapping ErrDegraded so the allocator grows the budget instead.
func (r *Runtime) evictOne() error {
	scanned := 0
	degraded := r.breakerIsOpen()
	sawDegraded := false
	// When every resident object is deref-scope protected (tiny budgets),
	// fall back to evicting the least recently derefed protected object.
	fallbackPos := -1
	var fallbackUse uint64
	for len(r.ring) > 0 && scanned <= 3*len(r.ring) {
		if r.hand >= len(r.ring) {
			r.hand = 0
		}
		e := r.ring[r.hand]
		obj := &e.ds.objs[e.idx]
		switch {
		case obj.epoch != e.epoch || obj.state == objRemote || obj.state == objUninit:
			// Stale entry: the object was evicted (and possibly
			// re-localized under a newer epoch/entry).
			if fallbackPos == r.hand {
				fallbackPos = -1
			}
			r.removeRingEntry(r.hand)
		case obj.state == objInFlight:
			if obj.readyAt <= r.clock.Now() && (obj.pending == nil || obj.pending.ready()) {
				// The payload has landed but no access consumed it: an
				// unused prefetch. Settle it to Local (evictable) so
				// speculative frames cannot wedge the cache. On the async
				// path, only settle once the completion has actually
				// arrived (ready is a non-blocking poll).
				e.ds.inflight--
				r.inflightBytes -= uint64(e.ds.Meta.ObjSize)
				if err := r.harvest(e.ds, e.idx); err != nil {
					// harvest reverted the object to remote and freed its
					// frame; the ring entry is now stale and will be
					// collected on a later pass.
					continue
				}
				obj.state = objLocal
				obj.ref = false
				continue
			}
			// Payload still on the wire: never evict in-flight frames.
			r.hand++
			scanned++
		case obj.ref:
			// Second chance.
			obj.ref = false
			r.hand++
			scanned++
		case r.accessSeq-obj.lastUse < recentWindow:
			// Deref-scope protection (AIFM DerefScope analogue).
			if fallbackPos == -1 || obj.lastUse < fallbackUse {
				fallbackPos, fallbackUse = r.hand, obj.lastUse
			}
			r.hand++
			scanned++
		case degraded && obj.dirty:
			// Breaker open: this frame holds the only copy of a dirty
			// object (its write-back has nowhere to go). Pin it; the
			// allocator grows the budget instead.
			r.hand++
			scanned++
		default:
			err := r.evictObject(e.ds, e.idx, r.hand)
			if err != nil && errors.Is(err, ErrDegraded) {
				// The victim is dirty on a degraded shard: the write-back
				// was refused, so this frame holds the only copy. Pin it
				// and keep scanning for a victim on a healthy shard.
				r.degradedDirty = true
				sawDegraded = true
				r.hand++
				scanned++
				continue
			}
			return err
		}
	}
	if fallbackPos >= 0 && fallbackPos < len(r.ring) {
		e := r.ring[fallbackPos]
		obj := &e.ds.objs[e.idx]
		if obj.epoch == e.epoch && obj.state == objLocal && !(degraded && obj.dirty) {
			err := r.evictObject(e.ds, e.idx, fallbackPos)
			if err == nil || !errors.Is(err, ErrDegraded) {
				return err
			}
			r.degradedDirty = true
			sawDegraded = true
		}
	}
	if sawDegraded {
		return fmt.Errorf("farmem: remotable memory exhausted (%d bytes), remaining victims dirty on degraded shards: %w", r.remotableBudget, ErrDegraded)
	}
	return fmt.Errorf("farmem: remotable memory exhausted (%d bytes) and nothing evictable", r.remotableBudget)
}

// evictObject writes back (if dirty) and frees one resident object.
// With an AsyncWriteStore the dirty payload is staged and written back
// off the critical path (tryAsyncWriteBack); the synchronous store
// round trip remains the fallback.
func (r *Runtime) evictObject(d *DS, idx, ringPos int) error {
	obj := &d.objs[idx]
	// Usually joins the root of the miss/prefetch whose allocFrame forced
	// this eviction; materialize-driven evictions open their own.
	rootMine := r.beginRoot()
	start := r.clock.Now()
	wasDirty := obj.dirty
	if obj.dirty {
		if !r.tryAsyncWriteBack(d, idx) {
			if err := r.storeWrite(d, idx, r.arena.Bytes(obj.frame, d.Meta.ObjSize)); err != nil {
				r.endRoot(rootMine)
				return fmt.Errorf("farmem: write-back ds%d[%d]: %w", d.ID, idx, err)
			}
			r.link.WriteBack(d.Meta.ObjSize)
		}
		d.stats.WriteBacks++
	} else {
		r.clock.Advance(r.model.EvictObject)
	}
	d.evictHist.Observe(r.clock.Now() - start)
	r.emitSpan(EvEvict, d.ID, idx, wasDirty, start)
	// The evicted frame's bytes supersede any chase-staged snapshot of
	// this object; and a write-back invalidates every in-flight chase of
	// the structure (the server may walk a pre-write image).
	r.invalidateChase(d, idx)
	if wasDirty {
		d.chaseGen++
	}
	r.arena.Free(obj.frame, d.Meta.ObjSize)
	r.remotableUsed -= uint64(d.Meta.ObjSize)
	obj.state = objRemote
	obj.dirty = false
	obj.rect = dirtyRect{}
	obj.ref = false
	obj.epoch++
	d.stats.Evictions++
	r.stats.Evictions++
	r.removeRingEntry(ringPos)
	r.endRoot(rootMine)
	return nil
}

func (r *Runtime) removeRingEntry(pos int) {
	last := len(r.ring) - 1
	r.ring[pos] = r.ring[last]
	r.ring = r.ring[:last]
	switch {
	case r.hand == last && pos < last:
		// Swap-delete moved the tail entry — the very one the hand was
		// pointing at — to pos. Follow it: otherwise that entry silently
		// loses its turn and is not scanned again until the next full
		// CLOCK lap, perturbing eviction order.
		r.hand = pos
	case r.hand >= last:
		r.hand = 0
	}
}

// PrefetchObj issues an asynchronous localization of object idx of d, if
// it is remote and capacity allows. Called by prefetchers.
func (r *Runtime) PrefetchObj(d *DS, idx int) {
	if idx < 0 || idx >= len(d.objs) {
		return
	}
	// No speculation while the remote tier is degraded (or on trial).
	if r.breakerIsOpen() {
		return
	}
	// Never let in-flight prefetches occupy more than half the remotable
	// budget (across ALL structures — several prefetchers share the one
	// cache): frames in flight are unevictable, and prefetchers running
	// far ahead of a small cache would otherwise wedge the allocator.
	lim := d.maxInflight
	if halfBudget := int(r.remotableBudget / uint64(d.Meta.ObjSize) / 2); halfBudget < lim {
		lim = halfBudget
	}
	if d.inflight >= lim {
		return
	}
	if r.inflightBytes+uint64(d.Meta.ObjSize) > r.remotableBudget/2 {
		return
	}
	obj := &d.objs[idx]
	if obj.state != objRemote {
		return
	}
	// An object with a staged write-back must be served from its staging
	// buffer (read-your-writes), never speculatively re-fetched: the
	// remote copy may still be stale.
	if _, ok := r.wbPending[wbKey{d.ID, idx}]; ok {
		return
	}
	// A chase already delivered this object's bytes; the deref path
	// consumes them without a round trip.
	if _, ok := r.chaseStaged[wbKey{d.ID, idx}]; ok {
		return
	}
	rootMine := r.beginRoot()
	frame, err := r.allocFrame(d, idx)
	if err != nil {
		r.endRoot(rootMine)
		return // no capacity: drop the hint
	}
	if r.astore != nil {
		// Truly asynchronous issue: the read starts filling a private
		// staging buffer and this goroutine moves on immediately, so a
		// prefetcher can put its whole lookahead window on the wire in
		// one doorbell. The payload is copied into the arena frame at
		// harvest time (Deref or CLOCK settle) — the frame itself cannot
		// be the destination because the arena slab may move (grow) while
		// the read is in flight.
		p := &pendingFetch{
			buf:  make([]byte, d.Meta.ObjSize),
			done: make(chan error, 1),
		}
		r.astore.IssueRead(d.ID, idx, p.buf, func(err error) { p.done <- err })
		obj.pending = p
	} else if err := r.storeRead(d, idx, r.arena.Bytes(frame, d.Meta.ObjSize)); err != nil {
		r.arena.Free(frame, d.Meta.ObjSize)
		r.remotableUsed -= uint64(d.Meta.ObjSize)
		obj.epoch++
		r.endRoot(rootMine)
		return
	}
	obj.frame = frame
	obj.readyAt = r.link.FetchAsync(d.Meta.ObjSize)
	obj.state = objInFlight
	obj.ref = false
	d.inflight++
	r.inflightBytes += uint64(d.Meta.ObjSize)
	d.stats.PrefetchIssued++
	r.emit(EvPrefetch, d.ID, idx, false)
	r.endRoot(rootMine)
}

// harvest consumes the pending async completion of an in-flight object,
// copying the staged payload into the object's arena frame. No-op on the
// sync path (pending == nil). On a failed async read it retries
// synchronously; if that also fails the object reverts to remote, its
// frame is freed, and the error is returned.
func (r *Runtime) harvest(d *DS, idx int) error {
	obj := &d.objs[idx]
	p := obj.pending
	if p == nil {
		return nil
	}
	obj.pending = nil
	if err := p.wait(); err == nil {
		copy(r.arena.Bytes(obj.frame, d.Meta.ObjSize), p.buf)
		return nil
	}
	// The async read failed: record it against the breaker — unless the
	// failure is a contained per-shard degradation, which must not trip
	// the global breaker — then reissue synchronously under the retry
	// budget.
	if r.breaker != nil && !errors.Is(p.err, ErrDegraded) && r.breaker.onFailure() {
		r.stats.BreakerTrips++
		r.emit(EvBreakerTrip, -1, 0, false)
	}
	if err := r.storeRead(d, idx, r.arena.Bytes(obj.frame, d.Meta.ObjSize)); err == nil {
		return nil
	}
	r.arena.Free(obj.frame, d.Meta.ObjSize)
	r.remotableUsed -= uint64(d.Meta.ObjSize)
	obj.state = objRemote
	obj.dirty = false
	obj.rect = dirtyRect{}
	obj.ref = false
	obj.epoch++
	return fmt.Errorf("farmem: async fetch ds%d[%d]: %w", d.ID, idx, p.err)
}

// AllLocal answers the cards_all_local check of Listing 3: true iff every
// listed data structure has never been remoted, enabling the
// uninstrumented fast path.
func (r *Runtime) AllLocal(ids []int) bool {
	r.stats.AllLocalCalls++
	r.clock.Advance(uint64(8 * (1 + len(ids))))
	for _, id := range ids {
		d := r.DSByID(id)
		if d == nil || d.everRemote {
			return false
		}
	}
	// Committing to the unguarded path: these structures must now stay
	// local for the rest of the run, even if they grow.
	for _, id := range ids {
		r.dss[id].localPromise = true
	}
	return true
}

// Prefetch services an explicit cards_prefetch hint on an address.
func (r *Runtime) Prefetch(addr uint64) {
	if !IsTagged(addr) {
		return
	}
	d := r.DSByID(DSOf(addr))
	if d == nil {
		return
	}
	off := OffOf(addr)
	if off >= d.size {
		return
	}
	r.clock.Advance(r.model.PrefetchIssue)
	r.PrefetchObj(d, int(off>>d.objShift))
}

// ReadWord performs a localized 64-bit read; the address must be a
// physical (already-guarded or pinned) address.
func (r *Runtime) ReadWord(paddr uint64) (uint64, error) {
	if IsTagged(paddr) {
		return 0, &ErrUnsafeAccess{Addr: paddr}
	}
	if !r.arena.InBounds(paddr, 8) {
		return 0, &ErrBadAddress{Addr: paddr, Why: "out of local bounds"}
	}
	return r.arena.Read8(paddr), nil
}

// WriteWord performs a localized 64-bit write.
func (r *Runtime) WriteWord(paddr uint64, v uint64) error {
	if IsTagged(paddr) {
		return &ErrUnsafeAccess{Addr: paddr}
	}
	if !r.arena.InBounds(paddr, 8) {
		return &ErrBadAddress{Addr: paddr, Why: "out of local bounds"}
	}
	r.arena.Write8(paddr, v)
	return nil
}

// ObjectWord reads a 64-bit word at byte offset within a *resident*
// object of d, without charging guard costs or touching reference bits.
// Prefetchers use it to inspect pointer fields of just-localized objects
// (the greedy recursive prefetcher of §4.2). Returns false when the
// object is not local or the offset is out of range.
func (r *Runtime) ObjectWord(d *DS, idx int, byteOff int) (uint64, bool) {
	if idx < 0 || idx >= len(d.objs) || byteOff < 0 || byteOff+8 > d.Meta.ObjSize {
		return 0, false
	}
	obj := &d.objs[idx]
	if obj.state != objLocal {
		return 0, false
	}
	return r.arena.Read8(obj.frame + uint64(byteOff)), true
}

// NumObjects returns the current object-table length of d.
func (d *DS) NumObjects() int { return len(d.objs) }
