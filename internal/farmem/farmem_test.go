package farmem

import (
	"testing"
	"testing/quick"

	"cards/internal/netsim"
)

func TestAddrEncoding(t *testing.T) {
	a := MakeAddr(5, 0x123456)
	if !IsTagged(a) {
		t.Fatal("tagged address not recognized")
	}
	if DSOf(a) != 5 {
		t.Fatalf("DSOf = %d, want 5", DSOf(a))
	}
	if OffOf(a) != 0x123456 {
		t.Fatalf("OffOf = %#x", OffOf(a))
	}
	if IsTagged(0x1000) {
		t.Fatal("plain address misdetected as tagged")
	}
}

func TestAddrEncodingProperty(t *testing.T) {
	f := func(dsRaw uint16, offRaw uint64) bool {
		ds := int(dsRaw) & MaxDS
		off := offRaw & OffMask
		a := MakeAddr(ds, off)
		return IsTagged(a) && DSOf(a) == ds && OffOf(a) == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestArenaAllocFree(t *testing.T) {
	a := NewArena(1 << 12)
	o1 := a.Alloc(64)
	o2 := a.Alloc(64)
	if o1 == 0 || o1 == o2 {
		t.Fatalf("offsets: %d %d", o1, o2)
	}
	a.Write8(o1, 0xdeadbeef)
	if a.Read8(o1) != 0xdeadbeef {
		t.Fatal("readback failed")
	}
	a.Free(o1, 64)
	o3 := a.Alloc(64)
	if o3 != o1 {
		t.Fatalf("free list not reused: %d vs %d", o3, o1)
	}
	if a.Read8(o3) != 0 {
		t.Fatal("reused frame not zeroed")
	}
}

func TestArenaFloats(t *testing.T) {
	a := NewArena(256)
	off := a.Alloc(8)
	a.WriteF(off, 3.25)
	if got := a.ReadF(off); got != 3.25 {
		t.Fatalf("ReadF = %v", got)
	}
}

func TestArenaBounds(t *testing.T) {
	a := NewArena(256)
	off := a.Alloc(16)
	if !a.InBounds(off, 16) {
		t.Fatal("allocated region out of bounds")
	}
	if a.InBounds(0, 8) {
		t.Fatal("null page should be out of bounds")
	}
	if a.InBounds(off, 1<<20) {
		t.Fatal("overlong region should be out of bounds")
	}
}

func TestArenaGrowth(t *testing.T) {
	a := NewArena(64)
	var offs []uint64
	for i := 0; i < 100; i++ {
		offs = append(offs, a.Alloc(128))
	}
	for i, off := range offs {
		a.Write8(off, uint64(i))
	}
	for i, off := range offs {
		if a.Read8(off) != uint64(i) {
			t.Fatalf("growth corrupted data at %d", i)
		}
	}
}

func newTestRuntime(pinned, remotable uint64) *Runtime {
	return New(Config{PinnedBudget: pinned, RemotableBudget: remotable})
}

func TestRegisterDS(t *testing.T) {
	r := newTestRuntime(1<<20, 1<<20)
	d, err := r.RegisterDS(0, DSMeta{Name: "a", ObjSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if d.Meta.ObjSize != 128 {
		t.Fatalf("ObjSize = %d, want rounded to 128", d.Meta.ObjSize)
	}
	if _, err := r.RegisterDS(5, DSMeta{}); err == nil {
		t.Fatal("non-dense registration should fail")
	}
	if _, err := r.RegisterDS(1, DSMeta{}); err != nil {
		t.Fatal(err)
	}
	if r.NumDS() != 2 {
		t.Fatalf("NumDS = %d", r.NumDS())
	}
	if r.DSByID(7) != nil || r.DSByID(-1) != nil {
		t.Fatal("DSByID out of range should be nil")
	}
}

func TestPinnedAllocationUntagged(t *testing.T) {
	r := newTestRuntime(1<<20, 1<<20)
	r.RegisterDS(0, DSMeta{Name: "pinned", ObjSize: 4096})
	r.SetPlacement(0, PlacePinned)
	addr, err := r.DSAlloc(0, 512)
	if err != nil {
		t.Fatal(err)
	}
	if IsTagged(addr) {
		t.Fatal("pinned allocation returned tagged address")
	}
	// Guard falls through on the fast path.
	p, err := r.Guard(addr, false)
	if err != nil || p != addr {
		t.Fatalf("Guard = %#x, %v", p, err)
	}
	if r.Stats().FastPathHits != 1 {
		t.Fatalf("FastPathHits = %d", r.Stats().FastPathHits)
	}
	if !r.AllLocal([]int{0}) {
		t.Fatal("pinned DS should report all-local")
	}
}

func TestRemotableAllocationTagged(t *testing.T) {
	r := newTestRuntime(1<<20, 1<<20)
	r.RegisterDS(0, DSMeta{Name: "rem", ObjSize: 4096})
	r.SetPlacement(0, PlaceRemotable)
	addr, err := r.DSAlloc(0, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if !IsTagged(addr) || DSOf(addr) != 0 {
		t.Fatalf("addr = %#x", addr)
	}
	if r.AllLocal([]int{0}) {
		t.Fatal("remotable DS must fail all-local")
	}
	// Write then read through guards.
	p, err := r.Guard(addr, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WriteWord(p, 42); err != nil {
		t.Fatal(err)
	}
	p2, err := r.Guard(addr, false)
	if err != nil {
		t.Fatal(err)
	}
	v, err := r.ReadWord(p2)
	if err != nil || v != 42 {
		t.Fatalf("read = %d, %v", v, err)
	}
	d := r.DSByID(0)
	st := d.Stats()
	if st.ColdFaults != 1 {
		t.Fatalf("ColdFaults = %d, want 1 (first touch)", st.ColdFaults)
	}
	if st.Hits != 1 {
		t.Fatalf("Hits = %d, want 1 (second access)", st.Hits)
	}
}

func TestEvictionRoundTrip(t *testing.T) {
	// Budget of 2 objects; touch 4 objects; early data must survive
	// eviction and come back over the "network".
	obj := 4096
	r := newTestRuntime(1<<20, uint64(2*obj))
	r.RegisterDS(0, DSMeta{Name: "d", ObjSize: obj})
	r.SetPlacement(0, PlaceRemotable)
	addr, err := r.DSAlloc(0, int64(4*obj))
	if err != nil {
		t.Fatal(err)
	}
	// Write a distinct value into each object.
	for i := 0; i < 4; i++ {
		p, err := r.Guard(addr+uint64(i*obj), true)
		if err != nil {
			t.Fatalf("obj %d: %v", i, err)
		}
		if err := r.WriteWord(p, uint64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	st := r.DSByID(0).Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite exceeding budget")
	}
	if st.WriteBacks == 0 {
		t.Fatal("dirty evictions must write back")
	}
	// Read everything back.
	for i := 0; i < 4; i++ {
		p, err := r.Guard(addr+uint64(i*obj), false)
		if err != nil {
			t.Fatalf("re-read obj %d: %v", i, err)
		}
		v, err := r.ReadWord(p)
		if err != nil || v != uint64(100+i) {
			t.Fatalf("obj %d = %d, %v; want %d", i, v, err, 100+i)
		}
	}
	if r.DSByID(0).Stats().Misses == 0 {
		t.Fatal("re-reads should miss and fetch remotely")
	}
	if r.Stats().RemoteFetches == 0 {
		t.Fatal("global RemoteFetches should count")
	}
}

func TestRuntimeOverrideSpill(t *testing.T) {
	// Pinned hint, but pinned budget too small: the runtime must
	// override and remote the structure (paper §4.2).
	r := newTestRuntime(1<<12, 1<<20)
	r.RegisterDS(0, DSMeta{Name: "big", ObjSize: 4096})
	r.SetPlacement(0, PlacePinned)
	a1, err := r.DSAlloc(0, 1<<12) // fits pinned exactly
	if err != nil {
		t.Fatal(err)
	}
	if IsTagged(a1) {
		t.Fatal("first allocation should be pinned")
	}
	a2, err := r.DSAlloc(0, 1<<12) // exceeds pinned budget
	if err != nil {
		t.Fatal(err)
	}
	if !IsTagged(a2) {
		t.Fatal("overflow allocation should be remoted")
	}
	if !r.DSByID(0).Spilled() {
		t.Fatal("DS should be marked spilled")
	}
	if r.AllLocal([]int{0}) {
		t.Fatal("spilled DS must fail all-local")
	}
	if r.Stats().SpilledDS != 1 {
		t.Fatalf("SpilledDS = %d", r.Stats().SpilledDS)
	}
}

func TestLinearPlacement(t *testing.T) {
	// Linear: pinned while pinned memory lasts, remotable afterwards.
	r := newTestRuntime(2*4096, 1<<20)
	r.RegisterDS(0, DSMeta{Name: "l", ObjSize: 4096})
	// default placement is PlaceLinear
	var tagged, untagged int
	for i := 0; i < 4; i++ {
		a, err := r.DSAlloc(0, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if IsTagged(a) {
			tagged++
		} else {
			untagged++
		}
	}
	if untagged != 2 || tagged != 2 {
		t.Fatalf("untagged/tagged = %d/%d, want 2/2", untagged, tagged)
	}
}

func TestGuardCostAccounting(t *testing.T) {
	r := newTestRuntime(1<<20, 1<<20)
	r.RegisterDS(0, DSMeta{ObjSize: 4096})
	r.SetPlacement(0, PlaceRemotable)
	addr, _ := r.DSAlloc(0, 4096)
	m := r.Model()

	// Cold fault (materialize): no network.
	before := r.Clock().Now()
	r.Guard(addr, true)
	coldCost := r.Clock().Now() - before
	if coldCost < m.CustodyCheck+m.DerefLocalWrite {
		t.Fatalf("cold fault cost %d too small", coldCost)
	}
	if coldCost > m.RemoteRTT {
		t.Fatalf("cold fault cost %d should not include a round trip", coldCost)
	}

	// Warm hit: custody + local deref only.
	before = r.Clock().Now()
	r.Guard(addr, false)
	hitCost := r.Clock().Now() - before
	want := m.CustodyCheck + m.DerefLocalRead
	if hitCost != want {
		t.Fatalf("hit cost = %d, want %d", hitCost, want)
	}

	// Pinned fast path: custody check only.
	r.RegisterDS(1, DSMeta{ObjSize: 4096})
	r.SetPlacement(1, PlacePinned)
	pa, _ := r.DSAlloc(1, 64)
	before = r.Clock().Now()
	r.Guard(pa, false)
	if got := r.Clock().Now() - before; got != m.CustodyCheck {
		t.Fatalf("fast path cost = %d, want %d", got, m.CustodyCheck)
	}
}

func TestRemoteMissCostMatchesTable1(t *testing.T) {
	obj := 4096
	r := newTestRuntime(1<<20, uint64(2*obj))
	r.RegisterDS(0, DSMeta{ObjSize: obj})
	r.SetPlacement(0, PlaceRemotable)
	addr, _ := r.DSAlloc(0, int64(4*obj))
	// Touch all 4 objects (evicting the first two), then re-read object 0.
	for i := 0; i < 4; i++ {
		if _, err := r.Guard(addr+uint64(i*obj), true); err != nil {
			t.Fatal(err)
		}
	}
	before := r.Clock().Now()
	if _, err := r.Guard(addr, false); err != nil {
		t.Fatal(err)
	}
	cost := r.Clock().Now() - before
	m := r.Model()
	min := m.RemoteRTT
	max := m.RemoteRTT + m.TransferCycles(obj) + m.DerefLocalRead + m.CustodyCheck + 4*m.EvictObject + 10000
	if cost < min || cost > max {
		t.Fatalf("remote fault cost = %d, want in [%d, %d] (~59K, Table 1)", cost, min, max)
	}
}

func TestUnsafeAccessDetected(t *testing.T) {
	r := newTestRuntime(1<<20, 1<<20)
	r.RegisterDS(0, DSMeta{ObjSize: 4096})
	r.SetPlacement(0, PlaceRemotable)
	addr, _ := r.DSAlloc(0, 64)
	if _, err := r.ReadWord(addr); err == nil {
		t.Fatal("direct read of tagged address must fail")
	}
	if err := r.WriteWord(addr, 1); err == nil {
		t.Fatal("direct write of tagged address must fail")
	}
}

func TestBadAddresses(t *testing.T) {
	r := newTestRuntime(1<<20, 1<<20)
	r.RegisterDS(0, DSMeta{ObjSize: 4096})
	r.SetPlacement(0, PlaceRemotable)
	r.DSAlloc(0, 64)
	if _, err := r.Deref(MakeAddr(3, 0), false); err == nil {
		t.Fatal("unknown DS should error")
	}
	if _, err := r.Deref(MakeAddr(0, 1<<20), false); err == nil {
		t.Fatal("offset beyond extent should error")
	}
	if _, err := r.ReadWord(4); err == nil {
		t.Fatal("below-arena read should error")
	}
}

func TestPrefetchLifecycle(t *testing.T) {
	obj := 4096
	r := newTestRuntime(1<<20, uint64(16*obj))
	r.RegisterDS(0, DSMeta{ObjSize: obj})
	r.SetPlacement(0, PlaceRemotable)
	addr, _ := r.DSAlloc(0, int64(16*obj))
	// Write objects 0..7 then force them remote by touching 8..15.
	for i := 0; i < 16; i++ {
		p, err := r.Guard(addr+uint64(i*obj), true)
		if err != nil {
			t.Fatal(err)
		}
		r.WriteWord(p, uint64(i))
	}
	d := r.DSByID(0)
	// Find a remote object and prefetch it.
	var remoteIdx = -1
	for i := range d.objs {
		if d.objs[i].state == objRemote {
			remoteIdx = i
			break
		}
	}
	if remoteIdx < 0 {
		t.Skip("no remote object despite pressure") // shouldn't happen
	}
	r.PrefetchObj(d, remoteIdx)
	if d.objs[remoteIdx].state != objInFlight {
		t.Fatal("prefetch did not mark in-flight")
	}
	if d.Stats().PrefetchIssued != 1 {
		t.Fatal("PrefetchIssued not counted")
	}
	// Demand access consumes the prefetch.
	p, err := r.Guard(addr+uint64(remoteIdx*obj), false)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := r.ReadWord(p)
	if v != uint64(remoteIdx) {
		t.Fatalf("prefetched data = %d, want %d", v, remoteIdx)
	}
	if d.Stats().PrefetchHits != 1 {
		t.Fatal("PrefetchHits not counted")
	}
	// Prefetching an already-local object is a no-op.
	r.PrefetchObj(d, remoteIdx)
	if d.Stats().PrefetchIssued != 1 {
		t.Fatal("duplicate prefetch issued")
	}
}

func TestExplicitPrefetchHint(t *testing.T) {
	obj := 4096
	r := newTestRuntime(1<<20, uint64(4*obj))
	r.RegisterDS(0, DSMeta{ObjSize: obj})
	r.SetPlacement(0, PlaceRemotable)
	addr, _ := r.DSAlloc(0, int64(4*obj))
	r.Prefetch(addr)           // uninit: no-op but harmless
	r.Prefetch(0x1000)         // untagged: no-op
	r.Prefetch(MakeAddr(9, 0)) // unknown DS: no-op
	if r.DSByID(0).Stats().PrefetchIssued != 0 {
		t.Fatal("no prefetch should have been issued")
	}
}

func TestTrackFMCostProfile(t *testing.T) {
	r := New(Config{PinnedBudget: 1 << 20, RemotableBudget: 1 << 20, TrackFMGuards: true})
	r.RegisterDS(0, DSMeta{ObjSize: 4096})
	r.SetPlacement(0, PlaceRemotable)
	addr, _ := r.DSAlloc(0, 4096)
	r.Guard(addr, true) // cold
	m := r.Model()
	before := r.Clock().Now()
	r.Guard(addr, false)
	cost := r.Clock().Now() - before
	if cost != m.TrackFMGuardLocalRead {
		t.Fatalf("TrackFM local read guard = %d, want %d", cost, m.TrackFMGuardLocalRead)
	}
	before = r.Clock().Now()
	r.Guard(addr, true)
	cost = r.Clock().Now() - before
	if cost != m.TrackFMGuardLocalWrite {
		t.Fatalf("TrackFM local write guard = %d, want %d", cost, m.TrackFMGuardLocalWrite)
	}
}

func TestMapStore(t *testing.T) {
	s := NewMapStore()
	buf := make([]byte, 8)
	if err := s.ReadObj(0, 0, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("missing object should read as zeros")
		}
	}
	s.WriteObj(0, 0, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	s.ReadObj(0, 0, buf)
	if buf[0] != 1 || buf[7] != 8 {
		t.Fatalf("roundtrip = %v", buf)
	}
	if s.Objects() != 1 {
		t.Fatalf("Objects = %d", s.Objects())
	}
}

// Property: any sequence of guarded writes followed by guarded reads
// returns the written values, regardless of eviction pressure.
func TestReadYourWritesUnderPressureProperty(t *testing.T) {
	f := func(seed int64, nObjsRaw, budgetRaw uint8) bool {
		nObjs := int(nObjsRaw%32) + recentWindow + 2
		budgetObjs := int(budgetRaw%16) + recentWindow + 2
		obj := 256
		r := newTestRuntime(1<<20, uint64(budgetObjs*obj))
		r.RegisterDS(0, DSMeta{ObjSize: obj})
		r.SetPlacement(0, PlaceRemotable)
		addr, err := r.DSAlloc(0, int64(nObjs*obj))
		if err != nil {
			return false
		}
		for i := 0; i < nObjs; i++ {
			p, err := r.Guard(addr+uint64(i*obj), true)
			if err != nil {
				return false
			}
			if r.WriteWord(p, uint64(seed)+uint64(i)) != nil {
				return false
			}
		}
		for i := nObjs - 1; i >= 0; i-- {
			p, err := r.Guard(addr+uint64(i*obj), false)
			if err != nil {
				return false
			}
			v, err := r.ReadWord(p)
			if err != nil || v != uint64(seed)+uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestVirtualTimeMonotone(t *testing.T) {
	r := newTestRuntime(1<<16, 1<<16)
	r.RegisterDS(0, DSMeta{ObjSize: 256})
	addr, _ := r.DSAlloc(0, 1<<14)
	last := r.Clock().Now()
	for i := 0; i < 100; i++ {
		if IsTagged(addr) {
			r.Guard(addr+uint64(i*8), i%2 == 0)
		}
		now := r.Clock().Now()
		if now < last {
			t.Fatal("clock went backwards")
		}
		last = now
	}
	_ = netsim.Seconds(last, netsim.DefaultHz)
}
