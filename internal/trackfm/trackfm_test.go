package trackfm

import (
	"testing"

	"cards/internal/core"
	"cards/internal/ir"
	"cards/internal/policy"
)

const (
	arraySize = 16384
	nTimes    = 8
)

func TestCompileGuardsEverything(t *testing.T) {
	m := ir.BuildListing1(arraySize, nTimes)
	c, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	if c.Guards.GuardsInserted == 0 {
		t.Fatal("no guards")
	}
	if c.Guards.LoopsVersioned != 0 {
		t.Fatal("TrackFM must not version loops")
	}
	// All allocations bound to the merged heap handle 0.
	m.FuncByName("alloc").Instrs(func(_ *ir.Block, _ int, in *ir.Instr) bool {
		if in.Op == ir.OpAlloc {
			cst, ok := in.DSHandle.(ir.IntConst)
			if !ok || cst.V != 0 {
				t.Fatalf("alloc handle = %v, want constant 0", in.DSHandle)
			}
		}
		return true
	})
}

func TestRunComputesAndCounts(t *testing.T) {
	c, err := Compile(ir.BuildListing1(4096, 4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(RunConfig{LocalMemory: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.Runtime.GuardChecks == 0 {
		t.Fatalf("res = %+v", res)
	}
	// Every guard check should go through the slow profile: TrackFM has
	// no custody fast path for remotable (everything is remotable).
	if res.Runtime.FastPathHits > res.Runtime.GuardChecks/2 {
		t.Errorf("too many fast-path hits for an all-remotable baseline: %d/%d",
			res.Runtime.FastPathHits, res.Runtime.GuardChecks)
	}
}

func TestCaRDSBeatsTrackFMOnListing1(t *testing.T) {
	// The headline comparison: with decent local memory, CaRDS (which
	// pins the hot structure and elides guards) must beat TrackFM.
	local := uint64(arraySize * 8) // enough for one of the two structures

	tfm, err := Compile(ir.BuildListing1(arraySize, nTimes))
	if err != nil {
		t.Fatal(err)
	}
	tfmRes, err := tfm.Run(RunConfig{LocalMemory: local + 16*4096})
	if err != nil {
		t.Fatal(err)
	}

	cds, err := core.Compile(ir.BuildListing1(arraySize, nTimes), core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cdsRes, err := cds.Run(core.RunConfig{
		Policy:          policy.MaxUse,
		K:               50,
		PinnedBudget:    local,
		RemotableBudget: 16 * 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cdsRes.Cycles >= tfmRes.Cycles {
		t.Errorf("CaRDS (%d cycles) should beat TrackFM (%d cycles)",
			cdsRes.Cycles, tfmRes.Cycles)
	}
	speedup := float64(tfmRes.Cycles) / float64(cdsRes.Cycles)
	t.Logf("CaRDS speedup over TrackFM on Listing 1: %.2fx", speedup)
}
