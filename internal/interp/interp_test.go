package interp

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"cards/internal/farmem"
	"cards/internal/ir"
)

func newRT() *farmem.Runtime {
	return farmem.New(farmem.Config{PinnedBudget: 1 << 22, RemotableBudget: 1 << 20})
}

// runMain builds a machine and executes the module's main.
func runMain(t *testing.T, m *ir.Module) uint64 {
	t.Helper()
	mach, err := New(m, newRT(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := mach.Run()
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	m := ir.NewModule("arith")
	f := m.NewFunc("main", ir.I64())
	b := ir.NewBuilder(f)
	// ((7*6 - 2) / 4) % 3 => (40/4)%3 = 10%3 = 1
	v := b.Rem(b.Div(b.Sub(b.Mul(ir.CI(7), ir.CI(6)), ir.CI(2)), ir.CI(4)), ir.CI(3))
	// plus (1 << 4) >> 2 = 4, xor 1 = 5, or 8 = 13, and 0xF = 13
	w := b.And(b.Bin(ir.Or, b.Xor(b.Shr(b.Shl(ir.CI(1), ir.CI(4)), ir.CI(2)), ir.CI(1)), ir.CI(8)), ir.CI(0xF))
	b.Ret(b.Add(v, w))
	m.AssignSites()
	ir.MustVerify(m)
	if got := runMain(t, m); got != 14 {
		t.Fatalf("got %d, want 14", got)
	}
}

func TestComparisons(t *testing.T) {
	m := ir.NewModule("cmp")
	f := m.NewFunc("main", ir.I64())
	b := ir.NewBuilder(f)
	acc := f.NewReg("acc", ir.I64())
	b.Assign(acc, ir.CI(0))
	for _, r := range []*ir.Reg{
		b.LT(ir.CI(-1), ir.CI(1)), b.LE(ir.CI(2), ir.CI(2)),
		b.GT(ir.CI(3), ir.CI(-3)), b.GE(ir.CI(4), ir.CI(4)),
		b.EQ(ir.CI(5), ir.CI(5)), b.NE(ir.CI(6), ir.CI(7)),
	} {
		b.Assign(acc, b.Add(acc, r))
	}
	b.Ret(acc)
	m.AssignSites()
	ir.MustVerify(m)
	if got := runMain(t, m); got != 6 {
		t.Fatalf("got %d, want 6", got)
	}
}

func TestFloatOps(t *testing.T) {
	m := ir.NewModule("float")
	f := m.NewFunc("main", ir.I64())
	b := ir.NewBuilder(f)
	// (2.5 * 4 - 1) / 2 = 4.5
	x := b.FDiv(b.FSub(b.FMul(ir.CF(2.5), ir.CF(4)), ir.CF(1)), ir.CF(2))
	// itof(3) + 4.5 = 7.5; flt(7.5, 8) = 1
	y := b.FAdd(b.IToF(ir.CI(3)), x)
	b.Ret(b.Bin(ir.FLT, y, ir.CF(8)))
	m.AssignSites()
	ir.MustVerify(m)
	if got := runMain(t, m); got != 1 {
		t.Fatalf("got %d, want 1", got)
	}
	_ = math.Pi
}

func TestDivisionByZeroTrap(t *testing.T) {
	for _, kind := range []ir.BinKind{ir.Div, ir.Rem} {
		m := ir.NewModule("trap")
		f := m.NewFunc("main", ir.I64())
		b := ir.NewBuilder(f)
		b.Ret(b.Bin(kind, ir.CI(1), ir.CI(0)))
		m.AssignSites()
		ir.MustVerify(m)
		mach, err := New(m, newRT(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mach.Run(); err == nil || !strings.Contains(err.Error(), "zero") {
			t.Fatalf("%v: err = %v, want division by zero", kind, err)
		}
	}
}

func TestStepLimit(t *testing.T) {
	m := ir.NewModule("spin")
	f := m.NewFunc("main", ir.Void())
	b := ir.NewBuilder(f)
	loop := b.NewBlock("loop")
	b.Jmp(loop)
	b.SetBlock(loop)
	b.Jmp(loop)
	m.AssignSites()
	ir.MustVerify(m)
	mach, err := New(m, newRT(), Options{MaxSteps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mach.Run(); err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("err = %v, want step limit", err)
	}
}

func TestRecursionDepthLimit(t *testing.T) {
	m := ir.NewModule("deep")
	f := m.NewFunc("f", ir.Void(), ir.P("n", ir.I64()))
	b := ir.NewBuilder(f)
	b.Call(f, b.Add(f.Params[0], ir.CI(1)))
	b.Ret(nil)
	mf := m.NewFunc("main", ir.Void())
	mb := ir.NewBuilder(mf)
	mb.Call(f, ir.CI(0))
	mb.Ret(nil)
	m.AssignSites()
	ir.MustVerify(m)
	mach, err := New(m, newRT(), Options{MaxDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mach.Run(); err == nil || !strings.Contains(err.Error(), "depth") {
		t.Fatalf("err = %v, want depth exceeded", err)
	}
}

func TestMainRequired(t *testing.T) {
	m := ir.NewModule("nomain")
	f := m.NewFunc("other", ir.Void())
	ir.NewBuilder(f).Ret(nil)
	m.AssignSites()
	mach, err := New(m, newRT(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mach.Run(); err == nil {
		t.Fatal("missing main should error")
	}
}

func TestMainWithParamsRejected(t *testing.T) {
	m := ir.NewModule("badmain")
	f := m.NewFunc("main", ir.Void(), ir.P("argc", ir.I64()))
	ir.NewBuilder(f).Ret(nil)
	m.AssignSites()
	mach, err := New(m, newRT(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mach.Run(); err == nil {
		t.Fatal("main with params should error")
	}
}

func TestUnverifiedModuleRejected(t *testing.T) {
	m := ir.NewModule("bad")
	m.NewFunc("main", ir.Void()) // no blocks
	if _, err := New(m, newRT(), Options{}); err == nil {
		t.Fatal("unverified module should be rejected")
	}
}

func TestMemoryRoundTripAndStats(t *testing.T) {
	m := ir.NewModule("mem")
	f := m.NewFunc("main", ir.I64())
	b := ir.NewBuilder(f)
	arr := b.Alloc(ir.I64(), ir.CI(16))
	loop := b.CountedLoop("i", ir.CI(0), ir.CI(16), ir.CI(1))
	b.Store(ir.I64(), b.Mul(loop.IV, loop.IV), b.Idx(arr, loop.IV))
	b.CloseLoop(loop)
	acc := f.NewReg("acc", ir.I64())
	b.Assign(acc, ir.CI(0))
	l2 := b.CountedLoop("j", ir.CI(0), ir.CI(16), ir.CI(1))
	b.Assign(acc, b.Add(acc, b.Load(ir.I64(), b.Idx(arr, l2.IV))))
	b.CloseLoop(l2)
	b.Ret(acc)
	m.AssignSites()
	ir.MustVerify(m)

	rt := newRT()
	mach, err := New(m, rt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := mach.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(0)
	for i := uint64(0); i < 16; i++ {
		want += i * i
	}
	if got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	st := mach.Stats()
	if st.Instructions == 0 || st.Calls != 1 || st.MaxDepthSeen != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if rt.Clock().Now() == 0 {
		t.Fatal("virtual clock did not advance")
	}
}

func TestNegativeAllocRejected(t *testing.T) {
	m := ir.NewModule("negalloc")
	f := m.NewFunc("main", ir.Void())
	b := ir.NewBuilder(f)
	b.Alloc(ir.I64(), ir.CI(-3))
	b.Ret(nil)
	m.AssignSites()
	ir.MustVerify(m)
	mach, _ := New(m, newRT(), Options{})
	if _, err := mach.Run(); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("err = %v, want negative alloc", err)
	}
}

// Property: evalBin integer ops match Go semantics.
func TestEvalBinProperty(t *testing.T) {
	f := func(x, y int64) bool {
		checks := []struct {
			kind ir.BinKind
			want uint64
		}{
			{ir.Add, uint64(x + y)},
			{ir.Sub, uint64(x - y)},
			{ir.Mul, uint64(x * y)},
			{ir.And, uint64(x) & uint64(y)},
			{ir.Or, uint64(x) | uint64(y)},
			{ir.Xor, uint64(x) ^ uint64(y)},
		}
		for _, c := range checks {
			got, err := evalBin(c.kind, uint64(x), uint64(y))
			if err != nil || got != c.want {
				return false
			}
		}
		if y != 0 {
			got, err := evalBin(ir.Div, uint64(x), uint64(y))
			if err != nil || got != uint64(x/y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGuardAndPrefetchOps(t *testing.T) {
	// Build a module with explicit guard/prefetch/all_local instructions
	// (what the guards pass emits) and execute it directly.
	m := ir.NewModule("intrinsics")
	f := m.NewFunc("main", ir.I64())
	b := ir.NewBuilder(f)
	arr := b.Alloc(ir.I64(), ir.CI(8))

	g := ir.NewInstr(ir.OpGuard)
	g.Addr = arr
	g.IsWrite = true
	g.Dst = f.NewReg("", ir.Ptr(ir.I64()))
	b.Block().Append(g)
	b.Store(ir.I64(), ir.CI(77), g.Dst)

	pf := ir.NewInstr(ir.OpPrefetch)
	pf.Addr = arr
	b.Block().Append(pf)

	al := ir.NewInstr(ir.OpAllLocal)
	al.DSRefs = []int{0}
	al.Dst = f.NewReg("", ir.I64())
	b.Block().Append(al)

	g2 := ir.NewInstr(ir.OpGuard)
	g2.Addr = arr
	g2.Dst = f.NewReg("", ir.Ptr(ir.I64()))
	b.Block().Append(g2)
	v := b.Load(ir.I64(), g2.Dst)
	b.Ret(b.Add(v, al.Dst))
	m.AssignSites()
	ir.MustVerify(m)

	rt := farmem.New(farmem.Config{PinnedBudget: 1 << 16, RemotableBudget: 1 << 16})
	rt.RegisterDS(0, farmem.DSMeta{ObjSize: 4096})
	// No placement: default Linear pins, so all_local yields 1.
	mach, err := New(m, rt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := mach.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Plain alloc (no DSHandle) is pinned local memory: all_local([0])
	// is true (DS 0 never went remote), so result = 77 + 1.
	if got != 78 {
		t.Fatalf("got %d, want 78", got)
	}
}

func TestROIMarkersMeasureRegion(t *testing.T) {
	m := ir.NewModule("roi")
	begin := m.NewFunc(ROIBegin, ir.Void())
	ir.NewBuilder(begin).Ret(nil)
	end := m.NewFunc(ROIEnd, ir.Void())
	ir.NewBuilder(end).Ret(nil)

	f := m.NewFunc("main", ir.Void())
	b := ir.NewBuilder(f)
	pre := b.CountedLoop("pre", ir.CI(0), ir.CI(1000), ir.CI(1))
	b.ConstI(0)
	b.CloseLoop(pre)
	b.Call(begin)
	roi := b.CountedLoop("roi", ir.CI(0), ir.CI(100), ir.CI(1))
	b.ConstI(0)
	b.CloseLoop(roi)
	b.Call(end)
	b.Ret(nil)
	m.AssignSites()
	ir.MustVerify(m)

	rt := newRT()
	mach, err := New(m, rt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mach.Run(); err != nil {
		t.Fatal(err)
	}
	st := mach.Stats()
	if st.ROICycles == 0 {
		t.Fatal("ROI cycles not recorded")
	}
	if st.ROICycles >= rt.Clock().Now() {
		t.Fatalf("ROI (%d) should be a fraction of total (%d)", st.ROICycles, rt.Clock().Now())
	}
	// ROI loop is 10x smaller than the pre loop: ROI must be well under
	// a third of total time.
	if 3*st.ROICycles > rt.Clock().Now() {
		t.Fatalf("ROI (%d) too large vs total (%d)", st.ROICycles, rt.Clock().Now())
	}
}

func TestUnmatchedROIEndIsHarmless(t *testing.T) {
	m := ir.NewModule("roi2")
	end := m.NewFunc(ROIEnd, ir.Void())
	ir.NewBuilder(end).Ret(nil)
	f := m.NewFunc("main", ir.Void())
	b := ir.NewBuilder(f)
	b.Call(end) // end without begin
	b.Ret(nil)
	m.AssignSites()
	ir.MustVerify(m)
	mach, err := New(m, newRT(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mach.Run(); err != nil {
		t.Fatal(err)
	}
	if mach.Stats().ROICycles != 0 {
		t.Fatal("unmatched end should record nothing")
	}
}
