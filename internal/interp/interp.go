// Package interp executes IR programs against the CaRDS runtime. It
// plays the role of the CPU: each instruction charges the virtual clock,
// memory instructions go through the runtime's guard/deref machinery,
// and dsalloc-rewritten allocations carry their data structure handles
// into the allocator — so a compiled program's far-memory behaviour
// (guard counts, faults, network traffic, virtual time) is measured by
// simply running it.
//
// The interpreter enforces the safety property the guard passes are
// meant to establish: a direct load/store of a tagged (remotable)
// address that did not pass through a guard aborts execution with
// ErrUnsafeAccess. Compiler bugs surface as hard failures, not silent
// corruption.
package interp

import (
	"fmt"
	"math"

	"cards/internal/farmem"
	"cards/internal/ir"
)

// Options tunes execution.
type Options struct {
	// MaxSteps bounds total executed instructions (0 = default 1e9).
	MaxSteps uint64
	// MaxDepth bounds the call stack (0 = default 10_000).
	MaxDepth int
}

// Stats reports what an execution did.
type Stats struct {
	Instructions uint64
	Calls        uint64
	MaxDepthSeen int
	// ROICycles is the virtual time spent inside region-of-interest
	// markers (zero when the program declares none).
	ROICycles uint64
}

// Region-of-interest marker functions: a program may declare empty
// functions with these names and call them around its measured kernel
// (the way the GAP benchmarks time BFS trials but not graph building).
// The interpreter intercepts the calls and accumulates the enclosed
// virtual time into Stats.ROICycles.
const (
	ROIBegin = "cards.roi_begin"
	ROIEnd   = "cards.roi_end"
)

// Machine executes one program against one runtime.
type Machine struct {
	mod      *ir.Module
	rt       *farmem.Runtime
	opts     Options
	stats    Stats
	depth    int
	roiStart uint64
	inROI    bool
}

// New creates a machine. The module must verify.
func New(mod *ir.Module, rt *farmem.Runtime, opts Options) (*Machine, error) {
	if err := ir.Verify(mod); err != nil {
		return nil, fmt.Errorf("interp: module does not verify: %w", err)
	}
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 1_000_000_000
	}
	if opts.MaxDepth == 0 {
		opts.MaxDepth = 10_000
	}
	return &Machine{mod: mod, rt: rt, opts: opts}, nil
}

// Stats returns execution statistics.
func (m *Machine) Stats() Stats { return m.stats }

// Run executes main() to completion and returns its result bits (0 for a
// void main). Workload programs return checksums here so correctness can
// be asserted across policies and baselines.
func (m *Machine) Run() (uint64, error) {
	main := m.mod.Main()
	if main == nil {
		return 0, fmt.Errorf("interp: module has no main")
	}
	if len(main.Params) != 0 {
		return 0, fmt.Errorf("interp: main must take no parameters (has %d)", len(main.Params))
	}
	return m.call(main, nil)
}

// frame is one activation record: the register file.
type frame struct {
	regs []uint64
}

func (fr *frame) get(v ir.Value) uint64 {
	switch vv := v.(type) {
	case *ir.Reg:
		return fr.regs[vv.ID]
	case ir.IntConst:
		return uint64(vv.V)
	case ir.FloatConst:
		return math.Float64bits(vv.V)
	}
	panic(fmt.Sprintf("interp: unknown value %T", v))
}

func (fr *frame) set(r *ir.Reg, v uint64) { fr.regs[r.ID] = v }

// call executes one function and returns its result bits.
func (m *Machine) call(f *ir.Function, args []uint64) (uint64, error) {
	m.depth++
	if m.depth > m.opts.MaxDepth {
		m.depth--
		return 0, fmt.Errorf("interp: call depth exceeded in @%s", f.Name)
	}
	if m.depth > m.stats.MaxDepthSeen {
		m.stats.MaxDepthSeen = m.depth
	}
	m.stats.Calls++
	defer func() { m.depth-- }()

	fr := &frame{regs: make([]uint64, len(f.Regs()))}
	for i, p := range f.Params {
		fr.set(p, args[i])
	}

	blk := f.Entry()
	idx := 0
	for {
		if idx >= len(blk.Instrs) {
			return 0, fmt.Errorf("interp: fell off block %s in @%s", blk.Name, f.Name)
		}
		in := blk.Instrs[idx]
		m.stats.Instructions++
		if m.stats.Instructions > m.opts.MaxSteps {
			return 0, fmt.Errorf("interp: step limit (%d) exceeded", m.opts.MaxSteps)
		}
		m.rt.Clock().Advance(m.rt.Model().Instr)

		switch in.Op {
		case ir.OpConst:
			if in.IsFloat {
				fr.set(in.Dst, math.Float64bits(in.FloatVal))
			} else {
				fr.set(in.Dst, uint64(in.IntVal))
			}

		case ir.OpBin:
			v, err := evalBin(in.Kind, fr.get(in.X), fr.get(in.Y))
			if err != nil {
				return 0, fmt.Errorf("interp: @%s %s: %w", f.Name, in, err)
			}
			fr.set(in.Dst, v)

		case ir.OpCopy:
			fr.set(in.Dst, fr.get(in.Src))

		case ir.OpAlloc:
			elemSize := int64(in.Elem.Size())
			count := int64(fr.get(in.Count))
			if count < 0 {
				return 0, fmt.Errorf("interp: @%s: negative alloc count %d", f.Name, count)
			}
			var addr uint64
			var err error
			if in.DSHandle != nil {
				ds := int64(fr.get(in.DSHandle))
				addr, err = m.rt.DSAlloc(int(ds), count*elemSize)
			} else {
				addr, err = m.rt.AllocLocal(count * elemSize)
			}
			if err != nil {
				return 0, fmt.Errorf("interp: @%s alloc: %w", f.Name, err)
			}
			fr.set(in.Dst, addr)

		case ir.OpLoad:
			v, err := m.rt.ReadWord(fr.get(in.Addr))
			if err != nil {
				return 0, fmt.Errorf("interp: @%s %s: %w", f.Name, in, err)
			}
			fr.set(in.Dst, v)

		case ir.OpStore:
			if err := m.rt.WriteWord(fr.get(in.Addr), fr.get(in.Src)); err != nil {
				return 0, fmt.Errorf("interp: @%s %s: %w", f.Name, in, err)
			}

		case ir.OpGEP:
			base := fr.get(in.Base)
			var off uint64
			if in.Index != nil {
				off = fr.get(in.Index) * uint64(in.ElemSize)
			}
			fr.set(in.Dst, base+off+uint64(in.ConstOff))

		case ir.OpGuard:
			p, err := m.rt.GuardSpan(fr.get(in.Addr), in.IsWrite, in.GLo, in.GHi)
			if err != nil {
				return 0, fmt.Errorf("interp: @%s %s: %w", f.Name, in, err)
			}
			fr.set(in.Dst, p)

		case ir.OpAllLocal:
			if m.rt.AllLocal(in.DSRefs) {
				fr.set(in.Dst, 1)
			} else {
				fr.set(in.Dst, 0)
			}

		case ir.OpPrefetch:
			m.rt.Prefetch(fr.get(in.Addr))

		case ir.OpCall:
			switch in.Callee {
			case ROIBegin:
				m.roiStart = m.rt.Clock().Now()
				m.inROI = true
				idx++
				continue
			case ROIEnd:
				if m.inROI {
					m.stats.ROICycles += m.rt.Clock().Now() - m.roiStart
					m.inROI = false
				}
				idx++
				continue
			}
			callee := m.mod.FuncByName(in.Callee)
			args := make([]uint64, len(in.Args))
			for i, a := range in.Args {
				args[i] = fr.get(a)
			}
			ret, err := m.call(callee, args)
			if err != nil {
				return 0, err
			}
			if in.Dst != nil {
				fr.set(in.Dst, ret)
			}

		case ir.OpRet:
			if in.Src != nil {
				return fr.get(in.Src), nil
			}
			return 0, nil

		case ir.OpBr:
			if fr.get(in.Cond) != 0 {
				blk, idx = in.Then, 0
			} else {
				blk, idx = in.Else, 0
			}
			continue

		case ir.OpJmp:
			blk, idx = in.Target, 0
			continue

		default:
			return 0, fmt.Errorf("interp: @%s: unexecutable op %s", f.Name, in.Op)
		}
		idx++
	}
}

// evalBin evaluates a binary operator on raw register bits.
func evalBin(kind ir.BinKind, x, y uint64) (uint64, error) {
	b := func(cond bool) uint64 {
		if cond {
			return 1
		}
		return 0
	}
	xi, yi := int64(x), int64(y)
	switch kind {
	case ir.Add:
		return uint64(xi + yi), nil
	case ir.Sub:
		return uint64(xi - yi), nil
	case ir.Mul:
		return uint64(xi * yi), nil
	case ir.Div:
		if yi == 0 {
			return 0, fmt.Errorf("integer division by zero")
		}
		return uint64(xi / yi), nil
	case ir.Rem:
		if yi == 0 {
			return 0, fmt.Errorf("integer remainder by zero")
		}
		return uint64(xi % yi), nil
	case ir.And:
		return x & y, nil
	case ir.Or:
		return x | y, nil
	case ir.Xor:
		return x ^ y, nil
	case ir.Shl:
		return x << (y & 63), nil
	case ir.Shr:
		return x >> (y & 63), nil
	case ir.EQ:
		return b(xi == yi), nil
	case ir.NE:
		return b(xi != yi), nil
	case ir.LT:
		return b(xi < yi), nil
	case ir.LE:
		return b(xi <= yi), nil
	case ir.GT:
		return b(xi > yi), nil
	case ir.GE:
		return b(xi >= yi), nil
	case ir.FAdd:
		return math.Float64bits(math.Float64frombits(x) + math.Float64frombits(y)), nil
	case ir.FSub:
		return math.Float64bits(math.Float64frombits(x) - math.Float64frombits(y)), nil
	case ir.FMul:
		return math.Float64bits(math.Float64frombits(x) * math.Float64frombits(y)), nil
	case ir.FDiv:
		return math.Float64bits(math.Float64frombits(x) / math.Float64frombits(y)), nil
	case ir.FLT:
		return b(math.Float64frombits(x) < math.Float64frombits(y)), nil
	case ir.IToF:
		return math.Float64bits(float64(int64(x))), nil
	}
	return 0, fmt.Errorf("unknown binary op %v", kind)
}
