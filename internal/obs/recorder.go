package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Slow-op flight recorder. Head sampling keeps tracing cheap but throws
// away exactly the ops an operator greps for after an incident — the
// tail. The recorder is the always-on complement: every completed
// remote op is offered with its latency decomposition, and only the
// top-K slowest per rotating wall-clock window are retained (current +
// previous window, so a fresh window never erases the recent past). The
// non-slow fast path is one atomic load against the current window's
// admission threshold; no goroutines, no timers — windows rotate lazily
// on offer/snapshot.

// SlowOp is one completed remote operation's record: identity, retry
// history, and the clock-offset-free latency decomposition
// (client-queue + on-wire + server-queue + server-service == total by
// construction; wire is the residual of the measured RTT minus the
// server-reported busy time, so it includes both flight directions).
type SlowOp struct {
	TraceID uint64 `json:"trace"`
	SpanID  uint64 `json:"span"`
	Op      string `json:"op"` // "read" | "write"
	DS      int    `json:"ds"`
	Idx     int    `json:"idx"`
	Shard   string `json:"shard,omitempty"`
	// Attempts counts wire attempts: 1 = completed first try, >1 = the
	// op was retried/replayed across reconnects before completing.
	Attempts int  `json:"attempts"`
	Sampled  bool `json:"sampled"` // also head-sampled into the ring
	// Failover marks an op the replica layer completed on a backend
	// other than the one it first tried (Shard names the backend that
	// finally served it; Attempts counts the replicas tried).
	Failover bool `json:"failover,omitempty"`

	StartUS         uint64 `json:"start_us"` // client epoch µs at enqueue
	TotalUS         uint64 `json:"total_us"`
	ClientQueueUS   uint64 `json:"client_queue_us"`
	WireUS          uint64 `json:"wire_us"`
	ServerQueueUS   uint64 `json:"server_queue_us"`
	ServerServiceUS uint64 `json:"server_service_us"`
}

// DefaultSlowK is the per-window retention when NewFlightRecorder is
// given a non-positive K.
const DefaultSlowK = 32

// DefaultSlowWindow is the rotation period when NewFlightRecorder is
// given a non-positive window.
const DefaultSlowWindow = 10 * time.Second

// FlightRecorder retains the top-K slowest ops per rotating window.
// Offer is safe for concurrent use; the struct owns no goroutines.
type FlightRecorder struct {
	k      int
	window time.Duration

	// threshold is the admission bar in µs: ops at or below it cannot
	// enter the current window (it holds the window's K-th slowest total
	// once the window is full, 0 otherwise). The one-atomic-load reject
	// is what keeps the recorder off the hot path's profile.
	threshold atomic.Uint64

	offers   atomic.Uint64
	rejected atomic.Uint64

	mu       sync.Mutex
	curStart time.Time
	cur      []SlowOp
	prev     []SlowOp
}

// NewFlightRecorder builds a recorder keeping the k slowest ops per
// window (non-positive arguments select the defaults).
func NewFlightRecorder(k int, window time.Duration) *FlightRecorder {
	if k <= 0 {
		k = DefaultSlowK
	}
	if window <= 0 {
		window = DefaultSlowWindow
	}
	return &FlightRecorder{
		k:        k,
		window:   window,
		curStart: time.Now(),
		cur:      make([]SlowOp, 0, k),
	}
}

// Offer submits one completed op. Ops too fast for the current window
// are rejected with a single atomic load and no lock.
func (r *FlightRecorder) Offer(op SlowOp) {
	if r == nil {
		return
	}
	r.offers.Add(1)
	if op.TotalUS <= r.threshold.Load() {
		r.rejected.Add(1)
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rotateLocked(time.Now())
	if len(r.cur) < r.k {
		r.cur = append(r.cur, op)
		if len(r.cur) == r.k {
			r.threshold.Store(r.minLocked())
		}
		return
	}
	// Full window: replace the minimum (Offer rechecks under the lock —
	// the threshold may have moved since the lock-free test).
	minI := 0
	for i := 1; i < len(r.cur); i++ {
		if r.cur[i].TotalUS < r.cur[minI].TotalUS {
			minI = i
		}
	}
	if op.TotalUS <= r.cur[minI].TotalUS {
		r.rejected.Add(1)
		return
	}
	r.cur[minI] = op
	r.threshold.Store(r.minLocked())
}

func (r *FlightRecorder) minLocked() uint64 {
	min := r.cur[0].TotalUS
	for _, op := range r.cur[1:] {
		if op.TotalUS < min {
			min = op.TotalUS
		}
	}
	return min
}

// rotateLocked retires the current window once its period has elapsed.
// A gap longer than two windows clears both (everything is stale).
func (r *FlightRecorder) rotateLocked(now time.Time) {
	elapsed := now.Sub(r.curStart)
	if elapsed < r.window {
		return
	}
	if elapsed >= 2*r.window {
		r.prev = nil
	} else {
		r.prev = r.cur
	}
	r.cur = make([]SlowOp, 0, r.k)
	r.curStart = now
	r.threshold.Store(0)
}

// Len reports the number of retained ops (both windows); the bound is
// 2*K by construction.
func (r *FlightRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cur) + len(r.prev)
}

// Offers and Rejected report the lifetime offer/fast-reject counts.
func (r *FlightRecorder) Offers() uint64   { return r.offers.Load() }
func (r *FlightRecorder) Rejected() uint64 { return r.rejected.Load() }

// Snapshot returns the retained ops (current + previous window),
// slowest first.
func (r *FlightRecorder) Snapshot() []SlowOp {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	r.rotateLocked(time.Now())
	out := make([]SlowOp, 0, len(r.cur)+len(r.prev))
	out = append(out, r.cur...)
	out = append(out, r.prev...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].TotalUS > out[j].TotalUS })
	return out
}

// slowSpan is one component of a slow op's rendered span tree.
type slowSpan struct {
	Name     string `json:"name"`
	OffsetUS uint64 `json:"offset_us"` // from the op's enqueue
	DurUS    uint64 `json:"dur_us"`
}

// slowTree is the JSON rendering of one retained op: the root op plus
// its four decomposition components as child spans. The wire component
// covers both flight directions (the decomposition cannot split them
// without synchronized clocks), so it brackets the two server spans.
type slowTree struct {
	SlowOp
	Spans []slowSpan `json:"spans"`
}

func (op SlowOp) tree() slowTree {
	cq, wire := op.ClientQueueUS, op.WireUS
	sq, ss := op.ServerQueueUS, op.ServerServiceUS
	return slowTree{
		SlowOp: op,
		Spans: []slowSpan{
			{Name: "client_queue", OffsetUS: 0, DurUS: cq},
			{Name: "wire", OffsetUS: cq, DurUS: wire + sq + ss},
			{Name: "server_queue", OffsetUS: cq + wire/2, DurUS: sq},
			{Name: "server_service", OffsetUS: cq + wire/2 + sq, DurUS: ss},
		},
	}
}

// ServeHTTP renders the recorder state as JSON for /debug/slow.
func (r *FlightRecorder) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	ops := r.Snapshot()
	trees := make([]slowTree, len(ops))
	for i, op := range ops {
		trees[i] = op.tree()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		WindowSeconds float64    `json:"window_seconds"`
		K             int        `json:"k"`
		Offers        uint64     `json:"offers"`
		Rejected      uint64     `json:"rejected"`
		SlowOps       []slowTree `json:"slow_ops"`
	}{
		WindowSeconds: r.window.Seconds(),
		K:             r.k,
		Offers:        r.Offers(),
		Rejected:      r.Rejected(),
		SlowOps:       trees,
	})
}
