package obs

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"
)

// TestPrometheusHistogramConformance checks the histogram exposition
// against the text-format rules scrapers depend on:
//
//   - _bucket series carry cumulative counts, non-decreasing in le
//   - a +Inf bucket is always present and equals _count
//   - _sum and _count are emitted with the histogram's label set
//   - the cumulative count at each le equals the number of observations
//     with value <= le (ground truth from the raw observations)
//   - every sample name is preceded by exactly one # TYPE line of the
//     right type, before the first sample of that name
func TestPrometheusHistogramConformance(t *testing.T) {
	reg := NewRegistry()
	values := []uint64{0, 1, 2, 3, 5, 7, 1024, 1 << 40, math.MaxUint64}
	h := reg.Histogram("cards_test_us", "ds", "1", "component", "wire")
	var sum uint64
	for _, v := range values {
		h.Observe(v)
		sum += v
	}
	// A second series of the same metric, and an empty one: the TYPE
	// line must appear once, and empty histograms still need +Inf.
	reg.Histogram("cards_test_us", "ds", "2", "component", "wire").Observe(9)
	reg.Histogram("cards_empty_us")
	reg.Counter("cards_test_ops_total").Add(3)

	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	type sample struct {
		le    float64
		hasLe bool
		value uint64
	}
	samples := make(map[string][]sample) // series key without le -> samples in emission order
	typeOf := make(map[string]string)
	seen := make(map[string]bool) // metric base names with samples already emitted
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			if _, dup := typeOf[parts[2]]; dup {
				t.Errorf("line %d: duplicate TYPE for %s", ln+1, parts[2])
			}
			if seen[parts[2]] {
				t.Errorf("line %d: TYPE for %s after its samples", ln+1, parts[2])
			}
			typeOf[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: malformed sample %q", ln+1, line)
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseUint(valStr, 10, 64)
		if err != nil {
			t.Fatalf("line %d: non-integer value %q: %v", ln+1, valStr, err)
		}
		s := sample{value: val}
		key := series
		if i := strings.Index(series, `le="`); i >= 0 {
			j := strings.IndexByte(series[i+4:], '"')
			leStr := series[i+4 : i+4+j]
			if leStr == "+Inf" {
				s.le = math.Inf(1)
			} else if s.le, err = strconv.ParseFloat(leStr, 64); err != nil {
				t.Fatalf("line %d: bad le %q", ln+1, leStr)
			}
			s.hasLe = true
			// Strip the le pair (and its separator) to group the buckets
			// of one series.
			start := i
			if start > 0 && series[start-1] == ',' {
				start--
			}
			key = series[:start] + series[i+4+j+1:]
			key = strings.TrimSuffix(key, "{}")
		}
		samples[key] = append(samples[key], s)
		name := series
		if k := strings.IndexByte(series, '{'); k >= 0 {
			name = series[:k]
		}
		seen[name] = true
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count")
		if typeOf[base] == "" && typeOf[name] == "" {
			t.Errorf("line %d: sample %s has no TYPE line", ln+1, name)
		}
	}

	if got := typeOf["cards_test_us"]; got != "histogram" {
		t.Errorf("TYPE cards_test_us = %q, want histogram", got)
	}
	if got := typeOf["cards_test_ops_total"]; got != "counter" {
		t.Errorf("TYPE cards_test_ops_total = %q, want counter", got)
	}

	checkHistogram := func(labels string, vals []uint64, wantSum uint64) {
		t.Helper()
		buckets := samples[`cards_test_us_bucket`+labels]
		if len(buckets) == 0 {
			t.Fatalf("no _bucket samples for %s", labels)
		}
		prevLe := math.Inf(-1)
		var prevCum uint64
		for _, b := range buckets {
			if !b.hasLe {
				t.Fatalf("%s: bucket without le label", labels)
			}
			if b.le <= prevLe {
				t.Errorf("%s: le %v out of order after %v", labels, b.le, prevLe)
			}
			if b.value < prevCum {
				t.Errorf("%s: bucket le=%v count %d not cumulative (previous %d)",
					labels, b.le, b.value, prevCum)
			}
			var want uint64
			for _, v := range vals {
				if float64(v) <= b.le {
					want++
				}
			}
			if b.value != want {
				t.Errorf("%s: cumulative count at le=%v is %d, want %d",
					labels, b.le, b.value, want)
			}
			prevLe, prevCum = b.le, b.value
		}
		last := buckets[len(buckets)-1]
		if !math.IsInf(last.le, 1) {
			t.Errorf("%s: last bucket le=%v, want +Inf", labels, last.le)
		}
		count := samples["cards_test_us_count"+labels]
		if len(count) != 1 || count[0].value != uint64(len(vals)) {
			t.Errorf("%s: _count = %v, want one sample of %d", labels, count, len(vals))
		}
		if last.value != uint64(len(vals)) {
			t.Errorf("%s: +Inf bucket %d != _count %d", labels, last.value, len(vals))
		}
		s := samples["cards_test_us_sum"+labels]
		if len(s) != 1 || s[0].value != wantSum {
			t.Errorf("%s: _sum = %v, want one sample of %d", labels, s, wantSum)
		}
	}
	checkHistogram(`{ds="1",component="wire"}`, values, sum)
	checkHistogram(`{ds="2",component="wire"}`, []uint64{9}, 9)

	// Empty histogram: +Inf bucket of zero, _sum 0, _count 0.
	empty := samples["cards_empty_us_bucket"]
	if len(empty) != 1 || !math.IsInf(empty[0].le, 1) || empty[0].value != 0 {
		t.Errorf("empty histogram buckets = %+v, want single +Inf of 0", empty)
	}
}
