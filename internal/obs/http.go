package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler serving live introspection endpoints
// from point-in-time snapshots:
//
//	GET /metrics — Prometheus text exposition (version 0.0.4)
//	GET /stats   — the same snapshot as indented JSON
//
// snap is invoked per request, so servers can publish freshly-computed
// gauges (resident objects, arena occupancy) inside it.
func Handler(snap func() *Snapshot) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := snap().WritePrometheus(w); err != nil {
			// Headers are gone; best effort.
			fmt.Fprintf(w, "# error: %v\n", err)
		}
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := snap().WriteJSON(w); err != nil {
			fmt.Fprintf(w, `{"error":%q}`, err.Error())
		}
	})
	return mux
}

// DebugHandler is Handler plus the deep-introspection endpoints:
//
//	GET /debug/slow    — the slow-op flight recorder's span trees (JSON)
//	GET /debug/pprof/* — net/http/pprof profiles (heap, goroutine, CPU, …)
//
// slow may be nil; /debug/slow then reports an empty recorder. The
// pprof routes are registered explicitly (not via the package's
// DefaultServeMux side effect) so they exist only on listeners that
// asked for them.
func DebugHandler(snap func() *Snapshot, slow *FlightRecorder) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(snap))
	mux.Handle("/stats", Handler(snap))
	mux.HandleFunc("/debug/slow", func(w http.ResponseWriter, req *http.Request) {
		if slow == nil {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"slow_ops":[]}`)
			return
		}
		slow.ServeHTTP(w, req)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
