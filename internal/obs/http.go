package obs

import (
	"fmt"
	"net/http"
)

// Handler returns an http.Handler serving live introspection endpoints
// from point-in-time snapshots:
//
//	GET /metrics — Prometheus text exposition (version 0.0.4)
//	GET /stats   — the same snapshot as indented JSON
//
// snap is invoked per request, so servers can publish freshly-computed
// gauges (resident objects, arena occupancy) inside it.
func Handler(snap func() *Snapshot) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := snap().WritePrometheus(w); err != nil {
			// Headers are gone; best effort.
			fmt.Fprintf(w, "# error: %v\n", err)
		}
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := snap().WriteJSON(w); err != nil {
			fmt.Fprintf(w, `{"error":%q}`, err.Error())
		}
	})
	return mux
}
