// Package obs is the unified observability layer of the CaRDS
// reproduction: a named-metric registry (counters, gauges, power-of-two
// histograms built on the stats primitives) with point-in-time snapshots
// and JSON / Prometheus-text exposition, plus a bounded ring-buffer
// tracer with Chrome trace_event export (trace.go).
//
// Metric names follow the scheme cards_<layer>_<name>, e.g.
// cards_farmem_hits_total or cards_remote_read_ns. Per-entity series
// (one per data structure, one per verb) attach label pairs:
//
//	reg.Counter("cards_farmem_hits_total", "ds", "3")
//
// Registration is get-or-create and concurrency-safe; callers cache the
// returned metric pointer at wiring time so the hot path never touches
// the registry map. All metric types are safe for concurrent use.
package obs

import (
	"sort"
	"strings"
	"sync"

	"cards/internal/stats"
)

// Registry is a named collection of metrics.
//
// The zero value is NOT ready to use; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*stats.Counter
	gauges   map[string]*stats.Gauge
	hists    map[string]*stats.Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*stats.Counter),
		gauges:   make(map[string]*stats.Gauge),
		hists:    make(map[string]*stats.Histogram),
	}
}

// Key renders a metric name plus label pairs ("k", "v", ...) into the
// canonical series key: name{k="v",...}. It is the exact string under
// which Snapshot exposes the series, so Report-style consumers can look
// values up without guessing the format.
func Key(name string, labels ...string) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, `\"`+"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Counter returns the counter registered under the given name and label
// pairs, creating it on first use.
func (r *Registry) Counter(name string, labels ...string) *stats.Counter {
	k := Key(name, labels...)
	r.mu.RLock()
	c := r.counters[k]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[k]; c == nil {
		c = &stats.Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the gauge registered under the given name and label
// pairs, creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *stats.Gauge {
	k := Key(name, labels...)
	r.mu.RLock()
	g := r.gauges[k]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[k]; g == nil {
		g = &stats.Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns the histogram registered under the given name and
// label pairs, creating it on first use.
func (r *Registry) Histogram(name string, labels ...string) *stats.Histogram {
	k := Key(name, labels...)
	r.mu.RLock()
	h := r.hists[k]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[k]; h == nil {
		h = &stats.Histogram{}
		r.hists[k] = h
	}
	return h
}

// AdoptHistogram registers an externally-owned histogram (e.g. the
// netsim link's queue-delay sketch) so it appears in snapshots. A later
// adoption under the same key replaces the earlier one.
func (r *Registry) AdoptHistogram(h *stats.Histogram, name string, labels ...string) {
	k := Key(name, labels...)
	r.mu.Lock()
	r.hists[k] = h
	r.mu.Unlock()
}

// Bucket is one non-empty histogram bucket: Count observations with
// value <= Le (and greater than the previous bucket's Le).
type Bucket struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of one histogram.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Mean    float64  `json:"mean"`
	P50     uint64   `json:"p50"`
	P99     uint64   `json:"p99"`
	Max     uint64   `json:"max"` // upper bound of the highest non-empty bucket
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of every registered series. Maps are
// keyed by the canonical series key (see Key).
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the current value of every series.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := &Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for k, c := range r.counters {
		s.Counters[k] = c.Load()
	}
	for k, g := range r.gauges {
		s.Gauges[k] = g.Load()
	}
	for k, h := range r.hists {
		s.Histograms[k] = snapshotHistogram(h)
	}
	return s
}

func snapshotHistogram(h *stats.Histogram) HistogramSnapshot {
	hs := HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		P50:   h.ApproxQuantile(0.5),
		P99:   h.ApproxQuantile(0.99),
	}
	for i := 0; i < stats.NumBuckets; i++ {
		if c := h.BucketCount(i); c > 0 {
			hs.Buckets = append(hs.Buckets, Bucket{Le: stats.BucketBound(i), Count: c})
			hs.Max = stats.BucketBound(i)
		}
	}
	return hs
}

// Counter returns the snapshotted value of one counter series (0 when
// the series does not exist).
func (s *Snapshot) Counter(name string, labels ...string) uint64 {
	return s.Counters[Key(name, labels...)]
}

// Gauge returns the snapshotted value of one gauge series (0 when the
// series does not exist).
func (s *Snapshot) Gauge(name string, labels ...string) int64 {
	return s.Gauges[Key(name, labels...)]
}

// Histogram returns the snapshotted state of one histogram series (zero
// value when the series does not exist).
func (s *Snapshot) Histogram(name string, labels ...string) HistogramSnapshot {
	return s.Histograms[Key(name, labels...)]
}

// sortedKeys returns map keys in lexical order for deterministic output.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
