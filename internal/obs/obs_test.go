package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestKey(t *testing.T) {
	cases := []struct {
		name   string
		labels []string
		want   string
	}{
		{"cards_farmem_hits_total", nil, "cards_farmem_hits_total"},
		{"cards_farmem_hits_total", []string{"ds", "3"}, `cards_farmem_hits_total{ds="3"}`},
		{"m", []string{"a", "x", "b", "y"}, `m{a="x",b="y"}`},
		{"m", []string{"a", `q"q`}, `m{a="q\"q"}`},
	}
	for _, c := range cases {
		if got := Key(c.name, c.labels...); got != c.want {
			t.Errorf("Key(%q, %v) = %q, want %q", c.name, c.labels, got, c.want)
		}
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("cards_test_total", "ds", "0")
	c2 := r.Counter("cards_test_total", "ds", "0")
	if c1 != c2 {
		t.Fatal("same series returned distinct counters")
	}
	if c3 := r.Counter("cards_test_total", "ds", "1"); c3 == c1 {
		t.Fatal("distinct labels returned the same counter")
	}
	c1.Add(7)
	r.Gauge("cards_test_gauge").Set(-4)
	r.Histogram("cards_test_ns").Observe(100)

	s := r.Snapshot()
	if got := s.Counter("cards_test_total", "ds", "0"); got != 7 {
		t.Fatalf("snapshot counter = %d, want 7", got)
	}
	if got := s.Gauge("cards_test_gauge"); got != -4 {
		t.Fatalf("snapshot gauge = %d, want -4", got)
	}
	h := s.Histogram("cards_test_ns")
	if h.Count != 1 || h.Sum != 100 {
		t.Fatalf("snapshot histogram = %+v", h)
	}
	if len(h.Buckets) != 1 || h.Buckets[0].Le != 128 || h.Buckets[0].Count != 1 {
		t.Fatalf("histogram buckets = %+v, want one bucket le=128", h.Buckets)
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("cards_test_total").Inc()
				r.Histogram("cards_test_ns", "verb", "READ").Observe(uint64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Snapshot().Counter("cards_test_total"); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("cards_remote_reads_total").Add(3)
	r.Gauge("cards_remote_inflight").Set(2)
	h := r.Histogram("cards_remote_read_ns", "verb", "READ")
	h.Observe(1)
	h.Observe(100)
	h.Observe(5000)

	var b bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE cards_remote_reads_total counter",
		"cards_remote_reads_total 3",
		"# TYPE cards_remote_inflight gauge",
		"cards_remote_inflight 2",
		"# TYPE cards_remote_read_ns histogram",
		`cards_remote_read_ns_bucket{verb="READ",le="1"} 1`,
		`cards_remote_read_ns_bucket{verb="READ",le="128"} 2`,
		`cards_remote_read_ns_bucket{verb="READ",le="8192"} 3`,
		`cards_remote_read_ns_bucket{verb="READ",le="+Inf"} 3`,
		`cards_remote_read_ns_sum{verb="READ"} 5101`,
		`cards_remote_read_ns_count{verb="READ"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("cards_x_total").Add(5)
	r.Histogram("cards_x_ns").Observe(42)
	var b bytes.Buffer
	if err := r.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b.Bytes(), &back); err != nil {
		t.Fatalf("stats JSON does not round-trip: %v", err)
	}
	if back.Counters["cards_x_total"] != 5 {
		t.Fatalf("round-tripped counter = %d, want 5", back.Counters["cards_x_total"])
	}
	if back.Histograms["cards_x_ns"].Count != 1 {
		t.Fatalf("round-tripped histogram = %+v", back.Histograms["cards_x_ns"])
	}
}

func TestAdoptHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("tmp") // any *stats.Histogram works; reuse the type
	h.Observe(9)
	r.AdoptHistogram(h, "cards_netsim_queue_delay_cycles")
	if got := r.Snapshot().Histogram("cards_netsim_queue_delay_cycles").Count; got != 1 {
		t.Fatalf("adopted histogram count = %d, want 1", got)
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("cards_d_total").Add(11)
	srv := httptest.NewServer(Handler(func() *Snapshot { return r.Snapshot() }))
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		b.ReadFrom(resp.Body)
		return b.String(), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.Contains(body, "cards_d_total 11") {
		t.Fatalf("/metrics body = %q", body)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/metrics content type = %q", ctype)
	}

	body, ctype = get("/stats")
	if ctype != "application/json" {
		t.Fatalf("/stats content type = %q", ctype)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(body), &s); err != nil {
		t.Fatalf("/stats not JSON: %v", err)
	}
	if s.Counters["cards_d_total"] != 11 {
		t.Fatalf("/stats counter = %d, want 11", s.Counters["cards_d_total"])
	}
}
