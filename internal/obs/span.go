package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Distributed span plumbing. A trace is born at a root cause on the
// client side — a guard miss, a prefetch issue, a staged write-back —
// and its context (trace ID + parent span ID + sampled flag) rides the
// wire on every tagged frame of a FeatTrace session, so the server and
// the transport label their spans with the same trace ID. Layers run on
// different timebases (the farmem runtime counts virtual cycles, the
// transport wall clock), so the link between their spans is causal (the
// shared trace ID in TraceEvent.Trace) rather than positional.

// SpanContext identifies one in-progress trace. The zero value means
// "not traced" and is what every accessor returns off the sampled path.
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
	Sampled bool
}

// TraceHub owns the cross-layer tracing state of one client process:
// the ID allocator, the adaptive head sampler, the shared event ring,
// the slow-op flight recorder, and the active-context handoff slot that
// carries a root span from the layer that started it (farmem) into the
// transport enqueue that happens synchronously under it.
//
// A nil *TraceHub is valid and inert, like a nil *Tracer.
type TraceHub struct {
	// Tracer receives sampled span events; may be nil (sampling then
	// still drives the flight recorder and wire context).
	Tracer *Tracer
	// Recorder is the always-on slow-op flight recorder; may be nil.
	Recorder *FlightRecorder

	nextID  atomic.Uint64
	sampler sampler
	active  atomic.Pointer[SpanContext]
}

// NewTraceHub builds a hub whose head sampler targets about
// tracesPerSec sampled root spans per second (0 or negative selects
// DefaultTraceTarget; use SampleAll for tests and smoke runs that need
// every op traced).
func NewTraceHub(tracer *Tracer, rec *FlightRecorder, tracesPerSec float64) *TraceHub {
	h := &TraceHub{Tracer: tracer, Recorder: rec}
	h.sampler.init(tracesPerSec)
	return h
}

// DefaultTraceTarget is the default head-sampling budget in sampled
// root traces per second. Low-rate workloads trace everything; past the
// target the effective sampling probability adapts down as target/rate.
const DefaultTraceTarget = 500.0

// SampleAll disables head-sampling throttling: every root is sampled.
// For tests and bounded smoke runs only.
const SampleAll = -1.0

// StartTrace allocates a root span context, head-sampled. The context
// is returned even when unsampled (IDs are cheap and the flight
// recorder labels its records with them); Sampled gates the expensive
// half — span emission into the ring.
func (h *TraceHub) StartTrace() SpanContext {
	if h == nil {
		return SpanContext{}
	}
	return SpanContext{
		TraceID: h.nextID.Add(1),
		SpanID:  h.nextID.Add(1),
		Sampled: h.sampler.allow(),
	}
}

// NextSpanID allocates a fresh span ID within an existing trace.
func (h *TraceHub) NextSpanID() uint64 {
	if h == nil {
		return 0
	}
	return h.nextID.Add(1)
}

// SetActive installs ctx as the calling layer's current root context.
// The transport's enqueue paths (which run synchronously under the
// runtime's deref/prefetch/write-back calls) pick it up via Active and
// stamp it onto the wire. Call ClearActive when the causal window ends.
// Only traced roots should be installed, so the non-traced hot path
// never reaches this (and never allocates).
func (h *TraceHub) SetActive(ctx SpanContext) {
	if h == nil {
		return
	}
	c := ctx
	h.active.Store(&c)
}

// ClearActive ends the active-context window opened by SetActive.
func (h *TraceHub) ClearActive() {
	if h == nil {
		return
	}
	h.active.Store(nil)
}

// Active returns the installed root context, or the zero context when
// none is active. It is a single atomic load on the hot path.
func (h *TraceHub) Active() SpanContext {
	if h == nil {
		return SpanContext{}
	}
	if p := h.active.Load(); p != nil {
		return *p
	}
	return SpanContext{}
}

// Emit forwards a span event to the hub's ring tracer (nil-safe).
func (h *TraceHub) Emit(ev TraceEvent) {
	if h == nil {
		return
	}
	h.Tracer.Emit(ev)
}

// Offer forwards one completed op record to the flight recorder
// (nil-safe); see FlightRecorder.Offer for the fast-path contract.
func (h *TraceHub) Offer(op SlowOp) {
	if h == nil || h.Recorder == nil {
		return
	}
	h.Recorder.Offer(op)
}

// sampler is a token-bucket head sampler: up to perSec root traces per
// second are sampled, with a burst of one second's budget. At offered
// rates below perSec every root is sampled; above it the effective
// probability adapts to perSec/rate. The mutex is fine here — allow()
// runs only at root-span starts, which are remote-miss slow paths.
type sampler struct {
	mu     sync.Mutex
	all    bool
	perSec float64
	tokens float64
	last   time.Time
}

func (s *sampler) init(perSec float64) {
	if perSec == SampleAll {
		s.all = true
		return
	}
	if perSec <= 0 {
		perSec = DefaultTraceTarget
	}
	s.perSec = perSec
	s.tokens = perSec
	s.last = time.Now()
}

func (s *sampler) allow() bool {
	if s.all {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	s.tokens += now.Sub(s.last).Seconds() * s.perSec
	if s.tokens > s.perSec {
		s.tokens = s.perSec
	}
	s.last = now
	if s.tokens < 1 {
		return false
	}
	s.tokens--
	return true
}
