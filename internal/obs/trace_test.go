package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestTracerNilIsInert(t *testing.T) {
	var tr *Tracer
	tr.Emit(TraceEvent{Name: "x"}) // must not panic
	tr.Span("c", "n", 0)()
	if tr.Len() != 0 || tr.Drops() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer not inert")
	}
}

func TestTracerOverflowDropsInsteadOfBlocking(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(TraceEvent{Name: "e", TS: uint64(i)})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Drops() != 6 {
		t.Fatalf("Drops = %d, want 6", tr.Drops())
	}
	// The ring keeps the first cap events (bounded history of the run's
	// start), and overflow is visible via the drop counter.
	evs := tr.Events()
	if evs[0].TS != 0 || evs[3].TS != 3 {
		t.Fatalf("ring contents wrong: %+v", evs)
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	const goroutines = 8
	const perG = 5000
	tr := NewTracer(goroutines * perG / 2) // force overflow under contention
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tr.Emit(TraceEvent{Cat: "remote", Name: "READ", TID: g, TS: uint64(i)})
			}
		}(g)
	}
	wg.Wait()
	if got := uint64(tr.Len()) + tr.Drops(); got != goroutines*perG {
		t.Fatalf("kept+dropped = %d, want %d", got, goroutines*perG)
	}
	if tr.Len() != tr.Cap() {
		t.Fatalf("ring not full after overflow: len=%d cap=%d", tr.Len(), tr.Cap())
	}
}

func TestTracerSubscribers(t *testing.T) {
	tr := NewTracer(2)
	var aCount, bCount int
	cancelA := tr.Subscribe(func(TraceEvent) { aCount++ })
	tr.Subscribe(func(TraceEvent) { bCount++ })
	for i := 0; i < 5; i++ {
		tr.Emit(TraceEvent{Name: "e"})
	}
	// Subscribers see every event, including the ones the full ring drops.
	if aCount != 5 || bCount != 5 {
		t.Fatalf("subscriber counts = %d, %d, want 5, 5", aCount, bCount)
	}
	cancelA()
	tr.Emit(TraceEvent{Name: "e"})
	if aCount != 5 || bCount != 6 {
		t.Fatalf("after cancel: counts = %d, %d, want 5, 6", aCount, bCount)
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	tr := NewTracer(16)
	tr.Emit(TraceEvent{TS: 10, Dur: 5, Cat: "compile", Name: "dsa", TID: 0})
	tr.Emit(TraceEvent{TS: 20, Cat: "farmem", Name: "fetch", TID: 3,
		Arg1Name: "obj", Arg1: 42, Arg2Name: "dirty", Arg2: 1})
	for i := 0; i < 20; i++ {
		tr.Emit(TraceEvent{TS: uint64(30 + i), Cat: "farmem", Name: "evict"})
	}

	var b bytes.Buffer
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v\n%s", err, b.String())
	}
	if len(doc.TraceEvents) != 16 {
		t.Fatalf("traceEvents = %d, want 16 (ring cap)", len(doc.TraceEvents))
	}
	span := doc.TraceEvents[0]
	if span["ph"] != "X" || span["dur"] != float64(5) || span["name"] != "dsa" {
		t.Fatalf("span event malformed: %v", span)
	}
	inst := doc.TraceEvents[1]
	if inst["ph"] != "i" || inst["s"] != "t" {
		t.Fatalf("instant event malformed: %v", inst)
	}
	args, ok := inst["args"].(map[string]any)
	if !ok || args["obj"] != float64(42) || args["dirty"] != float64(1) {
		t.Fatalf("instant args malformed: %v", inst)
	}
	if doc.OtherData["drops"] != float64(6) {
		t.Fatalf("otherData.drops = %v, want 6", doc.OtherData["drops"])
	}
}

func TestSpanEmitsCompleteEvent(t *testing.T) {
	tr := NewTracer(4)
	tr.Span("compile", "guards", 2)()
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("events = %d, want 1", len(evs))
	}
	e := evs[0]
	if e.Cat != "compile" || e.Name != "guards" || e.TID != 2 {
		t.Fatalf("span event = %+v", e)
	}
}
