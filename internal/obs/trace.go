package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"cards/internal/stats"
)

// TraceEvent is one traced occurrence on some layer's timeline.
// Timestamps and durations are in microseconds — virtual (cycle-derived)
// for the simulated runtime, wall-clock for the network and compiler
// layers; each layer is a distinct category so the two never share a
// track. Dur == 0 means an instant event. Up to two small integer
// arguments ride along without allocation.
type TraceEvent struct {
	TS                 uint64 // microseconds since the layer's epoch
	Dur                uint64 // microseconds; 0 = instant
	Cat                string // layer: "farmem", "remote", "compile", ...
	Name               string // event name: "fetch", "READ", pass name, ...
	TID                int    // track within the category: DS id, connection id, ...
	Trace              uint64 // distributed trace ID; 0 = not part of a trace
	Arg1Name, Arg2Name string
	Arg1, Arg2         int64
}

// Subscriber receives every event synchronously on the emitting
// goroutine. Subscribers must be fast and must not call back into the
// tracer's emitting layer.
type Subscriber func(TraceEvent)

// Tracer is a bounded ring-buffer event sink with optional synchronous
// subscribers. It supersedes the runtime's original single-hook design:
// any number of layers emit concurrently, any number of subscribers
// observe, and the ring never blocks — when full, events are dropped
// and counted instead.
//
// A nil *Tracer is valid and inert: Emit on nil is a no-op, so call
// sites need no guards beyond passing the tracer around.
type Tracer struct {
	mu     sync.Mutex
	ring   []TraceEvent
	cap    int
	drops  stats.Counter
	subs   atomic.Pointer[[]subEntry]
	nextID atomic.Uint64
	start  time.Time
}

type subEntry struct {
	id uint64
	fn Subscriber
}

// DefaultTraceCap is the ring capacity used when NewTracer is given a
// non-positive capacity (64Ki events, ~6 MiB).
const DefaultTraceCap = 1 << 16

// NewTracer creates a tracer whose ring holds up to capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{
		ring:  make([]TraceEvent, 0, capacity),
		cap:   capacity,
		start: time.Now(),
	}
}

// Now returns the wall-clock microseconds elapsed since the tracer was
// created — the timestamp base for wall-time layers.
func (t *Tracer) Now() uint64 {
	return uint64(time.Since(t.start).Microseconds())
}

// Emit records one event: subscribers first (always, even when the ring
// is full), then the ring. A full ring drops the event and increments
// the drop counter; Emit never blocks on capacity.
func (t *Tracer) Emit(ev TraceEvent) {
	if t == nil {
		return
	}
	if subs := t.subs.Load(); subs != nil {
		for _, s := range *subs {
			s.fn(ev)
		}
	}
	t.mu.Lock()
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, ev)
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	t.drops.Inc()
}

// Subscribe attaches a synchronous subscriber and returns a function
// that detaches it.
func (t *Tracer) Subscribe(fn Subscriber) (cancel func()) {
	id := t.nextID.Add(1)
	t.mu.Lock()
	old := t.subs.Load()
	var next []subEntry
	if old != nil {
		next = append(next, *old...)
	}
	next = append(next, subEntry{id: id, fn: fn})
	t.subs.Store(&next)
	t.mu.Unlock()
	return func() {
		t.mu.Lock()
		defer t.mu.Unlock()
		cur := t.subs.Load()
		if cur == nil {
			return
		}
		pruned := make([]subEntry, 0, len(*cur))
		for _, e := range *cur {
			if e.id != id {
				pruned = append(pruned, e)
			}
		}
		t.subs.Store(&pruned)
	}
}

// Span starts a wall-clock span in the given category and returns the
// function that closes it, emitting a complete event covering the
// elapsed time. Used for the compiler's per-pass timings:
//
//	done := tracer.Span("compile", "dsa", 0)
//	... run the pass ...
//	done()
func (t *Tracer) Span(cat, name string, tid int) func() {
	if t == nil {
		return func() {}
	}
	start := t.Now()
	return func() {
		t.Emit(TraceEvent{TS: start, Dur: t.Now() - start, Cat: cat, Name: name, TID: tid})
	}
}

// Len returns the number of events currently buffered.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Cap returns the ring capacity.
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return t.cap
}

// Drops returns the number of events rejected by a full ring.
func (t *Tracer) Drops() uint64 {
	if t == nil {
		return 0
	}
	return t.drops.Load()
}

// Events returns a copy of the buffered events in emission order.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, len(t.ring))
	copy(out, t.ring)
	return out
}

// Reset discards buffered events and the drop count (subscribers stay).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring = t.ring[:0]
	t.mu.Unlock()
	t.drops.Reset()
}

// chromeEvent is one entry of the Chrome trace_event JSON array format
// (the subset understood by chrome://tracing and Perfetto).
type chromeEvent struct {
	Name  string           `json:"name"`
	Cat   string           `json:"cat"`
	Ph    string           `json:"ph"`
	TS    uint64           `json:"ts"`
	Dur   *uint64          `json:"dur,omitempty"`
	PID   int              `json:"pid"`
	TID   int              `json:"tid"`
	Scope string           `json:"s,omitempty"`
	Args  map[string]int64 `json:"args,omitempty"`
}

// chromeTrace is the JSON Object Format wrapper; Perfetto and
// chrome://tracing both accept it and ignore unknown top-level fields.
type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]uint64 `json:"otherData,omitempty"`
}

// WriteChromeTrace exports the buffered events as Chrome trace_event
// JSON: complete ("X") events for spans, thread-scoped instant ("i")
// events otherwise. The drop count, when non-zero, is recorded under
// otherData.drops.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	evs := t.Events()
	out := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(evs)),
		DisplayTimeUnit: "ms",
	}
	for _, ev := range evs {
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  ev.Cat,
			TS:   ev.TS,
			PID:  1,
			TID:  ev.TID,
		}
		if ev.Dur > 0 {
			d := ev.Dur
			ce.Ph, ce.Dur = "X", &d
		} else {
			ce.Ph, ce.Scope = "i", "t"
		}
		if ev.Arg1Name != "" || ev.Trace != 0 {
			ce.Args = make(map[string]int64, 3)
			if ev.Arg1Name != "" {
				ce.Args[ev.Arg1Name] = ev.Arg1
				if ev.Arg2Name != "" {
					ce.Args[ev.Arg2Name] = ev.Arg2
				}
			}
			// The trace ID links causally-related spans across timebases
			// (virtual-clock farmem events vs wall-clock remote/server
			// spans), where a shared timeline position is meaningless.
			if ev.Trace != 0 {
				ce.Args["trace"] = int64(ev.Trace)
			}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	if d := t.Drops(); d > 0 {
		out.OtherData = map[string]uint64{"drops": d}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
