package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// WriteJSON renders the snapshot as indented JSON (the /stats payload).
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4, the /metrics payload). Counters and gauges map
// directly; each histogram becomes the conventional _bucket (cumulative,
// le-labelled) / _sum / _count triple. Series are emitted in lexical
// order so the output is deterministic.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	typed := make(map[string]bool) // base name -> TYPE line emitted
	emitType := func(base, kind string) error {
		if typed[base] {
			return nil
		}
		typed[base] = true
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		return err
	}
	for _, k := range sortedKeys(s.Counters) {
		if err := emitType(baseName(k), "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", k, s.Counters[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Gauges) {
		if err := emitType(baseName(k), "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", k, s.Gauges[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Histograms) {
		if err := emitType(baseName(k), "histogram"); err != nil {
			return err
		}
		if err := writePromHistogram(w, k, s.Histograms[k]); err != nil {
			return err
		}
	}
	return nil
}

// baseName strips the label block from a series key.
func baseName(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// seriesWithLabel re-renders a series key with one extra label appended
// (used for the le label of histogram buckets).
func seriesWithLabel(key, name, k, v string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return name + key[i:len(key)-1] + "," + k + `="` + v + `"}`
	}
	return name + "{" + k + `="` + v + `"}`
}

func writePromHistogram(w io.Writer, key string, h HistogramSnapshot) error {
	base := baseName(key)
	var cum uint64
	for _, b := range h.Buckets {
		cum += b.Count
		le := fmt.Sprintf("%d", b.Le)
		if b.Le == math.MaxUint64 {
			le = "+Inf"
		}
		if _, err := fmt.Fprintf(w, "%s %d\n",
			seriesWithLabel(key, base+"_bucket", "le", le), cum); err != nil {
			return err
		}
	}
	if len(h.Buckets) == 0 || h.Buckets[len(h.Buckets)-1].Le != math.MaxUint64 {
		if _, err := fmt.Fprintf(w, "%s %d\n",
			seriesWithLabel(key, base+"_bucket", "le", "+Inf"), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", seriesWithLabel0(key, base+"_sum"), h.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", seriesWithLabel0(key, base+"_count"), h.Count)
	return err
}

// seriesWithLabel0 re-renders a series key under a new base name,
// preserving its label block.
func seriesWithLabel0(key, name string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return name + key[i:]
	}
	return name
}
