package rdma

import (
	"bytes"
	"testing"
)

// TestReadPathSteadyStateAllocFree pins the zero-allocation property of
// the pooled data path: once the frame buffer pool and wire buffers are
// warm, a full READBATCH round trip — client encode, checksummed
// framing both ways, server decode + in-place DATABATCH gather, client
// segment decode — must not touch the heap. A regression here puts the
// GC back on the per-frame critical path, which is exactly the
// bandwidth tax the pool exists to remove.
func TestReadPathSteadyStateAllocFree(t *testing.T) {
	reqs := []ReadReq{
		{DS: 1, Idx: 0, Size: 256},
		{DS: 1, Idx: 1, Size: 256},
		{DS: 2, Idx: 7, Size: 64},
	}
	obj := bytes.Repeat([]byte{0xCD}, 256)

	var c2s, s2c bytes.Buffer // wire bytes, one buffer per direction
	var rd bytes.Reader
	decReqs := make([]ReadReq, 0, len(reqs))
	segs := make([][]byte, 0, len(reqs))

	iter := func() {
		// Client: issue a READBATCH.
		req := EncodeReadBatchPooled(42, reqs)
		c2s.Reset()
		if err := WriteFrameCRC(&c2s, req); err != nil {
			t.Fatal(err)
		}
		PutBuf(req.Payload)

		// Server: decode the batch and gather the reply in place.
		rd.Reset(c2s.Bytes())
		fr, err := ReadFrameCRCPooled(&rd)
		if err != nil {
			t.Fatal(err)
		}
		decReqs, err = DecodeReadBatchInto(fr.Payload, decReqs)
		if err != nil {
			t.Fatal(err)
		}
		reply := GetBuf(DataBatchSize(decReqs))
		w := BeginDataBatch(reply, len(decReqs))
		for _, r := range decReqs {
			copy(w.Next(int(r.Size)), obj)
		}
		PutBuf(fr.Payload)
		s2c.Reset()
		if err := WriteFrameCRC(&s2c, w.Frame(fr.Tag)); err != nil {
			t.Fatal(err)
		}
		PutBuf(reply)

		// Client: decode the reply segments.
		rd.Reset(s2c.Bytes())
		fr, err = ReadFrameCRCPooled(&rd)
		if err != nil {
			t.Fatal(err)
		}
		segs, err = DecodeDataBatchInto(fr.Payload, segs)
		if err != nil {
			t.Fatal(err)
		}
		if len(segs) != len(reqs) || len(segs[0]) != 256 {
			t.Fatalf("bad reply: %d segments", len(segs))
		}
		PutBuf(fr.Payload)
	}

	// Warm the size-class free lists and grow the wire buffers before
	// measuring — first-use allocations are expected and amortized.
	for i := 0; i < 8; i++ {
		iter()
	}
	if avg := testing.AllocsPerRun(200, iter); avg >= 1 {
		t.Fatalf("steady-state read path allocates %.2f times per round trip, want ~0", avg)
	}
}
