package rdma

import (
	"bytes"
	"testing"
)

// TestReadPathSteadyStateAllocFree pins the zero-allocation property of
// the pooled data path: once the frame buffer pool and wire buffers are
// warm, a full READBATCH round trip — client encode, checksummed
// framing both ways, server decode + in-place DATABATCH gather, client
// segment decode — must not touch the heap. A regression here puts the
// GC back on the per-frame critical path, which is exactly the
// bandwidth tax the pool exists to remove.
func TestReadPathSteadyStateAllocFree(t *testing.T) {
	reqs := []ReadReq{
		{DS: 1, Idx: 0, Size: 256},
		{DS: 1, Idx: 1, Size: 256},
		{DS: 2, Idx: 7, Size: 64},
	}
	obj := bytes.Repeat([]byte{0xCD}, 256)

	var c2s, s2c bytes.Buffer // wire bytes, one buffer per direction
	var rd bytes.Reader
	decReqs := make([]ReadReq, 0, len(reqs))
	segs := make([][]byte, 0, len(reqs))

	iter := func() {
		// Client: issue a READBATCH.
		req := EncodeReadBatchPooled(42, reqs)
		c2s.Reset()
		if err := WriteFrameCRC(&c2s, req); err != nil {
			t.Fatal(err)
		}
		PutBuf(req.Payload)

		// Server: decode the batch and gather the reply in place.
		rd.Reset(c2s.Bytes())
		fr, err := ReadFrameCRCPooled(&rd)
		if err != nil {
			t.Fatal(err)
		}
		decReqs, err = DecodeReadBatchInto(fr.Payload, decReqs)
		if err != nil {
			t.Fatal(err)
		}
		reply := GetBuf(DataBatchSize(decReqs))
		w := BeginDataBatch(reply, len(decReqs))
		for _, r := range decReqs {
			copy(w.Next(int(r.Size)), obj)
		}
		PutBuf(fr.Payload)
		s2c.Reset()
		if err := WriteFrameCRC(&s2c, w.Frame(fr.Tag)); err != nil {
			t.Fatal(err)
		}
		PutBuf(reply)

		// Client: decode the reply segments.
		rd.Reset(s2c.Bytes())
		fr, err = ReadFrameCRCPooled(&rd)
		if err != nil {
			t.Fatal(err)
		}
		segs, err = DecodeDataBatchInto(fr.Payload, segs)
		if err != nil {
			t.Fatal(err)
		}
		if len(segs) != len(reqs) || len(segs[0]) != 256 {
			t.Fatalf("bad reply: %d segments", len(segs))
		}
		PutBuf(fr.Payload)
	}

	// Warm the size-class free lists and grow the wire buffers before
	// measuring — first-use allocations are expected and amortized.
	for i := 0; i < 8; i++ {
		iter()
	}
	if avg := testing.AllocsPerRun(200, iter); avg >= 1 {
		t.Fatalf("steady-state read path allocates %.2f times per round trip, want ~0", avg)
	}
}

// TestTracedReadPathSteadyStateAllocFree is the same guard for a
// FeatTrace session: the fixed 20-byte trace block — span context on
// the request, server stamp on the reply — must ride every tagged frame
// without putting the heap back on the critical path. Tracing is always
// on once negotiated (sampling only gates span *emission*), so an
// allocation here taxes every op, not just the sampled ones.
func TestTracedReadPathSteadyStateAllocFree(t *testing.T) {
	reqs := []ReadReq{
		{DS: 1, Idx: 0, Size: 256},
		{DS: 1, Idx: 1, Size: 256},
		{DS: 2, Idx: 7, Size: 64},
	}
	obj := bytes.Repeat([]byte{0xCD}, 256)

	var c2s, s2c bytes.Buffer
	var rd bytes.Reader
	decReqs := make([]ReadReq, 0, len(reqs))
	segs := make([][]byte, 0, len(reqs))

	iter := func() {
		// Client: issue a READBATCH stamped with the op's span context.
		req := EncodeReadBatchPooled(42, reqs)
		req.SetTraceCtx(0xA11CE, 0xB0B, true)
		c2s.Reset()
		if err := WriteFrameCRC(&c2s, req); err != nil {
			t.Fatal(err)
		}
		PutBuf(req.Payload)

		// Server: decode under trace framing, gather, stamp the reply.
		rd.Reset(c2s.Bytes())
		fr, err := ReadFramePooledOpts(&rd, true, true)
		if err != nil {
			t.Fatal(err)
		}
		if id, _, sampled := fr.TraceCtx(); id != 0xA11CE || !sampled {
			t.Fatalf("trace ctx lost on the wire: id %#x sampled %v", id, sampled)
		}
		decReqs, err = DecodeReadBatchInto(fr.Payload, decReqs)
		if err != nil {
			t.Fatal(err)
		}
		reply := GetBuf(DataBatchSize(decReqs))
		w := BeginDataBatch(reply, len(decReqs))
		for _, r := range decReqs {
			copy(w.Next(int(r.Size)), obj)
		}
		PutBuf(fr.Payload)
		out := w.Frame(fr.Tag)
		out.SetServerStamp(123456, 3, 17)
		s2c.Reset()
		if err := WriteFrameCRC(&s2c, out); err != nil {
			t.Fatal(err)
		}
		PutBuf(reply)

		// Client: decode the stamped reply.
		rd.Reset(s2c.Bytes())
		fr, err = ReadFramePooledOpts(&rd, true, true)
		if err != nil {
			t.Fatal(err)
		}
		if _, q, sv := fr.ServerStamp(); q != 3 || sv != 17 {
			t.Fatalf("server stamp lost on the wire: queue %d service %d", q, sv)
		}
		segs, err = DecodeDataBatchInto(fr.Payload, segs)
		if err != nil {
			t.Fatal(err)
		}
		if len(segs) != len(reqs) || len(segs[0]) != 256 {
			t.Fatalf("bad reply: %d segments", len(segs))
		}
		PutBuf(fr.Payload)
	}

	for i := 0; i < 8; i++ {
		iter()
	}
	if avg := testing.AllocsPerRun(200, iter); avg >= 1 {
		t.Fatalf("steady-state traced read path allocates %.2f times per round trip, want ~0", avg)
	}
}
