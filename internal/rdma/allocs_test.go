package rdma

import (
	"bytes"
	"testing"
)

// TestReadPathSteadyStateAllocFree pins the zero-allocation property of
// the pooled data path: once the frame buffer pool and wire buffers are
// warm, a full READBATCH round trip — client encode, checksummed
// framing both ways, server decode + in-place DATABATCH gather, client
// segment decode — must not touch the heap. A regression here puts the
// GC back on the per-frame critical path, which is exactly the
// bandwidth tax the pool exists to remove.
func TestReadPathSteadyStateAllocFree(t *testing.T) {
	reqs := []ReadReq{
		{DS: 1, Idx: 0, Size: 256},
		{DS: 1, Idx: 1, Size: 256},
		{DS: 2, Idx: 7, Size: 64},
	}
	obj := bytes.Repeat([]byte{0xCD}, 256)

	var c2s, s2c bytes.Buffer // wire bytes, one buffer per direction
	var rd bytes.Reader
	decReqs := make([]ReadReq, 0, len(reqs))
	segs := make([][]byte, 0, len(reqs))

	iter := func() {
		// Client: issue a READBATCH.
		req := EncodeReadBatchPooled(42, reqs)
		c2s.Reset()
		if err := WriteFrameCRC(&c2s, req); err != nil {
			t.Fatal(err)
		}
		PutBuf(req.Payload)

		// Server: decode the batch and gather the reply in place.
		rd.Reset(c2s.Bytes())
		fr, err := ReadFrameCRCPooled(&rd)
		if err != nil {
			t.Fatal(err)
		}
		decReqs, err = DecodeReadBatchInto(fr.Payload, decReqs)
		if err != nil {
			t.Fatal(err)
		}
		reply := GetBuf(DataBatchSize(decReqs))
		w := BeginDataBatch(reply, len(decReqs))
		for _, r := range decReqs {
			copy(w.Next(int(r.Size)), obj)
		}
		PutBuf(fr.Payload)
		s2c.Reset()
		if err := WriteFrameCRC(&s2c, w.Frame(fr.Tag)); err != nil {
			t.Fatal(err)
		}
		PutBuf(reply)

		// Client: decode the reply segments.
		rd.Reset(s2c.Bytes())
		fr, err = ReadFrameCRCPooled(&rd)
		if err != nil {
			t.Fatal(err)
		}
		segs, err = DecodeDataBatchInto(fr.Payload, segs)
		if err != nil {
			t.Fatal(err)
		}
		if len(segs) != len(reqs) || len(segs[0]) != 256 {
			t.Fatalf("bad reply: %d segments", len(segs))
		}
		PutBuf(fr.Payload)
	}

	// Warm the size-class free lists and grow the wire buffers before
	// measuring — first-use allocations are expected and amortized.
	for i := 0; i < 8; i++ {
		iter()
	}
	if avg := testing.AllocsPerRun(200, iter); avg >= 1 {
		t.Fatalf("steady-state read path allocates %.2f times per round trip, want ~0", avg)
	}
}

// TestTracedReadPathSteadyStateAllocFree is the same guard for a
// FeatTrace session: the fixed 20-byte trace block — span context on
// the request, server stamp on the reply — must ride every tagged frame
// without putting the heap back on the critical path. Tracing is always
// on once negotiated (sampling only gates span *emission*), so an
// allocation here taxes every op, not just the sampled ones.
func TestTracedReadPathSteadyStateAllocFree(t *testing.T) {
	reqs := []ReadReq{
		{DS: 1, Idx: 0, Size: 256},
		{DS: 1, Idx: 1, Size: 256},
		{DS: 2, Idx: 7, Size: 64},
	}
	obj := bytes.Repeat([]byte{0xCD}, 256)

	var c2s, s2c bytes.Buffer
	var rd bytes.Reader
	decReqs := make([]ReadReq, 0, len(reqs))
	segs := make([][]byte, 0, len(reqs))

	iter := func() {
		// Client: issue a READBATCH stamped with the op's span context.
		req := EncodeReadBatchPooled(42, reqs)
		req.SetTraceCtx(0xA11CE, 0xB0B, true)
		c2s.Reset()
		if err := WriteFrameCRC(&c2s, req); err != nil {
			t.Fatal(err)
		}
		PutBuf(req.Payload)

		// Server: decode under trace framing, gather, stamp the reply.
		rd.Reset(c2s.Bytes())
		fr, err := ReadFramePooledOpts(&rd, true, true)
		if err != nil {
			t.Fatal(err)
		}
		if id, _, sampled := fr.TraceCtx(); id != 0xA11CE || !sampled {
			t.Fatalf("trace ctx lost on the wire: id %#x sampled %v", id, sampled)
		}
		decReqs, err = DecodeReadBatchInto(fr.Payload, decReqs)
		if err != nil {
			t.Fatal(err)
		}
		reply := GetBuf(DataBatchSize(decReqs))
		w := BeginDataBatch(reply, len(decReqs))
		for _, r := range decReqs {
			copy(w.Next(int(r.Size)), obj)
		}
		PutBuf(fr.Payload)
		out := w.Frame(fr.Tag)
		out.SetServerStamp(123456, 3, 17)
		s2c.Reset()
		if err := WriteFrameCRC(&s2c, out); err != nil {
			t.Fatal(err)
		}
		PutBuf(reply)

		// Client: decode the stamped reply.
		rd.Reset(s2c.Bytes())
		fr, err = ReadFramePooledOpts(&rd, true, true)
		if err != nil {
			t.Fatal(err)
		}
		if _, q, sv := fr.ServerStamp(); q != 3 || sv != 17 {
			t.Fatalf("server stamp lost on the wire: queue %d service %d", q, sv)
		}
		segs, err = DecodeDataBatchInto(fr.Payload, segs)
		if err != nil {
			t.Fatal(err)
		}
		if len(segs) != len(reqs) || len(segs[0]) != 256 {
			t.Fatalf("bad reply: %d segments", len(segs))
		}
		PutBuf(fr.Payload)
	}

	for i := 0; i < 8; i++ {
		iter()
	}
	if avg := testing.AllocsPerRun(200, iter); avg >= 1 {
		t.Fatalf("steady-state traced read path allocates %.2f times per round trip, want ~0", avg)
	}
}

// TestCompactReadPathSteadyStateAllocFree pins the zero-allocation
// property of the FeatCompact read path: delta-encoded READBATCH-C,
// server-side gather through a reused DataBatchCBuilder (including the
// LZ compression pass and its pooled hash table), and client-side
// segment decode + decompression into a caller buffer. Compression must
// not put the heap back on the per-frame critical path.
func TestCompactReadPathSteadyStateAllocFree(t *testing.T) {
	reqs := []ReadReq{
		{DS: 1, Idx: 10, Size: 256},
		{DS: 1, Idx: 11, Size: 256},
		{DS: 2, Idx: 7, Size: 256},
	}
	objs := [][]byte{
		bytes.Repeat([]byte{0xCD}, 256),              // compressible
		make([]byte, 256),                            // zero
		bytes.Repeat([]byte("ab4kZ!dDqR91_xw."), 16), // mildly compressible
	}

	var c2s, s2c bytes.Buffer
	var rd bytes.Reader
	decReqs := make([]ReadReq, 0, len(reqs))
	segs := make([]DataSegC, 0, len(reqs))
	dst := make([]byte, 256)
	var b DataBatchCBuilder
	defer b.Release()

	iter := func() {
		// Client: issue a compact READBATCH.
		req := EncodeReadBatchCPooled(42, reqs)
		c2s.Reset()
		if err := WriteFrameCRC(&c2s, req); err != nil {
			t.Fatal(err)
		}
		PutBuf(req.Payload)

		// Server: decode, stage each object, compress adaptively.
		rd.Reset(c2s.Bytes())
		fr, err := ReadFrameCRCPooled(&rd)
		if err != nil {
			t.Fatal(err)
		}
		var derr error
		decReqs, derr = DecodeReadBatchCInto(fr.Payload, decReqs)
		if derr != nil {
			t.Fatal(derr)
		}
		b.Reset()
		for i, r := range decReqs {
			s := b.Stage(int(r.Size))
			copy(s, objs[i])
			b.Add(s, true)
		}
		PutBuf(fr.Payload)
		out, err := b.Frame(fr.Tag)
		if err != nil {
			t.Fatal(err)
		}
		s2c.Reset()
		if err := WriteFrameCRC(&s2c, out); err != nil {
			t.Fatal(err)
		}
		PutBuf(out.Payload)

		// Client: decode the reply, materializing each object.
		rd.Reset(s2c.Bytes())
		fr, err = ReadFrameCRCPooled(&rd)
		if err != nil {
			t.Fatal(err)
		}
		segs, derr = DecodeDataBatchCInto(fr.Payload, segs)
		if derr != nil {
			t.Fatal(derr)
		}
		if len(segs) != len(reqs) {
			t.Fatalf("bad reply: %d segments", len(segs))
		}
		for i, s := range segs {
			d := dst[:s.RawLen]
			switch s.Scheme {
			case SchemeZero:
				clear(d)
			case SchemeRaw:
				copy(d, s.Data)
			case SchemeLZ:
				if err := LZDecompress(d, s.Data); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(d, objs[i]) {
				t.Fatalf("segment %d corrupted", i)
			}
		}
		PutBuf(fr.Payload)
	}

	for i := 0; i < 8; i++ {
		iter()
	}
	if avg := testing.AllocsPerRun(200, iter); avg >= 1 {
		t.Fatalf("steady-state compact read path allocates %.2f times per round trip, want ~0", avg)
	}
}

// TestRangeWritePathSteadyStateAllocFree pins the zero-allocation
// property of the dirty-range write-back path: the client compresses
// extent bytes through pooled scratch, encodes a WRITEEPOCHBATCH-C
// with range tuples, and the server decodes into reused scratch and
// applies the ranges read-modify-write. This is the steady-state
// eviction path under FeatCompact — one allocation here taxes every
// dirty write-back.
func TestRangeWritePathSteadyStateAllocFree(t *testing.T) {
	const objSize = 1024
	stored := make([]byte, objSize)
	extBytes := bytes.Repeat([]byte{0x42}, 96)
	exts := []Extent{{Off: 16, Len: 32}, {Off: 256, Len: 64}}

	var c2s, s2c bytes.Buffer
	var rd bytes.Reader
	reqsC := make([]WriteReqC, 2)
	decReqs := make([]WriteReqC, 0, 2)
	decExts := make([]Extent, 0, 8)
	ackScratch := make([]uint64, 0, 1)
	epoch := uint64(1)

	iter := func() {
		epoch++
		// Client: one range tuple (compressed through pooled scratch
		// when it pays) and one full-object zero tuple.
		scratch := GetBuf(CompressBound(len(extBytes)))
		data := extBytes
		scheme := SchemeRaw
		if n, ok := LZCompress(scratch, extBytes); ok && n < len(extBytes) {
			data = scratch[:n]
			scheme = SchemeLZ
		}
		reqsC[0] = WriteReqC{DS: 1, Idx: 3, Epoch: epoch, ObjSize: objSize,
			Extents: exts, Scheme: scheme, RawLen: uint32(len(extBytes)), Data: data}
		reqsC[1] = WriteReqC{DS: 1, Idx: 4, Epoch: epoch, Scheme: SchemeZero, RawLen: objSize}
		fr, err := EncodeWriteBatchCPooled(7, reqsC, true)
		if err != nil {
			t.Fatal(err)
		}
		PutBuf(scratch)
		c2s.Reset()
		if err := WriteFrameCRC(&c2s, fr); err != nil {
			t.Fatal(err)
		}
		PutBuf(fr.Payload)

		// Server: decode and apply read-modify-write.
		rd.Reset(c2s.Bytes())
		in, err := ReadFrameCRCPooled(&rd)
		if err != nil {
			t.Fatal(err)
		}
		var derr error
		decReqs, decExts, derr = DecodeWriteBatchCInto(in.Payload, decReqs, decExts, true)
		if derr != nil {
			t.Fatal(derr)
		}
		for i := range decReqs {
			r := &decReqs[i]
			if r.Extents == nil {
				continue
			}
			raw := GetBuf(int(r.RawLen))
			switch r.Scheme {
			case SchemeRaw:
				copy(raw, r.Data)
			case SchemeLZ:
				if err := LZDecompress(raw, r.Data); err != nil {
					t.Fatal(err)
				}
			}
			off := 0
			for _, e := range r.Extents {
				copy(stored[e.Off:e.Off+e.Len], raw[off:])
				off += int(e.Len)
			}
			PutBuf(raw)
		}
		PutBuf(in.Payload)
		ack := EncodeAckBatchC(in.Tag, len(decReqs), nil)
		s2c.Reset()
		if err := WriteFrameCRC(&s2c, ack); err != nil {
			t.Fatal(err)
		}
		PutBuf(ack.Payload)

		// Client: decode the ack.
		rd.Reset(s2c.Bytes())
		in, err = ReadFrameCRCPooled(&rd)
		if err != nil {
			t.Fatal(err)
		}
		count, rej, any, derr2 := DecodeAckBatchC(in.Payload, ackScratch)
		if derr2 != nil || count != 2 || any {
			t.Fatalf("ack: count=%d any=%v err=%v", count, any, derr2)
		}
		ackScratch = rej
		PutBuf(in.Payload)
	}

	for i := 0; i < 8; i++ {
		iter()
	}
	if avg := testing.AllocsPerRun(200, iter); avg >= 1 {
		t.Fatalf("steady-state range-write path allocates %.2f times per round trip, want ~0", avg)
	}
	if !bytes.Equal(stored[16:48], extBytes[:32]) || !bytes.Equal(stored[256:320], extBytes[32:96]) {
		t.Fatalf("range apply corrupted the object")
	}
}
