package rdma

import (
	"encoding/binary"
	"fmt"
)

// Traversal-offload verbs (the FeatChase extension). A K-hop pointer
// chase is the one access pattern the pipelined window cannot help:
// each hop's address comes out of the previous reply, so K hops cost K
// dependent round trips. CHASEBATCH ships a compact traversal program —
// the next-pointer field offset, a hop budget, and an optional
// field-filter mask — to the server, which walks its local store and
// returns the whole path in one CHASEDATA reply:
//
//	CHASEBATCH: u32 count | count x (u32 ds | u32 start | u32 objSize |
//	            u32 nextOff | u32 hops | u64 mask)
//	CHASEDATA:  u32 count | count x (u32 status | u64 final | u32 hopCount |
//	            hopCount x (u32 idx | u32 len | bytes))    (request order)
//
// The program's object space is the same (ds, idx) store the batch read
// verbs address; successor pointers are read as the little-endian u64
// at nextOff of each visited object and interpreted under the runtime's
// tagged-address layout (bit 63 = managed, bits 48..62 = ds handle,
// bits 0..47 = byte offset — see ChaseAddrTagged and friends). The walk
// stops at the first word that is untagged or leaves the program's data
// structure (status ChaseDone, final = the raw word), or when the hop
// budget is spent (status ChaseHops, final = the tagged address of the
// first unvisited node). The budget both sizes the reply and bounds the
// walk, so a cyclic chain can never loop the server: it is cut off
// after exactly hops nodes like any other deep chain.
//
// Sessions that did not negotiate FeatChase never carry these opcodes.

// Chase result statuses.
const (
	// ChaseDone: the walk reached a terminal word — untagged, or tagged
	// into a different data structure. Final holds that raw word.
	ChaseDone uint32 = 0
	// ChaseHops: the hop budget was exhausted first. Final holds the
	// tagged address of the first unvisited node, so the client can
	// resume the chase (or fall back to per-hop reads) from there.
	ChaseHops uint32 = 1
)

// ChaseReq is one traversal program: walk DS from object index Start,
// reading the next hop's address from the u64 at NextOff of each
// ObjSize-byte object, for at most Hops objects. Mask, when non-zero,
// is a field filter: bit i keeps 8-byte word i of each returned object
// and cleared words come back zeroed (the wire carries full-size hops
// either way, so offsets stay stable).
type ChaseReq struct {
	DS      uint32
	Start   uint32
	ObjSize uint32
	NextOff uint32
	Hops    uint32
	Mask    uint64
}

// ChaseHop is one visited object of a chase path.
type ChaseHop struct {
	Idx  uint32
	Data []byte
}

// ChaseResult is one program's decoded reply: the visited path in walk
// order, the terminal status, and the final word (see ChaseDone /
// ChaseHops for its meaning).
type ChaseResult struct {
	Status uint32
	Final  uint64
	Hops   []ChaseHop
}

// Wire sizes of the chase encoding.
const (
	// chaseReqSize is one CHASEBATCH tuple:
	// u32 ds | u32 start | u32 objSize | u32 nextOff | u32 hops | u64 mask.
	chaseReqSize = 28
	// chaseResHdrSize is the fixed prefix of one CHASEDATA result:
	// u32 status | u64 final | u32 hopCount.
	chaseResHdrSize = 16
	// chaseHopHdrSize is the fixed prefix of one hop: u32 idx | u32 len.
	chaseHopHdrSize = 8
)

// chaseMaskWords is the object span a field-filter mask can describe:
// one bit per 8-byte word, 64 words = 512 bytes.
const chaseMaskWords = 64

// Tagged-address layout of chase successor pointers. These mirror the
// farmem address constants (Figure 3 of the paper): the wire protocol
// fixes the layout so the server can decode next-pointers without
// importing the runtime.
const (
	chaseAddrTagBit  = uint64(1) << 63
	chaseAddrDSShift = 48
	chaseAddrDSMask  = (uint64(1) << 15) - 1
	chaseAddrOffMask = (uint64(1) << chaseAddrDSShift) - 1
)

// ChaseAddrTagged reports whether a successor word is a managed
// (chaseable) address.
func ChaseAddrTagged(a uint64) bool { return a&chaseAddrTagBit != 0 }

// ChaseAddrDS extracts the data structure handle of a tagged address.
func ChaseAddrDS(a uint64) uint32 { return uint32((a >> chaseAddrDSShift) & chaseAddrDSMask) }

// ChaseAddrOff extracts the intra-DS byte offset of a tagged address.
func ChaseAddrOff(a uint64) uint64 { return a & chaseAddrOffMask }

// Validate checks the program invariants both sides enforce: a server
// must reject (ERRTAG) any program that could read outside an object,
// walk zero-budget, or build an unbounded reply. Validation is
// per-program and cheap; the batch-level reply bound against MaxFrame
// is checked separately via ChaseReplyBound.
func (r ChaseReq) Validate() error {
	if r.Hops == 0 {
		return fmt.Errorf("rdma: chase program with hop budget 0")
	}
	if r.ObjSize == 0 {
		return fmt.Errorf("rdma: chase program with object size 0")
	}
	if r.ObjSize&(r.ObjSize-1) != 0 {
		return fmt.Errorf("rdma: chase object size %d not a power of two", r.ObjSize)
	}
	if uint64(r.NextOff)+8 > uint64(r.ObjSize) {
		return fmt.Errorf("rdma: chase next-pointer offset %d past object end (%d bytes)",
			r.NextOff, r.ObjSize)
	}
	if r.Mask != 0 && r.ObjSize > chaseMaskWords*8 {
		return fmt.Errorf("rdma: chase field mask on %d-byte objects (mask covers %d)",
			r.ObjSize, chaseMaskWords*8)
	}
	return nil
}

// ChaseBatchSize returns the CHASEBATCH payload size for reqs.
func ChaseBatchSize(reqs []ChaseReq) int {
	return 4 + chaseReqSize*len(reqs)
}

// ChaseReplyBound returns the worst-case CHASEDATA payload size for
// reqs — every program spending its full hop budget. Both sides bound
// this against MaxFrame before issuing or serving a batch; the math is
// u64 so a forged hop budget cannot overflow the check.
func ChaseReplyBound(reqs []ChaseReq) uint64 {
	n := uint64(4)
	for _, r := range reqs {
		n += chaseResHdrSize + uint64(r.Hops)*(chaseHopHdrSize+uint64(r.ObjSize))
	}
	return n
}

// EncodeChaseBatch builds a CHASEBATCH frame.
func EncodeChaseBatch(tag uint32, reqs []ChaseReq) Frame {
	p := make([]byte, ChaseBatchSize(reqs))
	encodeChaseBatchInto(p, reqs)
	return Frame{Op: OpChaseBatch, Tag: tag, Payload: p}
}

// EncodeChaseBatchPooled is EncodeChaseBatch with a pooled payload; the
// caller should PutBuf it after the frame is written.
func EncodeChaseBatchPooled(tag uint32, reqs []ChaseReq) Frame {
	p := GetBuf(ChaseBatchSize(reqs))
	encodeChaseBatchInto(p, reqs)
	return Frame{Op: OpChaseBatch, Tag: tag, Payload: p}
}

func encodeChaseBatchInto(p []byte, reqs []ChaseReq) {
	binary.LittleEndian.PutUint32(p[0:], uint32(len(reqs)))
	off := 4
	for _, r := range reqs {
		binary.LittleEndian.PutUint32(p[off:], r.DS)
		binary.LittleEndian.PutUint32(p[off+4:], r.Start)
		binary.LittleEndian.PutUint32(p[off+8:], r.ObjSize)
		binary.LittleEndian.PutUint32(p[off+12:], r.NextOff)
		binary.LittleEndian.PutUint32(p[off+16:], r.Hops)
		binary.LittleEndian.PutUint64(p[off+20:], r.Mask)
		off += chaseReqSize
	}
}

// DecodeChaseBatch parses a CHASEBATCH payload.
func DecodeChaseBatch(p []byte) ([]ChaseReq, error) {
	return DecodeChaseBatchInto(p, nil)
}

// DecodeChaseBatchInto is DecodeChaseBatch appending into a
// caller-owned slice, letting a steady-state server reuse one across
// batches. It checks framing only; program invariants are the server's
// per-program Validate call (so one bad program fails its batch with a
// precise message, not a generic decode error).
func DecodeChaseBatchInto(p []byte, reqs []ChaseReq) ([]ChaseReq, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("rdma: bad CHASEBATCH payload length %d", len(p))
	}
	count := binary.LittleEndian.Uint32(p)
	if uint64(len(p)) != 4+uint64(count)*chaseReqSize {
		return nil, fmt.Errorf("rdma: CHASEBATCH length mismatch: header %d tuples, payload %d bytes",
			count, len(p))
	}
	reqs = reqs[:0]
	off := 4
	for i := uint32(0); i < count; i++ {
		reqs = append(reqs, ChaseReq{
			DS:      binary.LittleEndian.Uint32(p[off:]),
			Start:   binary.LittleEndian.Uint32(p[off+4:]),
			ObjSize: binary.LittleEndian.Uint32(p[off+8:]),
			NextOff: binary.LittleEndian.Uint32(p[off+12:]),
			Hops:    binary.LittleEndian.Uint32(p[off+16:]),
			Mask:    binary.LittleEndian.Uint64(p[off+20:]),
		})
		off += chaseReqSize
	}
	return reqs, nil
}

// ChaseDataWriter assembles a CHASEDATA payload in place, letting the
// server gather each visited object directly into the (typically
// pooled) reply buffer. A result's status, final word, and hop count
// are discovered only as the walk runs, so the writer reserves each
// result header up front and backpatches it when the result finishes.
type ChaseDataWriter struct {
	p    []byte
	off  int
	hdr  int // offset of the current result's reserved header
	hops int // hops written into the current result so far
}

// BeginChaseData starts a batch of count results over p, which must
// hold at least ChaseReplyBound of the programs being answered.
func BeginChaseData(p []byte, count int) ChaseDataWriter {
	binary.LittleEndian.PutUint32(p[0:], uint32(count))
	return ChaseDataWriter{p: p, off: 4}
}

// BeginResult reserves the next result's header; the walk then appends
// hops via NextHop and closes the result with FinishResult.
func (w *ChaseDataWriter) BeginResult() {
	w.hdr = w.off
	w.off += chaseResHdrSize
	w.hops = 0
}

// NextHop reserves the current result's next n-byte hop slot under idx
// and returns it for the caller to fill.
func (w *ChaseDataWriter) NextHop(idx uint32, n int) []byte {
	binary.LittleEndian.PutUint32(w.p[w.off:], idx)
	binary.LittleEndian.PutUint32(w.p[w.off+4:], uint32(n))
	w.off += chaseHopHdrSize
	s := w.p[w.off : w.off+n : w.off+n]
	w.off += n
	w.hops++
	return s
}

// FinishResult backpatches the current result's header with the walk's
// outcome.
func (w *ChaseDataWriter) FinishResult(status uint32, final uint64) {
	binary.LittleEndian.PutUint32(w.p[w.hdr:], status)
	binary.LittleEndian.PutUint64(w.p[w.hdr+4:], final)
	binary.LittleEndian.PutUint32(w.p[w.hdr+12:], uint32(w.hops))
}

// Frame returns the assembled CHASEDATA frame.
func (w *ChaseDataWriter) Frame(tag uint32) Frame {
	return Frame{Op: OpChaseData, Tag: tag, Payload: w.p[:w.off]}
}

// EncodeChaseData builds a CHASEDATA frame from decoded results (the
// test/fuzz path; the server gathers in place via ChaseDataWriter).
func EncodeChaseData(tag uint32, results []ChaseResult) (Frame, error) {
	n := 4
	for _, r := range results {
		n += chaseResHdrSize
		for _, h := range r.Hops {
			n += chaseHopHdrSize + len(h.Data)
		}
	}
	if n > MaxFrame {
		return Frame{}, fmt.Errorf("rdma: CHASEDATA too large (%d bytes)", n)
	}
	p := make([]byte, n)
	w := BeginChaseData(p, len(results))
	for _, r := range results {
		w.BeginResult()
		for _, h := range r.Hops {
			copy(w.NextHop(h.Idx, len(h.Data)), h.Data)
		}
		w.FinishResult(r.Status, r.Final)
	}
	return w.Frame(tag), nil
}

// DecodeChaseData parses a CHASEDATA payload.
func DecodeChaseData(p []byte) ([]ChaseResult, error) {
	return DecodeChaseDataInto(p, nil)
}

// DecodeChaseDataInto is DecodeChaseData appending into a caller-owned
// slice, reusing both the result slice and each result's hop slice so
// a steady-state client decodes without touching the heap. Hop Data
// fields are subslices of p — valid while p is.
func DecodeChaseDataInto(p []byte, res []ChaseResult) ([]ChaseResult, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("rdma: bad CHASEDATA payload length %d", len(p))
	}
	count := binary.LittleEndian.Uint32(p)
	// Each result needs at least its fixed header; a count beyond that is
	// a forged header — reject before sizing any allocation by it.
	if uint64(count) > uint64(len(p)-4)/chaseResHdrSize {
		return nil, fmt.Errorf("rdma: CHASEDATA count %d exceeds payload", count)
	}
	res = res[:0]
	off := 4
	for i := uint32(0); i < count; i++ {
		if off+chaseResHdrSize > len(p) {
			return nil, fmt.Errorf("rdma: truncated CHASEDATA at result %d", i)
		}
		status := binary.LittleEndian.Uint32(p[off:])
		final := binary.LittleEndian.Uint64(p[off+4:])
		hopCount := binary.LittleEndian.Uint32(p[off+12:])
		off += chaseResHdrSize
		if uint64(hopCount) > uint64(len(p)-off)/chaseHopHdrSize {
			return nil, fmt.Errorf("rdma: CHASEDATA result %d hop count %d exceeds payload", i, hopCount)
		}
		// Reuse the previous decode's hop slice at this position when the
		// backing array is still around (res came in with capacity).
		var r *ChaseResult
		if n := len(res); n < cap(res) {
			res = res[:n+1]
			r = &res[n]
		} else {
			res = append(res, ChaseResult{})
			r = &res[len(res)-1]
		}
		r.Status, r.Final = status, final
		r.Hops = r.Hops[:0]
		for h := uint32(0); h < hopCount; h++ {
			if off+chaseHopHdrSize > len(p) {
				return nil, fmt.Errorf("rdma: truncated CHASEDATA result %d at hop %d", i, h)
			}
			idx := binary.LittleEndian.Uint32(p[off:])
			n := int(binary.LittleEndian.Uint32(p[off+4:]))
			off += chaseHopHdrSize
			if n < 0 || off+n > len(p) {
				return nil, fmt.Errorf("rdma: truncated CHASEDATA result %d hop %d (%d bytes)", i, h, n)
			}
			r.Hops = append(r.Hops, ChaseHop{Idx: idx, Data: p[off : off+n]})
			off += n
		}
	}
	if off != len(p) {
		return nil, fmt.Errorf("rdma: CHASEDATA trailing garbage (%d bytes)", len(p)-off)
	}
	return res, nil
}
