package rdma

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Frame{Op: OpData, Payload: []byte("hello far memory")}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Op != in.Op || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("roundtrip: %+v vs %+v", in, out)
	}
}

func TestEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Op: OpOK}); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(&buf)
	if err != nil || f.Op != OpOK || len(f.Payload) != 0 {
		t.Fatalf("f = %+v, err = %v", f, err)
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Op: OpData, Payload: make([]byte, MaxFrame+1)}); err == nil {
		t.Fatal("oversized write should fail")
	}
	// Forged oversized header.
	forged := []byte{0xff, 0xff, 0xff, 0xff, byte(OpData)}
	if _, err := ReadFrame(bytes.NewReader(forged)); err == nil {
		t.Fatal("oversized read should fail")
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, Frame{Op: OpData, Payload: []byte("abcdef")})
	raw := buf.Bytes()
	if _, err := ReadFrame(bytes.NewReader(raw[:3])); err == nil {
		t.Fatal("truncated header should fail")
	}
	if _, err := ReadFrame(bytes.NewReader(raw[:7])); err == nil {
		t.Fatal("truncated payload should fail")
	}
}

func TestReadReqCodec(t *testing.T) {
	f := EncodeRead(3, 77, 4096)
	if f.Op != OpRead {
		t.Fatal("wrong op")
	}
	req, err := DecodeRead(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if req.DS != 3 || req.Idx != 77 || req.Size != 4096 {
		t.Fatalf("req = %+v", req)
	}
	if _, err := DecodeRead([]byte{1, 2}); err == nil {
		t.Fatal("short payload should fail")
	}
}

func TestWriteReqCodec(t *testing.T) {
	data := []byte{9, 8, 7, 6}
	f := EncodeWrite(1, 2, data)
	req, err := DecodeWrite(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if req.DS != 1 || req.Idx != 2 || !bytes.Equal(req.Data, data) {
		t.Fatalf("req = %+v", req)
	}
	if _, err := DecodeWrite([]byte{0}); err == nil {
		t.Fatal("short payload should fail")
	}
	// Length mismatch.
	bad := append([]byte(nil), f.Payload...)
	bad = append(bad, 0xEE)
	if _, err := DecodeWrite(bad); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

func TestOpStrings(t *testing.T) {
	for _, op := range []Op{OpRead, OpWrite, OpPing, OpData, OpOK, OpErr} {
		if strings.HasPrefix(op.String(), "op(") {
			t.Errorf("missing name for op %d", op)
		}
	}
	if !strings.HasPrefix(Op(99).String(), "op(") {
		t.Error("unknown op should fall back")
	}
}

// Property: arbitrary write-request payloads roundtrip through the codec.
func TestWriteCodecProperty(t *testing.T) {
	f := func(ds, idx uint32, data []byte) bool {
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		fr := EncodeWrite(ds, idx, data)
		var buf bytes.Buffer
		if WriteFrame(&buf, fr) != nil {
			return false
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		req, err := DecodeWrite(got.Payload)
		if err != nil {
			return false
		}
		return req.DS == ds && req.Idx == idx && bytes.Equal(req.Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
