package rdma

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
)

// Payload buffer pooling. The steady-state data path decodes and
// encodes one payload per frame; allocating each from the heap makes
// the GC a bandwidth tax at high frame rates. Buffers are recycled
// through power-of-two size classes instead.
//
// The free lists are buffered channels rather than a sync.Pool: putting
// a []byte into a sync.Pool allocates the slice header (it escapes into
// the interface), which would put one malloc back on every frame — the
// exact cost the pool exists to remove. Channel sends of slices do not
// allocate, the lists are allocation-free in steady state, and the
// per-class capacity bounds retained memory deterministically.

const (
	// minBufBits is the smallest pooled class (64 B); requests below it
	// share that class.
	minBufBits = 6
	// maxBufBits is the largest class, sized to MaxFrame (16 MiB).
	maxBufBits = 24
)

var bufClasses [maxBufBits - minBufBits + 1]chan []byte

func init() {
	for i := range bufClasses {
		// Small classes ride the per-frame fast path and keep more
		// spares; capping the >64 KiB classes low bounds worst-case
		// retention to a few frames' worth.
		n := 128
		if i+minBufBits > 16 {
			n = 4
		}
		bufClasses[i] = make(chan []byte, n)
	}
}

// bufClass maps a requested length to the smallest class that fits it.
func bufClass(n int) int {
	if n <= 1<<minBufBits {
		return 0
	}
	return bits.Len(uint(n-1)) - minBufBits
}

// GetBuf returns a buffer of length n from the frame buffer pool
// (capacity may exceed n). Contents are unspecified. GetBuf(0) is nil.
func GetBuf(n int) []byte {
	if n == 0 {
		return nil
	}
	c := bufClass(n)
	if c >= len(bufClasses) {
		return make([]byte, n)
	}
	select {
	case b := <-bufClasses[c]:
		return b[:n]
	default:
		return make([]byte, n, 1<<(c+minBufBits))
	}
}

// PutBuf returns a buffer to the pool. Callers must not retain any
// reference into b afterwards. PutBuf(nil) is a no-op, and buffers of
// foreign (non-pool) capacities are simply dropped for the GC.
func PutBuf(b []byte) {
	// A buffer parks in the largest class its capacity fully covers, so
	// GetBuf never hands out a buffer shorter than the class promises.
	c := bits.Len(uint(cap(b))) - 1 - minBufBits
	if c < 0 {
		return
	}
	if c >= len(bufClasses) {
		c = len(bufClasses) - 1
	}
	select {
	case bufClasses[c] <- b[:0]:
	default:
	}
}

// ReadFramePooled is ReadFrame with the payload drawn from the frame
// buffer pool. The caller owns f.Payload and should PutBuf it once the
// frame is fully consumed.
func ReadFramePooled(r io.Reader) (Frame, error) {
	return ReadFramePooledOpts(r, false, false)
}

// ReadFrameCRCPooled is ReadFrameCRC with a pooled payload; see
// ReadFramePooled for the ownership rule.
func ReadFrameCRCPooled(r io.Reader) (Frame, error) {
	return ReadFramePooledOpts(r, true, false)
}

// EncodeReadBatchPooled is EncodeReadBatch with the payload drawn from
// the pool; the caller should PutBuf it after the frame is written.
func EncodeReadBatchPooled(tag uint32, reqs []ReadReq) Frame {
	p := GetBuf(4 + readReqSize*len(reqs))
	binary.LittleEndian.PutUint32(p[0:], uint32(len(reqs)))
	for i, r := range reqs {
		off := 4 + i*readReqSize
		binary.LittleEndian.PutUint32(p[off:], r.DS)
		binary.LittleEndian.PutUint32(p[off+4:], r.Idx)
		binary.LittleEndian.PutUint32(p[off+8:], r.Size)
	}
	return Frame{Op: OpReadBatch, Tag: tag, Payload: p}
}

// EncodeWriteBatchPooled is EncodeWriteBatch with a pooled payload;
// same ownership rule as EncodeReadBatchPooled.
func EncodeWriteBatchPooled(tag uint32, reqs []WriteReq) (Frame, error) {
	n := WriteBatchSize(reqs)
	if n > MaxFrame {
		return Frame{}, fmt.Errorf("rdma: WRITEBATCH too large (%d bytes)", n)
	}
	p := GetBuf(n)
	encodeWriteBatchInto(p, reqs)
	return Frame{Op: OpWriteBatch, Tag: tag, Payload: p}, nil
}

// DecodeReadBatchInto is DecodeReadBatch appending into a caller-owned
// slice, letting a steady-state server reuse one across batches.
func DecodeReadBatchInto(p []byte, reqs []ReadReq) ([]ReadReq, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("rdma: bad READBATCH payload length %d", len(p))
	}
	count := binary.LittleEndian.Uint32(p)
	if uint64(len(p)) != 4+uint64(count)*readReqSize {
		return nil, fmt.Errorf("rdma: READBATCH length mismatch: header %d tuples, payload %d bytes",
			count, len(p))
	}
	reqs = reqs[:0]
	for i := 0; i < int(count); i++ {
		off := 4 + i*readReqSize
		reqs = append(reqs, ReadReq{
			DS:   binary.LittleEndian.Uint32(p[off:]),
			Idx:  binary.LittleEndian.Uint32(p[off+4:]),
			Size: binary.LittleEndian.Uint32(p[off+8:]),
		})
	}
	return reqs, nil
}

// DecodeDataBatchInto is DecodeDataBatch appending into a caller-owned
// slice (segments remain subslices of p).
func DecodeDataBatchInto(p []byte, segs [][]byte) ([][]byte, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("rdma: bad DATABATCH payload length %d", len(p))
	}
	count := binary.LittleEndian.Uint32(p)
	if uint64(count) > uint64(len(p)-4)/4 {
		return nil, fmt.Errorf("rdma: DATABATCH count %d exceeds payload", count)
	}
	segs = segs[:0]
	off := 4
	for i := uint32(0); i < count; i++ {
		if off+4 > len(p) {
			return nil, fmt.Errorf("rdma: truncated DATABATCH at segment %d", i)
		}
		n := int(binary.LittleEndian.Uint32(p[off:]))
		off += 4
		if off+n > len(p) {
			return nil, fmt.Errorf("rdma: truncated DATABATCH segment %d (%d bytes)", i, n)
		}
		segs = append(segs, p[off:off+n])
		off += n
	}
	if off != len(p) {
		return nil, fmt.Errorf("rdma: DATABATCH trailing garbage (%d bytes)", len(p)-off)
	}
	return segs, nil
}

// DataBatchWriter assembles a DATABATCH payload in place, letting a
// server gather each object read directly into the (typically pooled)
// reply buffer — no per-segment staging copies.
type DataBatchWriter struct {
	p   []byte
	off int
}

// BeginDataBatch starts a batch of count segments over p, which must
// hold exactly DataBatchSize of the requests being answered.
func BeginDataBatch(p []byte, count int) DataBatchWriter {
	binary.LittleEndian.PutUint32(p[0:], uint32(count))
	return DataBatchWriter{p: p, off: 4}
}

// Next reserves the next segment's n-byte slot and returns it for the
// caller to fill.
func (w *DataBatchWriter) Next(n int) []byte {
	binary.LittleEndian.PutUint32(w.p[w.off:], uint32(n))
	w.off += 4
	s := w.p[w.off : w.off+n : w.off+n]
	w.off += n
	return s
}

// Frame returns the assembled DATABATCH frame.
func (w *DataBatchWriter) Frame(tag uint32) Frame {
	return Frame{Op: OpDataBatch, Tag: tag, Payload: w.p[:w.off]}
}
