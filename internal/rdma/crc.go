package rdma

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame integrity. TCP's 16-bit checksum misses roughly one corrupted
// segment in 65k, and a chaos transport (internal/faultnet) flips bytes
// on purpose — either way a flipped payload byte would silently corrupt
// far-memory objects. Peers that both advertise FeatCRC therefore
// switch the session to checksummed framing right after feature
// negotiation: every frame is followed by a u32 CRC32-C (Castagnoli,
// the polynomial RDMA NICs and iSCSI use) computed over the opcode, the
// tag (when present), and the payload. The length prefix is not
// summed — a corrupted length desynchronizes the stream, which the
// checksum then catches on the misframed bytes that follow.
//
// The negotiation PING and its OK reply are always sent in legacy
// framing (they must be readable before the feature set is known), so
// the switch happens atomically after that first exchange on both
// sides.

// ErrCRC reports a checksum mismatch: the frame (and everything after
// it on this stream) cannot be trusted. The only safe recovery is to
// drop the connection and replay idempotent work on a fresh one.
var ErrCRC = errors.New("rdma: frame checksum mismatch")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameCRC sums opcode, tag (tagged frames), the trace block (extended
// frames) and payload. It runs once per frame on the data path, so it
// streams through crc32.Update rather than allocating a hash.Hash32
// digest per call.
func frameCRC(f Frame) uint32 {
	// Pooled scratch: the header slice reaches crc32's assembly kernels,
	// so a stack array would escape and allocate on every frame.
	hdr := GetBuf(headerSize + traceExtSize)
	defer PutBuf(hdr)
	hdr[0] = byte(f.Op)
	n := 1
	if f.Op.Tagged() {
		binary.LittleEndian.PutUint32(hdr[1:], f.Tag)
		n += tagSize
		if f.HasExt {
			n += copy(hdr[n:], f.Ext[:])
		}
	}
	crc := crc32.Update(0, castagnoli, hdr[:n])
	return crc32.Update(crc, castagnoli, f.Payload)
}

// crcSize is the per-frame overhead of checksummed framing.
const crcSize = 4

// WriteFrameCRC writes one frame followed by its CRC32-C trailer.
func WriteFrameCRC(w io.Writer, f Frame) error {
	if err := WriteFrame(w, f); err != nil {
		return err
	}
	tr := GetBuf(crcSize)
	defer PutBuf(tr)
	binary.LittleEndian.PutUint32(tr, frameCRC(f))
	_, err := w.Write(tr)
	return err
}

// ReadFrameCRC reads one checksummed frame and verifies its trailer,
// returning ErrCRC (wrapped with the opcode) on mismatch.
func ReadFrameCRC(r io.Reader) (Frame, error) {
	f, err := ReadFrame(r)
	if err != nil {
		return Frame{}, err
	}
	var tr [crcSize]byte
	if _, err := io.ReadFull(r, tr[:]); err != nil {
		return Frame{}, err
	}
	if got := binary.LittleEndian.Uint32(tr[:]); got != frameCRC(f) {
		return Frame{}, fmt.Errorf("%w (frame %s)", ErrCRC, f.Op)
	}
	return f, nil
}
