package rdma

import (
	"encoding/binary"
	"fmt"
)

// Epoch-stamped verbs (the FeatEpoch extension). The replication layer
// versions every object with a monotonically increasing u64 epoch so a
// backup can tell a stale image from a current one without comparing
// bytes. The verbs mirror the batch verbs exactly — same doorbell
// coalescing, same tag demux — with the epoch spliced into each tuple:
//
//	WRITEEPOCHBATCH: u32 count | count x (u32 ds | u32 idx | u64 epoch | u32 len | bytes)
//	                 -> ACKBATCH (same tag)
//	READEPOCHBATCH:  u32 count | count x (u32 ds | u32 idx | u32 size)
//	                 -> DATAEPOCHBATCH (same tag)
//	DATAEPOCHBATCH:  u32 count | count x (u64 epoch | u32 len | bytes)
//
// A READEPOCHBATCH payload is byte-identical to READBATCH — only the
// opcode (and therefore the reply shape) differs. Sessions that did not
// negotiate FeatEpoch never carry these opcodes.

// WriteEpochReq is one epoch-stamped write tuple.
type WriteEpochReq struct {
	DS, Idx uint32
	Epoch   uint64
	Data    []byte
}

// EpochSeg is one segment of a DATAEPOCHBATCH reply: the stored epoch
// and the object bytes. A missing object decodes as Epoch 0 with empty
// Data.
type EpochSeg struct {
	Epoch uint64
	Data  []byte
}

// writeEpochReqHdrSize is the fixed prefix of one WRITEEPOCHBATCH
// tuple: u32 ds | u32 idx | u64 epoch | u32 len.
const writeEpochReqHdrSize = 20

// epochSegHdrSize is the fixed prefix of one DATAEPOCHBATCH segment:
// u64 epoch | u32 len.
const epochSegHdrSize = 12

// WriteEpochBatchSize returns the WRITEEPOCHBATCH payload size for
// reqs — the value the flusher bounds against MaxFrame before closing
// a batch.
func WriteEpochBatchSize(reqs []WriteEpochReq) int {
	n := 4
	for _, r := range reqs {
		n += writeEpochReqHdrSize + len(r.Data)
	}
	return n
}

// EncodeWriteEpochBatch builds a WRITEEPOCHBATCH frame.
func EncodeWriteEpochBatch(tag uint32, reqs []WriteEpochReq) (Frame, error) {
	n := WriteEpochBatchSize(reqs)
	if n > MaxFrame {
		return Frame{}, fmt.Errorf("rdma: WRITEEPOCHBATCH too large (%d bytes)", n)
	}
	p := make([]byte, n)
	encodeWriteEpochBatchInto(p, reqs)
	return Frame{Op: OpWriteEpochBatch, Tag: tag, Payload: p}, nil
}

// EncodeWriteEpochBatchPooled is EncodeWriteEpochBatch with a pooled
// payload; the caller should PutBuf it after the frame is written.
func EncodeWriteEpochBatchPooled(tag uint32, reqs []WriteEpochReq) (Frame, error) {
	n := WriteEpochBatchSize(reqs)
	if n > MaxFrame {
		return Frame{}, fmt.Errorf("rdma: WRITEEPOCHBATCH too large (%d bytes)", n)
	}
	p := GetBuf(n)
	encodeWriteEpochBatchInto(p, reqs)
	return Frame{Op: OpWriteEpochBatch, Tag: tag, Payload: p}, nil
}

func encodeWriteEpochBatchInto(p []byte, reqs []WriteEpochReq) {
	binary.LittleEndian.PutUint32(p[0:], uint32(len(reqs)))
	off := 4
	for _, r := range reqs {
		binary.LittleEndian.PutUint32(p[off:], r.DS)
		binary.LittleEndian.PutUint32(p[off+4:], r.Idx)
		binary.LittleEndian.PutUint64(p[off+8:], r.Epoch)
		binary.LittleEndian.PutUint32(p[off+16:], uint32(len(r.Data)))
		off += writeEpochReqHdrSize
		copy(p[off:], r.Data)
		off += len(r.Data)
	}
}

// DecodeWriteEpochBatch parses a WRITEEPOCHBATCH payload (Data fields
// are subslices of p — valid while p is).
func DecodeWriteEpochBatch(p []byte) ([]WriteEpochReq, error) {
	return DecodeWriteEpochBatchInto(p, nil)
}

// DecodeWriteEpochBatchInto is DecodeWriteEpochBatch appending into a
// caller-owned slice, letting a steady-state server reuse one across
// batches.
func DecodeWriteEpochBatchInto(p []byte, reqs []WriteEpochReq) ([]WriteEpochReq, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("rdma: bad WRITEEPOCHBATCH payload length %d", len(p))
	}
	count := binary.LittleEndian.Uint32(p)
	// Each tuple needs at least its fixed header; a count beyond that is
	// a forged header — reject before sizing any allocation by it.
	if uint64(count) > uint64(len(p)-4)/writeEpochReqHdrSize {
		return nil, fmt.Errorf("rdma: WRITEEPOCHBATCH count %d exceeds payload", count)
	}
	reqs = reqs[:0]
	off := 4
	for i := uint32(0); i < count; i++ {
		if off+writeEpochReqHdrSize > len(p) {
			return nil, fmt.Errorf("rdma: truncated WRITEEPOCHBATCH at tuple %d", i)
		}
		n := int(binary.LittleEndian.Uint32(p[off+16:]))
		r := WriteEpochReq{
			DS:    binary.LittleEndian.Uint32(p[off:]),
			Idx:   binary.LittleEndian.Uint32(p[off+4:]),
			Epoch: binary.LittleEndian.Uint64(p[off+8:]),
		}
		off += writeEpochReqHdrSize
		if n < 0 || off+n > len(p) {
			return nil, fmt.Errorf("rdma: truncated WRITEEPOCHBATCH tuple %d (%d bytes)", i, n)
		}
		r.Data = p[off : off+n]
		off += n
		reqs = append(reqs, r)
	}
	if off != len(p) {
		return nil, fmt.Errorf("rdma: WRITEEPOCHBATCH trailing garbage (%d bytes)", len(p)-off)
	}
	return reqs, nil
}

// EncodeReadEpochBatch builds a READEPOCHBATCH frame — READBATCH
// tuples under the epoch-reply opcode.
func EncodeReadEpochBatch(tag uint32, reqs []ReadReq) Frame {
	f := EncodeReadBatch(tag, reqs)
	f.Op = OpReadEpochBatch
	return f
}

// EncodeReadEpochBatchPooled is EncodeReadEpochBatch with the payload
// drawn from the pool; the caller should PutBuf it after the frame is
// written.
func EncodeReadEpochBatchPooled(tag uint32, reqs []ReadReq) Frame {
	f := EncodeReadBatchPooled(tag, reqs)
	f.Op = OpReadEpochBatch
	return f
}

// DecodeReadEpochBatch parses a READEPOCHBATCH payload.
func DecodeReadEpochBatch(p []byte) ([]ReadReq, error) { return DecodeReadBatch(p) }

// DecodeReadEpochBatchInto is DecodeReadEpochBatch appending into a
// caller-owned slice.
func DecodeReadEpochBatchInto(p []byte, reqs []ReadReq) ([]ReadReq, error) {
	return DecodeReadBatchInto(p, reqs)
}

// DataEpochBatchSize returns the DATAEPOCHBATCH payload size replying
// to reqs — the value both sides bound against MaxFrame before
// building a batch.
func DataEpochBatchSize(reqs []ReadReq) int {
	n := 4
	for _, r := range reqs {
		n += epochSegHdrSize + int(r.Size)
	}
	return n
}

// EncodeDataEpochBatch builds the epoch-stamped scatter-gather reply.
// Segments must be in request order.
func EncodeDataEpochBatch(tag uint32, segs []EpochSeg) (Frame, error) {
	n := 4
	for _, s := range segs {
		n += epochSegHdrSize + len(s.Data)
	}
	if n > MaxFrame {
		return Frame{}, fmt.Errorf("rdma: DATAEPOCHBATCH too large (%d bytes)", n)
	}
	p := make([]byte, n)
	w := BeginDataEpochBatch(p, len(segs))
	for _, s := range segs {
		copy(w.Next(s.Epoch, len(s.Data)), s.Data)
	}
	return w.Frame(tag), nil
}

// DecodeDataEpochBatch parses a DATAEPOCHBATCH payload into segments
// (Data fields are subslices of p — valid while p is).
func DecodeDataEpochBatch(p []byte) ([]EpochSeg, error) {
	return DecodeDataEpochBatchInto(p, nil)
}

// DecodeDataEpochBatchInto is DecodeDataEpochBatch appending into a
// caller-owned slice.
func DecodeDataEpochBatchInto(p []byte, segs []EpochSeg) ([]EpochSeg, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("rdma: bad DATAEPOCHBATCH payload length %d", len(p))
	}
	count := binary.LittleEndian.Uint32(p)
	if uint64(count) > uint64(len(p)-4)/epochSegHdrSize {
		return nil, fmt.Errorf("rdma: DATAEPOCHBATCH count %d exceeds payload", count)
	}
	segs = segs[:0]
	off := 4
	for i := uint32(0); i < count; i++ {
		if off+epochSegHdrSize > len(p) {
			return nil, fmt.Errorf("rdma: truncated DATAEPOCHBATCH at segment %d", i)
		}
		epoch := binary.LittleEndian.Uint64(p[off:])
		n := int(binary.LittleEndian.Uint32(p[off+8:]))
		off += epochSegHdrSize
		if n < 0 || off+n > len(p) {
			return nil, fmt.Errorf("rdma: truncated DATAEPOCHBATCH segment %d (%d bytes)", i, n)
		}
		segs = append(segs, EpochSeg{Epoch: epoch, Data: p[off : off+n]})
		off += n
	}
	if off != len(p) {
		return nil, fmt.Errorf("rdma: DATAEPOCHBATCH trailing garbage (%d bytes)", len(p)-off)
	}
	return segs, nil
}

// DataEpochBatchWriter assembles a DATAEPOCHBATCH payload in place,
// letting the server gather each object read directly into the
// (typically pooled) reply buffer.
type DataEpochBatchWriter struct {
	p   []byte
	off int
	hdr int // offset of the most recently reserved segment's epoch stamp
}

// BeginDataEpochBatch starts a batch of count segments over p, which
// must hold exactly DataEpochBatchSize of the requests being answered.
func BeginDataEpochBatch(p []byte, count int) DataEpochBatchWriter {
	binary.LittleEndian.PutUint32(p[0:], uint32(count))
	return DataEpochBatchWriter{p: p, off: 4}
}

// Next reserves the next segment's n-byte slot under the given epoch
// stamp and returns it for the caller to fill.
func (w *DataEpochBatchWriter) Next(epoch uint64, n int) []byte {
	binary.LittleEndian.PutUint64(w.p[w.off:], epoch)
	binary.LittleEndian.PutUint32(w.p[w.off+8:], uint32(n))
	w.off += epochSegHdrSize
	s := w.p[w.off : w.off+n : w.off+n]
	w.off += n
	return s
}

// NextDeferred reserves the next segment's n-byte slot with the epoch
// left to be stamped afterwards via StampEpoch — the server's gather
// path learns the stamp only while copying under the store lock.
func (w *DataEpochBatchWriter) NextDeferred(n int) []byte {
	w.hdr = w.off
	binary.LittleEndian.PutUint32(w.p[w.off+8:], uint32(n))
	w.off += epochSegHdrSize
	s := w.p[w.off : w.off+n : w.off+n]
	w.off += n
	return s
}

// StampEpoch stamps the epoch of the segment most recently reserved by
// NextDeferred.
func (w *DataEpochBatchWriter) StampEpoch(epoch uint64) {
	binary.LittleEndian.PutUint64(w.p[w.hdr:], epoch)
}

// Frame returns the assembled DATAEPOCHBATCH frame.
func (w *DataEpochBatchWriter) Frame(tag uint32) Frame {
	return Frame{Op: OpDataEpochBatch, Tag: tag, Payload: w.p[:w.off]}
}
