package rdma

import (
	"encoding/binary"
	"errors"
)

// A small LZ77 block codec for the FeatCompress wire tier.
//
// The format is the classic byte-oriented token stream (LZ4 block
// style): each sequence is a token byte whose high nibble is the
// literal length and low nibble the match length minus lzMinMatch (15
// in either nibble means "add the following 255-continued extension
// bytes"), followed by the literals, then a 2-byte little-endian match
// offset into the already-decoded output. The final sequence carries
// literals only. There is no stream header — the decompressed size
// travels in the compact frame header, so the decompressor fills a
// caller-sized destination exactly.
//
// We hand-roll this instead of using compress/flate because the codec
// sits on the zero-alloc steady-state path: flate allocates its
// encoder/decoder state per use (and is far too slow per 4KB object),
// whereas this compressor's only state is a 32KB hash table recycled
// through a pool, and the decompressor needs none at all. Compression
// strength is secondary — the adaptivity policy in internal/remote only
// engages the codec on DSs whose objects have shown real redundancy.

const (
	lzMinMatch  = 4
	lzTableBits = 12
	lzTableSize = 1 << lzTableBits
	lzMaxOffset = 1 << 16
)

var ErrCorrupt = errors.New("rdma: corrupt compressed block")

var lzTablePool = make(chan *[lzTableSize]int32, 16)

func getLZTable() *[lzTableSize]int32 {
	select {
	case t := <-lzTablePool:
		clear(t[:])
		return t
	default:
		return new([lzTableSize]int32)
	}
}

func putLZTable(t *[lzTableSize]int32) {
	select {
	case lzTablePool <- t:
	default:
	}
}

// CompressBound returns the worst-case compressed size for n input
// bytes; destination buffers for LZCompress must be at least this big.
func CompressBound(n int) int { return n + n/255 + 16 }

func lzHash(v uint32) uint32 {
	return (v * 2654435761) >> (32 - lzTableBits)
}

// LZCompress compresses src into dst and returns the compressed length.
// ok is false when the input is incompressible (output would not be
// smaller than the input) — callers then ship the object raw. dst must
// have room for CompressBound(len(src)) bytes.
func LZCompress(dst, src []byte) (n int, ok bool) {
	if len(src) < 16 || len(dst) < CompressBound(len(src)) {
		return 0, false
	}
	table := getLZTable()
	defer putLZTable(table)

	limit := len(src) - 1 // hard output budget: must beat raw
	var out, anchor, pos int
	end := len(src) - lzMinMatch // last position where a match can start

	for pos < end {
		seq := binary.LittleEndian.Uint32(src[pos:])
		h := lzHash(seq)
		cand := int(table[h]) - 1
		table[h] = int32(pos + 1)
		if cand < 0 || pos-cand >= lzMaxOffset ||
			binary.LittleEndian.Uint32(src[cand:]) != seq {
			pos++
			continue
		}
		// Extend the match forward.
		mlen := lzMinMatch
		for pos+mlen < len(src) && src[cand+mlen] == src[pos+mlen] {
			mlen++
		}
		// Emit literals [anchor,pos) + the match.
		lit := pos - anchor
		need := 1 + lit/255 + lit + 2 + (mlen-lzMinMatch)/255 + 2
		if out+need > limit {
			return 0, false
		}
		tok := out
		out++
		if lit >= 15 {
			dst[tok] = 15 << 4
			out += lzPutExt(dst[out:], lit-15)
		} else {
			dst[tok] = byte(lit) << 4
		}
		out += copy(dst[out:], src[anchor:pos])
		binary.LittleEndian.PutUint16(dst[out:], uint16(pos-cand))
		out += 2
		if m := mlen - lzMinMatch; m >= 15 {
			dst[tok] |= 15
			out += lzPutExt(dst[out:], m-15)
		} else {
			dst[tok] |= byte(m)
		}
		// Seed the table inside the match so runs keep matching.
		step := 1
		if mlen > 64 {
			step = 4
		}
		for p := pos + 1; p < pos+mlen && p < end; p += step {
			table[lzHash(binary.LittleEndian.Uint32(src[p:]))] = int32(p + 1)
		}
		pos += mlen
		anchor = pos
	}
	// Trailing literals.
	lit := len(src) - anchor
	if out+1+lit/255+lit > limit {
		return 0, false
	}
	tok := out
	out++
	if lit >= 15 {
		dst[tok] = 15 << 4
		out += lzPutExt(dst[out:], lit-15)
	} else {
		dst[tok] = byte(lit) << 4
	}
	out += copy(dst[out:], src[anchor:])
	return out, true
}

// lzPutExt writes a 255-continued length extension and returns the
// bytes written.
func lzPutExt(dst []byte, v int) int {
	n := 0
	for v >= 255 {
		dst[n] = 255
		n++
		v -= 255
	}
	dst[n] = byte(v)
	return n + 1
}

// LZDecompress expands src into dst, which must be exactly the original
// length. Every access is bounds-checked against both slices, so
// forged input from the wire fails with ErrCorrupt instead of
// panicking or over-reading.
func LZDecompress(dst, src []byte) error {
	var out, in int
	for {
		if in >= len(src) {
			return ErrCorrupt
		}
		tok := src[in]
		in++
		lit := int(tok >> 4)
		if lit == 15 {
			var err error
			lit, in, err = lzExt(src, in, lit)
			if err != nil {
				return err
			}
		}
		if in+lit > len(src) || out+lit > len(dst) {
			return ErrCorrupt
		}
		copy(dst[out:], src[in:in+lit])
		in += lit
		out += lit
		if in == len(src) {
			// Final literal-only sequence: the token's match nibble
			// must be clear, and output must be complete.
			if tok&15 != 0 || out != len(dst) {
				return ErrCorrupt
			}
			return nil
		}
		if in+2 > len(src) {
			return ErrCorrupt
		}
		off := int(binary.LittleEndian.Uint16(src[in:]))
		in += 2
		mlen := int(tok & 15)
		if mlen == 15 {
			var err error
			mlen, in, err = lzExt(src, in, mlen)
			if err != nil {
				return err
			}
		}
		mlen += lzMinMatch
		if off == 0 || off > out || out+mlen > len(dst) {
			return ErrCorrupt
		}
		// Byte-wise copy: matches may overlap their own output
		// (off < mlen encodes a repeating run).
		for i := 0; i < mlen; i++ {
			dst[out] = dst[out-off]
			out++
		}
	}
}

func lzExt(src []byte, in, v int) (int, int, error) {
	for {
		if in >= len(src) {
			return 0, 0, ErrCorrupt
		}
		b := src[in]
		in++
		v += int(b)
		if v > MaxFrame {
			return 0, 0, ErrCorrupt
		}
		if b != 255 {
			return v, in, nil
		}
	}
}

// isAllZero reports whether b contains only zero bytes (the fast path
// for freshly-materialized or cleared objects, which compress to a
// two-bit scheme code and no payload at all).
func isAllZero(b []byte) bool {
	for len(b) >= 8 {
		if binary.LittleEndian.Uint64(b) != 0 {
			return false
		}
		b = b[8:]
	}
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// IsAllZero reports whether b contains only zero bytes — exported for
// the client-side compression decision, which classifies objects before
// they reach a builder.
func IsAllZero(b []byte) bool { return isAllZero(b) }
