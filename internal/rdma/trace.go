package rdma

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Trace extension. Peers that both advertise FeatTrace switch the
// session to extended tagged framing right after feature negotiation:
// every tagged frame then carries a fixed traceExtSize-byte trace block
// between the tag and the payload. Like the tag, the block is never
// counted in payloadLen, and untagged frames (the negotiation exchange,
// the serial verbs) never carry it — so a session without FeatTrace is
// byte-identical to the legacy protocol by construction.
//
//	u32 payloadLen | u8 op | u32 tag | 20B trace ext | payload
//
// The block is direction-dependent (both layouts are 20 bytes, little
// endian):
//
//	request:  u64 traceID | u64 spanID  | u32 flags (bit0 = sampled)
//	reply:    u64 recvUS  | u32 queueUS | u32 serviceUS | u32 reserved
//
// The request half carries the client's span context so the server can
// label its spans causally; the reply half carries the server's receive
// timestamp (µs since an arbitrary server epoch) plus two *durations*
// (receive→dispatch and dispatch→complete), which is everything the
// client needs to decompose a round trip into client-queue / on-wire /
// server-queue / server-service without any clock synchronization.
// Frames of an unsampled op carry an all-zero request block: keeping the
// framing fixed-size means readers never branch on content.

// FeatTrace: the peer understands extended tagged framing — a fixed
// trace block on every tagged frame — and (server side) stamps replies
// with receive/dispatch/complete timing.
const FeatTrace uint32 = 1 << 3

// traceExtSize is the fixed size of the trace block.
const traceExtSize = 20

// TraceExtSize exports the trace-block size for wire accounting.
const TraceExtSize = traceExtSize

// SetTraceCtx stamps a request frame's trace block with the issuing
// op's span context and marks the frame extended.
func (f *Frame) SetTraceCtx(traceID, spanID uint64, sampled bool) {
	f.HasExt = true
	binary.LittleEndian.PutUint64(f.Ext[0:], traceID)
	binary.LittleEndian.PutUint64(f.Ext[8:], spanID)
	var flags uint32
	if sampled {
		flags = 1
	}
	binary.LittleEndian.PutUint32(f.Ext[16:], flags)
}

// TraceCtx decodes a request frame's trace block.
func (f *Frame) TraceCtx() (traceID, spanID uint64, sampled bool) {
	traceID = binary.LittleEndian.Uint64(f.Ext[0:])
	spanID = binary.LittleEndian.Uint64(f.Ext[8:])
	sampled = binary.LittleEndian.Uint32(f.Ext[16:])&1 != 0
	return
}

// SetServerStamp stamps a reply frame's trace block with the server's
// receive timestamp (µs since the server's epoch) and the two service
// durations, and marks the frame extended.
func (f *Frame) SetServerStamp(recvUS uint64, queueUS, serviceUS uint32) {
	f.HasExt = true
	binary.LittleEndian.PutUint64(f.Ext[0:], recvUS)
	binary.LittleEndian.PutUint32(f.Ext[8:], queueUS)
	binary.LittleEndian.PutUint32(f.Ext[12:], serviceUS)
	binary.LittleEndian.PutUint32(f.Ext[16:], 0)
}

// ServerStamp decodes a reply frame's trace block.
func (f *Frame) ServerStamp() (recvUS uint64, queueUS, serviceUS uint32) {
	recvUS = binary.LittleEndian.Uint64(f.Ext[0:])
	queueUS = binary.LittleEndian.Uint32(f.Ext[8:])
	serviceUS = binary.LittleEndian.Uint32(f.Ext[12:])
	return
}

// ReadFrameOpts reads one frame under the session's negotiated framing:
// crc selects the checksum trailer, trace the tagged-frame trace block.
// The payload is heap-allocated; see ReadFramePooledOpts for the pooled
// variant the data paths use.
func ReadFrameOpts(r io.Reader, crc, trace bool) (Frame, error) {
	f, err := ReadFramePooledOpts(r, crc, trace)
	if err != nil {
		return Frame{}, err
	}
	if f.Payload != nil {
		p := make([]byte, len(f.Payload))
		copy(p, f.Payload)
		PutBuf(f.Payload)
		f.Payload = p
	}
	return f, nil
}

// ReadFramePooledOpts is the session-aware pooled frame reader: crc
// selects checksummed framing, trace the tagged-frame trace block. The
// caller owns f.Payload and should PutBuf it once consumed.
func ReadFramePooledOpts(r io.Reader, crc, trace bool) (Frame, error) {
	// Header scratch from the pool: a stack array would escape through
	// the io.Reader interface call and allocate on every frame.
	hdr := GetBuf(headerSize + tagSize + traceExtSize)
	defer PutBuf(hdr)
	if _, err := io.ReadFull(r, hdr[:headerSize]); err != nil {
		return Frame{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > MaxFrame {
		return Frame{}, fmt.Errorf("rdma: oversized frame (%d bytes)", n)
	}
	f := Frame{Op: Op(hdr[4])}
	if f.Op.Tagged() {
		rest := hdr[headerSize : headerSize+tagSize]
		if trace {
			rest = hdr[headerSize : headerSize+tagSize+traceExtSize]
		}
		if _, err := io.ReadFull(r, rest); err != nil {
			return Frame{}, err
		}
		f.Tag = binary.LittleEndian.Uint32(rest)
		if trace {
			f.HasExt = true
			copy(f.Ext[:], rest[tagSize:])
		}
	}
	if n > 0 {
		f.Payload = GetBuf(int(n))
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			PutBuf(f.Payload)
			return Frame{}, err
		}
	}
	if crc {
		tr := GetBuf(crcSize)
		defer PutBuf(tr)
		if _, err := io.ReadFull(r, tr); err != nil {
			PutBuf(f.Payload)
			return Frame{}, err
		}
		if got := binary.LittleEndian.Uint32(tr); got != frameCRC(f) {
			PutBuf(f.Payload)
			return Frame{}, fmt.Errorf("%w (frame %s)", ErrCRC, f.Op)
		}
	}
	return f, nil
}
