package rdma

import (
	"bytes"
	"errors"
	"testing"
)

func TestCRCRoundTrip(t *testing.T) {
	frames := []Frame{
		{Op: OpPing},
		{Op: OpRead, Payload: []byte{1, 2, 3}},
		{Op: OpReadBatch, Tag: 99, Payload: []byte{4, 5}},
		{Op: OpAckTag, Tag: 7},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrameCRC(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		got, err := ReadFrameCRC(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Op != want.Op || got.Tag != want.Tag || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d = %+v, want %+v", i, got, want)
		}
	}
}

func TestCRCDetectsCorruption(t *testing.T) {
	f := Frame{Op: OpWriteTag, Tag: 3, Payload: bytes.Repeat([]byte{0xAA}, 64)}
	var clean bytes.Buffer
	if err := WriteFrameCRC(&clean, f); err != nil {
		t.Fatal(err)
	}
	wire := clean.Bytes()
	// Flip each byte after the length prefix in turn: every flip must be
	// caught (payload, opcode, tag, and the trailer itself).
	for pos := 4; pos < len(wire); pos++ {
		bad := make([]byte, len(wire))
		copy(bad, wire)
		bad[pos] ^= 0x10
		_, err := ReadFrameCRC(bytes.NewReader(bad))
		if !errors.Is(err, ErrCRC) {
			t.Fatalf("flip at %d: err = %v, want ErrCRC", pos, err)
		}
	}
}

func TestCRCDetectsTruncatedTrailer(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrameCRC(&buf, Frame{Op: OpOK}); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()
	if _, err := ReadFrameCRC(bytes.NewReader(wire[:len(wire)-2])); err == nil {
		t.Fatal("truncated trailer should fail")
	}
}
