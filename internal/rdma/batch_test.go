package rdma

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
	"testing/quick"
)

func TestTaggedFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Frame{Op: OpDataBatch, Tag: 0xDEADBEEF, Payload: []byte{4, 0, 0, 0}}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	// Wire layout: u32 len | u8 op | u32 tag | payload.
	raw := buf.Bytes()
	if got := binary.LittleEndian.Uint32(raw[0:4]); got != uint32(len(in.Payload)) {
		t.Fatalf("payloadLen on wire = %d, want %d (must exclude the tag)", got, len(in.Payload))
	}
	if Op(raw[4]) != OpDataBatch {
		t.Fatalf("op on wire = %d", raw[4])
	}
	if got := binary.LittleEndian.Uint32(raw[5:9]); got != in.Tag {
		t.Fatalf("tag on wire = %#x, want %#x", got, in.Tag)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Op != in.Op || out.Tag != in.Tag || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("roundtrip: %+v vs %+v", in, out)
	}
	if want := uint64(len(raw)); in.WireSize() != want {
		t.Fatalf("WireSize = %d, want %d", in.WireSize(), want)
	}
}

func TestUntaggedFramesUnchanged(t *testing.T) {
	// Legacy frames must stay byte-identical to the original protocol:
	// no tag on the wire for untagged opcodes.
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Op: OpOK, Tag: 0xFFFFFFFF}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 5 {
		t.Fatalf("untagged empty frame = %d bytes, want 5", buf.Len())
	}
	f, err := ReadFrame(&buf)
	if err != nil || f.Tag != 0 {
		t.Fatalf("f = %+v, err = %v (untagged reads must leave Tag zero)", f, err)
	}
}

func TestTaggedOpPredicate(t *testing.T) {
	for _, op := range []Op{OpReadBatch, OpDataBatch, OpWriteTag, OpAckTag, OpErrTag} {
		if !op.Tagged() {
			t.Errorf("%s should be tagged", op)
		}
		if strings.HasPrefix(op.String(), "op(") {
			t.Errorf("missing name for tagged op %d", op)
		}
	}
	for _, op := range []Op{OpRead, OpWrite, OpPing, OpData, OpOK, OpErr} {
		if op.Tagged() {
			t.Errorf("%s should not be tagged", op)
		}
	}
}

func TestTaggedFrameTruncation(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, Frame{Op: OpAckTag, Tag: 7, Payload: nil})
	raw := buf.Bytes()
	// Cut inside the tag: header parses, tag read must fail.
	if _, err := ReadFrame(bytes.NewReader(raw[:7])); err == nil {
		t.Fatal("truncated tag should fail")
	}
}

func TestReadBatchCodec(t *testing.T) {
	reqs := []ReadReq{{DS: 1, Idx: 2, Size: 64}, {DS: 3, Idx: 9, Size: 4096}}
	f := EncodeReadBatch(42, reqs)
	if f.Op != OpReadBatch || f.Tag != 42 {
		t.Fatalf("frame = %+v", f)
	}
	got, err := DecodeReadBatch(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != reqs[0] || got[1] != reqs[1] {
		t.Fatalf("got %+v", got)
	}

	if _, err := DecodeReadBatch([]byte{1, 2}); err == nil {
		t.Fatal("short payload should fail")
	}
	// Truncated tuple list: count says 2, payload carries 1.
	trunc := f.Payload[:4+readReqSize]
	if _, err := DecodeReadBatch(trunc); err == nil {
		t.Fatal("truncated batch should fail")
	}
	// Trailing garbage.
	long := append(append([]byte(nil), f.Payload...), 0xAA)
	if _, err := DecodeReadBatch(long); err == nil {
		t.Fatal("trailing garbage should fail")
	}
}

func TestDataBatchCodec(t *testing.T) {
	segs := [][]byte{[]byte("abc"), nil, []byte("0123456789")}
	f, err := EncodeDataBatch(7, segs)
	if err != nil {
		t.Fatal(err)
	}
	if f.Op != OpDataBatch || f.Tag != 7 {
		t.Fatalf("frame = %+v", f)
	}
	got, err := DecodeDataBatch(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(segs) {
		t.Fatalf("got %d segments", len(got))
	}
	for i := range segs {
		if !bytes.Equal(got[i], segs[i]) {
			t.Errorf("segment %d = %q, want %q", i, got[i], segs[i])
		}
	}
}

func TestDataBatchTruncation(t *testing.T) {
	f, _ := EncodeDataBatch(1, [][]byte{[]byte("payload")})
	p := f.Payload
	if _, err := DecodeDataBatch(p[:2]); err == nil {
		t.Fatal("short header should fail")
	}
	if _, err := DecodeDataBatch(p[:6]); err == nil {
		t.Fatal("cut inside segment length should fail")
	}
	if _, err := DecodeDataBatch(p[:len(p)-2]); err == nil {
		t.Fatal("cut inside segment bytes should fail")
	}
	if _, err := DecodeDataBatch(append(append([]byte(nil), p...), 0)); err == nil {
		t.Fatal("trailing garbage should fail")
	}
	// Forged count far beyond the payload must not drive the allocation.
	forged := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := DecodeDataBatch(forged); err == nil {
		t.Fatal("forged count should fail")
	}
}

func TestDataBatchOversized(t *testing.T) {
	// One segment over MaxFrame: encode must refuse (the write path), and
	// a forged oversized tagged header must be rejected before the tag is
	// even read (the read path).
	if _, err := EncodeDataBatch(1, [][]byte{make([]byte, MaxFrame)}); err == nil {
		t.Fatal("oversized DATABATCH encode should fail")
	}
	if err := WriteFrame(&bytes.Buffer{}, Frame{Op: OpDataBatch, Tag: 1, Payload: make([]byte, MaxFrame+1)}); err == nil {
		t.Fatal("oversized tagged write should fail")
	}
	forged := []byte{0xff, 0xff, 0xff, 0xff, byte(OpDataBatch), 1, 0, 0, 0}
	if _, err := ReadFrame(bytes.NewReader(forged)); err == nil {
		t.Fatal("oversized tagged read should fail")
	}
}

func TestDataBatchSizeBudget(t *testing.T) {
	reqs := []ReadReq{{Size: 100}, {Size: 0}, {Size: 4096}}
	want := 4 + (4 + 100) + (4 + 0) + (4 + 4096)
	if got := DataBatchSize(reqs); got != want {
		t.Fatalf("DataBatchSize = %d, want %d", got, want)
	}
	// The budget must equal what EncodeDataBatch actually produces.
	segs := [][]byte{make([]byte, 100), nil, make([]byte, 4096)}
	f, err := EncodeDataBatch(1, segs)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Payload) != want {
		t.Fatalf("encoded payload = %d bytes, budget said %d", len(f.Payload), want)
	}
}

func TestFeatureNegotiationCodec(t *testing.T) {
	f := PingFeatures(FeatBatch)
	if f.Op != OpPing {
		t.Fatal("wrong op")
	}
	feats, ok := DecodeFeatures(f.Payload)
	if !ok || feats != FeatBatch {
		t.Fatalf("feats = %#x ok = %v", feats, ok)
	}
	// A legacy peer's empty payload decodes as "no features".
	if _, ok := DecodeFeatures(nil); ok {
		t.Fatal("empty payload should carry no features")
	}
	if _, ok := DecodeFeatures([]byte{1, 2}); ok {
		t.Fatal("short payload should carry no features")
	}
}

func TestErrTagFrame(t *testing.T) {
	f := ErrTagFrame(9, "boom")
	if f.Op != OpErrTag || f.Tag != 9 || string(f.Payload) != "boom" {
		t.Fatalf("frame = %+v", f)
	}
}

// Property: arbitrary read batches roundtrip through frame + codec.
func TestReadBatchProperty(t *testing.T) {
	f := func(tag uint32, tuples []ReadReq) bool {
		if len(tuples) > 1024 {
			tuples = tuples[:1024]
		}
		fr := EncodeReadBatch(tag, tuples)
		var buf bytes.Buffer
		if WriteFrame(&buf, fr) != nil {
			return false
		}
		got, err := ReadFrame(&buf)
		if err != nil || got.Tag != tag || got.Op != OpReadBatch {
			return false
		}
		reqs, err := DecodeReadBatch(got.Payload)
		if err != nil || len(reqs) != len(tuples) {
			return false
		}
		for i := range reqs {
			if reqs[i] != tuples[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
