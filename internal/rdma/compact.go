package rdma

import "fmt"

// The FeatCompact wire tier: bit-packed batch headers, delta-encoded
// tuples, per-segment compression schemes, and the WRITERANGE
// sub-encoding for dirty-range write-back.
//
// Compact frames keep the outer framing (u32 len | u8 op | u32 tag, CRC
// trailer and trace extension unchanged) and re-encode only the batch
// payloads. Tuple headers ride a bit stream (see bitio.go): repeated DS
// ids collapse to one bit, object indices are zigzag deltas off the
// previous tuple (a sequential scan costs 5 bits per index), and sizes
// repeat as one bit when unchanged. Object payloads follow the headers
// byte-aligned, each tagged with a two-bit scheme:
//
//	SchemeRaw  — verbatim bytes
//	SchemeLZ   — an LZ block (lz.go); decompressed length from the header
//	SchemeZero — all-zero object, no bytes at all
//
// Compact payloads (after the bit-stream header, A = byte alignment):
//
//	READBATCH-C:  count | tuples(ds?,Δidx,size?)                    | A
//	DATABATCH-C:  count | segs(scheme,rawLen[,compLen])             | A | blobs
//	WRITEBATCH-C: count | tuples(ds?,Δidx[,epoch],kind,
//	              [objSize,extents],scheme[,lens])                  | A | blobs
//	ACKBATCH-C:   count | count rejected bits                       | A
//
// A WRITEBATCH-C tuple is either a full object (kind 0) or a range
// write (kind 1): the object's size, then 1..MaxExtents sorted
// non-overlapping (offset,len) extents — offset delta-encoded from the
// previous extent's end, so adjacent dirty fields cost ~10 bits — whose
// concatenated bytes form the tuple's blob. The server applies ranges
// read-modify-write; every extent is validated against objSize at
// decode time, so a forged offset can never write outside the object.
// WRITEEPOCHBATCH-C adds a u64 epoch varint per tuple, and its
// ACKBATCH-C reply's bitmap marks tuples the server rejected because
// the range's base image was stale (see internal/remote: the client
// treats a set bit as a failed write and lets the replica layer mark
// the member divergent).

// Compact opcodes.
const (
	// OpReadBatchC is READBATCH with a compact payload; answered by
	// OpDataBatchC.
	OpReadBatchC Op = TagBit | 0x0D
	// OpDataBatchC is the compact scatter-gather reply: per-segment
	// compression schemes ahead of the concatenated blobs.
	OpDataBatchC Op = TagBit | 0x0E
	// OpWriteBatchC is WRITEBATCH with compact tuples, each either a
	// full object or a dirty-range write. Acked by OpAckBatchC.
	OpWriteBatchC Op = TagBit | 0x0F
	// OpWriteEpochBatchC is OpWriteBatchC with a per-tuple epoch stamp
	// (the replication path). Acked by OpAckBatchC.
	OpWriteEpochBatchC Op = TagBit | 0x10
	// OpAckBatchC acknowledges a compact write batch; its payload
	// carries a per-tuple rejected bitmap (stale range bases only).
	OpAckBatchC Op = TagBit | 0x11
)

// Feature bits for the compact tier.
const (
	// FeatCompact: the peer understands the compact batch verbs,
	// including range-write tuples. Sessions without the bit use the
	// fixed-width batch verbs — byte-identical to pre-compact peers.
	FeatCompact uint32 = 1 << 6
	// FeatCompress: the peer accepts SchemeLZ segments. Negotiated
	// separately from FeatCompact so compression can be disabled (for
	// benchmarking or CPU-bound deployments) while keeping the packed
	// headers and range writes.
	FeatCompress uint32 = 1 << 7
)

// Segment compression schemes (2 bits on the wire).
const (
	SchemeRaw  uint8 = 0
	SchemeLZ   uint8 = 1
	SchemeZero uint8 = 2
)

// Extent is one modified byte range of an object, used by range-write
// tuples. Extents in a tuple are sorted by Off and non-overlapping.
type Extent struct {
	Off, Len uint32
}

// MaxExtents bounds the extents of one range tuple; dirtier objects
// fall back to full-object writes before hitting it.
const MaxExtents = 512

// maxCompactCount rejects forged tuple counts before decoding: every
// compact tuple costs at least one bit, so a count beyond 8x the
// payload length cannot be satisfied.
func compactCountOK(count uint64, p []byte) bool {
	return count <= uint64(len(p))*8
}

// --- READBATCH-C ---

// readBatchCBound is the worst-case payload size for n read tuples
// (count varint + full-width ds/idx/size varints per tuple).
func readBatchCBound(n int) int { return 6 + 16*n }

// EncodeReadBatchCPooled builds a compact READBATCH frame with a pooled
// payload; the caller should PutBuf it after the frame is written.
func EncodeReadBatchCPooled(tag uint32, reqs []ReadReq) Frame {
	w := NewBitWriter(GetBuf(readBatchCBound(len(reqs))))
	w.Uvarint(uint64(len(reqs)))
	var prev ReadReq
	for i, r := range reqs {
		if i == 0 {
			w.Uvarint(uint64(r.DS))
			w.Uvarint(uint64(r.Idx))
			w.Uvarint(uint64(r.Size))
		} else {
			if r.DS == prev.DS {
				w.WriteBit(true)
			} else {
				w.WriteBit(false)
				w.Uvarint(uint64(r.DS))
			}
			w.Svarint(int64(r.Idx) - int64(prev.Idx) - 1)
			if r.Size == prev.Size {
				w.WriteBit(true)
			} else {
				w.WriteBit(false)
				w.Uvarint(uint64(r.Size))
			}
		}
		prev = r
	}
	p, err := w.Finish()
	if err != nil {
		// The bound above covers every encodable tuple; reaching this
		// means a caller bug, not bad input.
		panic(err)
	}
	return Frame{Op: OpReadBatchC, Tag: tag, Payload: p}
}

// DecodeReadBatchCInto parses a compact READBATCH payload, appending
// into a caller-owned slice.
func DecodeReadBatchCInto(p []byte, reqs []ReadReq) ([]ReadReq, error) {
	r := NewBitReader(p)
	count := r.Uvarint()
	if !compactCountOK(count, p) {
		return nil, fmt.Errorf("rdma: READBATCH-C count %d exceeds payload", count)
	}
	reqs = reqs[:0]
	var prev ReadReq
	for i := uint64(0); i < count; i++ {
		var req ReadReq
		if i == 0 {
			req.DS = uint32(r.Uvarint())
			req.Idx = uint32(r.Uvarint())
			req.Size = uint32(r.Uvarint())
		} else {
			if r.ReadBit() {
				req.DS = prev.DS
			} else {
				req.DS = uint32(r.Uvarint())
			}
			idx := int64(prev.Idx) + 1 + r.Svarint()
			if idx < 0 || idx > 1<<32-1 {
				return nil, fmt.Errorf("rdma: READBATCH-C index delta out of range at tuple %d", i)
			}
			req.Idx = uint32(idx)
			if r.ReadBit() {
				req.Size = prev.Size
			} else {
				req.Size = uint32(r.Uvarint())
			}
		}
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("rdma: truncated READBATCH-C at tuple %d", i)
		}
		if req.Size > MaxFrame {
			return nil, fmt.Errorf("rdma: READBATCH-C size %d exceeds MaxFrame", req.Size)
		}
		reqs = append(reqs, req)
		prev = req
	}
	r.Align()
	if !r.Done() {
		return nil, fmt.Errorf("rdma: READBATCH-C trailing garbage")
	}
	return reqs, nil
}

// --- DATABATCH-C ---

// DataSegC is one decoded segment of a compact DATABATCH: the scheme,
// the decompressed length, and the wire bytes (a subslice of the
// payload; empty for SchemeZero).
type DataSegC struct {
	Scheme uint8
	RawLen uint32
	Data   []byte
}

// DecodeDataBatchCInto parses a compact DATABATCH payload, appending
// into a caller-owned slice (Data fields remain subslices of p).
func DecodeDataBatchCInto(p []byte, segs []DataSegC) ([]DataSegC, error) {
	r := NewBitReader(p)
	count := r.Uvarint()
	if !compactCountOK(count, p) {
		return nil, fmt.Errorf("rdma: DATABATCH-C count %d exceeds payload", count)
	}
	segs = segs[:0]
	for i := uint64(0); i < count; i++ {
		var s DataSegC
		s.Scheme = uint8(r.ReadBits(2))
		raw := r.Uvarint()
		if raw > MaxFrame {
			return nil, fmt.Errorf("rdma: DATABATCH-C segment %d rawLen %d exceeds MaxFrame", i, raw)
		}
		s.RawLen = uint32(raw)
		switch s.Scheme {
		case SchemeRaw, SchemeZero:
		case SchemeLZ:
			comp := r.Uvarint()
			if comp == 0 || comp >= raw || comp > uint64(len(p)) {
				return nil, fmt.Errorf("rdma: DATABATCH-C segment %d bad compressed length %d/%d", i, comp, raw)
			}
			// Stash the wire length until the blob pass below.
			s.Data = p[:comp:comp]
		default:
			return nil, fmt.Errorf("rdma: DATABATCH-C segment %d bad scheme", i)
		}
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("rdma: truncated DATABATCH-C at segment %d", i)
		}
		segs = append(segs, s)
	}
	r.Align()
	for i := range segs {
		var n int
		switch segs[i].Scheme {
		case SchemeRaw:
			n = int(segs[i].RawLen)
		case SchemeLZ:
			n = len(segs[i].Data)
		}
		segs[i].Data = r.Bytes(n)
		if r.Err() != nil {
			return nil, fmt.Errorf("rdma: truncated DATABATCH-C blob %d", i)
		}
	}
	if !r.Done() {
		return nil, fmt.Errorf("rdma: DATABATCH-C trailing garbage")
	}
	return segs, nil
}

// dataSegMeta records one staged segment inside DataBatchCBuilder.
type dataSegMeta struct {
	scheme  uint8
	rawLen  uint32
	wireLen uint32
}

// DataBatchCBuilder assembles a compact DATABATCH reply. The server
// stages each object read into Stage — a slot carved in place out of
// the blob region — classifies it with Add (zero probe, optional
// compression), and emits the frame once per batch. Raw staged objects
// commit with no copy; only compressed ones bounce through scratch.
// All internal buffers are pooled and reused across batches, so a
// per-connection builder is allocation-free in steady state.
//
// A batch that will carry no LZ segments can additionally start with
// Begin: the bit-packed header's size is then exact up front (scheme
// and rawLen cost the same bits for raw and zero segments), so the
// header region is reserved inside the blob buffer and Frame emits the
// payload without copy-assembling it — the staged object bytes ARE the
// frame payload.
type DataBatchCBuilder struct {
	metas   []dataSegMeta
	data    []byte // accumulated wire blobs
	dlen    int
	hdr     int    // reserved header prefix length; 0 = copy mode
	scratch []byte // LZ bounce buffer for staged-in-place segments
}

// Reset drops the previous batch's segments (buffers are retained).
func (b *DataBatchCBuilder) Reset() {
	b.metas = b.metas[:0]
	b.dlen = 0
	b.hdr = 0
}

// uvarintBits is the exact bit cost of Uvarint(v): 5 bits per group.
func uvarintBits(v uint64) int {
	n := 5
	for v >= 16 {
		n += 5
		v >>= 4
	}
	return n
}

// Begin switches the batch to the reserved-header layout: reqs are the
// reads the batch will answer, in order, and every segment must commit
// through Add with tryCompress false (Add enforces this). The exact
// header prefix is reserved in the blob buffer and staged raw objects
// become the frame payload with no assembly copy.
func (b *DataBatchCBuilder) Begin(reqs []ReadReq) {
	bits := uvarintBits(uint64(len(reqs)))
	total := 0
	for _, r := range reqs {
		bits += 2 + uvarintBits(uint64(r.Size))
		total += int(r.Size)
	}
	b.hdr = (bits + 7) / 8
	b.dlen = 0
	b.ensureData(b.hdr + total)
	b.dlen = b.hdr
}

// Release returns the builder's internal buffers to the frame pool.
func (b *DataBatchCBuilder) Release() {
	PutBuf(b.data)
	PutBuf(b.scratch)
	b.data, b.scratch = nil, nil
	b.metas = nil
	b.dlen = 0
	b.hdr = 0
}

// Stage returns an n-byte staging slot for the next object's raw bytes.
// The slot is valid until the next Stage call. It is carved directly
// out of the blob region at the write position, so Add's raw path (the
// common case on an incompressible or compression-off session) commits
// the bytes in place with no copy.
func (b *DataBatchCBuilder) Stage(n int) []byte {
	b.ensureData(n)
	return b.data[b.dlen : b.dlen+n]
}

// stagedInPlace reports whether src is the slot the last Stage call
// returned, i.e. its bytes already sit in the blob region at dlen.
func (b *DataBatchCBuilder) stagedInPlace(src []byte) bool {
	return len(src) > 0 && b.dlen+len(src) <= len(b.data) && &src[0] == &b.data[b.dlen]
}

// ensureData grows the blob region to fit n more bytes. The region is
// always kept at its full capacity so Add can slice ahead of dlen.
func (b *DataBatchCBuilder) ensureData(n int) {
	if b.dlen+n <= len(b.data) {
		return
	}
	nb := GetBuf(max(2*cap(b.data), b.dlen+n))
	nb = nb[:cap(nb)]
	copy(nb, b.data[:b.dlen])
	PutBuf(b.data)
	b.data = nb
}

// Add appends one segment holding src's bytes, choosing the cheapest
// scheme: all-zero objects ship no bytes, and when tryCompress is set
// an LZ pass keeps the compressed form only if it is strictly smaller.
// It returns the chosen scheme and the segment's wire length (the
// compressibility signal the adaptive policy feeds on).
func (b *DataBatchCBuilder) Add(src []byte, tryCompress bool) (scheme uint8, wireLen int) {
	// The reserved-header layout (Begin) fixed the header size on the
	// assumption of raw/zero segments only; an LZ segment would grow it.
	tryCompress = tryCompress && b.hdr == 0
	staged := b.stagedInPlace(src)
	if isAllZero(src) {
		// dlen does not advance: a staged slot is simply abandoned.
		b.metas = append(b.metas, dataSegMeta{scheme: SchemeZero, rawLen: uint32(len(src))})
		return SchemeZero, 0
	}
	if tryCompress {
		if staged {
			// src occupies the blob region at dlen, so LZ output cannot go
			// there directly (the compressor must not overlap its input);
			// compress into scratch and copy back only the (smaller) result.
			bound := CompressBound(len(src))
			if cap(b.scratch) < bound {
				PutBuf(b.scratch)
				b.scratch = GetBuf(bound)
			}
			if n, ok := LZCompress(b.scratch[:bound], src); ok && n < len(src) {
				copy(b.data[b.dlen:], b.scratch[:n])
				b.metas = append(b.metas, dataSegMeta{scheme: SchemeLZ, rawLen: uint32(len(src)), wireLen: uint32(n)})
				b.dlen += n
				return SchemeLZ, n
			}
		} else {
			b.ensureData(CompressBound(len(src)))
			if n, ok := LZCompress(b.data[b.dlen:b.dlen+CompressBound(len(src))], src); ok && n < len(src) {
				b.metas = append(b.metas, dataSegMeta{scheme: SchemeLZ, rawLen: uint32(len(src)), wireLen: uint32(n)})
				b.dlen += n
				return SchemeLZ, n
			}
		}
	}
	if !staged {
		b.ensureData(len(src))
		copy(b.data[b.dlen:], src)
	}
	b.dlen += len(src)
	b.metas = append(b.metas, dataSegMeta{scheme: SchemeRaw, rawLen: uint32(len(src)), wireLen: uint32(len(src))})
	return SchemeRaw, len(src)
}

// Frame assembles the compact DATABATCH reply with a pooled payload;
// the caller should PutBuf the payload after writing the frame. A
// Begin batch hands off the blob buffer itself — the header bits are
// written into the reserved prefix and the staged bytes ship as-is.
func (b *DataBatchCBuilder) Frame(tag uint32) (Frame, error) {
	if b.hdr > 0 {
		if b.dlen > MaxFrame {
			return Frame{}, fmt.Errorf("rdma: DATABATCH-C too large (%d bytes)", b.dlen)
		}
		w := NewBitWriter(b.data[:b.hdr])
		w.Uvarint(uint64(len(b.metas)))
		for _, m := range b.metas {
			w.WriteBits(uint64(m.scheme), 2)
			w.Uvarint(uint64(m.rawLen))
		}
		w.Align()
		if err := w.Err(); err != nil {
			return Frame{}, err
		}
		if w.Len() != b.hdr {
			return Frame{}, fmt.Errorf("rdma: DATABATCH-C reserved header %d bytes, wrote %d (Begin/Add mismatch)", b.hdr, w.Len())
		}
		p := b.data[:b.dlen]
		// The caller PutBufs the payload, so the builder must forget
		// the buffer; the next batch draws a fresh one from the pool.
		b.data = nil
		b.dlen, b.hdr = 0, 0
		return Frame{Op: OpDataBatchC, Tag: tag, Payload: p}, nil
	}
	hdrBound := 6 + 13*len(b.metas)
	if hdrBound+b.dlen > MaxFrame {
		return Frame{}, fmt.Errorf("rdma: DATABATCH-C too large (%d bytes)", hdrBound+b.dlen)
	}
	w := NewBitWriter(GetBuf(hdrBound + b.dlen))
	w.Uvarint(uint64(len(b.metas)))
	for _, m := range b.metas {
		w.WriteBits(uint64(m.scheme), 2)
		w.Uvarint(uint64(m.rawLen))
		if m.scheme == SchemeLZ {
			w.Uvarint(uint64(m.wireLen))
		}
	}
	w.Align()
	copy(w.Bytes(b.dlen), b.data[:b.dlen])
	p, err := w.Finish()
	if err != nil {
		return Frame{}, err
	}
	return Frame{Op: OpDataBatchC, Tag: tag, Payload: p}, nil
}

// --- WRITEBATCH-C / WRITEEPOCHBATCH-C ---

// WriteReqC is one tuple of a compact write batch. A nil Extents means
// a full-object write of RawLen bytes; otherwise the tuple is a range
// write over an ObjSize-byte object and Data carries the extents'
// bytes concatenated. Data always holds the wire form (compressed when
// Scheme is SchemeLZ, absent when SchemeZero); RawLen is the
// decompressed length.
type WriteReqC struct {
	DS, Idx uint32
	Epoch   uint64 // epoch batches only
	ObjSize uint32 // range tuples only
	Extents []Extent
	Scheme  uint8
	RawLen  uint32
	Data    []byte

	nExt int // decode scratch: extent count before the arena fixup
}

// WriteReqCBound is the worst-case payload contribution of one tuple
// with dataLen wire bytes and nExt extents — what the flusher sums
// against MaxFrame before closing a batch. Compression only shrinks
// dataLen, so bounding with the raw length is safe.
func WriteReqCBound(dataLen, nExt int, epoch bool) int {
	n := 22 + dataLen // ds + idx + kind/scheme bits + lengths
	if epoch {
		n += 10
	}
	if nExt > 0 {
		n += 12 + 10*nExt
	}
	return n
}

// WriteBatchCSize bounds the payload for reqs (see WriteReqCBound).
func WriteBatchCSize(reqs []WriteReqC, epoch bool) int {
	n := 6
	for i := range reqs {
		n += WriteReqCBound(len(reqs[i].Data), len(reqs[i].Extents), epoch)
	}
	return n
}

// EncodeWriteBatchCPooled builds a compact WRITEBATCH (or, with epoch
// set, WRITEEPOCHBATCH) frame with a pooled payload.
func EncodeWriteBatchCPooled(tag uint32, reqs []WriteReqC, epoch bool) (Frame, error) {
	bound := WriteBatchCSize(reqs, epoch)
	if bound > MaxFrame+64 {
		return Frame{}, fmt.Errorf("rdma: WRITEBATCH-C too large (%d bytes)", bound)
	}
	w := NewBitWriter(GetBuf(bound))
	w.Uvarint(uint64(len(reqs)))
	var prevDS, prevIdx uint32
	for i := range reqs {
		r := &reqs[i]
		if i == 0 {
			w.Uvarint(uint64(r.DS))
			w.Uvarint(uint64(r.Idx))
		} else {
			if r.DS == prevDS {
				w.WriteBit(true)
			} else {
				w.WriteBit(false)
				w.Uvarint(uint64(r.DS))
			}
			w.Svarint(int64(r.Idx) - int64(prevIdx) - 1)
		}
		prevDS, prevIdx = r.DS, r.Idx
		if epoch {
			w.Uvarint(r.Epoch)
		}
		if r.Extents == nil {
			w.WriteBit(false)
			w.WriteBits(uint64(r.Scheme), 2)
			w.Uvarint(uint64(r.RawLen))
		} else {
			w.WriteBit(true)
			w.Uvarint(uint64(r.ObjSize))
			w.Uvarint(uint64(len(r.Extents)))
			end := uint32(0)
			for k, e := range r.Extents {
				if k == 0 {
					w.Uvarint(uint64(e.Off))
				} else {
					w.Uvarint(uint64(e.Off - end))
				}
				w.Uvarint(uint64(e.Len - 1))
				end = e.Off + e.Len
			}
			w.WriteBits(uint64(r.Scheme), 2)
		}
		if r.Scheme == SchemeLZ {
			w.Uvarint(uint64(len(r.Data)))
		}
	}
	w.Align()
	for i := range reqs {
		if n := len(reqs[i].Data); n > 0 {
			copy(w.Bytes(n), reqs[i].Data)
		}
	}
	p, err := w.Finish()
	if err != nil {
		return Frame{}, err
	}
	if len(p) > MaxFrame {
		PutBuf(p)
		return Frame{}, fmt.Errorf("rdma: WRITEBATCH-C too large (%d bytes)", len(p))
	}
	op := OpWriteBatchC
	if epoch {
		op = OpWriteEpochBatchC
	}
	return Frame{Op: op, Tag: tag, Payload: p}, nil
}

// DecodeWriteBatchCInto parses a compact write batch, appending tuples
// into reqs and extents into the exts arena (tuples' Extents fields
// are subslices of the returned arena; Data fields are subslices of
// p). Every range extent is validated against its tuple's object size.
func DecodeWriteBatchCInto(p []byte, reqs []WriteReqC, exts []Extent, epoch bool) ([]WriteReqC, []Extent, error) {
	r := NewBitReader(p)
	count := r.Uvarint()
	if !compactCountOK(count, p) {
		return nil, exts, fmt.Errorf("rdma: WRITEBATCH-C count %d exceeds payload", count)
	}
	reqs = reqs[:0]
	exts = exts[:0]
	var prevDS, prevIdx uint32
	for i := uint64(0); i < count; i++ {
		var req WriteReqC
		if i == 0 {
			req.DS = uint32(r.Uvarint())
			req.Idx = uint32(r.Uvarint())
		} else {
			if r.ReadBit() {
				req.DS = prevDS
			} else {
				req.DS = uint32(r.Uvarint())
			}
			idx := int64(prevIdx) + 1 + r.Svarint()
			if idx < 0 || idx > 1<<32-1 {
				return nil, exts, fmt.Errorf("rdma: WRITEBATCH-C index delta out of range at tuple %d", i)
			}
			req.Idx = uint32(idx)
		}
		prevDS, prevIdx = req.DS, req.Idx
		if epoch {
			req.Epoch = r.Uvarint()
		}
		if r.ReadBit() {
			// Range tuple.
			objSize := r.Uvarint()
			if objSize == 0 || objSize > MaxFrame {
				return nil, exts, fmt.Errorf("rdma: WRITEBATCH-C tuple %d bad object size %d", i, objSize)
			}
			req.ObjSize = uint32(objSize)
			nExt := r.Uvarint()
			if nExt == 0 || nExt > MaxExtents {
				return nil, exts, fmt.Errorf("rdma: WRITEBATCH-C tuple %d bad extent count %d", i, nExt)
			}
			req.nExt = int(nExt)
			end := uint64(0)
			total := uint64(0)
			for k := uint64(0); k < nExt; k++ {
				off := end + r.Uvarint()
				l := r.Uvarint() + 1
				if r.Err() != nil {
					return nil, exts, fmt.Errorf("rdma: truncated WRITEBATCH-C at tuple %d", i)
				}
				if off+l > objSize {
					return nil, exts, fmt.Errorf("rdma: WRITEBATCH-C tuple %d extent [%d,+%d) exceeds object size %d",
						i, off, l, objSize)
				}
				exts = append(exts, Extent{Off: uint32(off), Len: uint32(l)})
				end = off + l
				total += l
			}
			req.RawLen = uint32(total)
			req.Scheme = uint8(r.ReadBits(2))
		} else {
			req.Scheme = uint8(r.ReadBits(2))
			raw := r.Uvarint()
			if raw > MaxFrame {
				return nil, exts, fmt.Errorf("rdma: WRITEBATCH-C tuple %d rawLen %d exceeds MaxFrame", i, raw)
			}
			req.RawLen = uint32(raw)
		}
		switch req.Scheme {
		case SchemeRaw, SchemeZero:
		case SchemeLZ:
			comp := r.Uvarint()
			if comp == 0 || comp >= uint64(req.RawLen) || comp > uint64(len(p)) {
				return nil, exts, fmt.Errorf("rdma: WRITEBATCH-C tuple %d bad compressed length %d/%d",
					i, comp, req.RawLen)
			}
			// Stash the wire length until the blob pass below.
			req.Data = p[:comp:comp]
		default:
			return nil, exts, fmt.Errorf("rdma: WRITEBATCH-C tuple %d bad scheme", i)
		}
		if err := r.Err(); err != nil {
			return nil, exts, fmt.Errorf("rdma: truncated WRITEBATCH-C at tuple %d", i)
		}
		reqs = append(reqs, req)
	}
	r.Align()
	for i := range reqs {
		var n int
		switch reqs[i].Scheme {
		case SchemeRaw:
			n = int(reqs[i].RawLen)
		case SchemeLZ:
			n = len(reqs[i].Data)
		}
		reqs[i].Data = r.Bytes(n)
		if r.Err() != nil {
			return nil, exts, fmt.Errorf("rdma: truncated WRITEBATCH-C blob %d", i)
		}
	}
	if !r.Done() {
		return nil, exts, fmt.Errorf("rdma: WRITEBATCH-C trailing garbage")
	}
	// The exts arena may have been reallocated by append; fix up the
	// tuples' subslices in a final pass.
	off := 0
	for i := range reqs {
		if n := reqs[i].nExt; n > 0 {
			reqs[i].Extents = exts[off : off+n : off+n]
			off += n
		}
	}
	return reqs, exts, nil
}

// --- ACKBATCH-C ---

// EncodeAckBatchC builds the compact ACKBATCH reply: the tuple count
// plus one rejected bit per tuple (rejected is a bitmap in uint64
// words; nil means none rejected). The payload is pooled.
func EncodeAckBatchC(tag uint32, count int, rejected []uint64) Frame {
	w := NewBitWriter(GetBuf(6 + (count+7)/8 + 8))
	w.Uvarint(uint64(count))
	for i := 0; i < count; i++ {
		bit := uint64(0)
		if rejected != nil && rejected[i/64]>>(i%64)&1 != 0 {
			bit = 1
		}
		w.WriteBits(bit, 1)
	}
	p, err := w.Finish()
	if err != nil {
		panic(err)
	}
	return Frame{Op: OpAckBatchC, Tag: tag, Payload: p}
}

// DecodeAckBatchC parses a compact ACKBATCH payload into the tuple
// count and the rejected bitmap, appending words into a caller-owned
// scratch slice (returned grown for reuse); any reports whether at
// least one tuple was rejected.
func DecodeAckBatchC(p []byte, scratch []uint64) (count int, rejected []uint64, any bool, err error) {
	r := NewBitReader(p)
	n := r.Uvarint()
	if !compactCountOK(n, p) {
		return 0, scratch, false, fmt.Errorf("rdma: ACKBATCH-C count %d exceeds payload", n)
	}
	scratch = scratch[:0]
	for i := uint64(0); i < n; i++ {
		if i%64 == 0 {
			scratch = append(scratch, 0)
		}
		if r.ReadBit() {
			scratch[i/64] |= 1 << (i % 64)
			any = true
		}
	}
	r.Align()
	if !r.Done() {
		return 0, scratch, false, fmt.Errorf("rdma: ACKBATCH-C trailing garbage")
	}
	return int(n), scratch, any, nil
}
