package rdma

import (
	"bytes"
	"errors"
	"testing"
)

// frameBytes serializes f in plain or checksummed framing for seeding.
func frameBytes(t *testing.F, f Frame, crc bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	var err error
	if crc {
		err = WriteFrameCRC(&buf, f)
	} else {
		err = WriteFrame(&buf, f)
	}
	if err != nil {
		t.Fatalf("seed encode: %v", err)
	}
	return buf.Bytes()
}

// FuzzFrameDecode feeds arbitrary byte streams to both frame decoders
// (plain and CRC-trailer framing) and checks the invariants every
// successfully decoded frame must satisfy:
//
//   - neither decoder panics, whatever the input;
//   - a decoded frame re-encodes and decodes back identically (both
//     framings) — the codec is a bijection on its valid range;
//   - a corrupted CRC trailer is always detected (ErrCRC);
//   - the per-opcode payload decoders never panic, and on success
//     re-encode byte-identically.
func FuzzFrameDecode(f *testing.F) {
	// Valid frames across the opcode space: untagged, tagged, empty and
	// non-empty payloads, batch encodings.
	seeds := []Frame{
		EncodeRead(1, 2, 64),
		EncodeWrite(3, 4, []byte("payload bytes")),
		{Op: OpPing},
		PingFeatures(FeatBatch | FeatCRC),
		{Op: OpData, Payload: bytes.Repeat([]byte{0xAB}, 100)},
		{Op: OpOK},
		ErrFrame("remote store: no such object"),
		EncodeReadBatch(7, []ReadReq{{DS: 1, Idx: 2, Size: 32}, {DS: 1, Idx: 3, Size: 32}}),
		{Op: OpWriteTag, Tag: 9, Payload: EncodeWrite(1, 5, []byte("x")).Payload},
		{Op: OpAckTag, Tag: 9},
		ErrTagFrame(11, "boom"),
		EncodeAckBatch(9, 2),
	}
	if wb, err := EncodeWriteBatch(8, []WriteReq{
		{DS: 1, Idx: 2, Data: []byte("first object")},
		{DS: 1, Idx: 3, Data: nil},
		{DS: 2, Idx: 0, Data: bytes.Repeat([]byte{0x5A}, 64)},
	}); err == nil {
		seeds = append(seeds, wb)
	}
	if db, err := EncodeDataBatch(7, [][]byte{[]byte("aaaa"), []byte("bb"), nil}); err == nil {
		seeds = append(seeds, db)
	}
	// Epoch-stamped verbs (the FeatEpoch extension): write tuples with
	// the u64 stamp spliced in, the READBATCH-shaped request under its
	// own opcode, and the stamped scatter-gather reply — including a
	// zero-epoch (absent object) segment and an empty payload.
	seeds = append(seeds, EncodeReadEpochBatch(13, []ReadReq{{DS: 2, Idx: 7, Size: 16}, {DS: 2, Idx: 8, Size: 0}}))
	if wb, err := EncodeWriteEpochBatch(14, []WriteEpochReq{
		{DS: 1, Idx: 2, Epoch: 1, Data: []byte("epoch one")},
		{DS: 1, Idx: 3, Epoch: 1<<63 + 42, Data: nil},
		{DS: 3, Idx: 0, Epoch: 7, Data: bytes.Repeat([]byte{0xC3}, 48)},
	}); err == nil {
		seeds = append(seeds, wb)
	}
	if db, err := EncodeDataEpochBatch(15, []EpochSeg{
		{Epoch: 9, Data: []byte("stamped")},
		{Epoch: 0, Data: nil},
	}); err == nil {
		seeds = append(seeds, db)
	}
	// Traversal-offload verbs (the FeatChase extension): programs with
	// and without field masks, and replies across the status space —
	// multi-hop done, budget-exhausted, and an empty path.
	seeds = append(seeds, EncodeChaseBatch(16, []ChaseReq{
		{DS: 1, Start: 0, ObjSize: 64, NextOff: 8, Hops: 16},
		{DS: 2, Start: 7, ObjSize: 32, NextOff: 24, Hops: 1, Mask: 0x9},
	}))
	if cd, err := EncodeChaseData(17, []ChaseResult{
		{Status: ChaseDone, Final: 0xFEED, Hops: []ChaseHop{
			{Idx: 0, Data: bytes.Repeat([]byte{0x6C}, 64)},
			{Idx: 3, Data: bytes.Repeat([]byte{0x6D}, 64)},
		}},
		{Status: ChaseHops, Final: chaseAddrTagBit | 2<<chaseAddrDSShift | 96,
			Hops: []ChaseHop{{Idx: 9, Data: bytes.Repeat([]byte{0x6E}, 32)}}},
		{Status: ChaseDone, Final: 0, Hops: nil},
	}); err == nil {
		seeds = append(seeds, cd)
	}
	// Compact-tier verbs (the FeatCompact/FeatCompress extension):
	// delta-encoded read batches, mixed-scheme data batches, write
	// batches with full, zero, compressed and range tuples, and the
	// rejected-bitmap ack.
	seeds = append(seeds, EncodeReadBatchCPooled(18, []ReadReq{
		{DS: 2, Idx: 100, Size: 4096}, {DS: 2, Idx: 101, Size: 4096},
		{DS: 5, Idx: 3, Size: 64}, {DS: 5, Idx: 1, Size: 0},
	}))
	{
		var b DataBatchCBuilder
		b.Add(make([]byte, 256), true)                              // zero
		b.Add(bytes.Repeat([]byte("compressible seed "), 32), true) // lz
		b.Add([]byte{9, 1, 1, 2, 3, 5, 8, 13}, true)                // raw
		if db, err := b.Frame(19); err == nil {
			seeds = append(seeds, db)
		}
		b.Release()
	}
	{
		body := bytes.Repeat([]byte("write seed body "), 24)
		comp := make([]byte, CompressBound(len(body)))
		n, _ := LZCompress(comp, body)
		reqs := []WriteReqC{
			{DS: 1, Idx: 40, Epoch: 6, Scheme: SchemeRaw, RawLen: 8, Data: []byte("8 bytes!")},
			{DS: 1, Idx: 41, Epoch: 7, Scheme: SchemeZero, RawLen: 1024},
			{DS: 3, Idx: 0, Epoch: 1, Scheme: SchemeLZ, RawLen: uint32(len(body)), Data: comp[:n]},
			{DS: 3, Idx: 2, Epoch: 8, ObjSize: 4096, Scheme: SchemeRaw, RawLen: 20,
				Extents: []Extent{{Off: 0, Len: 16}, {Off: 128, Len: 4}},
				Data:    make([]byte, 20)},
		}
		for _, epoch := range []bool{false, true} {
			if wb, err := EncodeWriteBatchCPooled(20, reqs, epoch); err == nil {
				seeds = append(seeds, wb)
			}
		}
		// A bogus range (offset+len > objSize): the encoder trusts its
		// caller, so this seeds the decoder's rejection path.
		if wb, err := EncodeWriteBatchCPooled(21, []WriteReqC{{
			DS: 1, Idx: 0, ObjSize: 32, Scheme: SchemeRaw, RawLen: 16,
			Extents: []Extent{{Off: 24, Len: 16}}, Data: make([]byte, 16),
		}}, false); err == nil {
			seeds = append(seeds, wb)
		}
	}
	seeds = append(seeds, EncodeAckBatchC(22, 70, []uint64{1 << 3, 1 << 5}))
	// Truncated compact bit streams: a write batch cut mid-header and a
	// read batch cut mid-varint.
	if wb, err := EncodeWriteBatchCPooled(23, []WriteReqC{
		{DS: 9, Idx: 9, Scheme: SchemeRaw, RawLen: 64, Data: make([]byte, 64)},
	}, true); err == nil {
		seeds = append(seeds, Frame{Op: wb.Op, Tag: wb.Tag, Payload: wb.Payload[:3]})
	}
	{
		rb := EncodeReadBatchCPooled(24, []ReadReq{{DS: 1, Idx: 2, Size: 3}, {DS: 1, Idx: 9, Size: 3}})
		seeds = append(seeds, Frame{Op: rb.Op, Tag: rb.Tag, Payload: rb.Payload[:len(rb.Payload)-1]})
	}
	for _, fr := range seeds {
		f.Add(frameBytes(f, fr, false))
		f.Add(frameBytes(f, fr, true))
	}
	// Adversarial shapes: truncated header, truncated payload, oversized
	// length prefix, tagged opcode with missing tag, trailing garbage.
	f.Add([]byte{})
	f.Add([]byte{0x0C, 0x00, 0x00})                                  // torn header
	f.Add([]byte{0x0C, 0x00, 0x00, 0x00, byte(OpRead), 1, 2, 3})     // torn payload
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, byte(OpData)})              // oversized length
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, byte(OpReadBatch)})         // tagged, no tag bytes
	f.Add(append(frameBytes(f, Frame{Op: OpOK}, false), 0xDE, 0xAD)) // trailing garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		// The CRC decoder must tolerate the same arbitrary inputs; its
		// result is checked only through the round-trip below.
		if _, err := ReadFrameCRC(bytes.NewReader(data)); err != nil {
			_ = err
		}

		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(fr.Payload) > MaxFrame {
			t.Fatalf("decoded frame exceeds MaxFrame: %d bytes", len(fr.Payload))
		}
		if !fr.Op.Tagged() && fr.Tag != 0 {
			t.Fatalf("untagged frame %s decoded with tag %d", fr.Op, fr.Tag)
		}

		// Plain-framing round trip.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if got.Op != fr.Op || got.Tag != fr.Tag || !bytes.Equal(got.Payload, fr.Payload) {
			t.Fatalf("round trip mismatch: %+v != %+v", got, fr)
		}

		// CRC-framing round trip, and trailer corruption detection.
		buf.Reset()
		if err := WriteFrameCRC(&buf, fr); err != nil {
			t.Fatalf("crc re-encode: %v", err)
		}
		enc := append([]byte(nil), buf.Bytes()...)
		got, err = ReadFrameCRC(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("crc re-decode: %v", err)
		}
		if got.Op != fr.Op || got.Tag != fr.Tag || !bytes.Equal(got.Payload, fr.Payload) {
			t.Fatalf("crc round trip mismatch: %+v != %+v", got, fr)
		}
		enc[len(enc)-1] ^= 0xFF // any trailer bit flip must be caught
		if _, err := ReadFrameCRC(bytes.NewReader(enc)); !errors.Is(err, ErrCRC) {
			t.Fatalf("corrupted trailer not detected: err=%v", err)
		}

		// Payload decoders: no panics, and success implies an identical
		// re-encoding.
		switch fr.Op {
		case OpRead:
			if r, err := DecodeRead(fr.Payload); err == nil {
				if re := EncodeRead(r.DS, r.Idx, r.Size); !bytes.Equal(re.Payload, fr.Payload) {
					t.Fatalf("READ re-encode mismatch")
				}
			}
		case OpWrite, OpWriteTag:
			if r, err := DecodeWrite(fr.Payload); err == nil {
				if re := EncodeWrite(r.DS, r.Idx, r.Data); !bytes.Equal(re.Payload, fr.Payload) {
					t.Fatalf("WRITE re-encode mismatch")
				}
			}
		case OpReadBatch:
			if reqs, err := DecodeReadBatch(fr.Payload); err == nil {
				if re := EncodeReadBatch(fr.Tag, reqs); !bytes.Equal(re.Payload, fr.Payload) {
					t.Fatalf("READBATCH re-encode mismatch")
				}
			}
		case OpDataBatch:
			if segs, err := DecodeDataBatch(fr.Payload); err == nil {
				re, err := EncodeDataBatch(fr.Tag, segs)
				if err != nil {
					t.Fatalf("DATABATCH re-encode: %v", err)
				}
				if !bytes.Equal(re.Payload, fr.Payload) {
					t.Fatalf("DATABATCH re-encode mismatch")
				}
			}
		case OpWriteBatch:
			if reqs, err := DecodeWriteBatch(fr.Payload); err == nil {
				re, err := EncodeWriteBatch(fr.Tag, reqs)
				if err != nil {
					t.Fatalf("WRITEBATCH re-encode: %v", err)
				}
				if !bytes.Equal(re.Payload, fr.Payload) {
					t.Fatalf("WRITEBATCH re-encode mismatch")
				}
			}
		case OpWriteEpochBatch:
			if reqs, err := DecodeWriteEpochBatch(fr.Payload); err == nil {
				re, err := EncodeWriteEpochBatch(fr.Tag, reqs)
				if err != nil {
					t.Fatalf("WRITEEPOCHBATCH re-encode: %v", err)
				}
				if !bytes.Equal(re.Payload, fr.Payload) {
					t.Fatalf("WRITEEPOCHBATCH re-encode mismatch")
				}
			}
		case OpReadEpochBatch:
			if reqs, err := DecodeReadEpochBatch(fr.Payload); err == nil {
				if re := EncodeReadEpochBatch(fr.Tag, reqs); !bytes.Equal(re.Payload, fr.Payload) {
					t.Fatalf("READEPOCHBATCH re-encode mismatch")
				}
			}
		case OpDataEpochBatch:
			if segs, err := DecodeDataEpochBatch(fr.Payload); err == nil {
				re, err := EncodeDataEpochBatch(fr.Tag, segs)
				if err != nil {
					t.Fatalf("DATAEPOCHBATCH re-encode: %v", err)
				}
				if !bytes.Equal(re.Payload, fr.Payload) {
					t.Fatalf("DATAEPOCHBATCH re-encode mismatch")
				}
			}
		case OpAckBatch:
			if n, err := DecodeAckBatch(fr.Payload); err == nil {
				if re := EncodeAckBatch(fr.Tag, n); !bytes.Equal(re.Payload, fr.Payload) {
					t.Fatalf("ACKBATCH re-encode mismatch")
				}
			}
		case OpChaseBatch:
			if reqs, err := DecodeChaseBatch(fr.Payload); err == nil {
				if re := EncodeChaseBatch(fr.Tag, reqs); !bytes.Equal(re.Payload, fr.Payload) {
					t.Fatalf("CHASEBATCH re-encode mismatch")
				}
				// Programs a server would run must survive Validate without
				// panicking; accepted ones must carry a bounded walk.
				for _, r := range reqs {
					if r.Validate() == nil && r.Hops == 0 {
						t.Fatalf("validated program with zero hop budget: %+v", r)
					}
				}
			}
		case OpChaseData:
			if res, err := DecodeChaseData(fr.Payload); err == nil {
				re, err := EncodeChaseData(fr.Tag, res)
				if err != nil {
					t.Fatalf("CHASEDATA re-encode: %v", err)
				}
				if !bytes.Equal(re.Payload, fr.Payload) {
					t.Fatalf("CHASEDATA re-encode mismatch")
				}
			}
		case OpPing, OpOK:
			DecodeFeatures(fr.Payload)
		case OpReadBatchC:
			// The compact encodings are non-canonical (a repeated DS may
			// arrive as either the same-DS bit or an explicit varint), so
			// the invariant is semantic: decode → encode → decode is an
			// identity on the decoded form.
			if reqs, err := DecodeReadBatchCInto(fr.Payload, nil); err == nil {
				re := EncodeReadBatchCPooled(fr.Tag, reqs)
				got, err := DecodeReadBatchCInto(re.Payload, nil)
				if err != nil {
					t.Fatalf("READBATCH-C re-decode: %v", err)
				}
				if len(got) != len(reqs) {
					t.Fatalf("READBATCH-C count changed: %d != %d", len(got), len(reqs))
				}
				for i := range reqs {
					if got[i] != reqs[i] {
						t.Fatalf("READBATCH-C tuple %d changed: %+v != %+v", i, got[i], reqs[i])
					}
				}
				PutBuf(re.Payload)
			}
		case OpDataBatchC:
			if segs, err := DecodeDataBatchCInto(fr.Payload, nil); err == nil {
				for i, s := range segs {
					if s.Scheme == SchemeLZ {
						// Accepted compressed segments must decompress to
						// exactly RawLen bytes or fail cleanly — no panic,
						// no out-of-bounds write.
						out := make([]byte, s.RawLen)
						_ = LZDecompress(out, s.Data)
						_ = i
					}
				}
			}
		case OpWriteBatchC, OpWriteEpochBatchC:
			epoch := fr.Op == OpWriteEpochBatchC
			if reqs, _, err := DecodeWriteBatchCInto(fr.Payload, nil, nil, epoch); err == nil {
				for i := range reqs {
					r := &reqs[i]
					// Decode-accepted extents must stay inside the object.
					for _, e := range r.Extents {
						if uint64(e.Off)+uint64(e.Len) > uint64(r.ObjSize) {
							t.Fatalf("WRITEBATCH-C accepted extent outside object: %+v objSize=%d", e, r.ObjSize)
						}
					}
					if r.Scheme == SchemeLZ {
						out := make([]byte, r.RawLen)
						_ = LZDecompress(out, r.Data)
					}
				}
				re, err := EncodeWriteBatchCPooled(fr.Tag, reqs, epoch)
				if err != nil {
					t.Fatalf("WRITEBATCH-C re-encode: %v", err)
				}
				got, _, err := DecodeWriteBatchCInto(re.Payload, nil, nil, epoch)
				if err != nil {
					t.Fatalf("WRITEBATCH-C re-decode: %v", err)
				}
				if len(got) != len(reqs) {
					t.Fatalf("WRITEBATCH-C count changed: %d != %d", len(got), len(reqs))
				}
				for i := range reqs {
					w, g := &reqs[i], &got[i]
					if g.DS != w.DS || g.Idx != w.Idx || g.Epoch != w.Epoch ||
						g.Scheme != w.Scheme || g.RawLen != w.RawLen ||
						g.ObjSize != w.ObjSize || len(g.Extents) != len(w.Extents) ||
						!bytes.Equal(g.Data, w.Data) {
						t.Fatalf("WRITEBATCH-C tuple %d changed", i)
					}
					for k := range w.Extents {
						if g.Extents[k] != w.Extents[k] {
							t.Fatalf("WRITEBATCH-C tuple %d extent %d changed", i, k)
						}
					}
				}
				PutBuf(re.Payload)
			}
		case OpAckBatchC:
			if count, rej, any, err := DecodeAckBatchC(fr.Payload, nil); err == nil {
				var bm []uint64
				if any {
					bm = append([]uint64(nil), rej...)
				}
				re := EncodeAckBatchC(fr.Tag, count, bm)
				count2, rej2, any2, err := DecodeAckBatchC(re.Payload, nil)
				if err != nil || count2 != count || any2 != any {
					t.Fatalf("ACKBATCH-C changed: count %d->%d any %v->%v err=%v",
						count, count2, any, any2, err)
				}
				if any {
					for i := range bm {
						if rej2[i] != bm[i] {
							t.Fatalf("ACKBATCH-C bitmap word %d changed", i)
						}
					}
				}
				PutBuf(re.Payload)
			}
		}
	})
}
