package rdma

import (
	"bytes"
	"errors"
	"testing"
)

// frameBytes serializes f in plain or checksummed framing for seeding.
func frameBytes(t *testing.F, f Frame, crc bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	var err error
	if crc {
		err = WriteFrameCRC(&buf, f)
	} else {
		err = WriteFrame(&buf, f)
	}
	if err != nil {
		t.Fatalf("seed encode: %v", err)
	}
	return buf.Bytes()
}

// FuzzFrameDecode feeds arbitrary byte streams to both frame decoders
// (plain and CRC-trailer framing) and checks the invariants every
// successfully decoded frame must satisfy:
//
//   - neither decoder panics, whatever the input;
//   - a decoded frame re-encodes and decodes back identically (both
//     framings) — the codec is a bijection on its valid range;
//   - a corrupted CRC trailer is always detected (ErrCRC);
//   - the per-opcode payload decoders never panic, and on success
//     re-encode byte-identically.
func FuzzFrameDecode(f *testing.F) {
	// Valid frames across the opcode space: untagged, tagged, empty and
	// non-empty payloads, batch encodings.
	seeds := []Frame{
		EncodeRead(1, 2, 64),
		EncodeWrite(3, 4, []byte("payload bytes")),
		{Op: OpPing},
		PingFeatures(FeatBatch | FeatCRC),
		{Op: OpData, Payload: bytes.Repeat([]byte{0xAB}, 100)},
		{Op: OpOK},
		ErrFrame("remote store: no such object"),
		EncodeReadBatch(7, []ReadReq{{DS: 1, Idx: 2, Size: 32}, {DS: 1, Idx: 3, Size: 32}}),
		{Op: OpWriteTag, Tag: 9, Payload: EncodeWrite(1, 5, []byte("x")).Payload},
		{Op: OpAckTag, Tag: 9},
		ErrTagFrame(11, "boom"),
		EncodeAckBatch(9, 2),
	}
	if wb, err := EncodeWriteBatch(8, []WriteReq{
		{DS: 1, Idx: 2, Data: []byte("first object")},
		{DS: 1, Idx: 3, Data: nil},
		{DS: 2, Idx: 0, Data: bytes.Repeat([]byte{0x5A}, 64)},
	}); err == nil {
		seeds = append(seeds, wb)
	}
	if db, err := EncodeDataBatch(7, [][]byte{[]byte("aaaa"), []byte("bb"), nil}); err == nil {
		seeds = append(seeds, db)
	}
	// Epoch-stamped verbs (the FeatEpoch extension): write tuples with
	// the u64 stamp spliced in, the READBATCH-shaped request under its
	// own opcode, and the stamped scatter-gather reply — including a
	// zero-epoch (absent object) segment and an empty payload.
	seeds = append(seeds, EncodeReadEpochBatch(13, []ReadReq{{DS: 2, Idx: 7, Size: 16}, {DS: 2, Idx: 8, Size: 0}}))
	if wb, err := EncodeWriteEpochBatch(14, []WriteEpochReq{
		{DS: 1, Idx: 2, Epoch: 1, Data: []byte("epoch one")},
		{DS: 1, Idx: 3, Epoch: 1<<63 + 42, Data: nil},
		{DS: 3, Idx: 0, Epoch: 7, Data: bytes.Repeat([]byte{0xC3}, 48)},
	}); err == nil {
		seeds = append(seeds, wb)
	}
	if db, err := EncodeDataEpochBatch(15, []EpochSeg{
		{Epoch: 9, Data: []byte("stamped")},
		{Epoch: 0, Data: nil},
	}); err == nil {
		seeds = append(seeds, db)
	}
	// Traversal-offload verbs (the FeatChase extension): programs with
	// and without field masks, and replies across the status space —
	// multi-hop done, budget-exhausted, and an empty path.
	seeds = append(seeds, EncodeChaseBatch(16, []ChaseReq{
		{DS: 1, Start: 0, ObjSize: 64, NextOff: 8, Hops: 16},
		{DS: 2, Start: 7, ObjSize: 32, NextOff: 24, Hops: 1, Mask: 0x9},
	}))
	if cd, err := EncodeChaseData(17, []ChaseResult{
		{Status: ChaseDone, Final: 0xFEED, Hops: []ChaseHop{
			{Idx: 0, Data: bytes.Repeat([]byte{0x6C}, 64)},
			{Idx: 3, Data: bytes.Repeat([]byte{0x6D}, 64)},
		}},
		{Status: ChaseHops, Final: chaseAddrTagBit | 2<<chaseAddrDSShift | 96,
			Hops: []ChaseHop{{Idx: 9, Data: bytes.Repeat([]byte{0x6E}, 32)}}},
		{Status: ChaseDone, Final: 0, Hops: nil},
	}); err == nil {
		seeds = append(seeds, cd)
	}
	for _, fr := range seeds {
		f.Add(frameBytes(f, fr, false))
		f.Add(frameBytes(f, fr, true))
	}
	// Adversarial shapes: truncated header, truncated payload, oversized
	// length prefix, tagged opcode with missing tag, trailing garbage.
	f.Add([]byte{})
	f.Add([]byte{0x0C, 0x00, 0x00})                                  // torn header
	f.Add([]byte{0x0C, 0x00, 0x00, 0x00, byte(OpRead), 1, 2, 3})     // torn payload
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, byte(OpData)})              // oversized length
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, byte(OpReadBatch)})         // tagged, no tag bytes
	f.Add(append(frameBytes(f, Frame{Op: OpOK}, false), 0xDE, 0xAD)) // trailing garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		// The CRC decoder must tolerate the same arbitrary inputs; its
		// result is checked only through the round-trip below.
		if _, err := ReadFrameCRC(bytes.NewReader(data)); err != nil {
			_ = err
		}

		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(fr.Payload) > MaxFrame {
			t.Fatalf("decoded frame exceeds MaxFrame: %d bytes", len(fr.Payload))
		}
		if !fr.Op.Tagged() && fr.Tag != 0 {
			t.Fatalf("untagged frame %s decoded with tag %d", fr.Op, fr.Tag)
		}

		// Plain-framing round trip.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if got.Op != fr.Op || got.Tag != fr.Tag || !bytes.Equal(got.Payload, fr.Payload) {
			t.Fatalf("round trip mismatch: %+v != %+v", got, fr)
		}

		// CRC-framing round trip, and trailer corruption detection.
		buf.Reset()
		if err := WriteFrameCRC(&buf, fr); err != nil {
			t.Fatalf("crc re-encode: %v", err)
		}
		enc := append([]byte(nil), buf.Bytes()...)
		got, err = ReadFrameCRC(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("crc re-decode: %v", err)
		}
		if got.Op != fr.Op || got.Tag != fr.Tag || !bytes.Equal(got.Payload, fr.Payload) {
			t.Fatalf("crc round trip mismatch: %+v != %+v", got, fr)
		}
		enc[len(enc)-1] ^= 0xFF // any trailer bit flip must be caught
		if _, err := ReadFrameCRC(bytes.NewReader(enc)); !errors.Is(err, ErrCRC) {
			t.Fatalf("corrupted trailer not detected: err=%v", err)
		}

		// Payload decoders: no panics, and success implies an identical
		// re-encoding.
		switch fr.Op {
		case OpRead:
			if r, err := DecodeRead(fr.Payload); err == nil {
				if re := EncodeRead(r.DS, r.Idx, r.Size); !bytes.Equal(re.Payload, fr.Payload) {
					t.Fatalf("READ re-encode mismatch")
				}
			}
		case OpWrite, OpWriteTag:
			if r, err := DecodeWrite(fr.Payload); err == nil {
				if re := EncodeWrite(r.DS, r.Idx, r.Data); !bytes.Equal(re.Payload, fr.Payload) {
					t.Fatalf("WRITE re-encode mismatch")
				}
			}
		case OpReadBatch:
			if reqs, err := DecodeReadBatch(fr.Payload); err == nil {
				if re := EncodeReadBatch(fr.Tag, reqs); !bytes.Equal(re.Payload, fr.Payload) {
					t.Fatalf("READBATCH re-encode mismatch")
				}
			}
		case OpDataBatch:
			if segs, err := DecodeDataBatch(fr.Payload); err == nil {
				re, err := EncodeDataBatch(fr.Tag, segs)
				if err != nil {
					t.Fatalf("DATABATCH re-encode: %v", err)
				}
				if !bytes.Equal(re.Payload, fr.Payload) {
					t.Fatalf("DATABATCH re-encode mismatch")
				}
			}
		case OpWriteBatch:
			if reqs, err := DecodeWriteBatch(fr.Payload); err == nil {
				re, err := EncodeWriteBatch(fr.Tag, reqs)
				if err != nil {
					t.Fatalf("WRITEBATCH re-encode: %v", err)
				}
				if !bytes.Equal(re.Payload, fr.Payload) {
					t.Fatalf("WRITEBATCH re-encode mismatch")
				}
			}
		case OpWriteEpochBatch:
			if reqs, err := DecodeWriteEpochBatch(fr.Payload); err == nil {
				re, err := EncodeWriteEpochBatch(fr.Tag, reqs)
				if err != nil {
					t.Fatalf("WRITEEPOCHBATCH re-encode: %v", err)
				}
				if !bytes.Equal(re.Payload, fr.Payload) {
					t.Fatalf("WRITEEPOCHBATCH re-encode mismatch")
				}
			}
		case OpReadEpochBatch:
			if reqs, err := DecodeReadEpochBatch(fr.Payload); err == nil {
				if re := EncodeReadEpochBatch(fr.Tag, reqs); !bytes.Equal(re.Payload, fr.Payload) {
					t.Fatalf("READEPOCHBATCH re-encode mismatch")
				}
			}
		case OpDataEpochBatch:
			if segs, err := DecodeDataEpochBatch(fr.Payload); err == nil {
				re, err := EncodeDataEpochBatch(fr.Tag, segs)
				if err != nil {
					t.Fatalf("DATAEPOCHBATCH re-encode: %v", err)
				}
				if !bytes.Equal(re.Payload, fr.Payload) {
					t.Fatalf("DATAEPOCHBATCH re-encode mismatch")
				}
			}
		case OpAckBatch:
			if n, err := DecodeAckBatch(fr.Payload); err == nil {
				if re := EncodeAckBatch(fr.Tag, n); !bytes.Equal(re.Payload, fr.Payload) {
					t.Fatalf("ACKBATCH re-encode mismatch")
				}
			}
		case OpChaseBatch:
			if reqs, err := DecodeChaseBatch(fr.Payload); err == nil {
				if re := EncodeChaseBatch(fr.Tag, reqs); !bytes.Equal(re.Payload, fr.Payload) {
					t.Fatalf("CHASEBATCH re-encode mismatch")
				}
				// Programs a server would run must survive Validate without
				// panicking; accepted ones must carry a bounded walk.
				for _, r := range reqs {
					if r.Validate() == nil && r.Hops == 0 {
						t.Fatalf("validated program with zero hop budget: %+v", r)
					}
				}
			}
		case OpChaseData:
			if res, err := DecodeChaseData(fr.Payload); err == nil {
				re, err := EncodeChaseData(fr.Tag, res)
				if err != nil {
					t.Fatalf("CHASEDATA re-encode: %v", err)
				}
				if !bytes.Equal(re.Payload, fr.Payload) {
					t.Fatalf("CHASEDATA re-encode mismatch")
				}
			}
		case OpPing, OpOK:
			DecodeFeatures(fr.Payload)
		}
	})
}
