package rdma

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

func TestChaseReqValidate(t *testing.T) {
	good := ChaseReq{DS: 1, Start: 0, ObjSize: 64, NextOff: 8, Hops: 16}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	cases := []struct {
		name string
		req  ChaseReq
		want string
	}{
		{"zero hop budget", ChaseReq{ObjSize: 64, NextOff: 8}, "hop budget 0"},
		{"zero object size", ChaseReq{NextOff: 0, Hops: 4}, "object size 0"},
		{"non-pow2 object size", ChaseReq{ObjSize: 48, NextOff: 8, Hops: 4}, "not a power of two"},
		{"offset past end", ChaseReq{ObjSize: 64, NextOff: 60, Hops: 4}, "past object end"},
		{"offset at end", ChaseReq{ObjSize: 64, NextOff: 64, Hops: 4}, "past object end"},
		{"mask on huge objects", ChaseReq{ObjSize: 1024, NextOff: 0, Hops: 4, Mask: 1}, "mask"},
	}
	for _, c := range cases {
		err := c.req.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
	// Unfiltered huge objects are fine — only the mask has a span limit.
	if err := (ChaseReq{ObjSize: 1024, NextOff: 0, Hops: 4}).Validate(); err != nil {
		t.Errorf("unfiltered 1KiB program rejected: %v", err)
	}
}

func TestChaseBatchRoundTrip(t *testing.T) {
	reqs := []ChaseReq{
		{DS: 1, Start: 0, ObjSize: 64, NextOff: 8, Hops: 16},
		{DS: 7, Start: 1023, ObjSize: 256, NextOff: 248, Hops: 1, Mask: 0x8001},
		{DS: 0x7FFF, Start: 1 << 30, ObjSize: 8, NextOff: 0, Hops: 1 << 20, Mask: ^uint64(0)},
	}
	fr := EncodeChaseBatch(42, reqs)
	if fr.Op != OpChaseBatch || fr.Tag != 42 {
		t.Fatalf("frame header: op %v tag %d", fr.Op, fr.Tag)
	}
	if len(fr.Payload) != ChaseBatchSize(reqs) {
		t.Fatalf("payload %d bytes, ChaseBatchSize says %d", len(fr.Payload), ChaseBatchSize(reqs))
	}
	got, err := DecodeChaseBatch(fr.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("decoded %d programs, want %d", len(got), len(reqs))
	}
	for i := range reqs {
		if got[i] != reqs[i] {
			t.Errorf("program %d: %+v != %+v", i, got[i], reqs[i])
		}
	}

	// Framing rejections: torn header, count/length mismatch both ways.
	if _, err := DecodeChaseBatch(fr.Payload[:3]); err == nil {
		t.Error("torn header accepted")
	}
	if _, err := DecodeChaseBatch(fr.Payload[:len(fr.Payload)-1]); err == nil {
		t.Error("truncated tuple accepted")
	}
	forged := append([]byte(nil), fr.Payload...)
	binary.LittleEndian.PutUint32(forged, uint32(len(reqs)+1))
	if _, err := DecodeChaseBatch(forged); err == nil {
		t.Error("forged count accepted")
	}
}

func TestChaseDataRoundTrip(t *testing.T) {
	results := []ChaseResult{
		{Status: ChaseDone, Final: 0xDEAD, Hops: []ChaseHop{
			{Idx: 0, Data: bytes.Repeat([]byte{0x11}, 64)},
			{Idx: 9, Data: bytes.Repeat([]byte{0x22}, 64)},
		}},
		{Status: ChaseHops, Final: chaseAddrTagBit | 3<<chaseAddrDSShift | 512, Hops: []ChaseHop{
			{Idx: 4, Data: bytes.Repeat([]byte{0x33}, 16)},
		}},
		{Status: ChaseDone, Final: 0, Hops: nil}, // empty path: start was terminal
	}
	fr, err := EncodeChaseData(7, results)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Op != OpChaseData || fr.Tag != 7 {
		t.Fatalf("frame header: op %v tag %d", fr.Op, fr.Tag)
	}
	got, err := DecodeChaseData(fr.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(results) {
		t.Fatalf("decoded %d results, want %d", len(got), len(results))
	}
	for i, r := range results {
		g := got[i]
		if g.Status != r.Status || g.Final != r.Final || len(g.Hops) != len(r.Hops) {
			t.Fatalf("result %d: %+v != %+v", i, g, r)
		}
		for h := range r.Hops {
			if g.Hops[h].Idx != r.Hops[h].Idx || !bytes.Equal(g.Hops[h].Data, r.Hops[h].Data) {
				t.Errorf("result %d hop %d mismatch", i, h)
			}
		}
	}
}

func TestChaseDataWriterBackpatch(t *testing.T) {
	// Drive the writer the way the server does — hop count unknown until
	// the walk ends — and check the backpatched headers read back right.
	reqs := []ChaseReq{{DS: 1, ObjSize: 32, NextOff: 24, Hops: 4}}
	p := make([]byte, ChaseReplyBound(reqs))
	w := BeginChaseData(p, 1)
	w.BeginResult()
	for i := 0; i < 3; i++ {
		hop := w.NextHop(uint32(10+i), 32)
		for j := range hop {
			hop[j] = byte(i)
		}
	}
	w.FinishResult(ChaseHops, chaseAddrTagBit|42)
	fr := w.Frame(5)

	res, err := DecodeChaseData(fr.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Status != ChaseHops || res[0].Final != chaseAddrTagBit|42 {
		t.Fatalf("backpatched header wrong: %+v", res[0])
	}
	if len(res[0].Hops) != 3 {
		t.Fatalf("hop count %d, want 3", len(res[0].Hops))
	}
	for i, h := range res[0].Hops {
		if h.Idx != uint32(10+i) || len(h.Data) != 32 || h.Data[0] != byte(i) {
			t.Errorf("hop %d: idx %d len %d first %d", i, h.Idx, len(h.Data), h.Data[0])
		}
	}
}

func TestChaseDataDecodeRejections(t *testing.T) {
	fr, err := EncodeChaseData(1, []ChaseResult{
		{Status: ChaseDone, Final: 1, Hops: []ChaseHop{{Idx: 2, Data: []byte("eight by")}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	valid := fr.Payload

	if _, err := DecodeChaseData(valid[:2]); err == nil {
		t.Error("torn header accepted")
	}
	forged := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(forged, 1<<30) // forged result count
	if _, err := DecodeChaseData(forged); err == nil {
		t.Error("forged result count accepted")
	}
	forged = append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(forged[16:], 1<<30) // forged hop count
	if _, err := DecodeChaseData(forged); err == nil {
		t.Error("forged hop count accepted")
	}
	if _, err := DecodeChaseData(valid[:len(valid)-3]); err == nil {
		t.Error("truncated hop bytes accepted")
	}
	if _, err := DecodeChaseData(append(append([]byte(nil), valid...), 0xEE)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestChaseReplyBoundNoOverflow(t *testing.T) {
	// A forged max hop budget over max-size objects must not wrap the
	// bound check into accepting the batch.
	reqs := []ChaseReq{{Hops: ^uint32(0), ObjSize: ^uint32(0)}}
	if b := ChaseReplyBound(reqs); b <= MaxFrame {
		t.Fatalf("forged budget bound %d passed the MaxFrame check", b)
	}
}

func TestChaseAddrHelpers(t *testing.T) {
	a := chaseAddrTagBit | uint64(0x1234)<<chaseAddrDSShift | 0xABCDE
	if !ChaseAddrTagged(a) {
		t.Error("tagged address not recognized")
	}
	if ChaseAddrTagged(a &^ chaseAddrTagBit) {
		t.Error("untagged word recognized as tagged")
	}
	if ds := ChaseAddrDS(a); ds != 0x1234 {
		t.Errorf("ds = %#x, want 0x1234", ds)
	}
	if off := ChaseAddrOff(a); off != 0xABCDE {
		t.Errorf("off = %#x, want 0xabcde", off)
	}
}

// TestChasePathSteadyStateAllocFree pins the zero-allocation property of
// the chase codec, mirroring the READBATCH guard: client program encode,
// checksummed framing, server decode + in-place CHASEDATA gather via the
// writer, client result decode into reused slices — none of it may touch
// the heap once warm.
func TestChasePathSteadyStateAllocFree(t *testing.T) {
	reqs := []ChaseReq{
		{DS: 1, Start: 0, ObjSize: 64, NextOff: 8, Hops: 8},
		{DS: 2, Start: 5, ObjSize: 64, NextOff: 8, Hops: 4},
	}
	obj := bytes.Repeat([]byte{0xCD}, 64)

	var c2s, s2c bytes.Buffer
	var rd bytes.Reader
	decReqs := make([]ChaseReq, 0, len(reqs))
	res := make([]ChaseResult, 0, len(reqs))
	for range reqs {
		res = append(res, ChaseResult{Hops: make([]ChaseHop, 0, 8)})
	}
	res = res[:0]

	iter := func() {
		// Client: ship the programs.
		req := EncodeChaseBatchPooled(42, reqs)
		c2s.Reset()
		if err := WriteFrameCRC(&c2s, req); err != nil {
			t.Fatal(err)
		}
		PutBuf(req.Payload)

		// Server: decode, walk (simulated), gather in place.
		rd.Reset(c2s.Bytes())
		fr, err := ReadFrameCRCPooled(&rd)
		if err != nil {
			t.Fatal(err)
		}
		decReqs, err = DecodeChaseBatchInto(fr.Payload, decReqs)
		if err != nil {
			t.Fatal(err)
		}
		reply := GetBuf(int(ChaseReplyBound(decReqs)))
		w := BeginChaseData(reply, len(decReqs))
		for _, r := range decReqs {
			w.BeginResult()
			for h := uint32(0); h < r.Hops/2; h++ {
				copy(w.NextHop(r.Start+h, int(r.ObjSize)), obj)
			}
			w.FinishResult(ChaseDone, 0)
		}
		PutBuf(fr.Payload)
		s2c.Reset()
		if err := WriteFrameCRC(&s2c, w.Frame(fr.Tag)); err != nil {
			t.Fatal(err)
		}
		PutBuf(reply)

		// Client: decode the paths into reused result slices.
		rd.Reset(s2c.Bytes())
		fr, err = ReadFrameCRCPooled(&rd)
		if err != nil {
			t.Fatal(err)
		}
		res, err = DecodeChaseDataInto(fr.Payload, res)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != len(reqs) || len(res[0].Hops) != 4 || len(res[0].Hops[0].Data) != 64 {
			t.Fatalf("bad reply: %d results", len(res))
		}
		PutBuf(fr.Payload)
	}

	for i := 0; i < 8; i++ {
		iter()
	}
	if avg := testing.AllocsPerRun(200, iter); avg >= 1 {
		t.Fatalf("steady-state chase path allocates %.2f times per round trip, want ~0", avg)
	}
}
