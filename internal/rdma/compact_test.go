package rdma

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestBitStreamRoundTrip(t *testing.T) {
	buf := make([]byte, 256)
	w := NewBitWriter(buf)
	w.WriteBits(0b101, 3)
	w.WriteBit(true)
	w.Uvarint(0)
	w.Uvarint(15)
	w.Uvarint(16)
	w.Uvarint(1<<64 - 1)
	w.Svarint(-1)
	w.Svarint(1 << 40)
	w.Svarint(-(1 << 40))
	w.Align()
	copy(w.Bytes(3), []byte{0xDE, 0xAD, 0xBF})
	w.Uvarint(7)
	p, err := w.Finish()
	if err != nil {
		t.Fatalf("finish: %v", err)
	}

	r := NewBitReader(p)
	if got := r.ReadBits(3); got != 0b101 {
		t.Fatalf("bits: got %b", got)
	}
	if !r.ReadBit() {
		t.Fatalf("bit: got false")
	}
	for _, want := range []uint64{0, 15, 16, 1<<64 - 1} {
		if got := r.Uvarint(); got != want {
			t.Fatalf("uvarint: got %d want %d", got, want)
		}
	}
	for _, want := range []int64{-1, 1 << 40, -(1 << 40)} {
		if got := r.Svarint(); got != want {
			t.Fatalf("svarint: got %d want %d", got, want)
		}
	}
	r.Align()
	if got := r.Bytes(3); !bytes.Equal(got, []byte{0xDE, 0xAD, 0xBF}) {
		t.Fatalf("bytes: got %x", got)
	}
	if got := r.Uvarint(); got != 7 {
		t.Fatalf("trailing uvarint: got %d", got)
	}
	r.Align()
	if !r.Done() {
		t.Fatalf("stream not fully consumed: %v", r.Err())
	}
}

func TestBitStreamOverflowAndUnderrun(t *testing.T) {
	w := NewBitWriter(make([]byte, 2))
	w.Uvarint(1 << 60) // 16 groups > 2 bytes
	if w.Err() == nil {
		t.Fatalf("overflow not detected")
	}

	r := NewBitReader([]byte{0xFF}) // continuation bit set, stream ends
	r.Uvarint()
	if r.Err() == nil {
		t.Fatalf("underrun not detected")
	}

	// Non-zero padding bits are malformed (cannot come from a writer).
	r = NewBitReader([]byte{0b1000_0001})
	r.ReadBits(1)
	r.Align()
	if r.Err() == nil {
		t.Fatalf("dirty padding not detected")
	}
}

func TestLZRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := [][]byte{
		bytes.Repeat([]byte{0xAA}, 4096),
		bytes.Repeat([]byte("taxi-row:pickup,dropoff,fare;"), 140),
		append(bytes.Repeat([]byte{0}, 2000), bytes.Repeat([]byte{7, 7, 9}, 600)...),
	}
	// A long match run with length extensions in both nibbles.
	long := make([]byte, 8192)
	copy(long, []byte("seed block"))
	cases = append(cases, long)
	// Structured but noisy: repeated records with varying fields.
	rec := make([]byte, 0, 4096)
	for i := 0; len(rec) < 4000; i++ {
		rec = append(rec, []byte("record=")...)
		rec = append(rec, byte(i), byte(i>>8), byte(rng.Intn(4)))
	}
	cases = append(cases, rec)

	for ci, src := range cases {
		dst := make([]byte, CompressBound(len(src)))
		n, ok := LZCompress(dst, src)
		if !ok {
			t.Fatalf("case %d: compressible input reported incompressible", ci)
		}
		if n >= len(src) {
			t.Fatalf("case %d: no gain (%d >= %d)", ci, n, len(src))
		}
		out := make([]byte, len(src))
		if err := LZDecompress(out, dst[:n]); err != nil {
			t.Fatalf("case %d: decompress: %v", ci, err)
		}
		if !bytes.Equal(out, src) {
			t.Fatalf("case %d: round trip mismatch", ci)
		}
	}
}

func TestLZIncompressibleBailsOut(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := make([]byte, 4096)
	rng.Read(src)
	dst := make([]byte, CompressBound(len(src)))
	if n, ok := LZCompress(dst, src); ok && n >= len(src) {
		t.Fatalf("compressor returned ok with no gain: %d", n)
	}
}

func TestLZDecompressRejectsForgedInput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := bytes.Repeat([]byte("abcdefgh"), 512)
	comp := make([]byte, CompressBound(len(src)))
	n, ok := LZCompress(comp, src)
	if !ok {
		t.Fatalf("seed compress failed")
	}
	comp = comp[:n]
	dst := make([]byte, len(src))
	// Truncations, bit flips and random garbage must fail cleanly or
	// produce exactly len(dst) bytes — never panic or over-read.
	for i := 0; i < 2000; i++ {
		m := append([]byte(nil), comp...)
		switch i % 3 {
		case 0:
			m = m[:rng.Intn(len(m))]
		case 1:
			m[rng.Intn(len(m))] ^= byte(1 + rng.Intn(255))
		case 2:
			m = make([]byte, rng.Intn(64))
			rng.Read(m)
		}
		_ = LZDecompress(dst, m) // must not panic
	}
}

func TestIsAllZero(t *testing.T) {
	if !isAllZero(make([]byte, 4096)) || !isAllZero(nil) {
		t.Fatalf("zero buffer not detected")
	}
	b := make([]byte, 4096)
	b[4095] = 1
	if isAllZero(b) {
		t.Fatalf("trailing non-zero missed")
	}
}

func TestReadBatchCRoundTrip(t *testing.T) {
	cases := [][]ReadReq{
		{{DS: 1, Idx: 0, Size: 4096}},
		{{DS: 1, Idx: 10, Size: 4096}, {DS: 1, Idx: 11, Size: 4096}, {DS: 1, Idx: 12, Size: 4096}},
		{{DS: 3, Idx: 500, Size: 64}, {DS: 3, Idx: 2, Size: 64}, {DS: 7, Idx: 1 << 30, Size: 1024}},
		{{DS: 0, Idx: 1<<32 - 1, Size: 0}, {DS: 0, Idx: 0, Size: MaxFrame}},
	}
	for ci, reqs := range cases {
		fr := EncodeReadBatchCPooled(9, reqs)
		if fr.Op != OpReadBatchC || fr.Tag != 9 {
			t.Fatalf("case %d: bad frame %v", ci, fr.Op)
		}
		got, err := DecodeReadBatchCInto(fr.Payload, nil)
		if err != nil {
			t.Fatalf("case %d: decode: %v", ci, err)
		}
		if len(got) != len(reqs) {
			t.Fatalf("case %d: count %d != %d", ci, len(got), len(reqs))
		}
		for i := range reqs {
			if got[i] != reqs[i] {
				t.Fatalf("case %d tuple %d: %+v != %+v", ci, i, got[i], reqs[i])
			}
		}
		PutBuf(fr.Payload)
	}
}

func TestReadBatchCSequentialScanIsTiny(t *testing.T) {
	// The motivating case: 32 sequential same-size reads of one DS must
	// cost ~1 byte per tuple against 12 fixed-width bytes.
	reqs := make([]ReadReq, 32)
	for i := range reqs {
		reqs[i] = ReadReq{DS: 2, Idx: uint32(100 + i), Size: 4096}
	}
	fr := EncodeReadBatchCPooled(1, reqs)
	defer PutBuf(fr.Payload)
	if len(fr.Payload) > 40 {
		t.Fatalf("sequential scan encoded to %d bytes (want <= 40); fixed-width is %d",
			len(fr.Payload), 4+12*len(reqs))
	}
}

func TestDataBatchCBuilderRoundTrip(t *testing.T) {
	var b DataBatchCBuilder
	defer b.Release()
	b.Reset()

	zero := make([]byte, 512)
	text := bytes.Repeat([]byte("compressible body "), 100)
	rng := rand.New(rand.NewSource(5))
	noise := make([]byte, 777)
	rng.Read(noise)

	if s, _ := b.Add(zero, true); s != SchemeZero {
		t.Fatalf("zero object got scheme %d", s)
	}
	if s, _ := b.Add(text, true); s != SchemeLZ {
		t.Fatalf("text got scheme %d", s)
	}
	if s, _ := b.Add(noise, true); s != SchemeRaw {
		t.Fatalf("noise got scheme %d", s)
	}
	if s, _ := b.Add(text, false); s != SchemeRaw {
		t.Fatalf("compression-off add got scheme %d", s)
	}

	fr, err := b.Frame(4)
	if err != nil {
		t.Fatalf("frame: %v", err)
	}
	defer PutBuf(fr.Payload)
	segs, err := DecodeDataBatchCInto(fr.Payload, nil)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(segs) != 4 {
		t.Fatalf("got %d segments", len(segs))
	}
	for i, want := range [][]byte{zero, text, noise, text} {
		s := segs[i]
		if int(s.RawLen) != len(want) {
			t.Fatalf("seg %d rawLen %d != %d", i, s.RawLen, len(want))
		}
		out := make([]byte, s.RawLen)
		switch s.Scheme {
		case SchemeZero:
		case SchemeRaw:
			copy(out, s.Data)
		case SchemeLZ:
			if err := LZDecompress(out, s.Data); err != nil {
				t.Fatalf("seg %d decompress: %v", i, err)
			}
		}
		if !bytes.Equal(out, want) {
			t.Fatalf("seg %d data mismatch", i)
		}
	}
}

func TestWriteBatchCRoundTrip(t *testing.T) {
	body := bytes.Repeat([]byte("epoch body "), 40)
	comp := make([]byte, CompressBound(len(body)))
	n, ok := LZCompress(comp, body)
	if !ok {
		t.Fatalf("seed compress failed")
	}
	for _, epoch := range []bool{false, true} {
		reqs := []WriteReqC{
			{DS: 1, Idx: 5, Epoch: 3, Scheme: SchemeRaw, RawLen: 16,
				Data: []byte("full object 16bb")},
			{DS: 1, Idx: 6, Epoch: 9, Scheme: SchemeZero, RawLen: 4096},
			{DS: 2, Idx: 0, Epoch: 1<<62 + 1, Scheme: SchemeLZ, RawLen: uint32(len(body)),
				Data: comp[:n]},
			{DS: 2, Idx: 1, Epoch: 2, ObjSize: 4096, Scheme: SchemeRaw, RawLen: 12,
				Extents: []Extent{{Off: 8, Len: 4}, {Off: 96, Len: 8}},
				Data:    []byte("rangedbytes!")},
		}
		fr, err := EncodeWriteBatchCPooled(77, reqs, epoch)
		if err != nil {
			t.Fatalf("encode(epoch=%v): %v", epoch, err)
		}
		wantOp := OpWriteBatchC
		if epoch {
			wantOp = OpWriteEpochBatchC
		}
		if fr.Op != wantOp {
			t.Fatalf("op %v != %v", fr.Op, wantOp)
		}
		got, _, err := DecodeWriteBatchCInto(fr.Payload, nil, nil, epoch)
		if err != nil {
			t.Fatalf("decode(epoch=%v): %v", epoch, err)
		}
		if len(got) != len(reqs) {
			t.Fatalf("count %d != %d", len(got), len(reqs))
		}
		for i := range reqs {
			w, g := reqs[i], got[i]
			if g.DS != w.DS || g.Idx != w.Idx || g.Scheme != w.Scheme || g.RawLen != w.RawLen {
				t.Fatalf("tuple %d header mismatch: %+v != %+v", i, g, w)
			}
			if epoch && g.Epoch != w.Epoch {
				t.Fatalf("tuple %d epoch %d != %d", i, g.Epoch, w.Epoch)
			}
			if !epoch && g.Epoch != 0 {
				t.Fatalf("tuple %d spurious epoch %d", i, g.Epoch)
			}
			if len(g.Extents) != len(w.Extents) {
				t.Fatalf("tuple %d extents %d != %d", i, len(g.Extents), len(w.Extents))
			}
			for k := range w.Extents {
				if g.Extents[k] != w.Extents[k] {
					t.Fatalf("tuple %d extent %d: %+v != %+v", i, k, g.Extents[k], w.Extents[k])
				}
			}
			if !bytes.Equal(g.Data, w.Data) {
				t.Fatalf("tuple %d data mismatch", i)
			}
		}
		PutBuf(fr.Payload)
	}
}

func TestWriteBatchCRejectsBogusRange(t *testing.T) {
	// offset+len > objSize must be rejected at decode time — the server
	// relies on this to never write outside an object.
	reqs := []WriteReqC{{
		DS: 1, Idx: 0, ObjSize: 64, Scheme: SchemeRaw, RawLen: 32,
		Extents: []Extent{{Off: 48, Len: 32}},
		Data:    make([]byte, 32),
	}}
	fr, err := EncodeWriteBatchCPooled(1, reqs, false)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	defer PutBuf(fr.Payload)
	if _, _, err := DecodeWriteBatchCInto(fr.Payload, nil, nil, false); err == nil {
		t.Fatalf("bogus range accepted")
	}
}

func TestWriteBatchCRejectsTruncatedBitstream(t *testing.T) {
	reqs := []WriteReqC{{DS: 3, Idx: 9, Scheme: SchemeRaw, RawLen: 64, Data: make([]byte, 64)}}
	fr, err := EncodeWriteBatchCPooled(1, reqs, false)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	defer PutBuf(fr.Payload)
	for cut := 0; cut < len(fr.Payload); cut++ {
		if _, _, err := DecodeWriteBatchCInto(fr.Payload[:cut], nil, nil, false); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestAckBatchCRoundTrip(t *testing.T) {
	fr := EncodeAckBatchC(4, 70, nil)
	count, _, any, err := DecodeAckBatchC(fr.Payload, nil)
	if err != nil || count != 70 || any {
		t.Fatalf("clean ack: count=%d any=%v err=%v", count, any, err)
	}
	PutBuf(fr.Payload)

	rej := make([]uint64, 2)
	rej[0] |= 1 << 3
	rej[1] |= 1 << (69 - 64)
	fr = EncodeAckBatchC(4, 70, rej)
	defer PutBuf(fr.Payload)
	count, got, any, err := DecodeAckBatchC(fr.Payload, nil)
	if err != nil || count != 70 || !any {
		t.Fatalf("rejected ack: count=%d any=%v err=%v", count, any, err)
	}
	for i := 0; i < 70; i++ {
		want := i == 3 || i == 69
		if got[i/64]>>(i%64)&1 == 1 != want {
			t.Fatalf("bit %d: want %v", i, want)
		}
	}
}

func TestCompactDecodersRejectForgedCounts(t *testing.T) {
	// A tiny payload claiming a huge tuple count must be rejected up
	// front, before any decode loop runs.
	w := NewBitWriter(make([]byte, 16))
	w.Uvarint(1 << 40)
	p, err := w.Finish()
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	if _, err := DecodeReadBatchCInto(p, nil); err == nil {
		t.Fatalf("READBATCH-C forged count accepted")
	}
	if _, err := DecodeDataBatchCInto(p, nil); err == nil {
		t.Fatalf("DATABATCH-C forged count accepted")
	}
	if _, _, err := DecodeWriteBatchCInto(p, nil, nil, false); err == nil {
		t.Fatalf("WRITEBATCH-C forged count accepted")
	}
	if _, _, _, err := DecodeAckBatchC(p, nil); err == nil {
		t.Fatalf("ACKBATCH-C forged count accepted")
	}
}

func TestReadBatchCProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(64)
		reqs := make([]ReadReq, n)
		ds := uint32(rng.Intn(8))
		idx := uint32(rng.Intn(1 << 20))
		size := uint32(64 << rng.Intn(7))
		for i := range reqs {
			if rng.Intn(4) == 0 {
				ds = uint32(rng.Intn(8))
			}
			switch rng.Intn(3) {
			case 0:
				idx++
			case 1:
				idx = uint32(rng.Intn(1 << 20))
			}
			if rng.Intn(8) == 0 {
				size = uint32(rng.Intn(1 << 16))
			}
			reqs[i] = ReadReq{DS: ds, Idx: idx, Size: size}
		}
		fr := EncodeReadBatchCPooled(uint32(iter), reqs)
		got, err := DecodeReadBatchCInto(fr.Payload, nil)
		if err != nil {
			t.Fatalf("iter %d: decode: %v", iter, err)
		}
		for i := range reqs {
			if got[i] != reqs[i] {
				t.Fatalf("iter %d tuple %d: %+v != %+v", iter, i, got[i], reqs[i])
			}
		}
		PutBuf(fr.Payload)
	}
}
