package rdma

import "fmt"

// Bit-level encoding primitives for the FeatCompact wire tier.
//
// Compact batch frames pack their per-tuple headers at bit granularity:
// one-bit "same as previous" flags, two-bit compression schemes, and
// nibble varints for counts, sizes and deltas. The stream is LSB-first
// within each byte (bit k of the stream is bit k%8 of byte k/8), so a
// sequence of WriteBits calls round-trips through ReadBits regardless of
// field widths.
//
// Varints use 5-bit groups — a continuation bit followed by 4 data bits,
// least significant group first. Small values (the common case for
// delta-encoded indices and tag-like fields) cost 5 bits instead of a
// full byte, and a u64 costs at most 16 groups. Signed deltas ride the
// usual zigzag mapping.
//
// Both ends carry a sticky error instead of returning one per call: a
// writer that overruns its buffer or a reader that underruns its input
// records the fault once, every later call becomes a no-op, and the
// caller checks Err after the batch — which keeps the per-field hot path
// branch-light and allocation-free.

// BitWriter packs bits into a caller-provided buffer (typically pooled).
type BitWriter struct {
	p    []byte
	off  int    // bytes fully written
	cur  uint64 // bit accumulator, low bits first
	n    uint   // bits held in cur
	fail bool
}

// NewBitWriter starts a bit stream over p; the stream fails (sticky)
// rather than growing p when it runs out of room.
func NewBitWriter(p []byte) BitWriter { return BitWriter{p: p} }

// WriteBits appends the low n bits of v (n <= 57 per call; larger fields
// go through Uvarint). Bits beyond n in v must be zero.
func (w *BitWriter) WriteBits(v uint64, n uint) {
	w.cur |= v << w.n
	w.n += n
	for w.n >= 8 {
		if w.off >= len(w.p) {
			w.fail = true
			w.n = 0
			return
		}
		w.p[w.off] = byte(w.cur)
		w.off++
		w.cur >>= 8
		w.n -= 8
	}
}

// WriteBit appends one bit.
func (w *BitWriter) WriteBit(b bool) {
	if b {
		w.WriteBits(1, 1)
	} else {
		w.WriteBits(0, 1)
	}
}

// Uvarint appends v as 5-bit groups (continuation bit + 4 data bits).
func (w *BitWriter) Uvarint(v uint64) {
	for v >= 16 {
		w.WriteBits(1|(v&15)<<1, 5)
		v >>= 4
	}
	w.WriteBits(v<<1, 5)
}

// Svarint appends a signed value via zigzag + Uvarint.
func (w *BitWriter) Svarint(v int64) {
	w.Uvarint(uint64(v<<1) ^ uint64(v>>63))
}

// Align pads the stream with zero bits to the next byte boundary.
func (w *BitWriter) Align() {
	if w.n > 0 {
		w.WriteBits(0, 8-w.n%8)
	}
}

// Bytes appends n raw bytes to the (byte-aligned) stream and returns the
// destination slice for the caller to fill; nil when the stream failed
// or is unaligned.
func (w *BitWriter) Bytes(n int) []byte {
	if w.n != 0 {
		w.fail = true
	}
	if w.fail || w.off+n > len(w.p) {
		w.fail = true
		return nil
	}
	s := w.p[w.off : w.off+n : w.off+n]
	w.off += n
	return s
}

// Len returns the bytes emitted so far (aligned streams only).
func (w *BitWriter) Len() int { return w.off }

// Err reports whether the stream overran its buffer.
func (w *BitWriter) Err() error {
	if w.fail {
		return fmt.Errorf("rdma: bit stream overflow (buffer %d bytes)", len(w.p))
	}
	return nil
}

// Finish aligns the stream and returns the encoded prefix of the buffer.
func (w *BitWriter) Finish() ([]byte, error) {
	w.Align()
	if err := w.Err(); err != nil {
		return nil, err
	}
	return w.p[:w.off], nil
}

// BitReader consumes a stream produced by BitWriter.
type BitReader struct {
	p    []byte
	off  int
	cur  uint64
	n    uint
	fail bool
}

// NewBitReader starts reading the bit stream in p.
func NewBitReader(p []byte) BitReader { return BitReader{p: p} }

// ReadBits consumes and returns the next n bits (n <= 57).
func (r *BitReader) ReadBits(n uint) uint64 {
	for r.n < n {
		if r.off >= len(r.p) {
			r.fail = true
			return 0
		}
		r.cur |= uint64(r.p[r.off]) << r.n
		r.off++
		r.n += 8
	}
	v := r.cur & (1<<n - 1)
	r.cur >>= n
	r.n -= n
	return v
}

// ReadBit consumes one bit.
func (r *BitReader) ReadBit() bool { return r.ReadBits(1) != 0 }

// Uvarint consumes a 5-bit-group varint; streams encoding more than 64
// bits fail (a forged continuation chain, not a value).
func (r *BitReader) Uvarint() uint64 {
	var v uint64
	for shift := uint(0); ; shift += 4 {
		if shift >= 68 {
			r.fail = true
			return 0
		}
		g := r.ReadBits(5)
		if shift < 64 {
			v |= (g >> 1) << shift
		} else if g>>1 != 0 {
			r.fail = true
			return 0
		}
		if g&1 == 0 {
			return v
		}
	}
}

// Svarint consumes a zigzag-encoded signed varint.
func (r *BitReader) Svarint() int64 {
	u := r.Uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

// Align discards padding to the next byte boundary; non-zero padding
// bits fail the stream (they cannot come from a BitWriter).
func (r *BitReader) Align() {
	if rem := r.n % 8; rem != 0 {
		if r.ReadBits(rem) != 0 {
			r.fail = true
		}
	}
	// Whole buffered bytes (from the accumulator) stay available.
}

// Bytes consumes n raw bytes from the (byte-aligned) stream and returns
// them as a subslice of the input; nil on underrun.
func (r *BitReader) Bytes(n int) []byte {
	// Drain whole bytes buffered in the accumulator back to the input
	// position: after Align, n%8 == 0 and the accumulator holds only
	// bytes read ahead, so rewinding the offset is exact.
	if r.n%8 != 0 {
		r.fail = true
		return nil
	}
	r.off -= int(r.n / 8)
	r.cur, r.n = 0, 0
	if n < 0 || r.fail || r.off+n > len(r.p) {
		r.fail = true
		return nil
	}
	s := r.p[r.off : r.off+n : r.off+n]
	r.off += n
	return s
}

// Done reports whether the stream was fully and exactly consumed.
func (r *BitReader) Done() bool {
	return !r.fail && r.off == len(r.p) && r.cur == 0
}

// Err reports whether the stream underran or was malformed.
func (r *BitReader) Err() error {
	if r.fail {
		return fmt.Errorf("rdma: truncated or malformed bit stream")
	}
	return nil
}
