// Package rdma implements the wire protocol between the CaRDS runtime
// and a remote memory server. The paper's systems run over DPDK/RDMA on
// 25 Gb/s ConnectX-4 NICs; Go has no DPDK path, so this package provides
// the closest portable equivalent: a compact binary framing for
// one-sided-style READ/WRITE verbs over a reliable byte stream (TCP, or
// net.Pipe in tests). The simulated-time experiments never touch this
// code — they charge the netsim cost model instead — but the runtime can
// run against a real cardsd server through internal/remote, which proves
// the data path end to end.
//
// Frame layout (little endian):
//
//	u32 payloadLen | u8 op | payload                       (untagged ops)
//	u32 payloadLen | u8 op | u32 tag | payload             (tagged ops)
//
// Opcodes with the high bit (TagBit) set carry a u32 tag between the
// opcode and the payload; payloadLen never includes the tag. Tags let a
// pipelined client keep many requests in flight and demultiplex
// completions arriving out of order.
//
// Payloads:
//
//	READ:      u32 ds | u32 idx | u32 size                 -> DATA frame
//	WRITE:     u32 ds | u32 idx | u32 size | bytes         -> OK frame
//	PING:      (empty) or u32 features                     -> OK frame
//	DATA:      bytes
//	OK:        (empty), or u32 features replying to a feature PING
//	ERR:       utf-8 message
//	READBATCH:  u32 count | count x (u32 ds | u32 idx | u32 size)
//	DATABATCH:  u32 count | count x (u32 len | bytes)      (request order)
//	WRITETAG:   as WRITE                                   -> ACKTAG frame
//	ACKTAG:     (empty)
//	ERRTAG:     utf-8 message (tagged reply to a failed tagged request)
//	WRITEBATCH: u32 count | count x (u32 ds | u32 idx | u32 len | bytes)
//	ACKBATCH:   u32 count                                  (writes applied)
//	CHASEBATCH: u32 count | count x (u32 ds | u32 start | u32 objSize |
//	            u32 nextOff | u32 hops | u64 mask)         -> CHASEDATA
//	CHASEDATA:  u32 count | count x (u32 status | u64 final | u32 hopCount |
//	            hopCount x (u32 idx | u32 len | bytes))    (request order)
//
// Interoperability: untagged frames are byte-identical to the original
// protocol. A client discovers whether its peer speaks the tagged/batch
// extension by sending PING with a u32 feature word; a new server echoes
// its own feature word in the OK payload, while a legacy server returns
// an empty OK (its PING handler ignores the payload) — so new clients
// fall back to the serial verbs and legacy clients never see a tagged
// frame.
package rdma

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Op identifies a frame type.
type Op uint8

// Frame opcodes.
const (
	OpRead Op = iota + 1
	OpWrite
	OpPing
	OpData
	OpOK
	OpErr
)

// TagBit marks opcodes whose frames carry a u32 tag after the opcode.
const TagBit Op = 0x80

// Tagged opcodes (the pipelined/batched extension).
const (
	// OpReadBatch requests count reads in one frame; the reply is one
	// OpDataBatch (same tag) with the payloads in request order.
	OpReadBatch Op = TagBit | 0x01
	// OpDataBatch is the scatter-gather reply to OpReadBatch.
	OpDataBatch Op = TagBit | 0x02
	// OpWriteTag is a tagged WRITE; acknowledged by OpAckTag.
	OpWriteTag Op = TagBit | 0x03
	// OpAckTag acknowledges a tagged write.
	OpAckTag Op = TagBit | 0x04
	// OpErrTag reports failure of the tagged request with the same tag.
	OpErrTag Op = TagBit | 0x05
	// OpWriteBatch carries count writes in one frame — the write-side
	// doorbell coalescer. The reply is one OpAckBatch (same tag) once
	// every write in the batch has been applied, in batch order.
	OpWriteBatch Op = TagBit | 0x06
	// OpAckBatch acknowledges a WRITEBATCH; its payload echoes the
	// number of writes applied so the client can detect a torn batch.
	OpAckBatch Op = TagBit | 0x07
	// OpWriteEpochBatch is WRITEBATCH with a u64 epoch stamp per tuple
	// (the replication extension — see epoch.go). Acked by OpAckBatch.
	OpWriteEpochBatch Op = TagBit | 0x08
	// OpReadEpochBatch is READBATCH whose reply carries each object's
	// stored epoch; answered by OpDataEpochBatch.
	OpReadEpochBatch Op = TagBit | 0x09
	// OpDataEpochBatch is the epoch-stamped scatter-gather reply to
	// OpReadEpochBatch.
	OpDataEpochBatch Op = TagBit | 0x0A
	// OpChaseBatch carries count traversal programs in one frame (the
	// server-side pointer-chase offload — see chase.go). Answered by one
	// OpChaseData (same tag).
	OpChaseBatch Op = TagBit | 0x0B
	// OpChaseData is the per-program path reply to OpChaseBatch: every
	// object visited plus the terminal status and final address.
	OpChaseData Op = TagBit | 0x0C
)

// Tagged reports whether frames with this opcode carry a u32 tag.
func (o Op) Tagged() bool { return o&TagBit != 0 }

func (o Op) String() string {
	switch o {
	case OpRead:
		return "READ"
	case OpWrite:
		return "WRITE"
	case OpPing:
		return "PING"
	case OpData:
		return "DATA"
	case OpOK:
		return "OK"
	case OpErr:
		return "ERR"
	case OpReadBatch:
		return "READBATCH"
	case OpDataBatch:
		return "DATABATCH"
	case OpWriteTag:
		return "WRITETAG"
	case OpAckTag:
		return "ACKTAG"
	case OpErrTag:
		return "ERRTAG"
	case OpWriteBatch:
		return "WRITEBATCH"
	case OpAckBatch:
		return "ACKBATCH"
	case OpWriteEpochBatch:
		return "WRITEEPOCHBATCH"
	case OpReadEpochBatch:
		return "READEPOCHBATCH"
	case OpDataEpochBatch:
		return "DATAEPOCHBATCH"
	case OpChaseBatch:
		return "CHASEBATCH"
	case OpChaseData:
		return "CHASEDATA"
	case OpReadBatchC:
		return "READBATCH-C"
	case OpDataBatchC:
		return "DATABATCH-C"
	case OpWriteBatchC:
		return "WRITEBATCH-C"
	case OpWriteEpochBatchC:
		return "WRITEEPOCHBATCH-C"
	case OpAckBatchC:
		return "ACKBATCH-C"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// MaxFrame bounds a frame payload (16 MiB), protecting both sides from
// corrupt length prefixes.
const MaxFrame = 16 << 20

// Frame is one decoded protocol message. Tag is meaningful only for
// tagged opcodes (Op.Tagged) and is zero otherwise. HasExt marks a
// tagged frame carrying the fixed trace block of a FeatTrace session
// (see trace.go); Ext is its raw bytes, decoded via TraceCtx or
// ServerStamp. Both are value fields so the frame stays allocation-free.
type Frame struct {
	Op      Op
	Tag     uint32
	HasExt  bool
	Ext     [traceExtSize]byte
	Payload []byte
}

// headerSize is the fixed per-frame overhead: u32 length + u8 opcode.
// Tagged opcodes add tagSize more bytes.
const (
	headerSize = 5
	tagSize    = 4
)

// WireSize returns the number of bytes the frame occupies on the wire,
// header included — the unit the transport byte counters account in.
func (f Frame) WireSize() uint64 {
	n := headerSize + uint64(len(f.Payload))
	if f.Op.Tagged() {
		n += tagSize
		if f.HasExt {
			n += traceExtSize
		}
	}
	return n
}

// WriteFrame encodes and writes one frame. Writing through a buffered
// writer and flushing once per group of frames is the doorbell-coalescing
// path: many frames, one syscall.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxFrame {
		return fmt.Errorf("rdma: frame too large (%d bytes)", len(f.Payload))
	}
	// Pooled scratch: a stack array would escape through the io.Writer
	// interface call, costing one heap allocation per frame.
	hdr := GetBuf(headerSize + tagSize + traceExtSize)
	defer PutBuf(hdr)
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(f.Payload)))
	hdr[4] = byte(f.Op)
	n := headerSize
	if f.Op.Tagged() {
		binary.LittleEndian.PutUint32(hdr[headerSize:], f.Tag)
		n += tagSize
		if f.HasExt {
			n += copy(hdr[n:], f.Ext[:])
		}
	}
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	if len(f.Payload) > 0 {
		if _, err := w.Write(f.Payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads and decodes one frame.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > MaxFrame {
		return Frame{}, fmt.Errorf("rdma: oversized frame (%d bytes)", n)
	}
	f := Frame{Op: Op(hdr[4])}
	if f.Op.Tagged() {
		var tag [tagSize]byte
		if _, err := io.ReadFull(r, tag[:]); err != nil {
			return Frame{}, err
		}
		f.Tag = binary.LittleEndian.Uint32(tag[:])
	}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, err
		}
	}
	return f, nil
}

// ReadReq is a decoded READ request.
type ReadReq struct {
	DS, Idx, Size uint32
}

// WriteReq is a decoded WRITE request.
type WriteReq struct {
	DS, Idx uint32
	Data    []byte
}

// EncodeRead builds a READ frame.
func EncodeRead(ds, idx, size uint32) Frame {
	p := make([]byte, 12)
	binary.LittleEndian.PutUint32(p[0:], ds)
	binary.LittleEndian.PutUint32(p[4:], idx)
	binary.LittleEndian.PutUint32(p[8:], size)
	return Frame{Op: OpRead, Payload: p}
}

// DecodeRead parses a READ payload.
func DecodeRead(p []byte) (ReadReq, error) {
	if len(p) != 12 {
		return ReadReq{}, fmt.Errorf("rdma: bad READ payload length %d", len(p))
	}
	return ReadReq{
		DS:   binary.LittleEndian.Uint32(p[0:]),
		Idx:  binary.LittleEndian.Uint32(p[4:]),
		Size: binary.LittleEndian.Uint32(p[8:]),
	}, nil
}

// EncodeWrite builds a WRITE frame.
func EncodeWrite(ds, idx uint32, data []byte) Frame {
	p := make([]byte, 12+len(data))
	binary.LittleEndian.PutUint32(p[0:], ds)
	binary.LittleEndian.PutUint32(p[4:], idx)
	binary.LittleEndian.PutUint32(p[8:], uint32(len(data)))
	copy(p[12:], data)
	return Frame{Op: OpWrite, Payload: p}
}

// DecodeWrite parses a WRITE payload.
func DecodeWrite(p []byte) (WriteReq, error) {
	if len(p) < 12 {
		return WriteReq{}, fmt.Errorf("rdma: bad WRITE payload length %d", len(p))
	}
	n := binary.LittleEndian.Uint32(p[8:])
	if int(n) != len(p)-12 {
		return WriteReq{}, fmt.Errorf("rdma: WRITE length mismatch: header %d, actual %d", n, len(p)-12)
	}
	return WriteReq{
		DS:   binary.LittleEndian.Uint32(p[0:]),
		Idx:  binary.LittleEndian.Uint32(p[4:]),
		Data: p[12:],
	}, nil
}

// ErrFrame builds an ERR frame carrying a message.
func ErrFrame(msg string) Frame { return Frame{Op: OpErr, Payload: []byte(msg)} }

// ErrTagFrame builds a tagged ERR frame so a pipelined peer can route the
// failure to the request with the same tag.
func ErrTagFrame(tag uint32, msg string) Frame {
	return Frame{Op: OpErrTag, Tag: tag, Payload: []byte(msg)}
}

// Feature bits exchanged on PING (u32, little endian).
const (
	// FeatBatch: the peer understands tagged frames and the
	// READBATCH/DATABATCH/WRITETAG verbs.
	FeatBatch uint32 = 1 << 0
	// FeatCRC: the peer can switch the session to checksummed framing
	// (a CRC32-C trailer per frame — see crc.go). When both sides
	// advertise it, every frame after the negotiation exchange carries
	// the trailer.
	FeatCRC uint32 = 1 << 1
	// FeatWriteBatch: the peer understands the WRITEBATCH/ACKBATCH
	// verbs. A client talking to a peer without this bit falls back to
	// one WRITETAG frame per write — same wire bytes a legacy peer has
	// always seen.
	FeatWriteBatch uint32 = 1 << 2
	// FeatEpoch: the peer understands the epoch-stamped verbs
	// (WRITEEPOCHBATCH/READEPOCHBATCH/DATAEPOCHBATCH) that the
	// replication layer uses to version whole-object images. Sessions
	// without the bit never see an epoch frame, so legacy peers stay
	// byte-identical. (FeatTrace = 1<<3 lives in trace.go.)
	FeatEpoch uint32 = 1 << 4
	// FeatChase: the peer understands the traversal-offload verbs
	// (CHASEBATCH/CHASEDATA) that collapse a K-hop pointer chase into
	// one round trip. Clients talking to peers without the bit fall back
	// to per-hop reads — the same wire bytes a legacy peer has always
	// seen.
	FeatChase uint32 = 1 << 5
)

// EncodeFeatures packs a feature word into a PING/OK payload.
func EncodeFeatures(feats uint32) []byte {
	p := make([]byte, 4)
	binary.LittleEndian.PutUint32(p, feats)
	return p
}

// DecodeFeatures unpacks a feature word; ok is false when the payload
// carries none (a legacy peer).
func DecodeFeatures(p []byte) (feats uint32, ok bool) {
	if len(p) < 4 {
		return 0, false
	}
	return binary.LittleEndian.Uint32(p), true
}

// PingFeatures builds the feature-negotiation PING.
func PingFeatures(feats uint32) Frame {
	return Frame{Op: OpPing, Payload: EncodeFeatures(feats)}
}

// readReqSize is the wire size of one (ds, idx, size) read tuple.
const readReqSize = 12

// EncodeReadBatch builds a READBATCH frame for the given tuples.
func EncodeReadBatch(tag uint32, reqs []ReadReq) Frame {
	p := make([]byte, 4+readReqSize*len(reqs))
	binary.LittleEndian.PutUint32(p[0:], uint32(len(reqs)))
	for i, r := range reqs {
		off := 4 + i*readReqSize
		binary.LittleEndian.PutUint32(p[off:], r.DS)
		binary.LittleEndian.PutUint32(p[off+4:], r.Idx)
		binary.LittleEndian.PutUint32(p[off+8:], r.Size)
	}
	return Frame{Op: OpReadBatch, Tag: tag, Payload: p}
}

// DecodeReadBatch parses a READBATCH payload.
func DecodeReadBatch(p []byte) ([]ReadReq, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("rdma: bad READBATCH payload length %d", len(p))
	}
	count := binary.LittleEndian.Uint32(p)
	if uint64(len(p)) != 4+uint64(count)*readReqSize {
		return nil, fmt.Errorf("rdma: READBATCH length mismatch: header %d tuples, payload %d bytes",
			count, len(p))
	}
	reqs := make([]ReadReq, count)
	for i := range reqs {
		off := 4 + i*readReqSize
		reqs[i] = ReadReq{
			DS:   binary.LittleEndian.Uint32(p[off:]),
			Idx:  binary.LittleEndian.Uint32(p[off+4:]),
			Size: binary.LittleEndian.Uint32(p[off+8:]),
		}
	}
	return reqs, nil
}

// DataBatchSize returns the DATABATCH payload size replying to reqs —
// the value both sides bound against MaxFrame before building a batch.
func DataBatchSize(reqs []ReadReq) int {
	n := 4
	for _, r := range reqs {
		n += 4 + int(r.Size)
	}
	return n
}

// EncodeDataBatch builds the scatter-gather DATABATCH reply. Segments
// must be in request order.
func EncodeDataBatch(tag uint32, segs [][]byte) (Frame, error) {
	n := 4
	for _, s := range segs {
		n += 4 + len(s)
	}
	if n > MaxFrame {
		return Frame{}, fmt.Errorf("rdma: DATABATCH too large (%d bytes)", n)
	}
	p := make([]byte, n)
	binary.LittleEndian.PutUint32(p[0:], uint32(len(segs)))
	off := 4
	for _, s := range segs {
		binary.LittleEndian.PutUint32(p[off:], uint32(len(s)))
		off += 4
		copy(p[off:], s)
		off += len(s)
	}
	return Frame{Op: OpDataBatch, Tag: tag, Payload: p}, nil
}

// DecodeDataBatch parses a DATABATCH payload into per-request segments
// (subslices of p — valid while p is).
func DecodeDataBatch(p []byte) ([][]byte, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("rdma: bad DATABATCH payload length %d", len(p))
	}
	count := binary.LittleEndian.Uint32(p)
	// Each segment needs at least its u32 length prefix; a count beyond
	// that is a forged header — reject before sizing the allocation by it.
	if uint64(count) > uint64(len(p)-4)/4 {
		return nil, fmt.Errorf("rdma: DATABATCH count %d exceeds payload", count)
	}
	segs := make([][]byte, 0, count)
	off := 4
	for i := uint32(0); i < count; i++ {
		if off+4 > len(p) {
			return nil, fmt.Errorf("rdma: truncated DATABATCH at segment %d", i)
		}
		n := int(binary.LittleEndian.Uint32(p[off:]))
		off += 4
		if off+n > len(p) {
			return nil, fmt.Errorf("rdma: truncated DATABATCH segment %d (%d bytes)", i, n)
		}
		segs = append(segs, p[off:off+n])
		off += n
	}
	if off != len(p) {
		return nil, fmt.Errorf("rdma: DATABATCH trailing garbage (%d bytes)", len(p)-off)
	}
	return segs, nil
}

// writeReqHdrSize is the fixed prefix of one WRITEBATCH tuple:
// u32 ds | u32 idx | u32 len.
const writeReqHdrSize = 12

// WriteBatchSize returns the WRITEBATCH payload size for reqs — the
// value the flusher bounds against MaxFrame before closing a batch.
func WriteBatchSize(reqs []WriteReq) int {
	n := 4
	for _, r := range reqs {
		n += writeReqHdrSize + len(r.Data)
	}
	return n
}

// EncodeWriteBatch builds a WRITEBATCH frame for the given tuples. The
// payload is the tuples' WRITE payloads concatenated behind a count, so
// batching changes framing only — each write's bytes are identical to
// the WRITETAG fallback a legacy peer receives.
func EncodeWriteBatch(tag uint32, reqs []WriteReq) (Frame, error) {
	n := WriteBatchSize(reqs)
	if n > MaxFrame {
		return Frame{}, fmt.Errorf("rdma: WRITEBATCH too large (%d bytes)", n)
	}
	p := make([]byte, n)
	encodeWriteBatchInto(p, reqs)
	return Frame{Op: OpWriteBatch, Tag: tag, Payload: p}, nil
}

func encodeWriteBatchInto(p []byte, reqs []WriteReq) {
	binary.LittleEndian.PutUint32(p[0:], uint32(len(reqs)))
	off := 4
	for _, r := range reqs {
		binary.LittleEndian.PutUint32(p[off:], r.DS)
		binary.LittleEndian.PutUint32(p[off+4:], r.Idx)
		binary.LittleEndian.PutUint32(p[off+8:], uint32(len(r.Data)))
		off += writeReqHdrSize
		copy(p[off:], r.Data)
		off += len(r.Data)
	}
}

// DecodeWriteBatch parses a WRITEBATCH payload into per-write requests
// (Data fields are subslices of p — valid while p is).
func DecodeWriteBatch(p []byte) ([]WriteReq, error) {
	return DecodeWriteBatchInto(p, nil)
}

// DecodeWriteBatchInto is DecodeWriteBatch appending into a caller-owned
// slice, letting a steady-state server reuse one across batches.
func DecodeWriteBatchInto(p []byte, reqs []WriteReq) ([]WriteReq, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("rdma: bad WRITEBATCH payload length %d", len(p))
	}
	count := binary.LittleEndian.Uint32(p)
	// Each tuple needs at least its fixed header; a count beyond that is
	// a forged header — reject before sizing any allocation by it.
	if uint64(count) > uint64(len(p)-4)/writeReqHdrSize {
		return nil, fmt.Errorf("rdma: WRITEBATCH count %d exceeds payload", count)
	}
	reqs = reqs[:0]
	off := 4
	for i := uint32(0); i < count; i++ {
		if off+writeReqHdrSize > len(p) {
			return nil, fmt.Errorf("rdma: truncated WRITEBATCH at tuple %d", i)
		}
		n := int(binary.LittleEndian.Uint32(p[off+8:]))
		r := WriteReq{
			DS:  binary.LittleEndian.Uint32(p[off:]),
			Idx: binary.LittleEndian.Uint32(p[off+4:]),
		}
		off += writeReqHdrSize
		if n < 0 || off+n > len(p) {
			return nil, fmt.Errorf("rdma: truncated WRITEBATCH tuple %d (%d bytes)", i, n)
		}
		r.Data = p[off : off+n]
		off += n
		reqs = append(reqs, r)
	}
	if off != len(p) {
		return nil, fmt.Errorf("rdma: WRITEBATCH trailing garbage (%d bytes)", len(p)-off)
	}
	return reqs, nil
}

// EncodeAckBatch builds the ACKBATCH reply to a WRITEBATCH of count
// writes.
func EncodeAckBatch(tag uint32, count int) Frame {
	p := make([]byte, 4)
	binary.LittleEndian.PutUint32(p, uint32(count))
	return Frame{Op: OpAckBatch, Tag: tag, Payload: p}
}

// DecodeAckBatch parses an ACKBATCH payload.
func DecodeAckBatch(p []byte) (int, error) {
	if len(p) != 4 {
		return 0, fmt.Errorf("rdma: bad ACKBATCH payload length %d", len(p))
	}
	return int(binary.LittleEndian.Uint32(p)), nil
}
