// Package rdma implements the wire protocol between the CaRDS runtime
// and a remote memory server. The paper's systems run over DPDK/RDMA on
// 25 Gb/s ConnectX-4 NICs; Go has no DPDK path, so this package provides
// the closest portable equivalent: a compact binary framing for
// one-sided-style READ/WRITE verbs over a reliable byte stream (TCP, or
// net.Pipe in tests). The simulated-time experiments never touch this
// code — they charge the netsim cost model instead — but the runtime can
// run against a real cardsd server through internal/remote, which proves
// the data path end to end.
//
// Frame layout (little endian):
//
//	u32 payloadLen | u8 op | payload
//
// Payloads:
//
//	READ:  u32 ds | u32 idx | u32 size            -> DATA frame
//	WRITE: u32 ds | u32 idx | u32 size | bytes    -> OK frame
//	PING:  (empty)                                -> OK frame
//	DATA:  bytes
//	OK:    (empty)
//	ERR:   utf-8 message
package rdma

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Op identifies a frame type.
type Op uint8

// Frame opcodes.
const (
	OpRead Op = iota + 1
	OpWrite
	OpPing
	OpData
	OpOK
	OpErr
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "READ"
	case OpWrite:
		return "WRITE"
	case OpPing:
		return "PING"
	case OpData:
		return "DATA"
	case OpOK:
		return "OK"
	case OpErr:
		return "ERR"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// MaxFrame bounds a frame payload (16 MiB), protecting both sides from
// corrupt length prefixes.
const MaxFrame = 16 << 20

// Frame is one decoded protocol message.
type Frame struct {
	Op      Op
	Payload []byte
}

// headerSize is the fixed per-frame overhead: u32 length + u8 opcode.
const headerSize = 5

// WireSize returns the number of bytes the frame occupies on the wire,
// header included — the unit the transport byte counters account in.
func (f Frame) WireSize() uint64 { return headerSize + uint64(len(f.Payload)) }

// WriteFrame encodes and writes one frame.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxFrame {
		return fmt.Errorf("rdma: frame too large (%d bytes)", len(f.Payload))
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(f.Payload)))
	hdr[4] = byte(f.Op)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(f.Payload) > 0 {
		if _, err := w.Write(f.Payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads and decodes one frame.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > MaxFrame {
		return Frame{}, fmt.Errorf("rdma: oversized frame (%d bytes)", n)
	}
	f := Frame{Op: Op(hdr[4])}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, err
		}
	}
	return f, nil
}

// ReadReq is a decoded READ request.
type ReadReq struct {
	DS, Idx, Size uint32
}

// WriteReq is a decoded WRITE request.
type WriteReq struct {
	DS, Idx uint32
	Data    []byte
}

// EncodeRead builds a READ frame.
func EncodeRead(ds, idx, size uint32) Frame {
	p := make([]byte, 12)
	binary.LittleEndian.PutUint32(p[0:], ds)
	binary.LittleEndian.PutUint32(p[4:], idx)
	binary.LittleEndian.PutUint32(p[8:], size)
	return Frame{Op: OpRead, Payload: p}
}

// DecodeRead parses a READ payload.
func DecodeRead(p []byte) (ReadReq, error) {
	if len(p) != 12 {
		return ReadReq{}, fmt.Errorf("rdma: bad READ payload length %d", len(p))
	}
	return ReadReq{
		DS:   binary.LittleEndian.Uint32(p[0:]),
		Idx:  binary.LittleEndian.Uint32(p[4:]),
		Size: binary.LittleEndian.Uint32(p[8:]),
	}, nil
}

// EncodeWrite builds a WRITE frame.
func EncodeWrite(ds, idx uint32, data []byte) Frame {
	p := make([]byte, 12+len(data))
	binary.LittleEndian.PutUint32(p[0:], ds)
	binary.LittleEndian.PutUint32(p[4:], idx)
	binary.LittleEndian.PutUint32(p[8:], uint32(len(data)))
	copy(p[12:], data)
	return Frame{Op: OpWrite, Payload: p}
}

// DecodeWrite parses a WRITE payload.
func DecodeWrite(p []byte) (WriteReq, error) {
	if len(p) < 12 {
		return WriteReq{}, fmt.Errorf("rdma: bad WRITE payload length %d", len(p))
	}
	n := binary.LittleEndian.Uint32(p[8:])
	if int(n) != len(p)-12 {
		return WriteReq{}, fmt.Errorf("rdma: WRITE length mismatch: header %d, actual %d", n, len(p)-12)
	}
	return WriteReq{
		DS:   binary.LittleEndian.Uint32(p[0:]),
		Idx:  binary.LittleEndian.Uint32(p[4:]),
		Data: p[12:],
	}, nil
}

// ErrFrame builds an ERR frame carrying a message.
func ErrFrame(msg string) Frame { return Frame{Op: OpErr, Payload: []byte(msg)} }
