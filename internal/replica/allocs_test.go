package replica

import (
	"testing"

	"cards/internal/farmem"
)

// ackBackend acknowledges everything synchronously and touches nothing:
// the cheapest possible EpochBackend, so AllocsPerRun below measures
// only the replica layer itself — join pooling, epoch stamping, fan-out
// bookkeeping — not the transport underneath.
type ackBackend struct{}

func (ackBackend) ReadObj(ds, idx int, dst []byte) error  { return nil }
func (ackBackend) WriteObj(ds, idx int, src []byte) error { return nil }
func (ackBackend) ReadObjEpoch(ds, idx int, dst []byte) (uint64, error) {
	return ^uint64(0), nil
}
func (ackBackend) WriteObjEpoch(ds, idx int, epoch uint64, src []byte) error { return nil }
func (ackBackend) IssueReadEpoch(ds, idx int, dst []byte, done func(uint64, error)) {
	done(^uint64(0), nil)
}
func (ackBackend) IssueWriteEpoch(ds, idx int, epoch uint64, src []byte, done func(error)) {
	done(nil)
}

// TestReplicatedWritePathSteadyStateAllocFree pins the zero-allocation
// property of the replicated write path: once the authority map holds
// the working set and the join pool is warm, a fanned-out IssueWrite —
// epoch stamp, group ranking, per-replica sub-writes, quorum
// accounting — must not touch the heap. A regression here puts the GC
// on the eviction critical path, multiplied by the replication factor.
func TestReplicatedWritePathSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation defeats escape analysis; alloc counts are meaningless")
	}
	backends := []farmem.Store{ackBackend{}, ackBackend{}, ackBackend{}}
	s, err := New(backends, Options{Replicas: 2, BreakerThreshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const objs = 16
	src := make([]byte, 256)
	done := func(err error) {
		if err != nil {
			t.Errorf("replicated write: %v", err)
		}
	}
	iter := func() {
		for i := 0; i < objs; i++ {
			s.IssueWrite(0, i, src, done)
		}
	}
	iter() // authority entries inserted, join pool warmed

	if avg := testing.AllocsPerRun(200, iter); avg >= 1 {
		t.Errorf("replicated write path allocates %.1f times per %d-object sweep, want 0", avg, objs)
	}
}
