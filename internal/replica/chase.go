package replica

import (
	"fmt"

	"cards/internal/farmem"
	"cards/internal/rdma"
)

// Traversal offload over the replica group. A chase routes like a read:
// to the highest-ranked member and down the ranking on failure — but
// only across in-sync members. Chase replies carry no epoch stamps (the
// path is assembled server-side, one stamp per hop would defeat the
// compact encoding), so the staleness detection the epoch read path
// gets for free is replaced by a stricter admission rule: a member that
// may have missed writes never serves a chase. When no in-sync member
// speaks the chase verbs the program fails with ErrDegraded and the
// runtime degrades to per-hop epoch reads, which remain individually
// verifiable.

// ChaseCapable implements farmem.ChaseStore: offload is on while some
// in-sync member speaks the chase verbs on its live session.
func (s *Store) ChaseCapable() bool {
	for _, m := range s.members {
		if m.chaser != nil && m.inSync.Load() && m.chaser.ChaseCapable() {
			return true
		}
	}
	return false
}

// Chase implements farmem.ChaseStore (issue + wait).
func (s *Store) Chase(req rdma.ChaseReq) (rdma.ChaseResult, error) {
	type out struct {
		res rdma.ChaseResult
		err error
	}
	ch := make(chan out, 1)
	s.IssueChase(req, func(res rdma.ChaseResult, err error) { ch <- out{res, err} })
	o := <-ch
	return o.res, o.err
}

// IssueChase implements farmem.AsyncChaseStore: the program walks down
// the replica ranking of its (pinned) structure, promoted to the
// next-ranked in-sync member mid-op when the serving one fails.
func (s *Store) IssueChase(req rdma.ChaseReq, done func(rdma.ChaseResult, error)) {
	var gbuf [MaxReplicas]int
	group := s.groupFor(int(req.DS), int(req.Start), gbuf[:0])
	ranked := make([]int, len(group))
	copy(ranked, group)
	s.chaseNext(req, ranked, 0, done)
}

// chaseNext issues the program against the next eligible member of the
// ranking; its completion callback reissues down the ranking on
// transport failure, counting each promotion as a chase failover.
func (s *Store) chaseNext(req rdma.ChaseReq, ranked []int, next int, done func(rdma.ChaseResult, error)) {
	for next < len(ranked) {
		m := s.members[ranked[next]]
		next++
		if m.chaser == nil || !m.inSync.Load() {
			continue
		}
		if !m.gate(s.opts.ProbeEvery) {
			continue
		}
		cont := next
		m.chaser.IssueChase(req, func(res rdma.ChaseResult, err error) {
			if err != nil {
				s.fail(m)
				s.chaseFailovers.Inc()
				s.chaseNext(req, ranked, cont, done)
				return
			}
			s.ok(m)
			m.reads.Inc()
			done(res, nil)
		})
		return
	}
	done(rdma.ChaseResult{}, fmt.Errorf("replica: no in-sync chase-capable replica for ds%d: %w",
		req.DS, farmem.ErrDegraded))
}
