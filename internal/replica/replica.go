// Package replica layers a replicated far tier between the farmem
// runtime and a fleet of remote backends: every object lives on a
// replica group of R backends chosen by rendezvous ranking (the top-R
// owners from the same placement map the sharded store uses, so
// rank 0 is exactly the shard the object would live on unreplicated).
//
// Writes fan out to every reachable group member through the pipelined
// epoch-stamped write verbs and acknowledge once W replicas accepted;
// each image carries a monotonically increasing epoch assigned here
// (the runtime above is the single writer per object, so a plain
// per-object counter is a total order). Reads go to the highest-ranked
// in-sync member and fail over down the ranking — the epoch stamp on
// the reply proves the image is current, so a replica that missed
// writes is detected and excluded rather than trusted.
//
// When a member's breaker opens, the next-ranked member takes over
// mid-op: the failed read's completion callback reissues it down the
// ranking, so in-flight dereferences complete instead of surfacing
// ErrDegraded. A member that missed writes (skipped while gated, or a
// failed/uncertain sub-write) is marked divergent and leaves the read
// set; when its backend answers pings again, an anti-entropy sweep
// compares its epoch stamps against the client-side authority and
// re-copies stale objects from an in-sync survivor — only after the
// sweep completes with no new divergence does it rejoin the read set.
package replica

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cards/internal/farmem"
	"cards/internal/obs"
	"cards/internal/rdma"
	"cards/internal/shardmap"
	"cards/internal/stats"
)

// MaxReplicas bounds the replica group size R; the fixed-size scratch
// arrays in the pooled read/write joins (what keeps the hot paths
// allocation-free) are sized by it.
const MaxReplicas = 4

// Per-backend metric names (label backend="<i>") plus group-wide
// series, following the cards_<layer>_<name> scheme.
const (
	MetricReplicaReads       = "cards_replica_reads_total"
	MetricReplicaWrites      = "cards_replica_writes_total"
	MetricReplicaFailures    = "cards_replica_failures_total"
	MetricReplicaTrips       = "cards_replica_breaker_trips_total"
	MetricReplicaRecoveries  = "cards_replica_breaker_recoveries_total"
	MetricReplicaState       = "cards_replica_breaker_state"
	MetricReplicaInSync      = "cards_replica_in_sync"
	MetricReplicaDivergences = "cards_replica_divergences_total"
	MetricReplicaResyncs     = "cards_replica_resyncs_total"

	MetricReplicaFailovers      = "cards_replica_failovers_total"
	MetricReplicaQuorumFailures = "cards_replica_quorum_failures_total"
	MetricReplicaResyncedObjs   = "cards_replica_resynced_objects_total"
	MetricReplicaResyncSkipped  = "cards_replica_resync_skipped_total"

	// MetricChaseFailovers counts traversal-offload programs rerouted to
	// a lower-ranked in-sync replica after the serving member failed
	// mid-chase (part of the cards_chase_* family the runtime publishes;
	// the failover count lives here because only the replica layer can
	// reroute).
	MetricChaseFailovers = "cards_chase_failovers_total"
)

// EpochBackend is what each backend must provide: the plain store
// surface plus the epoch-stamped verbs (remote.Resilient over a
// pipelined session satisfies it).
type EpochBackend interface {
	farmem.Store
	ReadObjEpoch(ds, idx int, dst []byte) (uint64, error)
	WriteObjEpoch(ds, idx int, epoch uint64, src []byte) error
	IssueReadEpoch(ds, idx int, dst []byte, done func(epoch uint64, err error))
	IssueWriteEpoch(ds, idx int, epoch uint64, src []byte, done func(error))
}

// RangeEpochBackend is the optional dirty-range surface of a backend:
// an epoch-stamped write that ships only the modified extents of the
// full image src. The peer splices them onto its stored copy only when
// that copy is the immediate predecessor epoch; a missed epoch NAKs
// with remote.ErrStaleRangeBase, which the fan-out treats like any
// failed sub-write (mark divergent, resync repairs with full objects).
// Detected per backend by type assertion.
type RangeEpochBackend interface {
	IssueWriteRangesEpoch(ds, idx int, epoch uint64, src []byte, exts []rdma.Extent, done func(error))
}

// Options configures a replicated Store.
type Options struct {
	// Replicas is the group size R (clamped to [1, min(MaxReplicas,
	// len(backends))]); 2 when zero.
	Replicas int
	// WriteQuorum is W, the number of replica acks a write needs to
	// succeed; 1 when zero. W=1 lets writes ride out any R-1 failures
	// (the epoch read path finds the surviving current image); W=R
	// makes every ack mean full redundancy at the cost of parking
	// writes while any group member is down.
	WriteQuorum int
	// BreakerThreshold is the number of consecutive failures that trip
	// one member's breaker open. 0 disables per-member breakers.
	BreakerThreshold int
	// ProbeEvery is the wall-clock interval of the liveness/resync
	// maintenance loop; 0 means 250ms.
	ProbeEvery time.Duration
	// Obs receives the replica series; nil allocates a private registry
	// (reachable via Store.Obs).
	Obs *obs.Registry
	// Trace, when non-nil, receives a flight-recorder record for every
	// read that needed failover (Failover=true, Shard=the backend that
	// finally served it).
	Trace *obs.TraceHub
}

// member is one backend plus its private fault domain (the same
// breaker/probe state machine the sharded store runs per shard) and
// its replication state: whether it is in the read set, and a
// divergence generation that invalidates an in-flight resync when the
// member misses further writes mid-sweep.
type member struct {
	eb     EpochBackend
	reb    RangeEpochBackend      // non-nil iff the backend supports range-epoch writes
	chaser farmem.AsyncChaseStore // non-nil iff the backend supports IssueChase
	pinger farmem.Pinger          // non-nil iff the backend supports Ping
	label  string

	dom shardmap.Domain

	inSync     atomic.Bool
	divergeGen atomic.Uint64
	resyncing  atomic.Bool

	// lastRecovery is the RecoveryEpoch value stamped when this member
	// last recovered; see Store.ShouldDrain.
	lastRecovery atomic.Uint64

	reads, writes, failures *stats.Counter
	trips, recoveries       *stats.Counter
	divergences, resyncs    *stats.Counter
	stateGauge, insyncGauge *stats.Gauge
}

func (m *member) gate(probeEvery time.Duration) bool {
	return m.dom.Gate(probeEvery, m.pinger != nil)
}

// objMeta is the client-side authority record for one object: the
// epoch its current image carries and the image size (what a resync
// needs to re-read it from a survivor).
type objMeta struct {
	epoch uint64
	size  uint32
}

// Store is the replicated far tier. It implements farmem.Store,
// farmem.AsyncStore, farmem.AsyncWriteStore, farmem.Pinger,
// farmem.Recoverable and farmem.DrainScoper.
type Store struct {
	m       *shardmap.Map
	members []*member
	r, w    int
	opts    Options
	reg     *obs.Registry
	hub     *obs.TraceHub

	policyMu sync.RWMutex
	policy   map[int]shardmap.Policy

	// epochs is the per-object epoch authority and resync inventory:
	// the runtime above is the single writer per object, so the counter
	// assigned here is the total order every replica's image is ranked
	// by.
	epMu   sync.Mutex
	epochs map[uint64]objMeta

	failovers, quorumFailures   *stats.Counter
	resyncedObjs, resyncSkipped *stats.Counter
	chaseFailovers              *stats.Counter

	recoveryEpoch atomic.Uint64

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// New builds a replicated Store over the given backends. Every backend
// must speak the epoch-stamped verbs (EpochBackend); liveness probing
// is detected per backend by type assertion.
func New(backends []farmem.Store, opts Options) (*Store, error) {
	if len(backends) == 0 {
		return nil, errors.New("replica: no backends")
	}
	if opts.Replicas <= 0 {
		opts.Replicas = 2
	}
	if opts.Replicas > MaxReplicas {
		opts.Replicas = MaxReplicas
	}
	if opts.Replicas > len(backends) {
		opts.Replicas = len(backends)
	}
	if opts.WriteQuorum <= 0 {
		opts.WriteQuorum = 1
	}
	if opts.WriteQuorum > opts.Replicas {
		opts.WriteQuorum = opts.Replicas
	}
	if opts.ProbeEvery <= 0 {
		opts.ProbeEvery = 250 * time.Millisecond
	}
	reg := opts.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Store{
		m:              shardmap.NewMap(len(backends)),
		r:              opts.Replicas,
		w:              opts.WriteQuorum,
		opts:           opts,
		reg:            reg,
		hub:            opts.Trace,
		policy:         make(map[int]shardmap.Policy),
		epochs:         make(map[uint64]objMeta),
		failovers:      reg.Counter(MetricReplicaFailovers),
		quorumFailures: reg.Counter(MetricReplicaQuorumFailures),
		resyncedObjs:   reg.Counter(MetricReplicaResyncedObjs),
		resyncSkipped:  reg.Counter(MetricReplicaResyncSkipped),
		chaseFailovers: reg.Counter(MetricChaseFailovers),
		stop:           make(chan struct{}),
	}
	for i, b := range backends {
		eb, ok := b.(EpochBackend)
		if !ok {
			return nil, fmt.Errorf("replica: backend %d does not speak the epoch verbs", i)
		}
		l := strconv.Itoa(i)
		m := &member{
			eb:          eb,
			label:       l,
			reads:       reg.Counter(MetricReplicaReads, "backend", l),
			writes:      reg.Counter(MetricReplicaWrites, "backend", l),
			failures:    reg.Counter(MetricReplicaFailures, "backend", l),
			trips:       reg.Counter(MetricReplicaTrips, "backend", l),
			recoveries:  reg.Counter(MetricReplicaRecoveries, "backend", l),
			divergences: reg.Counter(MetricReplicaDivergences, "backend", l),
			resyncs:     reg.Counter(MetricReplicaResyncs, "backend", l),
			stateGauge:  reg.Gauge(MetricReplicaState, "backend", l),
			insyncGauge: reg.Gauge(MetricReplicaInSync, "backend", l),
		}
		if cs, ok := b.(farmem.AsyncChaseStore); ok {
			m.chaser = cs
		}
		if rw, ok := b.(RangeEpochBackend); ok {
			m.reb = rw
		}
		if p, ok := b.(farmem.Pinger); ok {
			m.pinger = p
		}
		m.inSync.Store(true)
		m.insyncGauge.Set(1)
		s.members = append(s.members, m)
	}
	s.wg.Add(1)
	go s.maintLoop()
	return s, nil
}

// Obs returns the registry the replica series are published into.
func (s *Store) Obs() *obs.Registry { return s.reg }

// NumBackends returns the number of backends.
func (s *Store) NumBackends() int { return len(s.members) }

// Replicas returns the group size R.
func (s *Store) Replicas() int { return s.r }

// MemberState reports one backend's breaker state.
func (s *Store) MemberState(i int) farmem.BreakerState { return s.members[i].dom.State() }

// MemberInSync reports whether one backend is currently in the read
// set.
func (s *Store) MemberInSync(i int) bool { return s.members[i].inSync.Load() }

// SetPolicy installs the placement rule for one data structure (the
// same pin/stripe semantics as the sharded store, applied to the whole
// replica group). Must be called before the structure's objects are
// written.
func (s *Store) SetPolicy(ds int, p shardmap.Policy) {
	s.policyMu.Lock()
	s.policy[ds] = p
	s.policyMu.Unlock()
}

// GroupOf appends the replica group (ranked backend indices) for one
// object into dst.
func (s *Store) GroupOf(ds, idx int, dst []int) []int {
	return s.groupFor(ds, idx, dst)
}

func (s *Store) groupFor(ds, idx int, dst []int) []int {
	s.policyMu.RLock()
	p := s.policy[ds]
	s.policyMu.RUnlock()
	if p == shardmap.PolicyPin {
		return s.m.OwnersDS(ds, s.r, dst)
	}
	return s.m.OwnersObj(ds, idx, s.r, dst)
}

// RecoveryEpoch implements farmem.Recoverable: it advances once per
// member breaker recovery, signalling the runtime to drain write-backs
// parked while the group could not meet its write quorum.
func (s *Store) RecoveryEpoch() uint64 { return s.recoveryEpoch.Load() }

// ShouldDrain implements farmem.DrainScoper: a parked write-back is
// worth reissuing when some member of the object's group recovered
// after sinceEpoch and enough members are reachable to meet the write
// quorum.
func (s *Store) ShouldDrain(ds, idx int, sinceEpoch uint64) bool {
	var gbuf [MaxReplicas]int
	group := s.groupFor(ds, idx, gbuf[:0])
	recovered, avail := false, 0
	for _, gi := range group {
		m := s.members[gi]
		if m.dom.State() != farmem.BreakerOpen {
			avail++
		}
		if m.lastRecovery.Load() > sinceEpoch {
			recovered = true
		}
	}
	return recovered && avail >= s.w
}

// Stranded implements farmem.DrainScoper: the object's group cannot
// currently meet the write quorum, so its write-back must stay parked.
func (s *Store) Stranded(ds, idx int) bool {
	var gbuf [MaxReplicas]int
	group := s.groupFor(ds, idx, gbuf[:0])
	avail := 0
	for _, gi := range group {
		if s.members[gi].dom.State() != farmem.BreakerOpen {
			avail++
		}
	}
	return avail < s.w
}

func objKey(ds, idx int) uint64 { return uint64(ds)<<32 | uint64(uint32(idx)) }

// stampWrite assigns the next epoch for one object and records the
// image size for the resync inventory.
func (s *Store) stampWrite(ds, idx, size int) uint64 {
	k := objKey(ds, idx)
	s.epMu.Lock()
	meta := s.epochs[k]
	meta.epoch++
	meta.size = uint32(size)
	s.epochs[k] = meta
	s.epMu.Unlock()
	return meta.epoch
}

// authority returns the epoch the object's current image must carry
// (0 when the object was never written through this store — any image
// is acceptable then).
func (s *Store) authority(ds, idx int) uint64 {
	s.epMu.Lock()
	e := s.epochs[objKey(ds, idx)].epoch
	s.epMu.Unlock()
	return e
}

func (s *Store) ok(m *member) {
	if m.dom.OnSuccess() {
		m.recoveries.Inc()
		// Stamp before publishing the advance so ShouldDrain sees the
		// recovered member as soon as the runtime sees the new epoch.
		m.lastRecovery.Store(s.recoveryEpoch.Load() + 1)
		s.recoveryEpoch.Add(1)
	}
	m.stateGauge.Set(int64(farmem.BreakerClosed))
}

func (s *Store) fail(m *member) {
	m.failures.Inc()
	if m.dom.OnFailure(s.opts.BreakerThreshold) {
		m.trips.Inc()
	}
	m.stateGauge.Set(int64(m.dom.State()))
}

// markDivergent takes a member out of the read set: it missed (or may
// have missed — an uncertain sub-write counts) an epoch it should
// hold. The generation bump invalidates any resync sweep in flight.
func (s *Store) markDivergent(m *member) {
	m.divergeGen.Add(1)
	if m.inSync.CompareAndSwap(true, false) {
		m.divergences.Inc()
		m.insyncGauge.Set(0)
	}
}

// writeJoin aggregates one replicated write's sub-write completions.
// The slots' callbacks are bound once at pool-insertion time, so the
// steady-state write path allocates nothing.
type writeJoin struct {
	s         *Store
	remaining atomic.Int32
	acks      atomic.Int32
	issued    int32
	done      func(error)
	group     [MaxReplicas]int
	slots     [MaxReplicas]writeSlot
}

type writeSlot struct {
	j  *writeJoin
	m  *member
	fn func(error)
}

var writeJoinPool sync.Pool

// The pools' New hooks reference methods that in turn recycle into the
// pools, so they are bound in init to break the initialization cycle.
func init() {
	writeJoinPool.New = func() any {
		j := &writeJoin{}
		for i := range j.slots {
			sl := &j.slots[i]
			sl.j = j
			sl.fn = func(err error) { sl.j.subDone(sl, err) }
		}
		return j
	}
	readJoinPool.New = func() any {
		j := &readJoin{}
		j.fn = func(epoch uint64, err error) { j.complete(epoch, err) }
		return j
	}
}

func (j *writeJoin) subDone(sl *writeSlot, err error) {
	s := j.s
	if err == nil {
		j.acks.Add(1)
		s.ok(sl.m)
		sl.m.writes.Inc()
	} else {
		// Failed or uncertain: the member may not hold this epoch.
		s.fail(sl.m)
		s.markDivergent(sl.m)
	}
	if j.remaining.Add(-1) == 0 {
		j.finish()
	}
}

// finish runs after every issued sub-write completed — only then is
// the caller's src buffer free to recycle (the IssueWrite contract).
func (j *writeJoin) finish() {
	s, done := j.s, j.done
	acks, issued := int(j.acks.Load()), int(j.issued)
	j.done = nil
	for i := range j.slots {
		j.slots[i].m = nil
	}
	writeJoinPool.Put(j)
	switch {
	case acks >= s.w:
		done(nil)
	case issued < s.w:
		// Not enough reachable members to ever meet quorum: a contained
		// group outage — park, don't retry.
		s.quorumFailures.Inc()
		done(fmt.Errorf("replica: write quorum %d unreachable (%d live): %w", s.w, issued, farmem.ErrDegraded))
	default:
		// Enough members were up but too few acked: transport trouble,
		// worth a retry (the reissue re-stamps a fresh epoch).
		s.quorumFailures.Inc()
		done(fmt.Errorf("replica: write acked by %d of %d required replicas", acks, s.w))
	}
}

// IssueWrite implements farmem.AsyncWriteStore: stamp the next epoch,
// fan the image out to every reachable group member, and complete once
// all sub-writes finished — with success iff at least W acked. Members
// skipped while gated are marked divergent (they will miss this
// epoch); the resync sweep brings them back.
func (s *Store) IssueWrite(ds, idx int, src []byte, done func(error)) {
	j := writeJoinPool.Get().(*writeJoin)
	j.s = s
	j.done = done
	j.acks.Store(0)
	group := s.groupFor(ds, idx, j.group[:0])
	epoch := s.stampWrite(ds, idx, len(src))
	n := 0
	for _, gi := range group {
		m := s.members[gi]
		if !m.gate(s.opts.ProbeEvery) {
			s.markDivergent(m)
			continue
		}
		j.slots[n].m = m
		n++
	}
	j.issued = int32(n)
	if n == 0 {
		j.remaining.Store(1)
		j.subDoneNone()
		return
	}
	j.remaining.Store(int32(n))
	for i := 0; i < n; i++ {
		j.slots[i].m.eb.IssueWriteEpoch(ds, idx, epoch, src, j.slots[i].fn)
	}
}

// IssueWriteRanges implements farmem.RangeWriteStore: the group write
// of IssueWrite, but each member that speaks the range-epoch verb
// receives only the modified extents (the rest get the full image).
// A member whose base image missed an epoch NAKs the splice with
// remote.ErrStaleRangeBase; subDone then marks it divergent exactly
// like a failed full write, and the anti-entropy resync repairs it
// with whole objects — range writes can therefore never wedge a
// replica in a silently-diverged state.
func (s *Store) IssueWriteRanges(ds, idx int, src []byte, exts []rdma.Extent, done func(error)) {
	j := writeJoinPool.Get().(*writeJoin)
	j.s = s
	j.done = done
	j.acks.Store(0)
	group := s.groupFor(ds, idx, j.group[:0])
	epoch := s.stampWrite(ds, idx, len(src))
	n := 0
	for _, gi := range group {
		m := s.members[gi]
		if !m.gate(s.opts.ProbeEvery) {
			s.markDivergent(m)
			continue
		}
		j.slots[n].m = m
		n++
	}
	j.issued = int32(n)
	if n == 0 {
		j.remaining.Store(1)
		j.subDoneNone()
		return
	}
	j.remaining.Store(int32(n))
	for i := 0; i < n; i++ {
		m := j.slots[i].m
		if m.reb != nil {
			m.reb.IssueWriteRangesEpoch(ds, idx, epoch, src, exts, j.slots[i].fn)
		} else {
			m.eb.IssueWriteEpoch(ds, idx, epoch, src, j.slots[i].fn)
		}
	}
}

// subDoneNone completes a write that could not be issued anywhere.
func (j *writeJoin) subDoneNone() {
	if j.remaining.Add(-1) == 0 {
		j.finish()
	}
}

// WriteObj implements farmem.Store (issue + wait).
func (s *Store) WriteObj(ds, idx int, src []byte) error {
	ch := make(chan error, 1)
	s.IssueWrite(ds, idx, src, func(err error) { ch <- err })
	return <-ch
}

// readJoin walks one read down the replica ranking. Bound once per
// pooled instance, like writeJoin.
type readJoin struct {
	s        *Store
	ds, idx  int
	dst      []byte
	want     uint64
	group    [MaxReplicas]int
	glen     int
	next     int
	loose    bool
	attempts int
	start    time.Time
	cur      *member
	done     func(error)
	fn       func(uint64, error)
}

var readJoinPool sync.Pool

// IssueRead implements farmem.AsyncStore: read from the highest-ranked
// in-sync reachable member; on transport failure or a stale epoch
// stamp, fail over down the ranking — promotion of the next-ranked
// replica without dropping the in-flight op.
func (s *Store) IssueRead(ds, idx int, dst []byte, done func(error)) {
	j := readJoinPool.Get().(*readJoin)
	j.s, j.ds, j.idx, j.dst, j.done = s, ds, idx, dst, done
	j.next, j.loose, j.attempts, j.cur = 0, false, 0, nil
	group := s.groupFor(ds, idx, j.group[:0])
	j.glen = len(group)
	j.want = s.authority(ds, idx)
	if s.hub != nil {
		j.start = time.Now()
	}
	j.tryNext()
}

// ReadObj implements farmem.Store (issue + wait).
func (s *Store) ReadObj(ds, idx int, dst []byte) error {
	ch := make(chan error, 1)
	s.IssueRead(ds, idx, dst, func(err error) { ch <- err })
	return <-ch
}

// tryNext issues the read against the next eligible member of the
// ranking. The strict pass takes only in-sync members; if none is
// reachable, a loose pass accepts any reachable member — the epoch
// check still rejects stale images, so correctness is unchanged and
// availability improves while every replica happens to be resyncing.
func (j *readJoin) tryNext() {
	s := j.s
	for {
		for j.next < j.glen {
			m := s.members[j.group[j.next]]
			j.next++
			if !m.gate(s.opts.ProbeEvery) {
				continue
			}
			if !j.loose && !m.inSync.Load() {
				continue
			}
			j.cur = m
			j.attempts++
			m.eb.IssueReadEpoch(j.ds, j.idx, j.dst, j.fn)
			return
		}
		if j.loose {
			break
		}
		j.loose = true
		j.next = 0
	}
	j.finish(fmt.Errorf("replica: no replica reachable for ds%d[%d]: %w", j.ds, j.idx, farmem.ErrDegraded))
}

func (j *readJoin) complete(epoch uint64, err error) {
	s := j.s
	m := j.cur
	if err != nil {
		s.fail(m)
		s.failovers.Inc()
		j.tryNext()
		return
	}
	if epoch < j.want {
		// The backend answered but its image misses epochs it should
		// hold (e.g. it restarted with stale state before resync
		// noticed): exclude it from reads and fail over.
		s.ok(m)
		s.markDivergent(m)
		s.failovers.Inc()
		j.tryNext()
		return
	}
	s.ok(m)
	m.reads.Inc()
	j.finish(nil)
}

func (j *readJoin) finish(err error) {
	s := j.s
	if s.hub != nil && j.attempts > 1 {
		label := ""
		if j.cur != nil {
			label = j.cur.label
		}
		el := time.Since(j.start)
		s.hub.Offer(obs.SlowOp{
			Op: "read", DS: j.ds, Idx: j.idx, Shard: label,
			Attempts: j.attempts, Failover: true,
			StartUS: uint64(j.start.UnixMicro()), TotalUS: uint64(el.Microseconds()),
		})
	}
	done := j.done
	j.done, j.dst, j.cur = nil, nil, nil
	readJoinPool.Put(j)
	done(err)
}

// Ping implements farmem.Pinger at group-fleet scope: it succeeds
// while at least one backend answers — the runtime's global breaker
// models total outage; partial outages are the members' breakers' job.
func (s *Store) Ping() error {
	var firstErr error
	alive := false
	for i, m := range s.members {
		if m.pinger == nil {
			alive = true
			continue
		}
		if err := m.pinger.Ping(); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("replica: backend %d ping: %w", i, err)
			}
			continue
		}
		alive = true
	}
	if alive {
		return nil
	}
	return firstErr
}

// Close stops the maintenance loop and closes every backend that
// implements io.Closer, returning the first error.
func (s *Store) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.stop)
		s.wg.Wait()
		for _, m := range s.members {
			if c, ok := m.eb.(io.Closer); ok {
				if cerr := c.Close(); cerr != nil && err == nil {
					err = cerr
				}
			}
		}
	})
	return err
}
