package replica

import (
	"time"

	"cards/internal/farmem"
)

// Anti-entropy resync. A member that missed writes (dead, or a failed
// sub-write) is out of the read set; once its backend answers again it
// takes live writes immediately — the epoch-conditional apply on the
// server makes interleaving with the sweep safe — but rejoins reads
// only after a sweep proved every object it owns carries an epoch at
// least as new as the client-side authority, re-copying stale images
// from an in-sync survivor where it does not.

// resyncItem is one inventory entry the sweep must verify on the
// recovering member.
type resyncItem struct {
	ds, idx int
	epoch   uint64
	size    uint32
}

// maintLoop is the background maintenance goroutine: it pings open
// members (arming half-open on success, like the sharded store's
// prober) and launches the anti-entropy sweep for divergent members
// whose backend is reachable again.
func (s *Store) maintLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.ProbeEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			for _, m := range s.members {
				if m.pinger != nil && m.dom.TryProbe() {
					s.wg.Add(1)
					go func(m *member) {
						defer s.wg.Done()
						err := m.pinger.Ping()
						m.dom.ProbeDone()
						if err == nil {
							m.dom.ArmHalfOpen()
						}
					}(m)
				}
				if !m.inSync.Load() && m.dom.State() != farmem.BreakerOpen &&
					m.resyncing.CompareAndSwap(false, true) {
					s.wg.Add(1)
					go s.resync(m)
				}
			}
		}
	}
}

// inventoryFor snapshots the authority entries whose replica group
// contains m — the objects the sweep must verify.
func (s *Store) inventoryFor(m *member) []resyncItem {
	var gbuf [MaxReplicas]int
	s.epMu.Lock()
	defer s.epMu.Unlock()
	items := make([]resyncItem, 0, len(s.epochs))
	for k, meta := range s.epochs {
		ds, idx := int(k>>32), int(uint32(k))
		for _, gi := range s.groupFor(ds, idx, gbuf[:0]) {
			if s.members[gi] == m {
				items = append(items, resyncItem{ds: ds, idx: idx, epoch: meta.epoch, size: meta.size})
				break
			}
		}
	}
	return items
}

// resync runs one anti-entropy sweep against a recovering member: for
// every owned object, compare the member's stored epoch (an
// epoch-only read — zero payload) with the authority; stale objects
// are re-copied from an in-sync survivor via epoch-conditional writes,
// so racing live writes can never be clobbered by the sweep's older
// image. The member rejoins the read set only when the sweep finishes
// without the member diverging again mid-flight.
func (s *Store) resync(m *member) {
	defer s.wg.Done()
	defer m.resyncing.Store(false)
	gen := m.divergeGen.Load()
	items := s.inventoryFor(m)
	var buf []byte
	repaired, skipped := 0, 0
	for _, it := range items {
		select {
		case <-s.stop:
			return
		default:
		}
		have, err := m.eb.ReadObjEpoch(it.ds, it.idx, nil)
		if err != nil {
			// The backend died again; its breaker re-trips and the next
			// recovery restarts the sweep.
			s.fail(m)
			return
		}
		s.ok(m)
		if have >= it.epoch {
			continue
		}
		if cap(buf) < int(it.size) {
			buf = make([]byte, it.size)
		}
		ok, abort := s.repair(m, it, buf[:it.size])
		if abort {
			return
		}
		if !ok {
			// No reachable survivor holds the authoritative image — the
			// sole holder is down, or the image exists only in a parked
			// write-back whose drain will re-stamp and re-fan it. Count
			// the skip and keep sweeping so everything repairable is
			// repaired this pass, but do not rejoin below: claiming sync
			// with objects missing would silently drop the group to a
			// single copy. The next tick retries; the member rejoins once
			// a source resurfaces or the parked drain lands.
			s.resyncSkipped.Inc()
			skipped++
			continue
		}
		repaired++
	}
	if skipped > 0 {
		s.resyncedObjs.Add(uint64(repaired))
		return
	}
	if m.divergeGen.Load() != gen {
		// Missed more writes while sweeping; the next tick retries.
		return
	}
	m.inSync.Store(true)
	m.insyncGauge.Set(1)
	m.resyncs.Inc()
	s.resyncedObjs.Add(uint64(repaired))
}

// repair copies one stale object onto the target from the best
// survivor. Reports ok=false when no survivor held an image at least
// as new as the authority, abort=true when the target itself failed
// (sweep must stop). Any reachable member qualifies as a source — even
// one that is itself out of the read set: the epoch stamp on the read
// image, not the member's in-sync flag, proves per-object freshness,
// and requiring an in-sync source would wedge two concurrently
// recovering replicas that each hold objects only the other misses.
func (s *Store) repair(target *member, it resyncItem, buf []byte) (ok, abort bool) {
	var gbuf [MaxReplicas]int
	for _, gi := range s.groupFor(it.ds, it.idx, gbuf[:0]) {
		src := s.members[gi]
		if src == target || !src.gate(s.opts.ProbeEvery) {
			continue
		}
		epoch, err := src.eb.ReadObjEpoch(it.ds, it.idx, buf)
		if err != nil {
			s.fail(src)
			continue
		}
		s.ok(src)
		if epoch < it.epoch {
			continue
		}
		if err := target.eb.WriteObjEpoch(it.ds, it.idx, epoch, buf); err != nil {
			s.fail(target)
			return false, true
		}
		s.ok(target)
		return true, false
	}
	return false, false
}
