package replica

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cards/internal/farmem"
)

// fakeBackend is an in-memory EpochBackend + Pinger with a kill
// switch, standing in for one remote server plus its resilient client.
type fakeBackend struct {
	mu   sync.Mutex
	m    map[[2]int][]byte
	ep   map[[2]int]uint64
	down atomic.Bool

	reads, writes atomic.Int64
}

func newFake() *fakeBackend {
	return &fakeBackend{m: make(map[[2]int][]byte), ep: make(map[[2]int]uint64)}
}

var errDown = errors.New("fake backend down")

func (f *fakeBackend) ReadObj(ds, idx int, dst []byte) error {
	_, err := f.ReadObjEpoch(ds, idx, dst)
	return err
}

func (f *fakeBackend) WriteObj(ds, idx int, src []byte) error {
	return f.WriteObjEpoch(ds, idx, 0, src)
}

func (f *fakeBackend) ReadObjEpoch(ds, idx int, dst []byte) (uint64, error) {
	if f.down.Load() {
		return 0, errDown
	}
	f.reads.Add(1)
	f.mu.Lock()
	defer f.mu.Unlock()
	k := [2]int{ds, idx}
	n := copy(dst, f.m[k])
	for i := n; i < len(dst); i++ {
		dst[i] = 0
	}
	return f.ep[k], nil
}

func (f *fakeBackend) WriteObjEpoch(ds, idx int, epoch uint64, src []byte) error {
	if f.down.Load() {
		return errDown
	}
	f.writes.Add(1)
	f.mu.Lock()
	defer f.mu.Unlock()
	k := [2]int{ds, idx}
	if epoch < f.ep[k] {
		return nil // stale image dropped, positive ack
	}
	cp := make([]byte, len(src))
	copy(cp, src)
	f.m[k] = cp
	f.ep[k] = epoch
	return nil
}

func (f *fakeBackend) IssueReadEpoch(ds, idx int, dst []byte, done func(uint64, error)) {
	done(f.ReadObjEpoch(ds, idx, dst))
}

func (f *fakeBackend) IssueWriteEpoch(ds, idx int, epoch uint64, src []byte, done func(error)) {
	done(f.WriteObjEpoch(ds, idx, epoch, src))
}

func (f *fakeBackend) Ping() error {
	if f.down.Load() {
		return errDown
	}
	return nil
}

func (f *fakeBackend) epoch(ds, idx int) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ep[[2]int{ds, idx}]
}

func (f *fakeBackend) image(ds, idx int) []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]byte(nil), f.m[[2]int{ds, idx}]...)
}

func newTestStore(t *testing.T, n int, opts Options) (*Store, []*fakeBackend) {
	t.Helper()
	fakes := make([]*fakeBackend, n)
	backends := make([]farmem.Store, n)
	for i := range fakes {
		fakes[i] = newFake()
		backends[i] = fakes[i]
	}
	if opts.BreakerThreshold == 0 {
		opts.BreakerThreshold = 1
	}
	if opts.ProbeEvery == 0 {
		opts.ProbeEvery = 2 * time.Millisecond
	}
	s, err := New(backends, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, fakes
}

func val(i int) []byte {
	b := make([]byte, 64)
	for j := range b {
		b[j] = byte(i + j)
	}
	return b
}

func TestWriteFansOutToGroup(t *testing.T) {
	s, fakes := newTestStore(t, 3, Options{Replicas: 2})
	const objs = 32
	for i := 0; i < objs; i++ {
		if err := s.WriteObj(1, i, val(i)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	var gbuf [MaxReplicas]int
	for i := 0; i < objs; i++ {
		group := s.GroupOf(1, i, gbuf[:0])
		if len(group) != 2 {
			t.Fatalf("group size %d", len(group))
		}
		for _, gi := range group {
			if got := fakes[gi].image(1, i); !bytes.Equal(got, val(i)) {
				t.Fatalf("obj %d missing on group member %d", i, gi)
			}
			if ep := fakes[gi].epoch(1, i); ep != 1 {
				t.Fatalf("obj %d epoch %d on member %d, want 1", i, ep, gi)
			}
		}
		// And not on the non-member.
		for bi, f := range fakes {
			in := bi == group[0] || bi == group[1]
			if !in && len(f.image(1, i)) != 0 {
				t.Fatalf("obj %d leaked to non-member %d", i, bi)
			}
		}
	}
	// Rewrites bump the epoch.
	if err := s.WriteObj(1, 0, val(99)); err != nil {
		t.Fatal(err)
	}
	group := s.GroupOf(1, 0, gbuf[:0])
	if ep := fakes[group[0]].epoch(1, 0); ep != 2 {
		t.Fatalf("epoch after rewrite = %d, want 2", ep)
	}
}

func TestReadFailsOverOnDeadPrimary(t *testing.T) {
	s, fakes := newTestStore(t, 3, Options{Replicas: 2})
	const objs = 16
	for i := 0; i < objs; i++ {
		if err := s.WriteObj(1, i, val(i)); err != nil {
			t.Fatal(err)
		}
	}
	var gbuf [MaxReplicas]int
	group := s.GroupOf(1, 0, gbuf[:0])
	primary := group[0]
	fakes[primary].down.Store(true)

	// Every object still reads exactly — objects whose primary died are
	// served by the next-ranked replica; zero degraded errors.
	dst := make([]byte, 64)
	for i := 0; i < objs; i++ {
		if err := s.ReadObj(1, i, dst); err != nil {
			t.Fatalf("read %d with backend %d down: %v", i, primary, err)
		}
		if !bytes.Equal(dst, val(i)) {
			t.Fatalf("read %d returned wrong bytes after failover", i)
		}
	}
	if s.Obs().Snapshot().Counter(MetricReplicaFailovers) == 0 {
		t.Fatal("no failover was recorded")
	}
}

func TestStaleReplicaExcludedByEpoch(t *testing.T) {
	s, fakes := newTestStore(t, 2, Options{Replicas: 2})
	if err := s.WriteObj(1, 0, val(1)); err != nil {
		t.Fatal(err)
	}
	var gbuf [MaxReplicas]int
	group := s.GroupOf(1, 0, gbuf[:0])
	primary, backup := group[0], group[1]

	// The backup misses the second write (down), then comes back
	// holding a stale epoch-1 image.
	fakes[backup].down.Store(true)
	if err := s.WriteObj(1, 0, val(2)); err != nil {
		t.Fatal(err)
	}
	fakes[backup].down.Store(false)

	// Force reads toward the stale backup by killing the primary: the
	// loose pass may reach the backup, but its epoch stamp is below the
	// authority, so the read must NOT return the stale bytes.
	fakes[primary].down.Store(true)
	dst := make([]byte, 64)
	err := s.ReadObj(1, 0, dst)
	if err == nil {
		t.Fatal("read served a stale image: no current replica was reachable")
	}
	if !errors.Is(err, farmem.ErrDegraded) {
		t.Fatalf("want ErrDegraded-wrapped failure, got %v", err)
	}

	// Primary back: reads serve the current image again.
	fakes[primary].down.Store(false)
	waitFor(t, func() bool { return s.MemberState(primary) != farmem.BreakerOpen })
	if err := s.ReadObj(1, 0, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, val(2)) {
		t.Fatal("read returned stale bytes")
	}
}

func TestResyncRejoinsAfterRestart(t *testing.T) {
	s, fakes := newTestStore(t, 2, Options{Replicas: 2})
	const objs = 24
	for i := 0; i < objs; i++ {
		if err := s.WriteObj(1, i, val(i)); err != nil {
			t.Fatal(err)
		}
	}
	var gbuf [MaxReplicas]int
	group := s.GroupOf(1, 0, gbuf[:0])
	backup := group[1]

	// The backup dies and misses a round of writes.
	fakes[backup].down.Store(true)
	for i := 0; i < objs; i++ {
		if err := s.WriteObj(1, i, val(1000+i)); err != nil {
			t.Fatalf("write with backup down: %v", err)
		}
	}
	waitFor(t, func() bool { return !s.MemberInSync(backup) })

	// It returns; anti-entropy must re-copy the divergent objects from
	// the survivor and re-admit it to the read set.
	fakes[backup].down.Store(false)
	waitFor(t, func() bool { return s.MemberInSync(backup) })

	for i := 0; i < objs; i++ {
		g := s.GroupOf(1, i, gbuf[:0])
		for _, gi := range g {
			if got := fakes[gi].image(1, i); !bytes.Equal(got, val(1000+i)) {
				t.Fatalf("obj %d on member %d not resynced", i, gi)
			}
			if ep, want := fakes[gi].epoch(1, i), uint64(2); ep != want {
				t.Fatalf("obj %d on member %d epoch %d, want %d", i, gi, ep, want)
			}
		}
	}
	snap := s.Obs().Snapshot()
	if snap.Counter(MetricReplicaResyncs, "backend", fmt.Sprint(backup)) == 0 {
		t.Fatal("resync not counted")
	}
	if snap.Counter(MetricReplicaResyncedObjs) == 0 {
		t.Fatal("no objects were resynced")
	}
}

func TestQuorumUnreachableParksAndRecovers(t *testing.T) {
	s, fakes := newTestStore(t, 2, Options{Replicas: 2, WriteQuorum: 2})
	if err := s.WriteObj(1, 0, val(1)); err != nil {
		t.Fatal(err)
	}
	var gbuf [MaxReplicas]int
	group := s.GroupOf(1, 0, gbuf[:0])
	backup := group[1]
	fakes[backup].down.Store(true)

	// W=2 with one member down: the first write takes the transport
	// error (tripping the breaker at threshold 1), later ones fail fast
	// as a contained degraded condition.
	err := s.WriteObj(1, 0, val(2))
	if err == nil {
		t.Fatal("write met quorum with a member down")
	}
	waitFor(t, func() bool { return s.MemberState(backup) == farmem.BreakerOpen })
	err = s.WriteObj(1, 0, val(3))
	if !errors.Is(err, farmem.ErrDegraded) {
		t.Fatalf("want ErrDegraded-wrapped quorum failure, got %v", err)
	}
	since := s.RecoveryEpoch()
	if s.ShouldDrain(1, 0, since) {
		t.Fatal("ShouldDrain true while quorum unreachable")
	}
	if !s.Stranded(1, 0) {
		t.Fatal("Stranded false while quorum unreachable")
	}

	fakes[backup].down.Store(false)
	waitFor(t, func() bool { return s.RecoveryEpoch() > since })
	waitFor(t, func() bool { return s.ShouldDrain(1, 0, since) })
	if s.Stranded(1, 0) {
		t.Fatal("Stranded after recovery")
	}
	if err := s.WriteObj(1, 0, val(4)); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
