//go:build !race

package replica

// raceEnabled reports whether the race detector is compiled in; alloc
// guards skip under it (instrumentation defeats escape analysis, so
// closures that live on the stack in normal builds get heap-counted).
const raceEnabled = false
