package core

import (
	"testing"

	"cards/internal/guards"
	"cards/internal/policy"
	"cards/internal/trackfm"
	"cards/internal/workloads"
)

// TestDifferentialRandomPrograms is the pipeline's differential test:
// for each random program, the checksum must be identical across
//
//	(1) plain CaRDS compile + ample memory (reference),
//	(2) full CaRDS under heavy memory pressure (evictions everywhere),
//	(3) CaRDS with all instrumentation options flipped,
//	(4) the TrackFM baseline pipeline,
//
// exercising guards, RGE, versioning, pool allocation, eviction,
// prefetching and the interpreter on program shapes nobody hand-picked.
func TestDifferentialRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		ref, err := Compile(workloads.GenRandom(seed), CompileOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		refRes, err := ref.Run(RunConfig{
			Policy: policy.Linear, K: 100,
			PinnedBudget: 1 << 24, RemotableBudget: 1 << 20,
		})
		if err != nil {
			t.Fatalf("seed %d ref: %v", seed, err)
		}
		want := refRes.MainResult

		// (2) Heavy pressure, everything remotable.
		c2, err := Compile(workloads.GenRandom(seed), CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := c2.Run(RunConfig{
			Policy:       policy.AllRemotable,
			PinnedBudget: 0, RemotableBudget: 12 * 4096,
		})
		if err != nil {
			t.Fatalf("seed %d pressure: %v", seed, err)
		}
		if r2.MainResult != want {
			t.Fatalf("seed %d: pressure checksum %#x != ref %#x", seed, r2.MainResult, want)
		}

		// (3) Instrumentation variants.
		for _, opt := range []guards.Options{
			{ElideRedundant: false, Version: true},
			{ElideRedundant: true, Version: false},
			{ElideRedundant: true, InductionOnlyElision: true, Version: true},
		} {
			c3, err := Compile(workloads.GenRandom(seed), CompileOptions{Guards: opt})
			if err != nil {
				t.Fatal(err)
			}
			r3, err := c3.Run(RunConfig{
				Policy: policy.Random, K: 50, Seed: seed,
				PinnedBudget: 1 << 14, RemotableBudget: 16 * 4096,
			})
			if err != nil {
				t.Fatalf("seed %d opts %+v: %v", seed, opt, err)
			}
			if r3.MainResult != want {
				t.Fatalf("seed %d opts %+v: checksum %#x != ref %#x",
					seed, opt, r3.MainResult, want)
			}
		}

		// (4) TrackFM pipeline.
		tc, err := trackfm.Compile(workloads.GenRandom(seed))
		if err != nil {
			t.Fatal(err)
		}
		tr, err := tc.Run(trackfm.RunConfig{LocalMemory: 16 * 4096})
		if err != nil {
			t.Fatalf("seed %d trackfm: %v", seed, err)
		}
		if tr.MainResult != want {
			t.Fatalf("seed %d trackfm: checksum %#x != ref %#x", seed, tr.MainResult, want)
		}
	}
}

// TestOptimizerPreservesSemantics: the scalar optimizer must never change
// a program's result, under memory pressure or not.
func TestOptimizerPreservesSemantics(t *testing.T) {
	run := func(seed int64, optimize bool) *RunResult {
		c, err := Compile(workloads.GenRandom(seed), CompileOptions{Optimize: optimize})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(RunConfig{
			Policy:       policy.AllRemotable,
			PinnedBudget: 0, RemotableBudget: 16 * 4096,
		})
		if err != nil {
			t.Fatalf("seed %d optimize=%v: %v", seed, optimize, err)
		}
		return res
	}
	for seed := int64(200); seed < 220; seed++ {
		ref := run(seed, false)
		optRes := run(seed, true)
		if optRes.MainResult != ref.MainResult {
			t.Fatalf("seed %d: optimizer changed result %#x -> %#x",
				seed, ref.MainResult, optRes.MainResult)
		}
		// Same configuration, same semantics: the optimizer must not
		// execute MORE instructions.
		if optRes.Interp.Instructions > ref.Interp.Instructions {
			t.Errorf("seed %d: optimized runs more instructions (%d > %d)",
				seed, optRes.Interp.Instructions, ref.Interp.Instructions)
		}
	}
}
