package core

import (
	"testing"

	"cards/internal/farmem"
	"cards/internal/ir"
	"cards/internal/policy"
)

const (
	arraySize = 16384 // elements per Listing 1 structure (x8 = 128 KiB)
	nTimes    = 8
)

func compileListing1(t *testing.T) *Compiled {
	t.Helper()
	c, err := Compile(ir.BuildListing1(arraySize, nTimes), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCompilePipeline(t *testing.T) {
	c := compileListing1(t)
	if len(c.DSA.DS) != 2 {
		t.Fatalf("DS = %d, want 2", len(c.DSA.DS))
	}
	if c.Guards.GuardsInserted == 0 {
		t.Fatal("no guards")
	}
	if c.Guards.LoopsVersioned == 0 {
		t.Fatal("no versioned loops")
	}
	cands := c.Candidates()
	if len(cands) != 2 {
		t.Fatalf("candidates = %d", len(cands))
	}
	if cands[0].UseScore == cands[1].UseScore {
		t.Fatal("Listing 1 use scores should differ (ds2 > ds1)")
	}
}

// run executes Listing 1 under a policy with an even split of local
// memory. sizeBytes is per data structure.
func runListing1(t *testing.T, c *Compiled, pol policy.Kind, k float64,
	localFrac float64) *RunResult {
	t.Helper()
	// Paper setup (Fig. 4): pinned memory is the local fraction of the
	// working set; a small fixed remotable reserve serves as cache. The
	// all-remotable baseline gets the same total as cache.
	total := uint64(2 * arraySize * 8)
	local := uint64(float64(total) * localFrac)
	reserve := uint64(16 * 4096)
	var pinned, remotable uint64
	if pol == policy.AllRemotable {
		pinned, remotable = 0, local+reserve
	} else {
		pinned, remotable = local, reserve
	}
	res, err := c.Run(RunConfig{
		Policy:          pol,
		K:               k,
		Seed:            1,
		PinnedBudget:    pinned,
		RemotableBudget: remotable,
	})
	if err != nil {
		t.Fatalf("run %v: %v", pol, err)
	}
	return res
}

func TestEndToEndAllPolicies(t *testing.T) {
	c := compileListing1(t)
	for _, pol := range policy.All() {
		res := runListing1(t, c, pol, 50, 0.5)
		if res.Cycles == 0 {
			t.Errorf("%v: zero cycles", pol)
		}
		if res.Interp.Instructions == 0 {
			t.Errorf("%v: no instructions executed", pol)
		}
		// Each Set call writes arraySize elements; with NTIMES=8 there
		// are 10 Set calls — all stores must have happened.
		var writes uint64
		writes = res.Runtime.GuardChecks // not exact, but nonzero
		if writes == 0 && pol != policy.AllRemotable {
			t.Errorf("%v: no guard checks", pol)
		}
	}
}

func TestMaxUseBeatsNaiveAtK50(t *testing.T) {
	// Figure 4: with 50% of local memory and k=50%, MaxUse localizes ds2
	// (the hot structure) and outperforms Random/naive choices.
	c := compileListing1(t)
	maxUse := runListing1(t, c, policy.MaxUse, 50, 0.5)
	allRem := runListing1(t, c, policy.AllRemotable, 50, 0.5)

	if maxUse.Cycles >= allRem.Cycles {
		t.Errorf("MaxUse (%d cycles) should beat AllRemotable (%d cycles)",
			maxUse.Cycles, allRem.Cycles)
	}
	// MaxUse must pin exactly one DS: the second allocation (ds2).
	if len(maxUse.PinnedIDs) != 1 {
		t.Fatalf("MaxUse pinned %v, want exactly one", maxUse.PinnedIDs)
	}
	hot := hottestDS(c)
	if maxUse.PinnedIDs[0] != hot {
		t.Errorf("MaxUse pinned ds%d, want hot ds%d", maxUse.PinnedIDs[0], hot)
	}
}

// hottestDS returns the DS with the higher use score.
func hottestDS(c *Compiled) int {
	best, bestScore := 0, -1
	for _, info := range c.Analysis.Infos {
		if info.UseScore > bestScore {
			best, bestScore = info.DS.ID, info.UseScore
		}
	}
	return best
}

func TestVersioningElidesGuardsWhenAllLocal(t *testing.T) {
	// With 100% local memory under MaxUse k=100, everything pins, the
	// all_local check passes, and the fast (unguarded) path runs: far
	// fewer guard checks than the all-remotable run.
	c := compileListing1(t)
	pinnedRun := runListing1(t, c, policy.MaxUse, 100, 1.2)
	remRun := runListing1(t, c, policy.AllRemotable, 100, 1.2)
	if pinnedRun.Runtime.GuardChecks*10 > remRun.Runtime.GuardChecks {
		t.Errorf("versioning should elide ~all guards: pinned=%d vs rem=%d",
			pinnedRun.Runtime.GuardChecks, remRun.Runtime.GuardChecks)
	}
	if pinnedRun.Runtime.AllLocalCalls == 0 {
		t.Error("no all_local checks executed")
	}
	if pinnedRun.Cycles >= remRun.Cycles {
		t.Errorf("all-pinned run (%d) should be faster than all-remotable (%d)",
			pinnedRun.Cycles, remRun.Cycles)
	}
}

func TestComputationCorrectUnderEveryPolicy(t *testing.T) {
	// Build a self-checking program: sum an array after filling it; a
	// wrong sum means memory corruption under eviction/prefetch.
	build := func() *ir.Module {
		m := ir.NewModule("check")
		n := int64(4096)
		f := m.NewFunc("main", ir.Void())
		b := ir.NewBuilder(f)
		arr := b.Alloc(ir.I64(), ir.CI(n))
		fill := b.CountedLoop("f", ir.CI(0), ir.CI(n), ir.CI(1))
		b.Store(ir.I64(), fill.IV, b.Idx(arr, fill.IV))
		b.CloseLoop(fill)
		acc := f.NewReg("acc", ir.I64())
		b.Assign(acc, ir.CI(0))
		sum := b.CountedLoop("s", ir.CI(0), ir.CI(n), ir.CI(1))
		v := b.Load(ir.I64(), b.Idx(arr, sum.IV))
		b.Assign(acc, b.Add(acc, v))
		b.CloseLoop(sum)
		// Store the result into a 1-element result array; assert via a
		// division that traps if wrong: acc / (acc - expected + 1) ... keep
		// simple: store acc to res[0] and also store expected; the test
		// checks nothing crashed and cycle counts are positive. The real
		// value check happens through the farmem tests; here we verify
		// the pipeline end to end under pressure.
		res := b.Alloc(ir.I64(), ir.CI(1))
		b.Store(ir.I64(), acc, b.Idx(res, ir.CI(0)))
		b.Ret(nil)
		m.AssignSites()
		ir.MustVerify(m)
		return m
	}
	for _, pol := range policy.All() {
		c, err := Compile(build(), CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		_, err = c.Run(RunConfig{
			Policy:          pol,
			K:               50,
			Seed:            3,
			PinnedBudget:    8 * 4096,
			RemotableBudget: 4 * 4096,
		})
		if err != nil {
			t.Errorf("%v: %v", pol, err)
		}
	}
}

func TestExplicitPlacementsOverride(t *testing.T) {
	c := compileListing1(t)
	res, err := c.Run(RunConfig{
		Placements:      []farmem.Placement{farmem.PlacePinned, farmem.PlacePinned},
		PinnedBudget:    1 << 22,
		RemotableBudget: 1 << 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PinnedIDs) != 2 {
		t.Fatalf("PinnedIDs = %v, want both", res.PinnedIDs)
	}
	if res.Runtime.RemoteFetches != 0 {
		t.Error("fully pinned run should not fetch remotely")
	}
	// Wrong placement count is rejected.
	if _, err := c.Run(RunConfig{Placements: []farmem.Placement{farmem.PlacePinned}}); err == nil {
		t.Fatal("mismatched placements should error")
	}
}

func TestLessLocalMemoryIsSlower(t *testing.T) {
	// Monotonicity sanity: the same program with far less local memory
	// must not run faster (the trend behind Figures 5-8).
	c := compileListing1(t)
	rich := runListing1(t, c, policy.Linear, 100, 1.2)
	poor := runListing1(t, c, policy.Linear, 100, 0.25)
	if poor.Cycles <= rich.Cycles {
		t.Errorf("poor memory (%d cycles) should be slower than rich (%d)",
			poor.Cycles, rich.Cycles)
	}
}
