// Package core orchestrates the CaRDS pipeline — the paper's primary
// contribution: compile-time data structure identification feeding
// runtime policy decisions, per data structure, without profiling.
//
// Compile runs the pass pipeline of §4.1 over an IR program:
//
//	DSA (SeaDSA-style, context-sensitive)
//	→ pool allocation (Algorithm 1; handles into the runtime)
//	→ prefetching analysis + policy scoring (eq. 1, reach)
//	→ guard insertion, redundant guard elimination, code versioning
//
// Run then executes the compiled program on a fresh far-memory runtime
// configured with a remoting policy (Linear / Random / MaxReach /
// MaxUse / AllRemotable), the tunable k, and per-data-structure
// prefetchers selected from the compiler hints — reproducing the system
// measured in Figures 4–9.
package core

import (
	"fmt"

	"cards/internal/analysis"
	"cards/internal/dsa"
	"cards/internal/farmem"
	"cards/internal/guards"
	"cards/internal/interp"
	"cards/internal/ir"
	"cards/internal/netsim"
	"cards/internal/obs"
	"cards/internal/opt"
	"cards/internal/policy"
	"cards/internal/poolalloc"
	"cards/internal/prefetch"
	"cards/internal/shardmap"
)

// Compiled is a program that has been through the CaRDS pass pipeline.
type Compiled struct {
	Module   *ir.Module
	DSA      *dsa.Result
	Pool     *poolalloc.Result
	Analysis *analysis.Result
	Guards   *guards.Result
}

// CompileOptions tunes the pipeline.
type CompileOptions struct {
	// Guards configures instrumentation; zero value means full CaRDS
	// (RGE + code versioning).
	Guards guards.Options
	// DSA configures the data structure analysis (ablations can disable
	// context sensitivity).
	DSA dsa.Options
	// Optimize runs the scalar optimizer (constant folding, branch
	// folding, DCE) before the CaRDS passes, as LLVM's -O pipeline would
	// have.
	Optimize bool
	// Tracer, when non-nil, receives one wall-clock span per compiler
	// pass (category "compile") — the -trace-out view of where compile
	// time goes.
	Tracer *obs.Tracer
}

// Compile runs the full CaRDS pass pipeline on m (mutating it).
func Compile(m *ir.Module, opts CompileOptions) (*Compiled, error) {
	if opts.Guards == (guards.Options{}) {
		opts.Guards = guards.DefaultOptions()
	}
	pass := func(name string, fn func() error) error {
		done := opts.Tracer.Span("compile", name, 0)
		err := fn()
		done()
		return err
	}
	if err := pass("verify", func() error { return ir.Verify(m) }); err != nil {
		return nil, fmt.Errorf("core: input program invalid: %w", err)
	}
	if opts.Optimize {
		pass("simplify", func() error { opt.Simplify(m); return nil })
	}
	m.AssignSites()
	var (
		ds   *dsa.Result
		pool *poolalloc.Result
		an   *analysis.Result
		g    *guards.Result
	)
	pass("dsa", func() error { ds = dsa.AnalyzeWithOptions(m, opts.DSA); return nil })
	pass("poolalloc", func() error { pool = poolalloc.Transform(m, ds); return nil })
	pass("analysis", func() error { an = analysis.Analyze(m, ds); return nil })
	pass("guards", func() error { g = guards.Transform(m, ds, an, opts.Guards); return nil })
	return &Compiled{Module: m, DSA: ds, Pool: pool, Analysis: an, Guards: g}, nil
}

// Candidates converts the analysis scores into policy inputs.
func (c *Compiled) Candidates() []policy.Candidate {
	out := make([]policy.Candidate, len(c.Analysis.Infos))
	for i, info := range c.Analysis.Infos {
		out[i] = policy.Candidate{
			ID:         info.DS.ID,
			UseScore:   info.UseScore,
			ReachScore: info.ReachScore,
		}
	}
	return out
}

// RunConfig configures one execution of a compiled program.
type RunConfig struct {
	// Policy and K select the remoting policy (ignored if Placements is
	// set explicitly, e.g. by the Mira baseline).
	Policy policy.Kind
	K      float64
	Seed   int64

	// Placements overrides the policy with explicit per-DS decisions.
	Placements []farmem.Placement

	// PinnedBudget and RemotableBudget split local memory in bytes.
	PinnedBudget, RemotableBudget uint64

	// Prefetch enables per-data-structure prefetchers (on by default in
	// CaRDS; DisablePrefetch turns them off for ablations).
	DisablePrefetch bool

	// Model overrides the cost model (zero value: Table 1 defaults).
	Model netsim.CostModel

	// Store overrides the remote tier (nil: in-process store).
	Store farmem.Store

	// MaxSteps bounds interpretation (0 = interp default).
	MaxSteps uint64

	// Obs, when non-nil, is the metric registry the runtime publishes
	// into (nil: the runtime creates a private one).
	Obs *obs.Registry

	// Tracer, when non-nil, receives runtime events (fetch, prefetch,
	// evict, spill) into the bounded ring for Chrome-trace export.
	Tracer *obs.Tracer

	// TraceHub, when non-nil, makes the runtime open distributed root
	// spans on misses/prefetches/write-backs; share it with the far-tier
	// clients (remote.DialConfig.Trace) so their wire spans join the
	// same traces.
	TraceHub *obs.TraceHub

	// RetryMax reissues failed store operations (charged to the link as
	// wasted round trips plus backoff); 0 disables retries.
	RetryMax int
	// BreakerThreshold arms the runtime circuit breaker (degradation to
	// local memory after this many consecutive store failures); 0
	// disables it. See internal/farmem/breaker.go.
	BreakerThreshold int

	// RangeWriteback enables compiler-aided dirty-range write-back:
	// guard write spans and per-DS write footprints feed the runtime's
	// dirty rectangles, and evictions ship only the modified extents
	// when the store supports it. See internal/farmem/dirtyrange.go.
	RangeWriteback bool
}

// RunResult captures everything one execution measured.
type RunResult struct {
	// Cycles is the virtual execution time; Seconds its wall-clock
	// equivalent at the paper's 2.4 GHz.
	Cycles  uint64
	Seconds float64

	// ROICycles/ROISeconds cover only the program's declared region of
	// interest (zero when the program declares none).
	ROICycles  uint64
	ROISeconds float64

	Runtime farmem.RuntimeStats
	Interp  interp.Stats

	// MainResult is the value returned by the program's main (workloads
	// return checksums, so identical inputs must yield identical values
	// under every policy).
	MainResult uint64

	// PerDS is a snapshot of each data structure's counters.
	PerDS []farmem.DSStats

	// Placements records the effective placement per DS.
	Placements []farmem.Placement

	// PinnedIDs lists the statically pinned structure IDs.
	PinnedIDs []int
}

// TotalMisses sums remote misses across structures.
func (r *RunResult) TotalMisses() uint64 {
	var n uint64
	for _, d := range r.PerDS {
		n += d.Misses
	}
	return n
}

// TotalPrefetchHits sums prefetch hits across structures.
func (r *RunResult) TotalPrefetchHits() uint64 {
	var n uint64
	for _, d := range r.PerDS {
		n += d.PrefetchHits
	}
	return n
}

// NewRuntime builds and configures a runtime for the compiled program
// without running it (used by benches that drive execution themselves).
func (c *Compiled) NewRuntime(cfg RunConfig) (*farmem.Runtime, []farmem.Placement, error) {
	rt := farmem.New(farmem.Config{
		Model:            cfg.Model,
		PinnedBudget:     cfg.PinnedBudget,
		RemotableBudget:  cfg.RemotableBudget,
		Store:            cfg.Store,
		Obs:              cfg.Obs,
		Tracer:           cfg.Tracer,
		TraceHub:         cfg.TraceHub,
		RetryMax:         cfg.RetryMax,
		BreakerThreshold: cfg.BreakerThreshold,
		RangeWriteback:   cfg.RangeWriteback,
	})

	placements := cfg.Placements
	if placements == nil {
		placements = policy.Assign(cfg.Policy, c.Candidates(), cfg.K, cfg.Seed)
	}
	if len(placements) != len(c.Analysis.Infos) {
		return nil, nil, fmt.Errorf("core: %d placements for %d structures",
			len(placements), len(c.Analysis.Infos))
	}

	for i, info := range c.Analysis.Infos {
		meta := farmem.DSMeta{
			Name:       info.DS.Name(),
			ObjSize:    info.ObjSize,
			Stride:     info.Stride,
			Pattern:    mapPattern(info.Pattern),
			Recursive:  info.DS.Recursive,
			UseScore:   info.UseScore,
			ReachScore: info.ReachScore,
		}
		if info.DS.Elem != nil {
			meta.ElemSize = info.DS.Elem.Size()
			meta.PtrOffsets = ir.PointerFieldOffsets(info.DS.Elem)
		}
		meta.WriteFootprint = info.WriteFootprint
		if _, err := rt.RegisterDS(info.DS.ID, meta); err != nil {
			return nil, nil, err
		}
		if err := rt.SetPlacement(info.DS.ID, placements[i]); err != nil {
			return nil, nil, err
		}
		if ss, ok := cfg.Store.(interface {
			SetPolicy(ds int, p shardmap.Policy)
		}); ok {
			// Multi-backend far tier (sharded or replicated):
			// pointer-chasing structures pin to one shard / replica group
			// (compiler-batched prefetches stay single-backend), flat
			// pools stripe across all of them.
			ss.SetPolicy(info.DS.ID, shardmap.PolicyFor(meta.Recursive, meta.Pattern == farmem.PatternPointerChase))
		}
		if !cfg.DisablePrefetch {
			pf := prefetch.Select(prefetch.Hints{
				Pattern:    meta.Pattern,
				Recursive:  meta.Recursive,
				ElemSize:   meta.ElemSize,
				PtrOffsets: meta.PtrOffsets,
				Stride:     meta.Stride,
				ObjSize:    meta.ObjSize,
			})
			if pf != nil {
				if err := rt.SetPrefetcher(info.DS.ID, pf); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	return rt, placements, nil
}

// Run executes the compiled program once under the given configuration.
func (c *Compiled) Run(cfg RunConfig) (*RunResult, error) {
	rt, placements, err := c.NewRuntime(cfg)
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	mach, err := interp.New(c.Module, rt, interp.Options{MaxSteps: cfg.MaxSteps})
	if err != nil {
		return nil, err
	}
	mainRes, err := mach.Run()
	if err != nil {
		return nil, err
	}
	// Publish the run's final tallies so a shared cfg.Obs registry (and
	// any -metrics-out export taken from it) reflects this execution.
	rt.PublishObs()

	res := &RunResult{
		Cycles:     rt.Clock().Now(),
		Seconds:    netsim.Seconds(rt.Clock().Now(), netsim.DefaultHz),
		ROICycles:  mach.Stats().ROICycles,
		ROISeconds: netsim.Seconds(mach.Stats().ROICycles, netsim.DefaultHz),
		Runtime:    rt.Stats(),
		Interp:     mach.Stats(),
		MainResult: mainRes,
		Placements: placements,
		PinnedIDs:  policy.PinnedIDs(c.Candidates(), placements),
	}
	for i := 0; i < rt.NumDS(); i++ {
		res.PerDS = append(res.PerDS, rt.DSByID(i).Stats())
	}
	return res, nil
}

func mapPattern(p analysis.Pattern) farmem.Pattern {
	switch p {
	case analysis.PatternStrided:
		return farmem.PatternStrided
	case analysis.PatternPointerChase:
		return farmem.PatternPointerChase
	case analysis.PatternIndirect:
		return farmem.PatternIndirect
	}
	return farmem.PatternUnknown
}
