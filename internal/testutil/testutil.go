// Package testutil holds helpers shared by test suites across packages.
// Only test code imports it.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// CheckGoroutines polls until the goroutine count settles back to the
// baseline: transport clients, servers, proxies, breaker probers and
// shard probers must all have wound down. Polling (rather than one
// sample) absorbs the teardown lag of goroutines that are mid-exit when
// the test body returns.
func CheckGoroutines(t testing.TB, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// NoGoroutineLeaks snapshots the goroutine count now and registers a
// cleanup that fails the test if the count has not settled back by the
// end. Call it first thing, before any servers or clients start.
func NoGoroutineLeaks(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() { CheckGoroutines(t, before) })
}
