package dsa

import "cards/internal/ir"

// maskWords is the object span a CHASEBATCH field-filter mask can
// describe: one bit per 8-byte word. Mirrors the wire constant in
// internal/rdma (the compiler derives masks; the protocol enforces the
// same bound independently).
const maskWords = 64

// TraversalMask derives the CHASEBATCH field-filter mask for a
// server-side traversal over d's elements: the set of 8-byte words a
// pure pointer chase needs, i.e. every word holding a pointer field of
// the element type, replicated across each element packed into one
// objSize-byte object. keepOffsets names additional payload byte
// offsets (per element) the traversal reads — a list-sum keeps its
// value field, a key lookup its key field — and each named offset
// keeps the word containing it.
//
// The second result is false when no mask can describe the object:
// objSize exceeds the 64-word filter span, is not positive, or the
// element type is unknown. A false return means the caller must ship
// the program unfiltered (Mask=0, full objects) — which is also what a
// zero first result denotes, so the degenerate "mask keeps every word"
// case is canonicalised to 0.
func TraversalMask(d *DataStructure, objSize int, keepOffsets ...int) (uint64, bool) {
	if d == nil || d.Elem == nil {
		return 0, false
	}
	if objSize <= 0 || objSize > maskWords*8 {
		return 0, false
	}
	elemSize := d.Elem.Size()
	if elemSize <= 0 || elemSize > objSize {
		return 0, false
	}
	perElem := ir.PointerFieldOffsets(d.Elem)
	var mask uint64
	keep := func(off int) bool {
		// A word straddle (off%8 != 0 near the end) keeps both words.
		for w := off / 8; w <= (off+7)/8 && w < maskWords; w++ {
			mask |= uint64(1) << w
		}
		return true
	}
	for elemBase := 0; elemBase+elemSize <= objSize; elemBase += elemSize {
		for _, off := range perElem {
			keep(elemBase + off)
		}
		for _, off := range keepOffsets {
			if off < 0 || off+8 > elemSize {
				return 0, false
			}
			keep(elemBase + off)
		}
	}
	// Every word kept: the filter is a no-op — canonicalise to the wire's
	// "unfiltered" encoding so servers skip the masking pass entirely.
	words := (objSize + 7) / 8
	full := ^uint64(0) >> (maskWords - words)
	if mask == full {
		return 0, true
	}
	return mask, true
}
