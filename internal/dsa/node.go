// Package dsa implements the data structure analysis (DSA) pass of CaRDS.
//
// DSA recovers data-structure identity that the IR's type system lost
// (paper §3, first challenge): it computes, per function, a points-to
// graph whose nodes represent disjoint memory objects, then composes the
// graphs bottom-up over the call graph, cloning callee graphs at each
// call site. The cloning is what makes the analysis context-sensitive —
// the two calls to alloc() in the paper's Listing 1 yield two distinct
// heap nodes in main's graph, so ds1 and ds2 become separate data
// structure instances (paper Figure 2) even though they share an
// allocation site.
//
// The final product is the set of disjoint DataStructure instances: one
// per heap node in the root (main) graph, plus one per non-escaping heap
// node of every other function. Pool allocation (internal/poolalloc)
// consumes the per-function graphs and per-call-site clone maps to thread
// DS handles through the program, exactly as in Algorithm 1.
//
// The implementation follows Lattner & Adve's unification-based DSA as
// refined by SeaDSA: field-sensitive points-to cells (node, offset),
// union-find node merging, and node collapsing when conflicting offsets
// unify.
package dsa

import (
	"fmt"
	"sort"

	"cards/internal/ir"
)

// AllocSite identifies one heap allocation instruction.
type AllocSite struct {
	Fn   string // containing function
	Site int    // ir.Instr.Site of the OpAlloc
}

func (s AllocSite) String() string { return fmt.Sprintf("%s#%d", s.Fn, s.Site) }

// Node is a DS-graph node: an abstraction of one or more runtime memory
// objects that the program cannot distinguish. Always call Find before
// reading fields; unification links nodes union-find style.
type Node struct {
	id     int
	parent *Node
	rank   int

	// Heap marks nodes introduced by an allocation instruction; only
	// heap nodes become data structures (Figure 2 identifies only
	// heap-allocated structures).
	Heap bool

	// Indexed marks nodes accessed through a variable array index; the
	// prefetch analysis treats such structures as array-like.
	Indexed bool

	// Collapsed marks nodes whose field structure was lost (conflicting
	// offsets were unified); all edges then live at offset 0.
	Collapsed bool

	// Edges maps a byte offset within the object to the cell the pointer
	// stored at that offset targets.
	Edges map[int]Cell

	// Sites lists the allocation instructions that may create this
	// object. Cloning preserves provenance, so a root-graph node knows
	// its originating site(s).
	Sites []AllocSite

	// Elem is the first observed allocation element type.
	Elem ir.Type

	// CountConst is the allocation count when statically known, else -1.
	// (Paper §3, second challenge: sizes are *often* unknown statically —
	// CaRDS's policies must not depend on them, but when the IR does
	// expose a constant we record it for diagnostics.)
	CountConst int64
}

// Cell is a field within a node: the canonical points-to target.
type Cell struct {
	N   *Node
	Off int
}

// IsNil reports whether the cell is absent.
func (c Cell) IsNil() bool { return c.N == nil }

// Find resolves union-find indirection and canonicalizes the offset of a
// collapsed node to 0.
func (c Cell) Find() Cell {
	if c.N == nil {
		return c
	}
	n := c.N.Find()
	off := c.Off
	if n.Collapsed {
		off = 0
	}
	return Cell{N: n, Off: off}
}

// Find returns the canonical representative of the node.
func (n *Node) Find() *Node {
	root := n
	for root.parent != nil {
		root = root.parent
	}
	// Path compression.
	for n.parent != nil {
		next := n.parent
		n.parent = root
		n = next
	}
	return root
}

func (n *Node) String() string {
	n = n.Find()
	tag := ""
	if n.Heap {
		tag += "H"
	}
	if n.Indexed {
		tag += "A"
	}
	if n.Collapsed {
		tag += "C"
	}
	return fmt.Sprintf("n%d[%s]%v", n.id, tag, n.Sites)
}

// Graph is the DS graph for one function (or one SCC of mutually
// recursive functions, which share a graph).
type Graph struct {
	// Fns lists the functions sharing this graph.
	Fns []*ir.Function

	// Cells maps pointer-typed registers to their points-to cell.
	Cells map[*ir.Reg]Cell

	// Rets maps each function to the cell its return value points to.
	Rets map[string]Cell

	nodes  []*Node
	nextID int
}

// NewGraph creates an empty graph for the given functions.
func NewGraph(fns ...*ir.Function) *Graph {
	return &Graph{
		Fns:   fns,
		Cells: make(map[*ir.Reg]Cell),
		Rets:  make(map[string]Cell),
	}
}

// NewNode creates a fresh node in the graph.
func (g *Graph) NewNode() *Node {
	n := &Node{id: g.nextID, Edges: make(map[int]Cell), CountConst: -1}
	g.nextID++
	g.nodes = append(g.nodes, n)
	return n
}

// Nodes returns the canonical (representative) nodes of the graph in
// deterministic creation order.
func (g *Graph) Nodes() []*Node {
	seen := make(map[*Node]bool)
	var out []*Node
	for _, n := range g.nodes {
		r := n.Find()
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// HeapNodes returns the canonical heap nodes in creation order.
func (g *Graph) HeapNodes() []*Node {
	var out []*Node
	for _, n := range g.Nodes() {
		if n.Heap {
			out = append(out, n)
		}
	}
	return out
}

// CellOf returns the canonical points-to cell for a register, creating a
// placeholder node for pointer-typed registers seen for the first time.
// Non-pointer registers yield the nil cell.
func (g *Graph) CellOf(r *ir.Reg) Cell {
	if !ir.IsPtr(r.Type) {
		return Cell{}
	}
	if c, ok := g.Cells[r]; ok {
		return c.Find()
	}
	c := Cell{N: g.NewNode(), Off: 0}
	g.Cells[r] = c
	return c
}

// unifyTask is one pending cell unification.
type unifyTask struct{ a, b Cell }

// Unify merges two cells so they refer to the same (node, offset). Uses
// an explicit worklist: edge merging can cascade through recursive
// structures (list nodes pointing to list nodes).
func (g *Graph) Unify(a, b Cell) {
	work := []unifyTask{{a, b}}
	for len(work) > 0 {
		t := work[len(work)-1]
		work = work[:len(work)-1]
		ca, cb := t.a.Find(), t.b.Find()
		if ca.IsNil() || cb.IsNil() {
			continue
		}
		if ca.N == cb.N {
			if ca.Off != cb.Off {
				g.collapse(ca.N, &work)
			}
			continue
		}
		if ca.Off != cb.Off {
			// Conflicting field alignment: collapse both, then retry.
			g.collapse(ca.N, &work)
			g.collapse(cb.N, &work)
			work = append(work, unifyTask{Cell{ca.N, 0}, Cell{cb.N, 0}})
			continue
		}
		g.mergeNodes(ca.N, cb.N, &work)
	}
}

// mergeNodes links two canonical nodes and reconciles their payloads.
func (g *Graph) mergeNodes(a, b *Node, work *[]unifyTask) {
	if a.rank < b.rank {
		a, b = b, a
	}
	if a.rank == b.rank {
		a.rank++
	}
	b.parent = a

	a.Heap = a.Heap || b.Heap
	a.Indexed = a.Indexed || b.Indexed
	a.Sites = mergeSites(a.Sites, b.Sites)
	if a.Elem == nil {
		a.Elem = b.Elem
	}
	if a.CountConst == -1 {
		a.CountConst = b.CountConst
	} else if b.CountConst != -1 && b.CountConst != a.CountConst {
		a.CountConst = -1 // conflicting static sizes: unknown
	}
	if b.Collapsed && !a.Collapsed {
		g.collapse(a, work)
	}
	// Merge edges: matching offsets queue target unification.
	for off, tgt := range b.Edges {
		if a.Collapsed {
			off = 0
		}
		if cur, ok := a.Edges[off]; ok {
			*work = append(*work, unifyTask{cur, tgt})
		} else {
			a.Edges[off] = tgt
		}
	}
	b.Edges = nil
}

// collapse folds a node's field structure to a single offset-0 view.
func (g *Graph) collapse(n *Node, work *[]unifyTask) {
	n = n.Find()
	if n.Collapsed {
		return
	}
	n.Collapsed = true
	var targets []Cell
	for _, tgt := range n.Edges {
		targets = append(targets, tgt)
	}
	n.Edges = make(map[int]Cell)
	if len(targets) > 0 {
		n.Edges[0] = targets[0]
		for _, t := range targets[1:] {
			*work = append(*work, unifyTask{n.Edges[0], t})
		}
	}
}

// EdgeAt returns the cell targeted by the pointer stored at cell c,
// creating a placeholder target if none exists yet.
func (g *Graph) EdgeAt(c Cell) Cell {
	c = c.Find()
	if c.IsNil() {
		return Cell{}
	}
	if tgt, ok := c.N.Edges[c.Off]; ok {
		return tgt.Find()
	}
	tgt := Cell{N: g.NewNode(), Off: 0}
	c.N.Edges[c.Off] = tgt
	return tgt
}

func mergeSites(a, b []AllocSite) []AllocSite {
	seen := make(map[AllocSite]bool, len(a)+len(b))
	var out []AllocSite
	for _, s := range append(append([]AllocSite(nil), a...), b...) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fn != out[j].Fn {
			return out[i].Fn < out[j].Fn
		}
		return out[i].Site < out[j].Site
	})
	return out
}

// Reachable returns the set of canonical nodes reachable from the given
// roots through edges.
func Reachable(roots []Cell) map[*Node]bool {
	seen := make(map[*Node]bool)
	var stack []*Node
	for _, c := range roots {
		c = c.Find()
		if !c.IsNil() && !seen[c.N] {
			seen[c.N] = true
			stack = append(stack, c.N)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, tgt := range n.Edges {
			t := tgt.Find()
			if !t.IsNil() && !seen[t.N] {
				seen[t.N] = true
				stack = append(stack, t.N)
			}
		}
	}
	return seen
}

// EscapingNodes returns the canonical nodes of g visible to callers:
// those reachable from formal parameters or return cells.
func (g *Graph) EscapingNodes() map[*Node]bool {
	var roots []Cell
	for _, f := range g.Fns {
		for _, p := range f.Params {
			if ir.IsPtr(p.Type) {
				roots = append(roots, g.CellOf(p))
			}
		}
	}
	for _, c := range g.Rets {
		roots = append(roots, c)
	}
	return Reachable(roots)
}

// IsRecursive reports whether the node can reach itself through edges —
// the signature of a linked (recursive) data structure.
func IsRecursive(n *Node) bool {
	n = n.Find()
	for _, tgt := range n.Edges {
		if Reachable([]Cell{tgt})[n] {
			return true
		}
	}
	return false
}
