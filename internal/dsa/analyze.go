package dsa

import (
	"fmt"
	"sort"

	"cards/internal/cfg"
	"cards/internal/ir"
)

// DataStructure is one disjoint data structure instance identified by the
// analysis. This is the unit at which CaRDS assigns remoting and
// prefetching policies.
type DataStructure struct {
	// ID is the dense data structure handle (the value appended to the
	// non-canonical pointer bits at runtime).
	ID int

	// Node is the defining canonical node: in the root graph for
	// escaping structures, in the owning function's graph otherwise.
	Node *Node

	// Fn is the owning function for function-local (non-escaping)
	// structures; empty for root (program-wide) structures.
	Fn string

	// Sites lists the allocation sites that feed this structure.
	Sites []AllocSite

	// Elem is the element type allocated into the structure.
	Elem ir.Type

	// Recursive marks linked structures (node reaches itself).
	Recursive bool

	// CountConst is the static allocation count if known, else -1.
	CountConst int64
}

// Name renders a stable human-readable name for reports.
func (d *DataStructure) Name() string {
	site := "?"
	if len(d.Sites) > 0 {
		site = d.Sites[0].String()
	}
	if d.Fn != "" {
		return fmt.Sprintf("ds%d(local:%s@%s)", d.ID, site, d.Fn)
	}
	return fmt.Sprintf("ds%d(%s)", d.ID, site)
}

// Result is the full output of the DSA pass.
type Result struct {
	Module *ir.Module

	// Graphs maps each function name to its DS graph (functions in one
	// SCC share a graph).
	Graphs map[string]*Graph

	// CloneMaps records, per call instruction, the mapping from callee
	// canonical nodes to the caller-graph nodes they were cloned to.
	// Intra-SCC calls map to nil (identity: caller and callee share the
	// graph).
	CloneMaps map[*ir.Instr]map[*Node]*Node

	// Root is the graph of main.
	Root *Graph

	// DS lists all data structure instances, indexed by ID.
	DS []*DataStructure

	// nodeDS maps canonical defining nodes to their DS.
	nodeDS map[*Node]*DataStructure

	// fnDS maps (function, canonical node) to possible root DS IDs,
	// computed by the top-down phase. A node in a shared helper maps to
	// different DS along different call paths (ds1 vs ds2 in Listing 1).
	fnDS map[string]map[*Node][]int

	opts Options
	cg   *cfg.CallGraph
}

// Options tunes the analysis.
type Options struct {
	// ContextInsensitive disables per-call-site cloning: callee graphs
	// are unified directly with callers, so the two alloc() calls of
	// Listing 1 collapse into ONE data structure. This reproduces the
	// weaker analysis of the original pool-allocation work and exists
	// for the ablation study — it is what CaRDS's SeaDSA-based analysis
	// improves on (paper §4.1).
	ContextInsensitive bool
}

// Analyze runs the full DSA pipeline on m: local graphs, bottom-up
// inlining with per-call-site cloning, escape analysis, data structure
// enumeration, and the top-down context propagation.
func Analyze(m *ir.Module) *Result { return AnalyzeWithOptions(m, Options{}) }

// AnalyzeWithOptions runs the pipeline with explicit options.
func AnalyzeWithOptions(m *ir.Module, opts Options) *Result {
	res := &Result{
		Module:    m,
		opts:      opts,
		Graphs:    make(map[string]*Graph),
		CloneMaps: make(map[*ir.Instr]map[*Node]*Node),
		nodeDS:    make(map[*Node]*DataStructure),
		fnDS:      make(map[string]map[*Node][]int),
	}
	res.cg = cfg.BuildCallGraph(m)

	// Group functions by SCC.
	bySCC := make(map[int][]*ir.Function)
	for _, f := range m.Funcs {
		n := res.cg.Nodes[f.Name]
		bySCC[n.SCC] = append(bySCC[n.SCC], f)
	}

	// Bottom-up: Tarjan assigned callee SCCs smaller ids, so ascending
	// order visits callees before callers.
	for scc := 0; scc < res.cg.NumSCCs(); scc++ {
		fns := bySCC[scc]
		if len(fns) == 0 {
			continue
		}
		g := NewGraph(fns...)
		for _, f := range fns {
			res.Graphs[f.Name] = g
		}
		for _, f := range fns {
			res.localPass(g, f)
		}
		res.resolveCalls(g)
	}

	if main := m.Main(); main != nil {
		res.Root = res.Graphs[main.Name]
	}
	res.enumerateDS()
	res.topDown()
	return res
}

// localPass builds the intraprocedural graph for f into g.
func (res *Result) localPass(g *Graph, f *ir.Function) {
	f.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) bool {
		switch in.Op {
		case ir.OpAlloc:
			n := g.NewNode()
			n.Heap = true
			n.Sites = []AllocSite{{Fn: f.Name, Site: in.Site}}
			n.Elem = in.Elem
			if c, ok := in.Count.(ir.IntConst); ok {
				n.CountConst = c.V
			}
			g.Unify(g.CellOf(in.Dst), Cell{N: n, Off: 0})

		case ir.OpCopy:
			if src, ok := in.Src.(*ir.Reg); ok && ir.IsPtr(src.Type) && in.Dst != nil && ir.IsPtr(in.Dst.Type) {
				g.Unify(g.CellOf(in.Dst), g.CellOf(src))
			}

		case ir.OpGEP:
			base, ok := in.Base.(*ir.Reg)
			if !ok || !ir.IsPtr(base.Type) {
				break
			}
			bc := g.CellOf(base)
			if in.Index != nil {
				bc.N.Find().Indexed = true
			}
			off := bc.Off + in.ConstOff
			if bc.N.Find().Collapsed {
				off = 0
			}
			g.Unify(g.CellOf(in.Dst), Cell{N: bc.N, Off: off})

		case ir.OpLoad:
			if addr, ok := in.Addr.(*ir.Reg); ok && in.Dst != nil && ir.IsPtr(in.Dst.Type) {
				g.Unify(g.CellOf(in.Dst), g.EdgeAt(g.CellOf(addr)))
			}

		case ir.OpStore:
			addr, aok := in.Addr.(*ir.Reg)
			src, sok := in.Src.(*ir.Reg)
			if aok && sok && ir.IsPtr(src.Type) {
				g.Unify(g.EdgeAt(g.CellOf(addr)), g.CellOf(src))
			}

		case ir.OpRet:
			if v, ok := in.Src.(*ir.Reg); ok && ir.IsPtr(v.Type) {
				cur, have := g.Rets[f.Name]
				if !have {
					cur = Cell{N: g.NewNode(), Off: 0}
					g.Rets[f.Name] = cur
				}
				g.Unify(cur, g.CellOf(v))
			}

		case ir.OpGuard:
			// A guard yields a localized alias of its address operand.
			if addr, ok := in.Addr.(*ir.Reg); ok && in.Dst != nil {
				g.Unify(g.CellOf(in.Dst), g.CellOf(addr))
			}
		}
		return true
	})
}

// resolveCalls processes every call instruction in the graph's functions:
// intra-SCC calls unify formals with actuals in the shared graph;
// cross-SCC calls clone the (already complete) callee graph in.
func (res *Result) resolveCalls(g *Graph) {
	for _, f := range g.Fns {
		f.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) bool {
			if in.Op != ir.OpCall {
				return true
			}
			callee := res.Module.FuncByName(in.Callee)
			if callee == nil {
				return true
			}
			cg := res.Graphs[callee.Name]
			if cg == g {
				// Mutual recursion: shared graph, identity mapping.
				res.CloneMaps[in] = nil
				res.bindCall(g, g, in, callee, nil)
				return true
			}
			if res.opts.ContextInsensitive {
				// Ablation mode: unify the callee's cells directly —
				// every call site shares one abstraction of the callee,
				// merging instances that cloning would keep apart.
				res.CloneMaps[in] = nil
				res.bindCall(g, cg, in, callee, nil)
				return true
			}
			cloned := res.cloneInto(g, cg)
			res.CloneMaps[in] = cloned
			res.bindCall(g, cg, in, callee, cloned)
			return true
		})
	}
}

// bindCall unifies formal parameter cells (translated through the clone
// map) with actual argument cells, and the callee return with the call
// destination.
func (res *Result) bindCall(g, calleeG *Graph, call *ir.Instr, callee *ir.Function, clone map[*Node]*Node) {
	translate := func(c Cell) Cell {
		c = c.Find()
		if c.IsNil() || clone == nil {
			return c
		}
		if n, ok := clone[c.N]; ok {
			return Cell{N: n.Find(), Off: c.Off}
		}
		return Cell{} // not cloned (non-escaping in callee)
	}
	for i, p := range callee.Params {
		if i >= len(call.Args) || !ir.IsPtr(p.Type) {
			continue
		}
		arg, ok := call.Args[i].(*ir.Reg)
		if !ok || !ir.IsPtr(arg.Type) {
			continue
		}
		fc := translate(calleeG.CellOf(p))
		if !fc.IsNil() {
			g.Unify(fc, g.CellOf(arg))
		}
	}
	if call.Dst != nil && ir.IsPtr(call.Dst.Type) {
		if rc, ok := calleeG.Rets[callee.Name]; ok {
			tc := translate(rc)
			if !tc.IsNil() {
				g.Unify(tc, g.CellOf(call.Dst))
			}
		}
	}
}

// cloneInto copies the escaping subgraph of src into dst and returns the
// node mapping. Only escaping nodes flow to callers: non-escaping heap
// nodes stay function-local (they get their own local DS, mirroring
// Algorithm 1's DS_INIT path).
func (res *Result) cloneInto(dst, src *Graph) map[*Node]*Node {
	escaping := src.EscapingNodes()
	// Deterministic order: by node id.
	nodes := make([]*Node, 0, len(escaping))
	for n := range escaping {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].id < nodes[j].id })

	clone := make(map[*Node]*Node, len(nodes))
	for _, n := range nodes {
		c := dst.NewNode()
		c.Heap = n.Heap
		c.Indexed = n.Indexed
		c.Collapsed = n.Collapsed
		c.Sites = append([]AllocSite(nil), n.Sites...)
		c.Elem = n.Elem
		c.CountConst = n.CountConst
		clone[n] = c
	}
	for _, n := range nodes {
		c := clone[n]
		for off, tgt := range n.Edges {
			t := tgt.Find()
			if t.IsNil() {
				continue
			}
			if ct, ok := clone[t.N]; ok {
				c.Edges[off] = Cell{N: ct, Off: t.Off}
			}
		}
	}
	return clone
}

// enumerateDS assigns dense IDs to all disjoint data structures:
// heap nodes of the root graph first, then non-escaping heap nodes of
// every other graph, in deterministic order.
func (res *Result) enumerateDS() {
	addDS := func(n *Node, fn string) {
		n = n.Find()
		if _, dup := res.nodeDS[n]; dup {
			return
		}
		d := &DataStructure{
			ID:         len(res.DS),
			Node:       n,
			Fn:         fn,
			Sites:      n.Sites,
			Elem:       n.Elem,
			Recursive:  IsRecursive(n),
			CountConst: n.CountConst,
		}
		res.DS = append(res.DS, d)
		res.nodeDS[n] = d
	}

	if res.Root != nil {
		for _, n := range res.Root.HeapNodes() {
			addDS(n, "")
		}
	}
	// Function-local structures, in module function order.
	seenGraph := map[*Graph]bool{res.Root: true}
	for _, f := range res.Module.Funcs {
		g := res.Graphs[f.Name]
		if g == nil || seenGraph[g] {
			continue
		}
		seenGraph[g] = true
		escaping := g.EscapingNodes()
		for _, n := range g.HeapNodes() {
			if !escaping[n] {
				addDS(n, g.Fns[0].Name)
			}
		}
	}
}

// topDown propagates root identity down the call graph: for every
// function it computes which root data structures each of its graph
// nodes may represent, across all call paths from main.
func (res *Result) topDown() {
	if res.Root == nil {
		return
	}
	type mapping map[*Node]*Node // fn-graph node -> root-graph node

	// Per graph, the set of distinct mappings discovered (deduped by
	// fingerprint to terminate on recursion).
	maps := make(map[*Graph][]mapping)
	fingerprints := make(map[*Graph]map[string]bool)

	addMapping := func(g *Graph, m mapping) bool {
		fp := fingerprint(m)
		if fingerprints[g] == nil {
			fingerprints[g] = make(map[string]bool)
		}
		if fingerprints[g][fp] {
			return false
		}
		fingerprints[g][fp] = true
		maps[g] = append(maps[g], m)
		return true
	}

	// Root graph: identity over its own canonical nodes.
	ident := make(mapping)
	for _, n := range res.Root.Nodes() {
		ident[n] = n
	}
	addMapping(res.Root, ident)

	// Worklist of graphs whose mappings changed.
	work := []*Graph{res.Root}
	for len(work) > 0 {
		g := work[len(work)-1]
		work = work[:len(work)-1]
		for _, f := range g.Fns {
			f.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) bool {
				if in.Op != ir.OpCall {
					return true
				}
				callee := res.Module.FuncByName(in.Callee)
				if callee == nil {
					return true
				}
				cgraph := res.Graphs[callee.Name]
				clone := res.CloneMaps[in]
				for _, m := range maps[g] {
					nm := make(mapping)
					if clone == nil {
						// Shared graph (recursion): same mapping.
						for k, v := range m {
							nm[k] = v
						}
					} else {
						for calleeN, callerN := range clone {
							if root, ok := m[callerN.Find()]; ok {
								nm[calleeN.Find()] = root
							}
						}
					}
					if addMapping(cgraph, nm) {
						work = append(work, cgraph)
					}
				}
				return true
			})
		}
	}

	// Flatten: per function, per node, the set of root DS ids.
	for fname, g := range res.Graphs {
		out := make(map[*Node][]int)
		for _, m := range maps[g] {
			for n, root := range m {
				if d, ok := res.nodeDS[root.Find()]; ok {
					out[n.Find()] = appendUnique(out[n.Find()], d.ID)
				}
			}
		}
		// Function-local DS map to themselves.
		for n, d := range res.nodeDS {
			if d.Fn == fname {
				out[n] = appendUnique(out[n], d.ID)
			}
		}
		for _, ids := range out {
			sort.Ints(ids)
		}
		res.fnDS[fname] = out
	}
}

func appendUnique(xs []int, v int) []int {
	for _, x := range xs {
		if x == v {
			return xs
		}
	}
	return append(xs, v)
}

func fingerprint(m map[*Node]*Node) string {
	type pair struct{ a, b int }
	ps := make([]pair, 0, len(m))
	for k, v := range m {
		ps = append(ps, pair{k.Find().id, v.Find().id})
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].a != ps[j].a {
			return ps[i].a < ps[j].a
		}
		return ps[i].b < ps[j].b
	})
	return fmt.Sprint(ps)
}

// DSForNode returns the possible root data structure IDs a node of fn's
// graph may represent across call contexts.
func (res *Result) DSForNode(fn string, n *Node) []int {
	if n == nil {
		return nil
	}
	return res.fnDS[fn][n.Find()]
}

// DSForValue resolves a pointer operand inside fn to its possible data
// structure IDs.
func (res *Result) DSForValue(fn string, v ir.Value) []int {
	r, ok := v.(*ir.Reg)
	if !ok || !ir.IsPtr(r.Type) {
		return nil
	}
	g := res.Graphs[fn]
	if g == nil {
		return nil
	}
	c, ok := g.Cells[r]
	if !ok {
		return nil
	}
	return res.DSForNode(fn, c.Find().N)
}

// ByID returns the data structure with the given ID, or nil.
func (res *Result) ByID(id int) *DataStructure {
	if id < 0 || id >= len(res.DS) {
		return nil
	}
	return res.DS[id]
}

// DSOfNode returns the DataStructure whose defining node is n, or nil.
func (res *Result) DSOfNode(n *Node) *DataStructure {
	if n == nil {
		return nil
	}
	return res.nodeDS[n.Find()]
}

// CallGraph exposes the call graph computed during analysis.
func (res *Result) CallGraph() *cfg.CallGraph { return res.cg }
