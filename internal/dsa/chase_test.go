package dsa

import (
	"testing"

	"cards/internal/ir"
)

// node { int64 val; node *next } — the canonical list element: 16 bytes,
// pointer in word 1.
func listElem() ir.Type {
	return ir.NewStruct("node",
		ir.Field{Name: "val", Type: ir.IntType{}},
		ir.Field{Name: "next", Type: &ir.PtrType{Elem: ir.IntType{}}},
	)
}

func TestTraversalMaskPointerWordsOnly(t *testing.T) {
	d := &DataStructure{Elem: listElem()}
	// One element per 16-byte object: keep word 1 (the next pointer).
	mask, ok := TraversalMask(d, 16)
	if !ok {
		t.Fatal("TraversalMask refused a 16B list element")
	}
	if want := uint64(1) << 1; mask != want {
		t.Fatalf("mask = %#x, want %#x (next-pointer word only)", mask, want)
	}
}

func TestTraversalMaskKeepPayload(t *testing.T) {
	d := &DataStructure{Elem: listElem()}
	// A traversal that also reads the value field keeps word 0 too —
	// which covers the full 16-byte object, so the helper canonicalises
	// to the wire's unfiltered encoding.
	mask, ok := TraversalMask(d, 16, 0)
	if !ok || mask != 0 {
		t.Fatalf("mask = %#x ok=%v, want 0 (full object canonicalised)", mask, ok)
	}
}

func TestTraversalMaskPackedElements(t *testing.T) {
	// wide { int64 k; int64 a; int64 b; wide *next }: 32 bytes, pointer
	// in word 3. Two elements packed into a 64-byte object keep words 3
	// and 7; adding the key field keeps words 0 and 4 as well.
	elem := ir.NewStruct("wide",
		ir.Field{Name: "k", Type: ir.IntType{}},
		ir.Field{Name: "a", Type: ir.IntType{}},
		ir.Field{Name: "b", Type: ir.IntType{}},
		ir.Field{Name: "next", Type: &ir.PtrType{Elem: ir.IntType{}}},
	)
	d := &DataStructure{Elem: elem}
	mask, ok := TraversalMask(d, 64)
	if !ok {
		t.Fatal("TraversalMask refused packed elements")
	}
	if want := uint64(1)<<3 | uint64(1)<<7; mask != want {
		t.Fatalf("mask = %#x, want %#x", mask, want)
	}
	mask, ok = TraversalMask(d, 64, 0)
	if !ok {
		t.Fatal("TraversalMask refused keepOffsets")
	}
	if want := uint64(1)<<0 | uint64(1)<<3 | uint64(1)<<4 | uint64(1)<<7; mask != want {
		t.Fatalf("mask with key = %#x, want %#x", mask, want)
	}
}

func TestTraversalMaskRefusals(t *testing.T) {
	d := &DataStructure{Elem: listElem()}
	if _, ok := TraversalMask(nil, 16); ok {
		t.Error("nil structure accepted")
	}
	if _, ok := TraversalMask(&DataStructure{}, 16); ok {
		t.Error("unknown element type accepted")
	}
	if _, ok := TraversalMask(d, 0); ok {
		t.Error("zero objSize accepted")
	}
	// 1 KiB objects exceed the 64-word filter span.
	if _, ok := TraversalMask(d, 1024); ok {
		t.Error("objSize past the mask span accepted")
	}
	// keepOffsets past the element end.
	if _, ok := TraversalMask(d, 16, 16); ok {
		t.Error("out-of-range keep offset accepted")
	}
}
