package dsa

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Dump renders the analysis result in a human-readable form — the
// textual equivalent of the paper's Figure 2: per function, the graph
// nodes with their flags, allocation sites, and points-to edges, plus
// the global inventory of disjoint data structure instances.
func (res *Result) Dump(w io.Writer) {
	fmt.Fprintf(w, "data structure analysis: %d disjoint structures\n", len(res.DS))
	for _, d := range res.DS {
		rec := ""
		if d.Recursive {
			rec = " recursive"
		}
		scope := "program"
		if d.Fn != "" {
			scope = "local:" + d.Fn
		}
		elem := "?"
		if d.Elem != nil {
			elem = d.Elem.String()
		}
		fmt.Fprintf(w, "  ds%-3d %-28s elem=%-10s scope=%-16s%s\n",
			d.ID, siteList(d.Sites), elem, scope, rec)
	}

	// Per-graph view, deduplicated (SCC members share graphs).
	seen := make(map[*Graph]bool)
	names := make([]string, 0, len(res.Graphs))
	for name := range res.Graphs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := res.Graphs[name]
		if seen[g] {
			continue
		}
		seen[g] = true
		fns := make([]string, len(g.Fns))
		for i, f := range g.Fns {
			fns[i] = "@" + f.Name
		}
		fmt.Fprintf(w, "\ngraph %s:\n", strings.Join(fns, ", "))
		escaping := g.EscapingNodes()
		for _, n := range g.Nodes() {
			flags := nodeFlags(n, escaping[n])
			ds := ""
			if ids := res.DSForNode(g.Fns[0].Name, n); len(ids) > 0 {
				ds = fmt.Sprintf(" => ds%v", ids)
			}
			fmt.Fprintf(w, "  %s%s%s\n", nodeLabel(n), flags, ds)
			// Edges sorted by offset for determinism.
			offs := make([]int, 0, len(n.Edges))
			for off := range n.Edges {
				offs = append(offs, off)
			}
			sort.Ints(offs)
			for _, off := range offs {
				tgt := n.Edges[off].Find()
				if tgt.IsNil() {
					continue
				}
				fmt.Fprintf(w, "    +%d -> %s\n", off, nodeLabel(tgt.N))
			}
		}
	}
}

func nodeLabel(n *Node) string {
	n = n.Find()
	if len(n.Sites) > 0 {
		return fmt.Sprintf("n%d(%s)", n.id, siteList(n.Sites))
	}
	return fmt.Sprintf("n%d", n.id)
}

func nodeFlags(n *Node, escapes bool) string {
	n = n.Find()
	var parts []string
	if n.Heap {
		parts = append(parts, "heap")
	}
	if n.Indexed {
		parts = append(parts, "array")
	}
	if n.Collapsed {
		parts = append(parts, "collapsed")
	}
	if IsRecursive(n) {
		parts = append(parts, "recursive")
	}
	if escapes {
		parts = append(parts, "escapes")
	}
	if len(parts) == 0 {
		return ""
	}
	return " [" + strings.Join(parts, ",") + "]"
}

func siteList(sites []AllocSite) string {
	if len(sites) == 0 {
		return "<no-site>"
	}
	parts := make([]string, len(sites))
	for i, s := range sites {
		parts[i] = s.String()
	}
	return strings.Join(parts, "+")
}
