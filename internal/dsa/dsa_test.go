package dsa

import (
	"strings"
	"testing"

	"cards/internal/ir"
)

func TestListing1TwoInstances(t *testing.T) {
	m := ir.BuildListing1(256, 4)
	res := Analyze(m)

	// Figure 2: context-sensitive DSA identifies TWO disjoint heap data
	// structures even though both come from the same alloc() call site.
	if len(res.DS) != 2 {
		for _, d := range res.DS {
			t.Logf("ds: %s", d.Name())
		}
		t.Fatalf("DS count = %d, want 2", len(res.DS))
	}
	for _, d := range res.DS {
		if d.Fn != "" {
			t.Errorf("%s should be a root (escaping) structure", d.Name())
		}
		if len(d.Sites) != 1 || d.Sites[0].Fn != "alloc" {
			t.Errorf("%s: sites = %v, want single site in alloc", d.Name(), d.Sites)
		}
		if d.Recursive {
			t.Errorf("%s: flat array marked recursive", d.Name())
		}
		if d.CountConst != 256 {
			t.Errorf("%s: CountConst = %d, want 256", d.Name(), d.CountConst)
		}
	}

	// Set's parameter may alias either structure depending on call path.
	set := m.FuncByName("Set")
	ids := res.DSForValue("Set", set.Params[0])
	if len(ids) != 2 {
		t.Fatalf("Set param DS = %v, want both", ids)
	}

	// main's ds1/ds2 registers resolve to distinct single structures.
	var mainDSIDs [][]int
	m.Main().Instrs(func(_ *ir.Block, _ int, in *ir.Instr) bool {
		if in.Op == ir.OpCall && in.Callee == "alloc" && in.Dst != nil {
			mainDSIDs = append(mainDSIDs, res.DSForValue("main", in.Dst))
		}
		return true
	})
	if len(mainDSIDs) != 2 {
		t.Fatalf("expected 2 alloc call results, got %d", len(mainDSIDs))
	}
	if len(mainDSIDs[0]) != 1 || len(mainDSIDs[1]) != 1 {
		t.Fatalf("each alloc result should map to exactly one DS: %v", mainDSIDs)
	}
	if mainDSIDs[0][0] == mainDSIDs[1][0] {
		t.Fatalf("ds1 and ds2 merged: %v — analysis lost context sensitivity", mainDSIDs)
	}
}

// buildListBuilder constructs a program that builds a linked list:
//
//	node { val i64, next *node }
//	func build(n) *node { head=null-ish loop: p=alloc(node); p.next=head; head=p } ret head
//	func main() { l = build(100); ... }
func buildListProgram() *ir.Module {
	m := ir.NewModule("list")
	node := ir.NewStruct("node", ir.F("val", ir.I64()), ir.F("next", ir.Ptr(ir.I64())))

	build := m.NewFunc("build", ir.Ptr(node), ir.P("n", ir.I64()))
	b := ir.NewBuilder(build)
	head := build.NewReg("head", ir.Ptr(node))
	first := b.Alloc(node, ir.CI(1))
	b.Assign(head, first)
	loop := b.CountedLoop("i", ir.CI(0), build.Params[0], ir.CI(1))
	p := b.Alloc(node, ir.CI(1))
	b.Store(ir.Ptr(node), head, b.FieldAddr(p, node, "next"))
	b.Store(ir.I64(), loop.IV, b.FieldAddr(p, node, "val"))
	b.Assign(head, p)
	b.CloseLoop(loop)
	b.Ret(head)

	mainF := m.NewFunc("main", ir.Void())
	mb := ir.NewBuilder(mainF)
	lst := mb.Call(build, ir.CI(100))
	// Walk the list: v = lst.val
	mb.Load(ir.I64(), mb.FieldAddr(lst, node, "val"))
	mb.Ret(nil)

	m.AssignSites()
	ir.MustVerify(m)
	return m
}

func TestRecursiveStructureDetected(t *testing.T) {
	m := buildListProgram()
	res := Analyze(m)
	if len(res.DS) != 1 {
		for _, d := range res.DS {
			t.Logf("ds: %s sites=%v", d.Name(), d.Sites)
		}
		t.Fatalf("DS count = %d, want 1 (all list nodes unify)", len(res.DS))
	}
	d := res.DS[0]
	if !d.Recursive {
		t.Error("linked list should be marked Recursive")
	}
	if len(d.Sites) != 2 {
		t.Errorf("sites = %v, want the two allocs in build", d.Sites)
	}
}

func TestLocalNonEscapingDS(t *testing.T) {
	// A function that allocates a scratch buffer it never leaks.
	m := ir.NewModule("scratch")
	f := m.NewFunc("work", ir.I64())
	b := ir.NewBuilder(f)
	buf := b.Alloc(ir.I64(), ir.CI(64))
	b.Store(ir.I64(), ir.CI(7), b.Idx(buf, ir.CI(0)))
	v := b.Load(ir.I64(), b.Idx(buf, ir.CI(0)))
	b.Ret(v)

	mainF := m.NewFunc("main", ir.Void())
	mb := ir.NewBuilder(mainF)
	mb.Call(f)
	mb.Ret(nil)
	m.AssignSites()
	ir.MustVerify(m)

	res := Analyze(m)
	if len(res.DS) != 1 {
		t.Fatalf("DS count = %d, want 1", len(res.DS))
	}
	if res.DS[0].Fn != "work" {
		t.Errorf("scratch buffer should be local to work, got %q", res.DS[0].Fn)
	}
	ids := res.DSForValue("work", buf)
	if len(ids) != 1 || ids[0] != res.DS[0].ID {
		t.Errorf("DSForValue = %v", ids)
	}
}

func TestEscapeViaOutParam(t *testing.T) {
	// fill(pp **i64) { *pp = alloc(...) } — allocation escapes through a
	// pointer parameter, not the return value.
	m := ir.NewModule("outparam")
	pp := ir.Ptr(ir.Ptr(ir.I64()))
	fill := m.NewFunc("fill", ir.Void(), ir.P("pp", pp))
	fb := ir.NewBuilder(fill)
	buf := fb.Alloc(ir.I64(), ir.CI(32))
	fb.Store(ir.Ptr(ir.I64()), buf, fill.Params[0])
	fb.Ret(nil)

	mainF := m.NewFunc("main", ir.Void())
	mb := ir.NewBuilder(mainF)
	slot := mb.Alloc(ir.Ptr(ir.I64()), ir.CI(1))
	mb.Call(fill, slot)
	p := mb.Load(ir.Ptr(ir.I64()), slot)
	mb.Load(ir.I64(), p)
	mb.Ret(nil)
	m.AssignSites()
	ir.MustVerify(m)

	res := Analyze(m)
	// Two DS: the slot cell and the escaped buffer.
	if len(res.DS) != 2 {
		for _, d := range res.DS {
			t.Logf("ds: %s", d.Name())
		}
		t.Fatalf("DS count = %d, want 2", len(res.DS))
	}
	for _, d := range res.DS {
		if d.Fn != "" {
			t.Errorf("%s should be root-visible (escaped)", d.Name())
		}
	}
	// The loaded pointer in main must resolve to the buffer DS.
	ids := res.DSForValue("main", p)
	if len(ids) != 1 {
		t.Fatalf("loaded ptr DS = %v, want exactly one", ids)
	}
}

func TestCollapseOnConflictingOffsets(t *testing.T) {
	// Store the same pointer at mismatched offsets to force a collapse.
	m := ir.NewModule("collapse")
	f := m.NewFunc("main", ir.Void())
	b := ir.NewBuilder(f)
	a := b.Alloc(ir.I64(), ir.CI(8))
	p1 := b.GEP(a, nil, 0, 8)
	// Unify a+0 with a+8 by copying through the same register chain.
	c := b.Copy(a)
	b.Assign(c, p1)
	b.Load(ir.I64(), c)
	b.Ret(nil)
	m.AssignSites()
	ir.MustVerify(m)

	res := Analyze(m)
	if len(res.DS) != 1 {
		t.Fatalf("DS count = %d, want 1", len(res.DS))
	}
	if !res.DS[0].Node.Find().Collapsed {
		t.Error("node should be collapsed after conflicting-offset unify")
	}
}

func TestRecursionTerminates(t *testing.T) {
	// Mutually recursive list walkers must not hang the analysis.
	m := ir.NewModule("recur")
	node := ir.NewStruct("node", ir.F("val", ir.I64()), ir.F("next", ir.Ptr(ir.I64())))

	var walkA, walkB *ir.Function
	walkA = m.NewFunc("walkA", ir.Void(), ir.P("p", ir.Ptr(node)), ir.P("d", ir.I64()))
	walkB = m.NewFunc("walkB", ir.Void(), ir.P("p", ir.Ptr(node)), ir.P("d", ir.I64()))

	buildWalker := func(f *ir.Function, other *ir.Function) {
		b := ir.NewBuilder(f)
		stop := b.NewBlock("stop")
		rec := b.NewBlock("rec")
		b.Br(b.LE(f.Params[1], ir.CI(0)), stop, rec)
		b.SetBlock(stop)
		b.Ret(nil)
		b.SetBlock(rec)
		b.Load(ir.I64(), b.FieldAddr(f.Params[0], node, "val"))
		next := b.Load(ir.Ptr(node), b.FieldAddr(f.Params[0], node, "next"))
		b.Call(other, next, b.Sub(f.Params[1], ir.CI(1)))
		b.Ret(nil)
	}
	buildWalker(walkA, walkB)
	buildWalker(walkB, walkA)

	mainF := m.NewFunc("main", ir.Void())
	mb := ir.NewBuilder(mainF)
	head := mb.Alloc(node, ir.CI(1))
	mb.Store(ir.Ptr(node), head, mb.FieldAddr(head, node, "next")) // self-loop
	mb.Call(walkA, head, ir.CI(10))
	mb.Ret(nil)
	m.AssignSites()
	ir.MustVerify(m)

	res := Analyze(m)
	if len(res.DS) != 1 {
		t.Fatalf("DS count = %d, want 1", len(res.DS))
	}
	if !res.DS[0].Recursive {
		t.Error("self-linked node should be Recursive")
	}
	// Both walkers see the same root DS.
	for _, fn := range []string{"walkA", "walkB"} {
		f := m.FuncByName(fn)
		ids := res.DSForValue(fn, f.Params[0])
		if len(ids) != 1 || ids[0] != res.DS[0].ID {
			t.Errorf("%s param DS = %v, want [%d]", fn, ids, res.DS[0].ID)
		}
	}
}

func TestDeterministicIDs(t *testing.T) {
	sig := func() []string {
		res := Analyze(ir.BuildListing1(64, 2))
		out := make([]string, len(res.DS))
		for i, d := range res.DS {
			out[i] = d.Name()
		}
		return out
	}
	a, b := sig(), sig()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("DS %d differs across runs: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestIndexedFlag(t *testing.T) {
	m := ir.BuildListing1(64, 2)
	res := Analyze(m)
	for _, d := range res.DS {
		if !d.Node.Find().Indexed {
			t.Errorf("%s: array accessed via loop index should be Indexed", d.Name())
		}
	}
}

func TestByIDBounds(t *testing.T) {
	res := Analyze(ir.BuildListing1(16, 1))
	if res.ByID(-1) != nil || res.ByID(len(res.DS)) != nil {
		t.Error("ByID out of range should return nil")
	}
	if res.ByID(0) == nil {
		t.Error("ByID(0) should exist")
	}
	if res.DSOfNode(nil) != nil {
		t.Error("DSOfNode(nil) should be nil")
	}
}

func TestDSForValueNonPointer(t *testing.T) {
	m := ir.BuildListing1(16, 1)
	res := Analyze(m)
	if ids := res.DSForValue("main", ir.CI(3)); ids != nil {
		t.Errorf("constant operand DS = %v, want nil", ids)
	}
	set := m.FuncByName("Set")
	if ids := res.DSForValue("Set", set.Params[1]); ids != nil {
		t.Errorf("integer param DS = %v, want nil", ids)
	}
}

func TestDumpRendersGraphs(t *testing.T) {
	m := ir.BuildListing1(64, 2)
	res := Analyze(m)
	var buf strings.Builder
	res.Dump(&buf)
	text := buf.String()
	for _, want := range []string{
		"2 disjoint structures", "ds0", "ds1", "alloc#0",
		"graph @main", "graph @alloc", "heap", "escapes", "=> ds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("dump missing %q:\n%s", want, text)
		}
	}
	// Determinism.
	var buf2 strings.Builder
	Analyze(ir.BuildListing1(64, 2)).Dump(&buf2)
	if buf.String() != buf2.String() {
		t.Error("dump is nondeterministic")
	}
}
