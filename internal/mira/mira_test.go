package mira

import (
	"testing"

	"cards/internal/core"
	"cards/internal/farmem"
	"cards/internal/ir"
	"cards/internal/policy"
)

const (
	arraySize = 16384
	nTimes    = 8
)

func compileListing1(t *testing.T) *core.Compiled {
	t.Helper()
	c, err := core.Compile(ir.BuildListing1(arraySize, nTimes), core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestProfileFindsHotStructure(t *testing.T) {
	c := compileListing1(t)
	prof, err := ProfileRun(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Sizes) != 2 {
		t.Fatalf("profiled %d structures, want 2", len(prof.Sizes))
	}
	// Both structures have the same size but very different access
	// counts (ds2 is written NTIMES+1 times).
	if prof.Sizes[0] != prof.Sizes[1] {
		t.Errorf("sizes = %v, want equal", prof.Sizes)
	}
	if prof.Sizes[0] != arraySize*8 {
		t.Errorf("size = %d, want %d", prof.Sizes[0], arraySize*8)
	}
	hot, cold := 0, 1
	if prof.Accesses[1] > prof.Accesses[0] {
		hot, cold = 1, 0
	}
	if prof.Accesses[hot] < 5*prof.Accesses[cold] {
		t.Errorf("accesses = %v: hot structure should dominate", prof.Accesses)
	}
	if prof.Density(hot) <= prof.Density(cold) {
		t.Error("density ordering wrong")
	}
}

func TestPlaceRespectsBudget(t *testing.T) {
	prof := &Profile{
		Sizes:    []uint64{100, 200, 300},
		Accesses: []uint64{1000, 100, 10},
	}
	p := Place(prof, 250)
	// Density order: ds0 (10/B), ds1 (0.5/B), ds2 (0.033/B).
	// Budget 250: pin ds0 (100); ds1 (200) no longer fits (300 > 250).
	if p[0] != farmem.PlacePinned {
		t.Error("hottest-density structure should pin")
	}
	if p[1] != farmem.PlaceRemotable || p[2] != farmem.PlaceRemotable {
		t.Errorf("placements = %v", p)
	}
	// Zero-budget pins nothing.
	p0 := Place(prof, 0)
	for i, pl := range p0 {
		if pl != farmem.PlaceRemotable {
			t.Errorf("zero budget pinned ds%d", i)
		}
	}
	// Huge budget pins everything with accesses.
	pAll := Place(prof, 1<<40)
	for i, pl := range pAll {
		if pl != farmem.PlacePinned {
			t.Errorf("unbounded budget should pin ds%d", i)
		}
	}
}

func TestPlaceSkipsIdleStructures(t *testing.T) {
	prof := &Profile{Sizes: []uint64{100, 0}, Accesses: []uint64{0, 0}}
	p := Place(prof, 1000)
	for i, pl := range p {
		if pl != farmem.PlaceRemotable {
			t.Errorf("idle ds%d should stay remotable", i)
		}
	}
}

func TestMiraPinsHotStructureOnListing1(t *testing.T) {
	// With pinned budget for exactly one structure, Mira's oracle must
	// pick the hot one — matching what CaRDS MaxUse infers statically.
	prof, err := ProfileRun(compileListing1(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	placements := Place(prof, arraySize*8)
	pinned := -1
	for i, p := range placements {
		if p == farmem.PlacePinned {
			if pinned != -1 {
				t.Fatal("only one structure fits the budget")
			}
			pinned = i
		}
	}
	if pinned == -1 {
		t.Fatal("nothing pinned")
	}
	if prof.Accesses[pinned] < prof.Accesses[1-pinned] {
		t.Error("Mira pinned the cold structure")
	}
}

func TestMiraEndToEndCompetitive(t *testing.T) {
	// Figure 8 shape on Listing 1: Mira (profile-guided) should be at
	// least as good as CaRDS MaxUse, and CaRDS should be within ~25%.
	budget := uint64(arraySize * 8)
	reserve := uint64(16 * 4096)

	miraRes, _, err := Run(compileListing1(t), compileListing1(t), core.RunConfig{
		PinnedBudget:    budget,
		RemotableBudget: reserve,
	})
	if err != nil {
		t.Fatal(err)
	}

	cds := compileListing1(t)
	cdsRes, err := cds.Run(core.RunConfig{
		Policy:          policy.MaxUse,
		K:               50,
		PinnedBudget:    budget,
		RemotableBudget: reserve,
	})
	if err != nil {
		t.Fatal(err)
	}
	if miraRes.Cycles == 0 || cdsRes.Cycles == 0 {
		t.Fatal("zero cycles")
	}
	ratio := float64(cdsRes.Cycles) / float64(miraRes.Cycles)
	t.Logf("CaRDS/Mira cycle ratio on Listing 1: %.3f", ratio)
	// On this microbenchmark both pin ds2, so they should be close.
	if ratio > 1.5 {
		t.Errorf("CaRDS more than 1.5x slower than Mira on Listing 1 (ratio %.2f)", ratio)
	}
}
