// Package mira implements the Mira baseline (Guo et al., SOSP '23), the
// profile-guided far-memory compiler CaRDS is compared against in
// Figure 8.
//
// Mira's defining property, as the CaRDS paper frames it, is that "a
// memory profiler is used to determine allocation sizes, and only those
// objects with large sizes are further analyzed to decide on the
// appropriate far memory policies" — i.e. Mira gets to see exactly how
// big each data structure is and how often it is touched before deciding
// what stays local. We reproduce that with a two-phase harness:
//
//  1. a profiling run over the same compiled program with everything
//     remotable and an unconstrained cache, which records per-structure
//     sizes and access counts (the "several runs of the application"
//     cost the paper attributes to profiling systems);
//  2. a production run in which local placement is chosen by a greedy
//     fractional-knapsack over access density (accesses per byte) —
//     the size-aware decision CaRDS cannot make without profiling.
//
// The original Mira implementation is incomplete (the CaRDS authors
// could not reproduce its NYC benchmark either and used a projected
// curve); this harness reproduces the *behavioural contract* — oracle,
// size-aware placement from profiling — on our substrate.
package mira

import (
	"sort"

	"cards/internal/core"
	"cards/internal/farmem"
)

// Profile holds what the profiling run learned about each structure.
type Profile struct {
	Sizes    []uint64 // bytes allocated per DS
	Accesses []uint64 // derefs (hits+misses+cold faults) per DS
}

// Density returns accesses per byte for structure i.
func (p *Profile) Density(i int) float64 {
	if p.Sizes[i] == 0 {
		return 0
	}
	return float64(p.Accesses[i]) / float64(p.Sizes[i])
}

// ProfileRun executes the profiling pass: everything remotable, cache
// large enough that placement does not distort the counts.
func ProfileRun(c *core.Compiled, buildModule func() *core.Compiled) (*Profile, error) {
	// Profiling runs on a fresh copy of the program when provided (the
	// compiled module is mutable state); otherwise reuse c.
	prog := c
	if buildModule != nil {
		prog = buildModule()
	}
	n := len(prog.Analysis.Infos)
	placements := make([]farmem.Placement, n)
	for i := range placements {
		placements[i] = farmem.PlaceRemotable
	}
	res, err := prog.Run(core.RunConfig{
		Placements:      placements,
		PinnedBudget:    0,
		RemotableBudget: 1 << 34, // effectively unconstrained
	})
	if err != nil {
		return nil, err
	}
	p := &Profile{Sizes: make([]uint64, n), Accesses: make([]uint64, n)}
	for i, st := range res.PerDS {
		p.Sizes[i] = st.RemoteBytes + st.PinnedBytes
		p.Accesses[i] = st.Hits + st.Misses + st.ColdFaults
	}
	return p, nil
}

// Place chooses placements from a profile: structures are ranked by
// access density and pinned greedily while their *known* sizes fit the
// pinned budget — the size-aware decision profiling buys.
func Place(p *Profile, pinnedBudget uint64) []farmem.Placement {
	n := len(p.Sizes)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		da, db := p.Density(idx[a]), p.Density(idx[b])
		if da != db {
			return da > db
		}
		return idx[a] < idx[b]
	})
	out := make([]farmem.Placement, n)
	var used uint64
	for i := range out {
		out[i] = farmem.PlaceRemotable
	}
	for _, i := range idx {
		if p.Sizes[i] == 0 || p.Accesses[i] == 0 {
			continue
		}
		if used+p.Sizes[i] <= pinnedBudget {
			out[i] = farmem.PlacePinned
			used += p.Sizes[i]
		}
	}
	return out
}

// Run performs the full Mira flow: profile (on profileProg, a fresh
// compile of the same program) then the production run on prodProg with
// profile-guided placement.
func Run(profileProg, prodProg *core.Compiled, cfg core.RunConfig) (*core.RunResult, *Profile, error) {
	prof, err := ProfileRun(profileProg, nil)
	if err != nil {
		return nil, nil, err
	}
	cfg.Placements = Place(prof, cfg.PinnedBudget)
	res, err := prodProg.Run(cfg)
	if err != nil {
		return nil, prof, err
	}
	return res, prof, nil
}
