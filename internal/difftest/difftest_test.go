package difftest

import (
	"testing"

	"cards/internal/ir"
	"cards/internal/testutil"
	"cards/internal/workloads"
)

func buildList(n int64) func() (*ir.Module, error) {
	return func() (*ir.Module, error) {
		w, err := workloads.BuildChase("list", workloads.ChaseConfig{N: n, Seed: 9})
		if err != nil {
			return nil, err
		}
		return w.Module, nil
	}
}

// TestOffloadExactCleanLink is the no-chaos differential: on a clean
// link the offloaded pointer chase must match the oracle and actually
// engage — programs issued, path objects staged ahead of demand, and
// derefs served from the staging area. The list is built in traversal
// order and is far longer than one hop budget, so exactness here also
// covers the continuation path (budget-bounded programs resumed from
// the ChaseHops resume address).
func TestOffloadExactCleanLink(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	_, offload := Run(t, buildList(4096), Config{})
	st := offload.Stats
	if st.ChasesIssued == 0 {
		t.Fatal("offload mode issued no chase programs: the offload path never engaged")
	}
	if st.ChaseHopsStaged == 0 {
		t.Fatal("no path objects staged: chase replies never reached the staging area")
	}
	if st.ChaseStagingHits == 0 {
		t.Fatal("no derefs served from chase staging: offload did useful no work")
	}
	t.Logf("clean link: %d programs, %d hops staged, %d staging hits, %d stale, %d fallbacks",
		st.ChasesIssued, st.ChaseHopsStaged, st.ChaseStagingHits, st.ChaseStale, st.ChaseFallbacks)
}

// TestOffloadExactUnderChaos is the headline differential: the same
// pointer chase under a seeded chaos schedule — connections cut every
// 12 KiB (often enough that chase replies die mid-flight and replay)
// and 1% of forwarded chunks corrupted — must stay bit-identical
// across all three modes, with well over a thousand injected faults
// between the two remote runs. Offloaded chases ride the idempotent
// read path, so a replayed CHASEBATCH must deliver exactly the bytes
// the per-hop replay would have.
func TestOffloadExactUnderChaos(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	perhop, offload := Run(t, buildList(32768), Config{
		Spec:     "cut=12288,corrupt=0.01,seed=7",
		RetryMax: 8,
		Window:   8,
		MaxBatch: 2,
	})
	faults := perhop.Cuts + perhop.Corruptions + offload.Cuts + offload.Corruptions
	if faults < 1000 {
		t.Errorf("only %d injected faults across the remote runs, want >= 1000 (schedule too gentle)", faults)
	}
	if offload.Stats.ChasesIssued == 0 {
		t.Error("offload mode issued no chase programs under chaos")
	}
	t.Logf("chaos: %d faults (per-hop %d cuts/%d corruptions, offload %d cuts/%d corruptions); offload stats: %+d programs, %d staged, %d hits, %d fallbacks",
		faults, perhop.Cuts, perhop.Corruptions, offload.Cuts, offload.Corruptions,
		offload.Stats.ChasesIssued, offload.Stats.ChaseHopsStaged,
		offload.Stats.ChaseStagingHits, offload.Stats.ChaseFallbacks)
}

// TestRangeWritebackExactUnderChaos is the dirty-range differential:
// the BFS workload with compiler-aided range write-back live on the
// offloaded mode, under a cut+corruption schedule. Cuts kill range
// writes in uncertain states (issued, outcome unknown); the runtime's
// synchronous reissue replays the FULL staged image, so a double-
// applied or lost splice would surface as a checksum divergence on the
// next fetch of that object. The per-hop control hides the range
// surface and stays on full-object writes — same server code, range
// path off.
func TestRangeWritebackExactUnderChaos(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	build := func() (*ir.Module, error) {
		return workloads.BuildBFS(workloads.BFSConfig{
			Vertices: 512, Degree: 6, Trials: 2, Seed: 11}).Module, nil
	}
	perhop, offload := Run(t, build, Config{
		Spec:           "cut=32768,corrupt=0.01,seed=13",
		RetryMax:       8,
		Window:         8,
		MaxBatch:       2,
		RangeWriteback: true,
	})
	if perhop.Stats.RangeWriteBacks != 0 {
		t.Errorf("per-hop control took %d range write-backs; its store hides the range surface",
			perhop.Stats.RangeWriteBacks)
	}
	if offload.Stats.RangeWriteBacks == 0 {
		t.Error("range-writeback mode shipped no extents: the range path never engaged")
	}
	t.Logf("range chaos: %d range write-backs, %d bytes saved, %d cuts/%d corruptions",
		offload.Stats.RangeWriteBacks, offload.Stats.RangeBytesSaved,
		offload.Cuts, offload.Corruptions)
}

// TestBFSExactUnderChaos reuses the harness for the BFS e2e suite: a
// graph traversal whose adjacency structure is not a single-successor
// chain, so offload may engage only partially (or not at all) — but
// the three-way equivalence must hold regardless. This is the guard
// against the offload path perturbing workloads it cannot serve.
func TestBFSExactUnderChaos(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	build := func() (*ir.Module, error) {
		return workloads.BuildBFS(workloads.BFSConfig{
			Vertices: 512, Degree: 6, Trials: 2, Seed: 11}).Module, nil
	}
	Run(t, build, Config{
		Spec:     "cut=32768,corrupt=0.01,seed=7",
		RetryMax: 8,
		Window:   8,
		MaxBatch: 2,
	})
}
