// Package difftest is the differential-testing harness that proves the
// traversal-offload path exact: every traversal workload runs three
// ways — against the in-process store (the oracle), against a TCP far
// tier with offload hidden (serial per-hop reads), and against the same
// far tier with CHASEBATCH offload live — and the three checksums must
// be bit-identical. The remote modes run through the faultnet chaos
// proxy under a seeded schedule, so the equivalence holds not just on a
// clean link but across forced disconnects and corrupted frames: an
// offloaded chase that survived a replay must deliver exactly the bytes
// the per-hop path would have.
//
// The harness is what the pointer-chase and BFS e2e suites build on;
// it returns each mode's runtime tallies so callers can additionally
// pin the offload accounting (programs issued, hops staged, staging
// hits, stale drops, fallbacks).
package difftest

import (
	"testing"
	"time"

	"cards/internal/core"
	"cards/internal/farmem"
	"cards/internal/faultnet"
	"cards/internal/ir"
	"cards/internal/policy"
	"cards/internal/remote"
)

// Outcome is one remote mode's run: the workload checksum plus the
// runtime tallies and injected-fault counts behind it.
type Outcome struct {
	Checksum    uint64
	Stats       farmem.RuntimeStats
	Cuts        int64
	Corruptions int64
}

// Config shapes one differential run.
type Config struct {
	// Spec is the faultnet schedule for the remote modes ("" = clean
	// link; see faultnet.ParseSpec).
	Spec string
	// RemotableBudget sizes the local cache in bytes (0: 8 x 4 KiB —
	// small enough that real traversals leave the cache constantly).
	RemotableBudget uint64
	// RetryMax reissues failed store operations (chaos runs need it).
	RetryMax int
	// Window and MaxBatch shape the pipelined session. Chaos runs keep
	// batches small so coalesced reply frames fit the cut budget.
	Window, MaxBatch int
	// RangeWriteback turns on compiler-aided dirty-range write-back for
	// the remote modes: evicted dirty objects ship only their modified
	// extents over the compact WRITERANGE verb (the per-hop control
	// hides the range surface, so it stays on full-object writes). The
	// differential then also proves range splices exact across replayed
	// and duplicated writes: a lost or misapplied extent would surface
	// as a checksum divergence on the next fetch of that object.
	RangeWriteback bool
	// Compression sets the compact tier's compression mode for the
	// remote modes ("" = adaptive, "off" = raw).
	Compression string
}

func (c Config) withDefaults() Config {
	if c.RemotableBudget == 0 {
		c.RemotableBudget = 8 * 4096
	}
	return c
}

// perHop hides a session's traversal-offload surface while leaving the
// pipelined read/write path intact: the farmem runtime's capability
// detection (type assertions) sees an async store but no chase verbs,
// so every traversal pays one dependent round trip per hop. This is
// the differential control — same server, same chaos schedule, offload
// off.
type perHop struct{ c *remote.PipelinedClient }

func (p perHop) ReadObj(ds, idx int, dst []byte) error  { return p.c.ReadObj(ds, idx, dst) }
func (p perHop) WriteObj(ds, idx int, src []byte) error { return p.c.WriteObj(ds, idx, src) }
func (p perHop) IssueRead(ds, idx int, dst []byte, done func(error)) {
	p.c.IssueRead(ds, idx, dst, done)
}
func (p perHop) IssueWrite(ds, idx int, src []byte, done func(error)) {
	p.c.IssueWrite(ds, idx, src, done)
}
func (p perHop) Ping() error { return p.c.Ping() }

// compile-time capability contract: the control forwards the async
// surfaces but must never grow the chase ones.
var (
	_ farmem.AsyncStore      = perHop{}
	_ farmem.AsyncWriteStore = perHop{}
	_ farmem.Pinger          = perHop{}
)

// run executes one compiled workload against store (nil: the oracle's
// in-process store) and returns the run result.
func run(t testing.TB, build func() (*ir.Module, error), cfg Config, store farmem.Store) *core.RunResult {
	t.Helper()
	m, err := build()
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Compile(m, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(core.RunConfig{
		Policy:          policy.AllRemotable,
		PinnedBudget:    0,
		RemotableBudget: cfg.RemotableBudget,
		Store:           store,
		RetryMax:        cfg.RetryMax,
		RangeWriteback:  cfg.RangeWriteback,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// dialPipelined dials through the chaos proxy until the negotiation
// yields the pipelined client (under corruption the handshake itself
// can be garbled, in which case the serial fallback is closed and the
// dial retried — the serial protocol has no CRC and must not carry
// payloads across a corrupting link).
func dialPipelined(t testing.TB, addr string, cfg Config) *remote.PipelinedClient {
	t.Helper()
	dc := remote.DialConfig{
		Timeout:     300 * time.Millisecond,
		RetryMax:    64,
		RetryBase:   time.Millisecond,
		RetryCap:    20 * time.Millisecond,
		Window:      cfg.Window,
		MaxBatch:    cfg.MaxBatch,
		Compression: cfg.Compression,
	}
	for i := 0; i < 50; i++ {
		c, err := remote.DialAutoOpts(addr, dc)
		if err != nil {
			continue
		}
		if pc, ok := c.(*remote.PipelinedClient); ok {
			return pc
		}
		c.Close()
	}
	t.Fatal("difftest: could not negotiate a pipelined connection through the chaos proxy")
	return nil
}

// remoteMode runs the workload against a fresh server through a fresh
// chaos proxy, with the traversal-offload surface either live or
// hidden. Each mode gets its own server and proxy so the fault
// schedules are independently seeded and the stores start cold.
func remoteMode(t testing.TB, build func() (*ir.Module, error), cfg Config, offload bool) Outcome {
	t.Helper()
	srv := remote.NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	fcfg, err := faultnet.ParseSpec(cfg.Spec)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := faultnet.NewProxy("127.0.0.1:0", addr, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	cl := dialPipelined(t, proxy.Addr(), cfg)
	defer cl.Close()

	var store farmem.Store = cl
	if !offload {
		store = perHop{c: cl}
	}
	res := run(t, build, cfg, store)
	return Outcome{
		Checksum:    res.MainResult,
		Stats:       res.Runtime,
		Cuts:        proxy.Cuts(),
		Corruptions: proxy.Corruptions(),
	}
}

// Run is the harness: the workload's oracle checksum, then the per-hop
// and offloaded remote runs, all three asserted bit-identical. It
// returns the per-hop and offloaded outcomes for the caller to pin
// accounting and fault-volume expectations on.
func Run(t testing.TB, build func() (*ir.Module, error), cfg Config) (perhop, offload Outcome) {
	t.Helper()
	cfg = cfg.withDefaults()

	oracle := run(t, build, cfg, nil).MainResult

	perhop = remoteMode(t, build, cfg, false)
	if perhop.Checksum != oracle {
		t.Errorf("per-hop checksum %#x != oracle %#x", perhop.Checksum, oracle)
	}
	if perhop.Stats.ChasesIssued != 0 {
		t.Errorf("per-hop mode issued %d chase programs; the control must stay offload-free",
			perhop.Stats.ChasesIssued)
	}

	offload = remoteMode(t, build, cfg, true)
	if offload.Checksum != oracle {
		t.Errorf("offloaded checksum %#x != oracle %#x", offload.Checksum, oracle)
	}
	checkAccounting(t, offload.Stats)
	return perhop, offload
}

// checkAccounting pins the offload tallies' internal consistency — the
// "exact obs accounting" half of the differential contract. The counts
// must tell a coherent story whatever the fault schedule did:
// staged hops only come from issued programs, staging hits only from
// staged hops, and every issued program is also counted as an issued
// prefetch (the chase path reports through the standard prefetch
// accuracy metrics, so the adaptive machinery sees it).
func checkAccounting(t testing.TB, s farmem.RuntimeStats) {
	t.Helper()
	if s.ChaseHopsStaged > 0 && s.ChasesIssued == 0 {
		t.Errorf("chase accounting: %d hops staged with zero programs issued", s.ChaseHopsStaged)
	}
	if s.ChaseStagingHits > s.ChaseHopsStaged {
		t.Errorf("chase accounting: %d staging hits exceed %d staged hops",
			s.ChaseStagingHits, s.ChaseHopsStaged)
	}
	if s.ChaseStale > 0 && s.ChasesIssued == 0 {
		t.Errorf("chase accounting: %d stale drops with zero programs issued", s.ChaseStale)
	}
}
