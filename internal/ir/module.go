package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Block is a basic block: a label, a straight-line instruction sequence,
// and a single terminator as the final instruction.
type Block struct {
	Name   string
	Instrs []*Instr
	fn     *Function
}

// Func returns the function containing the block.
func (b *Block) Func() *Function { return b.fn }

// Term returns the block terminator, or nil if the block is unterminated.
func (b *Block) Term() *Instr {
	if n := len(b.Instrs); n > 0 && b.Instrs[n-1].IsTerminator() {
		return b.Instrs[n-1]
	}
	return nil
}

// Succs returns the block's control-flow successors.
func (b *Block) Succs() []*Block {
	t := b.Term()
	if t == nil {
		return nil
	}
	switch t.Op {
	case OpBr:
		if t.Then == t.Else {
			return []*Block{t.Then}
		}
		return []*Block{t.Then, t.Else}
	case OpJmp:
		return []*Block{t.Target}
	}
	return nil
}

// Append adds an instruction to the end of the block.
func (b *Block) Append(in *Instr) { b.Instrs = append(b.Instrs, in) }

// InsertBefore inserts in immediately before position idx.
func (b *Block) InsertBefore(idx int, in *Instr) {
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[idx+1:], b.Instrs[idx:])
	b.Instrs[idx] = in
}

// Function is a procedure: parameters, a return type, and a CFG of blocks
// with Blocks[0] as the entry.
type Function struct {
	Name   string
	Params []*Reg
	Result Type
	Blocks []*Block

	regs   []*Reg
	module *Module
}

// Module returns the containing module.
func (f *Function) Module() *Module { return f.module }

// Entry returns the entry block (Blocks[0]).
func (f *Function) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// NewReg allocates a fresh virtual register.
func (f *Function) NewReg(name string, t Type) *Reg {
	r := &Reg{ID: len(f.regs), Name: name, Type: t}
	f.regs = append(f.regs, r)
	return r
}

// Regs returns all registers of the function (including parameters).
func (f *Function) Regs() []*Reg { return f.regs }

// NewBlock creates and appends a block. The first block created is the
// entry block.
func (f *Function) NewBlock(name string) *Block {
	b := &Block{Name: f.uniqueBlockName(name), fn: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

func (f *Function) uniqueBlockName(name string) string {
	if name == "" {
		name = "bb"
	}
	used := make(map[string]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		used[b.Name] = true
	}
	if !used[name] {
		return name
	}
	for i := 1; ; i++ {
		cand := fmt.Sprintf("%s.%d", name, i)
		if !used[cand] {
			return cand
		}
	}
}

// BlockByName returns the block with the given name, or nil.
func (f *Function) BlockByName(name string) *Block {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Instrs iterates over every instruction in the function in block order,
// invoking fn with the containing block and index. Returning false stops
// the walk.
func (f *Function) Instrs(visit func(b *Block, idx int, in *Instr) bool) {
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if !visit(b, i, in) {
				return
			}
		}
	}
}

// Module is a whole program: an ordered set of functions. The function
// named "main" is the program entry point.
type Module struct {
	Name  string
	Funcs []*Function

	byName map[string]*Function
}

// NewModule creates an empty module.
func NewModule(name string) *Module {
	return &Module{Name: name, byName: make(map[string]*Function)}
}

// NewFunc creates a function with the given parameters and result type
// and registers it in the module. Parameter registers are created in
// order and marked Param.
func (m *Module) NewFunc(name string, result Type, params ...Param) *Function {
	if _, dup := m.byName[name]; dup {
		panic(fmt.Sprintf("ir: duplicate function %q", name))
	}
	f := &Function{Name: name, Result: result, module: m}
	for _, p := range params {
		r := f.NewReg(p.Name, p.Type)
		r.Param = true
		f.Params = append(f.Params, r)
	}
	m.Funcs = append(m.Funcs, f)
	m.byName[name] = f
	return f
}

// Param describes one formal parameter for NewFunc.
type Param struct {
	Name string
	Type Type
}

// P is a convenience constructor for a parameter.
func P(name string, t Type) Param { return Param{Name: name, Type: t} }

// FuncByName returns the function with the given name, or nil.
func (m *Module) FuncByName(name string) *Function { return m.byName[name] }

// Main returns the entry function, or nil.
func (m *Module) Main() *Function { return m.FuncByName("main") }

// AssignSites numbers every instruction in the module with a stable Site
// ID (deterministic across runs: functions in creation order, blocks in
// order, instructions in order). DSA uses sites to key allocation
// contexts; the bench harness uses them in reports.
func (m *Module) AssignSites() {
	site := 0
	for _, f := range m.Funcs {
		f.Instrs(func(_ *Block, _ int, in *Instr) bool {
			in.Site = site
			site++
			return true
		})
	}
}

// String renders the whole module in textual form, including the struct
// type declarations the functions reference, so that Parse can rebuild
// the module (see parse.go).
func (m *Module) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s\n", m.Name)
	for _, st := range m.structTypes() {
		fields := make([]string, len(st.Fields))
		for i, f := range st.Fields {
			fields[i] = fmt.Sprintf("%s %s", f.Name, f.Type)
		}
		fmt.Fprintf(&sb, "type %%%s = { %s }\n", st.Name, strings.Join(fields, ", "))
	}
	for _, f := range m.Funcs {
		sb.WriteString(f.String())
	}
	return sb.String()
}

// structTypes collects the named struct types referenced anywhere in the
// module, in first-appearance order.
func (m *Module) structTypes() []*StructType {
	seen := make(map[*StructType]bool)
	var out []*StructType
	var visit func(t Type)
	visit = func(t Type) {
		switch tt := t.(type) {
		case *StructType:
			if tt.Name != "" && !seen[tt] {
				seen[tt] = true
				out = append(out, tt)
				for _, f := range tt.Fields {
					visit(f.Type)
				}
			}
		case *PtrType:
			visit(tt.Elem)
		case *ArrayType:
			visit(tt.Elem)
		}
	}
	for _, f := range m.Funcs {
		for _, p := range f.Params {
			visit(p.Type)
		}
		visit(f.Result)
		f.Instrs(func(_ *Block, _ int, in *Instr) bool {
			if in.Elem != nil {
				visit(in.Elem)
			}
			return true
		})
	}
	return out
}

// String renders the function in textual form.
func (f *Function) String() string {
	var sb strings.Builder
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = fmt.Sprintf("%s %s", p, p.Type)
	}
	fmt.Fprintf(&sb, "\nfunc @%s(%s) %s {\n", f.Name, strings.Join(params, ", "), f.Result)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Name)
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", in)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// SortedFuncNames returns the function names in lexical order (testing
// helper; module order is creation order).
func (m *Module) SortedFuncNames() []string {
	names := make([]string, 0, len(m.Funcs))
	for _, f := range m.Funcs {
		names = append(names, f.Name)
	}
	sort.Strings(names)
	return names
}
