package ir

// BuildListing1 constructs the paper's Listing 1 in our IR. It is the
// running example used throughout §4 and the workload behind Figure 4:
//
//	int *ds1, *ds2;
//	double *alloc() { return malloc(ARRAY_SIZE); }
//	void main() {
//	  ds1 = alloc(); ds2 = alloc();
//	  Set(ds1, 0); Set(ds2, 1);
//	  for (k = 0; k < NTIMES; k++) Set(ds2, k);
//	}
//	void Set(int *ds, int val) { for (j = 0; j < ARRAY_SIZE; j++) ds[j] = val; }
//
// The two calls to alloc return two distinct heap objects that a
// context-insensitive analysis would merge; CaRDS's context-sensitive DSA
// must distinguish them (Figure 2) so that ds2 — accessed NTIMES+1 times
// as often — can be localized independently of ds1.
//
// Globals become main-local registers: our IR has no globals, and DSA
// treats escaping heap objects identically either way.
func BuildListing1(arraySize, nTimes int64) *Module {
	m := NewModule("listing1")

	alloc := m.NewFunc("alloc", Ptr(I64()))
	ab := NewBuilder(alloc)
	p := ab.Alloc(I64(), CI(arraySize))
	ab.Ret(p)

	set := m.NewFunc("Set", Void(), P("ds", Ptr(I64())), P("val", I64()))
	sb := NewBuilder(set)
	loop := sb.CountedLoop("j", CI(0), CI(arraySize), CI(1))
	addr := sb.Idx(set.Params[0], loop.IV)
	sb.Store(I64(), set.Params[1], addr)
	sb.CloseLoop(loop)
	sb.Ret(nil)

	main := m.NewFunc("main", Void())
	mb := NewBuilder(main)
	ds1 := mb.Call(alloc)
	ds2 := mb.Call(alloc)
	mb.Call(set, ds1, CI(0))
	mb.Call(set, ds2, CI(1))
	kl := mb.CountedLoop("k", CI(0), CI(nTimes), CI(1))
	mb.Call(set, ds2, kl.IV)
	mb.CloseLoop(kl)
	mb.Ret(nil)

	m.AssignSites()
	MustVerify(m)
	return m
}
