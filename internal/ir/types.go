// Package ir defines the intermediate representation that the CaRDS
// compiler passes operate on. It plays the role LLVM IR plays in the
// paper: a typed, register-based, control-flow-graph program form with
// explicit heap allocation, loads/stores, pointer arithmetic (GEP), and
// calls.
//
// Design notes
//
//   - Registers are function-scoped and mutable (not SSA). The CaRDS
//     passes — data structure analysis, pool allocation, guard insertion —
//     need points-to and loop structure, not SSA def-use chains, and a
//     mutable-register form keeps both the builder and the interpreter
//     simple while preserving everything the analyses consume.
//   - Like LLVM IR after lowering, the type system does not retain
//     source-level data structure identity: a load/store sees only a
//     pointer and an element type. Recovering structure identity is
//     exactly the job of the DSA pass (paper §3, first challenge).
//   - Transform passes annotate instructions in place (e.g. pool
//     allocation attaches a data structure handle to Alloc instructions,
//     guard insertion introduces Guard instructions) rather than
//     rewriting to a second program form.
package ir

import (
	"fmt"
	"strings"
)

// Type describes the storage type of a register or memory cell. All
// scalar types are 8 bytes wide, matching the 64-bit machines in the
// paper's evaluation and keeping address arithmetic trivial.
type Type interface {
	// Size returns the storage footprint in bytes.
	Size() int
	// String renders the type in the textual IR syntax.
	String() string
}

// IntType is a 64-bit signed integer.
type IntType struct{}

// FloatType is a 64-bit IEEE-754 float.
type FloatType struct{}

// VoidType is the result type of functions returning nothing.
type VoidType struct{}

// PtrType is a pointer to Elem.
type PtrType struct{ Elem Type }

// ArrayType is a fixed-length sequence of Elem.
type ArrayType struct {
	Elem Type
	N    int
}

// Field is one member of a StructType.
type Field struct {
	Name string
	Type Type
	// Off is the byte offset of the field; computed by NewStruct.
	Off int
}

// StructType is a named aggregate. Names matter to DSA debugging output
// only; structural identity is by pointer equality of the *StructType.
type StructType struct {
	Name   string
	Fields []Field
	size   int
}

func (IntType) Size() int      { return 8 }
func (IntType) String() string { return "i64" }

func (FloatType) Size() int      { return 8 }
func (FloatType) String() string { return "f64" }

func (VoidType) Size() int      { return 0 }
func (VoidType) String() string { return "void" }

func (p *PtrType) Size() int      { return 8 }
func (p *PtrType) String() string { return "*" + p.Elem.String() }

func (a *ArrayType) Size() int      { return a.Elem.Size() * a.N }
func (a *ArrayType) String() string { return fmt.Sprintf("[%d x %s]", a.N, a.Elem) }

func (s *StructType) Size() int { return s.size }
func (s *StructType) String() string {
	if s.Name != "" {
		return "%" + s.Name
	}
	parts := make([]string, len(s.Fields))
	for i, f := range s.Fields {
		parts[i] = f.Type.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// FieldByName returns the field with the given name.
func (s *StructType) FieldByName(name string) (Field, bool) {
	for _, f := range s.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// Singleton scalar types. Pointer and aggregate types are constructed per
// use; scalar types compare equal by these shared instances.
var (
	i64Type   = IntType{}
	f64Type   = FloatType{}
	voidType  = VoidType{}
	i64PtrMem = &PtrType{Elem: i64Type}
	f64PtrMem = &PtrType{Elem: f64Type}
)

// I64 returns the 64-bit integer type.
func I64() Type { return i64Type }

// F64 returns the 64-bit float type.
func F64() Type { return f64Type }

// Void returns the void type.
func Void() Type { return voidType }

// Ptr returns a pointer-to-elem type. Pointers to the scalar types are
// interned so that ir.Ptr(ir.I64()) == ir.Ptr(ir.I64()).
func Ptr(elem Type) *PtrType {
	switch elem {
	case Type(i64Type):
		return i64PtrMem
	case Type(f64Type):
		return f64PtrMem
	}
	return &PtrType{Elem: elem}
}

// Array returns a fixed-size array type.
func Array(elem Type, n int) *ArrayType { return &ArrayType{Elem: elem, N: n} }

// NewStruct builds a struct type, assigning field offsets sequentially
// (all our types are 8-byte aligned by construction, so no padding is
// needed).
func NewStruct(name string, fields ...Field) *StructType {
	s := &StructType{Name: name, Fields: append([]Field(nil), fields...)}
	off := 0
	for i := range s.Fields {
		s.Fields[i].Off = off
		off += s.Fields[i].Type.Size()
	}
	s.size = off
	return s
}

// F is a convenience constructor for a struct field.
func F(name string, t Type) Field { return Field{Name: name, Type: t} }

// IsPtr reports whether t is a pointer type.
func IsPtr(t Type) bool {
	_, ok := t.(*PtrType)
	return ok
}

// Elem returns the pointee type of a pointer type, or nil.
func Elem(t Type) Type {
	if p, ok := t.(*PtrType); ok {
		return p.Elem
	}
	return nil
}

// PointerFieldOffsets returns the byte offsets within one element of type
// t at which pointer-typed cells live. The runtime uses this to implement
// the greedy-recursive prefetcher (it must know where a localized object's
// outgoing pointers are). For scalar pointer elements the offset is 0.
func PointerFieldOffsets(t Type) []int {
	var offs []int
	var walk func(t Type, base int)
	walk = func(t Type, base int) {
		switch tt := t.(type) {
		case *PtrType:
			offs = append(offs, base)
		case *StructType:
			for _, f := range tt.Fields {
				walk(f.Type, base+f.Off)
			}
		case *ArrayType:
			for i := 0; i < tt.N; i++ {
				walk(tt.Elem, base+i*tt.Elem.Size())
			}
		}
	}
	walk(t, 0)
	return offs
}
