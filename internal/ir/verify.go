package ir

import (
	"errors"
	"fmt"
)

// Verify checks module-level structural invariants. Transform passes run
// it after mutating the program; the interpreter refuses unverified
// modules. It returns a joined error describing every violation found.
func Verify(m *Module) error {
	var errs []error
	report := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	for _, f := range m.Funcs {
		if len(f.Blocks) == 0 {
			report("func @%s: no blocks", f.Name)
			continue
		}
		regSet := make(map[*Reg]bool, len(f.regs))
		for _, r := range f.regs {
			regSet[r] = true
		}
		blockSet := make(map[*Block]bool, len(f.Blocks))
		for _, b := range f.Blocks {
			blockSet[b] = true
		}

		for _, b := range f.Blocks {
			if len(b.Instrs) == 0 {
				report("func @%s block %s: empty block", f.Name, b.Name)
				continue
			}
			for i, in := range b.Instrs {
				last := i == len(b.Instrs)-1
				if in.IsTerminator() != last {
					if in.IsTerminator() {
						report("func @%s block %s: terminator %q not last", f.Name, b.Name, in)
					} else if last {
						report("func @%s block %s: missing terminator", f.Name, b.Name)
					}
				}
				if in.Dst != nil && !regSet[in.Dst] {
					report("func @%s block %s: %q writes foreign register", f.Name, b.Name, in)
				}
				for _, op := range in.Operands() {
					if r, ok := op.(*Reg); ok && !regSet[r] {
						report("func @%s block %s: %q reads foreign register %s", f.Name, b.Name, in, r)
					}
				}
				switch in.Op {
				case OpBr:
					if in.Then == nil || in.Else == nil {
						report("func @%s block %s: br with nil target", f.Name, b.Name)
					} else if !blockSet[in.Then] || !blockSet[in.Else] {
						report("func @%s block %s: br to foreign block", f.Name, b.Name)
					}
					if in.Cond == nil {
						report("func @%s block %s: br without condition", f.Name, b.Name)
					}
				case OpJmp:
					if in.Target == nil || !blockSet[in.Target] {
						report("func @%s block %s: jmp to nil/foreign block", f.Name, b.Name)
					}
				case OpCall:
					callee := m.FuncByName(in.Callee)
					if callee == nil {
						report("func @%s: call to undefined @%s", f.Name, in.Callee)
					} else if len(in.Args) != len(callee.Params) {
						report("func @%s: call @%s with %d args, want %d",
							f.Name, in.Callee, len(in.Args), len(callee.Params))
					}
				case OpLoad:
					if in.Addr == nil || in.Elem == nil {
						report("func @%s block %s: malformed load %q", f.Name, b.Name, in)
					}
				case OpStore:
					if in.Addr == nil || in.Src == nil || in.Elem == nil {
						report("func @%s block %s: malformed store %q", f.Name, b.Name, in)
					}
				case OpAlloc:
					if in.Elem == nil || in.Count == nil {
						report("func @%s block %s: malformed alloc %q", f.Name, b.Name, in)
					}
				case OpGEP:
					if in.Base == nil {
						report("func @%s block %s: gep without base", f.Name, b.Name)
					}
				case OpGuard, OpPrefetch:
					if in.Addr == nil {
						report("func @%s block %s: %s without address", f.Name, b.Name, in.Op)
					}
				case OpRet:
					_, isVoid := f.Result.(VoidType)
					if isVoid && in.Src != nil {
						report("func @%s: ret with value in void function", f.Name)
					}
					if !isVoid && in.Src == nil {
						report("func @%s: bare ret in non-void function", f.Name)
					}
				}
			}
		}
	}
	return errors.Join(errs...)
}

// MustVerify panics on verification failure; used by workload builders
// whose programs are constructed in code and must always be well-formed.
func MustVerify(m *Module) {
	if err := Verify(m); err != nil {
		panic(fmt.Sprintf("ir: verification failed:\n%v\n%s", err, m))
	}
}
