package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestScalarTypes(t *testing.T) {
	if I64().Size() != 8 || F64().Size() != 8 || Void().Size() != 0 {
		t.Fatal("scalar sizes wrong")
	}
	if I64().String() != "i64" || F64().String() != "f64" || Void().String() != "void" {
		t.Fatal("scalar names wrong")
	}
}

func TestPtrInterning(t *testing.T) {
	if Ptr(I64()) != Ptr(I64()) {
		t.Fatal("pointer-to-i64 should be interned")
	}
	if Ptr(F64()) != Ptr(F64()) {
		t.Fatal("pointer-to-f64 should be interned")
	}
	if Ptr(I64()).String() != "*i64" {
		t.Fatalf("String = %s", Ptr(I64()))
	}
}

func TestStructLayout(t *testing.T) {
	node := NewStruct("node", F("val", I64()), F("next", Ptr(I64())), F("w", F64()))
	if node.Size() != 24 {
		t.Fatalf("Size = %d, want 24", node.Size())
	}
	f, ok := node.FieldByName("next")
	if !ok || f.Off != 8 {
		t.Fatalf("next field = %+v ok=%v", f, ok)
	}
	if _, ok := node.FieldByName("bogus"); ok {
		t.Fatal("found nonexistent field")
	}
	if node.String() != "%node" {
		t.Fatalf("String = %s", node)
	}
	anon := NewStruct("", F("a", I64()))
	if !strings.Contains(anon.String(), "i64") {
		t.Fatalf("anon String = %s", anon)
	}
}

func TestArrayType(t *testing.T) {
	a := Array(F64(), 10)
	if a.Size() != 80 {
		t.Fatalf("Size = %d, want 80", a.Size())
	}
	if a.String() != "[10 x f64]" {
		t.Fatalf("String = %s", a)
	}
}

func TestPointerFieldOffsets(t *testing.T) {
	// struct { i64; *i64; struct{ *f64 }; [2 x *i64] }
	inner := NewStruct("inner", F("p", Ptr(F64())))
	outer := NewStruct("outer",
		F("v", I64()),
		F("next", Ptr(I64())),
		F("in", inner),
		F("arr", Array(Ptr(I64()), 2)),
	)
	got := PointerFieldOffsets(outer)
	want := []int{8, 16, 24, 32}
	if len(got) != len(want) {
		t.Fatalf("offsets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("offsets = %v, want %v", got, want)
		}
	}
	if offs := PointerFieldOffsets(Ptr(I64())); len(offs) != 1 || offs[0] != 0 {
		t.Fatalf("scalar pointer offsets = %v", offs)
	}
	if offs := PointerFieldOffsets(I64()); len(offs) != 0 {
		t.Fatalf("i64 offsets = %v", offs)
	}
}

func TestBuildListing1Verifies(t *testing.T) {
	m := BuildListing1(1024, 8)
	if err := Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if m.Main() == nil {
		t.Fatal("no main")
	}
	if got := len(m.Funcs); got != 3 {
		t.Fatalf("funcs = %d, want 3", got)
	}
	text := m.String()
	for _, want := range []string{"func @alloc", "func @Set", "func @main", "alloc i64", "store i64"} {
		if !strings.Contains(text, want) {
			t.Errorf("module text missing %q:\n%s", want, text)
		}
	}
}

func TestCountedLoopShape(t *testing.T) {
	m := NewModule("loops")
	f := m.NewFunc("sum", I64(), P("a", Ptr(I64())), P("n", I64()))
	b := NewBuilder(f)
	acc := f.NewReg("acc", I64())
	b.Assign(acc, CI(0))
	loop := b.CountedLoop("i", CI(0), f.Params[1], CI(1))
	v := b.Load(I64(), b.Idx(f.Params[0], loop.IV))
	b.Assign(acc, b.Add(acc, v))
	b.CloseLoop(loop)
	b.Ret(acc)
	MustVerify(m)

	// Header must branch to body and exit; latch must jump to header.
	succs := loop.Header.Succs()
	if len(succs) != 2 || succs[0] != loop.Body || succs[1] != loop.Exit {
		t.Fatalf("header succs = %v", succs)
	}
	ls := loop.Latch.Succs()
	if len(ls) != 1 || ls[0] != loop.Header {
		t.Fatalf("latch succs = %v", ls)
	}
	bs := loop.Body.Succs()
	if len(bs) != 1 || bs[0] != loop.Latch {
		t.Fatalf("body succs = %v", bs)
	}
}

func TestVerifyCatchesEmptyFunction(t *testing.T) {
	m := NewModule("bad")
	m.NewFunc("empty", Void())
	if err := Verify(m); err == nil {
		t.Fatal("expected error for function with no blocks")
	}
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	m := NewModule("bad")
	f := m.NewFunc("f", Void())
	b := NewBuilder(f)
	b.ConstI(1) // no terminator
	if err := Verify(m); err == nil || !strings.Contains(err.Error(), "missing terminator") {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyCatchesMidBlockTerminator(t *testing.T) {
	m := NewModule("bad")
	f := m.NewFunc("f", Void())
	blk := f.NewBlock("entry")
	ret := NewInstr(OpRet)
	blk.Append(ret)
	c := NewInstr(OpConst)
	c.Dst = f.NewReg("", I64())
	blk.Append(c)
	if err := Verify(m); err == nil || !strings.Contains(err.Error(), "not last") {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyCatchesForeignRegister(t *testing.T) {
	m := NewModule("bad")
	f := m.NewFunc("f", Void())
	g := m.NewFunc("g", Void())
	foreign := g.NewReg("x", I64())
	gb := NewBuilder(g)
	gb.Ret(nil)

	fb := NewBuilder(f)
	in := NewInstr(OpCopy)
	in.Src = foreign
	in.Dst = f.NewReg("", I64())
	fb.Block().Append(in)
	fb.Ret(nil)
	if err := Verify(m); err == nil || !strings.Contains(err.Error(), "foreign register") {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyCatchesBadCall(t *testing.T) {
	m := NewModule("bad")
	f := m.NewFunc("f", Void())
	fb := NewBuilder(f)
	in := NewInstr(OpCall)
	in.Callee = "nonexistent"
	fb.Block().Append(in)
	fb.Ret(nil)
	if err := Verify(m); err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyCatchesArityMismatch(t *testing.T) {
	m := NewModule("bad")
	callee := m.NewFunc("callee", Void(), P("a", I64()))
	cb := NewBuilder(callee)
	cb.Ret(nil)
	f := m.NewFunc("f", Void())
	fb := NewBuilder(f)
	in := NewInstr(OpCall)
	in.Callee = "callee" // zero args, wants one
	fb.Block().Append(in)
	fb.Ret(nil)
	if err := Verify(m); err == nil || !strings.Contains(err.Error(), "want 1") {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyCatchesVoidRetMismatch(t *testing.T) {
	m := NewModule("bad")
	f := m.NewFunc("f", I64())
	fb := NewBuilder(f)
	fb.Ret(nil) // bare ret in non-void function
	if err := Verify(m); err == nil || !strings.Contains(err.Error(), "bare ret") {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateFunctionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := NewModule("dup")
	m.NewFunc("f", Void())
	m.NewFunc("f", Void())
}

func TestEmitIntoTerminatedBlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := NewModule("x")
	f := m.NewFunc("f", Void())
	b := NewBuilder(f)
	b.Ret(nil)
	b.ConstI(1)
}

func TestBlockNameUniquing(t *testing.T) {
	m := NewModule("x")
	f := m.NewFunc("f", Void())
	b1 := f.NewBlock("loop")
	b2 := f.NewBlock("loop")
	b3 := f.NewBlock("loop")
	if b1.Name == b2.Name || b2.Name == b3.Name || b1.Name == b3.Name {
		t.Fatalf("names not unique: %s %s %s", b1.Name, b2.Name, b3.Name)
	}
	if f.BlockByName(b2.Name) != b2 {
		t.Fatal("BlockByName lookup failed")
	}
	if f.BlockByName("nope") != nil {
		t.Fatal("BlockByName returned ghost block")
	}
}

func TestAssignSitesDeterministic(t *testing.T) {
	m1 := BuildListing1(16, 2)
	m2 := BuildListing1(16, 2)
	var sites1, sites2 []int
	for _, f := range m1.Funcs {
		f.Instrs(func(_ *Block, _ int, in *Instr) bool {
			sites1 = append(sites1, in.Site)
			return true
		})
	}
	for _, f := range m2.Funcs {
		f.Instrs(func(_ *Block, _ int, in *Instr) bool {
			sites2 = append(sites2, in.Site)
			return true
		})
	}
	if len(sites1) != len(sites2) {
		t.Fatalf("site counts differ: %d vs %d", len(sites1), len(sites2))
	}
	for i := range sites1 {
		if sites1[i] != sites2[i] {
			t.Fatalf("site %d differs: %d vs %d", i, sites1[i], sites2[i])
		}
		if sites1[i] != i {
			t.Fatalf("sites not sequential: sites[%d]=%d", i, sites1[i])
		}
	}
}

func TestInstrStringCoverage(t *testing.T) {
	m := NewModule("strings")
	f := m.NewFunc("f", Void(), P("p", Ptr(I64())))
	b := NewBuilder(f)
	done := b.NewBlock("done")

	c := b.ConstI(7)
	cf := b.ConstF(2.5)
	sum := b.Add(c, c)
	_ = b.FAdd(cf, cf)
	cp := b.Copy(sum)
	arr := b.Alloc(I64(), CI(4))
	g := b.Idx(arr, c)
	v := b.Load(I64(), g)
	b.Store(I64(), v, g)

	guard := NewInstr(OpGuard)
	guard.Addr = g
	guard.IsWrite = true
	guard.Dst = f.NewReg("", Ptr(I64()))
	b.Block().Append(guard)

	al := NewInstr(OpAllLocal)
	al.DSRefs = []int{0, 1}
	al.Dst = f.NewReg("", I64())
	b.Block().Append(al)

	pf := NewInstr(OpPrefetch)
	pf.Addr = g
	b.Block().Append(pf)

	b.Br(b.EQ(cp, c), done, done)

	b.SetBlock(done)
	b.Ret(nil)

	var texts []string
	f.Instrs(func(_ *Block, _ int, in *Instr) bool {
		texts = append(texts, in.String())
		return true
	})
	joined := strings.Join(texts, "\n")
	for _, want := range []string{
		"const 7", "fconst 2.5", "add", "fadd", "copy", "alloc i64",
		"gep", "load i64", "store i64", "cards_guard.w", "cards_all_local [0 1]",
		"cards_prefetch", "br", "ret",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("instruction text missing %q in:\n%s", want, joined)
		}
	}
}

// Property: round-tripping random operand values through TypeOf never
// panics and yields consistent sizes.
func TestTypeOfProperty(t *testing.T) {
	f := func(iv int64, fv float64) bool {
		return TypeOf(CI(iv)).Size() == 8 && TypeOf(CF(fv)).Size() == 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
