package ir

import (
	"strings"
	"testing"
)

func TestParseSimpleFunction(t *testing.T) {
	src := `
module simple

func @main() i64 {
entry:
  %a = const 7
  %b = const 35
  %s = add %a, %b
  ret %s
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "simple" {
		t.Fatalf("name = %s", m.Name)
	}
	f := m.Main()
	if f == nil || len(f.Blocks) != 1 || len(f.Blocks[0].Instrs) != 4 {
		t.Fatalf("unexpected structure: %s", m)
	}
}

func TestParseControlFlowAndMemory(t *testing.T) {
	src := `
module loops

func @sum(%arr *i64, %n i64) i64 {
entry:
  %acc = copy 0
  %i = copy 0
  jmp header
header:
  %c = lt %i, %n
  br %c, body, exit
body:
  %addr = gep %arr, %i, 8, 0
  %v = load i64, %addr
  %acc = add %acc, %v
  %i = add %i, 1
  jmp header
exit:
  ret %acc
}

func @main() i64 {
entry:
  %a = alloc i64, 10
  %p0 = gep %a, 0, 0, 0
  store i64, 5 -> %p0
  %p1 = gep %a, 0, 0, 8
  store i64, 6 -> %p1
  %r = call @sum(%a, 2)
  ret %r
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.Funcs); got != 2 {
		t.Fatalf("funcs = %d", got)
	}
	sum := m.FuncByName("sum")
	if len(sum.Blocks) != 4 {
		t.Fatalf("sum blocks = %d", len(sum.Blocks))
	}
	// The non-SSA register %acc is one register despite two writes.
	accCount := 0
	for _, r := range sum.Regs() {
		if r.Name == "acc" {
			accCount++
		}
	}
	if accCount != 1 {
		t.Fatalf("acc registers = %d, want 1", accCount)
	}
}

func TestParseStructTypes(t *testing.T) {
	src := `
module structs
type %node = { val i64, next *i64 }

func @main() i64 {
entry:
  %n = alloc %node, 1
  %vp = gep %n, 0, 0, 0
  store i64, 42 -> %vp
  %v = load i64, %vp
  ret %v
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var elem Type
	m.Main().Instrs(func(_ *Block, _ int, in *Instr) bool {
		if in.Op == OpAlloc {
			elem = in.Elem
		}
		return true
	})
	st, ok := elem.(*StructType)
	if !ok || st.Name != "node" || st.Size() != 16 {
		t.Fatalf("alloc elem = %v", elem)
	}
}

func TestParseFloats(t *testing.T) {
	src := `
module floats

func @main() f64 {
entry:
  %a = fconst 2.5
  %b = fconst 4
  %c = fmul %a, %b
  %d = itof 3, 0
  %e = fadd %c, %d
  ret %e
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var sawFMul bool
	m.Main().Instrs(func(_ *Block, _ int, in *Instr) bool {
		if in.Op == OpBin && in.Kind == FMul {
			sawFMul = true
			if _, ok := in.X.(*Reg); !ok {
				t.Error("fmul X should be a register")
			}
		}
		return true
	})
	if !sawFMul {
		t.Fatal("no fmul parsed")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"no module", "func @f() void {\nentry:\n ret\n}", "expected 'module"},
		{"no funcs", "module empty\n", "no functions"},
		{"bad op", "module m\nfunc @main() void {\nentry:\n  frobnicate %x\n}", "unknown opcode"},
		{"bad type", "module m\nfunc @main() zzz {\nentry:\n  ret\n}", "unknown type"},
		{"unterminated", "module m\nfunc @main() void {\nentry:\n  ret", "unterminated"},
		{"instr before label", "module m\nfunc @main() void {\n  ret\n}", "before first block label"},
		{"dup func", "module m\nfunc @f() void {\nentry:\n  ret\n}\nfunc @f() void {\nentry:\n  ret\n}", "duplicate function"},
		{"bad call", "module m\nfunc @main() void {\nentry:\n  call @nothere()\n  ret\n}", "does not verify"},
		{"dup type", "module m\ntype %t = { a i64 }\ntype %t = { b i64 }\nfunc @main() void {\nentry:\n  ret\n}", "duplicate type"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want contains %q", err, c.want)
			}
		})
	}
}

// TestPrintParseRoundTrip is the headline property: printing a module
// and parsing it back yields a textually identical module.
func TestPrintParseRoundTrip(t *testing.T) {
	m1 := BuildListing1(256, 4)
	text1 := m1.String()
	m2, err := Parse(text1)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text1)
	}
	text2 := m2.String()
	if text1 != text2 {
		t.Fatalf("round trip diverged:\n--- printed ---\n%s\n--- reparsed ---\n%s", text1, text2)
	}
}

func TestRoundTripWithStructs(t *testing.T) {
	m := NewModule("withstructs")
	node := NewStruct("pair", F("a", I64()), F("b", Ptr(F64())))
	f := m.NewFunc("main", Void())
	b := NewBuilder(f)
	p := b.Alloc(node, CI(3))
	b.Store(I64(), CI(9), b.FieldAddr(p, node, "a"))
	b.Ret(nil)
	m.AssignSites()
	MustVerify(m)

	text1 := m.String()
	if !strings.Contains(text1, "type %pair = { a i64, b *f64 }") {
		t.Fatalf("missing type declaration:\n%s", text1)
	}
	m2, err := Parse(text1)
	if err != nil {
		t.Fatal(err)
	}
	if text2 := m2.String(); text1 != text2 {
		t.Fatalf("struct round trip diverged:\n%s\nvs\n%s", text1, text2)
	}
}
