package ir

import "fmt"

// Builder emits instructions into a current block of one function. It is
// the construction API used by the workload programs and by transform
// passes that synthesize code (guard insertion, code versioning).
type Builder struct {
	fn  *Function
	cur *Block
}

// NewBuilder returns a builder positioned at a fresh entry block of fn
// (creating one if the function has no blocks yet).
func NewBuilder(fn *Function) *Builder {
	b := &Builder{fn: fn}
	if len(fn.Blocks) == 0 {
		b.cur = fn.NewBlock("entry")
	} else {
		b.cur = fn.Blocks[len(fn.Blocks)-1]
	}
	return b
}

// Func returns the function under construction.
func (b *Builder) Func() *Function { return b.fn }

// Block returns the current insertion block.
func (b *Builder) Block() *Block { return b.cur }

// SetBlock moves the insertion point to blk.
func (b *Builder) SetBlock(blk *Block) { b.cur = blk }

// NewBlock creates a block (without moving the insertion point).
func (b *Builder) NewBlock(name string) *Block { return b.fn.NewBlock(name) }

func (b *Builder) emit(in *Instr) *Instr {
	if t := b.cur.Term(); t != nil {
		panic(fmt.Sprintf("ir: emitting %s into terminated block %s", in, b.cur.Name))
	}
	b.cur.Append(in)
	return in
}

func (b *Builder) newDst(name string, t Type) *Reg { return b.fn.NewReg(name, t) }

// ConstI emits an integer constant into a fresh register.
func (b *Builder) ConstI(v int64) *Reg {
	in := NewInstr(OpConst)
	in.IntVal = v
	in.Dst = b.newDst("", I64())
	b.emit(in)
	return in.Dst
}

// ConstF emits a float constant into a fresh register.
func (b *Builder) ConstF(v float64) *Reg {
	in := NewInstr(OpConst)
	in.FloatVal = v
	in.IsFloat = true
	in.Dst = b.newDst("", F64())
	b.emit(in)
	return in.Dst
}

// Bin emits dst = x <kind> y.
func (b *Builder) Bin(kind BinKind, x, y Value) *Reg {
	in := NewInstr(OpBin)
	in.Kind, in.X, in.Y = kind, x, y
	t := I64()
	switch kind {
	case FAdd, FSub, FMul, FDiv, IToF:
		t = F64()
	}
	in.Dst = b.newDst("", t)
	b.emit(in)
	return in.Dst
}

// Arithmetic and comparison shorthands.
func (b *Builder) Add(x, y Value) *Reg  { return b.Bin(Add, x, y) }
func (b *Builder) Sub(x, y Value) *Reg  { return b.Bin(Sub, x, y) }
func (b *Builder) Mul(x, y Value) *Reg  { return b.Bin(Mul, x, y) }
func (b *Builder) Div(x, y Value) *Reg  { return b.Bin(Div, x, y) }
func (b *Builder) Rem(x, y Value) *Reg  { return b.Bin(Rem, x, y) }
func (b *Builder) And(x, y Value) *Reg  { return b.Bin(And, x, y) }
func (b *Builder) Xor(x, y Value) *Reg  { return b.Bin(Xor, x, y) }
func (b *Builder) Shl(x, y Value) *Reg  { return b.Bin(Shl, x, y) }
func (b *Builder) Shr(x, y Value) *Reg  { return b.Bin(Shr, x, y) }
func (b *Builder) LT(x, y Value) *Reg   { return b.Bin(LT, x, y) }
func (b *Builder) LE(x, y Value) *Reg   { return b.Bin(LE, x, y) }
func (b *Builder) GT(x, y Value) *Reg   { return b.Bin(GT, x, y) }
func (b *Builder) GE(x, y Value) *Reg   { return b.Bin(GE, x, y) }
func (b *Builder) EQ(x, y Value) *Reg   { return b.Bin(EQ, x, y) }
func (b *Builder) NE(x, y Value) *Reg   { return b.Bin(NE, x, y) }
func (b *Builder) FAdd(x, y Value) *Reg { return b.Bin(FAdd, x, y) }
func (b *Builder) IToF(x Value) *Reg    { return b.Bin(IToF, x, CI(0)) }
func (b *Builder) FMul(x, y Value) *Reg { return b.Bin(FMul, x, y) }
func (b *Builder) FSub(x, y Value) *Reg { return b.Bin(FSub, x, y) }
func (b *Builder) FDiv(x, y Value) *Reg { return b.Bin(FDiv, x, y) }

// Copy emits dst = src into a fresh register of the same type as src.
func (b *Builder) Copy(src Value) *Reg {
	in := NewInstr(OpCopy)
	in.Src = src
	in.Dst = b.newDst("", typeOf(src))
	b.emit(in)
	return in.Dst
}

// Assign emits an in-place move of src into the existing register dst
// (the IR is not SSA; loop induction updates use this).
func (b *Builder) Assign(dst *Reg, src Value) {
	in := NewInstr(OpCopy)
	in.Src = src
	in.Dst = dst
	b.emit(in)
}

// Alloc emits a heap allocation of count elements of elem type; the
// result register is a pointer to elem. This models malloc and is the
// instruction pool allocation later rewrites into dsalloc.
func (b *Builder) Alloc(elem Type, count Value) *Reg {
	in := NewInstr(OpAlloc)
	in.Elem = elem
	in.Count = count
	in.Dst = b.newDst("", Ptr(elem))
	b.emit(in)
	return in.Dst
}

// Load emits dst = load elem, addr.
func (b *Builder) Load(elem Type, addr Value) *Reg {
	in := NewInstr(OpLoad)
	in.Elem = elem
	in.Addr = addr
	in.Dst = b.newDst("", elem)
	b.emit(in)
	return in.Dst
}

// Store emits store elem, val -> addr.
func (b *Builder) Store(elem Type, val, addr Value) {
	in := NewInstr(OpStore)
	in.Elem = elem
	in.Src = val
	in.Addr = addr
	b.emit(in)
}

// GEP emits dst = base + index*elemSize + constOff. index may be nil for
// pure field offsets.
func (b *Builder) GEP(base Value, index Value, elemSize, constOff int) *Reg {
	in := NewInstr(OpGEP)
	in.Base = base
	in.Index = index
	in.ElemSize = elemSize
	in.ConstOff = constOff
	in.Dst = b.newDst("", typeOf(base))
	b.emit(in)
	return in.Dst
}

// Idx is GEP specialized for array indexing of the pointee type.
func (b *Builder) Idx(base Value, index Value) *Reg {
	elem := Elem(typeOf(base))
	if elem == nil {
		panic("ir: Idx on non-pointer base")
	}
	return b.GEP(base, index, elem.Size(), 0)
}

// FieldAddr is GEP specialized for struct field access.
func (b *Builder) FieldAddr(base Value, st *StructType, field string) *Reg {
	f, ok := st.FieldByName(field)
	if !ok {
		panic(fmt.Sprintf("ir: no field %q in %s", field, st))
	}
	g := b.GEP(base, nil, 0, f.Off)
	g.Type = Ptr(f.Type)
	return g
}

// Call emits dst = call callee(args...); dst is nil for void callees.
func (b *Builder) Call(callee *Function, args ...Value) *Reg {
	in := NewInstr(OpCall)
	in.Callee = callee.Name
	in.Args = append([]Value(nil), args...)
	if _, isVoid := callee.Result.(VoidType); !isVoid {
		in.Dst = b.newDst("", callee.Result)
	}
	b.emit(in)
	return in.Dst
}

// Ret emits a return (val may be nil for void).
func (b *Builder) Ret(val Value) {
	in := NewInstr(OpRet)
	in.Src = val
	b.emit(in)
}

// Br emits a conditional branch.
func (b *Builder) Br(cond Value, then, els *Block) {
	in := NewInstr(OpBr)
	in.Cond = cond
	in.Then, in.Else = then, els
	b.emit(in)
}

// Jmp emits an unconditional jump.
func (b *Builder) Jmp(target *Block) {
	in := NewInstr(OpJmp)
	in.Target = target
	b.emit(in)
}

// typeOf reports the static type of a value.
func typeOf(v Value) Type {
	switch vv := v.(type) {
	case *Reg:
		return vv.Type
	case IntConst:
		return I64()
	case FloatConst:
		return F64()
	}
	return Void()
}

// TypeOf exposes operand typing to other packages.
func TypeOf(v Value) Type { return typeOf(v) }

// LoopInfo describes the blocks of a canonical counted loop built by
// CountedLoop, so callers can emit the body and analyses can find the
// induction variable trivially in tests.
type LoopInfo struct {
	IV     *Reg // induction variable register
	Header *Block
	Body   *Block
	Latch  *Block
	Exit   *Block
}

// CountedLoop builds the skeleton of `for iv = start; iv < limit; iv +=
// step { body }`. On return the builder is positioned at the start of the
// body block; the caller emits the body and then calls CloseLoop, after
// which the builder is positioned at the exit block.
func (b *Builder) CountedLoop(name string, start, limit, step Value) *LoopInfo {
	iv := b.fn.NewReg(name+".iv", I64())
	header := b.NewBlock(name + ".header")
	body := b.NewBlock(name + ".body")
	latch := b.NewBlock(name + ".latch")
	exit := b.NewBlock(name + ".exit")

	b.Assign(iv, start)
	b.Jmp(header)

	b.SetBlock(header)
	cond := b.LT(iv, limit)
	b.Br(cond, body, exit)

	b.SetBlock(latch)
	b.Assign(iv, b.Add(iv, step))
	b.Jmp(header)

	b.SetBlock(body)
	li := &LoopInfo{IV: iv, Header: header, Body: body, Latch: latch, Exit: exit}
	// Remember step/limit so CloseLoop can finish.
	return li
}

// CloseLoop terminates the body (jump to latch) and positions the builder
// at the loop exit.
func (b *Builder) CloseLoop(li *LoopInfo) {
	if b.cur.Term() == nil {
		b.Jmp(li.Latch)
	}
	b.SetBlock(li.Exit)
}
