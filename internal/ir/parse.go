package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a module in the textual syntax produced by Module.String.
// It accepts pre-transform programs (the form users write for cardsc)
// as well as instrumented ones (guards, all_local, prefetch). The parsed
// module is verified before being returned.
//
// Syntax sketch:
//
//	module NAME
//	type %node = { val i64, next *i64 }
//	func @f(%p *i64, %n i64) i64 {
//	entry:
//	  %acc = copy 0
//	  jmp loop.header
//	loop.header:
//	  ...
//	}
//
// Comments run from ';' to end of line. Registers are function-scoped
// and mutable: every textual mention of %x inside one function denotes
// the same register.
func Parse(src string) (*Module, error) {
	p := &parser{
		lines:   strings.Split(src, "\n"),
		structs: make(map[string]*StructType),
	}
	if err := p.parse(); err != nil {
		return nil, err
	}
	inferTypes(p.mod)
	if err := Verify(p.mod); err != nil {
		return nil, fmt.Errorf("ir: parsed module does not verify: %w", err)
	}
	p.mod.AssignSites()
	return p.mod, nil
}

// inferTypes propagates pointer types that single-line parsing cannot
// resolve — most importantly call results (typed by the callee's
// signature, which may be parsed later) and values flowing through
// copies and GEPs of such registers. Execution does not depend on
// register types, but the data structure analysis does: a pointer-typed
// register gets a points-to cell, an integer does not.
func inferTypes(m *Module) {
	refine := func(r *Reg, t Type) bool {
		if r == nil || t == nil {
			return false
		}
		if _, isPtr := t.(*PtrType); !isPtr {
			return false
		}
		if r.Type == Type(i64Type) {
			r.Type = t
			return true
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for _, f := range m.Funcs {
			f.Instrs(func(_ *Block, _ int, in *Instr) bool {
				switch in.Op {
				case OpCall:
					if callee := m.FuncByName(in.Callee); callee != nil {
						if refine(in.Dst, callee.Result) {
							changed = true
						}
						// Arguments adopt parameter pointer types.
						for i, a := range in.Args {
							if i < len(callee.Params) {
								if r, ok := a.(*Reg); ok &&
									refine(r, callee.Params[i].Type) {
									changed = true
								}
							}
						}
					}
				case OpCopy:
					if src, ok := in.Src.(*Reg); ok {
						if refine(in.Dst, src.Type) {
							changed = true
						}
					}
				case OpGEP:
					if base, ok := in.Base.(*Reg); ok {
						if refine(in.Dst, base.Type) {
							changed = true
						}
					}
				}
				return true
			})
		}
	}
}

type parser struct {
	lines   []string
	pos     int
	mod     *Module
	structs map[string]*StructType
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("ir: line %d: %s", p.pos, fmt.Sprintf(format, args...))
}

// next returns the next non-empty line with comments stripped, or ok =
// false at end of input.
func (p *parser) next() (string, bool) {
	for p.pos < len(p.lines) {
		line := p.lines[p.pos]
		p.pos++
		if i := strings.Index(line, ";"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line != "" {
			return line, true
		}
	}
	return "", false
}

// peek looks at the next meaningful line without consuming it.
func (p *parser) peek() (string, bool) {
	save := p.pos
	line, ok := p.next()
	p.pos = save
	return line, ok
}

func (p *parser) parse() error {
	line, ok := p.next()
	if !ok || !strings.HasPrefix(line, "module ") {
		return p.errf("expected 'module NAME'")
	}
	p.mod = NewModule(strings.TrimSpace(strings.TrimPrefix(line, "module ")))

	for {
		line, ok := p.peek()
		if !ok {
			break
		}
		switch {
		case strings.HasPrefix(line, "type "):
			p.next()
			if err := p.parseType(line); err != nil {
				return err
			}
		case strings.HasPrefix(line, "func "):
			if err := p.parseFunc(); err != nil {
				return err
			}
		default:
			p.next()
			return p.errf("unexpected %q at top level", line)
		}
	}
	if len(p.mod.Funcs) == 0 {
		return p.errf("module has no functions")
	}
	return nil
}

// parseType handles: type %name = { field type, field type }
func (p *parser) parseType(line string) error {
	rest := strings.TrimPrefix(line, "type ")
	eq := strings.Index(rest, "=")
	if eq < 0 {
		return p.errf("type declaration missing '='")
	}
	name := strings.TrimSpace(rest[:eq])
	if !strings.HasPrefix(name, "%") {
		return p.errf("type name must start with %%")
	}
	name = name[1:]
	body := strings.TrimSpace(rest[eq+1:])
	if !strings.HasPrefix(body, "{") || !strings.HasSuffix(body, "}") {
		return p.errf("type body must be { ... }")
	}
	body = strings.TrimSpace(body[1 : len(body)-1])
	var fields []Field
	if body != "" {
		for _, part := range strings.Split(body, ",") {
			toks := strings.Fields(part)
			if len(toks) != 2 {
				return p.errf("field %q must be 'name type'", part)
			}
			ft, err := p.parseTypeRef(toks[1])
			if err != nil {
				return err
			}
			fields = append(fields, F(toks[0], ft))
		}
	}
	if _, dup := p.structs[name]; dup {
		return p.errf("duplicate type %%%s", name)
	}
	p.structs[name] = NewStruct(name, fields...)
	return nil
}

// parseTypeRef resolves a type token: i64, f64, void, *T, %name,
// [N x T].
func (p *parser) parseTypeRef(tok string) (Type, error) {
	switch {
	case tok == "i64":
		return I64(), nil
	case tok == "f64":
		return F64(), nil
	case tok == "void":
		return Void(), nil
	case strings.HasPrefix(tok, "*"):
		elem, err := p.parseTypeRef(tok[1:])
		if err != nil {
			return nil, err
		}
		return Ptr(elem), nil
	case strings.HasPrefix(tok, "%"):
		st, ok := p.structs[tok[1:]]
		if !ok {
			return nil, p.errf("unknown type %s", tok)
		}
		return st, nil
	case strings.HasPrefix(tok, "["):
		// [N x T] arrives split by Fields in some contexts; handle the
		// compact form [NxT] and the canonical one.
		inner := strings.TrimSuffix(strings.TrimPrefix(tok, "["), "]")
		parts := strings.Split(inner, "x")
		if len(parts) != 2 {
			return nil, p.errf("malformed array type %q", tok)
		}
		n, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, p.errf("array length in %q: %v", tok, err)
		}
		elem, err := p.parseTypeRef(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, err
		}
		return Array(elem, n), nil
	}
	return nil, p.errf("unknown type %q", tok)
}

// funcState carries per-function parsing context.
type funcState struct {
	fn     *Function
	regs   map[string]*Reg
	blocks map[string]*Block
	// pending records (instr, field, label) fixups for forward block
	// references.
}

func (fs *funcState) reg(p *parser, name string, t Type) *Reg {
	if r, ok := fs.regs[name]; ok {
		if t != nil && r.Type == Type(i64Type) && t != Type(i64Type) {
			// Refine a default-typed forward reference.
			r.Type = t
		}
		return r
	}
	if t == nil {
		t = I64()
	}
	r := fs.fn.NewReg(name, t)
	fs.regs[name] = r
	return r
}

func (fs *funcState) block(name string) *Block {
	if b, ok := fs.blocks[name]; ok {
		return b
	}
	b := fs.fn.NewBlock(name)
	if b.Name != name {
		// NewBlock uniquified: our map guarantees this cannot happen.
		panic("ir: block name collision during parse")
	}
	fs.blocks[name] = b
	return b
}

// parseFunc consumes one function definition.
func (p *parser) parseFunc() error {
	line, _ := p.next()
	// func @name(params) result {
	rest := strings.TrimPrefix(line, "func ")
	if !strings.HasPrefix(rest, "@") {
		return p.errf("function name must start with @")
	}
	open := strings.Index(rest, "(")
	close := strings.LastIndex(rest, ")")
	if open < 0 || close < open {
		return p.errf("malformed function signature %q", line)
	}
	name := rest[1:open]
	paramText := rest[open+1 : close]
	tail := strings.Fields(strings.TrimSpace(rest[close+1:]))
	if len(tail) != 2 || tail[1] != "{" {
		return p.errf("expected 'RESULTTYPE {' after params, got %q", rest[close+1:])
	}
	result, err := p.parseTypeRef(tail[0])
	if err != nil {
		return err
	}

	var params []Param
	if strings.TrimSpace(paramText) != "" {
		for _, part := range strings.Split(paramText, ",") {
			toks := strings.Fields(part)
			if len(toks) != 2 || !strings.HasPrefix(toks[0], "%") {
				return p.errf("parameter %q must be '%%name type'", part)
			}
			pt, err := p.parseTypeRef(toks[1])
			if err != nil {
				return err
			}
			params = append(params, P(toks[0][1:], pt))
		}
	}

	if p.mod.FuncByName(name) != nil {
		return p.errf("duplicate function @%s", name)
	}
	fn := p.mod.NewFunc(name, result, params...)
	fs := &funcState{
		fn:     fn,
		regs:   make(map[string]*Reg),
		blocks: make(map[string]*Block),
	}
	for _, r := range fn.Params {
		fs.regs[r.Name] = r
	}

	var cur *Block
	var defined []*Block
	definedSet := make(map[*Block]bool)
	for {
		line, ok := p.next()
		if !ok {
			return p.errf("unterminated function @%s", name)
		}
		if line == "}" {
			// Every referenced block must have been defined, and the
			// function's block order is definition order (branch
			// targets may have created blocks out of order).
			for label, b := range fs.blocks {
				if !definedSet[b] {
					return p.errf("branch to undefined block %q in @%s", label, name)
				}
			}
			fn.Blocks = defined
			return nil
		}
		if strings.HasSuffix(line, ":") {
			cur = fs.block(strings.TrimSuffix(line, ":"))
			if definedSet[cur] {
				return p.errf("duplicate block label %q in @%s", cur.Name, name)
			}
			definedSet[cur] = true
			defined = append(defined, cur)
			continue
		}
		if cur == nil {
			return p.errf("instruction before first block label in @%s", name)
		}
		in, err := p.parseInstr(fs, line)
		if err != nil {
			return err
		}
		cur.Append(in)
	}
}

// parseInstr parses one instruction line.
func (p *parser) parseInstr(fs *funcState, line string) (*Instr, error) {
	dstName := ""
	if strings.HasPrefix(line, "%") {
		eq := strings.Index(line, "=")
		if eq < 0 {
			return nil, p.errf("register without assignment: %q", line)
		}
		dstName = strings.TrimSpace(line[:eq])[1:]
		line = strings.TrimSpace(line[eq+1:])
	}
	toks := strings.Fields(strings.ReplaceAll(line, ",", " , "))
	if len(toks) == 0 {
		return nil, p.errf("empty instruction")
	}
	op := toks[0]
	args := splitOperands(toks[1:])

	in := NewInstr(OpInvalid)
	setDst := func(t Type) {
		if dstName != "" {
			in.Dst = fs.reg(p, dstName, t)
			if t != nil {
				in.Dst.Type = t
			}
		}
	}
	val := func(s string, t Type) (Value, error) { return p.operand(fs, s, t) }

	switch op {
	case "const":
		if len(args) != 1 {
			return nil, p.errf("const wants 1 operand")
		}
		n, err := strconv.ParseInt(args[0], 10, 64)
		if err != nil {
			return nil, p.errf("const %q: %v", args[0], err)
		}
		in.Op = OpConst
		in.IntVal = n
		setDst(I64())

	case "fconst":
		if len(args) != 1 {
			return nil, p.errf("fconst wants 1 operand")
		}
		fv, err := strconv.ParseFloat(args[0], 64)
		if err != nil {
			return nil, p.errf("fconst %q: %v", args[0], err)
		}
		in.Op = OpConst
		in.IsFloat = true
		in.FloatVal = fv
		setDst(F64())

	case "copy":
		if len(args) != 1 {
			return nil, p.errf("copy wants 1 operand")
		}
		v, err := val(args[0], nil)
		if err != nil {
			return nil, err
		}
		in.Op = OpCopy
		in.Src = v
		setDst(TypeOf(v))

	case "alloc":
		if len(args) != 2 {
			return nil, p.errf("alloc wants 'type, count'")
		}
		elem, err := p.parseTypeRef(args[0])
		if err != nil {
			return nil, err
		}
		count, err := val(args[1], I64())
		if err != nil {
			return nil, err
		}
		in.Op = OpAlloc
		in.Elem = elem
		in.Count = count
		setDst(Ptr(elem))

	case "load":
		if len(args) != 2 {
			return nil, p.errf("load wants 'type, addr'")
		}
		elem, err := p.parseTypeRef(args[0])
		if err != nil {
			return nil, err
		}
		addr, err := val(args[1], Ptr(elem))
		if err != nil {
			return nil, err
		}
		in.Op = OpLoad
		in.Elem = elem
		in.Addr = addr
		setDst(elem)

	case "store":
		// store TYPE, VAL -> ADDR
		arrow := -1
		for i, a := range args {
			if a == "->" {
				arrow = i
			}
		}
		if len(args) < 3 || arrow != 2 {
			return nil, p.errf("store wants 'type, val -> addr'")
		}
		elem, err := p.parseTypeRef(args[0])
		if err != nil {
			return nil, err
		}
		v, err := val(args[1], elem)
		if err != nil {
			return nil, err
		}
		addr, err := val(args[3], Ptr(elem))
		if err != nil {
			return nil, err
		}
		in.Op = OpStore
		in.Elem = elem
		in.Src = v
		in.Addr = addr

	case "gep":
		if len(args) != 4 {
			return nil, p.errf("gep wants 'base, index, elemsize, constoff'")
		}
		base, err := val(args[0], Ptr(I64()))
		if err != nil {
			return nil, err
		}
		in.Op = OpGEP
		in.Base = base
		if args[1] != "0" {
			idx, err := val(args[1], I64())
			if err != nil {
				return nil, err
			}
			in.Index = idx
		}
		if in.ElemSize, err = strconv.Atoi(args[2]); err != nil {
			return nil, p.errf("gep elemsize: %v", err)
		}
		if in.ConstOff, err = strconv.Atoi(args[3]); err != nil {
			return nil, p.errf("gep constoff: %v", err)
		}
		setDst(TypeOf(base))

	case "call":
		// call @f(a, b)
		rest := strings.TrimSpace(strings.TrimPrefix(line, "call"))
		if !strings.HasPrefix(rest, "@") {
			return nil, p.errf("call wants @callee(...)")
		}
		open := strings.Index(rest, "(")
		closeIdx := strings.LastIndex(rest, ")")
		if open < 0 || closeIdx < open {
			return nil, p.errf("malformed call %q", line)
		}
		in.Op = OpCall
		in.Callee = rest[1:open]
		argText := strings.TrimSpace(rest[open+1 : closeIdx])
		if argText != "" {
			for _, a := range strings.Split(argText, ",") {
				v, err := val(strings.TrimSpace(a), nil)
				if err != nil {
					return nil, err
				}
				in.Args = append(in.Args, v)
			}
		}
		if dstName != "" {
			// Result type resolved after all functions parse; default
			// i64 is refined by later uses.
			setDst(nil)
		}

	case "ret":
		in.Op = OpRet
		if len(args) == 1 {
			v, err := val(args[0], nil)
			if err != nil {
				return nil, err
			}
			in.Src = v
		} else if len(args) > 1 {
			return nil, p.errf("ret wants at most one operand")
		}

	case "br":
		if len(args) != 3 {
			return nil, p.errf("br wants 'cond, then, else'")
		}
		cond, err := val(args[0], I64())
		if err != nil {
			return nil, err
		}
		in.Op = OpBr
		in.Cond = cond
		in.Then = fs.block(args[1])
		in.Else = fs.block(args[2])

	case "jmp":
		if len(args) != 1 {
			return nil, p.errf("jmp wants a target")
		}
		in.Op = OpJmp
		in.Target = fs.block(args[0])

	case "cards_guard.r", "cards_guard.w":
		if len(args) != 1 {
			return nil, p.errf("guard wants an address")
		}
		addr, err := val(args[0], Ptr(I64()))
		if err != nil {
			return nil, err
		}
		in.Op = OpGuard
		in.IsWrite = op == "cards_guard.w"
		in.Addr = addr
		setDst(Ptr(I64()))

	case "cards_prefetch":
		if len(args) != 1 {
			return nil, p.errf("prefetch wants an address")
		}
		addr, err := val(args[0], Ptr(I64()))
		if err != nil {
			return nil, err
		}
		in.Op = OpPrefetch
		in.Addr = addr

	case "cards_all_local":
		// cards_all_local [0 1 2]
		in.Op = OpAllLocal
		body := strings.TrimSpace(strings.TrimPrefix(line, "cards_all_local"))
		body = strings.TrimSuffix(strings.TrimPrefix(body, "["), "]")
		for _, part := range strings.Fields(body) {
			id, err := strconv.Atoi(part)
			if err != nil {
				return nil, p.errf("all_local id %q: %v", part, err)
			}
			in.DSRefs = append(in.DSRefs, id)
		}
		setDst(I64())

	default:
		// Binary operators by name.
		for k, name := range binNames {
			if name == op {
				if len(args) != 2 {
					return nil, p.errf("%s wants 2 operands", op)
				}
				kind := BinKind(k)
				opType := I64()
				switch kind {
				case FAdd, FSub, FMul, FDiv, FLT:
					opType = F64()
				}
				x, err := val(args[0], opType)
				if err != nil {
					return nil, err
				}
				y, err := val(args[1], opType)
				if err != nil {
					return nil, err
				}
				in.Op = OpBin
				in.Kind = kind
				in.X, in.Y = x, y
				t := I64()
				switch kind {
				case FAdd, FSub, FMul, FDiv, IToF:
					t = F64()
				}
				setDst(t)
				return in, nil
			}
		}
		return nil, p.errf("unknown opcode %q", op)
	}
	return in, nil
}

// operand resolves one operand token: %reg, integer, or float literal.
// hint types default-typed forward references.
func (p *parser) operand(fs *funcState, tok string, hint Type) (Value, error) {
	tok = strings.TrimSpace(tok)
	if strings.HasPrefix(tok, "%") {
		return fs.reg(p, tok[1:], hint), nil
	}
	if _, isFloat := hint.(FloatType); isFloat {
		fv, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nil, p.errf("float literal %q: %v", tok, err)
		}
		return CF(fv), nil
	}
	if strings.ContainsAny(tok, ".eE") && !strings.HasPrefix(tok, "0x") {
		fv, err := strconv.ParseFloat(tok, 64)
		if err == nil {
			return CF(fv), nil
		}
	}
	n, err := strconv.ParseInt(tok, 10, 64)
	if err != nil {
		return nil, p.errf("literal %q: %v", tok, err)
	}
	return CI(n), nil
}

// splitOperands groups comma-separated operand tokens back together
// (the tokenizer split around commas).
func splitOperands(toks []string) []string {
	var out []string
	var cur []string
	flush := func() {
		if len(cur) > 0 {
			out = append(out, strings.Join(cur, " "))
			cur = nil
		}
	}
	for _, t := range toks {
		if t == "," {
			flush()
			continue
		}
		if t == "->" {
			flush()
			out = append(out, "->")
			continue
		}
		cur = append(cur, t)
	}
	flush()
	return out
}
