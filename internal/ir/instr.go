package ir

import (
	"fmt"
	"strings"
)

// Op enumerates instruction opcodes.
type Op int

// Opcodes. The first group mirrors a conventional load/store IR; the
// second group ("runtime intrinsics") is introduced by CaRDS transform
// passes and consumed by the runtime, mirroring the calls the real CaRDS
// compiler injects into the AIFM-derived runtime (paper Listings 2–4).
const (
	OpInvalid Op = iota

	// Dst = constant (IntVal or FloatVal).
	OpConst
	// Dst = X <BinKind> Y.
	OpBin
	// Dst = Src (register copy / move).
	OpCopy
	// Dst = alloc ElemType, Count  — heap allocation of Count elements.
	// Before pool allocation this is a bare malloc; afterwards DS >= 0
	// links it to a compiler-identified data structure (dsalloc).
	OpAlloc
	// Dst = load Type, Addr.
	OpLoad
	// store Type, Val -> Addr.
	OpStore
	// Dst = gep Base, Index, ElemSize, ConstOff:
	// Dst = Base + Index*ElemSize + ConstOff.
	OpGEP
	// Dst = call Callee(Args...).
	OpCall
	// ret [Val].
	OpRet
	// br Cond, Then, Else.
	OpBr
	// jmp Target.
	OpJmp

	// Runtime intrinsics inserted by transforms:

	// Dst = cards_guard Addr (IsWrite): custody check + possible deref
	// slow path; yields a localized address (Figure 3 / Listing 4).
	OpGuard
	// Dst = cards_all_local(DSRefs...): 1 iff every listed data structure
	// is currently non-remoted, enabling the uninstrumented loop version
	// (Listing 3).
	OpAllLocal
	// cards_prefetch Addr: non-binding prefetch hint for Addr's object.
	OpPrefetch
)

var opNames = map[Op]string{
	OpConst:    "const",
	OpBin:      "bin",
	OpCopy:     "copy",
	OpAlloc:    "alloc",
	OpLoad:     "load",
	OpStore:    "store",
	OpGEP:      "gep",
	OpCall:     "call",
	OpRet:      "ret",
	OpBr:       "br",
	OpJmp:      "jmp",
	OpGuard:    "cards_guard",
	OpAllLocal: "cards_all_local",
	OpPrefetch: "cards_prefetch",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// BinKind enumerates binary operators. Comparison operators yield 0/1 in
// an integer register.
type BinKind int

// Binary operators.
const (
	Add BinKind = iota
	Sub
	Mul
	Div
	Rem
	And
	Or
	Xor
	Shl
	Shr
	EQ
	NE
	LT
	LE
	GT
	GE
	FAdd
	FSub
	FMul
	FDiv
	FLT
	// IToF converts the integer X to float64 (Y is ignored; pass CI(0)).
	IToF
)

var binNames = [...]string{
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Rem: "rem",
	And: "and", Or: "or", Xor: "xor", Shl: "shl", Shr: "shr",
	EQ: "eq", NE: "ne", LT: "lt", LE: "le", GT: "gt", GE: "ge",
	FAdd: "fadd", FSub: "fsub", FMul: "fmul", FDiv: "fdiv", FLT: "flt",
	IToF: "itof",
}

func (b BinKind) String() string {
	if int(b) < len(binNames) {
		return binNames[b]
	}
	return fmt.Sprintf("bin(%d)", int(b))
}

// IsCompare reports whether the operator yields a boolean (0/1).
func (b BinKind) IsCompare() bool {
	switch b {
	case EQ, NE, LT, LE, GT, GE, FLT:
		return true
	}
	return false
}

// Value is an instruction operand: either a *Reg or a constant.
type Value interface {
	value()
	String() string
}

// Reg is a function-scoped virtual register.
type Reg struct {
	ID   int
	Name string
	Type Type
	// Param is true for registers bound to incoming arguments.
	Param bool
}

func (*Reg) value() {}

func (r *Reg) String() string {
	if r.Name != "" {
		return "%" + r.Name
	}
	return fmt.Sprintf("%%r%d", r.ID)
}

// IntConst is an integer literal operand.
type IntConst struct{ V int64 }

func (IntConst) value()           {}
func (c IntConst) String() string { return fmt.Sprintf("%d", c.V) }

// FloatConst is a float literal operand.
type FloatConst struct{ V float64 }

func (FloatConst) value()           {}
func (c FloatConst) String() string { return fmt.Sprintf("%g", c.V) }

// CI builds an integer constant operand.
func CI(v int64) Value { return IntConst{V: v} }

// CF builds a float constant operand.
func CF(v float64) Value { return FloatConst{V: v} }

// Instr is a single IR instruction. One struct covers all opcodes; unused
// fields are zero. This "fat node" layout keeps transform passes simple:
// they mutate instructions in place and splice instruction slices.
type Instr struct {
	Op  Op
	Dst *Reg

	// OpConst.
	IntVal   int64
	FloatVal float64
	IsFloat  bool

	// OpBin.
	Kind BinKind
	X, Y Value

	// OpCopy / OpStore value / OpGuard & OpPrefetch address / OpRet value.
	Src Value

	// OpAlloc: element type and count; OpLoad/OpStore: accessed type.
	Elem  Type
	Count Value

	// OpLoad/OpStore/OpGuard/OpPrefetch address operand.
	Addr Value

	// OpGEP.
	Base     Value
	Index    Value
	ElemSize int
	ConstOff int

	// OpCall.
	Callee string
	Args   []Value

	// OpBr / OpJmp.
	Cond       Value
	Then, Else *Block
	Target     *Block

	// --- Pass annotations ---

	// DS is the data structure ID assigned by pool allocation to OpAlloc
	// (and propagated to OpAllLocal DSRefs). -1 until assigned.
	DS int

	// DSHandle is the register or value carrying the data structure
	// handle after pool allocation rewrote this alloc into dsalloc
	// (Listing 2). Nil before the transform.
	DSHandle Value

	// IsWrite distinguishes write guards from read guards.
	IsWrite bool

	// GLo/GHi bound the byte span [GLo, GHi) relative to Addr that the
	// stores covered by a write guard may modify (the guard's own store
	// plus every store elided onto it). GHi <= GLo means unknown; the
	// runtime then dirties conservatively. Meaningless on read guards.
	GLo, GHi int

	// DSRefs lists data structure IDs consulted by OpAllLocal.
	DSRefs []int

	// Site is a stable allocation-site / instruction identifier assigned
	// by the verifier pass, used by DSA to key context-sensitive clones.
	Site int
}

// NewInstr returns an instruction with annotation fields initialized.
func NewInstr(op Op) *Instr { return &Instr{Op: op, DS: -1} }

// IsTerminator reports whether the instruction ends a basic block.
func (in *Instr) IsTerminator() bool {
	switch in.Op {
	case OpRet, OpBr, OpJmp:
		return true
	}
	return false
}

// Operands returns the value operands read by the instruction (not
// including block targets).
func (in *Instr) Operands() []Value {
	var vs []Value
	add := func(v Value) {
		if v != nil {
			vs = append(vs, v)
		}
	}
	add(in.X)
	add(in.Y)
	add(in.Src)
	add(in.Count)
	add(in.Addr)
	add(in.Base)
	add(in.Index)
	add(in.Cond)
	add(in.DSHandle)
	vs = append(vs, in.Args...)
	return vs
}

// String renders the instruction in the textual syntax used by the
// printer and in test expectations.
func (in *Instr) String() string {
	dst := ""
	if in.Dst != nil {
		dst = in.Dst.String() + " = "
	}
	switch in.Op {
	case OpConst:
		if in.IsFloat {
			return fmt.Sprintf("%sfconst %g", dst, in.FloatVal)
		}
		return fmt.Sprintf("%sconst %d", dst, in.IntVal)
	case OpBin:
		return fmt.Sprintf("%s%s %s, %s", dst, in.Kind, in.X, in.Y)
	case OpCopy:
		return fmt.Sprintf("%scopy %s", dst, in.Src)
	case OpAlloc:
		s := fmt.Sprintf("%salloc %s, %s", dst, in.Elem, in.Count)
		if in.DS >= 0 {
			s += fmt.Sprintf(" ; ds=%d", in.DS)
		}
		return s
	case OpLoad:
		return fmt.Sprintf("%sload %s, %s", dst, in.Elem, in.Addr)
	case OpStore:
		return fmt.Sprintf("store %s, %s -> %s", in.Elem, in.Src, in.Addr)
	case OpGEP:
		return fmt.Sprintf("%sgep %s, %s, %d, %d", dst, in.Base, valOrZero(in.Index), in.ElemSize, in.ConstOff)
	case OpCall:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = a.String()
		}
		return fmt.Sprintf("%scall @%s(%s)", dst, in.Callee, strings.Join(args, ", "))
	case OpRet:
		if in.Src != nil {
			return fmt.Sprintf("ret %s", in.Src)
		}
		return "ret"
	case OpBr:
		return fmt.Sprintf("br %s, %s, %s", in.Cond, in.Then.Name, in.Else.Name)
	case OpJmp:
		return fmt.Sprintf("jmp %s", in.Target.Name)
	case OpGuard:
		mode := "r"
		if in.IsWrite {
			mode = "w"
		}
		return fmt.Sprintf("%scards_guard.%s %s", dst, mode, in.Addr)
	case OpAllLocal:
		return fmt.Sprintf("%scards_all_local %v", dst, in.DSRefs)
	case OpPrefetch:
		return fmt.Sprintf("cards_prefetch %s", in.Addr)
	}
	return fmt.Sprintf("<invalid op %d>", int(in.Op))
}

func valOrZero(v Value) string {
	if v == nil {
		return "0"
	}
	return v.String()
}
