package analysis

import (
	"cards/internal/cfg"
	"cards/internal/ir"
)

// SingleHeap builds the program view a compiler WITHOUT data structure
// analysis has: every heap allocation belongs to one undifferentiated
// "heap" structure (ID 0), every load/store may touch it, and no
// per-structure pattern information exists. This is the TrackFM baseline
// model (paper §1: "in TrackFM, all objects are assumed to be remotable,
// since the compiler is unable to predict locality of access
// statically").
//
// Induction variables ARE computed — TrackFM's guard optimizations and
// prefetching work on induction variables — but pattern classification
// degrades to a single strided hint for the merged heap (its only
// prefetcher), and the object granularity is a fixed 4 KiB block.
func SingleHeap(m *ir.Module) *Result {
	res := &Result{
		IVs:     make(map[string]map[*ir.Reg]*IVInfo),
		InstrDS: make(map[*ir.Instr][]int),
		LoopDS:  make(map[*ir.Block][]int),
		CFGs:    make(map[string]*cfg.Info),
	}
	for _, f := range m.Funcs {
		res.CFGs[f.Name] = cfg.Analyze(f)
		res.IVs[f.Name] = findInductionVars(f, res.CFGs[f.Name])
	}
	heap := []int{0}
	for _, f := range m.Funcs {
		f.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) bool {
			switch in.Op {
			case ir.OpLoad, ir.OpStore:
				res.InstrDS[in] = heap
			case ir.OpAlloc:
				// Bind every allocation to the merged heap.
				in.DS = 0
				in.DSHandle = ir.CI(0)
			}
			return true
		})
		for _, loop := range res.CFGs[f.Name].Loops() {
			res.LoopDS[loop.Header] = heap
		}
	}
	res.Infos = []*DSInfo{{
		DS:      nil, // no dsa identity: synthetic merged heap
		Pattern: PatternStrided,
		Stride:  8,
		ObjSize: DefaultArrayObjSize,
	}}
	return res
}
