package analysis

import (
	"testing"

	"cards/internal/dsa"
	"cards/internal/ir"
)

func analyzeListing1(t *testing.T) (*ir.Module, *dsa.Result, *Result) {
	t.Helper()
	m := ir.BuildListing1(128, 4)
	ds := dsa.Analyze(m)
	return m, ds, Analyze(m, ds)
}

func TestInductionVariables(t *testing.T) {
	m, _, res := analyzeListing1(t)
	setIVs := res.IVs["Set"]
	if len(setIVs) != 1 {
		t.Fatalf("Set IVs = %d, want 1", len(setIVs))
	}
	for r, iv := range setIVs {
		if r.Name != "j.iv" {
			t.Errorf("IV register = %s, want j.iv", r.Name)
		}
		if iv.Step != 1 {
			t.Errorf("step = %d, want 1", iv.Step)
		}
	}
	mainIVs := res.IVs["main"]
	if len(mainIVs) != 1 {
		t.Fatalf("main IVs = %d, want 1", len(mainIVs))
	}
	_ = m
}

func TestListing1UseScores(t *testing.T) {
	// Paper §4.2 / eq. 1: ds2 has higher usage than ds1 (it is set once
	// directly plus NTIMES in main's k-loop), so MaxUse must rank ds2
	// above ds1.
	m, ds, res := analyzeListing1(t)

	// Identify ds1/ds2 by the order of alloc calls in main.
	var ids []int
	m.Main().Instrs(func(_ *ir.Block, _ int, in *ir.Instr) bool {
		if in.Op == ir.OpCall && in.Callee == "alloc" && in.Dst != nil {
			got := ds.DSForValue("main", in.Dst)
			if len(got) != 1 {
				t.Fatalf("alloc result maps to %v", got)
			}
			ids = append(ids, got[0])
		}
		return true
	})
	ds1, ds2 := ids[0], ids[1]
	s1, s2 := res.Infos[ds1].UseScore, res.Infos[ds2].UseScore
	if s2 <= s1 {
		t.Fatalf("UseScore(ds2)=%d should exceed UseScore(ds1)=%d "+
			"(ds2 is touched by main's k-loop)", s2, s1)
	}
	// ds2 is accessed in one more loop than ds1 (the k-loop).
	if res.Infos[ds2].Loops != res.Infos[ds1].Loops+1 {
		t.Errorf("loops ds1=%d ds2=%d, want ds2 = ds1+1",
			res.Infos[ds1].Loops, res.Infos[ds2].Loops)
	}
}

func TestListing1Patterns(t *testing.T) {
	_, _, res := analyzeListing1(t)
	for _, info := range res.Infos {
		if info.Pattern != PatternStrided {
			t.Errorf("%s: pattern = %s, want strided (Figure 2 highlights "+
				"strided access)", info.DS.Name(), info.Pattern)
		}
		if info.Stride != 8 {
			t.Errorf("%s: stride = %d, want 8", info.DS.Name(), info.Stride)
		}
		if info.ObjSize != DefaultArrayObjSize {
			t.Errorf("%s: objsize = %d, want %d", info.DS.Name(), info.ObjSize, DefaultArrayObjSize)
		}
	}
}

func TestPointerChaseClassification(t *testing.T) {
	// walk(list) { p = head; loop { v += p.val; p = p.next } }
	m := ir.NewModule("chase")
	node := ir.NewStruct("node", ir.F("val", ir.I64()), ir.F("next", ir.Ptr(ir.I64())))

	build := m.NewFunc("build", ir.Ptr(node), ir.P("n", ir.I64()))
	bb := ir.NewBuilder(build)
	head := build.NewReg("head", ir.Ptr(node))
	bb.Assign(head, bb.Alloc(node, ir.CI(1)))
	bl := bb.CountedLoop("i", ir.CI(0), build.Params[0], ir.CI(1))
	p := bb.Alloc(node, ir.CI(1))
	bb.Store(ir.Ptr(node), head, bb.FieldAddr(p, node, "next"))
	bb.Assign(head, p)
	bb.CloseLoop(bl)
	bb.Ret(head)

	mainF := m.NewFunc("main", ir.Void())
	mb := ir.NewBuilder(mainF)
	lst := mb.Call(build, ir.CI(64))
	cur := mainF.NewReg("cur", ir.Ptr(node))
	mb.Assign(cur, lst)
	wl := mb.CountedLoop("w", ir.CI(0), ir.CI(64), ir.CI(1))
	mb.Load(ir.I64(), mb.FieldAddr(cur, node, "val"))
	nxt := mb.Load(ir.Ptr(node), mb.FieldAddr(cur, node, "next"))
	mb.Assign(cur, nxt)
	mb.CloseLoop(wl)
	mb.Ret(nil)
	m.AssignSites()
	ir.MustVerify(m)

	ds := dsa.Analyze(m)
	res := Analyze(m, ds)
	if len(res.Infos) != 1 {
		t.Fatalf("infos = %d, want 1", len(res.Infos))
	}
	info := res.Infos[0]
	if info.Pattern != PatternPointerChase {
		t.Fatalf("pattern = %s, want pointer-chase", info.Pattern)
	}
	if !info.DS.Recursive {
		t.Error("list should be recursive")
	}
	if info.ObjSize != ChaseObjSize {
		t.Errorf("objsize = %d, want %d (compact objects for linked nodes)",
			info.ObjSize, ChaseObjSize)
	}
}

func TestIndirectClassification(t *testing.T) {
	// Gather: for i { v += data[index[i]] } — graph-style access.
	m := ir.NewModule("gather")
	f := m.NewFunc("main", ir.Void())
	b := ir.NewBuilder(f)
	n := int64(64)
	data := b.Alloc(ir.I64(), ir.CI(n))
	index := b.Alloc(ir.I64(), ir.CI(n))
	loop := b.CountedLoop("i", ir.CI(0), ir.CI(n), ir.CI(1))
	idx := b.Load(ir.I64(), b.Idx(index, loop.IV))
	b.Load(ir.I64(), b.Idx(data, idx))
	b.CloseLoop(loop)
	b.Ret(nil)
	m.AssignSites()
	ir.MustVerify(m)

	ds := dsa.Analyze(m)
	res := Analyze(m, ds)
	if len(res.Infos) != 2 {
		t.Fatalf("infos = %d, want 2", len(res.Infos))
	}
	var dataInfo, indexInfo *DSInfo
	for _, info := range res.Infos {
		switch {
		case sameNode(info, ds, "main", data):
			dataInfo = info
		case sameNode(info, ds, "main", index):
			indexInfo = info
		}
	}
	if dataInfo == nil || indexInfo == nil {
		t.Fatal("could not identify data/index structures")
	}
	if indexInfo.Pattern != PatternStrided {
		t.Errorf("index pattern = %s, want strided", indexInfo.Pattern)
	}
	if dataInfo.Pattern != PatternIndirect {
		t.Errorf("data pattern = %s, want indirect", dataInfo.Pattern)
	}
}

func sameNode(info *DSInfo, ds *dsa.Result, fn string, reg *ir.Reg) bool {
	ids := ds.DSForValue(fn, reg)
	return len(ids) == 1 && ids[0] == info.DS.ID
}

func TestLoopDS(t *testing.T) {
	m, ds, res := analyzeListing1(t)
	// Set's j-loop touches both instances (across contexts).
	set := m.FuncByName("Set")
	setInfo := res.CFGs["Set"]
	if len(setInfo.Loops()) != 1 {
		t.Fatal("Set should have one loop")
	}
	jIDs := res.LoopDS[setInfo.Loops()[0].Header]
	if len(jIDs) != 2 {
		t.Fatalf("j-loop DS = %v, want both instances", jIDs)
	}
	// main's k-loop touches only ds2.
	mainInfo := res.CFGs["main"]
	if len(mainInfo.Loops()) != 1 {
		t.Fatal("main should have one loop")
	}
	kIDs := res.LoopDS[mainInfo.Loops()[0].Header]
	if len(kIDs) != 1 {
		t.Fatalf("k-loop DS = %v, want exactly ds2", kIDs)
	}
	var ids []int
	m.Main().Instrs(func(_ *ir.Block, _ int, in *ir.Instr) bool {
		if in.Op == ir.OpCall && in.Callee == "alloc" && in.Dst != nil {
			got := ds.DSForValue("main", in.Dst)
			ids = append(ids, got[0])
		}
		return true
	})
	if kIDs[0] != ids[1] {
		t.Errorf("k-loop DS = %d, want ds2 = %d", kIDs[0], ids[1])
	}
	_ = set
}

func TestReachScores(t *testing.T) {
	_, _, res := analyzeListing1(t)
	for _, info := range res.Infos {
		if info.ReachScore < 2 {
			t.Errorf("%s: reach = %d, want >= 2 (accessed via main->Set chain)",
				info.DS.Name(), info.ReachScore)
		}
		if len(info.AccessingFuncs) == 0 {
			t.Errorf("%s: no accessing functions recorded", info.DS.Name())
		}
	}
}

func TestPatternString(t *testing.T) {
	cases := map[Pattern]string{
		PatternUnknown:      "unknown",
		PatternStrided:      "strided",
		PatternPointerChase: "pointer-chase",
		PatternIndirect:     "indirect",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d.String() = %s, want %s", p, p.String(), want)
		}
	}
}
