// Package analysis implements the CaRDS prefetching analysis and the
// static scoring that feeds remoting policy selection (paper §4.1
// "Prefetching analysis" and §4.2 "Remoting policy selection"):
//
//   - induction variable detection per loop (the basis for identifying
//     sequential access, as in TrackFM);
//   - per-data-structure access pattern classification — strided,
//     pointer-chasing, or indirect — which selects each structure's
//     dedicated prefetcher;
//   - the Maximum Use score, ds = MAX(#loops + #functions) (paper
//     equation 1), and the Maximum Reach score derived from caller/callee
//     chain depth on the SCC call graph.
//
// Attribution is interprocedural: an access in a helper function counts
// toward whichever data structure instance flows in at each call site
// (via the DSA clone maps), so Listing 1's ds2 — touched by Set from
// inside main's k-loop — correctly outscores ds1.
package analysis

import (
	"sort"

	"cards/internal/cfg"
	"cards/internal/dsa"
	"cards/internal/ir"
)

// Pattern classifies the prototypical access pattern of a data structure.
type Pattern int

// Access pattern kinds.
const (
	// PatternUnknown: no loop accesses observed.
	PatternUnknown Pattern = iota
	// PatternStrided: accesses walk the structure with a constant
	// stride driven by an induction variable (array scans).
	PatternStrided
	// PatternPointerChase: the next address is loaded from the current
	// element (linked lists, trees).
	PatternPointerChase
	// PatternIndirect: the index is itself loaded from memory
	// (graph adjacency, gather/scatter).
	PatternIndirect
)

func (p Pattern) String() string {
	switch p {
	case PatternStrided:
		return "strided"
	case PatternPointerChase:
		return "pointer-chase"
	case PatternIndirect:
		return "indirect"
	}
	return "unknown"
}

// IVInfo describes a basic induction variable.
type IVInfo struct {
	Loop *cfg.Loop
	Step int64
}

// DSInfo aggregates everything the compiler knows about one data
// structure instance; this is the record handed to the runtime.
type DSInfo struct {
	DS *dsa.DataStructure

	// Pattern is the majority access pattern; Stride its byte stride
	// when strided.
	Pattern Pattern
	Stride  int64

	// UseScore = #loops + #functions accessing the structure (eq. 1).
	UseScore int
	// ReachScore is the longest caller/callee chain through a function
	// accessing the structure.
	ReachScore int

	// Loops and Funcs are the raw counts behind UseScore.
	Loops, Funcs int

	// ObjSize is the object granularity hint for the runtime (bytes):
	// element-sized objects for linked structures, page-sized blocks
	// for arrays (paper §4.2 "CaRDS guards": object sizes are guided by
	// compiler hints at ds_init).
	ObjSize int

	// AccessingFuncs lists functions touching the structure (sorted).
	AccessingFuncs []string

	// WriteFootprint lists the [lo, hi) byte ranges within one element
	// that stores to the structure may modify, coalesced and sorted.
	// Nil when a store's target bytes could not be bounded statically
	// (the structure then write-backs whole objects).
	WriteFootprint [][2]int
}

// Result is the output of the analysis pass.
type Result struct {
	Infos []*DSInfo // indexed by DS ID

	// IVs maps each function to its induction variables.
	IVs map[string]map[*ir.Reg]*IVInfo

	// InstrDS maps loads/stores/guards/calls to the data structure IDs
	// they (transitively, context-filtered) touch.
	InstrDS map[*ir.Instr][]int

	// LoopDS maps a loop header block to the DS IDs accessed anywhere
	// within the loop, including via calls. Guard versioning consults
	// this to build cards_all_local checks (Listing 3).
	LoopDS map[*ir.Block][]int

	// CFGs caches per-function control-flow info.
	CFGs map[string]*cfg.Info

	// votes tallies classified accesses per DS during attribution.
	votes map[int]*patternVotes
	// accessed records, per function, the DS IDs it touches directly or
	// transitively.
	accessed map[string]map[int]bool
}

// DefaultArrayObjSize is the object granularity for strided structures —
// the 4 KiB figure the paper uses in its char ds[4096] example.
const DefaultArrayObjSize = 4096

// ChaseObjSize is the object granularity hint for linked structures:
// small enough to avoid the I/O amplification of page-sized transfers on
// scattered nodes, large enough that nodes allocated in traversal order
// (the common case for list/map builds) amortize the fetch round trip.
// This is exactly the per-structure-size flexibility §4.2 describes
// ("CaRDS data structures can have varying object sizes based on the
// static hints given by the compiler").
const ChaseObjSize = 1024

// MinObjSize floors tiny linked-node objects so header overhead stays
// bounded.
const MinObjSize = 64

// Analyze runs the full analysis over a pool-allocated module.
func Analyze(m *ir.Module, ds *dsa.Result) *Result {
	res := &Result{
		IVs:     make(map[string]map[*ir.Reg]*IVInfo),
		InstrDS: make(map[*ir.Instr][]int),
		LoopDS:  make(map[*ir.Block][]int),
		CFGs:    make(map[string]*cfg.Info),
	}
	for _, f := range m.Funcs {
		res.CFGs[f.Name] = cfg.Analyze(f)
		res.IVs[f.Name] = findInductionVars(f, res.CFGs[f.Name])
	}

	res.attributeAccesses(m, ds)
	res.propagateThroughCalls(m, ds)
	res.computeLoopDS(m)
	res.score(m, ds)
	res.computeWriteFootprints(m)
	return res
}

// computeWriteFootprints derives, per data structure, the byte ranges
// within one element that stores may modify — the static fallback the
// runtime's dirty-range write-back uses when a guard carries no span.
// A store whose target offset cannot be bounded (unresolvable address,
// offset outside the element) voids the footprint of every structure it
// may touch: nil means "assume the whole object".
func (res *Result) computeWriteFootprints(m *ir.Module) {
	ranges := make(map[int][][2]int)
	unknown := make(map[int]bool)
	for _, f := range m.Funcs {
		// Single-definition map for address decomposition; registers
		// with multiple defs resolve to nil (give up on that store).
		defs := make(map[*ir.Reg]*ir.Instr)
		multi := make(map[*ir.Reg]bool)
		f.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) bool {
			if in.Dst != nil {
				if _, seen := defs[in.Dst]; seen {
					multi[in.Dst] = true
				}
				defs[in.Dst] = in
			}
			return true
		})
		f.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) bool {
			if in.Op != ir.OpStore {
				return true
			}
			ids := res.InstrDS[in]
			if len(ids) == 0 {
				return true
			}
			lo, ok := storeFieldOffset(in, defs, multi)
			width := 0
			if in.Elem != nil {
				width = in.Elem.Size()
			}
			for _, id := range ids {
				if !ok || width <= 0 {
					unknown[id] = true
					continue
				}
				info := res.Infos[id]
				es := 0
				if info.DS.Elem != nil {
					es = info.DS.Elem.Size()
				}
				if es <= 0 {
					unknown[id] = true
					continue
				}
				off := lo % es
				if off+width > es {
					// Straddles an element boundary (or a mis-modelled
					// layout): no safe per-element bound.
					unknown[id] = true
					continue
				}
				ranges[id] = append(ranges[id], [2]int{off, off + width})
			}
			return true
		})
	}
	for id, rs := range ranges {
		if unknown[id] {
			continue
		}
		res.Infos[id].WriteFootprint = coalesceRanges(rs)
	}
}

// storeFieldOffset resolves the constant byte offset of a store's
// address relative to its element base: the ConstOff of a single
// indexed GEP, or the raw offset of a base+const GEP. Returns false
// when the address is not a single resolvable GEP.
func storeFieldOffset(in *ir.Instr, defs map[*ir.Reg]*ir.Instr, multi map[*ir.Reg]bool) (int, bool) {
	r, ok := in.Addr.(*ir.Reg)
	if !ok {
		return 0, false
	}
	def := defs[r]
	if def == nil || multi[r] || def.Op != ir.OpGEP {
		return 0, false
	}
	off := def.ConstOff
	// Nested GEP (array-of-structs): fold the inner field offset.
	if br, isReg := def.Base.(*ir.Reg); isReg && def.Index == nil {
		if bdef := defs[br]; bdef != nil && !multi[br] && bdef.Op == ir.OpGEP {
			off += bdef.ConstOff
		}
	}
	if off < 0 {
		return 0, false
	}
	return off, true
}

// coalesceRanges sorts and merges overlapping or adjacent [lo, hi)
// ranges.
func coalesceRanges(rs [][2]int) [][2]int {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i][0] != rs[j][0] {
			return rs[i][0] < rs[j][0]
		}
		return rs[i][1] < rs[j][1]
	})
	out := rs[:0]
	for _, r := range rs {
		if n := len(out); n > 0 && r[0] <= out[n-1][1] {
			if r[1] > out[n-1][1] {
				out[n-1][1] = r[1]
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// findInductionVars detects basic IVs: registers updated exactly once in
// the loop by r = r + c (possibly via a temporary, which is the pattern
// the builder emits: t = add r, c; r = copy t).
func findInductionVars(f *ir.Function, info *cfg.Info) map[*ir.Reg]*IVInfo {
	ivs := make(map[*ir.Reg]*IVInfo)
	for _, loop := range info.Loops() {
		// defs[r] = instructions in the loop writing r.
		defs := make(map[*ir.Reg][]*ir.Instr)
		for b := range loop.Blocks {
			for _, in := range b.Instrs {
				if in.Dst != nil {
					defs[in.Dst] = append(defs[in.Dst], in)
				}
			}
		}
		for r, writes := range defs {
			if len(writes) != 1 || writes[0].Op != ir.OpCopy {
				continue
			}
			src, ok := writes[0].Src.(*ir.Reg)
			if !ok {
				continue
			}
			srcDefs := defs[src]
			if len(srcDefs) != 1 || srcDefs[0].Op != ir.OpBin || srcDefs[0].Kind != ir.Add {
				continue
			}
			add := srcDefs[0]
			x, xIsReg := add.X.(*ir.Reg)
			c, yIsConst := add.Y.(ir.IntConst)
			if xIsReg && yIsConst && x == r {
				ivs[r] = &IVInfo{Loop: loop, Step: c.V}
			}
		}
	}
	return ivs
}

// accessClass classifies one memory access address within its function.
type accessClass int

const (
	classPlain accessClass = iota
	classStrided
	classChase
	classIndirect
)

// classifyAddr walks the address computation of an access inside a loop.
func classifyAddr(f *ir.Function, loop *cfg.Loop, addr ir.Value, ivs map[*ir.Reg]*IVInfo,
	defsIn map[*ir.Reg]*ir.Instr) (accessClass, int64) {
	r, ok := addr.(*ir.Reg)
	if !ok {
		return classPlain, 0
	}
	def := defsIn[r]
	if def == nil {
		return classPlain, 0
	}
	switch def.Op {
	case ir.OpGEP:
		if def.Index != nil {
			if idxReg, ok := def.Index.(*ir.Reg); ok {
				// An induction variable of ANY enclosing loop yields a
				// strided pattern: inner-loop IVs step every iteration,
				// outer-loop IVs step per inner trip (fdtd's clf/tmp
				// planes are indexed by the outer iz/iy alone).
				if iv, isIV := ivs[idxReg]; isIV {
					return classStrided, int64(def.ElemSize) * iv.Step
				}
				// Index computed from a load => indirect access.
				if idxDef := defsIn[idxReg]; idxDef != nil && reachesLoad(idxDef, defsIn, 0) {
					return classIndirect, 0
				}
				// Index derived (affinely) from an IV also counts as
				// strided with unknown stride sign.
				if idxDef := defsIn[idxReg]; idxDef != nil && derivedFromIV(idxDef, ivs, loop, defsIn, 0) {
					return classStrided, int64(def.ElemSize)
				}
			}
			return classPlain, 0
		}
		// Field access: classify the base.
		if base, ok := def.Base.(*ir.Reg); ok {
			if bd := defsIn[base]; bd != nil && bd.Op == ir.OpLoad && loop.Blocks[blockOf(f, bd)] {
				return classChase, 0
			}
			cls, stride := classifyAddr(f, loop, base, ivs, defsIn)
			return cls, stride
		}
	case ir.OpLoad:
		// The pointer itself was loaded inside the loop: pointer chase.
		if loop.Blocks[blockOf(f, def)] {
			return classChase, 0
		}
	case ir.OpGuard, ir.OpCopy:
		src := def.Src
		if def.Op == ir.OpGuard {
			src = def.Addr
		}
		return classifyAddr(f, loop, src, ivs, defsIn)
	}
	return classPlain, 0
}

func reachesLoad(def *ir.Instr, defsIn map[*ir.Reg]*ir.Instr, depth int) bool {
	if depth > 8 || def == nil {
		return false
	}
	if def.Op == ir.OpLoad {
		return true
	}
	for _, op := range def.Operands() {
		if r, ok := op.(*ir.Reg); ok {
			if reachesLoad(defsIn[r], defsIn, depth+1) {
				return true
			}
		}
	}
	return false
}

func derivedFromIV(def *ir.Instr, ivs map[*ir.Reg]*IVInfo, loop *cfg.Loop,
	defsIn map[*ir.Reg]*ir.Instr, depth int) bool {
	if depth > 8 || def == nil {
		return false
	}
	for _, op := range def.Operands() {
		if r, ok := op.(*ir.Reg); ok {
			if _, isIV := ivs[r]; isIV {
				return true
			}
			if derivedFromIV(defsIn[r], ivs, loop, defsIn, depth+1) {
				return true
			}
		}
	}
	return false
}

func blockOf(f *ir.Function, target *ir.Instr) *ir.Block {
	var found *ir.Block
	f.Instrs(func(b *ir.Block, _ int, in *ir.Instr) bool {
		if in == target {
			found = b
			return false
		}
		return true
	})
	return found
}

// patternVotes tallies classified accesses per DS.
type patternVotes struct {
	strided, chase, indirect, plain int
	strideSum                       map[int64]int
}

// attributeAccesses maps every load/store to DS IDs and casts pattern
// votes.
func (res *Result) attributeAccesses(m *ir.Module, ds *dsa.Result) {
	res.votes = make(map[int]*patternVotes)
	for _, f := range m.Funcs {
		info := res.CFGs[f.Name]
		ivs := res.IVs[f.Name]
		// Single-def map (best effort: last def wins; our builder-made
		// address chains are single-def).
		defsIn := make(map[*ir.Reg]*ir.Instr)
		f.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) bool {
			if in.Dst != nil {
				if _, dup := defsIn[in.Dst]; !dup {
					defsIn[in.Dst] = in
				}
			}
			return true
		})
		f.Instrs(func(b *ir.Block, _ int, in *ir.Instr) bool {
			if in.Op != ir.OpLoad && in.Op != ir.OpStore {
				return true
			}
			ids := res.addrDS(ds, f.Name, in.Addr)
			if len(ids) == 0 {
				return true
			}
			res.InstrDS[in] = ids
			loop := info.InnermostLoop(b)
			cls, stride := classPlain, int64(0)
			if loop != nil {
				cls, stride = classifyAddr(f, loop, in.Addr, ivs, defsIn)
			}
			for _, id := range ids {
				v := res.votes[id]
				if v == nil {
					v = &patternVotes{strideSum: make(map[int64]int)}
					res.votes[id] = v
				}
				switch cls {
				case classStrided:
					v.strided++
					v.strideSum[stride]++
				case classChase:
					v.chase++
				case classIndirect:
					v.indirect++
				default:
					v.plain++
				}
			}
			return true
		})
	}
}

// addrDS resolves an address operand to DS IDs via the DSA result.
func (res *Result) addrDS(ds *dsa.Result, fn string, addr ir.Value) []int {
	return ds.DSForValue(fn, addr)
}

// propagateThroughCalls attributes callee accesses to call instructions,
// filtered per call site so that only the instances actually flowing
// through the call count (Listing 1: the k-loop call to Set counts for
// ds2 only).
func (res *Result) propagateThroughCalls(m *ir.Module, ds *dsa.Result) {
	// accessed[fn] = set of DS ids directly or transitively accessed.
	accessed := make(map[string]map[int]bool)
	for _, f := range m.Funcs {
		accessed[f.Name] = make(map[int]bool)
	}
	// Seed with direct accesses.
	for _, f := range m.Funcs {
		f.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) bool {
			for _, id := range res.InstrDS[in] {
				accessed[f.Name][id] = true
			}
			return true
		})
	}
	// Fixpoint over calls.
	changed := true
	for changed {
		changed = false
		for _, f := range m.Funcs {
			f.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) bool {
				if in.Op != ir.OpCall {
					return true
				}
				callee := m.FuncByName(in.Callee)
				if callee == nil {
					return true
				}
				visible := res.visibleAtCall(ds, f.Name, in)
				for id := range accessed[callee.Name] {
					d := ds.ByID(id)
					ok := visible[id] || (d != nil && d.Fn != "")
					if ok && !accessed[f.Name][id] {
						accessed[f.Name][id] = true
						changed = true
					}
					if ok {
						res.InstrDS[in] = appendUnique(res.InstrDS[in], id)
					}
				}
				return true
			})
		}
	}
	for _, ids := range res.InstrDS {
		sort.Ints(ids)
	}
	res.accessed = accessed
}

// visibleAtCall returns DS IDs that can flow through a specific call
// site: via pointer arguments, the returned pointer, or constant handle
// arguments added by pool allocation.
func (res *Result) visibleAtCall(ds *dsa.Result, fn string, call *ir.Instr) map[int]bool {
	out := make(map[int]bool)
	for _, a := range call.Args {
		for _, id := range ds.DSForValue(fn, a) {
			out[id] = true
		}
		// Pool-allocation handle constants name DS directly.
		if c, ok := a.(ir.IntConst); ok && c.V >= 0 && int(c.V) < len(ds.DS) {
			out[int(c.V)] = true
		}
	}
	if call.Dst != nil {
		for _, id := range ds.DSForValue(fn, call.Dst) {
			out[id] = true
		}
	}
	return out
}

// computeLoopDS fills LoopDS: for every loop, the DS touched inside it.
func (res *Result) computeLoopDS(m *ir.Module) {
	for _, f := range m.Funcs {
		info := res.CFGs[f.Name]
		for _, loop := range info.Loops() {
			set := make(map[int]bool)
			for b := range loop.Blocks {
				for _, in := range b.Instrs {
					for _, id := range res.InstrDS[in] {
						set[id] = true
					}
				}
			}
			ids := make([]int, 0, len(set))
			for id := range set {
				ids = append(ids, id)
			}
			sort.Ints(ids)
			res.LoopDS[loop.Header] = ids
		}
	}
}

// callLoopDepth computes, per function, the deepest interprocedural loop
// nesting any call path reaches it under: a helper invoked from inside a
// doubly nested loop effectively runs its own loops at depth+2. This is
// the static stand-in for execution frequency that eq. 1's loop count
// needs to rank Listing 1's ds2 above ds1.
func (res *Result) callLoopDepth(m *ir.Module) map[string]int {
	depth := make(map[string]int, len(m.Funcs))
	changed := true
	for iter := 0; changed && iter < len(m.Funcs)+2; iter++ {
		changed = false
		for _, f := range m.Funcs {
			info := res.CFGs[f.Name]
			f.Instrs(func(b *ir.Block, _ int, in *ir.Instr) bool {
				if in.Op != ir.OpCall {
					return true
				}
				d := depth[f.Name] + info.LoopDepth(b)
				if d > depth[in.Callee] {
					depth[in.Callee] = d
					changed = true
				}
				return true
			})
		}
	}
	return depth
}

// score computes UseScore (eq. 1), ReachScore, patterns and object-size
// hints for every data structure.
func (res *Result) score(m *ir.Module, ds *dsa.Result) {
	chain := ds.CallGraph().ChainDepth()
	res.Infos = make([]*DSInfo, len(ds.DS))
	callDepth := res.callLoopDepth(m)

	// Count loops per DS: a loop counts if its body touches the DS
	// (raw count), and with interprocedural nesting weight for the use
	// score (a loop inside a hot call chain outweighs a top-level scan).
	loopCount := make(map[int]int)
	loopWeight := make(map[int]int)
	for _, f := range m.Funcs {
		info := res.CFGs[f.Name]
		for _, loop := range info.Loops() {
			ids := res.LoopDS[loop.Header]
			for _, id := range ids {
				loopCount[id]++
				loopWeight[id] += loop.Depth + callDepth[f.Name]
			}
		}
	}
	// Count functions per DS (direct or transitive access).
	funcCount := make(map[int]int)
	funcNames := make(map[int][]string)
	for fn, set := range res.accessed {
		for id := range set {
			funcCount[id]++
			funcNames[id] = append(funcNames[id], fn)
		}
	}
	// Reach uses DIRECT loads/stores only: the Maximum Reach policy
	// pins "data structures used in the top k functions with long
	// caller/callee chains" — a function that merely calls into an
	// accessor does not itself use the structure, and counting
	// transitive access would give every structure main's chain depth.
	reach := make(map[int]int)
	for _, f := range m.Funcs {
		f.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) bool {
			if in.Op != ir.OpLoad && in.Op != ir.OpStore {
				return true
			}
			for _, id := range res.InstrDS[in] {
				if chain[f.Name] > reach[id] {
					reach[id] = chain[f.Name]
				}
			}
			return true
		})
	}

	for i, d := range ds.DS {
		info := &DSInfo{
			DS:         d,
			Loops:      loopCount[d.ID],
			Funcs:      funcCount[d.ID],
			UseScore:   loopWeight[d.ID] + funcCount[d.ID],
			ReachScore: reach[d.ID],
		}
		sort.Strings(funcNames[d.ID])
		info.AccessingFuncs = funcNames[d.ID]

		if v := res.votes[d.ID]; v != nil {
			switch {
			case v.chase > 0 && v.chase >= v.strided:
				info.Pattern = PatternPointerChase
			case v.indirect > v.strided:
				info.Pattern = PatternIndirect
			case v.strided > 0:
				info.Pattern = PatternStrided
				// Majority stride.
				best, bestN := int64(0), 0
				for s, n := range v.strideSum {
					if n > bestN {
						best, bestN = s, n
					}
				}
				info.Stride = best
			}
		}
		if d.Recursive {
			// Linked structures override to pointer-chase: their objects
			// are elements, not pages.
			if info.Pattern == PatternUnknown || info.Pattern == PatternStrided {
				info.Pattern = PatternPointerChase
			}
		}
		info.ObjSize = objSize(d, info.Pattern)
		res.Infos[i] = info
	}
}

func objSize(d *dsa.DataStructure, p Pattern) int {
	if p == PatternPointerChase || d.Recursive {
		sz := ChaseObjSize
		if d.Elem != nil && d.Elem.Size() > sz {
			sz = d.Elem.Size()
		}
		return sz
	}
	return DefaultArrayObjSize
}

func appendUnique(xs []int, v int) []int {
	for _, x := range xs {
		if x == v {
			return xs
		}
	}
	return append(xs, v)
}
