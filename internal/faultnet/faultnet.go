// Package faultnet injects deterministic, seeded transport faults into
// byte streams: added latency, read/write stalls, mid-frame disconnects,
// truncated writes, and byte corruption. It is the chaos layer the
// fault-tolerance stack is tested against — wrap a single connection
// with Wrap for unit tests, or stand a Proxy in front of a cardsd
// server to subject a whole session (including reconnects) to a seeded
// fault schedule.
//
// Determinism: every fault decision is drawn from a rand.Rand seeded by
// Config.Seed (the Proxy derives one stream per accepted connection
// from its seed and a connection counter). Cut points are byte-count
// based, so the same byte stream always breaks at the same offsets; the
// per-chunk corruption and stall draws depend on how the reader chunks
// the stream, which makes them statistically — not bit-for-bit —
// reproducible over real sockets.
package faultnet

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the root of every injected failure; test assertions
// use errors.Is against it to separate chaos from real bugs.
var ErrInjected = errors.New("faultnet: injected fault")

// ErrCut marks an injected mid-stream disconnect (the wrapped
// connection has been closed underneath the caller).
var ErrCut = fmt.Errorf("%w: connection cut", ErrInjected)

// Kind labels one injected fault for accounting hooks.
type Kind int

// Fault kinds reported to Config.OnFault.
const (
	KindCut Kind = iota
	KindCorrupt
	KindStall
	KindTruncate
)

func (k Kind) String() string {
	switch k {
	case KindCut:
		return "cut"
	case KindCorrupt:
		return "corrupt"
	case KindStall:
		return "stall"
	case KindTruncate:
		return "truncate"
	}
	return "fault(" + strconv.Itoa(int(k)) + ")"
}

// Config is a fault schedule. The zero value injects nothing.
type Config struct {
	// Seed seeds the fault schedule (0 behaves like 1).
	Seed int64

	// CutEveryBytes injects a disconnect roughly every N bytes through
	// the connection (both directions combined): the next cut point is
	// drawn uniformly from [N/2, 3N/2), so frames are severed at
	// arbitrary offsets, including mid-header. 0 never cuts.
	CutEveryBytes int

	// CorruptProb flips one random byte per Read chunk with this
	// probability — undetectable without frame checksums, which is
	// exactly what the rdma CRC feature exists to catch.
	CorruptProb float64

	// TruncateProb drops the tail of a Write with this probability and
	// cuts the connection — a torn frame on the peer.
	TruncateProb float64

	// Latency delays every Read by Latency plus a uniform draw from
	// [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration

	// StallProb freezes a Read for Stall with this probability —
	// long enough to trip round-trip deadlines when Stall exceeds them.
	StallProb float64
	Stall     time.Duration

	// Bandwidth caps throughput at this many bytes per second, each
	// direction paced independently by a serialization-delay token
	// bucket — a fixed-capacity link, where fewer bytes on the wire
	// translate directly into wall-clock time saved. 0 never throttles.
	Bandwidth int

	// OnFault, when non-nil, is called once per injected fault (from
	// the goroutine doing the I/O; must be cheap and concurrency-safe).
	OnFault func(Kind)
}

func (c Config) active() bool {
	return c.CutEveryBytes > 0 || c.CorruptProb > 0 || c.TruncateProb > 0 ||
		c.Latency > 0 || c.StallProb > 0 || c.Bandwidth > 0
}

// ParseSpec parses a comma-separated chaos spec, e.g.
//
//	"cut=65536,corrupt=0.01,latency=200us,jitter=1ms,stall=50ms,stallp=0.001,trunc=0.002,seed=7"
//
// Keys: cut (bytes between disconnects), corrupt / trunc / stallp
// (probabilities), latency / jitter / stall (durations), seed (int).
// An empty spec returns the zero Config.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return cfg, fmt.Errorf("faultnet: bad spec element %q (want key=value)", part)
		}
		key, val := kv[0], kv[1]
		var err error
		switch key {
		case "cut":
			cfg.CutEveryBytes, err = strconv.Atoi(val)
		case "corrupt":
			cfg.CorruptProb, err = parseProb(val)
		case "trunc":
			cfg.TruncateProb, err = parseProb(val)
		case "stallp":
			cfg.StallProb, err = parseProb(val)
		case "latency":
			cfg.Latency, err = time.ParseDuration(val)
		case "jitter":
			cfg.Jitter, err = time.ParseDuration(val)
		case "stall":
			cfg.Stall, err = time.ParseDuration(val)
		case "bw":
			cfg.Bandwidth, err = strconv.Atoi(val)
		case "seed":
			cfg.Seed, err = strconv.ParseInt(val, 10, 64)
		default:
			return cfg, fmt.Errorf("faultnet: unknown spec key %q", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("faultnet: spec %s=%s: %w", key, val, err)
		}
	}
	if cfg.StallProb > 0 && cfg.Stall == 0 {
		cfg.Stall = 50 * time.Millisecond
	}
	return cfg, nil
}

// parseProb parses a probability, rejecting non-finite values: a NaN
// fault probability compares unequal to itself and would poison every
// schedule decision made against it.
func parseProb(val string) (float64, error) {
	p, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(p) || math.IsInf(p, 0) {
		return 0, fmt.Errorf("non-finite probability %q", val)
	}
	return p, nil
}

// Conn wraps an io.ReadWriteCloser with the fault schedule. Reads and
// writes may run concurrently (the pipelined client's reader and
// flusher do); the schedule state is guarded by one mutex that is never
// held across inner I/O. Deadline calls pass through when the inner
// connection supports them, so round-trip timeouts keep working under
// chaos.
type Conn struct {
	inner io.ReadWriteCloser
	cfg   Config

	mu        sync.Mutex
	rng       *rand.Rand
	untilCut  int64 // bytes until the next injected cut; 0 = cutting disabled
	cutArmed  bool
	wasCut    atomic.Bool
	closeOnce sync.Once

	// Per-direction pacing state for the Bandwidth throttle: the virtual
	// time at which each direction's last byte finishes serializing.
	readReady  time.Time
	writeReady time.Time
}

// Wrap applies the fault schedule to inner. A zero Config passes
// everything through untouched (but still via the wrapper).
func Wrap(inner io.ReadWriteCloser, cfg Config) *Conn {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	c := &Conn{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	if cfg.CutEveryBytes > 0 {
		c.cutArmed = true
		c.untilCut = c.nextCutLocked()
	}
	return c
}

// nextCutLocked draws the distance to the next cut point.
func (c *Conn) nextCutLocked() int64 {
	n := int64(c.cfg.CutEveryBytes)
	return n/2 + c.rng.Int63n(n)
}

// WasCut reports whether this connection died to an injected cut (as
// opposed to a real close).
func (c *Conn) WasCut() bool { return c.wasCut.Load() }

func (c *Conn) fault(k Kind) {
	if c.cfg.OnFault != nil {
		c.cfg.OnFault(k)
	}
}

// cut severs the connection as an injected fault.
func (c *Conn) cut() error {
	if c.wasCut.CompareAndSwap(false, true) {
		c.fault(KindCut)
	}
	c.Close()
	return ErrCut
}

// consume charges n bytes against the cut budget; it returns the number
// of bytes allowed through before the connection must be severed, and
// whether the cut fires now.
func (c *Conn) consume(n int) (allowed int, cutNow bool) {
	if !c.cutArmed {
		return n, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if int64(n) < c.untilCut {
		c.untilCut -= int64(n)
		return n, false
	}
	allowed = int(c.untilCut)
	c.untilCut = c.nextCutLocked()
	return allowed, true
}

func (c *Conn) Read(p []byte) (int, error) {
	if c.wasCut.Load() {
		return 0, ErrCut
	}
	if d := c.readDelay(); d > 0 {
		time.Sleep(d)
	}
	n, err := c.inner.Read(p)
	if n > 0 {
		c.throttle(&c.readReady, n)
		c.maybeCorrupt(p[:n])
		allowed, cutNow := c.consume(n)
		if cutNow {
			// Sever mid-chunk: deliver only the bytes before the cut
			// point so partially-read frames are torn, then close.
			cerr := c.cut()
			if allowed > 0 {
				return allowed, nil // error surfaces on the next Read
			}
			return 0, cerr
		}
	}
	if err != nil && c.wasCut.Load() {
		err = ErrCut
	}
	return n, err
}

// readDelay draws this Read's injected latency (zero when none).
func (c *Conn) readDelay() time.Duration {
	if c.cfg.Latency == 0 && c.cfg.StallProb == 0 {
		return 0
	}
	c.mu.Lock()
	d := c.cfg.Latency
	if c.cfg.Jitter > 0 {
		d += time.Duration(c.rng.Int63n(int64(c.cfg.Jitter)))
	}
	stalled := c.cfg.StallProb > 0 && c.rng.Float64() < c.cfg.StallProb
	c.mu.Unlock()
	if stalled {
		c.fault(KindStall)
		d += c.cfg.Stall
	}
	return d
}

// bwGranule is the smallest serialization debt the throttle sleeps
// for: time.Sleep overshoots by tens of microseconds per call, so
// paying the debt one tiny chunk at a time would throttle far below
// the configured rate. Debt accumulates until it is worth one sleep,
// bounding bursts at a few granules.
const bwGranule = 2 * time.Millisecond

// throttle charges n bytes of serialization delay against one
// direction's pacing clock and sleeps once the accumulated debt
// crosses the granule.
func (c *Conn) throttle(ready *time.Time, n int) {
	if c.cfg.Bandwidth <= 0 || n <= 0 {
		return
	}
	d := time.Duration(int64(n) * int64(time.Second) / int64(c.cfg.Bandwidth))
	c.mu.Lock()
	now := time.Now()
	if ready.Before(now) {
		*ready = now
	}
	*ready = ready.Add(d)
	wait := ready.Sub(now)
	c.mu.Unlock()
	if wait >= bwGranule {
		time.Sleep(wait)
	}
}

// maybeCorrupt flips one byte of the chunk with CorruptProb.
func (c *Conn) maybeCorrupt(p []byte) {
	if c.cfg.CorruptProb == 0 || len(p) == 0 {
		return
	}
	c.mu.Lock()
	hit := c.rng.Float64() < c.cfg.CorruptProb
	var pos int
	var bit byte
	if hit {
		pos = c.rng.Intn(len(p))
		bit = 1 << c.rng.Intn(8)
	}
	c.mu.Unlock()
	if hit {
		p[pos] ^= bit
		c.fault(KindCorrupt)
	}
}

func (c *Conn) Write(p []byte) (int, error) {
	if c.wasCut.Load() {
		return 0, ErrCut
	}
	if c.cfg.TruncateProb > 0 {
		c.mu.Lock()
		trunc := c.rng.Float64() < c.cfg.TruncateProb
		c.mu.Unlock()
		if trunc && len(p) > 1 {
			c.fault(KindTruncate)
			n, _ := c.inner.Write(p[:len(p)/2])
			return n, c.cut()
		}
	}
	allowed, cutNow := c.consume(len(p))
	if cutNow {
		var n int
		if allowed > 0 {
			n, _ = c.inner.Write(p[:allowed])
		}
		return n, c.cut()
	}
	// Corrupt a private copy: the caller's buffer must never be mutated.
	if c.cfg.CorruptProb > 0 {
		c.mu.Lock()
		hit := c.rng.Float64() < c.cfg.CorruptProb
		var pos int
		var bit byte
		if hit && len(p) > 0 {
			pos = c.rng.Intn(len(p))
			bit = 1 << c.rng.Intn(8)
		}
		c.mu.Unlock()
		if hit && len(p) > 0 {
			cp := make([]byte, len(p))
			copy(cp, p)
			cp[pos] ^= bit
			c.fault(KindCorrupt)
			n, err := c.inner.Write(cp)
			if err != nil && c.wasCut.Load() {
				err = ErrCut
			}
			return n, err
		}
	}
	c.throttle(&c.writeReady, len(p))
	n, err := c.inner.Write(p)
	if err != nil && c.wasCut.Load() {
		err = ErrCut
	}
	return n, err
}

// Close closes the inner connection (idempotent).
func (c *Conn) Close() error {
	var err error
	c.closeOnce.Do(func() { err = c.inner.Close() })
	return err
}

// Deadline passthrough: the remote clients' round-trip timeouts use
// SetReadDeadline when the transport offers it, so the wrapper forwards
// the calls to a net.Conn underneath.

type deadliner interface {
	SetDeadline(time.Time) error
	SetReadDeadline(time.Time) error
	SetWriteDeadline(time.Time) error
}

// SetDeadline implements the net.Conn deadline surface when the inner
// connection does.
func (c *Conn) SetDeadline(t time.Time) error {
	if d, ok := c.inner.(deadliner); ok {
		return d.SetDeadline(t)
	}
	return errors.New("faultnet: inner connection has no deadlines")
}

// SetReadDeadline forwards to the inner connection.
func (c *Conn) SetReadDeadline(t time.Time) error {
	if d, ok := c.inner.(deadliner); ok {
		return d.SetReadDeadline(t)
	}
	return errors.New("faultnet: inner connection has no deadlines")
}

// SetWriteDeadline forwards to the inner connection.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	if d, ok := c.inner.(deadliner); ok {
		return d.SetWriteDeadline(t)
	}
	return errors.New("faultnet: inner connection has no deadlines")
}

// Proxy is a chaos TCP proxy: it accepts connections, dials the target
// for each, and pipes bytes through a fault-injecting wrapper. Clients
// that reconnect after an injected cut get a fresh backend connection
// with a fresh (seed-derived) fault stream, so a redial loop faces an
// endless supply of scheduled faults.
type Proxy struct {
	cfg    Config
	target string
	ln     net.Listener
	wg     sync.WaitGroup
	closed atomic.Bool

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	accepted atomic.Int64
	cuts     atomic.Int64
	corrupts atomic.Int64
	stalls   atomic.Int64
}

// NewProxy listens on listenAddr (e.g. "127.0.0.1:0") and forwards to
// target through the fault schedule.
func NewProxy(listenAddr, target string, cfg Config) (*Proxy, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("faultnet: proxy listen: %w", err)
	}
	p := &Proxy{cfg: cfg, target: target, ln: ln, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — the address chaos-tested
// clients dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Conns returns the number of connections accepted so far.
func (p *Proxy) Conns() int64 { return p.accepted.Load() }

// Cuts returns the number of injected disconnects.
func (p *Proxy) Cuts() int64 { return p.cuts.Load() }

// Corruptions returns the number of injected byte corruptions.
func (p *Proxy) Corruptions() int64 { return p.corrupts.Load() }

// Stalls returns the number of injected read stalls.
func (p *Proxy) Stalls() int64 { return p.stalls.Load() }

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		idx := p.accepted.Add(1)
		p.wg.Add(1)
		go p.serve(conn, idx)
	}
}

func (p *Proxy) track(c net.Conn) func() {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
	return func() {
		p.mu.Lock()
		delete(p.conns, c)
		p.mu.Unlock()
	}
}

func (p *Proxy) serve(client net.Conn, idx int64) {
	defer p.wg.Done()
	defer client.Close()
	backend, err := net.Dial("tcp", p.target)
	if err != nil {
		return
	}
	defer backend.Close()
	untrackC := p.track(client)
	defer untrackC()
	untrackB := p.track(backend)
	defer untrackB()

	// Each proxied connection gets its own deterministic fault stream:
	// the base seed shifted by the connection index.
	cfg := p.cfg
	cfg.Seed = p.cfg.Seed + idx*0x9E3779B9
	cfg.OnFault = func(k Kind) {
		switch k {
		case KindCut, KindTruncate:
			p.cuts.Add(1)
		case KindCorrupt:
			p.corrupts.Add(1)
		case KindStall:
			p.stalls.Add(1)
		}
		if p.cfg.OnFault != nil {
			p.cfg.OnFault(k)
		}
	}
	chaos := Wrap(client, cfg)

	// Bidirectional pipe; either direction dying (injected or real)
	// tears down both so the peer sees a clean disconnect.
	done := make(chan struct{}, 2)
	go func() {
		io.Copy(backend, chaos) // client -> backend (through chaos reads)
		backend.Close()
		chaos.Close()
		done <- struct{}{}
	}()
	io.Copy(chaos, backend) // backend -> client (through chaos writes)
	chaos.Close()
	backend.Close()
	<-done
}

// Close stops the proxy and severs every live proxied connection.
func (p *Proxy) Close() error {
	if !p.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := p.ln.Close()
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}
