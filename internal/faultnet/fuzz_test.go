package faultnet

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// FuzzParseSpec feeds arbitrary strings to the chaos-spec parser and
// checks that it never panics, is deterministic (same input, same
// Config and same error), and that accepted specs satisfy the
// documented defaulting rule (stallp without stall implies the 50ms
// default).
func FuzzParseSpec(f *testing.F) {
	f.Add("")
	f.Add("   ")
	f.Add("cut=65536")
	f.Add("cut=65536,corrupt=0.01,latency=200us,jitter=1ms,stall=50ms,stallp=0.001,trunc=0.002,seed=7")
	f.Add("latency=1ms,jitter=500us")
	f.Add("stallp=0.5")
	f.Add("seed=-1")
	f.Add("cut=")
	f.Add("cut")
	f.Add("=1")
	f.Add("unknown=1")
	f.Add("cut=abc")
	f.Add("latency=7")           // duration without unit
	f.Add("corrupt=1e308,cut=1") // extreme float
	f.Add("cut=1,,cut=2")
	f.Add("cut=1,cut=2")               // later key wins
	f.Add("seed=99999999999999999999") // int64 overflow
	f.Add("latency=-5ms")
	f.Add(strings.Repeat("cut=1,", 100) + "cut=2")

	f.Fuzz(func(t *testing.T, spec string) {
		cfg1, err1 := ParseSpec(spec)
		cfg2, err2 := ParseSpec(spec)
		// DeepEqual rather than ==: Config carries the OnFault func field
		// (nil on both sides here — ParseSpec never sets it).
		if !reflect.DeepEqual(cfg1, cfg2) {
			t.Fatalf("non-deterministic parse: %+v != %+v", cfg1, cfg2)
		}
		if (err1 == nil) != (err2 == nil) ||
			(err1 != nil && err1.Error() != err2.Error()) {
			t.Fatalf("non-deterministic error: %v != %v", err1, err2)
		}
		if err1 != nil {
			if err1.Error() == "" {
				t.Fatalf("empty error message for spec %q", spec)
			}
			return
		}
		if cfg1.StallProb > 0 && cfg1.Stall == 0 {
			t.Fatalf("stallp=%v accepted without stall default: %+v", cfg1.StallProb, cfg1)
		}
		// An accepted spec must stay accepted when fed back with the same
		// key set (stability under re-parse of its own canonical form).
		var parts []string
		if cfg1.CutEveryBytes != 0 {
			parts = append(parts, fmt.Sprintf("cut=%d", cfg1.CutEveryBytes))
		}
		if cfg1.Seed != 0 {
			parts = append(parts, fmt.Sprintf("seed=%d", cfg1.Seed))
		}
		if cfg1.Latency != 0 {
			parts = append(parts, fmt.Sprintf("latency=%s", cfg1.Latency))
		}
		if cfg1.Jitter != 0 {
			parts = append(parts, fmt.Sprintf("jitter=%s", cfg1.Jitter))
		}
		if cfg1.Stall != 0 {
			parts = append(parts, fmt.Sprintf("stall=%s", cfg1.Stall))
		}
		canon := strings.Join(parts, ",")
		if _, err := ParseSpec(canon); err != nil {
			t.Fatalf("canonical re-render %q of accepted spec %q rejected: %v", canon, spec, err)
		}
	})
}
