package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"cards/internal/testutil"
)

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("cut=4096,corrupt=0.01,latency=1ms,jitter=2ms,stall=50ms,stallp=0.5,trunc=0.25,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.CutEveryBytes != 4096 || cfg.CorruptProb != 0.01 || cfg.Seed != 7 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.Latency != time.Millisecond || cfg.Jitter != 2*time.Millisecond ||
		cfg.Stall != 50*time.Millisecond || cfg.StallProb != 0.5 || cfg.TruncateProb != 0.25 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if c, err := ParseSpec("  "); err != nil || c.active() {
		t.Fatalf("empty spec: %+v, %v", c, err)
	}
	if c, err := ParseSpec("stallp=0.1"); err != nil || c.Stall == 0 {
		t.Fatalf("stallp without stall should default the stall duration: %+v, %v", c, err)
	}
	for _, bad := range []string{"cut", "nope=1", "cut=abc", "latency=xyz"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q should fail", bad)
		}
	}
}

// pipePair returns the two ends of an in-memory conn for wrapper tests.
func pipePair() (net.Conn, net.Conn) { return net.Pipe() }

func TestCutSeversStreamDeterministically(t *testing.T) {
	cutAt := func(seed int64) int {
		a, b := pipePair()
		defer b.Close()
		w := Wrap(a, Config{Seed: seed, CutEveryBytes: 1024})
		go io.Copy(io.Discard, b)
		total := 0
		buf := make([]byte, 100)
		for {
			n, err := w.Write(buf)
			total += n
			if err != nil {
				if !errors.Is(err, ErrInjected) || !errors.Is(err, ErrCut) {
					t.Fatalf("cut error = %v", err)
				}
				break
			}
			if total > 10*1024 {
				t.Fatal("never cut")
			}
		}
		if !w.WasCut() {
			t.Fatal("WasCut = false after injected cut")
		}
		// The connection stays dead.
		if _, err := w.Write(buf); !errors.Is(err, ErrCut) {
			t.Fatalf("post-cut write = %v", err)
		}
		return total
	}
	a, b := cutAt(42), cutAt(42)
	if a != b {
		t.Fatalf("same seed cut at different offsets: %d vs %d", a, b)
	}
	if c := cutAt(43); c == a {
		t.Logf("different seeds cut at same offset %d (possible but unlikely)", c)
	}
	// Cut offsets land within the scheduled band [N/2, 3N/2).
	if a < 512 || a >= 1536+100 {
		t.Fatalf("cut offset %d outside scheduled band", a)
	}
}

func TestCorruptionFlipsBytes(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	w := Wrap(a, Config{Seed: 3, CorruptProb: 1.0}) // corrupt every chunk
	payload := bytes.Repeat([]byte{0x55}, 256)
	go b.Write(payload)
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(w, got); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		if got[i] != payload[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("CorruptProb=1 corrupted nothing")
	}
}

func TestTruncateTearsWrite(t *testing.T) {
	a, b := pipePair()
	defer b.Close()
	var kinds []Kind
	w := Wrap(a, Config{Seed: 5, TruncateProb: 1.0, OnFault: func(k Kind) { kinds = append(kinds, k) }})
	recv := make(chan int, 1)
	go func() {
		n, _ := io.Copy(io.Discard, b)
		recv <- int(n)
	}()
	n, err := w.Write(make([]byte, 64))
	if err == nil || n >= 64 {
		t.Fatalf("truncated write returned n=%d err=%v", n, err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if got := <-recv; got >= 64 {
		t.Fatalf("peer received %d bytes, want a torn frame", got)
	}
	if len(kinds) == 0 || kinds[0] != KindTruncate {
		t.Fatalf("fault kinds = %v", kinds)
	}
	if KindCut.String() != "cut" || KindCorrupt.String() != "corrupt" ||
		KindStall.String() != "stall" || KindTruncate.String() != "truncate" {
		t.Fatal("kind names wrong")
	}
}

func TestLatencyDelaysReads(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	w := Wrap(a, Config{Seed: 1, Latency: 30 * time.Millisecond})
	go b.Write([]byte{1})
	start := time.Now()
	if _, err := w.Read(make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("read returned after %v, want >=30ms injected latency", d)
	}
}

func TestProxyPipesAndCuts(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	// Echo server as backend.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(c, c); c.Close() }()
		}
	}()

	p, err := NewProxy("127.0.0.1:0", ln.Addr().String(), Config{Seed: 11, CutEveryBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Drive traffic through reconnecting sessions until >= 3 cuts.
	buf := make([]byte, 128)
	echo := make([]byte, 128)
	deadline := time.Now().Add(10 * time.Second)
	for p.Cuts() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d cuts injected", p.Cuts())
		}
		conn, err := net.Dial("tcp", p.Addr())
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, err := conn.Write(buf); err != nil {
				break
			}
			conn.SetReadDeadline(time.Now().Add(2 * time.Second))
			if _, err := io.ReadFull(conn, echo); err != nil {
				break
			}
		}
		conn.Close()
	}
	if p.Conns() < 1 {
		t.Fatal("no connections accepted")
	}
}

func TestDeadlinePassthrough(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	a, b := pipePair()
	defer b.Close()
	w := Wrap(a, Config{})
	if err := w.SetReadDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	_, err := w.Read(make([]byte, 1))
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("read past deadline = %v, want timeout", err)
	}
	if err := w.SetDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := w.SetWriteDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	// A non-net inner conn reports no deadline support.
	nd := Wrap(nopRWC{}, Config{})
	if err := nd.SetReadDeadline(time.Now()); err == nil {
		t.Fatal("deadline on deadline-less inner conn should error")
	}
}

type nopRWC struct{}

func (nopRWC) Read(p []byte) (int, error)  { return 0, io.EOF }
func (nopRWC) Write(p []byte) (int, error) { return len(p), nil }
func (nopRWC) Close() error                { return nil }
