// Package opt implements the classical scalar optimizations the CaRDS
// pipeline runs before its analyses (the real system inherits these from
// LLVM's -O pipeline; NOELLE runs on normalized, optimized IR):
//
//   - constant propagation: a register whose only definition is a
//     constant is replaced by the literal at every use;
//   - constant folding: binary operations over two literals evaluate at
//     compile time;
//   - branch folding: conditional branches on constants become jumps;
//   - dead code elimination: pure instructions whose results are never
//     read, and blocks that become unreachable, are removed.
//
// Everything runs to a combined fixpoint. The passes are semantics
// preserving by construction (the differential tests in internal/core
// check optimized against unoptimized checksums on random programs).
package opt

import (
	"math"

	"cards/internal/ir"
)

// Stats reports what Simplify did.
type Stats struct {
	ConstPropagated int
	ConstFolded     int
	BranchesFolded  int
	InstrsRemoved   int
	BlocksRemoved   int
}

// Simplify optimizes every function of m in place and re-verifies it.
func Simplify(m *ir.Module) Stats {
	var st Stats
	for _, f := range m.Funcs {
		changed := true
		for changed {
			changed = false
			if n := propagateConstants(f); n > 0 {
				st.ConstPropagated += n
				changed = true
			}
			if n := foldConstants(f); n > 0 {
				st.ConstFolded += n
				changed = true
			}
			if n := foldBranches(f); n > 0 {
				st.BranchesFolded += n
				changed = true
			}
			if n := removeDeadInstrs(f); n > 0 {
				st.InstrsRemoved += n
				changed = true
			}
			if n := removeUnreachable(f); n > 0 {
				st.BlocksRemoved += n
				changed = true
			}
		}
	}
	ir.MustVerify(m)
	return st
}

// singleDefConsts finds registers with exactly one definition, where that
// definition is a constant (and the register is not a parameter).
func singleDefConsts(f *ir.Function) map[*ir.Reg]ir.Value {
	defs := make(map[*ir.Reg]int)
	konst := make(map[*ir.Reg]ir.Value)
	f.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) bool {
		if in.Dst == nil {
			return true
		}
		defs[in.Dst]++
		if in.Op == ir.OpConst {
			if in.IsFloat {
				konst[in.Dst] = ir.CF(in.FloatVal)
			} else {
				konst[in.Dst] = ir.CI(in.IntVal)
			}
		}
		return true
	})
	out := make(map[*ir.Reg]ir.Value)
	for r, v := range konst {
		if defs[r] == 1 && !r.Param {
			out[r] = v
		}
	}
	return out
}

// propagateConstants substitutes literal operands for single-def constant
// registers.
func propagateConstants(f *ir.Function) int {
	consts := singleDefConsts(f)
	if len(consts) == 0 {
		return 0
	}
	n := 0
	sub := func(v ir.Value) ir.Value {
		if r, ok := v.(*ir.Reg); ok {
			if c, isConst := consts[r]; isConst {
				n++
				return c
			}
		}
		return v
	}
	f.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) bool {
		if in.X != nil {
			in.X = sub(in.X)
		}
		if in.Y != nil {
			in.Y = sub(in.Y)
		}
		if in.Src != nil {
			in.Src = sub(in.Src)
		}
		if in.Count != nil {
			in.Count = sub(in.Count)
		}
		if in.Addr != nil {
			in.Addr = sub(in.Addr)
		}
		if in.Base != nil {
			in.Base = sub(in.Base)
		}
		if in.Index != nil {
			in.Index = sub(in.Index)
		}
		if in.Cond != nil {
			in.Cond = sub(in.Cond)
		}
		if in.DSHandle != nil {
			in.DSHandle = sub(in.DSHandle)
		}
		for i := range in.Args {
			in.Args[i] = sub(in.Args[i])
		}
		return true
	})
	return n
}

// foldConstants turns bin(lit, lit) into a constant definition, and
// copy(lit) into a constant definition.
func foldConstants(f *ir.Function) int {
	n := 0
	f.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) bool {
		switch in.Op {
		case ir.OpBin:
			v, ok := evalConst(in.Kind, in.X, in.Y)
			if !ok {
				return true
			}
			n++
			in.Op = ir.OpConst
			if fc, isF := v.(ir.FloatConst); isF {
				in.IsFloat = true
				in.FloatVal = fc.V
			} else {
				in.IsFloat = false
				in.IntVal = v.(ir.IntConst).V
			}
			in.X, in.Y = nil, nil
		case ir.OpCopy:
			switch c := in.Src.(type) {
			case ir.IntConst:
				// Only safe to rewrite into a const DEF if this is the
				// register's sole definition; otherwise the copy writes
				// a mutable register and must stay. Either way the copy
				// itself is already minimal — skip.
				_ = c
			}
		}
		return true
	})
	return n
}

// evalConst evaluates a binary operator over literal operands.
func evalConst(kind ir.BinKind, x, y ir.Value) (ir.Value, bool) {
	xi, xIsInt := x.(ir.IntConst)
	yi, yIsInt := y.(ir.IntConst)
	if xIsInt && yIsInt {
		a, b := xi.V, yi.V
		bit := func(cond bool) (ir.Value, bool) {
			if cond {
				return ir.CI(1), true
			}
			return ir.CI(0), true
		}
		switch kind {
		case ir.Add:
			return ir.CI(a + b), true
		case ir.Sub:
			return ir.CI(a - b), true
		case ir.Mul:
			return ir.CI(a * b), true
		case ir.Div:
			if b == 0 {
				return nil, false // preserve the runtime trap
			}
			return ir.CI(a / b), true
		case ir.Rem:
			if b == 0 {
				return nil, false
			}
			return ir.CI(a % b), true
		case ir.And:
			return ir.CI(a & b), true
		case ir.Or:
			return ir.CI(a | b), true
		case ir.Xor:
			return ir.CI(a ^ b), true
		case ir.Shl:
			return ir.CI(int64(uint64(a) << (uint64(b) & 63))), true
		case ir.Shr:
			return ir.CI(int64(uint64(a) >> (uint64(b) & 63))), true
		case ir.EQ:
			return bit(a == b)
		case ir.NE:
			return bit(a != b)
		case ir.LT:
			return bit(a < b)
		case ir.LE:
			return bit(a <= b)
		case ir.GT:
			return bit(a > b)
		case ir.GE:
			return bit(a >= b)
		case ir.IToF:
			return ir.CF(float64(a)), true
		}
		return nil, false
	}
	xf, xIsF := x.(ir.FloatConst)
	yf, yIsF := y.(ir.FloatConst)
	if xIsF && yIsF {
		a, b := xf.V, yf.V
		switch kind {
		case ir.FAdd:
			return ir.CF(a + b), true
		case ir.FSub:
			return ir.CF(a - b), true
		case ir.FMul:
			return ir.CF(a * b), true
		case ir.FDiv:
			return ir.CF(a / b), true
		case ir.FLT:
			if a < b {
				return ir.CI(1), true
			}
			return ir.CI(0), true
		}
	}
	_ = math.Float64bits
	return nil, false
}

// foldBranches rewrites br(const, a, b) into jmp, and br(c, a, a) into
// jmp a.
func foldBranches(f *ir.Function) int {
	n := 0
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil || t.Op != ir.OpBr {
			continue
		}
		if t.Then == t.Else {
			t.Op = ir.OpJmp
			t.Target = t.Then
			t.Cond, t.Then, t.Else = nil, nil, nil
			n++
			continue
		}
		if c, ok := t.Cond.(ir.IntConst); ok {
			target := t.Else
			if c.V != 0 {
				target = t.Then
			}
			t.Op = ir.OpJmp
			t.Target = target
			t.Cond, t.Then, t.Else = nil, nil, nil
			n++
		}
	}
	return n
}

// pure reports whether an instruction has no side effects beyond its
// destination register.
func pure(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpConst, ir.OpBin, ir.OpCopy, ir.OpGEP:
		return true
	}
	return false
}

// removeDeadInstrs deletes pure instructions whose destination is never
// read anywhere in the function.
func removeDeadInstrs(f *ir.Function) int {
	used := make(map[*ir.Reg]bool)
	f.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) bool {
		for _, op := range in.Operands() {
			if r, ok := op.(*ir.Reg); ok {
				used[r] = true
			}
		}
		return true
	})
	n := 0
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if pure(in) && in.Dst != nil && !used[in.Dst] {
				n++
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	return n
}

// removeUnreachable drops blocks not reachable from the entry.
func removeUnreachable(f *ir.Function) int {
	if len(f.Blocks) == 0 {
		return 0
	}
	reach := make(map[*ir.Block]bool)
	stack := []*ir.Block{f.Entry()}
	reach[f.Entry()] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs() {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	if len(reach) == len(f.Blocks) {
		return 0
	}
	kept := f.Blocks[:0]
	n := 0
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		} else {
			n++
		}
	}
	f.Blocks = kept
	return n
}
