package opt

import (
	"testing"

	"cards/internal/ir"
)

func countInstrs(m *ir.Module) int {
	n := 0
	for _, f := range m.Funcs {
		f.Instrs(func(_ *ir.Block, _ int, _ *ir.Instr) bool {
			n++
			return true
		})
	}
	return n
}

func TestConstantFoldingChain(t *testing.T) {
	m := ir.NewModule("fold")
	f := m.NewFunc("main", ir.I64())
	b := ir.NewBuilder(f)
	// (2+3)*4 - 6 = 14, all foldable.
	two := b.ConstI(2)
	three := b.ConstI(3)
	sum := b.Add(two, three)
	four := b.ConstI(4)
	prod := b.Mul(sum, four)
	six := b.ConstI(6)
	b.Ret(b.Sub(prod, six))
	m.AssignSites()
	ir.MustVerify(m)

	st := Simplify(m)
	if st.ConstFolded < 3 {
		t.Errorf("ConstFolded = %d, want >= 3", st.ConstFolded)
	}
	if st.InstrsRemoved == 0 {
		t.Error("dead constant definitions should be removed")
	}
	// The function should collapse to a handful of instructions.
	if got := countInstrs(m); got > 3 {
		t.Errorf("after Simplify: %d instructions\n%s", got, m)
	}
	// Semantics preserved: the ret operand must be the literal 14.
	ret := f.Blocks[len(f.Blocks)-1].Term()
	found := false
	f.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) bool {
		if in.Op == ir.OpRet {
			if r, ok := in.Src.(*ir.Reg); ok {
				f.Instrs(func(_ *ir.Block, _ int, def *ir.Instr) bool {
					if def.Dst == r && def.Op == ir.OpConst && def.IntVal == 14 {
						found = true
					}
					return true
				})
			} else if c, ok := in.Src.(ir.IntConst); ok && c.V == 14 {
				found = true
			}
		}
		return true
	})
	if !found {
		t.Errorf("result is not 14:\n%s", m)
	}
	_ = ret
}

func TestBranchFoldingRemovesDeadPath(t *testing.T) {
	m := ir.NewModule("br")
	f := m.NewFunc("main", ir.I64())
	b := ir.NewBuilder(f)
	thenB := b.NewBlock("then")
	elseB := b.NewBlock("else")
	cond := b.ConstI(1)
	b.Br(cond, thenB, elseB)
	b.SetBlock(thenB)
	b.Ret(ir.CI(10))
	b.SetBlock(elseB)
	b.Ret(ir.CI(20))
	m.AssignSites()
	ir.MustVerify(m)

	st := Simplify(m)
	if st.BranchesFolded != 1 {
		t.Errorf("BranchesFolded = %d, want 1", st.BranchesFolded)
	}
	if st.BlocksRemoved != 1 {
		t.Errorf("BlocksRemoved = %d, want 1 (the else path)", st.BlocksRemoved)
	}
	for _, blk := range f.Blocks {
		if blk.Name == "else" {
			t.Error("dead else block survived")
		}
	}
}

func TestSameTargetBranchFolds(t *testing.T) {
	m := ir.NewModule("same")
	f := m.NewFunc("main", ir.Void(), ir.P("c", ir.I64()))
	b := ir.NewBuilder(f)
	out := b.NewBlock("out")
	b.Br(f.Params[0], out, out)
	b.SetBlock(out)
	b.Ret(nil)
	m.AssignSites()
	ir.MustVerify(m)
	st := Simplify(m)
	if st.BranchesFolded != 1 {
		t.Errorf("BranchesFolded = %d, want 1", st.BranchesFolded)
	}
}

func TestDivByZeroNotFolded(t *testing.T) {
	m := ir.NewModule("trap")
	f := m.NewFunc("main", ir.I64())
	b := ir.NewBuilder(f)
	b.Ret(b.Div(ir.CI(1), ir.CI(0)))
	m.AssignSites()
	ir.MustVerify(m)
	st := Simplify(m)
	if st.ConstFolded != 0 {
		t.Error("division by zero must not fold (it traps at runtime)")
	}
	// The div instruction survives.
	div := 0
	f.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) bool {
		if in.Op == ir.OpBin && in.Kind == ir.Div {
			div++
		}
		return true
	})
	if div != 1 {
		t.Errorf("div instructions = %d, want 1", div)
	}
}

func TestImpureInstructionsSurvive(t *testing.T) {
	m := ir.NewModule("impure")
	callee := m.NewFunc("sideeffect", ir.Void())
	ir.NewBuilder(callee).Ret(nil)
	f := m.NewFunc("main", ir.Void())
	b := ir.NewBuilder(f)
	arr := b.Alloc(ir.I64(), ir.CI(4)) // result unused but impure
	b.Store(ir.I64(), ir.CI(1), b.Idx(arr, ir.CI(0)))
	b.Call(callee)                         // void call, impure
	b.Load(ir.I64(), b.Idx(arr, ir.CI(0))) // unused load: loads are impure here (may guard)
	b.Ret(nil)
	m.AssignSites()
	ir.MustVerify(m)
	Simplify(m)
	var allocs, stores, calls, loads int
	f.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) bool {
		switch in.Op {
		case ir.OpAlloc:
			allocs++
		case ir.OpStore:
			stores++
		case ir.OpCall:
			calls++
		case ir.OpLoad:
			loads++
		}
		return true
	})
	if allocs != 1 || stores != 1 || calls != 1 || loads != 1 {
		t.Errorf("impure instructions removed: alloc=%d store=%d call=%d load=%d",
			allocs, stores, calls, loads)
	}
}

func TestListing1SemanticsPreserved(t *testing.T) {
	m := ir.BuildListing1(64, 2)
	before := countInstrs(m)
	Simplify(m)
	after := countInstrs(m)
	if after > before {
		t.Errorf("Simplify grew the program: %d -> %d", before, after)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("post-opt verify: %v", err)
	}
}
