package workloads

import (
	"fmt"

	"cards/internal/ir"
)

// ChaseConfig scales the Figure 9 micro-suite.
type ChaseConfig struct {
	// N is the element count per structure (the paper's 7 GB working
	// set corresponds to ~100M elements; tests use 1<<10).
	N int64
	// Seed varies the generated values.
	Seed int64
}

// DefaultChase returns the configuration used by tests.
func DefaultChase() ChaseConfig { return ChaseConfig{N: 1 << 10, Seed: 9} }

// ChaseKinds lists the data structures of the Figure 9 sum benchmark
// (c[i] = a[i] + b[i] over each container type), from induction-friendly
// to pointer-chasing. The tree is an extension beyond the paper's suite.
var ChaseKinds = []string{"array", "vector", "deque", "list", "map", "tree"}

// BuildChase constructs the c[i] = a[i] + b[i] microbenchmark over the
// given container kind (paper §5.2 / Figure 9). Arrays have easily
// discernible induction variables and run well even under TrackFM;
// vectors hide the data behind a header indirection; lists, maps and
// trees chase pointers, which only CaRDS's per-structure prefetchers
// (jump pointer, greedy recursive) can cover.
func BuildChase(kind string, cfg ChaseConfig) (*Workload, error) {
	if cfg.N <= 0 {
		cfg = DefaultChase()
	}
	var m *ir.Module
	var ws uint64
	var wantDS int
	switch kind {
	case "array":
		m, ws, wantDS = buildChaseArray(cfg)
	case "vector":
		m, ws, wantDS = buildChaseVector(cfg)
	case "deque":
		m, ws, wantDS = buildChaseDeque(cfg)
	case "list":
		m, ws, wantDS = buildChaseList(cfg)
	case "map":
		m, ws, wantDS = buildChaseMap(cfg)
	case "tree":
		m, ws, wantDS = buildChaseTree(cfg)
	default:
		return nil, fmt.Errorf("workloads: unknown chase kind %q", kind)
	}
	m.AssignSites()
	ir.MustVerify(m)
	return &Workload{
		Name:            "sum_" + kind,
		Module:          m,
		WorkingSetBytes: ws,
		WantDS:          wantDS,
	}, nil
}

// buildChaseArray: three flat arrays, the TrackFM-friendly case.
func buildChaseArray(cfg ChaseConfig) (*ir.Module, uint64, int) {
	n := cfg.N
	m := ir.NewModule("sum_array")
	i64 := ir.I64()
	f := m.NewFunc("main", i64)
	b := ir.NewBuilder(f)
	a := b.Alloc(i64, ir.CI(n))
	bb := b.Alloc(i64, ir.CI(n))
	c := b.Alloc(i64, ir.CI(n))
	fill := b.CountedLoop("fill", ir.CI(0), ir.CI(n), ir.CI(1))
	b.Store(i64, b.Add(fill.IV, ir.CI(cfg.Seed)), b.Idx(a, fill.IV))
	b.Store(i64, b.Mul(fill.IV, ir.CI(3)), b.Idx(bb, fill.IV))
	b.CloseLoop(fill)
	sum := b.CountedLoop("sum", ir.CI(0), ir.CI(n), ir.CI(1))
	va := b.Load(i64, b.Idx(a, sum.IV))
	vb := b.Load(i64, b.Idx(bb, sum.IV))
	b.Store(i64, b.Add(va, vb), b.Idx(c, sum.IV))
	b.CloseLoop(sum)
	check := f.NewReg("check", i64)
	b.Assign(check, ir.CI(0))
	ck := b.CountedLoop("ck", ir.CI(0), ir.CI(n), ir.CI(1))
	mix(b, check, b.Load(i64, b.Idx(c, ck.IV)))
	b.CloseLoop(ck)
	b.Ret(check)
	return m, uint64(3 * n * 8), 3
}

// buildChaseVector: growable vectors with a {data, size, cap} header,
// doubling on push (the C++ std::vector pattern).
func buildChaseVector(cfg ChaseConfig) (*ir.Module, uint64, int) {
	n := cfg.N
	m := ir.NewModule("sum_vector")
	i64 := ir.I64()
	ptrT := ir.Ptr(i64)

	// vec_new(cap) -> header {data, size, cap}.
	vecNew := m.NewFunc("vec_new", ptrT, ir.P("cap", i64))
	{
		b := ir.NewBuilder(vecNew)
		hdr := b.Alloc(i64, ir.CI(3))
		data := b.Alloc(i64, vecNew.Params[0])
		b.Store(ptrT, data, b.Idx(hdr, ir.CI(0)))
		b.Store(i64, ir.CI(0), b.Idx(hdr, ir.CI(1)))
		b.Store(i64, vecNew.Params[0], b.Idx(hdr, ir.CI(2)))
		b.Ret(hdr)
	}

	// vec_push(hdr, v): doubles when full.
	vecPush := m.NewFunc("vec_push", ir.Void(), ir.P("hdr", ptrT), ir.P("v", i64))
	{
		b := ir.NewBuilder(vecPush)
		hdr := vecPush.Params[0]
		size := b.Load(i64, b.Idx(hdr, ir.CI(1)))
		capV := b.Load(i64, b.Idx(hdr, ir.CI(2)))
		grow := b.NewBlock("grow")
		store := b.NewBlock("store")
		b.Br(b.EQ(size, capV), grow, store)
		b.SetBlock(grow)
		newCap := b.Mul(capV, ir.CI(2))
		nd := b.Alloc(i64, newCap)
		old := b.Load(ptrT, b.Idx(hdr, ir.CI(0)))
		cp := b.CountedLoop("cp", ir.CI(0), size, ir.CI(1))
		b.Store(i64, b.Load(i64, b.Idx(old, cp.IV)), b.Idx(nd, cp.IV))
		b.CloseLoop(cp)
		b.Store(ptrT, nd, b.Idx(hdr, ir.CI(0)))
		b.Store(i64, newCap, b.Idx(hdr, ir.CI(2)))
		b.Jmp(store)
		b.SetBlock(store)
		data := b.Load(ptrT, b.Idx(hdr, ir.CI(0)))
		b.Store(i64, vecPush.Params[1], b.Idx(data, size))
		b.Store(i64, b.Add(size, ir.CI(1)), b.Idx(hdr, ir.CI(1)))
		b.Ret(nil)
	}

	// vec_get(hdr, i).
	vecGet := m.NewFunc("vec_get", i64, ir.P("hdr", ptrT), ir.P("i", i64))
	{
		b := ir.NewBuilder(vecGet)
		data := b.Load(ptrT, b.Idx(vecGet.Params[0], ir.CI(0)))
		b.Ret(b.Load(i64, b.Idx(data, vecGet.Params[1])))
	}

	f := m.NewFunc("main", i64)
	b := ir.NewBuilder(f)
	va := b.Call(vecNew, ir.CI(8))
	vb := b.Call(vecNew, ir.CI(8))
	vc := b.Call(vecNew, ir.CI(8))
	fill := b.CountedLoop("fill", ir.CI(0), ir.CI(n), ir.CI(1))
	b.Call(vecPush, va, b.Add(fill.IV, ir.CI(cfg.Seed)))
	b.Call(vecPush, vb, b.Mul(fill.IV, ir.CI(3)))
	b.CloseLoop(fill)
	sum := b.CountedLoop("sum", ir.CI(0), ir.CI(n), ir.CI(1))
	x := b.Call(vecGet, va, sum.IV)
	y := b.Call(vecGet, vb, sum.IV)
	b.Call(vecPush, vc, b.Add(x, y))
	b.CloseLoop(sum)
	check := f.NewReg("check", i64)
	b.Assign(check, ir.CI(0))
	ck := b.CountedLoop("ck", ir.CI(0), ir.CI(n), ir.CI(1))
	mix(b, check, b.Call(vecGet, vc, ck.IV))
	b.CloseLoop(ck)
	b.Ret(check)
	// Headers + grown data arrays (~2n each due to doubling garbage).
	return m, uint64(3 * (2*n + 3) * 8), 6
}

// buildChaseDeque: chunked double-ended queues (the std::deque layout —
// a map of pointers to fixed-size chunks). Every element access loads a
// chunk pointer from the map and then indexes into the chunk: one level
// of indirection that defeats induction-variable-only prefetching, while
// the chunks themselves are allocated in push order.
func buildChaseDeque(cfg ChaseConfig) (*ir.Module, uint64, int) {
	const chunkElems = 512 // 4 KiB chunks
	// Round n up to whole chunks to keep the map dense.
	n := (cfg.N + chunkElems - 1) / chunkElems * chunkElems
	nChunks := n / chunkElems
	m := ir.NewModule("sum_deque")
	i64 := ir.I64()
	chunkT := ir.Ptr(i64)
	mapT := ir.Ptr(chunkT)

	// dq_new(nChunks): allocate the chunk map and all chunks.
	dqNew := m.NewFunc("dq_new", mapT, ir.P("nchunks", i64))
	{
		b := ir.NewBuilder(dqNew)
		cm := b.Alloc(chunkT, dqNew.Params[0])
		loop := b.CountedLoop("c", ir.CI(0), dqNew.Params[0], ir.CI(1))
		chunk := b.Alloc(i64, ir.CI(chunkElems))
		b.Store(chunkT, chunk, b.Idx(cm, loop.IV))
		b.CloseLoop(loop)
		b.Ret(cm)
	}

	// dq_get(map, i) / dq_set(map, i, v): two-level access.
	elemAddr := func(b *ir.Builder, f *ir.Function, cm, i ir.Value) *ir.Reg {
		cIdx := b.Div(i, ir.CI(chunkElems))
		chunk := b.Load(chunkT, b.Idx(cm, cIdx))
		off := b.Rem(i, ir.CI(chunkElems))
		return b.Idx(chunk, off)
	}
	dqGet := m.NewFunc("dq_get", i64, ir.P("cm", mapT), ir.P("i", i64))
	{
		b := ir.NewBuilder(dqGet)
		b.Ret(b.Load(i64, elemAddr(b, dqGet, dqGet.Params[0], dqGet.Params[1])))
	}
	dqSet := m.NewFunc("dq_set", ir.Void(), ir.P("cm", mapT), ir.P("i", i64), ir.P("v", i64))
	{
		b := ir.NewBuilder(dqSet)
		b.Store(i64, dqSet.Params[2], elemAddr(b, dqSet, dqSet.Params[0], dqSet.Params[1]))
		b.Ret(nil)
	}

	f := m.NewFunc("main", i64)
	b := ir.NewBuilder(f)
	da := b.Call(dqNew, ir.CI(nChunks))
	db := b.Call(dqNew, ir.CI(nChunks))
	dc := b.Call(dqNew, ir.CI(nChunks))
	fill := b.CountedLoop("fill", ir.CI(0), ir.CI(n), ir.CI(1))
	b.Call(dqSet, da, fill.IV, b.Add(fill.IV, ir.CI(cfg.Seed)))
	b.Call(dqSet, db, fill.IV, b.Mul(fill.IV, ir.CI(3)))
	b.CloseLoop(fill)
	sum := b.CountedLoop("sum", ir.CI(0), ir.CI(n), ir.CI(1))
	x := b.Call(dqGet, da, sum.IV)
	y := b.Call(dqGet, db, sum.IV)
	b.Call(dqSet, dc, sum.IV, b.Add(x, y))
	b.CloseLoop(sum)
	check := f.NewReg("check", i64)
	b.Assign(check, ir.CI(0))
	ck := b.CountedLoop("ck", ir.CI(0), ir.CI(n), ir.CI(1))
	mix(b, check, b.Call(dqGet, dc, ck.IV))
	b.CloseLoop(ck)
	b.Ret(check)
	// 3 chunk maps + 3 chunk pools.
	return m, uint64((3*nChunks + 3*n) * 8), 6
}

// listNode is the linked-list element type.
func listNodeType() *ir.StructType {
	return ir.NewStruct("lnode", ir.F("val", ir.I64()), ir.F("next", ir.Ptr(ir.I64())))
}

// buildChaseList: three singly linked lists built in traversal order.
func buildChaseList(cfg ChaseConfig) (*ir.Module, uint64, int) {
	n := cfg.N
	m := ir.NewModule("sum_list")
	i64 := ir.I64()
	node := listNodeType()
	nodeT := ir.Ptr(node)

	// build_list(n, mulc, addc) -> head, values i*mulc+addc in order.
	buildList := m.NewFunc("build_list", nodeT,
		ir.P("n", i64), ir.P("mulc", i64), ir.P("addc", i64))
	{
		b := ir.NewBuilder(buildList)
		head := b.Alloc(node, ir.CI(1))
		b.Store(i64, buildList.Params[2], b.FieldAddr(head, node, "val"))
		b.Store(nodeT, ir.CI(0), b.FieldAddr(head, node, "next"))
		tail := buildList.NewReg("tail", nodeT)
		b.Assign(tail, head)
		loop := b.CountedLoop("i", ir.CI(1), buildList.Params[0], ir.CI(1))
		p := b.Alloc(node, ir.CI(1))
		v := b.Add(b.Mul(loop.IV, buildList.Params[1]), buildList.Params[2])
		b.Store(i64, v, b.FieldAddr(p, node, "val"))
		b.Store(nodeT, ir.CI(0), b.FieldAddr(p, node, "next"))
		b.Store(nodeT, p, b.FieldAddr(tail, node, "next"))
		b.Assign(tail, p)
		b.CloseLoop(loop)
		b.Ret(head)
	}

	// sum_into(a, b, c, n): walk three lists in lockstep.
	sumInto := m.NewFunc("sum_into", ir.Void(),
		ir.P("a", nodeT), ir.P("b", nodeT), ir.P("c", nodeT), ir.P("n", i64))
	{
		b := ir.NewBuilder(sumInto)
		pa := sumInto.NewReg("pa", nodeT)
		pb := sumInto.NewReg("pb", nodeT)
		pc := sumInto.NewReg("pc", nodeT)
		b.Assign(pa, sumInto.Params[0])
		b.Assign(pb, sumInto.Params[1])
		b.Assign(pc, sumInto.Params[2])
		loop := b.CountedLoop("i", ir.CI(0), sumInto.Params[3], ir.CI(1))
		va := b.Load(i64, b.FieldAddr(pa, node, "val"))
		vb := b.Load(i64, b.FieldAddr(pb, node, "val"))
		b.Store(i64, b.Add(va, vb), b.FieldAddr(pc, node, "val"))
		b.Assign(pa, b.Load(nodeT, b.FieldAddr(pa, node, "next")))
		b.Assign(pb, b.Load(nodeT, b.FieldAddr(pb, node, "next")))
		b.Assign(pc, b.Load(nodeT, b.FieldAddr(pc, node, "next")))
		b.CloseLoop(loop)
		b.Ret(nil)
	}

	// checksum(c, n): walk the result list.
	checksum := m.NewFunc("checksum", i64, ir.P("c", nodeT), ir.P("n", i64))
	{
		b := ir.NewBuilder(checksum)
		p := checksum.NewReg("p", nodeT)
		b.Assign(p, checksum.Params[0])
		acc := checksum.NewReg("acc", i64)
		b.Assign(acc, ir.CI(0))
		loop := b.CountedLoop("i", ir.CI(0), checksum.Params[1], ir.CI(1))
		mix(b, acc, b.Load(i64, b.FieldAddr(p, node, "val")))
		b.Assign(p, b.Load(nodeT, b.FieldAddr(p, node, "next")))
		b.CloseLoop(loop)
		b.Ret(acc)
	}

	f := m.NewFunc("main", i64)
	b := ir.NewBuilder(f)
	la := b.Call(buildList, ir.CI(n), ir.CI(1), ir.CI(cfg.Seed))
	lb := b.Call(buildList, ir.CI(n), ir.CI(3), ir.CI(0))
	lc := b.Call(buildList, ir.CI(n), ir.CI(0), ir.CI(0))
	b.Call(sumInto, la, lb, lc, ir.CI(n-1))
	b.Ret(b.Call(checksum, lc, ir.CI(n-1)))
	return m, uint64(3 * n * int64(node.Size())), 3
}

// buildChaseMap: chained hash maps — bucket array + node chains.
func buildChaseMap(cfg ChaseConfig) (*ir.Module, uint64, int) {
	n := cfg.N
	// Load factor <= 1, as in std::unordered_map's default ceiling.
	buckets := int64(1)
	for buckets < n {
		buckets <<= 1
	}
	mask := buckets - 1
	m := ir.NewModule("sum_map")
	i64 := ir.I64()
	node := ir.NewStruct("mnode",
		ir.F("key", ir.I64()), ir.F("val", ir.I64()), ir.F("next", ir.Ptr(ir.I64())))
	nodeT := ir.Ptr(node)
	bucketT := ir.Ptr(nodeT)

	hash := func(b *ir.Builder, k ir.Value) *ir.Reg {
		h := b.Mul(k, ir.CI(-7046029254386353131)) // 0x9E3779B97F4A7C15
		return b.And(b.Shr(h, ir.CI(17)), ir.CI(mask))
	}

	// map_new() -> zeroed bucket array.
	mapNew := m.NewFunc("map_new", bucketT)
	{
		b := ir.NewBuilder(mapNew)
		bs := b.Alloc(nodeT, ir.CI(buckets))
		z := b.CountedLoop("z", ir.CI(0), ir.CI(buckets), ir.CI(1))
		b.Store(nodeT, ir.CI(0), b.Idx(bs, z.IV))
		b.CloseLoop(z)
		b.Ret(bs)
	}

	// map_put(buckets, k, v): chain prepend.
	mapPut := m.NewFunc("map_put", ir.Void(),
		ir.P("bs", bucketT), ir.P("k", i64), ir.P("v", i64))
	{
		b := ir.NewBuilder(mapPut)
		h := hash(b, mapPut.Params[1])
		slot := b.Idx(mapPut.Params[0], h)
		nd := b.Alloc(node, ir.CI(1))
		b.Store(i64, mapPut.Params[1], b.FieldAddr(nd, node, "key"))
		b.Store(i64, mapPut.Params[2], b.FieldAddr(nd, node, "val"))
		b.Store(nodeT, b.Load(nodeT, slot), b.FieldAddr(nd, node, "next"))
		b.Store(nodeT, nd, slot)
		b.Ret(nil)
	}

	// map_get(buckets, k) -> value (0 if absent).
	mapGet := m.NewFunc("map_get", i64, ir.P("bs", bucketT), ir.P("k", i64))
	{
		b := ir.NewBuilder(mapGet)
		h := hash(b, mapGet.Params[1])
		p := mapGet.NewReg("p", nodeT)
		b.Assign(p, b.Load(nodeT, b.Idx(mapGet.Params[0], h)))
		while := b.NewBlock("while")
		test := b.NewBlock("test")
		found := b.NewBlock("found")
		advance := b.NewBlock("advance")
		miss := b.NewBlock("miss")
		b.Jmp(while)
		b.SetBlock(while)
		b.Br(b.NE(p, ir.CI(0)), test, miss)
		b.SetBlock(test)
		k := b.Load(i64, b.FieldAddr(p, node, "key"))
		b.Br(b.EQ(k, mapGet.Params[1]), found, advance)
		b.SetBlock(advance)
		b.Assign(p, b.Load(nodeT, b.FieldAddr(p, node, "next")))
		b.Jmp(while)
		b.SetBlock(found)
		b.Ret(b.Load(i64, b.FieldAddr(p, node, "val")))
		b.SetBlock(miss)
		b.Ret(ir.CI(0))
	}

	f := m.NewFunc("main", i64)
	b := ir.NewBuilder(f)
	ma := b.Call(mapNew)
	mb := b.Call(mapNew)
	c := b.Alloc(i64, ir.CI(n))
	fill := b.CountedLoop("fill", ir.CI(0), ir.CI(n), ir.CI(1))
	b.Call(mapPut, ma, fill.IV, b.Add(fill.IV, ir.CI(cfg.Seed)))
	b.Call(mapPut, mb, fill.IV, b.Mul(fill.IV, ir.CI(3)))
	b.CloseLoop(fill)
	sum := b.CountedLoop("sum", ir.CI(0), ir.CI(n), ir.CI(1))
	x := b.Call(mapGet, ma, sum.IV)
	y := b.Call(mapGet, mb, sum.IV)
	b.Store(i64, b.Add(x, y), b.Idx(c, sum.IV))
	b.CloseLoop(sum)
	check := f.NewReg("check", i64)
	b.Assign(check, ir.CI(0))
	ck := b.CountedLoop("ck", ir.CI(0), ir.CI(n), ir.CI(1))
	mix(b, check, b.Load(i64, b.Idx(c, ck.IV)))
	b.CloseLoop(ck)
	b.Ret(check)
	// 2 bucket arrays + 2 node pools + result array.
	return m, uint64((2*buckets + 2*n*3 + n) * 8), 5
}

// buildChaseTree: binary search trees with pseudo-random insertion order.
func buildChaseTree(cfg ChaseConfig) (*ir.Module, uint64, int) {
	// n must be a power of two so (i*stride)%n with odd stride permutes.
	n := int64(1)
	for n < cfg.N {
		n <<= 1
	}
	m := ir.NewModule("sum_tree")
	i64 := ir.I64()
	node := ir.NewStruct("tnode",
		ir.F("key", ir.I64()), ir.F("val", ir.I64()),
		ir.F("left", ir.Ptr(ir.I64())), ir.F("right", ir.Ptr(ir.I64())))
	nodeT := ir.Ptr(node)

	// tree_insert(root, k, v) -> new root (recursive BST insert).
	treeInsert := m.NewFunc("tree_insert", nodeT,
		ir.P("root", nodeT), ir.P("k", i64), ir.P("v", i64))
	{
		b := ir.NewBuilder(treeInsert)
		isNil := b.NewBlock("isnil")
		walk := b.NewBlock("walk")
		b.Br(b.EQ(treeInsert.Params[0], ir.CI(0)), isNil, walk)
		b.SetBlock(isNil)
		nd := b.Alloc(node, ir.CI(1))
		b.Store(i64, treeInsert.Params[1], b.FieldAddr(nd, node, "key"))
		b.Store(i64, treeInsert.Params[2], b.FieldAddr(nd, node, "val"))
		b.Store(nodeT, ir.CI(0), b.FieldAddr(nd, node, "left"))
		b.Store(nodeT, ir.CI(0), b.FieldAddr(nd, node, "right"))
		b.Ret(nd)
		b.SetBlock(walk)
		root := treeInsert.Params[0]
		rk := b.Load(i64, b.FieldAddr(root, node, "key"))
		goLeft := b.NewBlock("left")
		goRight := b.NewBlock("right")
		b.Br(b.LT(treeInsert.Params[1], rk), goLeft, goRight)
		b.SetBlock(goLeft)
		l := b.Load(nodeT, b.FieldAddr(root, node, "left"))
		nl := b.Call(treeInsert, l, treeInsert.Params[1], treeInsert.Params[2])
		b.Store(nodeT, nl, b.FieldAddr(root, node, "left"))
		b.Ret(root)
		b.SetBlock(goRight)
		r := b.Load(nodeT, b.FieldAddr(root, node, "right"))
		nr := b.Call(treeInsert, r, treeInsert.Params[1], treeInsert.Params[2])
		b.Store(nodeT, nr, b.FieldAddr(root, node, "right"))
		b.Ret(root)
	}

	// tree_get(root, k) -> value (iterative descent).
	treeGet := m.NewFunc("tree_get", i64, ir.P("root", nodeT), ir.P("k", i64))
	{
		b := ir.NewBuilder(treeGet)
		p := treeGet.NewReg("p", nodeT)
		b.Assign(p, treeGet.Params[0])
		while := b.NewBlock("while")
		test := b.NewBlock("test")
		found := b.NewBlock("found")
		descend := b.NewBlock("descend")
		goL := b.NewBlock("goL")
		goR := b.NewBlock("goR")
		miss := b.NewBlock("miss")
		b.Jmp(while)
		b.SetBlock(while)
		b.Br(b.NE(p, ir.CI(0)), test, miss)
		b.SetBlock(test)
		k := b.Load(i64, b.FieldAddr(p, node, "key"))
		b.Br(b.EQ(k, treeGet.Params[1]), found, descend)
		b.SetBlock(descend)
		b.Br(b.LT(treeGet.Params[1], k), goL, goR)
		b.SetBlock(goL)
		b.Assign(p, b.Load(nodeT, b.FieldAddr(p, node, "left")))
		b.Jmp(while)
		b.SetBlock(goR)
		b.Assign(p, b.Load(nodeT, b.FieldAddr(p, node, "right")))
		b.Jmp(while)
		b.SetBlock(found)
		b.Ret(b.Load(i64, b.FieldAddr(p, node, "val")))
		b.SetBlock(miss)
		b.Ret(ir.CI(0))
	}

	f := m.NewFunc("main", i64)
	b := ir.NewBuilder(f)
	rootA := f.NewReg("rootA", nodeT)
	rootB := f.NewReg("rootB", nodeT)
	b.Assign(rootA, ir.CI(0))
	b.Assign(rootB, ir.CI(0))
	c := b.Alloc(i64, ir.CI(n))
	// Pseudo-random insertion order: key = (i*stride) & (n-1), stride odd.
	stride := int64(0x9E37) | 1
	fill := b.CountedLoop("fill", ir.CI(0), ir.CI(n), ir.CI(1))
	key := b.And(b.Mul(fill.IV, ir.CI(stride)), ir.CI(n-1))
	b.Assign(rootA, b.Call(treeInsert, rootA, key, b.Add(key, ir.CI(cfg.Seed))))
	b.Assign(rootB, b.Call(treeInsert, rootB, key, b.Mul(key, ir.CI(3))))
	b.CloseLoop(fill)
	sum := b.CountedLoop("sum", ir.CI(0), ir.CI(n), ir.CI(1))
	x := b.Call(treeGet, rootA, sum.IV)
	y := b.Call(treeGet, rootB, sum.IV)
	b.Store(i64, b.Add(x, y), b.Idx(c, sum.IV))
	b.CloseLoop(sum)
	check := f.NewReg("check", i64)
	b.Assign(check, ir.CI(0))
	ck := b.CountedLoop("ck", ir.CI(0), ir.CI(n), ir.CI(1))
	mix(b, check, b.Load(i64, b.Idx(c, ck.IV)))
	b.CloseLoop(ck)
	b.Ret(check)
	// 2 node pools + result array (A and B trees share no nodes).
	return m, uint64((2*n*4 + n) * 8), 3
}
