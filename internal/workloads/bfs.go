package workloads

import "cards/internal/ir"

// BFSConfig scales the graph workload.
type BFSConfig struct {
	// Vertices is the vertex count (the paper's 1.2 GB working set is
	// ~8M vertices at degree 16; tests use 1<<10).
	Vertices int64
	// Degree is the average out-degree (GAP uses 16).
	Degree int64
	// Trials is the number of BFS roots (GAP runs 64; tests use 4).
	Trials int64
	// Seed feeds the graph generator.
	Seed int64
	// Skewed selects a power-law-ish degree distribution (squaring the
	// uniform source pick concentrates edges on low-id vertices), the
	// closest in-IR analogue of GAP's Kronecker graphs. False keeps the
	// uniform graph.
	Skewed bool
}

// DefaultBFS returns the configuration used by tests.
func DefaultBFS() BFSConfig {
	return BFSConfig{Vertices: 1 << 10, Degree: 8, Trials: 4, Seed: 27}
}

// BuildBFS constructs the GAP-suite-style breadth-first-search workload:
// generate a uniform random edge list, build out- and in-CSR (GAP builds
// both directions), then run BFS from Trials pseudo-random sources,
// recording per-trial reach counts and eccentricities.
//
// The program allocates 19 disjoint data structures — the count CaRDS
// identifies for BFS in §5.1: the edge list (2), degree arrays (2), CSR
// row/column/cursor arrays for both directions (6), the BFS state
// (parent, dist, two frontiers, visited = 5), level counts, and the
// per-trial sources/reached/eccentricity records (4).
//
// Access patterns split exactly the way far-memory policies care about:
// the CSR column arrays are scanned with loaded indices (irregular /
// indirect), the frontiers are strided queues, and parent/dist/visited
// are scattered writes — BFS is the paper's irregular benchmark.
func BuildBFS(cfg BFSConfig) *Workload {
	if cfg.Vertices <= 0 {
		cfg = DefaultBFS()
	}
	n := cfg.Vertices
	edges := n * cfg.Degree
	m := ir.NewModule("bfs")
	i64 := ir.I64()
	colT := ir.Ptr(i64)

	// resetArray: a[i] = val for i < n.
	resetArray := m.NewFunc("reset_array", ir.Void(),
		ir.P("a", colT), ir.P("n", i64), ir.P("val", i64))
	{
		b := ir.NewBuilder(resetArray)
		loop := b.CountedLoop("i", ir.CI(0), resetArray.Params[1], ir.CI(1))
		b.Store(i64, resetArray.Params[2], b.Idx(resetArray.Params[0], loop.IV))
		b.CloseLoop(loop)
		b.Ret(nil)
	}

	// genEdges: random (u, v) pairs without self loops — uniform, or
	// skewed toward low-id sources when cfg.Skewed (u = r*r/n squares
	// the uniform pick, yielding a heavy-tailed degree distribution).
	genEdges := m.NewFunc("gen_edges", ir.Void(),
		ir.P("src", colT), ir.P("dst", colT), ir.P("m", i64), ir.P("seed", i64))
	{
		b := ir.NewBuilder(genEdges)
		state := genEdges.NewReg("rng", i64)
		b.Assign(state, genEdges.Params[3])
		loop := b.CountedLoop("e", ir.CI(0), genEdges.Params[2], ir.CI(1))
		u := emitRand(b, state, n)
		if cfg.Skewed {
			u = b.Div(b.Mul(u, u), ir.CI(n))
		}
		hop := b.Add(emitRand(b, state, n-1), ir.CI(1))
		v := b.Rem(b.Add(u, hop), ir.CI(n))
		b.Store(i64, u, b.Idx(genEdges.Params[0], loop.IV))
		b.Store(i64, v, b.Idx(genEdges.Params[1], loop.IV))
		b.CloseLoop(loop)
		b.Ret(nil)
	}

	// countDegrees: deg[ends[e]]++ over the edge list.
	countDegrees := m.NewFunc("count_degrees", ir.Void(),
		ir.P("ends", colT), ir.P("deg", colT), ir.P("m", i64))
	{
		b := ir.NewBuilder(countDegrees)
		loop := b.CountedLoop("e", ir.CI(0), countDegrees.Params[2], ir.CI(1))
		u := b.Load(i64, b.Idx(countDegrees.Params[0], loop.IV))
		slot := b.Idx(countDegrees.Params[1], u)
		b.Store(i64, b.Add(b.Load(i64, slot), ir.CI(1)), slot)
		b.CloseLoop(loop)
		b.Ret(nil)
	}

	// prefixSum: row[0]=0; row[i+1] = row[i] + deg[i].
	prefixSum := m.NewFunc("prefix_sum", ir.Void(),
		ir.P("deg", colT), ir.P("row", colT), ir.P("n", i64))
	{
		b := ir.NewBuilder(prefixSum)
		b.Store(i64, ir.CI(0), b.Idx(prefixSum.Params[1], ir.CI(0)))
		loop := b.CountedLoop("i", ir.CI(0), prefixSum.Params[2], ir.CI(1))
		cur := b.Load(i64, b.Idx(prefixSum.Params[1], loop.IV))
		d := b.Load(i64, b.Idx(prefixSum.Params[0], loop.IV))
		b.Store(i64, b.Add(cur, d), b.Idx(prefixSum.Params[1], b.Add(loop.IV, ir.CI(1))))
		b.CloseLoop(loop)
		b.Ret(nil)
	}

	// fillCSR: cur = copy(row); for e: col[cur[src[e]]++] = dst[e].
	fillCSR := m.NewFunc("fill_csr", ir.Void(),
		ir.P("srcs", colT), ir.P("dsts", colT), ir.P("row", colT),
		ir.P("cur", colT), ir.P("col", colT), ir.P("n", i64), ir.P("m", i64))
	{
		b := ir.NewBuilder(fillCSR)
		cp := b.CountedLoop("c", ir.CI(0), fillCSR.Params[5], ir.CI(1))
		b.Store(i64, b.Load(i64, b.Idx(fillCSR.Params[2], cp.IV)),
			b.Idx(fillCSR.Params[3], cp.IV))
		b.CloseLoop(cp)
		loop := b.CountedLoop("e", ir.CI(0), fillCSR.Params[6], ir.CI(1))
		u := b.Load(i64, b.Idx(fillCSR.Params[0], loop.IV))
		v := b.Load(i64, b.Idx(fillCSR.Params[1], loop.IV))
		slot := b.Idx(fillCSR.Params[3], u)
		pos := b.Load(i64, slot)
		b.Store(i64, v, b.Idx(fillCSR.Params[4], pos))
		b.Store(i64, b.Add(pos, ir.CI(1)), slot)
		b.CloseLoop(loop)
		b.Ret(nil)
	}

	// bfs: frontier-queue BFS from src; returns number reached.
	bfs := m.NewFunc("bfs", i64,
		ir.P("row", colT), ir.P("col", colT), ir.P("parent", colT),
		ir.P("dist", colT), ir.P("fcur", colT), ir.P("fnext", colT),
		ir.P("visited", colT), ir.P("levels", colT), ir.P("src", i64))
	{
		p := bfs.Params
		row, col, parent, dist := p[0], p[1], p[2], p[3]
		fcur, fnext, visited, levels := p[4], p[5], p[6], p[7]
		src := p[8]
		b := ir.NewBuilder(bfs)

		reached := bfs.NewReg("reached", i64)
		curSize := bfs.NewReg("cur_size", i64)
		level := bfs.NewReg("level", i64)
		b.Assign(reached, ir.CI(1))
		b.Assign(curSize, ir.CI(1))
		b.Assign(level, ir.CI(0))
		b.Store(i64, src, b.Idx(fcur, ir.CI(0)))
		b.Store(i64, ir.CI(1), b.Idx(visited, src))
		b.Store(i64, ir.CI(0), b.Idx(dist, src))
		b.Store(i64, src, b.Idx(parent, src))

		while := b.NewBlock("while")
		body := b.NewBlock("body")
		done := b.NewBlock("done")
		b.Jmp(while)
		b.SetBlock(while)
		b.Br(b.GT(curSize, ir.CI(0)), body, done)

		b.SetBlock(body)
		nextSize := bfs.NewReg("next_size", i64)
		b.Assign(nextSize, ir.CI(0))
		ql := b.CountedLoop("q", ir.CI(0), curSize, ir.CI(1))
		u := b.Load(i64, b.Idx(fcur, ql.IV))
		start := b.Load(i64, b.Idx(row, u))
		end := b.Load(i64, b.Idx(row, b.Add(u, ir.CI(1))))
		jv := bfs.NewReg("j", i64)
		b.Assign(jv, start)
		nl := b.NewBlock("nbrs")
		nbody := b.NewBlock("nbody")
		seen := b.NewBlock("seen")
		nlatch := b.NewBlock("nlatch")
		nexit := b.NewBlock("nexit")
		b.Jmp(nl)
		b.SetBlock(nl)
		b.Br(b.LT(jv, end), nbody, nexit)
		b.SetBlock(nbody)
		v := b.Load(i64, b.Idx(col, jv))
		vis := b.Load(i64, b.Idx(visited, v))
		fresh := b.NewBlock("fresh")
		b.Br(vis, seen, fresh)
		b.SetBlock(fresh)
		b.Store(i64, ir.CI(1), b.Idx(visited, v))
		b.Store(i64, u, b.Idx(parent, v))
		b.Store(i64, b.Add(level, ir.CI(1)), b.Idx(dist, v))
		b.Store(i64, v, b.Idx(fnext, nextSize))
		b.Assign(nextSize, b.Add(nextSize, ir.CI(1)))
		b.Assign(reached, b.Add(reached, ir.CI(1)))
		b.Jmp(nlatch)
		b.SetBlock(seen)
		b.Jmp(nlatch)
		b.SetBlock(nlatch)
		b.Assign(jv, b.Add(jv, ir.CI(1)))
		b.Jmp(nl)
		b.SetBlock(nexit)
		b.CloseLoop(ql)

		// Copy fnext into fcur element-wise (keeps the two frontier
		// structures disjoint for the analysis, as in GAP's SlidingQueue
		// double buffer).
		cpl := b.CountedLoop("cp", ir.CI(0), nextSize, ir.CI(1))
		b.Store(i64, b.Load(i64, b.Idx(fnext, cpl.IV)), b.Idx(fcur, cpl.IV))
		b.CloseLoop(cpl)
		b.Assign(curSize, nextSize)
		b.Assign(level, b.Add(level, ir.CI(1)))
		lvlIdx := b.Rem(level, ir.CI(64))
		slot := b.Idx(levels, lvlIdx)
		b.Store(i64, b.Add(b.Load(i64, slot), nextSize), slot)
		b.Jmp(while)

		b.SetBlock(done)
		b.Ret(reached)
	}

	// maxOf: max over dist[] entries < sentinel.
	maxOf := m.NewFunc("max_of", i64, ir.P("a", colT), ir.P("n", i64), ir.P("sentinel", i64))
	{
		b := ir.NewBuilder(maxOf)
		best := maxOf.NewReg("best", i64)
		b.Assign(best, ir.CI(0))
		loop := b.CountedLoop("i", ir.CI(0), maxOf.Params[1], ir.CI(1))
		v := b.Load(i64, b.Idx(maxOf.Params[0], loop.IV))
		upd := b.NewBlock("upd")
		cont := b.NewBlock("cont")
		valid := b.LT(v, maxOf.Params[2])
		bigger := b.GT(v, best)
		b.Br(b.And(valid, bigger), upd, cont)
		b.SetBlock(upd)
		b.Assign(best, v)
		b.Jmp(cont)
		b.SetBlock(cont)
		b.CloseLoop(loop)
		b.Ret(best)
	}

	// main: build graph (both directions), run trials.
	mainF := m.NewFunc("main", i64)
	b := ir.NewBuilder(mainF)
	alloc := func(name string, count int64) *ir.Reg {
		r := b.Alloc(i64, ir.CI(count))
		r.Name = name
		return r
	}
	// Allocation order matters to the Linear policy (it pins in program
	// order until pinned memory runs out). GAP frees its edge list after
	// CSR construction, leaving the BFS state and CSR as the earliest
	// live allocations; with no free in the IR we express the same
	// lifetime structure by allocating the traversal-hot state first and
	// the build-only edge/degree/cursor scratch last.
	parent := alloc("parent", n)
	dist := alloc("dist", n)
	fcur := alloc("frontier_cur", n)
	fnext := alloc("frontier_next", n)
	visited := alloc("visited", n)
	levels := alloc("level_counts", 64)
	sources := alloc("sources", cfg.Trials)
	reachedArr := alloc("reached", cfg.Trials)
	eccArr := alloc("eccentricity", cfg.Trials)
	rowOut := alloc("row_out", n+1)
	rowIn := alloc("row_in", n+1)
	colOut := alloc("col_out", edges)
	colIn := alloc("col_in", edges)
	edgeSrc := alloc("edge_src", edges)
	edgeDst := alloc("edge_dst", edges)
	degOut := alloc("deg_out", n)
	degIn := alloc("deg_in", n)
	curOut := alloc("cur_out", n)
	curIn := alloc("cur_in", n)

	b.Call(genEdges, edgeSrc, edgeDst, ir.CI(edges), ir.CI(cfg.Seed))
	b.Call(resetArray, degOut, ir.CI(n), ir.CI(0))
	b.Call(resetArray, degIn, ir.CI(n), ir.CI(0))
	b.Call(countDegrees, edgeSrc, degOut, ir.CI(edges))
	b.Call(countDegrees, edgeDst, degIn, ir.CI(edges))
	b.Call(prefixSum, degOut, rowOut, ir.CI(n))
	b.Call(prefixSum, degIn, rowIn, ir.CI(n))
	b.Call(fillCSR, edgeSrc, edgeDst, rowOut, curOut, colOut, ir.CI(n), ir.CI(edges))
	b.Call(fillCSR, edgeDst, edgeSrc, rowIn, curIn, colIn, ir.CI(n), ir.CI(edges))
	b.Call(resetArray, levels, ir.CI(64), ir.CI(0))

	// Pick sources.
	state := mainF.NewReg("rng", i64)
	b.Assign(state, ir.CI(cfg.Seed+1))
	sl := b.CountedLoop("s", ir.CI(0), ir.CI(cfg.Trials), ir.CI(1))
	b.Store(i64, emitRand(b, state, n), b.Idx(sources, sl.IV))
	b.CloseLoop(sl)

	// GAP methodology: graph generation and CSR construction are set-up;
	// the timed kernel is the BFS trials.
	roiBegin, roiEnd := declareROI(m)
	b.Call(roiBegin)

	sentinel := int64(1) << 40
	tl := b.CountedLoop("trial", ir.CI(0), ir.CI(cfg.Trials), ir.CI(1))
	b.Call(resetArray, parent, ir.CI(n), ir.CI(-1))
	b.Call(resetArray, dist, ir.CI(n), ir.CI(sentinel))
	b.Call(resetArray, visited, ir.CI(n), ir.CI(0))
	src := b.Load(i64, b.Idx(sources, tl.IV))
	reach := b.Call(bfs, rowOut, colOut, parent, dist, fcur, fnext, visited, levels, src)
	b.Store(i64, reach, b.Idx(reachedArr, tl.IV))
	ecc := b.Call(maxOf, dist, ir.CI(n), ir.CI(sentinel))
	b.Store(i64, ecc, b.Idx(eccArr, tl.IV))
	b.CloseLoop(tl)
	b.Call(roiEnd)

	// Checksum.
	check := mainF.NewReg("check", i64)
	b.Assign(check, ir.CI(0))
	fl := b.CountedLoop("f", ir.CI(0), ir.CI(cfg.Trials), ir.CI(1))
	mix(b, check, b.Load(i64, b.Idx(reachedArr, fl.IV)))
	mix(b, check, b.Load(i64, b.Idx(eccArr, fl.IV)))
	b.CloseLoop(fl)
	ll := b.CountedLoop("l", ir.CI(0), ir.CI(64), ir.CI(1))
	mix(b, check, b.Load(i64, b.Idx(levels, ll.IV)))
	b.CloseLoop(ll)
	// In-CSR consistency fold (exercises the reverse graph).
	rl := b.CountedLoop("r", ir.CI(0), ir.CI(n), ir.CI(1))
	mix(b, check, b.Load(i64, b.Idx(rowIn, rl.IV)))
	b.CloseLoop(rl)
	b.Ret(check)

	m.AssignSites()
	ir.MustVerify(m)
	return &Workload{
		Name:            "bfs",
		Module:          m,
		WorkingSetBytes: uint64(8 * (4*edges + 8*n + 64 + 3*cfg.Trials + 2*(n+1))),
		WantDS:          19,
	}
}
