package workloads

import (
	"testing"

	"cards/internal/core"
	"cards/internal/dsa"
	"cards/internal/ir"
	"cards/internal/policy"
)

// TestTextRoundTripPreservesSemantics cross-validates the IR printer and
// parser against the whole pipeline: every workload program is printed
// to text, parsed back, and both copies are compiled and executed — the
// checksums must match, and so must the number of data structures the
// analysis finds.
func TestTextRoundTripPreservesSemantics(t *testing.T) {
	builders := map[string]func() *Workload{
		"listing1": func() *Workload {
			return &Workload{Name: "listing1", Module: ir.BuildListing1(256, 4),
				WorkingSetBytes: 2 * 256 * 8, WantDS: 2}
		},
		"analytics": func() *Workload {
			return BuildTaxi(TaxiConfig{Trips: 512, HotPasses: 2, Seed: 7})
		},
		"ftfdapml": func() *Workload { return BuildFDTD(FDTDConfig{N: 6, Steps: 1}) },
		"bfs": func() *Workload {
			return BuildBFS(BFSConfig{Vertices: 128, Degree: 4, Trials: 1, Seed: 3})
		},
	}
	for _, kind := range ChaseKinds {
		kind := kind
		builders["sum_"+kind] = func() *Workload {
			w, err := BuildChase(kind, ChaseConfig{N: 128, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			return w
		}
	}

	run := func(m *ir.Module) (uint64, int) {
		c, err := core.Compile(m, core.CompileOptions{})
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		res, err := c.Run(core.RunConfig{
			Policy: policy.Linear, K: 100,
			PinnedBudget: 1 << 24, RemotableBudget: 1 << 20,
		})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res.MainResult, len(c.DSA.DS)
	}

	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			orig := build().Module
			text := orig.String()
			parsed, err := ir.Parse(text)
			if err != nil {
				t.Fatalf("parse of printed %s failed: %v", name, err)
			}
			// Print of the parse must be stable (fixpoint).
			if text2 := parsed.String(); text2 != text {
				t.Errorf("%s: print->parse->print not a fixpoint", name)
			}
			wantSum, wantDS := run(build().Module)
			gotSum, gotDS := run(parsed)
			if gotSum != wantSum {
				t.Errorf("%s: parsed checksum %#x != original %#x", name, gotSum, wantSum)
			}
			if gotDS != wantDS {
				t.Errorf("%s: parsed DS count %d != original %d", name, gotDS, wantDS)
			}
		})
	}
}

// TestRandomProgramRoundTripAndDSA: random programs survive the text
// round trip with identical analysis results, and the DSA is
// deterministic and bounded by the allocation-site count.
func TestRandomProgramRoundTripAndDSA(t *testing.T) {
	for seed := int64(50); seed < 80; seed++ {
		m1 := GenRandom(seed)
		allocSites := 0
		for _, f := range m1.Funcs {
			f.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) bool {
				if in.Op == ir.OpAlloc {
					allocSites++
				}
				return true
			})
		}
		d1 := dsa.Analyze(m1)
		if len(d1.DS) == 0 || len(d1.DS) > allocSites {
			t.Fatalf("seed %d: %d structures from %d alloc sites", seed, len(d1.DS), allocSites)
		}
		// Determinism.
		d2 := dsa.Analyze(GenRandom(seed))
		if len(d2.DS) != len(d1.DS) {
			t.Fatalf("seed %d: DSA nondeterministic: %d vs %d", seed, len(d1.DS), len(d2.DS))
		}
		// Text round trip preserves the analysis.
		text := GenRandom(seed).String()
		parsed, err := ir.Parse(text)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		d3 := dsa.Analyze(parsed)
		if len(d3.DS) != len(d1.DS) {
			t.Fatalf("seed %d: parse changed DSA: %d vs %d", seed, len(d3.DS), len(d1.DS))
		}
	}
}
