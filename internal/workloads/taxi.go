package workloads

import "cards/internal/ir"

// TaxiConfig scales the analytics workload.
type TaxiConfig struct {
	// Trips is the row count of the synthetic trip table (the paper's
	// dataset has ~165M rows in 16 GB; default test scale is 1<<14).
	Trips int64
	// HotPasses is how many times the tip-ratio query rescans the hot
	// columns (drives the hot/cold skew the remoting policies exploit).
	HotPasses int64
	// Seed feeds the data generator.
	Seed int64
}

// DefaultTaxi returns the configuration used by tests.
func DefaultTaxi() TaxiConfig { return TaxiConfig{Trips: 1 << 13, HotPasses: 6, Seed: 2014} }

// taxiColumns is the NYC taxi trip schema the Kaggle notebook analyzes.
var taxiColumns = []string{
	"pickup_time", "dropoff_time", "passenger_count", "trip_distance",
	"pickup_lon", "pickup_lat", "dropoff_lon", "dropoff_lat",
	"fare", "tip", "tolls", "total_amount",
	"payment_type", "vendor_id", "rate_code",
}

// BuildTaxi constructs the analytics workload: load a 15-column trip
// table, then run the exploratory queries of the Kaggle notebook the
// paper cites — hourly trip histogram, fare-by-passenger aggregation,
// distance histogram, revenue by hour over a distance filter, payment
// type breakdown, and a repeated tip-ratio scan over the hot columns.
//
// The program allocates 22 disjoint data structures (the count CaRDS
// identifies for this workload in §5.1): the 15 columns plus 7 aggregate
// structures. Columns such as tolls, vendor_id and the coordinates are
// written once and read at most once (cold); fare, tip, pickup_time and
// the filter flags are rescanned HotPasses times (hot). A good remoting
// policy pins the hot ones.
func BuildTaxi(cfg TaxiConfig) *Workload {
	if cfg.Trips <= 0 {
		cfg = DefaultTaxi()
	}
	n := cfg.Trips
	m := ir.NewModule("taxi")
	i64 := ir.I64()
	colT := ir.Ptr(i64)

	// --- Generic query helpers (shared across columns: the context-
	// sensitive DSA must still attribute each call to the right
	// instances). ---

	// histogram: hist[(col[i]/div) % buckets]++
	histogram := m.NewFunc("histogram", ir.Void(),
		ir.P("col", colT), ir.P("hist", colT), ir.P("n", i64),
		ir.P("div", i64), ir.P("buckets", i64))
	{
		b := ir.NewBuilder(histogram)
		loop := b.CountedLoop("i", ir.CI(0), histogram.Params[2], ir.CI(1))
		v := b.Load(i64, b.Idx(histogram.Params[0], loop.IV))
		bucket := b.Rem(b.Div(v, histogram.Params[3]), histogram.Params[4])
		slot := b.Idx(histogram.Params[1], bucket)
		b.Store(i64, b.Add(b.Load(i64, slot), ir.CI(1)), slot)
		b.CloseLoop(loop)
		b.Ret(nil)
	}

	// groupSum: sums[key[i]%mod] += val[i]; counts[key[i]%mod]++
	groupSum := m.NewFunc("group_sum", ir.Void(),
		ir.P("key", colT), ir.P("val", colT), ir.P("sums", colT),
		ir.P("counts", colT), ir.P("n", i64), ir.P("mod", i64))
	{
		b := ir.NewBuilder(groupSum)
		loop := b.CountedLoop("i", ir.CI(0), groupSum.Params[4], ir.CI(1))
		k := b.Rem(b.Load(i64, b.Idx(groupSum.Params[0], loop.IV)), groupSum.Params[5])
		v := b.Load(i64, b.Idx(groupSum.Params[1], loop.IV))
		sslot := b.Idx(groupSum.Params[2], k)
		b.Store(i64, b.Add(b.Load(i64, sslot), v), sslot)
		cslot := b.Idx(groupSum.Params[3], k)
		b.Store(i64, b.Add(b.Load(i64, cslot), ir.CI(1)), cslot)
		b.CloseLoop(loop)
		b.Ret(nil)
	}

	// filterGT: flags[i] = col[i] > thresh; returns match count.
	filterGT := m.NewFunc("filter_gt", i64,
		ir.P("col", colT), ir.P("flags", colT), ir.P("n", i64), ir.P("thresh", i64))
	{
		b := ir.NewBuilder(filterGT)
		count := filterGT.NewReg("count", i64)
		b.Assign(count, ir.CI(0))
		loop := b.CountedLoop("i", ir.CI(0), filterGT.Params[2], ir.CI(1))
		v := b.Load(i64, b.Idx(filterGT.Params[0], loop.IV))
		flag := b.GT(v, filterGT.Params[3])
		b.Store(i64, flag, b.Idx(filterGT.Params[1], loop.IV))
		b.Assign(count, b.Add(count, flag))
		b.CloseLoop(loop)
		b.Ret(count)
	}

	// condGroupSum: for flagged rows, out[(key[i]/div)%mod] += val[i].
	condGroupSum := m.NewFunc("cond_group_sum", ir.Void(),
		ir.P("flags", colT), ir.P("key", colT), ir.P("val", colT),
		ir.P("out", colT), ir.P("n", i64), ir.P("div", i64), ir.P("mod", i64))
	{
		b := ir.NewBuilder(condGroupSum)
		loop := b.CountedLoop("i", ir.CI(0), condGroupSum.Params[4], ir.CI(1))
		skip := b.NewBlock("skip")
		hit := b.NewBlock("hit")
		f := b.Load(i64, b.Idx(condGroupSum.Params[0], loop.IV))
		b.Br(f, hit, skip)
		b.SetBlock(hit)
		k := b.Rem(b.Div(b.Load(i64, b.Idx(condGroupSum.Params[1], loop.IV)),
			condGroupSum.Params[5]), condGroupSum.Params[6])
		v := b.Load(i64, b.Idx(condGroupSum.Params[2], loop.IV))
		slot := b.Idx(condGroupSum.Params[3], k)
		b.Store(i64, b.Add(b.Load(i64, slot), v), slot)
		b.Jmp(skip)
		b.SetBlock(skip)
		b.CloseLoop(loop)
		b.Ret(nil)
	}

	// ratioOf computes one row's tip percentage. It exists as a separate
	// function for the same reason real analytics code has one: the hot
	// kernel sits at the bottom of the deepest call chain, which is
	// precisely the signal the Maximum Reach policy keys on.
	ratioOf := m.NewFunc("ratio_of", i64,
		ir.P("tips", colT), ir.P("fares", colT), ir.P("i", i64))
	{
		b := ir.NewBuilder(ratioOf)
		tip := b.Load(i64, b.Idx(ratioOf.Params[0], ratioOf.Params[2]))
		fare := b.Load(i64, b.Idx(ratioOf.Params[1], ratioOf.Params[2]))
		b.Ret(b.Div(b.Mul(tip, ir.CI(100)), b.Add(fare, ir.CI(1))))
	}

	// scanRatio: sum of per-row tip percentages over flagged rows — the
	// hot repeated query.
	scanRatio := m.NewFunc("scan_ratio", i64,
		ir.P("tip", colT), ir.P("fare", colT), ir.P("flags", colT), ir.P("n", i64))
	{
		b := ir.NewBuilder(scanRatio)
		acc := scanRatio.NewReg("acc", i64)
		b.Assign(acc, ir.CI(0))
		loop := b.CountedLoop("i", ir.CI(0), scanRatio.Params[3], ir.CI(1))
		skip := b.NewBlock("skip")
		hit := b.NewBlock("hit")
		f := b.Load(i64, b.Idx(scanRatio.Params[2], loop.IV))
		b.Br(f, hit, skip)
		b.SetBlock(hit)
		ratio := b.Call(ratioOf, scanRatio.Params[0], scanRatio.Params[1], loop.IV)
		b.Assign(acc, b.Add(acc, ratio))
		b.Jmp(skip)
		b.SetBlock(skip)
		b.CloseLoop(loop)
		b.Ret(acc)
	}

	// sumArray folds an aggregate array into a checksum.
	sumArray := m.NewFunc("sum_array", i64, ir.P("a", colT), ir.P("n", i64))
	{
		b := ir.NewBuilder(sumArray)
		acc := sumArray.NewReg("acc", i64)
		b.Assign(acc, ir.CI(0))
		loop := b.CountedLoop("i", ir.CI(0), sumArray.Params[1], ir.CI(1))
		mix(b, acc, b.Load(i64, b.Idx(sumArray.Params[0], loop.IV)))
		b.CloseLoop(loop)
		b.Ret(acc)
	}

	// loadTrips: one pass generating correlated synthetic trips (the
	// CSV-parse stand-in). Living in its own function keeps main free of
	// direct accesses, as in the real application where parsing code,
	// not main, touches the columns.
	loadParams := make([]ir.Param, 0, len(taxiColumns)+2)
	for _, name := range taxiColumns {
		loadParams = append(loadParams, ir.P(name, colT))
	}
	loadParams = append(loadParams, ir.P("n", i64), ir.P("seed", i64))
	loadTrips := m.NewFunc("load_trips", ir.Void(), loadParams...)
	{
		b := ir.NewBuilder(loadTrips)
		col := func(name string) *ir.Reg {
			for i, cn := range taxiColumns {
				if cn == name {
					return loadTrips.Params[i]
				}
			}
			panic("unknown column " + name)
		}
		nArg := loadTrips.Params[len(taxiColumns)]
		state := loadTrips.NewReg("rng", i64)
		b.Assign(state, loadTrips.Params[len(taxiColumns)+1])
		load := b.CountedLoop("load", ir.CI(0), nArg, ir.CI(1))
		pickup := emitRand(b, state, 525600) // minute of year
		b.Store(i64, pickup, b.Idx(col("pickup_time"), load.IV))
		dur := emitRand(b, state, 120)
		b.Store(i64, b.Add(pickup, dur), b.Idx(col("dropoff_time"), load.IV))
		pc := b.Add(emitRand(b, state, 6), ir.CI(1))
		b.Store(i64, pc, b.Idx(col("passenger_count"), load.IV))
		dist := emitRand(b, state, 3000) // x100 miles
		b.Store(i64, dist, b.Idx(col("trip_distance"), load.IV))
		b.Store(i64, emitRand(b, state, 100000), b.Idx(col("pickup_lon"), load.IV))
		b.Store(i64, emitRand(b, state, 100000), b.Idx(col("pickup_lat"), load.IV))
		b.Store(i64, emitRand(b, state, 100000), b.Idx(col("dropoff_lon"), load.IV))
		b.Store(i64, emitRand(b, state, 100000), b.Idx(col("dropoff_lat"), load.IV))
		fare := b.Add(ir.CI(250), b.Div(b.Mul(dist, ir.CI(5)), ir.CI(2))) // base + per-mile
		b.Store(i64, fare, b.Idx(col("fare"), load.IV))
		tip := b.Div(b.Mul(fare, emitRand(b, state, 30)), ir.CI(100))
		b.Store(i64, tip, b.Idx(col("tip"), load.IV))
		tolls := emitRand(b, state, 600)
		b.Store(i64, tolls, b.Idx(col("tolls"), load.IV))
		total := b.Add(b.Add(fare, tip), tolls)
		b.Store(i64, total, b.Idx(col("total_amount"), load.IV))
		b.Store(i64, emitRand(b, state, 4), b.Idx(col("payment_type"), load.IV))
		b.Store(i64, emitRand(b, state, 2), b.Idx(col("vendor_id"), load.IV))
		b.Store(i64, emitRand(b, state, 6), b.Idx(col("rate_code"), load.IV))
		b.CloseLoop(load)
		b.Ret(nil)
	}

	// --- main: allocate, load, query. ---
	mainF := m.NewFunc("main", i64)
	b := ir.NewBuilder(mainF)

	// 15 column allocations (each call site is its own DS instance).
	cols := make(map[string]*ir.Reg, len(taxiColumns))
	colArgs := make([]ir.Value, 0, len(taxiColumns)+2)
	for _, name := range taxiColumns {
		c := b.Alloc(i64, ir.CI(n))
		c.Name = name
		cols[name] = c
		colArgs = append(colArgs, c)
	}
	// 7 aggregate structures.
	hourHist := b.Alloc(i64, ir.CI(24))
	fareSums := b.Alloc(i64, ir.CI(8))
	tripCounts := b.Alloc(i64, ir.CI(8))
	distHist := b.Alloc(i64, ir.CI(32))
	revenueByHour := b.Alloc(i64, ir.CI(24))
	flags := b.Alloc(i64, ir.CI(n))
	paymentCounts := b.Alloc(i64, ir.CI(4))

	colArgs = append(colArgs, ir.CI(n), ir.CI(cfg.Seed))
	b.Call(loadTrips, colArgs...)

	// Q1: trips per hour of day.
	b.Call(histogram, cols["pickup_time"], hourHist, ir.CI(n), ir.CI(60), ir.CI(24))
	// Q2: fare totals by passenger count.
	b.Call(groupSum, cols["passenger_count"], cols["fare"], fareSums, tripCounts,
		ir.CI(n), ir.CI(8))
	// Q3: distance histogram (100-unit buckets).
	b.Call(histogram, cols["trip_distance"], distHist, ir.CI(n), ir.CI(100), ir.CI(32))
	// Q4: long-trip filter, then revenue by hour over the filtered set.
	matches := b.Call(filterGT, cols["trip_distance"], flags, ir.CI(n), ir.CI(1500))
	b.Call(condGroupSum, flags, cols["pickup_time"], cols["total_amount"],
		revenueByHour, ir.CI(n), ir.CI(60), ir.CI(24))
	// Q5: payment type breakdown.
	b.Call(histogram, cols["payment_type"], paymentCounts, ir.CI(n), ir.CI(1), ir.CI(4))

	// Q6 (hot): repeated tip-ratio scans over fare/tip/flags.
	check := mainF.NewReg("check", i64)
	b.Assign(check, matches)
	hot := b.CountedLoop("hot", ir.CI(0), ir.CI(cfg.HotPasses), ir.CI(1))
	r := b.Call(scanRatio, cols["tip"], cols["fare"], flags, ir.CI(n))
	mix(b, check, r)
	b.CloseLoop(hot)

	// Fold aggregates into the checksum.
	mix(b, check, b.Call(sumArray, hourHist, ir.CI(24)))
	mix(b, check, b.Call(sumArray, fareSums, ir.CI(8)))
	mix(b, check, b.Call(sumArray, tripCounts, ir.CI(8)))
	mix(b, check, b.Call(sumArray, distHist, ir.CI(32)))
	mix(b, check, b.Call(sumArray, revenueByHour, ir.CI(24)))
	mix(b, check, b.Call(sumArray, paymentCounts, ir.CI(4)))
	b.Ret(check)

	m.AssignSites()
	ir.MustVerify(m)
	return &Workload{
		Name:            "analytics",
		Module:          m,
		WorkingSetBytes: uint64(16*n*8) + (24+8+8+32+24+4)*8,
		WantDS:          22,
	}
}
