package workloads

import (
	"math/rand"

	"cards/internal/ir"
)

// GenRandom builds a random but well-formed program: a handful of heap
// arrays, loops doing loads/stores/arithmetic (some through a helper
// function, exercising interprocedural analysis), and a final checksum
// walk. The same seed always yields the same program.
//
// It powers the differential tests: whatever this generator produces,
// every pipeline configuration — plain, memory-pressured, instrumentation
// variants, TrackFM — must compute the same checksum, and the textual IR
// round trip must preserve both the checksum and the analysis results.
func GenRandom(seed int64) *ir.Module {
	rng := rand.New(rand.NewSource(seed))
	n := int64(64 + rng.Intn(192)) // array length
	nArrays := 2 + rng.Intn(3)

	m := ir.NewModule("randprog")
	i64 := ir.I64()
	colT := ir.Ptr(i64)

	// Helper: mangle(arr, i, c) performs a random read-modify-write.
	mangle := m.NewFunc("mangle", i64,
		ir.P("arr", colT), ir.P("i", i64), ir.P("c", i64))
	{
		b := ir.NewBuilder(mangle)
		idx := b.Rem(mangle.Params[1], ir.CI(n))
		addr := b.Idx(mangle.Params[0], idx)
		v := b.Load(i64, addr)
		ops := []func(x, y ir.Value) *ir.Reg{b.Add, b.Sub, b.Mul, b.Xor}
		nv := ops[rng.Intn(len(ops))](v, mangle.Params[2])
		b.Store(i64, nv, addr)
		b.Ret(nv)
	}

	mainF := m.NewFunc("main", i64)
	b := ir.NewBuilder(mainF)
	arrays := make([]*ir.Reg, nArrays)
	for i := range arrays {
		arrays[i] = b.Alloc(i64, ir.CI(n))
	}

	// Init loops.
	for ai, arr := range arrays {
		loop := b.CountedLoop("init", ir.CI(0), ir.CI(n), ir.CI(1))
		v := b.Add(b.Mul(loop.IV, ir.CI(int64(rng.Intn(13)+1))), ir.CI(int64(ai)))
		b.Store(i64, v, b.Idx(arr, loop.IV))
		b.CloseLoop(loop)
	}

	// A few random compute loops.
	acc := mainF.NewReg("acc", i64)
	b.Assign(acc, ir.CI(int64(rng.Intn(1000))))
	for pass := 0; pass < 2+rng.Intn(3); pass++ {
		src := arrays[rng.Intn(nArrays)]
		dst := arrays[rng.Intn(nArrays)]
		stride := int64(rng.Intn(3) + 1)
		loop := b.CountedLoop("pass", ir.CI(0), ir.CI(n), ir.CI(stride))
		switch rng.Intn(3) {
		case 0: // dst[i] = src[i] xor acc
			v := b.Load(i64, b.Idx(src, loop.IV))
			b.Store(i64, b.Xor(v, acc), b.Idx(dst, loop.IV))
		case 1: // indirect: dst[src[i] % n] += i
			v := b.Load(i64, b.Idx(src, loop.IV))
			idx := b.Rem(b.And(v, ir.CI(0x7fffffff)), ir.CI(n))
			slot := b.Idx(dst, idx)
			b.Store(i64, b.Add(b.Load(i64, slot), loop.IV), slot)
		case 2: // call the helper
			r := b.Call(mangle, src, loop.IV, b.Add(acc, loop.IV))
			b.Assign(acc, b.Add(acc, r))
		}
		b.CloseLoop(loop)
	}

	// Checksum walk over every array.
	for _, arr := range arrays {
		loop := b.CountedLoop("ck", ir.CI(0), ir.CI(n), ir.CI(1))
		v := b.Load(i64, b.Idx(arr, loop.IV))
		b.Assign(acc, b.Add(b.Mul(acc, ir.CI(31)), v))
		b.CloseLoop(loop)
	}
	b.Ret(acc)

	m.AssignSites()
	ir.MustVerify(m)
	return m
}
