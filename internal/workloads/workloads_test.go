package workloads

import (
	"testing"

	"cards/internal/analysis"
	"cards/internal/core"
	"cards/internal/dsa"
	"cards/internal/ir"
	"cards/internal/policy"
	"cards/internal/trackfm"
)

// buildAll returns fresh instances of every workload at test scale.
func buildAll(t *testing.T) []*Workload {
	t.Helper()
	ws := []*Workload{
		BuildTaxi(TaxiConfig{Trips: 1 << 10, HotPasses: 3, Seed: 2014}),
		BuildFDTD(FDTDConfig{N: 8, Steps: 2}),
		BuildBFS(BFSConfig{Vertices: 256, Degree: 6, Trials: 2, Seed: 27}),
	}
	for _, kind := range ChaseKinds {
		w, err := BuildChase(kind, ChaseConfig{N: 256, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	return ws
}

// rebuild reconstructs one workload by name (compilation mutates modules,
// so every pipeline needs a fresh copy).
func rebuild(t *testing.T, name string) *Workload {
	t.Helper()
	for _, w := range buildAll(t) {
		if w.Name == name {
			return w
		}
	}
	t.Fatalf("unknown workload %s", name)
	return nil
}

func TestDisjointStructureCounts(t *testing.T) {
	// The paper reports 22 structures for analytics, 15 for ftfdapml,
	// and 19 for BFS (§5.1). Our DSA must find the same counts.
	for _, w := range buildAll(t) {
		res := dsa.Analyze(w.Module)
		if got := len(res.DS); got != w.WantDS {
			for _, d := range res.DS {
				t.Logf("%s: %s", w.Name, d.Name())
			}
			t.Errorf("%s: DS count = %d, want %d", w.Name, got, w.WantDS)
		}
	}
}

func TestWorkloadsVerify(t *testing.T) {
	for _, w := range buildAll(t) {
		if err := ir.Verify(w.Module); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		if w.WorkingSetBytes == 0 {
			t.Errorf("%s: zero working set", w.Name)
		}
	}
}

// runCaRDS compiles and runs a fresh copy of the workload.
func runCaRDS(t *testing.T, name string, pol policy.Kind, k float64,
	pinned, remotable uint64) *core.RunResult {
	t.Helper()
	w := rebuild(t, name)
	c, err := core.Compile(w.Module, core.CompileOptions{})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	res, err := c.Run(core.RunConfig{
		Policy: pol, K: k, Seed: 5,
		PinnedBudget: pinned, RemotableBudget: remotable,
	})
	if err != nil {
		t.Fatalf("%s/%v: %v", name, pol, err)
	}
	return res
}

func TestChecksumsStableAcrossPolicies(t *testing.T) {
	// The strongest correctness property: whatever the placement,
	// eviction pressure, or prefetching, the computation's result must
	// not change. Run every workload under every policy plus TrackFM.
	for _, w := range buildAll(t) {
		name := w.Name
		t.Run(name, func(t *testing.T) {
			ws := w.WorkingSetBytes
			pinned := ws / 2
			remotable := uint64(24 * 4096)
			want := runCaRDS(t, name, policy.Linear, 100, ws*2, remotable).MainResult
			if want == 0 {
				t.Fatalf("%s: zero checksum (degenerate workload?)", name)
			}
			for _, pol := range policy.All() {
				got := runCaRDS(t, name, pol, 50, pinned, remotable).MainResult
				if got != want {
					t.Errorf("%s under %v: checksum %#x, want %#x", name, pol, got, want)
				}
			}
			// Constrained memory.
			got := runCaRDS(t, name, policy.AllRemotable, 0, 0, ws/4+remotable).MainResult
			if got != want {
				t.Errorf("%s constrained: checksum %#x, want %#x", name, got, want)
			}
			// TrackFM baseline computes the same result.
			tw := rebuild(t, name)
			tc, err := trackfm.Compile(tw.Module)
			if err != nil {
				t.Fatal(err)
			}
			tres, err := tc.Run(trackfm.RunConfig{LocalMemory: ws/2 + remotable})
			if err != nil {
				t.Fatal(err)
			}
			if tres.MainResult != want {
				t.Errorf("%s under TrackFM: checksum %#x, want %#x", name, tres.MainResult, want)
			}
		})
	}
}

func TestTaxiHotColumnsScoreHigher(t *testing.T) {
	w := BuildTaxi(TaxiConfig{Trips: 512, HotPasses: 4, Seed: 2014})
	res := dsa.Analyze(w.Module)
	an := analysis.Analyze(w.Module, res)

	// Identify columns by allocation order in main: fare is column 8,
	// tolls is column 10, vendor_id is 13 (see taxiColumns).
	scores := make([]int, len(an.Infos))
	for _, info := range an.Infos {
		scores[info.DS.ID] = info.UseScore
	}
	fare, tip := scores[8], scores[9]
	tolls, vendor := scores[10], scores[13]
	if fare <= tolls || tip <= vendor {
		t.Errorf("hot columns should outscore cold: fare=%d tolls=%d tip=%d vendor=%d",
			fare, tolls, tip, vendor)
	}
}

func TestBFSHasIndirectStructures(t *testing.T) {
	w := BuildBFS(BFSConfig{Vertices: 128, Degree: 4, Trials: 1, Seed: 3})
	res := dsa.Analyze(w.Module)
	an := analysis.Analyze(w.Module, res)
	indirect := 0
	for _, info := range an.Infos {
		if info.Pattern == analysis.PatternIndirect {
			indirect++
		}
	}
	if indirect == 0 {
		for _, info := range an.Infos {
			t.Logf("%s: %s", info.DS.Name(), info.Pattern)
		}
		t.Error("BFS should have indirect-pattern structures (visited/parent/dist)")
	}
}

func TestFDTDAllStrided(t *testing.T) {
	w := BuildFDTD(FDTDConfig{N: 6, Steps: 1})
	res := dsa.Analyze(w.Module)
	an := analysis.Analyze(w.Module, res)
	for _, info := range an.Infos {
		if info.Pattern != analysis.PatternStrided {
			t.Errorf("%s: pattern = %s, want strided (static control parts)",
				info.DS.Name(), info.Pattern)
		}
	}
}

func TestListIsPointerChase(t *testing.T) {
	w, err := BuildChase("list", ChaseConfig{N: 128, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := dsa.Analyze(w.Module)
	an := analysis.Analyze(w.Module, res)
	chase := 0
	for _, info := range an.Infos {
		if info.Pattern == analysis.PatternPointerChase {
			chase++
		}
		if !info.DS.Recursive {
			t.Errorf("%s: list nodes should be recursive", info.DS.Name())
		}
	}
	if chase == 0 {
		t.Error("no pointer-chase structures detected in sum_list")
	}
}

func TestChaseUnknownKind(t *testing.T) {
	if _, err := BuildChase("bogus", DefaultChase()); err == nil {
		t.Fatal("unknown kind should error")
	}
}

func TestDeterministicChecksums(t *testing.T) {
	// Two fresh builds + runs give identical results (no hidden
	// nondeterminism anywhere in the stack).
	a := runCaRDS(t, "bfs", policy.MaxUse, 50, 1<<20, 1<<18).MainResult
	b := runCaRDS(t, "bfs", policy.MaxUse, 50, 1<<20, 1<<18).MainResult
	if a != b {
		t.Fatalf("nondeterministic: %#x vs %#x", a, b)
	}
}

func TestBFSSkewedGraph(t *testing.T) {
	uni := BuildBFS(BFSConfig{Vertices: 256, Degree: 6, Trials: 1, Seed: 4})
	skw := BuildBFS(BFSConfig{Vertices: 256, Degree: 6, Trials: 1, Seed: 4, Skewed: true})
	run := func(w *Workload) *core.RunResult {
		c, err := core.Compile(w.Module, core.CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(core.RunConfig{
			Policy: policy.Linear, K: 100,
			PinnedBudget: 1 << 22, RemotableBudget: 1 << 18,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ru, rs := run(uni), run(skw)
	// Different graphs, both correct (non-zero checksums, distinct).
	if ru.MainResult == 0 || rs.MainResult == 0 {
		t.Fatal("zero checksum")
	}
	if ru.MainResult == rs.MainResult {
		t.Fatal("skewed graph should differ from uniform")
	}
	// Same structure count either way.
	c, _ := core.Compile(BuildBFS(BFSConfig{Vertices: 256, Degree: 6, Trials: 1,
		Seed: 4, Skewed: true}).Module, core.CompileOptions{})
	if len(c.DSA.DS) != 19 {
		t.Fatalf("skewed BFS DS = %d, want 19", len(c.DSA.DS))
	}
}
