// Package workloads builds the paper's application benchmarks as IR
// programs: the NYC-taxi analytics workload (§5, 22 data structures),
// the PolyBench fdtd-apml kernel (15 data structures), GAP-style BFS
// (19 data structures), and the Figure 9 pointer-chasing micro-suite.
//
// The paper's datasets are not reproducible here — the 16 GB Kaggle
// taxi dump is proprietary-ish and far beyond laptop scale — so each
// workload *generates* its data deterministically with an in-IR linear
// congruential generator during a load phase (standing in for CSV
// parsing / graph loading), then runs the same computational phases the
// originals run. What the experiments measure — which structures are
// hot, how they are accessed, how policies place them — is preserved;
// only absolute sizes are scaled (see DESIGN.md).
//
// Every workload's main returns a checksum, so any corruption introduced
// by eviction, prefetching, or guard elision is caught by comparing
// checksums across configurations.
package workloads

import "cards/internal/ir"

// lcgMul and lcgAdd are Knuth's MMIX constants.
const (
	lcgMul = 6364136223846793005
	lcgAdd = 1442695040888963407
)

// emitRand advances the LCG state register and yields a fresh register
// with the next pseudo-random non-negative value (top bits, masked).
func emitRand(b *ir.Builder, state *ir.Reg, modulus int64) *ir.Reg {
	b.Assign(state, b.Add(b.Mul(state, ir.CI(lcgMul)), ir.CI(lcgAdd)))
	v := b.Shr(state, ir.CI(33))
	if modulus > 0 {
		v = b.Rem(v, ir.CI(modulus))
	}
	return v
}

// mix folds a value into a running checksum register:
// sum = sum*31 + v.
func mix(b *ir.Builder, sum *ir.Reg, v ir.Value) {
	b.Assign(sum, b.Add(b.Mul(sum, ir.CI(31)), v))
}

// Workload bundles a built program with its bookkeeping.
type Workload struct {
	Name string
	// Module is the program (not yet compiled by any pipeline).
	Module *ir.Module
	// WorkingSetBytes approximates the heap footprint, for budget math.
	WorkingSetBytes uint64
	// WantDS is the number of disjoint data structures the paper
	// reports for this workload (asserted by tests).
	WantDS int
}

// declareROI registers the region-of-interest marker functions in m (the
// interpreter intercepts calls to them; the bodies never run). Workloads
// whose published methodology times only a kernel — GAP's BFS trials —
// bracket that kernel with calls to the returned functions.
func declareROI(m *ir.Module) (begin, end *ir.Function) {
	begin = m.NewFunc("cards.roi_begin", ir.Void())
	ir.NewBuilder(begin).Ret(nil)
	end = m.NewFunc("cards.roi_end", ir.Void())
	ir.NewBuilder(end).Ret(nil)
	return begin, end
}
