package workloads

import "cards/internal/ir"

// FDTDConfig scales the fdtd-apml kernel.
type FDTDConfig struct {
	// N is the cube edge (PolyBench CZ=CYM=CXM; the paper's 8 GB
	// working set corresponds to N~256; tests use 12-16).
	N int64
	// Steps is the number of time steps.
	Steps int64
}

// DefaultFDTD returns the configuration used by tests.
func DefaultFDTD() FDTDConfig { return FDTDConfig{N: 12, Steps: 2} }

// BuildFDTD constructs the PolyBench fdtd-apml kernel (Finite Difference
// Time Domain with an Anisotropic Perfectly Matched Layer), chosen by
// the paper because it has the most data structures in the PolyBench
// suite — 15 disjoint structures here: six 1-D coefficient arrays
// (czm, czp, cxmh, cxph, cymh, cyph), four 2-D auxiliaries
// (Ry, Ax, clf, tmp), four 3-D fields (Ex, Ey, Hz, Bza), and an energy
// accumulator used for the checksum.
//
// The kernel follows PolyBench's static-control structure: a triple
// nested loop updating Hz/Bza from Ex/Ey and the PML coefficients, with
// the boundary columns folded in, iterated for Steps time steps. Every
// access is affine in the loop indices, so the prefetch analysis must
// classify all 15 structures as strided.
func BuildFDTD(cfg FDTDConfig) *Workload {
	if cfg.N <= 0 {
		cfg = DefaultFDTD()
	}
	nz, ny, nx := cfg.N, cfg.N, cfg.N
	m := ir.NewModule("fdtd-apml")
	f64 := ir.F64()
	i64 := ir.I64()
	arrT := ir.Ptr(f64)

	plane := (ny + 1) * (nx + 1) // one iz-plane of a 3-D field
	vol := (nz + 1) * plane

	// idx3 computes (iz*(ny+1)+iy)*(nx+1)+ix for the flattened fields.
	idx3 := func(b *ir.Builder, iz, iy, ix ir.Value) *ir.Reg {
		row := b.Add(b.Mul(iz, ir.CI(ny+1)), iy)
		return b.Add(b.Mul(row, ir.CI(nx+1)), ix)
	}
	// idx2 computes iz*(ny+1)+iy for the 2-D auxiliaries.
	idx2 := func(b *ir.Builder, iz, iy ir.Value) *ir.Reg {
		return b.Add(b.Mul(iz, ir.CI(ny+1)), iy)
	}

	// initArray fills a float array with a deterministic ramp:
	// a[i] = (i % mod + 1) / mod.
	initArray := m.NewFunc("init_array", ir.Void(),
		ir.P("a", arrT), ir.P("n", i64), ir.P("mod", i64))
	{
		b := ir.NewBuilder(initArray)
		loop := b.CountedLoop("i", ir.CI(0), initArray.Params[1], ir.CI(1))
		num := b.IToF(b.Add(b.Rem(loop.IV, initArray.Params[2]), ir.CI(1)))
		den := b.IToF(initArray.Params[2])
		b.Store(f64, b.FDiv(num, den), b.Idx(initArray.Params[0], loop.IV))
		b.CloseLoop(loop)
		b.Ret(nil)
	}

	// step runs one time step of the kernel.
	step := m.NewFunc("step", ir.Void(),
		ir.P("czm", arrT), ir.P("czp", arrT),
		ir.P("cxmh", arrT), ir.P("cxph", arrT),
		ir.P("cymh", arrT), ir.P("cyph", arrT),
		ir.P("Ry", arrT), ir.P("Ax", arrT),
		ir.P("clf", arrT), ir.P("tmp", arrT),
		ir.P("Ex", arrT), ir.P("Ey", arrT),
		ir.P("Hz", arrT), ir.P("Bza", arrT))
	{
		p := step.Params
		czm, czp, cxmh, cxph, cymh, cyph := p[0], p[1], p[2], p[3], p[4], p[5]
		Ry, Ax, clf, tmp := p[6], p[7], p[8], p[9]
		Ex, Ey, Hz, Bza := p[10], p[11], p[12], p[13]
		b := ir.NewBuilder(step)
		mui := b.ConstF(2.0)
		ch := b.ConstF(0.5)

		zl := b.CountedLoop("iz", ir.CI(0), ir.CI(nz), ir.CI(1))
		yl := b.CountedLoop("iy", ir.CI(0), ir.CI(ny), ir.CI(1))
		xl := b.CountedLoop("ix", ir.CI(0), ir.CI(nx), ir.CI(1))
		{
			iz, iy, ix := zl.IV, yl.IV, xl.IV
			exA := b.Load(f64, b.Idx(Ex, idx3(b, iz, iy, ix)))
			exB := b.Load(f64, b.Idx(Ex, idx3(b, iz, b.Add(iy, ir.CI(1)), ix)))
			eyA := b.Load(f64, b.Idx(Ey, idx3(b, iz, iy, b.Add(ix, ir.CI(1)))))
			eyB := b.Load(f64, b.Idx(Ey, idx3(b, iz, iy, ix)))
			clfV := b.FAdd(b.FSub(exA, exB), b.FSub(eyA, eyB))
			b.Store(f64, clfV, b.Idx(clf, idx2(b, iz, iy)))

			cym := b.Load(f64, b.Idx(cymh, iy))
			cyp := b.Load(f64, b.Idx(cyph, iy))
			bza := b.Load(f64, b.Idx(Bza, idx3(b, iz, iy, ix)))
			tmpV := b.FSub(b.FMul(b.FDiv(cym, cyp), bza), b.FMul(b.FDiv(ch, cyp), clfV))
			b.Store(f64, tmpV, b.Idx(tmp, idx2(b, iz, iy)))

			cxm := b.Load(f64, b.Idx(cxmh, ix))
			cxp := b.Load(f64, b.Idx(cxph, ix))
			zm := b.Load(f64, b.Idx(czm, iz))
			zp := b.Load(f64, b.Idx(czp, iz))
			hz := b.Load(f64, b.Idx(Hz, idx3(b, iz, iy, ix)))
			hzNew := b.FAdd(
				b.FMul(b.FDiv(cxm, cxp), hz),
				b.FSub(
					b.FMul(b.FDiv(b.FMul(mui, zp), cxp), tmpV),
					b.FMul(b.FDiv(b.FMul(mui, zm), cxp), bza)))
			b.Store(f64, hzNew, b.Idx(Hz, idx3(b, iz, iy, ix)))
			b.Store(f64, tmpV, b.Idx(Bza, idx3(b, iz, iy, ix)))
		}
		b.CloseLoop(xl)
		// Boundary column update using Ry/Ax (the PML edge).
		{
			iz, iy := zl.IV, yl.IV
			ry := b.Load(f64, b.Idx(Ry, idx2(b, iz, iy)))
			ax := b.Load(f64, b.Idx(Ax, idx2(b, iz, iy)))
			exA := b.Load(f64, b.Idx(Ex, idx3(b, iz, iy, ir.CI(nx))))
			clfV := b.FAdd(b.FSub(exA, ax), ry)
			b.Store(f64, clfV, b.Idx(clf, idx2(b, iz, iy)))
			cym := b.Load(f64, b.Idx(cymh, iy))
			cyp := b.Load(f64, b.Idx(cyph, iy))
			bza := b.Load(f64, b.Idx(Bza, idx3(b, iz, iy, ir.CI(nx))))
			tmpV := b.FSub(b.FMul(b.FDiv(cym, cyp), bza), b.FMul(b.FDiv(ch, cyp), clfV))
			b.Store(f64, tmpV, b.Idx(Bza, idx3(b, iz, iy, ir.CI(nx))))
		}
		b.CloseLoop(yl)
		b.CloseLoop(zl)
		b.Ret(nil)
	}

	// energy folds Hz into the accumulator array (per-iz energies).
	energy := m.NewFunc("energy", ir.Void(),
		ir.P("Hz", arrT), ir.P("acc", arrT))
	{
		b := ir.NewBuilder(energy)
		zl := b.CountedLoop("iz", ir.CI(0), ir.CI(nz+1), ir.CI(1))
		sum := energy.NewReg("sum", f64)
		b.Assign(sum, b.ConstF(0))
		il := b.CountedLoop("i", ir.CI(0), ir.CI(plane), ir.CI(1))
		off := b.Add(b.Mul(zl.IV, ir.CI(plane)), il.IV)
		b.Assign(sum, b.FAdd(sum, b.Load(f64, b.Idx(energy.Params[0], off))))
		b.CloseLoop(il)
		slot := b.Idx(energy.Params[1], zl.IV)
		b.Store(f64, b.FAdd(b.Load(f64, slot), sum), slot)
		b.CloseLoop(zl)
		b.Ret(nil)
	}

	// main: allocate the 15 structures, init, run Steps, checksum.
	mainF := m.NewFunc("main", i64)
	b := ir.NewBuilder(mainF)
	alloc := func(name string, count int64) *ir.Reg {
		r := b.Alloc(f64, ir.CI(count))
		r.Name = name
		return r
	}
	czm := alloc("czm", nz+1)
	czp := alloc("czp", nz+1)
	cxmh := alloc("cxmh", nx+1)
	cxph := alloc("cxph", nx+1)
	cymh := alloc("cymh", ny+1)
	cyph := alloc("cyph", ny+1)
	Ry := alloc("Ry", (nz+1)*(ny+1))
	Ax := alloc("Ax", (nz+1)*(ny+1))
	clf := alloc("clf", (nz+1)*(ny+1))
	tmp := alloc("tmp", (nz+1)*(ny+1))
	Ex := alloc("Ex", vol)
	Ey := alloc("Ey", vol)
	Hz := alloc("Hz", vol)
	Bza := alloc("Bza", vol)
	acc := alloc("energy_acc", nz+1)

	for _, a := range []struct {
		r *ir.Reg
		n int64
		k int64
	}{
		{czm, nz + 1, 7}, {czp, nz + 1, 5}, {cxmh, nx + 1, 11}, {cxph, nx + 1, 3},
		{cymh, ny + 1, 13}, {cyph, ny + 1, 9},
		{Ry, (nz + 1) * (ny + 1), 17}, {Ax, (nz + 1) * (ny + 1), 19},
		{Ex, vol, 23}, {Ey, vol, 29}, {Hz, vol, 31}, {Bza, vol, 37},
	} {
		b.Call(initArray, a.r, ir.CI(a.n), ir.CI(a.k))
	}

	tl := b.CountedLoop("t", ir.CI(0), ir.CI(cfg.Steps), ir.CI(1))
	b.Call(step, czm, czp, cxmh, cxph, cymh, cyph, Ry, Ax, clf, tmp, Ex, Ey, Hz, Bza)
	b.Call(energy, Hz, acc)
	b.CloseLoop(tl)

	// Checksum: fold accumulator bits.
	check := mainF.NewReg("check", i64)
	b.Assign(check, ir.CI(0))
	cl := b.CountedLoop("c", ir.CI(0), ir.CI(nz+1), ir.CI(1))
	bits := b.Load(i64, b.Idx(acc, cl.IV)) // raw float bits
	mix(b, check, bits)
	b.CloseLoop(cl)
	b.Ret(check)

	m.AssignSites()
	ir.MustVerify(m)
	return &Workload{
		Name:            "ftfdapml",
		Module:          m,
		WorkingSetBytes: uint64(8 * (4*vol + 4*(nz+1)*(ny+1) + 2*(nz+1) + 2*(ny+1) + 2*(nx+1) + (nz + 1))),
		WantDS:          15,
	}
}
