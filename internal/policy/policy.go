// Package policy implements the CaRDS remoting policy selection (paper
// §4.2): given the compiler's per-data-structure static scores and the
// tunable parameter k — the percentage of data structures that should use
// non-remotable (pinned) memory — it decides each structure's placement.
//
// The policies deliberately do NOT depend on data structure sizes, which
// are generally unknown at compile time (the paper's second challenge);
// the runtime's hint-override path (farmem.DSAlloc) handles structures
// that turn out not to fit.
package policy

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"cards/internal/farmem"
)

// Kind enumerates the remoting policies evaluated in Figures 4–7.
type Kind int

// Policies.
const (
	// AllRemotable is the conservative baseline: every structure is
	// remotable and every access guarded (TrackFM's behaviour).
	AllRemotable Kind = iota
	// Linear allocates pinned memory sequentially in program order,
	// switching to remotable memory once local memory is exhausted.
	// The decision is made at runtime, so k is ignored.
	Linear
	// Random pins a random k% of the structures.
	Random
	// MaxReach pins the structures used in the top-k% functions with
	// the longest caller/callee chains (SCC call-graph metric).
	MaxReach
	// MaxUse pins the top-k% structures by eq. 1:
	// ds = MAX(#loops + #functions).
	MaxUse
)

var kindNames = map[Kind]string{
	AllRemotable: "all-remotable",
	Linear:       "linear",
	Random:       "random",
	MaxReach:     "max-reach",
	MaxUse:       "max-use",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("policy(%d)", int(k))
}

// All lists every policy, in the order the figures plot them.
func All() []Kind { return []Kind{AllRemotable, Linear, Random, MaxReach, MaxUse} }

// Parse resolves a policy name.
func Parse(name string) (Kind, error) {
	for k, s := range kindNames {
		if s == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("policy: unknown policy %q", name)
}

// Candidate is one data structure the policy ranks. Scores come from the
// compiler analysis; sizes are deliberately absent.
type Candidate struct {
	ID         int
	UseScore   int
	ReachScore int
}

// Assign computes the placement for every candidate under the given
// policy with threshold k (percent of structures to pin, 0..100). The
// returned slice is indexed by position in cands. seed feeds the Random
// policy; other policies are deterministic.
func Assign(kind Kind, cands []Candidate, k float64, seed int64) []farmem.Placement {
	n := len(cands)
	out := make([]farmem.Placement, n)
	if n == 0 {
		return out
	}
	switch kind {
	case AllRemotable:
		for i := range out {
			out[i] = farmem.PlaceRemotable
		}
	case Linear:
		for i := range out {
			out[i] = farmem.PlaceLinear
		}
	case Random:
		for i := range out {
			out[i] = farmem.PlaceRemotable
		}
		rng := rand.New(rand.NewSource(seed))
		for _, i := range rng.Perm(n)[:pinCount(n, k)] {
			out[i] = farmem.PlacePinned
		}
	case MaxReach:
		rankAndPin(cands, out, k, func(a, b Candidate) bool {
			if a.ReachScore != b.ReachScore {
				return a.ReachScore > b.ReachScore
			}
			return a.ID < b.ID
		})
	case MaxUse:
		rankAndPin(cands, out, k, func(a, b Candidate) bool {
			if a.UseScore != b.UseScore {
				return a.UseScore > b.UseScore
			}
			return a.ID < b.ID
		})
	case Hybrid:
		assignHybrid(cands, out, k)
	}
	return out
}

// pinCount converts the percentage k into a structure count.
func pinCount(n int, k float64) int {
	if k <= 0 {
		return 0
	}
	if k >= 100 {
		return n
	}
	c := int(math.Ceil(float64(n) * k / 100))
	if c > n {
		c = n
	}
	return c
}

// rankAndPin pins the top pinCount candidates under the given order.
func rankAndPin(cands []Candidate, out []farmem.Placement, k float64,
	less func(a, b Candidate) bool) {
	idx := make([]int, len(cands))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return less(cands[idx[i]], cands[idx[j]]) })
	for i := range out {
		out[i] = farmem.PlaceRemotable
	}
	for _, i := range idx[:pinCount(len(cands), k)] {
		out[i] = farmem.PlacePinned
	}
}

// PinnedIDs is a reporting helper: the candidate IDs a policy pinned.
func PinnedIDs(cands []Candidate, placements []farmem.Placement) []int {
	var ids []int
	for i, p := range placements {
		if p == farmem.PlacePinned {
			ids = append(ids, cands[i].ID)
		}
	}
	sort.Ints(ids)
	return ids
}

// Hybrid is this reproduction's implementation of the paper's
// future-work direction ("we aim to explore improved policies to close
// this gap [to Mira] further"): it ranks structures by use score like
// MaxUse, but assigns the structures *below* the cut PlaceLinear instead
// of PlaceRemotable. The ranked-hot structures are pinned eagerly; the
// rest still consume whatever pinned memory remains at allocation time,
// so ample local memory is never wasted — the behaviour that lets Mira
// pull away from the static k policies in Figure 8.
const Hybrid Kind = MaxUse + 1

// Extended lists every policy including post-paper extensions.
func Extended() []Kind { return append(All(), Hybrid) }

func init() {
	kindNames[Hybrid] = "hybrid"
}

// assignHybrid implements the Hybrid policy.
func assignHybrid(cands []Candidate, out []farmem.Placement, k float64) {
	rankAndPin(cands, out, k, func(a, b Candidate) bool {
		if a.UseScore != b.UseScore {
			return a.UseScore > b.UseScore
		}
		if a.ReachScore != b.ReachScore {
			return a.ReachScore > b.ReachScore
		}
		return a.ID < b.ID
	})
	for i := range out {
		if out[i] == farmem.PlaceRemotable {
			out[i] = farmem.PlaceLinear
		}
	}
}
