package policy

import (
	"testing"
	"testing/quick"

	"cards/internal/farmem"
)

func candidates() []Candidate {
	return []Candidate{
		{ID: 0, UseScore: 3, ReachScore: 2},
		{ID: 1, UseScore: 4, ReachScore: 2}, // highest use
		{ID: 2, UseScore: 1, ReachScore: 5}, // highest reach
		{ID: 3, UseScore: 2, ReachScore: 1},
	}
}

func TestAllRemotable(t *testing.T) {
	p := Assign(AllRemotable, candidates(), 50, 1)
	for i, pl := range p {
		if pl != farmem.PlaceRemotable {
			t.Errorf("cand %d = %v, want remotable", i, pl)
		}
	}
}

func TestLinearIgnoresK(t *testing.T) {
	for _, k := range []float64{0, 25, 100} {
		p := Assign(Linear, candidates(), k, 1)
		for i, pl := range p {
			if pl != farmem.PlaceLinear {
				t.Errorf("k=%v cand %d = %v, want linear", k, i, pl)
			}
		}
	}
}

func TestMaxUsePinsHighestUse(t *testing.T) {
	// Listing 1 scenario: k=50% of 4 structures pins the top 2 by use.
	p := Assign(MaxUse, candidates(), 50, 1)
	pinned := PinnedIDs(candidates(), p)
	if len(pinned) != 2 || pinned[0] != 0 || pinned[1] != 1 {
		t.Fatalf("pinned = %v, want [0 1] (use scores 3 and 4)", pinned)
	}
}

func TestMaxReachPinsDeepestChains(t *testing.T) {
	p := Assign(MaxReach, candidates(), 25, 1)
	pinned := PinnedIDs(candidates(), p)
	if len(pinned) != 1 || pinned[0] != 2 {
		t.Fatalf("pinned = %v, want [2] (reach 5)", pinned)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	a := Assign(Random, candidates(), 50, 42)
	b := Assign(Random, candidates(), 50, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same assignment")
		}
	}
	pinned := PinnedIDs(candidates(), a)
	if len(pinned) != 2 {
		t.Fatalf("random pinned %d, want 2 at k=50", len(pinned))
	}
}

func TestPinCountBoundaries(t *testing.T) {
	cases := []struct {
		n    int
		k    float64
		want int
	}{
		{4, 0, 0}, {4, 100, 4}, {4, 50, 2}, {4, 25, 1}, {2, 50, 1},
		{3, 50, 2}, {4, 150, 4}, {4, -5, 0},
	}
	for _, c := range cases {
		if got := pinCount(c.n, c.k); got != c.want {
			t.Errorf("pinCount(%d, %v) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestTieBreakDeterminism(t *testing.T) {
	cands := []Candidate{{ID: 0, UseScore: 5}, {ID: 1, UseScore: 5}, {ID: 2, UseScore: 5}}
	p1 := Assign(MaxUse, cands, 34, 0)
	p2 := Assign(MaxUse, cands, 34, 99)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("tie-breaking must be seed-independent")
		}
	}
	pinned := PinnedIDs(cands, p1)
	if len(pinned) != 2 || pinned[0] != 0 || pinned[1] != 1 {
		t.Fatalf("pinned = %v, want lowest IDs first on tie", pinned)
	}
}

func TestParseAndString(t *testing.T) {
	for _, k := range All() {
		got, err := Parse(k.String())
		if err != nil || got != k {
			t.Errorf("Parse(%s) = %v, %v", k, got, err)
		}
	}
	if _, err := Parse("bogus"); err == nil {
		t.Error("Parse should reject unknown names")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestEmptyCandidates(t *testing.T) {
	for _, k := range All() {
		if got := Assign(k, nil, 50, 1); len(got) != 0 {
			t.Errorf("%s: non-empty result for empty candidates", k)
		}
	}
}

// Property: every policy pins exactly pinCount structures (except Linear
// and AllRemotable which pin none statically), and placements only use
// defined values.
func TestAssignCountsProperty(t *testing.T) {
	f := func(nRaw uint8, kRaw uint8, seed int64) bool {
		n := int(nRaw%24) + 1
		k := float64(kRaw % 120)
		cands := make([]Candidate, n)
		for i := range cands {
			cands[i] = Candidate{ID: i, UseScore: i * 7 % 13, ReachScore: i * 5 % 11}
		}
		for _, kind := range All() {
			p := Assign(kind, cands, k, seed)
			if len(p) != n {
				return false
			}
			pinned := 0
			for _, pl := range p {
				switch pl {
				case farmem.PlacePinned:
					pinned++
				case farmem.PlaceRemotable, farmem.PlaceLinear:
				default:
					return false
				}
			}
			switch kind {
			case Linear, AllRemotable:
				if pinned != 0 {
					return false
				}
			default:
				if pinned != pinCount(n, k) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHybridPlacement(t *testing.T) {
	p := Assign(Hybrid, candidates(), 50, 1)
	pinned := PinnedIDs(candidates(), p)
	// Top 2 by use score: IDs 0 (3) and 1 (4).
	if len(pinned) != 2 || pinned[0] != 0 || pinned[1] != 1 {
		t.Fatalf("hybrid pinned = %v, want [0 1]", pinned)
	}
	// Everything below the cut is Linear, never Remotable.
	for i, pl := range p {
		if pl == farmem.PlaceRemotable {
			t.Errorf("cand %d is remotable; hybrid should use linear for the tail", i)
		}
	}
	if got, err := Parse("hybrid"); err != nil || got != Hybrid {
		t.Fatalf("Parse(hybrid) = %v, %v", got, err)
	}
	if len(Extended()) != len(All())+1 {
		t.Fatalf("Extended() should add exactly the hybrid policy")
	}
}
