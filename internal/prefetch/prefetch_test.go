package prefetch

import (
	"testing"

	"cards/internal/farmem"
)

const objSize = 4096

// scanSetup builds a remotable DS of n objects whose contents are already
// remote (written, then pushed out by touching a filler DS).
func scanSetup(t *testing.T, nObjs int, budgetObjs int) (*farmem.Runtime, *farmem.DS, uint64) {
	t.Helper()
	r := farmem.New(farmem.Config{
		PinnedBudget:    1 << 20,
		RemotableBudget: uint64(budgetObjs * objSize),
	})
	if _, err := r.RegisterDS(0, farmem.DSMeta{Name: "data", ObjSize: objSize}); err != nil {
		t.Fatal(err)
	}
	r.SetPlacement(0, farmem.PlaceRemotable)
	addr, err := r.DSAlloc(0, int64(nObjs*objSize))
	if err != nil {
		t.Fatal(err)
	}
	// Populate: write object i with value i, in reverse so that a
	// subsequent forward scan finds early objects evicted.
	for i := nObjs - 1; i >= 0; i-- {
		p, err := r.Guard(addr+uint64(i*objSize), true)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.WriteWord(p, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	return r, r.DSByID(0), addr
}

func TestStrideMajority(t *testing.T) {
	s := NewStride(4)
	if _, ok := s.majority(); ok {
		t.Fatal("empty history should have no majority")
	}
	for _, d := range []int{1, 1, 1, 2, 1} {
		s.history[s.histPos] = d
		s.histPos = (s.histPos + 1) % len(s.history)
		s.histLen++
	}
	d, ok := s.majority()
	if !ok || d != 1 {
		t.Fatalf("majority = %d, %v; want 1, true", d, ok)
	}
}

func TestStridePrefetchHidesScanMisses(t *testing.T) {
	nObjs, budget := 64, 32
	r, d, addr := scanSetup(t, nObjs, budget)
	r.SetPrefetcher(0, NewStride(8))

	// Forward scan: after the detector locks on, later objects should be
	// in flight before demand access reaches them.
	for i := 0; i < nObjs; i++ {
		p, err := r.Guard(addr+uint64(i*objSize), false)
		if err != nil {
			t.Fatal(err)
		}
		v, _ := r.ReadWord(p)
		if v != uint64(i) {
			t.Fatalf("obj %d = %d (data corrupted by prefetch)", i, v)
		}
	}
	st := d.Stats()
	if st.PrefetchIssued == 0 {
		t.Fatal("stride prefetcher never fired")
	}
	if st.PrefetchHits == 0 {
		t.Fatal("no prefetch hits on a pure forward scan")
	}
	if acc := Accuracy(d); acc < 0.5 {
		t.Errorf("accuracy = %.2f, want >= 0.5 on forward scan", acc)
	}
	if cov := Coverage(d); cov < 0.3 {
		t.Errorf("coverage = %.2f, want >= 0.3 on forward scan", cov)
	}
}

func TestStridePrefetchReducesTime(t *testing.T) {
	run := func(pf farmem.Prefetcher) uint64 {
		nObjs, budget := 64, 32
		r, _, addr := scanSetup(t, nObjs, budget)
		if pf != nil {
			r.SetPrefetcher(0, pf)
		}
		start := r.Clock().Now()
		for i := 0; i < nObjs; i++ {
			if _, err := r.Guard(addr+uint64(i*objSize), false); err != nil {
				t.Fatal(err)
			}
		}
		return r.Clock().Now() - start
	}
	plain := run(nil)
	withPF := run(NewStride(8))
	if withPF >= plain {
		t.Fatalf("stride prefetch did not reduce scan time: %d vs %d", withPF, plain)
	}
}

func TestStrideBackwardScan(t *testing.T) {
	nObjs, budget := 64, 32
	r, d, addr := scanSetup(t, nObjs, budget)
	r.SetPrefetcher(0, NewStride(8))
	// Touch the filler direction first: populate wrote in reverse, so
	// the tail of the array is resident; scan backwards from the front.
	for i := nObjs - 1; i >= 0; i-- {
		if _, err := r.Guard(addr+uint64(i*objSize), false); err != nil {
			t.Fatal(err)
		}
	}
	// Negative stride must be detected too (deltas of -1).
	if d.Stats().PrefetchIssued == 0 {
		t.Skip("backward scan stayed resident; no pressure")
	}
}

func TestJumpPrefetcherListChase(t *testing.T) {
	// Linked list with 64-byte objects: node i in object i.
	elem := 64
	nNodes := 256
	budget := 64 * elem
	r := farmem.New(farmem.Config{PinnedBudget: 1 << 20, RemotableBudget: uint64(budget)})
	r.RegisterDS(0, farmem.DSMeta{Name: "list", ObjSize: elem, ElemSize: elem,
		Pattern: farmem.PatternPointerChase, PtrOffsets: []int{8}})
	r.SetPlacement(0, farmem.PlaceRemotable)
	addr, err := r.DSAlloc(0, int64(nNodes*elem))
	if err != nil {
		t.Fatal(err)
	}
	// Build list: node i = {val: i, next: &node[i+1]}.
	for i := nNodes - 1; i >= 0; i-- {
		base := addr + uint64(i*elem)
		p, err := r.Guard(base, true)
		if err != nil {
			t.Fatal(err)
		}
		r.WriteWord(p, uint64(i))
		p2, err := r.Guard(base+8, true)
		if err != nil {
			t.Fatal(err)
		}
		next := uint64(0)
		if i+1 < nNodes {
			next = addr + uint64((i+1)*elem)
		}
		r.WriteWord(p2, next)
	}

	chase := func(pf farmem.Prefetcher) uint64 {
		// Fresh runtime per measurement for identical cold state.
		r2 := farmem.New(farmem.Config{PinnedBudget: 1 << 20, RemotableBudget: uint64(budget)})
		r2.RegisterDS(0, farmem.DSMeta{Name: "list", ObjSize: elem, ElemSize: elem,
			Pattern: farmem.PatternPointerChase, PtrOffsets: []int{8}})
		r2.SetPlacement(0, farmem.PlaceRemotable)
		a2, _ := r2.DSAlloc(0, int64(nNodes*elem))
		for i := nNodes - 1; i >= 0; i-- {
			base := a2 + uint64(i*elem)
			p, _ := r2.Guard(base, true)
			r2.WriteWord(p, uint64(i))
			p2, _ := r2.Guard(base+8, true)
			next := uint64(0)
			if i+1 < nNodes {
				next = a2 + uint64((i+1)*elem)
			}
			r2.WriteWord(p2, next)
		}
		if pf != nil {
			r2.SetPrefetcher(0, pf)
		}
		start := r2.Clock().Now()
		cur := a2
		sum := uint64(0)
		for cur != 0 {
			p, err := r2.Guard(cur, false)
			if err != nil {
				t.Fatal(err)
			}
			v, _ := r2.ReadWord(p)
			sum += v
			pn, err := r2.Guard(cur+8, false)
			if err != nil {
				t.Fatal(err)
			}
			cur, _ = r2.ReadWord(pn)
		}
		wantSum := uint64(nNodes*(nNodes-1)) / 2
		if sum != wantSum {
			t.Fatalf("list sum = %d, want %d", sum, wantSum)
		}
		return r2.Clock().Now() - start
	}
	plain := chase(nil)
	jumped := chase(NewJump(4, 8))
	if jumped >= plain {
		t.Fatalf("jump prefetcher did not help: %d vs %d cycles", jumped, plain)
	}
	_ = addr
}

func TestGreedyFollowsPointers(t *testing.T) {
	// Structure where object 0's element points at object 5; object 5
	// must be REMOTE for the prefetch to have work to do, so populate
	// everything and let eviction pressure push it out.
	elem := 64
	nObjs := 64
	budgetObjs := 16
	r := farmem.New(farmem.Config{PinnedBudget: 1 << 20, RemotableBudget: uint64(budgetObjs * elem)})
	r.RegisterDS(0, farmem.DSMeta{Name: "t", ObjSize: elem, ElemSize: elem,
		PtrOffsets: []int{8}})
	r.SetPlacement(0, farmem.PlaceRemotable)
	addr, _ := r.DSAlloc(0, int64(nObjs*elem))
	// Touch object 5 first, then flood the cache so it is evicted.
	if _, err := r.Guard(addr+uint64(5*elem), true); err != nil {
		t.Fatal(err)
	}
	for i := nObjs - 1; i >= 8; i-- {
		if _, err := r.Guard(addr+uint64(i*elem), true); err != nil {
			t.Fatal(err)
		}
	}
	// obj 0 field@8 -> obj 5.
	p, err := r.Guard(addr+8, true)
	if err != nil {
		t.Fatal(err)
	}
	r.WriteWord(p, addr+uint64(5*elem))

	d := r.DSByID(0)
	g := NewGreedy(elem, []int{8})
	g.OnAccess(r, d, 0, false)
	if d.Stats().PrefetchIssued != 1 {
		t.Fatalf("greedy issued %d prefetches, want 1 (obj 5)", d.Stats().PrefetchIssued)
	}
	// Accessing obj 5 should now be a prefetch hit.
	if _, err := r.Guard(addr+uint64(5*elem), false); err != nil {
		t.Fatal(err)
	}
	if d.Stats().PrefetchHits != 1 {
		t.Fatal("obj 5 access was not a prefetch hit")
	}
}

func TestGreedyIgnoresUntaggedAndSelf(t *testing.T) {
	elem := 64
	r := farmem.New(farmem.Config{PinnedBudget: 1 << 20, RemotableBudget: uint64(16 * elem)})
	r.RegisterDS(0, farmem.DSMeta{Name: "t", ObjSize: elem, ElemSize: elem, PtrOffsets: []int{8}})
	r.SetPlacement(0, farmem.PlaceRemotable)
	addr, _ := r.DSAlloc(0, int64(4*elem))
	p, _ := r.Guard(addr+8, true)
	r.WriteWord(p, 12345) // untagged garbage
	d := r.DSByID(0)
	NewGreedy(elem, []int{8}).OnAccess(r, d, 0, false)
	if d.Stats().PrefetchIssued != 0 {
		t.Fatal("greedy must not prefetch untagged words")
	}
	// Self-pointer: no prefetch.
	p2, _ := r.Guard(addr+8, true)
	r.WriteWord(p2, addr)
	NewGreedy(elem, []int{8}).OnAccess(r, d, 0, false)
	if d.Stats().PrefetchIssued != 0 {
		t.Fatal("greedy must not prefetch the current object")
	}
}

func TestAdaptiveDisablesInaccuratePrefetcher(t *testing.T) {
	// A hostile access pattern (random-ish jumps) makes stride prefetch
	// useless; adaptive must stop issuing.
	nObjs := 256
	r := farmem.New(farmem.Config{PinnedBudget: 1 << 20, RemotableBudget: uint64(32 * objSize)})
	r.RegisterDS(0, farmem.DSMeta{Name: "d", ObjSize: objSize})
	r.SetPlacement(0, farmem.PlaceRemotable)
	addr, _ := r.DSAlloc(0, int64(nObjs*objSize))
	for i := nObjs - 1; i >= 0; i-- {
		p, err := r.Guard(addr+uint64(i*objSize), true)
		if err != nil {
			t.Fatal(err)
		}
		r.WriteWord(p, uint64(i))
	}
	a := NewAdaptive(NewStride(8))
	a.Window = 32
	r.SetPrefetcher(0, a)
	// Strided bursts of 3 then a big jump: detector keeps firing while
	// hits stay rare.
	idx := 0
	for step := 0; step < 2000; step++ {
		if _, err := r.Guard(addr+uint64(idx*objSize), false); err != nil {
			t.Fatal(err)
		}
		if step%3 == 2 {
			idx = (idx + 61) % nObjs
		} else {
			idx = (idx + 1) % nObjs
		}
	}
	if a.disabledUntil == 0 && Accuracy(r.DSByID(0)) < a.MinAccuracy {
		t.Errorf("adaptive never disabled despite accuracy %.2f", Accuracy(r.DSByID(0)))
	}
}

func TestSelect(t *testing.T) {
	cases := []struct {
		h    Hints
		want string
	}{
		{Hints{Pattern: farmem.PatternStrided}, "adaptive(stride)"},
		{Hints{Pattern: farmem.PatternPointerChase, PtrOffsets: []int{8}}, "adaptive(jump-pointer)"},
		{Hints{Pattern: farmem.PatternPointerChase, PtrOffsets: []int{8, 16}}, "adaptive(greedy-recursive)"},
	}
	for _, c := range cases {
		p := Select(c.h)
		if p == nil || p.Name() != c.want {
			t.Errorf("Select(%+v) = %v, want %s", c.h, name(p), c.want)
		}
	}
	if p := Select(Hints{Pattern: farmem.PatternIndirect}); p == nil || p.Name() != "adaptive(markov)" {
		t.Errorf("indirect pattern should get the adaptive Markov prefetcher, got %v", name(p))
	}
	if Select(Hints{Pattern: farmem.PatternUnknown}) != nil {
		t.Error("unknown pattern should get no prefetcher")
	}
}

func name(p farmem.Prefetcher) string {
	if p == nil {
		return "<nil>"
	}
	return p.Name()
}
