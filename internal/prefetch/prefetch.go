// Package prefetch implements the CaRDS per-data-structure prefetchers
// (paper §4.2 "Prefetching Policy Selection"): a majority stride-based
// prefetcher, a greedy recursive prefetcher, and a jump pointer
// prefetcher, plus the selector that assigns each data structure the
// most appropriate policy from its compiler-provided hints and an
// adaptive wrapper that disables a prefetcher whose measured accuracy is
// poor (the dynamic half of the static+dynamic co-design).
//
// Because every data structure owns a dedicated prefetcher instance, a
// pointer-chasing list and a strided array in the same program prefetch
// independently — the property Figure 9 measures against TrackFM's
// single induction-variable prefetcher.
package prefetch

import (
	"cards/internal/farmem"
	"cards/internal/stats"
)

// Depth is the default number of objects a prefetcher keeps in flight
// ahead of the access stream. Runtime.PrefetchObj only issues the fetch:
// against an AsyncStore (the pipelined TCP client) all Depth reads
// overlap in one in-flight window rather than paying Depth round trips.
const Depth = 8

// Stride is the majority stride-based prefetcher. It watches the deltas
// between consecutive object indices; once a delta wins a majority vote
// over a small history window, it prefetches along that delta.
type Stride struct {
	depth    int
	last     int
	haveLast bool
	history  [8]int
	histLen  int
	histPos  int
}

// NewStride creates a stride prefetcher with the given lookahead depth.
func NewStride(depth int) *Stride {
	if depth <= 0 {
		depth = Depth
	}
	return &Stride{depth: depth}
}

// Name implements farmem.Prefetcher.
func (*Stride) Name() string { return "stride" }

// OnAccess implements farmem.Prefetcher.
func (s *Stride) OnAccess(r *farmem.Runtime, d *farmem.DS, idx int, miss bool) {
	if s.haveLast {
		delta := idx - s.last
		if delta != 0 {
			s.history[s.histPos] = delta
			s.histPos = (s.histPos + 1) % len(s.history)
			if s.histLen < len(s.history) {
				s.histLen++
			}
		}
	}
	s.last = idx
	s.haveLast = true

	delta, ok := s.majority()
	if !ok {
		return
	}
	for i := 1; i <= s.depth; i++ {
		r.PrefetchObj(d, idx+i*delta)
	}
}

// majority returns the winning delta if one delta holds a strict majority
// of the history window.
func (s *Stride) majority() (int, bool) {
	if s.histLen < 2 {
		return 0, false
	}
	// Boyer–Moore majority vote over the filled portion.
	cand, count := 0, 0
	for i := 0; i < s.histLen; i++ {
		v := s.history[i]
		switch {
		case count == 0:
			cand, count = v, 1
		case v == cand:
			count++
		default:
			count--
		}
	}
	// Verify.
	n := 0
	for i := 0; i < s.histLen; i++ {
		if s.history[i] == cand {
			n++
		}
	}
	if 2*n > s.histLen && cand != 0 {
		return cand, true
	}
	return 0, false
}

// Greedy is the greedy recursive prefetcher [Luk & Mowry]: whenever an
// object of a linked structure is localized, it inspects the pointer
// fields of the resident element(s) and prefetches every child object
// they reference. Suited to trees and graphs where the successor is not
// a fixed allocation-order jump away.
type Greedy struct {
	// Offsets are the pointer-field byte offsets within one element
	// (compiler hint from ds_init).
	Offsets  []int
	ElemSize int
}

// NewGreedy creates a greedy recursive prefetcher from compiler hints.
func NewGreedy(elemSize int, ptrOffsets []int) *Greedy {
	if elemSize <= 0 {
		elemSize = 8
	}
	return &Greedy{Offsets: ptrOffsets, ElemSize: elemSize}
}

// Name implements farmem.Prefetcher.
func (*Greedy) Name() string { return "greedy-recursive" }

// OnAccess implements farmem.Prefetcher.
func (g *Greedy) OnAccess(r *farmem.Runtime, d *farmem.DS, idx int, miss bool) {
	if len(g.Offsets) == 0 {
		return
	}
	// Scan every element resident in this object.
	for elemBase := 0; elemBase+g.ElemSize <= d.Meta.ObjSize; elemBase += g.ElemSize {
		for _, off := range g.Offsets {
			w, ok := r.ObjectWord(d, idx, elemBase+off)
			if !ok {
				return
			}
			if !farmem.IsTagged(w) {
				continue
			}
			// Child may live in this or another structure.
			child := r.DSByID(farmem.DSOf(w))
			if child == nil {
				continue
			}
			childOff := farmem.OffOf(w)
			if childOff >= child.Size() {
				continue
			}
			childIdx := int(childOff) / child.Meta.ObjSize
			if child == d && childIdx == idx {
				continue
			}
			r.PrefetchObj(child, childIdx)
		}
	}
}

// Jump is the jump pointer prefetcher [Luk & Mowry]: for linked
// structures whose nodes were allocated in traversal order (the common
// case for list builds), object index order approximates traversal
// order, so it prefetches a fixed jump ahead in index space. This hides
// the full chain latency that greedy prefetching (one hop ahead) cannot.
type Jump struct {
	jump  int
	depth int
}

// NewJump creates a jump pointer prefetcher that runs `jump` objects
// ahead with the given in-flight depth.
func NewJump(jump, depth int) *Jump {
	if jump <= 0 {
		jump = 4
	}
	if depth <= 0 {
		depth = Depth
	}
	return &Jump{jump: jump, depth: depth}
}

// Name implements farmem.Prefetcher.
func (*Jump) Name() string { return "jump-pointer" }

// OnAccess implements farmem.Prefetcher.
func (j *Jump) OnAccess(r *farmem.Runtime, d *farmem.DS, idx int, miss bool) {
	for i := 0; i < j.depth; i++ {
		r.PrefetchObj(d, idx+j.jump+i)
	}
}

// Chase is the traversal-offload prefetcher: for single-successor
// linked structures over a far tier that speaks the chase verbs, it
// ships a compact traversal program (next-pointer offset + hop budget)
// and lets the server walk the chain — one round trip delivers the
// whole lookahead window instead of one object per dependent RTT. When
// offload is unavailable (plain store, downgraded session, open
// breaker, cross-structure edge) it degrades to the wrapped per-hop
// fallback, so a chase-capable and a chase-less deployment run the same
// policy selection.
type Chase struct {
	hops     int
	fallback farmem.Prefetcher
}

// NewChase creates a traversal-offload prefetcher shipping programs
// with the given hop budget, degrading to fallback when offload cannot
// cover the traversal. A nil fallback disables per-hop degradation.
func NewChase(hops int, fallback farmem.Prefetcher) *Chase {
	if hops <= 0 {
		hops = farmem.DefaultChaseHops
	}
	return &Chase{hops: hops, fallback: fallback}
}

// Name implements farmem.Prefetcher.
func (c *Chase) Name() string {
	if c.fallback != nil {
		return "chase-offload(" + c.fallback.Name() + ")"
	}
	return "chase-offload"
}

// OnAccess implements farmem.Prefetcher.
func (c *Chase) OnAccess(r *farmem.Runtime, d *farmem.DS, idx int, miss bool) {
	if r.ChasePrefetch(d, idx, c.hops) {
		return
	}
	if c.fallback != nil {
		c.fallback.OnAccess(r, d, idx, miss)
	}
}

// Adaptive wraps a prefetcher and monitors the standard prefetching
// metrics (accuracy and coverage, paper §4.2); if accuracy drops below
// the threshold after a trial window, prefetching is disabled for a
// back-off period before being retried.
type Adaptive struct {
	Inner farmem.Prefetcher

	// MinAccuracy is the disable threshold (default 0.25).
	MinAccuracy float64
	// Window is the number of issued prefetches per evaluation (default 128).
	Window uint64

	disabledUntil uint64 // re-enable when issued count passes this
	lastIssued    uint64
	lastHits      uint64
	observed      uint64
}

// NewAdaptive wraps inner with accuracy-based disabling.
func NewAdaptive(inner farmem.Prefetcher) *Adaptive {
	return &Adaptive{Inner: inner, MinAccuracy: 0.25, Window: 128}
}

// Name implements farmem.Prefetcher.
func (a *Adaptive) Name() string { return "adaptive(" + a.Inner.Name() + ")" }

// OnAccess implements farmem.Prefetcher.
func (a *Adaptive) OnAccess(r *farmem.Runtime, d *farmem.DS, idx int, miss bool) {
	st := d.Stats()
	a.observed++
	if a.disabledUntil > 0 {
		if a.observed < a.disabledUntil {
			return
		}
		// Back-off expired: retry.
		a.disabledUntil = 0
		a.lastIssued, a.lastHits = st.PrefetchIssued, st.PrefetchHits
	}
	issued := st.PrefetchIssued - a.lastIssued
	if issued >= a.Window {
		hits := st.PrefetchHits - a.lastHits
		if stats.Ratio(hits, issued) < a.MinAccuracy {
			// Poor accuracy: pause for 4 windows of accesses.
			a.disabledUntil = a.observed + 4*a.Window
			return
		}
		a.lastIssued, a.lastHits = st.PrefetchIssued, st.PrefetchHits
	}
	a.Inner.OnAccess(r, d, idx, miss)
}

// Accuracy returns hits/issued for a data structure's prefetcher.
func Accuracy(d *farmem.DS) float64 {
	st := d.Stats()
	return stats.Ratio(st.PrefetchHits, st.PrefetchIssued)
}

// Coverage returns the fraction of would-be misses hidden by prefetching.
func Coverage(d *farmem.DS) float64 {
	st := d.Stats()
	return stats.Ratio(st.PrefetchHits, st.PrefetchHits+st.Misses)
}

// Hints carries the compiler information the selector consumes; it
// mirrors the relevant DSMeta fields.
type Hints struct {
	Pattern    farmem.Pattern
	Recursive  bool
	ElemSize   int
	PtrOffsets []int
	Stride     int64
	ObjSize    int
}

// Select returns the most appropriate prefetcher for a data structure
// given its compiler hints (paper: "Based on the static and dynamic
// information available for each data structure, CaRDS selects the most
// appropriate prefetch policy"), wrapped in the adaptive monitor.
func Select(h Hints) farmem.Prefetcher {
	var inner farmem.Prefetcher
	switch h.Pattern {
	case farmem.PatternStrided:
		inner = NewStride(Depth)
	case farmem.PatternPointerChase:
		if len(h.PtrOffsets) > 1 {
			// Multiple out-pointers per element: tree/graph node —
			// greedy recursive expansion.
			inner = NewGreedy(h.ElemSize, h.PtrOffsets)
		} else if h.Recursive && len(h.PtrOffsets) == 1 {
			// Single successor: the shape a server-side traversal
			// program can describe. Offload the chase when the far tier
			// speaks the verbs; the wrapped jump prefetcher is the
			// per-hop degradation for chase-less deployments.
			return NewChase(farmem.DefaultChaseHops,
				NewAdaptive(NewJump(4, Depth)))
		} else {
			// Single successor: list — jump pointers hide full chain
			// latency.
			inner = NewJump(4, Depth)
		}
	case farmem.PatternIndirect:
		// A gather's targets are unpredictable from index order, but
		// REPEATED gathers (re-running a query, BFS from nearby
		// frontiers, iterating a map twice) revisit the same object
		// sequence — which the history-based Markov prefetcher learns.
		// The adaptive wrapper shuts it off when the workload never
		// repeats.
		inner = NewMarkov()
	default:
		return nil
	}
	return NewAdaptive(inner)
}
