package prefetch

import (
	"math/rand"
	"testing"

	"cards/internal/farmem"
)

// permutationRuntime builds a remotable DS of nObjs objects whose data is
// already remote, and returns a walk function that touches the objects in
// a fixed pseudo-random permutation.
func permutationRuntime(t *testing.T, nObjs, budgetObjs int, seed int64) (*farmem.Runtime, func() uint64, []int) {
	t.Helper()
	obj := 4096
	r := farmem.New(farmem.Config{
		PinnedBudget:    1 << 20,
		RemotableBudget: uint64(budgetObjs * obj),
	})
	r.RegisterDS(0, farmem.DSMeta{Name: "perm", ObjSize: obj})
	r.SetPlacement(0, farmem.PlaceRemotable)
	addr, err := r.DSAlloc(0, int64(nObjs*obj))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nObjs; i++ {
		p, err := r.Guard(addr+uint64(i*obj), true)
		if err != nil {
			t.Fatal(err)
		}
		r.WriteWord(p, uint64(i))
	}
	perm := rand.New(rand.NewSource(seed)).Perm(nObjs)
	walk := func() uint64 {
		var sum uint64
		for _, i := range perm {
			p, err := r.Guard(addr+uint64(i*obj), false)
			if err != nil {
				t.Fatal(err)
			}
			v, _ := r.ReadWord(p)
			sum += v
		}
		return sum
	}
	return r, walk, perm
}

func TestMarkovLearnsRepeatedTraversal(t *testing.T) {
	nObjs, budget := 64, 24
	want := uint64(nObjs*(nObjs-1)) / 2

	measure := func(pf farmem.Prefetcher) (uint64, farmem.DSStats) {
		r, walk, _ := permutationRuntime(t, nObjs, budget, 7)
		if pf != nil {
			r.SetPrefetcher(0, pf)
		}
		start := r.Clock().Now()
		for pass := 0; pass < 4; pass++ {
			if got := walk(); got != want {
				t.Fatalf("walk sum = %d, want %d", got, want)
			}
		}
		return r.Clock().Now() - start, r.DSByID(0).Stats()
	}

	plain, _ := measure(nil)
	stride, _ := measure(NewStride(8))
	markov, st := measure(NewMarkov())

	// The permutation defeats the stride prefetcher (no majority delta)
	// but is identical every pass, so Markov covers passes 2..4.
	if st.PrefetchHits == 0 {
		t.Fatal("markov never hit")
	}
	if markov >= plain {
		t.Errorf("markov (%d cycles) should beat no prefetching (%d)", markov, plain)
	}
	if markov >= stride {
		t.Errorf("markov (%d cycles) should beat stride (%d) on a repeated permutation",
			markov, stride)
	}
	acc := float64(st.PrefetchHits) / float64(st.PrefetchIssued)
	t.Logf("plain=%d stride=%d markov=%d cycles, markov hits=%d acc=%.2f",
		plain, stride, markov, st.PrefetchHits, acc)
}

func TestMarkovTableBounds(t *testing.T) {
	mk := NewMarkov()
	mk.MaxEntries = 8
	mk.SuccessorsPerObj = 2
	// Feed a long random transition stream; the table must stay bounded.
	rng := rand.New(rand.NewSource(1))
	prev := 0
	for i := 0; i < 10000; i++ {
		next := rng.Intn(1000)
		mk.learn(prev, next)
		prev = next
	}
	if len(mk.table) > mk.MaxEntries+1 {
		t.Fatalf("table grew to %d entries (cap %d)", len(mk.table), mk.MaxEntries)
	}
	for k, edges := range mk.table {
		if len(edges) > mk.SuccessorsPerObj {
			t.Fatalf("entry %d has %d successors (cap %d)", k, len(edges), mk.SuccessorsPerObj)
		}
	}
}

func TestMarkovRequiresEvidence(t *testing.T) {
	mk := NewMarkov()
	mk.learn(1, 2)
	if _, ok := mk.best(1); ok {
		t.Fatal("a single observation should not trigger prefetching")
	}
	mk.learn(1, 2)
	next, ok := mk.best(1)
	if !ok || next != 2 {
		t.Fatalf("best(1) = %d, %v; want 2 after two observations", next, ok)
	}
	if _, ok := mk.best(99); ok {
		t.Fatal("unknown object should have no prediction")
	}
}

func TestMarkovPrefersStrongerSuccessor(t *testing.T) {
	mk := NewMarkov()
	for i := 0; i < 5; i++ {
		mk.learn(1, 2)
	}
	for i := 0; i < 2; i++ {
		mk.learn(1, 3)
	}
	next, ok := mk.best(1)
	if !ok || next != 2 {
		t.Fatalf("best(1) = %d, want the 5-count successor 2", next)
	}
}
