package prefetch

import "cards/internal/farmem"

// Markov is a history-based (first-order Markov) prefetcher — this
// reproduction's take on the paper's closing observation that "the
// combination of static and dynamic information per data structure
// creates opportunities for advancing prefetching algorithms in CaRDS".
//
// It learns, per object, which objects tend to be touched next, and
// prefetches the learned successors. Unlike the stride and jump-pointer
// prefetchers it needs no structural regularity at all — only
// *repetition*: the second traversal of any fixed access sequence
// (iterating a hash map in bucket order, replaying a query plan,
// re-walking a tree) is covered even when the sequence looks random.
//
// The table is bounded: each object keeps up to SuccessorsPerObj learned
// successors with saturating confidence counters, and the whole table is
// capped at MaxEntries objects with random-ish replacement (the entry
// for the object being updated always wins).
type Markov struct {
	// SuccessorsPerObj bounds the learned successors per object.
	SuccessorsPerObj int
	// MaxEntries bounds the table size (objects tracked).
	MaxEntries int
	// Depth is how many steps of the learned chain to prefetch.
	Depth int

	table map[int][]markovEdge
	last  int
	have  bool
}

type markovEdge struct {
	next  int
	count uint16
}

// NewMarkov creates a Markov prefetcher with sensible bounds.
func NewMarkov() *Markov {
	return &Markov{
		SuccessorsPerObj: 3,
		MaxEntries:       1 << 16,
		Depth:            4,
		table:            make(map[int][]markovEdge),
	}
}

// Name implements farmem.Prefetcher.
func (mk *Markov) Name() string { return "markov" }

// OnAccess implements farmem.Prefetcher.
func (mk *Markov) OnAccess(r *farmem.Runtime, d *farmem.DS, idx int, miss bool) {
	if mk.have && mk.last != idx {
		mk.learn(mk.last, idx)
	}
	mk.last, mk.have = idx, true

	// Chase the highest-confidence chain Depth steps ahead.
	cur := idx
	seen := map[int]bool{idx: true}
	for step := 0; step < mk.Depth; step++ {
		next, ok := mk.best(cur)
		if !ok || seen[next] {
			return
		}
		seen[next] = true
		r.PrefetchObj(d, next)
		cur = next
	}
}

// learn records the transition prev -> next.
func (mk *Markov) learn(prev, next int) {
	edges := mk.table[prev]
	for i := range edges {
		if edges[i].next == next {
			if edges[i].count < 0xffff {
				edges[i].count++
			}
			return
		}
	}
	if len(edges) < mk.SuccessorsPerObj {
		mk.table[prev] = append(edges, markovEdge{next: next, count: 1})
	} else {
		// Replace the weakest successor.
		weakest := 0
		for i := range edges {
			if edges[i].count < edges[weakest].count {
				weakest = i
			}
		}
		edges[weakest] = markovEdge{next: next, count: 1}
	}
	if len(mk.table) > mk.MaxEntries {
		// Bounded table: evict an arbitrary other entry (map iteration
		// order serves as cheap pseudo-random replacement).
		for k := range mk.table {
			if k != prev {
				delete(mk.table, k)
				break
			}
		}
	}
}

// best returns the highest-confidence successor of cur.
func (mk *Markov) best(cur int) (int, bool) {
	edges := mk.table[cur]
	if len(edges) == 0 {
		return 0, false
	}
	bi := 0
	for i := range edges {
		if edges[i].count > edges[bi].count {
			bi = i
		}
	}
	// Require a minimum of evidence before acting.
	if edges[bi].count < 2 {
		return 0, false
	}
	return edges[bi].next, true
}
