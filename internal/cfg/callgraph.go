package cfg

import (
	"sort"

	"cards/internal/ir"
)

// CGNode is one function in the call graph.
type CGNode struct {
	Fn      *ir.Function
	Callees []*CGNode
	Callers []*CGNode

	// SCC is the index of the strongly connected component the node
	// belongs to, in reverse topological order (callee SCCs first),
	// assigned by Tarjan's algorithm.
	SCC int
}

// CallGraph is the static call graph of a module.
type CallGraph struct {
	Module *ir.Module
	Nodes  map[string]*CGNode
	// order lists nodes in module function order for determinism.
	order []*CGNode
	nSCC  int
}

// BuildCallGraph constructs the call graph and runs SCC condensation.
// Our IR has only direct calls, so the graph is exact.
func BuildCallGraph(m *ir.Module) *CallGraph {
	cg := &CallGraph{Module: m, Nodes: make(map[string]*CGNode)}
	for _, f := range m.Funcs {
		n := &CGNode{Fn: f}
		cg.Nodes[f.Name] = n
		cg.order = append(cg.order, n)
	}
	for _, f := range m.Funcs {
		caller := cg.Nodes[f.Name]
		seen := make(map[string]bool)
		f.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) bool {
			if in.Op == ir.OpCall && !seen[in.Callee] {
				seen[in.Callee] = true
				if callee := cg.Nodes[in.Callee]; callee != nil {
					caller.Callees = append(caller.Callees, callee)
					callee.Callers = append(callee.Callers, caller)
				}
			}
			return true
		})
	}
	cg.tarjan()
	return cg
}

// tarjan assigns SCC indices in reverse topological order.
func (cg *CallGraph) tarjan() {
	index := make(map[*CGNode]int)
	low := make(map[*CGNode]int)
	onStack := make(map[*CGNode]bool)
	var stack []*CGNode
	next := 0

	var strongconnect func(v *CGNode)
	strongconnect = func(v *CGNode) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range v.Callees {
			if _, visited := index[w]; !visited {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				w.SCC = cg.nSCC
				if w == v {
					break
				}
			}
			cg.nSCC++
		}
	}
	for _, v := range cg.order {
		if _, visited := index[v]; !visited {
			strongconnect(v)
		}
	}
}

// NumSCCs returns the number of strongly connected components.
func (cg *CallGraph) NumSCCs() int { return cg.nSCC }

// ChainDepth returns, per function, the length of the longest caller →
// callee chain passing through it: depth(f) = longestPathFromRoot(f) +
// longestPathToLeaf(f) - 1, computed over the SCC condensation (each SCC
// counts once). The Maximum Reach policy (paper §4.2) localizes data
// structures used in the top-k functions by this metric.
func (cg *CallGraph) ChainDepth() map[string]int {
	// SCC condensation edges. Tarjan assigned SCC ids in reverse
	// topological order: callees have smaller ids than callers (for the
	// acyclic part), so iterating ids ascending visits callees first.
	sccCallees := make(map[int]map[int]bool)
	sccMembers := make(map[int][]*CGNode)
	for _, n := range cg.order {
		sccMembers[n.SCC] = append(sccMembers[n.SCC], n)
		for _, c := range n.Callees {
			if c.SCC != n.SCC {
				if sccCallees[n.SCC] == nil {
					sccCallees[n.SCC] = make(map[int]bool)
				}
				sccCallees[n.SCC][c.SCC] = true
			}
		}
	}
	// down[s]: longest chain from SCC s down to a leaf (in SCCs, s
	// inclusive). Ascending id order = callees before callers.
	down := make([]int, cg.nSCC)
	for s := 0; s < cg.nSCC; s++ {
		best := 0
		for c := range sccCallees[s] {
			if down[c] > best {
				best = down[c]
			}
		}
		down[s] = best + 1
	}
	// up[s]: longest chain from a root down to s (s inclusive).
	// Descending id order = callers before callees.
	up := make([]int, cg.nSCC)
	for s := cg.nSCC - 1; s >= 0; s-- {
		if up[s] == 0 {
			up[s] = 1
		}
		for c := range sccCallees[s] {
			if up[s]+1 > up[c] {
				up[c] = up[s] + 1
			}
		}
	}
	out := make(map[string]int, len(cg.order))
	for s := 0; s < cg.nSCC; s++ {
		d := up[s] + down[s] - 1
		for _, n := range sccMembers[s] {
			out[n.Fn.Name] = d
		}
	}
	return out
}

// FunctionsByChainDepth returns function names sorted by descending chain
// depth, ties broken by name for determinism.
func (cg *CallGraph) FunctionsByChainDepth() []string {
	depth := cg.ChainDepth()
	names := make([]string, 0, len(depth))
	for n := range depth {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if depth[names[i]] != depth[names[j]] {
			return depth[names[i]] > depth[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}

// InSameSCC reports whether two functions are mutually recursive.
func (cg *CallGraph) InSameSCC(a, b string) bool {
	na, nb := cg.Nodes[a], cg.Nodes[b]
	return na != nil && nb != nil && na.SCC == nb.SCC
}
