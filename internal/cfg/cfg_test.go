package cfg

import (
	"fmt"
	"math/rand"
	"testing"

	"cards/internal/ir"
)

// diamond builds: entry -> (left|right) -> merge -> ret.
func diamond(t *testing.T) (*ir.Module, *ir.Function) {
	t.Helper()
	m := ir.NewModule("diamond")
	f := m.NewFunc("f", ir.Void(), ir.P("c", ir.I64()))
	b := ir.NewBuilder(f)
	left := b.NewBlock("left")
	right := b.NewBlock("right")
	merge := b.NewBlock("merge")
	b.Br(f.Params[0], left, right)
	b.SetBlock(left)
	b.Jmp(merge)
	b.SetBlock(right)
	b.Jmp(merge)
	b.SetBlock(merge)
	b.Ret(nil)
	ir.MustVerify(m)
	return m, f
}

func TestDominatorsDiamond(t *testing.T) {
	_, f := diamond(t)
	info := Analyze(f)
	entry := f.BlockByName("entry")
	left := f.BlockByName("left")
	right := f.BlockByName("right")
	merge := f.BlockByName("merge")

	if info.Idom(merge) != entry {
		t.Errorf("idom(merge) = %v, want entry", info.Idom(merge).Name)
	}
	if info.Idom(left) != entry || info.Idom(right) != entry {
		t.Error("idom of branches should be entry")
	}
	if !info.Dominates(entry, merge) {
		t.Error("entry should dominate merge")
	}
	if info.Dominates(left, merge) {
		t.Error("left should NOT dominate merge")
	}
	if !info.Dominates(merge, merge) {
		t.Error("dominance should be reflexive")
	}
	if len(info.RPO) != 4 || info.RPO[0] != entry {
		t.Errorf("RPO = %v", blockNames(info.RPO))
	}
}

func blockNames(bs []*ir.Block) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Name
	}
	return out
}

func TestSingleLoopDetection(t *testing.T) {
	m := ir.NewModule("loop")
	f := m.NewFunc("f", ir.Void(), ir.P("n", ir.I64()))
	b := ir.NewBuilder(f)
	li := b.CountedLoop("i", ir.CI(0), f.Params[0], ir.CI(1))
	b.ConstI(1)
	b.CloseLoop(li)
	b.Ret(nil)
	ir.MustVerify(m)

	info := Analyze(f)
	loops := info.Loops()
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	l := loops[0]
	if l.Header != li.Header {
		t.Errorf("header = %s, want %s", l.Header.Name, li.Header.Name)
	}
	if !l.Contains(li.Body) || !l.Contains(li.Latch) || !l.Contains(li.Header) {
		t.Error("loop body incomplete")
	}
	if l.Contains(li.Exit) {
		t.Error("exit should not be in loop")
	}
	if l.Depth != 1 {
		t.Errorf("depth = %d, want 1", l.Depth)
	}
	if ph := l.Preheader(info); ph == nil || ph.Name != "entry" {
		t.Errorf("preheader = %v", ph)
	}
	latches := l.Latches(info)
	if len(latches) != 1 || latches[0] != li.Latch {
		t.Errorf("latches = %v", blockNames(latches))
	}
	exits := l.Exits()
	if len(exits) != 1 || exits[0] != li.Exit {
		t.Errorf("exits = %v", blockNames(exits))
	}
	if d := info.LoopDepth(li.Body); d != 1 {
		t.Errorf("LoopDepth(body) = %d, want 1", d)
	}
	if d := info.LoopDepth(li.Exit); d != 0 {
		t.Errorf("LoopDepth(exit) = %d, want 0", d)
	}
}

func TestNestedLoops(t *testing.T) {
	m := ir.NewModule("nest")
	f := m.NewFunc("f", ir.Void(), ir.P("n", ir.I64()))
	b := ir.NewBuilder(f)
	outer := b.CountedLoop("i", ir.CI(0), f.Params[0], ir.CI(1))
	inner := b.CountedLoop("j", ir.CI(0), f.Params[0], ir.CI(1))
	b.ConstI(0)
	b.CloseLoop(inner)
	b.CloseLoop(outer)
	b.Ret(nil)
	ir.MustVerify(m)

	info := Analyze(f)
	loops := info.Loops()
	if len(loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(loops))
	}
	var outerL, innerL *Loop
	for _, l := range loops {
		if l.Header == outer.Header {
			outerL = l
		}
		if l.Header == inner.Header {
			innerL = l
		}
	}
	if outerL == nil || innerL == nil {
		t.Fatal("did not find both loops")
	}
	if innerL.Parent != outerL {
		t.Error("inner loop should nest in outer")
	}
	if outerL.Depth != 1 || innerL.Depth != 2 {
		t.Errorf("depths = %d/%d, want 1/2", outerL.Depth, innerL.Depth)
	}
	if got := info.LoopDepth(inner.Body); got != 2 {
		t.Errorf("LoopDepth(inner body) = %d, want 2", got)
	}
	if il := info.InnermostLoop(inner.Body); il != innerL {
		t.Error("InnermostLoop(inner body) wrong")
	}
	if il := info.InnermostLoop(outer.Body); il != outerL {
		t.Error("InnermostLoop(outer body) wrong")
	}
}

func TestUnreachableBlock(t *testing.T) {
	m := ir.NewModule("unreach")
	f := m.NewFunc("f", ir.Void())
	b := ir.NewBuilder(f)
	dead := b.NewBlock("dead")
	b.Ret(nil)
	b.SetBlock(dead)
	b.Ret(nil)
	ir.MustVerify(m)
	info := Analyze(f)
	if info.Reachable(dead) {
		t.Error("dead block should be unreachable")
	}
	if !info.Reachable(f.Entry()) {
		t.Error("entry should be reachable")
	}
}

// callChain builds main -> a -> b -> c plus mutual recursion between e,f.
func callChain(t *testing.T) *ir.Module {
	t.Helper()
	m := ir.NewModule("calls")
	c := m.NewFunc("c", ir.Void())
	ir.NewBuilder(c).Ret(nil)
	bf := m.NewFunc("b", ir.Void())
	bb := ir.NewBuilder(bf)
	bb.Call(c)
	bb.Ret(nil)
	af := m.NewFunc("a", ir.Void())
	ab := ir.NewBuilder(af)
	ab.Call(bf)
	ab.Ret(nil)

	// Mutually recursive pair, conditionally terminating.
	ef := m.NewFunc("e", ir.Void(), ir.P("n", ir.I64()))
	ff := m.NewFunc("f", ir.Void(), ir.P("n", ir.I64()))
	eb := ir.NewBuilder(ef)
	stop := eb.NewBlock("stop")
	rec := eb.NewBlock("rec")
	eb.Br(eb.LE(ef.Params[0], ir.CI(0)), stop, rec)
	eb.SetBlock(stop)
	eb.Ret(nil)
	eb.SetBlock(rec)
	eb.Call(ff, eb.Sub(ef.Params[0], ir.CI(1)))
	eb.Ret(nil)
	fb := ir.NewBuilder(ff)
	fb.Call(ef, ff.Params[0])
	fb.Ret(nil)

	mf := m.NewFunc("main", ir.Void())
	mb := ir.NewBuilder(mf)
	mb.Call(af)
	mb.Call(ef, ir.CI(3))
	mb.Ret(nil)
	ir.MustVerify(m)
	return m
}

func TestCallGraphSCC(t *testing.T) {
	m := callChain(t)
	cg := BuildCallGraph(m)
	if !cg.InSameSCC("e", "f") {
		t.Error("e and f are mutually recursive, should share an SCC")
	}
	if cg.InSameSCC("a", "b") {
		t.Error("a and b should be in different SCCs")
	}
	if cg.InSameSCC("a", "nonexistent") {
		t.Error("unknown function should not match")
	}
	// 6 functions, e+f collapse: 5 SCCs.
	if got := cg.NumSCCs(); got != 5 {
		t.Errorf("NumSCCs = %d, want 5", got)
	}
}

func TestChainDepth(t *testing.T) {
	m := callChain(t)
	cg := BuildCallGraph(m)
	d := cg.ChainDepth()
	// main -> a -> b -> c: every function on that chain has depth 4.
	for _, fn := range []string{"main", "a", "b", "c"} {
		if d[fn] != 4 {
			t.Errorf("ChainDepth[%s] = %d, want 4", fn, d[fn])
		}
	}
	// main -> {e,f}: SCC chain of length 2; e and f share depth 2.
	if d["e"] != 2 || d["f"] != 2 {
		t.Errorf("ChainDepth[e,f] = %d,%d, want 2,2", d["e"], d["f"])
	}
	order := cg.FunctionsByChainDepth()
	if len(order) != 6 {
		t.Fatalf("order len = %d", len(order))
	}
	// The deepest-chain functions come first.
	if d[order[0]] < d[order[len(order)-1]] {
		t.Error("FunctionsByChainDepth not descending")
	}
	for i := 1; i < len(order); i++ {
		if d[order[i]] > d[order[i-1]] {
			t.Errorf("order violated at %d: %v", i, order)
		}
	}
}

func TestChainDepthListing1(t *testing.T) {
	m := ir.BuildListing1(64, 2)
	cg := BuildCallGraph(m)
	d := cg.ChainDepth()
	// main -> Set and main -> alloc: both chains length 2.
	if d["main"] != 2 {
		t.Errorf("ChainDepth[main] = %d, want 2", d["main"])
	}
	if d["Set"] != 2 || d["alloc"] != 2 {
		t.Errorf("ChainDepth[Set/alloc] = %d/%d, want 2/2", d["Set"], d["alloc"])
	}
}

func TestLoopDetectionListing1(t *testing.T) {
	m := ir.BuildListing1(64, 2)
	set := m.FuncByName("Set")
	info := Analyze(set)
	if len(info.Loops()) != 1 {
		t.Fatalf("Set should have 1 loop, got %d", len(info.Loops()))
	}
	mainInfo := Analyze(m.Main())
	if len(mainInfo.Loops()) != 1 {
		t.Fatalf("main should have 1 loop, got %d", len(mainInfo.Loops()))
	}
}

// randomCFG builds a random (but reducible-or-not) CFG with n blocks:
// each block ends in a conditional branch or jump to random targets.
func randomCFG(t *testing.T, seed int64, nBlocks int) *ir.Function {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := ir.NewModule("rand")
	f := m.NewFunc("f", ir.Void(), ir.P("c", ir.I64()))
	blocks := make([]*ir.Block, nBlocks)
	for i := range blocks {
		blocks[i] = f.NewBlock(fmt.Sprintf("b%d", i))
	}
	for i, b := range blocks {
		bb := ir.NewBuilder(f)
		bb.SetBlock(b)
		switch rng.Intn(3) {
		case 0:
			bb.Ret(nil)
		case 1:
			bb.Jmp(blocks[rng.Intn(nBlocks)])
		default:
			bb.Br(f.Params[0], blocks[rng.Intn(nBlocks)], blocks[rng.Intn(nBlocks)])
		}
		_ = i
	}
	// Ensure the entry is blocks[0] (NewFunc created no entry; first
	// created block is entry).
	if f.Entry() != blocks[0] {
		t.Fatal("entry mismatch")
	}
	ir.MustVerify(m)
	return f
}

// bruteDominates computes dominance by definition: a dominates b iff
// every path from entry to b passes through a (checked by deleting a
// and testing reachability).
func bruteDominates(f *ir.Function, a, b *ir.Block) bool {
	if a == b {
		return true
	}
	// BFS from entry avoiding a.
	seen := map[*ir.Block]bool{a: true}
	stack := []*ir.Block{}
	if f.Entry() != a {
		stack = append(stack, f.Entry())
		seen[f.Entry()] = true
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == b {
			return false // reached b without a
		}
		for _, s := range cur.Succs() {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return true
}

// TestDominatorsMatchBruteForce validates the CHK dominator algorithm
// against the definition on random CFGs.
func TestDominatorsMatchBruteForce(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		f := randomCFG(t, seed, 8)
		info := Analyze(f)
		for _, a := range f.Blocks {
			for _, b := range f.Blocks {
				if !info.Reachable(a) || !info.Reachable(b) {
					continue
				}
				got := info.Dominates(a, b)
				want := bruteDominates(f, a, b)
				if got != want {
					t.Fatalf("seed %d: Dominates(%s, %s) = %v, brute force %v",
						seed, a.Name, b.Name, got, want)
				}
			}
		}
	}
}

// TestLoopBodiesContainHeaderPath checks the natural-loop invariant on
// random CFGs: every block in a loop can reach the loop's latch without
// leaving the loop, and the header dominates every member.
func TestLoopInvariantsOnRandomCFGs(t *testing.T) {
	for seed := int64(100); seed < 130; seed++ {
		f := randomCFG(t, seed, 10)
		info := Analyze(f)
		for _, l := range info.Loops() {
			for b := range l.Blocks {
				if !info.Dominates(l.Header, b) {
					t.Fatalf("seed %d: header %s does not dominate member %s",
						seed, l.Header.Name, b.Name)
				}
			}
			if len(l.Latches(info)) == 0 {
				t.Fatalf("seed %d: loop %s has no latch", seed, l.Header.Name)
			}
		}
	}
}
