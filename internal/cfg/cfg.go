// Package cfg computes control-flow and call-graph structure over the IR:
// reverse postorder, dominator trees, natural loops with nesting depth,
// and a call graph with Tarjan SCCs and caller/callee chain depths.
//
// These are the NOELLE-style "program-wide abstractions" (paper §4.1) the
// CaRDS passes consume: the prefetch analysis needs loops and induction
// variables; the Maximum Reach policy needs the SCC call graph and
// caller/callee chain lengths; guard placement needs loop membership.
package cfg

import (
	"cards/internal/ir"
)

// Info holds per-function control-flow analyses. Build it with Analyze.
type Info struct {
	Fn    *ir.Function
	RPO   []*ir.Block // reverse postorder, entry first
	Preds map[*ir.Block][]*ir.Block
	idom  map[*ir.Block]*ir.Block
	rpoIx map[*ir.Block]int
	loops []*Loop
	depth map[*ir.Block]int // loop nesting depth per block
}

// Analyze computes CFG structure for f.
func Analyze(f *ir.Function) *Info {
	info := &Info{
		Fn:    f,
		Preds: make(map[*ir.Block][]*ir.Block),
		idom:  make(map[*ir.Block]*ir.Block),
		rpoIx: make(map[*ir.Block]int),
		depth: make(map[*ir.Block]int),
	}
	info.computeRPO()
	info.computeDominators()
	info.computeLoops()
	return info
}

func (info *Info) computeRPO() {
	seen := make(map[*ir.Block]bool)
	var post []*ir.Block
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		seen[b] = true
		for _, s := range b.Succs() {
			info.Preds[s] = append(info.Preds[s], b)
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	entry := info.Fn.Entry()
	if entry == nil {
		return
	}
	dfs(entry)
	for i := len(post) - 1; i >= 0; i-- {
		info.rpoIx[post[i]] = len(info.RPO)
		info.RPO = append(info.RPO, post[i])
	}
}

// computeDominators runs the Cooper–Harvey–Kennedy iterative algorithm.
func (info *Info) computeDominators() {
	if len(info.RPO) == 0 {
		return
	}
	entry := info.RPO[0]
	info.idom[entry] = entry
	changed := true
	for changed {
		changed = false
		for _, b := range info.RPO[1:] {
			var newIdom *ir.Block
			for _, p := range info.Preds[b] {
				if _, ok := info.idom[p]; !ok {
					continue // unprocessed predecessor
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = info.intersect(p, newIdom)
				}
			}
			if newIdom != nil && info.idom[b] != newIdom {
				info.idom[b] = newIdom
				changed = true
			}
		}
	}
}

func (info *Info) intersect(a, b *ir.Block) *ir.Block {
	for a != b {
		for info.rpoIx[a] > info.rpoIx[b] {
			a = info.idom[a]
		}
		for info.rpoIx[b] > info.rpoIx[a] {
			b = info.idom[b]
		}
	}
	return a
}

// Idom returns the immediate dominator of b (entry's idom is itself).
func (info *Info) Idom(b *ir.Block) *ir.Block { return info.idom[b] }

// Dominates reports whether a dominates b (reflexively).
func (info *Info) Dominates(a, b *ir.Block) bool {
	for {
		if a == b {
			return true
		}
		id, ok := info.idom[b]
		if !ok || id == b {
			return false
		}
		b = id
	}
}

// Reachable reports whether b is reachable from the entry.
func (info *Info) Reachable(b *ir.Block) bool {
	_, ok := info.rpoIx[b]
	return ok
}

// Loop is a natural loop: a header and the set of blocks in the loop
// body (header included). Loops with shared headers are merged.
type Loop struct {
	Header   *ir.Block
	Blocks   map[*ir.Block]bool
	Parent   *Loop
	Children []*Loop
	// Depth is the nesting depth: 1 for outermost loops.
	Depth int
}

// Contains reports whether b belongs to the loop.
func (l *Loop) Contains(b *ir.Block) bool { return l.Blocks[b] }

// Latches returns the in-loop predecessors of the header (back edges).
func (l *Loop) Latches(info *Info) []*ir.Block {
	var latches []*ir.Block
	for _, p := range info.Preds[l.Header] {
		if l.Blocks[p] {
			latches = append(latches, p)
		}
	}
	return latches
}

// Preheader returns the unique out-of-loop predecessor of the header, or
// nil when there are multiple (guard versioning requires one; our builder
// always produces one).
func (l *Loop) Preheader(info *Info) *ir.Block {
	var ph *ir.Block
	for _, p := range info.Preds[l.Header] {
		if !l.Blocks[p] {
			if ph != nil {
				return nil
			}
			ph = p
		}
	}
	return ph
}

// Exits returns blocks outside the loop that are targeted from inside.
func (l *Loop) Exits() []*ir.Block {
	seen := make(map[*ir.Block]bool)
	var exits []*ir.Block
	for b := range l.Blocks {
		for _, s := range b.Succs() {
			if !l.Blocks[s] && !seen[s] {
				seen[s] = true
				exits = append(exits, s)
			}
		}
	}
	return exits
}

func (info *Info) computeLoops() {
	byHeader := make(map[*ir.Block]*Loop)
	for _, b := range info.RPO {
		for _, s := range b.Succs() {
			if info.Dominates(s, b) {
				// Back edge b -> s; s is a loop header.
				l := byHeader[s]
				if l == nil {
					l = &Loop{Header: s, Blocks: map[*ir.Block]bool{s: true}}
					byHeader[s] = l
				}
				info.collectLoopBody(l, b)
			}
		}
	}
	// Order loops deterministically by header RPO index.
	for _, b := range info.RPO {
		if l, ok := byHeader[b]; ok {
			info.loops = append(info.loops, l)
		}
	}
	// Nesting: loop A is a child of the smallest loop B != A whose body
	// contains A's header.
	for _, a := range info.loops {
		var best *Loop
		for _, b := range info.loops {
			if a == b || !b.Blocks[a.Header] {
				continue
			}
			if best == nil || len(b.Blocks) < len(best.Blocks) {
				best = b
			}
		}
		if best != nil {
			a.Parent = best
			best.Children = append(best.Children, a)
		}
	}
	var setDepth func(l *Loop, d int)
	setDepth = func(l *Loop, d int) {
		l.Depth = d
		for _, c := range l.Children {
			setDepth(c, d+1)
		}
	}
	for _, l := range info.loops {
		if l.Parent == nil {
			setDepth(l, 1)
		}
	}
	for _, l := range info.loops {
		for b := range l.Blocks {
			if l.Depth > info.depth[b] {
				info.depth[b] = l.Depth
			}
		}
	}
}

// collectLoopBody adds to l every block that reaches latch without going
// through the header (the classic natural-loop construction).
func (info *Info) collectLoopBody(l *Loop, latch *ir.Block) {
	stack := []*ir.Block{latch}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if l.Blocks[b] {
			continue
		}
		l.Blocks[b] = true
		for _, p := range info.Preds[b] {
			stack = append(stack, p)
		}
	}
}

// Loops returns all natural loops, outermost headers in RPO order.
func (info *Info) Loops() []*Loop { return info.loops }

// LoopDepth returns the nesting depth of b (0 = not in any loop).
func (info *Info) LoopDepth(b *ir.Block) int { return info.depth[b] }

// InnermostLoop returns the innermost loop containing b, or nil.
func (info *Info) InnermostLoop(b *ir.Block) *Loop {
	var best *Loop
	for _, l := range info.loops {
		if l.Blocks[b] && (best == nil || l.Depth > best.Depth) {
			best = l
		}
	}
	return best
}
