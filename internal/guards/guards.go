// Package guards implements the CaRDS instrumentation passes (paper §4.1):
//
//   - Guard insertion: every load/store that may touch a remotable data
//     structure is preceded by a cards_guard, the custody check + deref
//     of Figure 3 / Listing 4. The guard yields a localized address the
//     access then uses.
//   - Redundant guard elimination: within a basic block, accesses that
//     provably hit the same object reuse one guard. Unlike TrackFM,
//     whose elimination applies only to induction variables, this works
//     for arbitrary base+offset aliases (struct fields, repeated
//     dereferences of the same pointer) — "allowing it to work with more
//     complex data structures".
//   - Code versioning (selective remoting, Listing 3): loops containing
//     guards are duplicated; a cards_all_local check in the preheader
//     dispatches to the uninstrumented clone when every data structure
//     the loop touches is currently local, eliding all guard overhead.
package guards

import (
	"cards/internal/analysis"
	"cards/internal/cfg"
	"cards/internal/dsa"
	"cards/internal/ir"
)

// Result reports what the passes did.
type Result struct {
	// GuardsInserted counts cards_guard instructions emitted.
	GuardsInserted int
	// GuardsElided counts accesses that reused an earlier guard via
	// redundant guard elimination.
	GuardsElided int
	// LoopsVersioned counts loops that received an uninstrumented clone.
	LoopsVersioned int
}

// Options tunes the passes (used by the TrackFM baseline and ablations).
type Options struct {
	// ElideRedundant enables redundant guard elimination.
	ElideRedundant bool
	// Version enables code versioning / selective remoting.
	Version bool
	// InductionOnlyElision restricts RGE to induction-variable bases,
	// mimicking TrackFM's narrower optimization.
	InductionOnlyElision bool
}

// DefaultOptions returns the full CaRDS configuration.
func DefaultOptions() Options {
	return Options{ElideRedundant: true, Version: true}
}

// Transform instruments m in place. It must run after pool allocation
// (so DS identity is known) and consumes the analysis result for loop DS
// sets and object sizes.
func Transform(m *ir.Module, ds *dsa.Result, an *analysis.Result, opts Options) *Result {
	res := &Result{}
	for _, f := range m.Funcs {
		res.insertGuards(f, ds, an, opts)
	}
	if opts.Version {
		for _, f := range m.Funcs {
			res.versionLoops(f, an)
		}
	}
	ir.MustVerify(m)
	return res
}

// guardKey identifies an already-guarded object within a block.
type guardKey struct {
	base    ir.Value
	index   ir.Value
	objSlot int
	write   bool
}

// guardEntry is an active guard covering an object.
type guardEntry struct {
	guard *ir.Instr
	// off is the byte offset (within the object) the guard's address
	// points at; reuses at other offsets add the delta via a GEP.
	off int
}

// insertGuards instruments one function.
func (res *Result) insertGuards(f *ir.Function, ds *dsa.Result, an *analysis.Result, opts Options) {
	for _, b := range f.Blocks {
		// active guards in this block, separately for read/write
		// coverage: a write guard covers reads, not vice versa.
		active := make(map[guardKey]*guardEntry)

		for i := 0; i < len(b.Instrs); i++ {
			in := b.Instrs[i]
			if in.Op != ir.OpLoad && in.Op != ir.OpStore {
				// Calls may remote/evict objects; conservatively drop
				// guard coverage across them.
				if in.Op == ir.OpCall {
					active = make(map[guardKey]*guardEntry)
				}
				continue
			}
			ids := an.InstrDS[in]
			if len(ids) == 0 {
				continue // provably non-remotable memory
			}
			isWrite := in.Op == ir.OpStore

			objSize := objSizeFor(an, ids)
			base, index, off, gepElem := addrParts(f, in.Addr)

			// Elision is sound only when the static key provably maps to
			// one runtime object: either a pure field offset within one
			// allocation (allocations never straddle objects), or an
			// indexed element whose size divides the object size (each
			// element then lies in one object).
			elidable := base != nil && objSize > 0
			var slot int
			if index != nil {
				if gepElem > 0 && objSize%gepElem == 0 && off < gepElem {
					slot = 0 // same element => same object
				} else {
					elidable = false
				}
			} else {
				slot = off / objSize
			}

			var covered *guardEntry
			var coveredBy guardKey
			if opts.ElideRedundant && elidable {
				if opts.InductionOnlyElision && !isIVIndex(an, f, index) {
					// TrackFM-style: only elide when indexed by an IV.
				} else {
					// A write guard covers both kinds; a read guard
					// covers reads.
					wk := guardKey{base, index, slot, true}
					rk := guardKey{base, index, slot, false}
					if e, ok := active[wk]; ok {
						covered, coveredBy = e, wk
					} else if e, ok := active[rk]; ok && !isWrite {
						covered, coveredBy = e, rk
					}
				}
			}

			if covered != nil {
				_ = coveredBy
				// Reuse: rewrite the address to the guard's localized
				// result, offset by the static delta.
				res.GuardsElided++
				delta := off - covered.off
				if isWrite && coveredBy.write {
					// The covering write guard now also vouches for this
					// store: widen its written span to include it.
					g := covered.guard
					if g.GHi > g.GLo {
						g.GLo = min(g.GLo, delta)
						g.GHi = max(g.GHi, delta+in.Elem.Size())
					}
				}
				var newAddr ir.Value = covered.guard.Dst
				if delta != 0 {
					g := ir.NewInstr(ir.OpGEP)
					g.Base = covered.guard.Dst
					g.ElemSize = 0
					g.ConstOff = delta
					g.Dst = f.NewReg("", ir.Ptr(in.Elem))
					b.InsertBefore(i, g)
					i++
					newAddr = g.Dst
				}
				in.Addr = newAddr
				continue
			}

			// Emit a fresh guard before the access.
			g := ir.NewInstr(ir.OpGuard)
			g.Addr = in.Addr
			g.IsWrite = isWrite
			if isWrite && in.Elem != nil {
				// The store's written span relative to the guarded
				// address: the compiler-aided seed of the runtime's
				// dirty rectangle (dirty-range write-back).
				g.GLo, g.GHi = 0, in.Elem.Size()
			}
			g.DSRefs = append([]int(nil), ids...)
			g.Dst = f.NewReg("", ir.Ptr(in.Elem))
			b.InsertBefore(i, g)
			i++
			in.Addr = g.Dst
			res.GuardsInserted++

			if opts.ElideRedundant && elidable {
				active[guardKey{base, index, slot, isWrite}] =
					&guardEntry{guard: g, off: off}
			}
		}
	}
}

// objSizeFor returns the common object size of the candidate structures,
// or 0 when they disagree (no safe elision window).
func objSizeFor(an *analysis.Result, ids []int) int {
	size := 0
	for _, id := range ids {
		if id < 0 || id >= len(an.Infos) {
			return 0
		}
		s := an.Infos[id].ObjSize
		if size == 0 {
			size = s
		} else if size != s {
			return 0
		}
	}
	return size
}

// addrParts decomposes an address into (base, index, constOff, gepElem)
// when it is a single GEP over a base register; otherwise the address
// itself is the base at offset 0. gepElem is the indexed element stride
// (0 when index is nil).
func addrParts(f *ir.Function, addr ir.Value) (base ir.Value, index ir.Value, off, gepElem int) {
	r, ok := addr.(*ir.Reg)
	if !ok {
		return addr, nil, 0, 0
	}
	var def *ir.Instr
	f.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) bool {
		if in.Dst == r {
			if def == nil {
				def = in
			} else {
				def = nil // multiple defs: give up
				return false
			}
		}
		return true
	})
	if def != nil && def.Op == ir.OpGEP {
		// Nested GEP (array-of-structs): fold one level.
		if br, ok := def.Base.(*ir.Reg); ok {
			var bdef *ir.Instr
			count := 0
			f.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) bool {
				if in.Dst == br {
					bdef = in
					count++
				}
				return true
			})
			if count == 1 && bdef.Op == ir.OpGEP && bdef.Index != nil && def.Index == nil {
				return bdef.Base, bdef.Index, bdef.ConstOff + def.ConstOff, bdef.ElemSize
			}
		}
		return def.Base, def.Index, def.ConstOff, def.ElemSize
	}
	return addr, nil, 0, 0
}

// isIVIndex reports whether index is an induction variable of some loop
// in f (the only case TrackFM's elision handles).
func isIVIndex(an *analysis.Result, f *ir.Function, index ir.Value) bool {
	r, ok := index.(*ir.Reg)
	if !ok {
		return false
	}
	_, isIV := an.IVs[f.Name][r]
	return isIV
}

// versionLoops applies code versioning to every outermost loop of f that
// contains guards (Listing 3).
func (res *Result) versionLoops(f *ir.Function, an *analysis.Result) {
	info := an.CFGs[f.Name]
	for _, loop := range info.Loops() {
		if loop.Parent != nil {
			continue // version outermost loops; clones include children
		}
		if !loopHasGuards(loop) {
			continue
		}
		dsIDs := an.LoopDS[loop.Header]
		if len(dsIDs) == 0 {
			continue
		}
		ph := loop.Preheader(info)
		if ph == nil {
			continue
		}
		t := ph.Term()
		if t == nil || t.Op != ir.OpJmp || t.Target != loop.Header {
			continue
		}

		clonedHeader := cloneLoopUnguarded(f, loop)

		// Rewrite the preheader: al = cards_all_local(ds...);
		// br al, fast, guarded.
		al := ir.NewInstr(ir.OpAllLocal)
		al.DSRefs = append([]int(nil), dsIDs...)
		al.Dst = f.NewReg("", ir.I64())
		ph.InsertBefore(len(ph.Instrs)-1, al)

		t.Op = ir.OpBr
		t.Cond = al.Dst
		t.Then = clonedHeader
		t.Else = loop.Header
		t.Target = nil
		res.LoopsVersioned++
	}
}

func loopHasGuards(loop *cfg.Loop) bool {
	for b := range loop.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpGuard {
				return true
			}
		}
	}
	return false
}

// cloneLoopUnguarded deep-copies the loop body, strips guards and
// prefetch hints (uses of a guard's result revert to its raw address),
// and returns the cloned header. Registers are shared between the two
// versions: only one version executes per loop entry, so the non-SSA
// register file needs no renaming.
func cloneLoopUnguarded(f *ir.Function, loop *cfg.Loop) *ir.Block {
	// Deterministic block order: function order filtered by membership.
	var blocks []*ir.Block
	for _, b := range f.Blocks {
		if loop.Blocks[b] {
			blocks = append(blocks, b)
		}
	}

	// Map from each guard's destination register to the raw address the
	// guard localized; the unguarded clone uses addresses directly.
	strip := make(map[*ir.Reg]ir.Value)
	for _, b := range blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpGuard && in.Dst != nil {
				strip[in.Dst] = in.Addr
			}
		}
	}
	// Resolve chains (a guard over an address produced by another
	// guard's RGE rewrite is fully unwound).
	resolve := func(v ir.Value) ir.Value {
		for {
			r, ok := v.(*ir.Reg)
			if !ok {
				return v
			}
			nv, mapped := strip[r]
			if !mapped {
				return v
			}
			v = nv
		}
	}

	cloneOf := make(map[*ir.Block]*ir.Block, len(blocks))
	for _, b := range blocks {
		cloneOf[b] = f.NewBlock(b.Name + ".fast")
	}
	mapBlock := func(b *ir.Block) *ir.Block {
		if c, ok := cloneOf[b]; ok {
			return c
		}
		return b // exits stay shared
	}

	for _, b := range blocks {
		nb := cloneOf[b]
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpGuard, ir.OpPrefetch:
				continue // stripped in the fast version
			}
			c := *in // shallow copy of the fat node
			c.Args = append([]ir.Value(nil), in.Args...)
			c.DSRefs = append([]int(nil), in.DSRefs...)
			c.X = resolve(c.X)
			c.Y = resolve(c.Y)
			c.Src = resolve(c.Src)
			c.Count = resolve(c.Count)
			c.Addr = resolve(c.Addr)
			c.Base = resolve(c.Base)
			c.Index = resolve(c.Index)
			c.Cond = resolve(c.Cond)
			c.DSHandle = resolve(c.DSHandle)
			for i := range c.Args {
				c.Args[i] = resolve(c.Args[i])
			}
			if c.Then != nil {
				c.Then = mapBlock(c.Then)
			}
			if c.Else != nil {
				c.Else = mapBlock(c.Else)
			}
			if c.Target != nil {
				c.Target = mapBlock(c.Target)
			}
			nb.Append(&c)
		}
	}
	return cloneOf[loop.Header]
}
