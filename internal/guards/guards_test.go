package guards

import (
	"strings"
	"testing"

	"cards/internal/analysis"
	"cards/internal/dsa"
	"cards/internal/ir"
	"cards/internal/poolalloc"
)

// compile runs the pass pipeline up to (and including) guards.
func compile(t *testing.T, m *ir.Module, opts Options) (*dsa.Result, *analysis.Result, *Result) {
	t.Helper()
	ds := dsa.Analyze(m)
	poolalloc.Transform(m, ds)
	an := analysis.Analyze(m, ds)
	g := Transform(m, ds, an, opts)
	if err := ir.Verify(m); err != nil {
		t.Fatalf("post-guards verify: %v\n%s", err, m)
	}
	return ds, an, g
}

func countOp(f *ir.Function, op ir.Op) int {
	n := 0
	f.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) bool {
		if in.Op == op {
			n++
		}
		return true
	})
	return n
}

func TestGuardsInsertedListing1(t *testing.T) {
	m := ir.BuildListing1(64, 2)
	_, _, g := compile(t, m, DefaultOptions())

	if g.GuardsInserted == 0 {
		t.Fatal("no guards inserted")
	}
	// Set's store goes through a guard: the store's address operand is a
	// guard result.
	set := m.FuncByName("Set")
	guarded := false
	set.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) bool {
		if in.Op == ir.OpStore {
			if r, ok := in.Addr.(*ir.Reg); ok {
				set.Instrs(func(_ *ir.Block, _ int, def *ir.Instr) bool {
					if def.Dst == r && def.Op == ir.OpGuard {
						guarded = true
					}
					return true
				})
			}
		}
		return true
	})
	if !guarded {
		t.Fatalf("Set's store is not guarded:\n%s", set)
	}
}

func TestCodeVersioningListing1(t *testing.T) {
	m := ir.BuildListing1(64, 2)
	_, _, g := compile(t, m, DefaultOptions())

	if g.LoopsVersioned == 0 {
		t.Fatal("no loops versioned")
	}
	// Set must now contain a cards_all_local check and a .fast clone of
	// its loop whose store is unguarded (Listing 3).
	set := m.FuncByName("Set")
	if countOp(set, ir.OpAllLocal) != 1 {
		t.Fatalf("Set all_local count = %d, want 1:\n%s", countOp(set, ir.OpAllLocal), set)
	}
	text := set.String()
	if !strings.Contains(text, ".fast") {
		t.Fatalf("no fast clone blocks in Set:\n%s", text)
	}
	// Fast blocks contain no guards.
	for _, b := range set.Blocks {
		if !strings.HasSuffix(b.Name, ".fast") {
			continue
		}
		for _, in := range b.Instrs {
			if in.Op == ir.OpGuard {
				t.Fatalf("guard in fast block %s: %s", b.Name, in)
			}
		}
	}
	// The preheader branches on the all_local result.
	entry := set.Entry()
	term := entry.Term()
	if term.Op != ir.OpBr {
		t.Fatalf("preheader terminator = %s, want br", term)
	}
}

func TestRedundantGuardEliminationFields(t *testing.T) {
	// Two loads of different fields of the same node object: one guard.
	m := ir.NewModule("fields")
	node := ir.NewStruct("node", ir.F("a", ir.I64()), ir.F("b", ir.I64()))
	f := m.NewFunc("main", ir.Void())
	b := ir.NewBuilder(f)
	p := b.Alloc(node, ir.CI(1))
	// Force pointer-chase-free direct use in a loop so guards land.
	loop := b.CountedLoop("i", ir.CI(0), ir.CI(16), ir.CI(1))
	b.Load(ir.I64(), b.FieldAddr(p, node, "a"))
	b.Load(ir.I64(), b.FieldAddr(p, node, "b"))
	b.CloseLoop(loop)
	b.Ret(nil)
	m.AssignSites()
	ir.MustVerify(m)

	_, _, g := compile(t, m, Options{ElideRedundant: true})
	if g.GuardsInserted != 1 {
		t.Errorf("GuardsInserted = %d, want 1 (same 4K object)", g.GuardsInserted)
	}
	if g.GuardsElided != 1 {
		t.Errorf("GuardsElided = %d, want 1", g.GuardsElided)
	}
}

func TestRGEDisabledInsertsBoth(t *testing.T) {
	m := ir.NewModule("fields2")
	node := ir.NewStruct("node", ir.F("a", ir.I64()), ir.F("b", ir.I64()))
	f := m.NewFunc("main", ir.Void())
	b := ir.NewBuilder(f)
	p := b.Alloc(node, ir.CI(1))
	loop := b.CountedLoop("i", ir.CI(0), ir.CI(16), ir.CI(1))
	b.Load(ir.I64(), b.FieldAddr(p, node, "a"))
	b.Load(ir.I64(), b.FieldAddr(p, node, "b"))
	b.CloseLoop(loop)
	b.Ret(nil)
	m.AssignSites()
	ir.MustVerify(m)

	_, _, g := compile(t, m, Options{ElideRedundant: false})
	if g.GuardsInserted != 2 {
		t.Errorf("GuardsInserted = %d, want 2 without RGE", g.GuardsInserted)
	}
	if g.GuardsElided != 0 {
		t.Errorf("GuardsElided = %d, want 0", g.GuardsElided)
	}
}

func TestWriteAfterReadGuardNotElided(t *testing.T) {
	// Read then write of the same object: the write needs its own guard
	// (dirty tracking), so only a read->read pair may elide.
	m := ir.NewModule("waw")
	node := ir.NewStruct("node", ir.F("a", ir.I64()), ir.F("b", ir.I64()))
	f := m.NewFunc("main", ir.Void())
	b := ir.NewBuilder(f)
	p := b.Alloc(node, ir.CI(1))
	loop := b.CountedLoop("i", ir.CI(0), ir.CI(16), ir.CI(1))
	v := b.Load(ir.I64(), b.FieldAddr(p, node, "a"))
	b.Store(ir.I64(), v, b.FieldAddr(p, node, "b"))
	b.CloseLoop(loop)
	b.Ret(nil)
	m.AssignSites()
	ir.MustVerify(m)

	_, _, g := compile(t, m, Options{ElideRedundant: true})
	if g.GuardsInserted != 2 {
		t.Errorf("GuardsInserted = %d, want 2 (write after read)", g.GuardsInserted)
	}
	// And a subsequent read after the write IS covered by the write guard.
	m2 := ir.NewModule("war")
	f2 := m2.NewFunc("main", ir.Void())
	b2 := ir.NewBuilder(f2)
	p2 := b2.Alloc(node, ir.CI(1))
	loop2 := b2.CountedLoop("i", ir.CI(0), ir.CI(16), ir.CI(1))
	b2.Store(ir.I64(), ir.CI(1), b2.FieldAddr(p2, node, "a"))
	b2.Load(ir.I64(), b2.FieldAddr(p2, node, "b"))
	b2.CloseLoop(loop2)
	b2.Ret(nil)
	m2.AssignSites()
	ir.MustVerify(m2)
	_, _, g2 := compile(t, m2, Options{ElideRedundant: true})
	if g2.GuardsInserted != 1 || g2.GuardsElided != 1 {
		t.Errorf("write-then-read: inserted=%d elided=%d, want 1/1",
			g2.GuardsInserted, g2.GuardsElided)
	}
}

func TestGuardCoverageDroppedAcrossCalls(t *testing.T) {
	// A call between two accesses to the same object must re-guard: the
	// callee may evict the object.
	m := ir.NewModule("callbarrier")
	node := ir.NewStruct("node", ir.F("a", ir.I64()), ir.F("b", ir.I64()))
	noop := m.NewFunc("noop", ir.Void())
	ir.NewBuilder(noop).Ret(nil)
	f := m.NewFunc("main", ir.Void())
	b := ir.NewBuilder(f)
	p := b.Alloc(node, ir.CI(1))
	loop := b.CountedLoop("i", ir.CI(0), ir.CI(16), ir.CI(1))
	b.Load(ir.I64(), b.FieldAddr(p, node, "a"))
	b.Call(noop)
	b.Load(ir.I64(), b.FieldAddr(p, node, "b"))
	b.CloseLoop(loop)
	b.Ret(nil)
	m.AssignSites()
	ir.MustVerify(m)

	_, _, g := compile(t, m, Options{ElideRedundant: true})
	if g.GuardsInserted != 2 {
		t.Errorf("GuardsInserted = %d, want 2 (call is a barrier)", g.GuardsInserted)
	}
}

func TestVersionedCloneComputesSameThing(t *testing.T) {
	// Structural check: after versioning, the original guarded loop and
	// the fast clone contain the same number of stores.
	m := ir.BuildListing1(64, 2)
	compile(t, m, DefaultOptions())
	set := m.FuncByName("Set")
	var guardedStores, fastStores int
	for _, b := range set.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpStore {
				if strings.HasSuffix(b.Name, ".fast") {
					fastStores++
				} else {
					guardedStores++
				}
			}
		}
	}
	if guardedStores != fastStores {
		t.Errorf("stores guarded=%d fast=%d, want equal", guardedStores, fastStores)
	}
	if fastStores == 0 {
		t.Error("fast clone has no stores")
	}
}

func TestInductionOnlyElisionNarrower(t *testing.T) {
	// TrackFM-style elision must elide no more than CaRDS elision.
	build := func() *ir.Module {
		m := ir.NewModule("cmp")
		node := ir.NewStruct("node", ir.F("a", ir.I64()), ir.F("b", ir.I64()))
		f := m.NewFunc("main", ir.Void())
		b := ir.NewBuilder(f)
		p := b.Alloc(node, ir.CI(1))
		loop := b.CountedLoop("i", ir.CI(0), ir.CI(16), ir.CI(1))
		b.Load(ir.I64(), b.FieldAddr(p, node, "a"))
		b.Load(ir.I64(), b.FieldAddr(p, node, "b"))
		b.CloseLoop(loop)
		b.Ret(nil)
		m.AssignSites()
		ir.MustVerify(m)
		return m
	}
	_, _, cards := compile(t, build(), Options{ElideRedundant: true})
	_, _, tfm := compile(t, build(), Options{ElideRedundant: true, InductionOnlyElision: true})
	if tfm.GuardsElided > cards.GuardsElided {
		t.Errorf("TrackFM-style elided %d > CaRDS %d", tfm.GuardsElided, cards.GuardsElided)
	}
	// This particular pattern (field aliases, non-IV base) is exactly
	// what TrackFM misses.
	if tfm.GuardsElided != 0 {
		t.Errorf("induction-only elision should miss field aliases, elided %d", tfm.GuardsElided)
	}
	if cards.GuardsElided != 1 {
		t.Errorf("CaRDS elision should catch field aliases, elided %d", cards.GuardsElided)
	}
}
