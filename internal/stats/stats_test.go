package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Fatalf("zero value = %d, want 0", c.Load())
	}
	c.Inc()
	c.Add(9)
	if got := c.Load(); got != 10 {
		t.Fatalf("Load = %d, want 10", got)
	}
	c.Reset()
	if c.Load() != 0 {
		t.Fatalf("after Reset = %d, want 0", c.Load())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8000 {
		t.Fatalf("Load = %d, want 8000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Add(5)
	g.Add(-8)
	if got := g.Load(); got != -3 {
		t.Fatalf("Load = %d, want -3", got)
	}
	g.Set(42)
	if got := g.Load(); got != 42 {
		t.Fatalf("Load = %d, want 42", got)
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Median() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample should report zeros")
	}
	if s.Variance() != 0 || s.Stddev() != 0 {
		t.Fatal("empty sample variance should be zero")
	}
}

func TestSampleOrderStats(t *testing.T) {
	var s Sample
	for _, x := range []float64{9, 1, 5, 3, 7} {
		s.Observe(x)
	}
	if got := s.Median(); got != 5 {
		t.Errorf("Median = %v, want 5", got)
	}
	if got := s.Min(); got != 1 {
		t.Errorf("Min = %v, want 1", got)
	}
	if got := s.Max(); got != 9 {
		t.Errorf("Max = %v, want 9", got)
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v, want 1", got)
	}
	if got := s.Quantile(1); got != 9 {
		t.Errorf("Quantile(1) = %v, want 9", got)
	}
}

func TestSampleMedianEvenCount(t *testing.T) {
	var s Sample
	for _, x := range []float64{1, 2, 3, 4} {
		s.Observe(x)
	}
	if got := s.Median(); got != 2.5 {
		t.Fatalf("Median = %v, want 2.5", got)
	}
}

func TestSampleVariance(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(x)
	}
	// Known dataset: population variance 4, sample variance 32/7.
	want := 32.0 / 7.0
	if got := s.Variance(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
}

func TestSampleReset(t *testing.T) {
	var s Sample
	s.Observe(3)
	s.Reset()
	if s.N() != 0 {
		t.Fatalf("N after reset = %d, want 0", s.N())
	}
}

// Property: Quantile is monotone in q and bounded by [Min, Max].
func TestSampleQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true // skip pathological inputs
			}
			s.Observe(x)
		}
		q1 = math.Abs(math.Mod(q1, 1))
		q2 = math.Abs(math.Mod(q2, 1))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		a, b := s.Quantile(q1), s.Quantile(q2)
		return a <= b && a >= s.Min() && b <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: for any permutation of the observations the median is the same.
func TestSampleMedianPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := make([]float64, 101)
	for i := range base {
		base[i] = rng.Float64() * 1000
	}
	var ref Sample
	for _, x := range base {
		ref.Observe(x)
	}
	want := ref.Median()
	for trial := 0; trial < 20; trial++ {
		perm := rng.Perm(len(base))
		var s Sample
		for _, i := range perm {
			s.Observe(base[i])
		}
		if got := s.Median(); got != want {
			t.Fatalf("median changed under permutation: got %v want %v", got, want)
		}
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 20, 20}, {1<<20 + 1, 21},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for i := uint64(1); i <= 100; i++ {
		h.Observe(i)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d, want 100", h.Count())
	}
	if h.Sum() != 5050 {
		t.Fatalf("Sum = %d, want 5050", h.Sum())
	}
	if got := h.Mean(); got != 50.5 {
		t.Fatalf("Mean = %v, want 50.5", got)
	}
	q := h.ApproxQuantile(0.5)
	// The true median is 50; the bucketed answer must be within 2x above.
	if q < 50 || q > 128 {
		t.Fatalf("ApproxQuantile(0.5) = %d, want in [50,128]", q)
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("Reset did not clear histogram")
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	var h Histogram
	if got := h.ApproxQuantile(0.99); got != 0 {
		t.Fatalf("quantile of empty histogram = %d, want 0", got)
	}
}

// Property: ApproxQuantile upper-bounds the exact quantile and is within 2x.
func TestHistogramQuantileBoundProperty(t *testing.T) {
	f := func(seedRaw int64, nRaw uint8) bool {
		n := int(nRaw%200) + 1
		rng := rand.New(rand.NewSource(seedRaw))
		var h Histogram
		xs := make([]uint64, n)
		for i := range xs {
			xs[i] = uint64(rng.Intn(1 << 16))
			h.Observe(xs[i])
		}
		sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
		for _, q := range []float64{0.1, 0.5, 0.9} {
			idx := int(q * float64(n))
			if idx >= n {
				idx = n - 1
			}
			exact := xs[idx]
			approx := h.ApproxQuantile(q)
			if approx < exact {
				return false
			}
			if exact > 1 && approx > 2*exact {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	h.Observe(3)
	s := h.String()
	if s == "" {
		t.Fatal("String() returned empty")
	}
}

// TestBucketBoundaries pins down the bucket definition at the edges:
// bucket 0 holds {0,1}; bucket i >= 1 holds (2^(i-1), 2^i]; BucketBound
// is the inclusive upper bound; String renders matching ranges; and
// ApproxQuantile of a single observation returns its bucket's bound.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      uint64
		bucket int
		bound  uint64 // BucketBound(bucket) == ApproxQuantile upper bound
	}{
		{0, 0, 1},
		{1, 0, 1},
		{2, 1, 2},
		{1 << 4, 4, 1 << 4},
		{1<<4 + 1, 5, 1 << 5},
		{1 << 10, 10, 1 << 10},
		{1<<10 + 1, 11, 1 << 11},
		{1 << 32, 32, 1 << 32},
		{1<<32 + 1, 33, 1 << 33},
		{1 << 63, 63, 1 << 63},
		{1<<63 + 1, 64, math.MaxUint64},
		{math.MaxUint64, 64, math.MaxUint64},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
		if got := BucketBound(c.bucket); got != c.bound {
			t.Errorf("BucketBound(%d) = %d, want %d", c.bucket, got, c.bound)
		}
		var h Histogram
		h.Observe(c.v)
		if got := h.BucketCount(c.bucket); got != 1 {
			t.Errorf("BucketCount(%d) after Observe(%d) = %d, want 1", c.bucket, c.v, got)
		}
		// Every quantile of a single observation lands in its bucket, so
		// the approximate answer must be exactly the bucket's upper bound
		// (which is >= the observation and within 2x of it).
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if got := h.ApproxQuantile(q); got != c.bound {
				t.Errorf("Observe(%d): ApproxQuantile(%v) = %d, want %d", c.v, q, got, c.bound)
			}
		}
	}
}

// TestHistogramStringBoundaries checks that the rendered ranges agree
// with where the values actually landed.
func TestHistogramStringBoundaries(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(1)
	h.Observe(2)
	h.Observe(16)
	h.Observe(17)
	s := h.String()
	for _, want := range []string{"[0,1]:2", "(1,2]:1", "(8,16]:1", "(16,32]:1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(1, 0); got != 0 {
		t.Fatalf("Ratio(1,0) = %v, want 0", got)
	}
	if got := Ratio(1, 4); got != 0.25 {
		t.Fatalf("Ratio(1,4) = %v, want 0.25", got)
	}
}

// TestLocalHistogramPublishTo checks the delta-publish contract: a
// publish is idempotent until new observations arrive, and several
// local histograms accumulate into one shared series.
func TestLocalHistogramPublishTo(t *testing.T) {
	var a, b LocalHistogram
	var dst Histogram

	a.Observe(3)
	a.Observe(100)
	a.PublishTo(&dst)
	a.PublishTo(&dst) // no new observations: must not double-count
	if got := dst.Count(); got != 2 {
		t.Fatalf("Count after repeated publish = %d, want 2", got)
	}
	if got := dst.Sum(); got != 103 {
		t.Fatalf("Sum after repeated publish = %d, want 103", got)
	}

	a.Observe(3)
	a.PublishTo(&dst)
	if got := dst.Count(); got != 3 {
		t.Fatalf("Count after incremental publish = %d, want 3", got)
	}
	if got := dst.BucketCount(2); got != 2 { // 3 lands in (2,4]
		t.Fatalf("BucketCount(2) = %d, want 2", got)
	}

	b.Observe(100)
	b.PublishTo(&dst) // a second writer accumulates, not overwrites
	if got, want := dst.Count(), uint64(4); got != want {
		t.Fatalf("Count after second histogram = %d, want %d", got, want)
	}
	if got, want := dst.Sum(), uint64(206); got != want {
		t.Fatalf("Sum after second histogram = %d, want %d", got, want)
	}

	if a.Count() != 3 || a.Sum() != 106 {
		t.Fatalf("local tallies disturbed: count=%d sum=%d", a.Count(), a.Sum())
	}
}
