// Package stats provides light-weight counters, distribution sketches, and
// summary statistics used throughout the CaRDS runtime and benchmark
// harness.
//
// Everything in this package is deterministic and allocation-conscious: the
// runtime increments counters on the memory-access fast path, so the
// primitives here avoid locks unless the caller asks for a concurrent view.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync/atomic"
)

// Counter is a monotonically increasing event counter.
//
// The zero value is ready to use. Counter is safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Store sets the counter to an absolute value. It exists for publishing
// point-in-time copies of counters maintained elsewhere (e.g. the
// single-threaded runtime tallies) into a concurrent registry.
func (c *Counter) Store(v uint64) { c.v.Store(v) }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is a value that can move in both directions (e.g. bytes resident).
// Gauge is safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Add adds delta (which may be negative) to the gauge.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Set stores an absolute value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Sample accumulates observations and answers order statistics over them.
// It retains every observation, so it is intended for bounded trials such
// as Table 1's "median cycles over 100 trials", not for per-access
// instrumentation (use Histogram for that).
//
// The zero value is ready to use. Sample is NOT safe for concurrent use.
type Sample struct {
	xs     []float64
	sorted bool
}

// Observe records one observation.
func (s *Sample) Observe(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Sum returns the sum of all observations.
func (s *Sample) Sum() float64 {
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.Sum() / float64(len(s.xs))
}

// Variance returns the unbiased sample variance, or 0 for n < 2.
func (s *Sample) Variance() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// Stddev returns the sample standard deviation.
func (s *Sample) Stddev() float64 { return math.Sqrt(s.Variance()) }

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1) using linear
// interpolation between closest ranks. It returns 0 for an empty sample.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if q <= 0 {
		s.sort()
		return s.xs[0]
	}
	if q >= 1 {
		s.sort()
		return s.xs[len(s.xs)-1]
	}
	s.sort()
	pos := q * float64(len(s.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	return s.xs[0]
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	return s.xs[len(s.xs)-1]
}

// Reset discards all observations.
func (s *Sample) Reset() {
	s.xs = s.xs[:0]
	s.sorted = true
}

// Histogram is a power-of-two bucketed histogram for non-negative integer
// observations (latencies in cycles, object sizes in bytes). Bucket 0
// covers {0, 1}; bucket i >= 1 covers (2^(i-1), 2^i], i.e. every bucket's
// upper bound is inclusive and BucketBound(i) is the largest value the
// bucket can hold.
//
// The zero value is ready to use. Histogram is safe for concurrent use.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// NumBuckets is the number of histogram buckets (bucket 0 plus one per
// remaining power of two of the uint64 range).
const NumBuckets = 65

// bucketOf returns the bucket index for v.
func bucketOf(v uint64) int {
	if v <= 1 {
		return 0
	}
	return 64 - bits.LeadingZeros64(v-1)
}

// BucketBound returns the inclusive upper bound of bucket i: 1 for
// bucket 0, 2^i for 1 <= i < 64, and MaxUint64 for the last bucket.
func BucketBound(i int) uint64 {
	switch {
	case i <= 0:
		return 1
	case i >= 64:
		return math.MaxUint64
	}
	return 1 << uint(i)
}

// BucketCount returns the number of observations recorded in bucket i.
func (h *Histogram) BucketCount(i int) uint64 {
	if i < 0 || i >= NumBuckets {
		return 0
	}
	return h.buckets[i].Load()
}

// Observe records a single value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Mean returns the mean of all observed values, or 0 when empty.
func (h *Histogram) Mean() float64 {
	c := h.Count()
	if c == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(c)
}

// ApproxQuantile returns an upper bound for the q-th quantile: the
// inclusive upper bound (BucketBound) of the bucket in which the quantile
// falls. Accurate to a factor of two, which is enough for latency triage.
func (h *Histogram) ApproxQuantile(q float64) uint64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var cum uint64
	last := 0
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c > 0 {
			last = i
		}
		cum += c
		if cum > target {
			return BucketBound(i)
		}
	}
	// Unreachable when reads are quiescent (Observe fills buckets before
	// count, so cum >= total here); under a concurrent reset fall back to
	// the highest non-empty bucket rather than an out-of-range sentinel.
	return BucketBound(last)
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// String renders the non-empty buckets, for debugging. Ranges match the
// bucket definition: "[0,1]" for bucket 0, "(lo,hi]" with hi=BucketBound(i)
// for the rest.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hist{n=%d mean=%.1f", h.Count(), h.Mean())
	for i := range h.buckets {
		if c := h.buckets[i].Load(); c > 0 {
			if i == 0 {
				fmt.Fprintf(&b, " [0,1]:%d", c)
			} else {
				fmt.Fprintf(&b, " (%d,%d]:%d", BucketBound(i-1), BucketBound(i), c)
			}
		}
	}
	b.WriteByte('}')
	return b.String()
}

// LocalHistogram is the single-writer variant of Histogram: identical
// buckets, plain fields, no atomics. It exists because an atomic
// Observe costs an order of magnitude more than a plain one, which is
// measurable on the runtime's remote-fault path. Use it on paths owned
// by one goroutine and PublishTo a shared Histogram at snapshot time.
//
// The zero value is ready to use. LocalHistogram is NOT safe for
// concurrent use.
type LocalHistogram struct {
	buckets [NumBuckets]uint64
	count   uint64
	sum     uint64

	// Tallies as of the last PublishTo. Publishing only the delta keeps
	// repeated publishes idempotent and lets several histograms (e.g.
	// one per runtime in a sweep) accumulate into one shared series.
	pubBuckets [NumBuckets]uint64
	pubCount   uint64
	pubSum     uint64
}

// Observe records a single value.
func (h *LocalHistogram) Observe(v uint64) {
	h.buckets[bucketOf(v)]++
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *LocalHistogram) Count() uint64 { return h.count }

// Sum returns the sum of all observed values.
func (h *LocalHistogram) Sum() uint64 { return h.sum }

// Reset zeroes the histogram.
func (h *LocalHistogram) Reset() { *h = LocalHistogram{} }

// PublishTo adds the observations recorded since the last PublishTo
// into dst, making the single-writer histogram visible through a
// concurrent one (e.g. a metric registry). Because only the delta is
// added, repeated publishes are idempotent and multiple local
// histograms can accumulate into one shared series. Buckets land
// before the count, mirroring Observe's ordering, so concurrent
// readers never see count exceed the bucket sum.
func (h *LocalHistogram) PublishTo(dst *Histogram) {
	for i := range h.buckets {
		if d := h.buckets[i] - h.pubBuckets[i]; d != 0 {
			dst.buckets[i].Add(d)
			h.pubBuckets[i] = h.buckets[i]
		}
	}
	if d := h.sum - h.pubSum; d != 0 {
		dst.sum.Add(d)
		h.pubSum = h.sum
	}
	if d := h.count - h.pubCount; d != 0 {
		dst.count.Add(d)
		h.pubCount = h.count
	}
}

// Ratio returns num/den as a float, or 0 when den is zero. It exists
// because hit-rate style divisions appear everywhere in policy code.
func Ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
