package poolalloc

import (
	"testing"

	"cards/internal/dsa"
	"cards/internal/ir"
)

func TestListing1Transform(t *testing.T) {
	m := ir.BuildListing1(128, 4)
	res := dsa.Analyze(m)
	pa := Transform(m, res)

	// alloc() returns escaping memory, so it must receive a handle arg
	// (the AddDSHandleArg path) — Listing 2's alloc(unsigned int DH).
	allocF := m.FuncByName("alloc")
	hp := pa.HandleParams["alloc"]
	if len(hp) != 1 {
		t.Fatalf("alloc handle params = %d, want 1", len(hp))
	}
	if len(allocF.Params) != 1 {
		t.Fatalf("alloc now has %d params, want 1", len(allocF.Params))
	}

	// Set() does not allocate; no handles.
	if len(pa.HandleParams["Set"]) != 0 {
		t.Errorf("Set should receive no handle params, got %d", len(pa.HandleParams["Set"]))
	}

	// main passes DISTINCT constant handles at its two alloc call sites
	// (Listing 2: alloc(DH1) / alloc(DH2)).
	var handles []int64
	m.Main().Instrs(func(_ *ir.Block, _ int, in *ir.Instr) bool {
		if in.Op == ir.OpCall && in.Callee == "alloc" {
			if len(in.Args) != 1 {
				t.Fatalf("alloc call has %d args, want 1", len(in.Args))
			}
			c, ok := in.Args[0].(ir.IntConst)
			if !ok {
				t.Fatalf("alloc call handle is %T, want constant", in.Args[0])
			}
			handles = append(handles, c.V)
		}
		return true
	})
	if len(handles) != 2 {
		t.Fatalf("found %d alloc calls, want 2", len(handles))
	}
	if handles[0] == handles[1] {
		t.Fatalf("both calls pass handle %d — context sensitivity lost", handles[0])
	}

	// The alloc instruction inside alloc() now carries a dynamic handle.
	allocF.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) bool {
		if in.Op == ir.OpAlloc {
			if in.DSHandle == nil {
				t.Fatal("alloc instruction has no DSHandle")
			}
			if _, isConst := in.DSHandle.(ir.IntConst); isConst {
				t.Fatal("handle inside alloc() should be the parameter, not a constant")
			}
		}
		return true
	})
	if pa.DynamicHandles != 1 {
		t.Errorf("DynamicHandles = %d, want 1", pa.DynamicHandles)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("post-transform verify: %v", err)
	}
}

func TestLocalAllocationStaticHandle(t *testing.T) {
	// Non-escaping scratch buffer: handle is a compile-time constant
	// (the DS_INIT path of Algorithm 1).
	m := ir.NewModule("local")
	work := m.NewFunc("work", ir.I64())
	b := ir.NewBuilder(work)
	buf := b.Alloc(ir.I64(), ir.CI(16))
	v := b.Load(ir.I64(), b.Idx(buf, ir.CI(0)))
	b.Ret(v)
	mainF := m.NewFunc("main", ir.Void())
	mb := ir.NewBuilder(mainF)
	mb.Call(work)
	mb.Ret(nil)
	m.AssignSites()
	ir.MustVerify(m)

	res := dsa.Analyze(m)
	pa := Transform(m, res)

	if len(pa.HandleParams["work"]) != 0 {
		t.Error("non-escaping allocation should not add handle params")
	}
	if pa.StaticHandles != 1 || pa.DynamicHandles != 0 {
		t.Errorf("static/dynamic = %d/%d, want 1/0", pa.StaticHandles, pa.DynamicHandles)
	}
	var ds int
	work.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) bool {
		if in.Op == ir.OpAlloc {
			ds = in.DS
		}
		return true
	})
	if ds != res.DS[0].ID {
		t.Errorf("alloc.DS = %d, want %d", ds, res.DS[0].ID)
	}
}

func TestHandleForwardingThroughChain(t *testing.T) {
	// main -> mid -> leaf, where leaf allocates memory returned all the
	// way up. Handles must thread through mid.
	m := ir.NewModule("chain")
	leaf := m.NewFunc("leaf", ir.Ptr(ir.I64()))
	lb := ir.NewBuilder(leaf)
	lb.Ret(lb.Alloc(ir.I64(), ir.CI(8)))

	mid := m.NewFunc("mid", ir.Ptr(ir.I64()))
	mb := ir.NewBuilder(mid)
	mb.Ret(mb.Call(leaf))

	mainF := m.NewFunc("main", ir.Void())
	b := ir.NewBuilder(mainF)
	p1 := b.Call(mid)
	p2 := b.Call(mid)
	b.Store(ir.I64(), ir.CI(1), p1)
	b.Store(ir.I64(), ir.CI(2), p2)
	b.Ret(nil)
	m.AssignSites()
	ir.MustVerify(m)

	res := dsa.Analyze(m)
	if len(res.DS) != 2 {
		t.Fatalf("DS = %d, want 2 (context sensitivity through two levels)", len(res.DS))
	}
	pa := Transform(m, res)

	if len(pa.HandleParams["leaf"]) != 1 || len(pa.HandleParams["mid"]) != 1 {
		t.Fatalf("handle params leaf=%d mid=%d, want 1/1",
			len(pa.HandleParams["leaf"]), len(pa.HandleParams["mid"]))
	}
	// mid must forward its own handle param to leaf.
	midF := m.FuncByName("mid")
	midF.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) bool {
		if in.Op == ir.OpCall && in.Callee == "leaf" {
			if len(in.Args) != 1 {
				t.Fatalf("leaf call args = %d, want 1", len(in.Args))
			}
			r, ok := in.Args[0].(*ir.Reg)
			if !ok || !r.Param {
				t.Fatalf("mid should forward its handle param, got %v", in.Args[0])
			}
		}
		return true
	})
	// main passes two distinct constants to mid.
	var hs []int64
	mainF.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) bool {
		if in.Op == ir.OpCall && in.Callee == "mid" {
			c := in.Args[len(in.Args)-1].(ir.IntConst)
			hs = append(hs, c.V)
		}
		return true
	})
	if len(hs) != 2 || hs[0] == hs[1] {
		t.Fatalf("main handles to mid = %v, want two distinct", hs)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("post-transform verify: %v", err)
	}
}

func TestRecursiveAllocatorSharedHandle(t *testing.T) {
	// A self-recursive list builder: one DS, handle threads through the
	// recursive call.
	m := ir.NewModule("recalloc")
	node := ir.NewStruct("node", ir.F("val", ir.I64()), ir.F("next", ir.Ptr(ir.I64())))
	var build *ir.Function
	build = m.NewFunc("build", ir.Ptr(node), ir.P("n", ir.I64()))
	b := ir.NewBuilder(build)
	base := b.NewBlock("base")
	rec := b.NewBlock("rec")
	b.Br(b.LE(build.Params[0], ir.CI(0)), base, rec)
	b.SetBlock(base)
	nul := b.Alloc(node, ir.CI(1)) // sentinel
	b.Ret(nul)
	b.SetBlock(rec)
	p := b.Alloc(node, ir.CI(1))
	rest := b.Call(build, b.Sub(build.Params[0], ir.CI(1)))
	b.Store(ir.Ptr(node), rest, b.FieldAddr(p, node, "next"))
	b.Ret(p)

	mainF := m.NewFunc("main", ir.Void())
	mb := ir.NewBuilder(mainF)
	mb.Call(build, ir.CI(10))
	mb.Ret(nil)
	m.AssignSites()
	ir.MustVerify(m)

	res := dsa.Analyze(m)
	if len(res.DS) != 1 {
		t.Fatalf("DS = %d, want 1", len(res.DS))
	}
	pa := Transform(m, res)
	if got := len(pa.HandleParams["build"]); got != 1 {
		t.Fatalf("build handle params = %d, want 1", got)
	}
	// The recursive call must forward the handle.
	buildF := m.FuncByName("build")
	h := pa.HandleParams["build"][0]
	found := false
	buildF.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) bool {
		if in.Op == ir.OpCall && in.Callee == "build" {
			found = true
			if in.Args[len(in.Args)-1] != ir.Value(h) {
				t.Errorf("recursive call forwards %v, want handle param %v",
					in.Args[len(in.Args)-1], h)
			}
		}
		return true
	})
	if !found {
		t.Fatal("no recursive call found")
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("post-transform verify: %v", err)
	}
}
