// Package poolalloc implements the pool allocation transformation of
// CaRDS (paper Algorithm 1, reimplemented from Lattner & Adve's automatic
// pool allocation). It is the channel through which compiler-identified
// data structure identity reaches the runtime:
//
//   - Phase 1 walks every function's DS graph. Heap nodes that escape the
//     function get a fresh data-structure-handle parameter added to the
//     function (AddDSHandleArg); non-escaping heap nodes bind to their
//     statically known handle (the DS_INIT path). Either way dsmap
//     records the handle value for the node.
//   - Phase 2 rewrites the program: every alloc becomes a dsalloc
//     carrying its handle (paper Listing 2), and every call site passes
//     the handles the callee's argnodes require, translated through the
//     DSA clone maps.
//
// Unlike the original bottom-up algorithm, CaRDS feeds the transformation
// with the context-sensitive disjoint structures from SeaDSA-style
// analysis (paper §4.1), which is why two calls to the same allocating
// helper can carry two different handles — the property Listing 2
// demonstrates with DH1/DH2.
package poolalloc

import (
	"fmt"
	"sort"

	"cards/internal/dsa"
	"cards/internal/ir"
)

// NoDS is the handle value for allocations outside any identified data
// structure (should not occur for verified programs; defensive).
const NoDS = -1

// Result records what the transformation did, for downstream passes and
// for tests.
type Result struct {
	// HandleParams maps function name to the handle parameters added in
	// phase 1, in argnode order.
	HandleParams map[string][]*ir.Reg

	// ArgNodes maps function name to the graph nodes whose handles the
	// function receives, parallel to HandleParams.
	ArgNodes map[string][]*dsa.Node

	// StaticHandles counts allocations bound to compile-time constant
	// handles; DynamicHandles counts those receiving handles via
	// parameters.
	StaticHandles, DynamicHandles int
}

// Transform applies pool allocation to m in place, using the DSA result.
// The module is re-verified afterwards; an invalid rewrite is a bug and
// panics via ir.MustVerify.
func Transform(m *ir.Module, res *dsa.Result) *Result {
	out := &Result{
		HandleParams: make(map[string][]*ir.Reg),
		ArgNodes:     make(map[string][]*dsa.Node),
	}

	// dsmap per function: canonical node -> handle value.
	dsmap := make(map[string]map[*dsa.Node]ir.Value)

	// ---- Phase 1: assign handles (Algorithm 1, lines 1–13). ----
	for _, f := range m.Funcs {
		g := res.Graphs[f.Name]
		if g == nil {
			continue
		}
		fmap := make(map[*dsa.Node]ir.Value)
		dsmap[f.Name] = fmap
		escaping := g.EscapingNodes()

		// Deterministic node order: by first allocation site.
		nodes := g.HeapNodes()
		sort.Slice(nodes, func(i, j int) bool { return nodeKey(nodes[i]) < nodeKey(nodes[j]) })

		for _, n := range nodes {
			if len(n.Sites) == 0 {
				continue
			}
			if escaping[n] {
				// AddDSHandleArg: the caller will tell us which data
				// structure this memory belongs to.
				h := f.NewReg(fmt.Sprintf("ds_h%d", len(out.HandleParams[f.Name])), ir.I64())
				h.Param = true
				f.Params = append(f.Params, h)
				out.HandleParams[f.Name] = append(out.HandleParams[f.Name], h)
				out.ArgNodes[f.Name] = append(out.ArgNodes[f.Name], n)
				fmap[n] = h
			} else {
				// DS_INIT path: statically known instance.
				d := res.DSOfNode(n)
				id := int64(NoDS)
				if d != nil {
					id = int64(d.ID)
				}
				fmap[n] = ir.CI(id)
			}
		}
	}

	// ---- Phase 2: rewrite allocs and calls (lines 14–24). ----
	for _, f := range m.Funcs {
		g := res.Graphs[f.Name]
		if g == nil {
			continue
		}
		fmap := dsmap[f.Name]
		f.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) bool {
			switch in.Op {
			case ir.OpAlloc:
				// replace malloc with dsalloc(size, dsmap(N(ptr))).
				c, ok := g.Cells[in.Dst]
				if !ok {
					in.DSHandle = ir.CI(NoDS)
					return true
				}
				n := c.Find().N
				h, ok := fmap[n]
				if !ok {
					h = ir.CI(NoDS)
				}
				in.DSHandle = h
				if konst, isConst := h.(ir.IntConst); isConst {
					in.DS = int(konst.V)
					out.StaticHandles++
				} else {
					out.DynamicHandles++
				}

			case ir.OpCall:
				// addCallArg(dsmap(NodeInCaller(F, I, n))) for each
				// argnode of the callee.
				argNodes := out.ArgNodes[in.Callee]
				if len(argNodes) == 0 {
					return true
				}
				clone := res.CloneMaps[in]
				for _, calleeN := range argNodes {
					callerN := nodeInCaller(clone, calleeN)
					var v ir.Value = ir.CI(NoDS)
					if callerN != nil {
						if h, ok := fmap[callerN.Find()]; ok {
							v = h
						}
					}
					in.Args = append(in.Args, v)
				}
			}
			return true
		})
	}

	ir.MustVerify(m)
	return out
}

// nodeInCaller translates a callee argnode into the caller's graph using
// the DSA clone map; a nil map means caller and callee share a graph
// (mutual recursion), so the node is its own translation.
func nodeInCaller(clone map[*dsa.Node]*dsa.Node, calleeN *dsa.Node) *dsa.Node {
	if clone == nil {
		return calleeN
	}
	if n, ok := clone[calleeN.Find()]; ok {
		return n
	}
	return nil
}

func nodeKey(n *dsa.Node) string {
	if len(n.Sites) == 0 {
		return ""
	}
	return fmt.Sprintf("%s#%09d", n.Sites[0].Fn, n.Sites[0].Site)
}
