package remote

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"cards/internal/obs"
	"cards/internal/rdma"
	"cards/internal/testutil"
)

// compressible returns n bytes with heavy repetition (LZ shrinks it).
func compressible(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i / 16 % 7)
	}
	return b
}

func incompressible(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestCompactSessionRoundTrip(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	reg := obs.NewRegistry()
	srv, cl := startPipelined(t, PipelineOpts{Obs: reg})
	if !cl.CompactCapable() {
		t.Fatal("session against the current server should negotiate the compact tier")
	}

	objs := map[[2]int][]byte{
		{1, 0}: compressible(512),
		{1, 1}: incompressible(512, 42),
		{1, 2}: make([]byte, 256), // all-zero: SchemeZero both directions
		{2, 9}: compressible(4096),
	}
	for k, v := range objs {
		if err := cl.WriteObj(k[0], k[1], v); err != nil {
			t.Fatal(err)
		}
	}
	for k, v := range objs {
		got := make([]byte, len(v))
		if err := cl.ReadObj(k[0], k[1], got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("roundtrip mismatch for %v", k)
		}
		// The server stored the decompressed image, not the wire form.
		if stored := srv.Store.Read(uint32(k[0]), uint32(k[1]), uint32(len(v))); !bytes.Equal(stored, v) {
			t.Fatalf("server stored corrupted bytes for %v", k)
		}
	}

	// The session actually rode the compact verbs.
	snap := reg.Snapshot()
	for _, verb := range []string{"WRITEBATCH-C", "READBATCH-C", "DATABATCH-C", "ACKBATCH-C"} {
		if v := snap.Counter(MetricWireBytes, "verb", verb); v == 0 {
			t.Fatalf("no wire bytes recorded for %s", verb)
		}
	}
}

// TestCompactCompressionShrinksWire scans the same objects over a
// compact+compression session and a compact-but-raw session: the
// compressed session must ship strictly fewer reply bytes for
// compressible data, and the adaptive policy must stop attempting
// compression for a DS that never shrinks.
func TestCompactCompressionShrinksWire(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	srv := NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	const n, size = 64, 1024
	for i := 0; i < n; i++ {
		srv.Store.Write(1, uint32(i), compressible(size))
	}

	scan := func(opts PipelineOpts) uint64 {
		reg := obs.NewRegistry()
		opts.Obs = reg
		cl, err := DialPipelined(addr, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		buf := make([]byte, size)
		for i := 0; i < n; i++ {
			if err := cl.ReadObj(1, i, buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, compressible(size)) {
				t.Fatalf("scan mismatch at %d", i)
			}
		}
		return reg.Snapshot().Counter(MetricWireBytes, "verb", "DATABATCH-C")
	}

	withLZ := scan(PipelineOpts{})
	raw := scan(PipelineOpts{Compression: "off"})
	if withLZ == 0 || raw == 0 {
		t.Fatalf("scans did not ride DATABATCH-C: lz=%d raw=%d", withLZ, raw)
	}
	if withLZ*2 >= raw {
		t.Fatalf("compression saved too little on compressible data: lz=%d raw=%d", withLZ, raw)
	}
}

func TestCompressPolicyAdapts(t *testing.T) {
	var p compressPolicy
	// Unseen: always probe.
	if !p.shouldCompress(7) {
		t.Fatal("unseen DS should attempt compression")
	}
	// Feed incompressible outcomes until the EWMA crosses the threshold.
	for i := 0; i < 64; i++ {
		p.observe(7, 1000, 1000)
	}
	attempts := 0
	const trials = 3 * probePeriod
	for i := 0; i < trials; i++ {
		if p.shouldCompress(7) {
			attempts++
			p.observe(7, 1000, 1000)
		}
	}
	if attempts == 0 {
		t.Fatal("policy must keep probing an incompressible DS")
	}
	if attempts > trials/probePeriod+1 {
		t.Fatalf("policy attempted %d of %d on an incompressible DS", attempts, trials)
	}
	// A compressible streak flips it back on.
	for i := 0; i < 64; i++ {
		p.observe(7, 1000, 300)
	}
	if !p.shouldCompress(7) {
		t.Fatal("policy must resume compressing once the data shrinks again")
	}
}

// TestCompactRangeWriteRMW exercises the dirty-range sub-encoding end
// to end: only the extents' bytes ship, the server splices them into
// the stored image, and untouched bytes survive.
func TestCompactRangeWriteRMW(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	srv, cl := startPipelined(t, PipelineOpts{})

	base := incompressible(1024, 7)
	if err := cl.WriteObj(3, 5, base); err != nil {
		t.Fatal(err)
	}
	// Mutate two disjoint ranges of a private copy, then ship only them.
	img := append([]byte(nil), base...)
	copy(img[64:96], bytes.Repeat([]byte{0xEE}, 32))
	copy(img[900:908], []byte("rangewrb"))
	exts := []rdma.Extent{{Off: 64, Len: 32}, {Off: 900, Len: 8}}
	errCh := make(chan error, 1)
	cl.IssueWriteRanges(3, 5, img, exts, func(err error) { errCh <- err })
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if got := srv.Store.Read(3, 5, 1024); !bytes.Equal(got, img) {
		t.Fatal("range write did not splice correctly")
	}

	// Range write to an absent object: the base is all zeros.
	sparse := make([]byte, 512)
	copy(sparse[100:116], bytes.Repeat([]byte{0xAB}, 16))
	cl.IssueWriteRanges(3, 6, sparse, []rdma.Extent{{Off: 100, Len: 16}}, func(err error) { errCh <- err })
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if got := srv.Store.Read(3, 6, 512); !bytes.Equal(got, sparse) {
		t.Fatal("range write onto an absent object must splice into zeros")
	}

	// Degenerate range sets fall back to a full write transparently.
	full := incompressible(256, 9)
	cl.IssueWriteRanges(3, 7, full, []rdma.Extent{{Off: 0, Len: 256}}, func(err error) { errCh <- err })
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if got := srv.Store.Read(3, 7, 256); !bytes.Equal(got, full) {
		t.Fatal("full-coverage range set must still land")
	}
}

// TestCompactRangeWriteEpoch verifies the conditional-apply contract of
// epoch-stamped range writes: predecessor base applies, replay is
// idempotent, an epoch gap rejects with ErrStaleRangeBase, and an
// obsolete tuple is dropped with a positive ack.
func TestCompactRangeWriteEpoch(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	srv, cl := startPipelined(t, PipelineOpts{})

	base := compressible(512)
	if err := cl.WriteObjEpoch(4, 1, 1, base); err != nil {
		t.Fatal(err)
	}
	img := append([]byte(nil), base...)
	copy(img[10:20], bytes.Repeat([]byte{0x5A}, 10))
	exts := []rdma.Extent{{Off: 10, Len: 10}}
	errCh := make(chan error, 1)

	//

	// Epoch 3 against a base at epoch 1: a missed epoch, must reject.
	cl.IssueWriteRangesEpoch(4, 1, 3, img, exts, func(err error) { errCh <- err })
	if err := <-errCh; !errors.Is(err, ErrStaleRangeBase) {
		t.Fatalf("stale-base range write returned %v, want ErrStaleRangeBase", err)
	}
	if got := srv.Store.Read(4, 1, 512); !bytes.Equal(got, base) {
		t.Fatal("rejected range write must not touch the stored image")
	}

	// Epoch 2 against epoch 1: the fresh case.
	cl.IssueWriteRangesEpoch(4, 1, 2, img, exts, func(err error) { errCh <- err })
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if got := srv.Store.Read(4, 1, 512); !bytes.Equal(got, img) {
		t.Fatal("fresh epoch range write must splice")
	}
	if ep := srv.Store.Epoch(4, 1); ep != 2 {
		t.Fatalf("stored epoch = %d, want 2", ep)
	}

	// Replaying epoch 2 (the uncertain-ack reissue) is a positive no-op.
	cl.IssueWriteRangesEpoch(4, 1, 2, img, exts, func(err error) { errCh <- err })
	if err := <-errCh; err != nil {
		t.Fatalf("idempotent replay must ack positively, got %v", err)
	}

	// An obsolete epoch (stored moved ahead) is dropped, ack positive.
	newer := append([]byte(nil), img...)
	newer[0] = 0xFF
	if err := cl.WriteObjEpoch(4, 1, 5, newer); err != nil {
		t.Fatal(err)
	}
	cl.IssueWriteRangesEpoch(4, 1, 2, img, exts, func(err error) { errCh <- err })
	if err := <-errCh; err != nil {
		t.Fatalf("obsolete range write must be dropped with a positive ack, got %v", err)
	}
	if got := srv.Store.Read(4, 1, 512); !bytes.Equal(got, newer) {
		t.Fatal("obsolete range write must not clobber the newer image")
	}
}

// TestPipelinedCompactDowngradeAgainstPreCompactServer mirrors the
// trace downgrade test for the compact tier: a default client always
// asks for FeatCompact|FeatCompress, but a pre-compact server's
// feature reply omits them — the session must downgrade to the
// fixed-width batch frames and keep working, a forced disconnect must
// renegotiate to the same downgrade, and every frame the downgraded
// client sends must be byte-identical to what a client with the
// compact tier never configured sends for the same ops.
func TestPipelinedCompactDowngradeAgainstPreCompactServer(t *testing.T) {
	testutil.NoGoroutineLeaks(t)

	compactAddr, compactMu, compactCap, compactConns := preTraceListener(t)
	plainAddr, plainMu, plainCap, _ := preTraceListener(t)

	opts := PipelineOpts{
		Timeout:   time.Second,
		RetryMax:  4,
		RetryBase: 5 * time.Millisecond,
	}
	copts := opts
	copts.NoCompact = true
	copts.Compression = "off"
	asking, err := DialPipelined(compactAddr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer asking.Close()
	control, err := DialPipelined(plainAddr, copts)
	if err != nil {
		t.Fatal(err)
	}
	defer control.Close()

	if asking.featReq&rdma.FeatCompact == 0 || asking.featReq&rdma.FeatCompress == 0 {
		t.Fatal("default client should request the compact tier on every negotiation")
	}
	if control.featReq&(rdma.FeatCompact|rdma.FeatCompress) != 0 {
		t.Fatal("control client must not request the compact tier")
	}
	if asking.CompactCapable() {
		t.Fatal("pre-compact server cannot parse compact frames: session must downgrade")
	}

	// The same op sequence on both clients, one op at a time so each op
	// is exactly one wire frame and the two streams stay comparable.
	chase := func(c *PipelinedClient) {
		t.Helper()
		buf := make([]byte, 2)
		if err := c.ReadObj(1, 7, buf); err != nil || buf[0] != 0xAB || buf[1] != 0xCD {
			t.Fatalf("downgraded session read = %x, %v", buf, err)
		}
		if err := c.WriteObj(1, 8, []byte{0x11, 0x22, 0x33}); err != nil {
			t.Fatalf("downgraded session write: %v", err)
		}
		one := make([]byte, 3)
		if err := c.ReadObj(1, 8, one); err != nil || one[0] != 0x11 {
			t.Fatalf("read-back = %x, %v", one, err)
		}
	}
	chase(asking)
	chase(control)

	compactMu.Lock()
	askingBytes := append([]byte(nil), compactCap.Bytes()...)
	compactMu.Unlock()
	plainMu.Lock()
	controlBytes := append([]byte(nil), plainCap.Bytes()...)
	plainMu.Unlock()
	askingOps := skipFirstFrame(t, askingBytes)
	controlOps := skipFirstFrame(t, controlBytes)
	if !bytes.Equal(askingOps, controlOps) {
		t.Fatalf("downgraded session not byte-exact with legacy framing:\n asking %x\n legacy %x",
			askingOps, controlOps)
	}

	// Kill the server side: the next read breaks, redials, and
	// renegotiates with the full ask — landing on the same downgrade.
	compactMu.Lock()
	for _, c := range *compactConns {
		c.Close()
	}
	*compactConns = (*compactConns)[:0]
	compactMu.Unlock()
	buf := make([]byte, 2)
	if err := asking.ReadObj(1, 7, buf); err != nil {
		t.Fatalf("read after forced disconnect should retry through redial: %v", err)
	}
	if buf[0] != 0xAB || buf[1] != 0xCD {
		t.Fatalf("post-redial read = %x", buf)
	}
	if asking.CompactCapable() {
		t.Fatal("renegotiation against the pre-compact server must downgrade again")
	}
	if asking.featReq&rdma.FeatCompact == 0 {
		t.Fatal("the downgrade must not clear the per-connection compact ask")
	}
}

// TestCompactRangeWriteDowngradeFallsBackToFullObject: a range write
// issued against a session without FeatCompact must transparently ship
// the full object image.
func TestCompactRangeWriteDowngradeFallsBackToFullObject(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	addr, _, _, _ := preTraceListener(t)
	cl, err := DialPipelined(addr, PipelineOpts{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.CompactCapable() {
		t.Fatal("pre-compact server must not negotiate compact")
	}
	img := compressible(256)
	img[30] = 0x77
	errCh := make(chan error, 1)
	cl.IssueWriteRanges(2, 2, img, []rdma.Extent{{Off: 30, Len: 1}}, func(err error) { errCh <- err })
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 256)
	if err := cl.ReadObj(2, 2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, img) {
		t.Fatal("fallback full-object write must land the whole image")
	}
}
