package remote

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync/atomic"
	"time"
)

// Fault-model errors shared by both clients.
var (
	// ErrTimeout reports a round trip that exceeded its deadline. It
	// wraps os.ErrDeadlineExceeded, so callers can errors.Is against
	// either sentinel. A timed-out connection is always abandoned: the
	// response may still arrive later, and pairing it with the next
	// request would desynchronize the stream.
	ErrTimeout = fmt.Errorf("remote: round-trip deadline exceeded: %w", os.ErrDeadlineExceeded)

	// ErrUncertainWrite reports a write whose outcome is unknown: the
	// transport failed after the request may have reached the server, so
	// the mutation may or may not have been applied. The transport never
	// retries these silently — only a caller that knows its writes are
	// idempotent (the farmem runtime's full-object, single-writer
	// write-backs are) may safely replay them.
	ErrUncertainWrite = errors.New("remote: write outcome uncertain (transport failed mid round trip)")
)

// uncertain wraps a transport error in ErrUncertainWrite, keeping the
// cause inspectable through errors.Is/As.
func uncertain(err error) error {
	return fmt.Errorf("%w: %w", ErrUncertainWrite, err)
}

// connDeadline is the deadline surface of net.Conn and net.Pipe; the
// guard uses it when available and falls back to a watchdog timer that
// closes the connection otherwise.
type connDeadline interface {
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// ioGuard bounds one I/O exchange on a connection. Two strategies:
// real deadlines when the transport has them (TCP, net.Pipe), else a
// watchdog timer that closes the connection — either way the blocked
// I/O returns promptly and finish() maps the failure to ErrTimeout.
type ioGuard struct {
	dl    connDeadline
	timer *time.Timer
	fired *atomic.Bool
}

// guardIO arms a deadline of d over conn; d <= 0 arms nothing.
func guardIO(conn io.ReadWriteCloser, d time.Duration) *ioGuard {
	if d <= 0 {
		return nil
	}
	if dl, ok := conn.(connDeadline); ok {
		t := time.Now().Add(d)
		if dl.SetReadDeadline(t) == nil && dl.SetWriteDeadline(t) == nil {
			return &ioGuard{dl: dl}
		}
	}
	fired := new(atomic.Bool)
	return &ioGuard{
		fired: fired,
		timer: time.AfterFunc(d, func() {
			fired.Store(true)
			conn.Close()
		}),
	}
}

// finish disarms the guard and rewrites err when the deadline caused
// it. Call exactly once, with the result of the guarded exchange.
func (g *ioGuard) finish(err error) error {
	if g == nil {
		return err
	}
	if g.timer != nil {
		g.timer.Stop()
		if err != nil && g.fired.Load() {
			return fmt.Errorf("%w (%v)", ErrTimeout, err)
		}
		return err
	}
	// Clear the deadlines so later exchanges on this conn start fresh.
	g.dl.SetReadDeadline(time.Time{})
	g.dl.SetWriteDeadline(time.Time{})
	if err != nil && errors.Is(err, os.ErrDeadlineExceeded) {
		return fmt.Errorf("%w (%v)", ErrTimeout, err)
	}
	return err
}

// backoff computes the capped exponential backoff with jitter for
// retry attempt n (0-based): base<<n clamped to cap, plus up to 50%
// uniform jitter so a fleet of clients does not redial in lockstep.
func backoff(rng *rand.Rand, base, cap time.Duration, attempt int) time.Duration {
	if base <= 0 {
		base = 2 * time.Millisecond
	}
	if cap <= 0 {
		cap = 250 * time.Millisecond
	}
	d := base << uint(attempt)
	if d > cap || d <= 0 {
		d = cap
	}
	if rng != nil {
		d += time.Duration(rng.Int63n(int64(d)/2 + 1))
	}
	return d
}
