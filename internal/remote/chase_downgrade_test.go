package remote

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"cards/internal/rdma"
	"cards/internal/testutil"
)

// preChaseServe answers the full batch protocol — batching, CRC,
// WRITEBATCH, epochs — but not the traversal-offload extension: the
// feature reply omits FeatChase, exactly like a server built before the
// chase verbs existed. Chase programs therefore never reach the wire;
// the client must doom them locally and fall back to per-hop reads.
func preChaseServe(conn net.Conn, store *ObjectStore) {
	defer conn.Close()
	crc := false
	for {
		f, err := rdma.ReadFrameOpts(conn, crc, false)
		if err != nil {
			return
		}
		var resp rdma.Frame
		enableCRC := false
		switch f.Op {
		case rdma.OpPing:
			if feats, ok := rdma.DecodeFeatures(f.Payload); ok {
				resp = rdma.Frame{Op: rdma.OpOK,
					Payload: rdma.EncodeFeatures(rdma.FeatBatch | rdma.FeatCRC | rdma.FeatWriteBatch)}
				enableCRC = feats&rdma.FeatCRC != 0
			} else {
				resp = rdma.Frame{Op: rdma.OpOK}
			}
		case rdma.OpReadBatch:
			reqs, derr := rdma.DecodeReadBatch(f.Payload)
			if derr != nil {
				resp = rdma.ErrTagFrame(f.Tag, derr.Error())
				break
			}
			segs := make([][]byte, len(reqs))
			for i, r := range reqs {
				segs[i] = store.Read(r.DS, r.Idx, r.Size)
			}
			if resp, derr = rdma.EncodeDataBatch(f.Tag, segs); derr != nil {
				resp = rdma.ErrTagFrame(f.Tag, derr.Error())
			}
		case rdma.OpChaseBatch:
			// A correct client never sends this to us; fail loudly if one does.
			resp = rdma.ErrTagFrame(f.Tag, "unknown op CHASEBATCH")
		default:
			resp = rdma.ErrFrame("unexpected op")
		}
		if crc {
			err = rdma.WriteFrameCRC(conn, resp)
		} else {
			err = rdma.WriteFrame(conn, resp)
		}
		if err != nil {
			return
		}
		if enableCRC {
			crc = true
		}
	}
}

// chainStore builds a 4-node linked list in ds1: 64-byte objects with
// the successor's tagged address at offset 8, terminated by an untagged
// sentinel word. Returns the store and the per-object payload bytes.
func chainStore() (*ObjectStore, [][]byte) {
	store := NewObjectStore()
	const objSize = 64
	order := []uint32{0, 2, 1, 3} // traversal order != allocation order
	objs := make([][]byte, 4)
	for pos, idx := range order {
		b := make([]byte, objSize)
		for i := range b {
			b[i] = byte(0x40 + int(idx)*7 + i)
		}
		var next uint64 = 0xDEAD_BEEF // terminal sentinel, untagged
		if pos+1 < len(order) {
			next = 1<<63 | uint64(1)<<48 | uint64(order[pos+1])*objSize
		}
		binary.LittleEndian.PutUint64(b[8:], next)
		store.Write(1, idx, b)
		objs[idx] = b
	}
	return store, objs
}

// preChaseListener starts a pre-chase server over the 4-node chain that
// records every byte its clients send.
func preChaseListener(t *testing.T) (addr string, mu *sync.Mutex, capture *bytes.Buffer, conns *[]net.Conn) {
	t.Helper()
	store, _ := chainStore()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	mu = &sync.Mutex{}
	capture = &bytes.Buffer{}
	conns = &[]net.Conn{}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			*conns = append(*conns, conn)
			mu.Unlock()
			go preChaseServe(recordConn{Conn: conn, mu: mu, buf: capture}, store)
		}
	}()
	t.Cleanup(func() {
		mu.Lock()
		for _, c := range *conns {
			c.Close()
		}
		mu.Unlock()
	})
	return ln.Addr().String(), mu, capture, conns
}

// TestPipelinedChaseDowngradeAgainstPreChaseServer mirrors the trace
// downgrade test for the traversal-offload extension: a chase-capable
// client always asks for FeatChase, but a pre-chase server's feature
// reply omits it — chase programs must fail locally with
// ErrChaseUnsupported (no chase opcode ever reaches the wire), the
// per-hop fallback must read the chain byte-identically to a session
// that never attempted offload, and a forced disconnect must
// renegotiate to the same downgrade on the fresh stream.
func TestPipelinedChaseDowngradeAgainstPreChaseServer(t *testing.T) {
	testutil.NoGoroutineLeaks(t)

	chaseAddr, chaseMu, chaseCap, chaseConns := preChaseListener(t)
	plainAddr, plainMu, plainCap, _ := preChaseListener(t)
	_, objs := chainStore() // the expected chain payloads

	opts := PipelineOpts{
		Timeout:   time.Second,
		RetryMax:  4,
		RetryBase: 5 * time.Millisecond,
	}
	offload, err := DialPipelined(chaseAddr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer offload.Close()
	plain, err := DialPipelined(plainAddr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()

	if offload.featReq&rdma.FeatChase == 0 {
		t.Fatal("pipelined client should request FeatChase on every negotiation")
	}
	if offload.ChaseCapable() {
		t.Fatal("pre-chase server cannot serve programs: session must downgrade")
	}

	// The offload attempt fails definitively and locally.
	res, err := offload.Chase(rdma.ChaseReq{DS: 1, Start: 0, ObjSize: 64, NextOff: 8, Hops: 8})
	if !errors.Is(err, ErrChaseUnsupported) {
		t.Fatalf("chase on a downgraded session: res %+v err %v, want ErrChaseUnsupported", res, err)
	}

	// Per-hop fallback: walk the chain the pre-chase way on both clients
	// and check the payloads.
	walk := func(c *PipelinedClient) {
		t.Helper()
		idx := 0
		for hop := 0; ; hop++ {
			buf := make([]byte, 64)
			if err := c.ReadObj(1, idx, buf); err != nil {
				t.Fatalf("per-hop read of node %d: %v", idx, err)
			}
			if !bytes.Equal(buf, objs[idx]) {
				t.Fatalf("node %d payload mismatch", idx)
			}
			word := binary.LittleEndian.Uint64(buf[8:])
			if !rdma.ChaseAddrTagged(word) {
				if word != 0xDEAD_BEEF {
					t.Fatalf("terminal word %#x, want sentinel", word)
				}
				if hop != 3 {
					t.Fatalf("chain ended after %d hops, want 3", hop)
				}
				return
			}
			idx = int(rdma.ChaseAddrOff(word) / 64)
		}
	}
	walk(offload)
	walk(plain)

	// Byte-exactness: past the feature PING, the downgraded session's
	// wire bytes are identical to a session that never tried to offload —
	// the doomed chase left no trace on the wire.
	chaseMu.Lock()
	offloadBytes := append([]byte(nil), chaseCap.Bytes()...)
	chaseMu.Unlock()
	plainMu.Lock()
	plainBytes := append([]byte(nil), plainCap.Bytes()...)
	plainMu.Unlock()
	offloadOps := skipFirstFrame(t, offloadBytes)
	plainOps := skipFirstFrame(t, plainBytes)
	if !bytes.Equal(offloadOps, plainOps) {
		t.Fatalf("downgraded session not byte-exact with chase-less session:\n offload %x\n   plain %x",
			offloadOps, plainOps)
	}

	// Kill the server side: the next read breaks, redials, and
	// renegotiates with the full ask — landing on the same downgrade.
	chaseMu.Lock()
	for _, c := range *chaseConns {
		c.Close()
	}
	*chaseConns = (*chaseConns)[:0]
	chaseMu.Unlock()
	buf := make([]byte, 64)
	if err := offload.ReadObj(1, 0, buf); err != nil {
		t.Fatalf("read after forced disconnect should retry through redial: %v", err)
	}
	if !bytes.Equal(buf, objs[0]) {
		t.Fatal("post-redial read returned wrong payload")
	}
	if offload.ChaseCapable() {
		t.Fatal("renegotiation against the pre-chase server must downgrade again")
	}
	if offload.featReq&rdma.FeatChase == 0 {
		t.Fatal("the downgrade must not clear the per-connection chase ask")
	}
}

// TestPipelinedChaseRenegotiatesUpgrade is the downgrade's mirror image:
// a session that starts against a chase-capable server keeps the verbs
// across a forced redial to the same server — the capability ask rides
// every negotiation, not just the first.
func TestPipelinedChaseRenegotiatesUpgrade(t *testing.T) {
	testutil.NoGoroutineLeaks(t)

	store, objs := chainStore()
	srv := NewServer()
	srv.Store = store
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := DialPipelined(addr, PipelineOpts{
		Timeout: time.Second, RetryMax: 4, RetryBase: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.ChaseCapable() {
		t.Fatal("chase-capable server should negotiate FeatChase")
	}

	res, err := c.Chase(rdma.ChaseReq{DS: 1, Start: 0, ObjSize: 64, NextOff: 8, Hops: 8})
	if err != nil {
		t.Fatalf("chase: %v", err)
	}
	if res.Status != rdma.ChaseDone || res.Final != 0xDEAD_BEEF || len(res.Hops) != 4 {
		t.Fatalf("chase result: status %d final %#x hops %d", res.Status, res.Final, len(res.Hops))
	}
	// The offloaded path is byte-identical to the store's chain, in
	// traversal order.
	order := []uint32{0, 2, 1, 3}
	for i, h := range res.Hops {
		if h.Idx != order[i] || !bytes.Equal(h.Data, objs[order[i]]) {
			t.Fatalf("hop %d: idx %d, want %d (or payload mismatch)", i, h.Idx, order[i])
		}
	}

	// Cut the transport; the next chase must redial, renegotiate, and
	// offload again.
	c.conn.Close()
	res, err = c.Chase(rdma.ChaseReq{DS: 1, Start: 0, ObjSize: 64, NextOff: 8, Hops: 2})
	if err != nil {
		t.Fatalf("chase after forced disconnect: %v", err)
	}
	if res.Status != rdma.ChaseHops || len(res.Hops) != 2 {
		t.Fatalf("budget-bounded chase: status %d hops %d, want ChaseHops/2", res.Status, len(res.Hops))
	}
	// Final must point at the first unvisited node (idx 1).
	if !rdma.ChaseAddrTagged(res.Final) || rdma.ChaseAddrOff(res.Final)/64 != 1 {
		t.Fatalf("resume address %#x does not point at node 1", res.Final)
	}
	if !c.ChaseCapable() {
		t.Fatal("renegotiation against the chase-capable server must restore the verbs")
	}
}

// TestChaseCyclicChainBounded pins the server's walk bound: an
// unterminated (cyclic) chain must be cut off after exactly the hop
// budget — the server never loops, whatever the chain shape.
func TestChaseCyclicChainBounded(t *testing.T) {
	testutil.NoGoroutineLeaks(t)

	srv := NewServer()
	// Two 64-byte nodes pointing at each other: 0 -> 1 -> 0 -> ...
	for idx := uint32(0); idx < 2; idx++ {
		b := make([]byte, 64)
		binary.LittleEndian.PutUint64(b[8:], 1<<63|uint64(1)<<48|uint64(1-idx)*64)
		srv.Store.Write(1, idx, b)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := DialPipelined(addr, PipelineOpts{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const budget = 63
	res, err := c.Chase(rdma.ChaseReq{DS: 1, Start: 0, ObjSize: 64, NextOff: 8, Hops: budget})
	if err != nil {
		t.Fatalf("chase over a cycle: %v", err)
	}
	if res.Status != rdma.ChaseHops || len(res.Hops) != budget {
		t.Fatalf("cycle walk: status %d hops %d, want ChaseHops/%d", res.Status, len(res.Hops), budget)
	}
	for i, h := range res.Hops {
		if h.Idx != uint32(i%2) {
			t.Fatalf("hop %d visited node %d, want %d", i, h.Idx, i%2)
		}
	}
	// Budget odd: the resume address points back at node 1.
	if !rdma.ChaseAddrTagged(res.Final) || rdma.ChaseAddrOff(res.Final)/64 != 1 {
		t.Fatalf("resume address %#x does not point at node 1", res.Final)
	}
}

// TestChaseFieldMaskFilters pins the wire mask semantics end to end:
// cleared words come back zeroed, kept words intact, and a masked
// next-pointer field still steers the server's walk (the successor word
// is read before the filter applies).
func TestChaseFieldMaskFilters(t *testing.T) {
	testutil.NoGoroutineLeaks(t)

	store, objs := chainStore()
	srv := NewServer()
	srv.Store = store
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := DialPipelined(addr, PipelineOpts{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Keep only word 0; word 1 holds the next pointer and is filtered —
	// the walk must still follow the whole chain.
	res, err := c.Chase(rdma.ChaseReq{DS: 1, Start: 0, ObjSize: 64, NextOff: 8, Hops: 8, Mask: 1})
	if err != nil {
		t.Fatalf("masked chase: %v", err)
	}
	if res.Status != rdma.ChaseDone || len(res.Hops) != 4 {
		t.Fatalf("masked chase: status %d hops %d, want ChaseDone/4", res.Status, len(res.Hops))
	}
	for i, h := range res.Hops {
		want := objs[h.Idx]
		if !bytes.Equal(h.Data[:8], want[:8]) {
			t.Fatalf("hop %d kept word mangled", i)
		}
		for j := 8; j < 64; j++ {
			if h.Data[j] != 0 {
				t.Fatalf("hop %d filtered byte %d = %#x, want 0", i, j, h.Data[j])
			}
		}
	}
}
