package remote

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"cards/internal/obs"
	"cards/internal/rdma"
)

func startPipelined(t *testing.T, opts PipelineOpts) (*Server, *PipelinedClient) {
	t.Helper()
	srv := NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl, err := DialPipelined(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return srv, cl
}

func TestPipelinedReadWrite(t *testing.T) {
	srv, cl := startPipelined(t, PipelineOpts{})
	data := []byte("pipelined far memory")
	if err := cl.WriteObj(3, 7, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if err := cl.ReadObj(3, 7, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatalf("roundtrip = %q", buf)
	}
	// Absent object reads as zeros.
	zeros := make([]byte, 8)
	if err := cl.ReadObj(9, 9, zeros); err != nil {
		t.Fatal(err)
	}
	for _, b := range zeros {
		if b != 0 {
			t.Fatal("absent object should read zero")
		}
	}
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	if srv.Store.Len() != 1 {
		t.Fatalf("store len = %d", srv.Store.Len())
	}
}

func TestPipelinedOverPipe(t *testing.T) {
	srv := NewServer()
	c1, c2 := net.Pipe()
	go srv.ServeConn(c1)
	cl, err := NewPipelined(c2, PipelineOpts{Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.WriteObj(1, 1, []byte{42}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if err := cl.ReadObj(1, 1, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 42 {
		t.Fatalf("readback = %d", buf[0])
	}
}

func TestPipelinedManyAsyncReads(t *testing.T) {
	srv, cl := startPipelined(t, PipelineOpts{Window: 16, MaxBatch: 4})
	const n = 200
	for i := 0; i < n; i++ {
		srv.Store.Write(1, uint32(i), []byte{byte(i), byte(i >> 8)})
	}
	dsts := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		dsts[i] = make([]byte, 2)
		cl.IssueRead(1, i, dsts[i], func(err error) {
			errs[i] = err
			wg.Done()
		})
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("read %d: %v", i, errs[i])
		}
		if dsts[i][0] != byte(i) || dsts[i][1] != byte(i>>8) {
			t.Fatalf("read %d = %v", i, dsts[i])
		}
	}
}

func TestPipelinedMixedReadWrite(t *testing.T) {
	_, cl := startPipelined(t, PipelineOpts{Window: 8, MaxBatch: 3})
	// Interleave writes and reads so the flusher alternates WRITETAG
	// frames with READBATCH runs; read-your-write holds because WriteObj
	// blocks until the ack.
	for i := 0; i < 50; i++ {
		data := []byte{byte(i), 0xAB}
		if err := cl.WriteObj(2, i, data); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 2)
		if err := cl.ReadObj(2, i, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, data) {
			t.Fatalf("readback %d = %v", i, buf)
		}
	}
}

// TestPipelinedOutOfOrderCompletions hand-crafts a batch-capable server
// that answers two read batches in reverse order: the tag demux must
// route each completion to the right caller.
func TestPipelinedOutOfOrderCompletions(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	srvErr := make(chan error, 1)
	go func() {
		srvErr <- func() error {
			// Feature negotiation.
			f, err := rdma.ReadFrame(c1)
			if err != nil {
				return err
			}
			if f.Op != rdma.OpPing {
				return errors.New("want feature ping first")
			}
			// Echo batching only: this hand-rolled server speaks legacy
			// framing, so it must not accept the CRC feature.
			if err := rdma.WriteFrame(c1, rdma.Frame{Op: rdma.OpOK, Payload: rdma.EncodeFeatures(rdma.FeatBatch)}); err != nil {
				return err
			}
			// Collect two single-read batches, then answer in REVERSE.
			var frames []rdma.Frame
			for len(frames) < 2 {
				f, err := rdma.ReadFrame(c1)
				if err != nil {
					return err
				}
				if f.Op != rdma.OpReadBatch {
					return errors.New("want READBATCH")
				}
				frames = append(frames, f)
			}
			for i := len(frames) - 1; i >= 0; i-- {
				reqs, err := rdma.DecodeReadBatch(frames[i].Payload)
				if err != nil {
					return err
				}
				segs := make([][]byte, len(reqs))
				for j, r := range reqs {
					segs[j] = []byte{byte(r.Idx)}
				}
				resp, err := rdma.EncodeDataBatch(frames[i].Tag, segs)
				if err != nil {
					return err
				}
				if err := rdma.WriteFrame(c1, resp); err != nil {
					return err
				}
			}
			return nil
		}()
	}()

	// MaxBatch 1 forces each read into its own batch frame.
	cl, err := NewPipelined(c2, PipelineOpts{Window: 2, MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var wg sync.WaitGroup
	dsts := [2][]byte{make([]byte, 1), make([]byte, 1)}
	errs := [2]error{}
	wg.Add(2)
	for i := 0; i < 2; i++ {
		i := i
		cl.IssueRead(0, 10+i, dsts[i], func(err error) {
			errs[i] = err
			wg.Done()
		})
	}
	wg.Wait()
	if err := <-srvErr; err != nil {
		t.Fatalf("server: %v", err)
	}
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("read %d: %v", i, errs[i])
		}
		if dsts[i][0] != byte(10+i) {
			t.Fatalf("read %d routed wrong payload %d", i, dsts[i][0])
		}
	}
}

// legacyServe answers the pre-batch protocol: empty OK to every PING
// (ignoring any payload), serial READ/WRITE, no tagged verbs.
func legacyServe(conn net.Conn, store *ObjectStore) {
	defer conn.Close()
	for {
		f, err := rdma.ReadFrame(conn)
		if err != nil {
			return
		}
		var resp rdma.Frame
		switch f.Op {
		case rdma.OpPing:
			resp = rdma.Frame{Op: rdma.OpOK}
		case rdma.OpRead:
			req, err := rdma.DecodeRead(f.Payload)
			if err != nil {
				resp = rdma.ErrFrame(err.Error())
				break
			}
			resp = rdma.Frame{Op: rdma.OpData, Payload: store.Read(req.DS, req.Idx, req.Size)}
		case rdma.OpWrite:
			req, err := rdma.DecodeWrite(f.Payload)
			if err != nil {
				resp = rdma.ErrFrame(err.Error())
				break
			}
			store.Write(req.DS, req.Idx, req.Data)
			resp = rdma.Frame{Op: rdma.OpOK}
		default:
			resp = rdma.ErrFrame("unexpected op")
		}
		if rdma.WriteFrame(conn, resp) != nil {
			return
		}
	}
}

func TestPipelinedLegacyFallback(t *testing.T) {
	store := NewObjectStore()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go legacyServe(conn, store)
		}
	}()

	// Direct negotiation: a legacy peer yields ErrNoPipelining and the
	// connection stays usable for the serial client.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPipelined(conn, PipelineOpts{}); !errors.Is(err, ErrNoPipelining) {
		t.Fatalf("err = %v, want ErrNoPipelining", err)
	}
	serial := NewClientConn(conn)
	defer serial.Close()
	if err := serial.WriteObj(1, 2, []byte{0x5A}); err != nil {
		t.Fatalf("conn unusable after failed negotiation: %v", err)
	}

	// DialAuto falls back to the serial client transparently.
	sc, err := DialAuto(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if _, ok := sc.(*Client); !ok {
		t.Fatalf("DialAuto against legacy server = %T, want *Client", sc)
	}
	buf := make([]byte, 1)
	if err := sc.ReadObj(1, 2, buf); err != nil || buf[0] != 0x5A {
		t.Fatalf("fallback read = %v, %v", buf, err)
	}
}

func TestDialAutoPipelined(t *testing.T) {
	srv := NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sc, err := DialAuto(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if _, ok := sc.(*PipelinedClient); !ok {
		t.Fatalf("DialAuto against new server = %T, want *PipelinedClient", sc)
	}
	if err := sc.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestLegacyClientAgainstNewServer covers the other interop direction:
// the serial client's plain PING must still get a working session.
func TestLegacyClientAgainstNewServer(t *testing.T) {
	_, cl := startServer(t)
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteObj(0, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
}

func TestPipelinedPerRequestServerError(t *testing.T) {
	_, cl := startPipelined(t, PipelineOpts{})
	// A read whose reply would exceed the frame limit is rejected by the
	// server with a tagged error — and only that request fails.
	huge := make([]byte, rdma.MaxFrame)
	if err := cl.ReadObj(0, 0, huge); err == nil {
		t.Fatal("oversized batch reply should fail")
	}
	// The client survives: later operations still work.
	if err := cl.WriteObj(0, 1, []byte{7}); err != nil {
		t.Fatalf("client broken after per-request error: %v", err)
	}
	buf := make([]byte, 1)
	if err := cl.ReadObj(0, 1, buf); err != nil || buf[0] != 7 {
		t.Fatalf("readback = %v, %v", buf, err)
	}
}

func TestPipelinedCloseUnblocksInflight(t *testing.T) {
	// A server that negotiates features, then goes silent: in-flight and
	// queued operations must be failed by Close, not stuck forever.
	c1, c2 := net.Pipe()
	defer c1.Close()
	go func() {
		f, err := rdma.ReadFrame(c1)
		if err != nil || f.Op != rdma.OpPing {
			return
		}
		rdma.WriteFrame(c1, rdma.Frame{Op: rdma.OpOK, Payload: rdma.EncodeFeatures(rdma.FeatBatch)})
		// Swallow whatever arrives, never reply.
		for {
			if _, err := rdma.ReadFrame(c1); err != nil {
				return
			}
		}
	}()
	cl, err := NewPipelined(c2, PipelineOpts{Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8 // more than the window: some queued, some in flight
	res := make(chan error, n)
	for i := 0; i < n; i++ {
		cl.IssueRead(0, i, make([]byte, 4), func(err error) { res <- err })
	}
	closed := make(chan struct{})
	go func() {
		cl.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked behind a silent server")
	}
	for i := 0; i < n; i++ {
		select {
		case err := <-res:
			if !errors.Is(err, ErrClientClosed) {
				t.Fatalf("completion %d = %v, want ErrClientClosed", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("in-flight op never completed after Close")
		}
	}
	// Post-close issues fail immediately.
	if err := cl.ReadObj(0, 0, make([]byte, 1)); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("post-close read = %v", err)
	}
}

func TestPipelinedMetrics(t *testing.T) {
	srv := NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	reg := obs.NewRegistry()
	cl, err := DialPipelined(addr, PipelineOpts{Window: 4, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.WriteObj(0, 0, []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if err := cl.ReadObj(0, 0, buf); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	read := snap.Histograms[MetricClientReadNS]
	write := snap.Histograms[MetricClientWriteNS]
	batch := snap.Histograms[MetricClientBatchSize]
	if read.Count != 1 {
		t.Errorf("read histogram = %+v", read)
	}
	if write.Count != 1 {
		t.Errorf("write histogram = %+v", write)
	}
	if batch.Count == 0 {
		t.Errorf("batch-size histogram = %+v", batch)
	}
	// Server-side batch accounting.
	ssnap := srv.ObsSnapshot()
	if c := ssnap.Counters[MetricReadBatches]; c == 0 {
		t.Error("server read-batch counter not incremented")
	}
}

// TestSerialClientStalledServer is the satellite regression: Close must
// never wait behind an in-flight round trip, and the unblocked caller
// gets ErrClientClosed — as do all later calls.
func TestSerialClientStalledServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// Read the request, never answer.
		rdma.ReadFrame(conn)
		<-stop
	}()

	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	readDone := make(chan error, 1)
	go func() {
		readDone <- cl.ReadObj(0, 0, make([]byte, 8))
	}()
	// Give the round trip time to get stuck waiting for the response.
	time.Sleep(50 * time.Millisecond)

	closeDone := make(chan struct{})
	go func() {
		cl.Close()
		close(closeDone)
	}()
	select {
	case <-closeDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked behind the stalled round trip")
	}
	select {
	case err := <-readDone:
		if !errors.Is(err, ErrClientClosed) {
			t.Fatalf("stalled read = %v, want ErrClientClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stalled read never unblocked")
	}
	if err := cl.Ping(); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("post-close ping = %v, want ErrClientClosed", err)
	}
}

// TestSerialClientBrokenStreamFailsFast: after a mid-flight transport
// failure the client must refuse new round trips instead of pairing them
// with stale bytes from the desynchronized stream.
func TestSerialClientBrokenStreamFailsFast(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Read one request, then slam the connection.
		rdma.ReadFrame(conn)
		conn.Close()
	}()
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.ReadObj(0, 0, make([]byte, 8)); err == nil {
		t.Fatal("read against slammed connection should fail")
	}
	// The sticky error keeps later calls from touching the stream.
	if err := cl.Ping(); err == nil {
		t.Fatal("ping after transport failure should fail fast")
	}
}
