// Package remote implements the remote memory node: a server that owns
// the far tier of objects keyed by (data structure, object index), and a
// client that implements farmem.Store over the rdma wire protocol. This
// is the process pair the paper runs on two CloudLab machines — memory
// server on one, application on the other.
//
// The server is concurrency-safe (one goroutine per connection, plus a
// per-connection worker pool answering READBATCH frames out of order).
// Two clients are provided: Client serializes one round trip at a time
// (the synchronous fault path of the runtime), while PipelinedClient
// keeps a bounded window of tagged requests in flight, coalesces queued
// frames into single doorbell writes, and implements farmem.AsyncStore
// so prefetchers can issue a whole lookahead window without blocking.
package remote

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cards/internal/obs"
	"cards/internal/rdma"
)

// ObjectStore is the server-side keyed object storage.
type ObjectStore struct {
	mu sync.RWMutex
	m  map[[2]uint32][]byte
}

// NewObjectStore creates an empty store.
func NewObjectStore() *ObjectStore {
	return &ObjectStore{m: make(map[[2]uint32][]byte)}
}

// Read copies the object into a fresh buffer of the requested size
// (zero-filled when absent or shorter).
func (s *ObjectStore) Read(ds, idx, size uint32) []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]byte, size)
	copy(out, s.m[[2]uint32{ds, idx}])
	return out
}

// Write stores a copy of data.
func (s *ObjectStore) Write(ds, idx uint32, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	s.m[[2]uint32{ds, idx}] = cp
	s.mu.Unlock()
}

// Len returns the number of stored objects.
func (s *ObjectStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Server serves the far-memory protocol on a listener.
type Server struct {
	Store *ObjectStore

	// BatchWorkers is the number of goroutines per connection handling
	// READBATCH frames; batches are served concurrently and may be
	// answered out of order (tags route the replies). <= 0 uses
	// DefaultBatchWorkers. Set before Listen/ServeConn.
	BatchWorkers int

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	wg     sync.WaitGroup

	reg     *obs.Registry
	tracer  *obs.Tracer
	metrics *serverMetrics
	nextCon atomic.Int64
}

// DefaultBatchWorkers is the per-connection READBATCH concurrency.
const DefaultBatchWorkers = 4

// ServerFeatures is the feature word the server answers to a feature
// PING: this server speaks the tagged/batch extension.
const ServerFeatures = rdma.FeatBatch

// NewServer creates a server with an empty store and a private metric
// registry.
func NewServer() *Server { return NewServerWith(nil, nil) }

// NewServerWith creates a server publishing into reg (nil for a private
// registry) and, when tr is non-nil, emitting one trace span per served
// request into the ring.
func NewServerWith(reg *obs.Registry, tr *obs.Tracer) *Server {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Server{
		Store:   NewObjectStore(),
		reg:     reg,
		tracer:  tr,
		metrics: newServerMetrics(reg),
	}
}

// Listen starts accepting on addr (e.g. "127.0.0.1:0") and returns the
// bound address. Serving happens on background goroutines.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
		}()
	}
}

// ServeConn handles one connection until EOF or error. Exported so tests
// and in-process pairs (net.Pipe) can drive it directly.
//
// Serial verbs are handled inline, in arrival order. READBATCH frames
// are dispatched to a small per-connection worker pool and answered
// whenever they complete — possibly out of order relative to each other
// and to later serial verbs; the tag routes each reply. Callers that
// need write-then-read ordering for an object get it from the write
// acknowledgement: ACKTAG/OK is sent only after the store mutation, so a
// read issued after the ack observes it.
func (s *Server) ServeConn(conn io.ReadWriteCloser) {
	defer conn.Close()
	connID := int(s.nextCon.Add(1))
	s.metrics.connsTotal.Inc()
	s.metrics.conns.Add(1)
	defer s.metrics.conns.Add(-1)

	// Batch workers reply concurrently with the inline loop: every
	// response frame goes through send so frames never interleave.
	var wmu sync.Mutex
	send := func(resp rdma.Frame) error {
		wmu.Lock()
		defer wmu.Unlock()
		s.metrics.bytesOut.Add(resp.WireSize())
		return rdma.WriteFrame(conn, resp)
	}
	workers := s.BatchWorkers
	if workers <= 0 {
		workers = DefaultBatchWorkers
	}
	jobs := make(chan rdma.Frame)
	var bwg sync.WaitGroup
	bwg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer bwg.Done()
			for f := range jobs {
				s.serveBatch(f, connID, send)
			}
		}()
	}
	defer bwg.Wait()
	defer close(jobs)

	for {
		f, err := rdma.ReadFrame(conn)
		if err != nil {
			return
		}
		s.metrics.bytesIn.Add(f.WireSize())
		if f.Op == rdma.OpReadBatch {
			s.metrics.inflight.Add(1)
			jobs <- f // reply sent by a worker, possibly out of order
			continue
		}
		s.metrics.inflight.Add(1)
		start := time.Now()
		var startUS uint64
		if s.tracer != nil {
			startUS = s.tracer.Now()
		}
		var resp rdma.Frame
		var ds, idx int64
		switch f.Op {
		case rdma.OpPing:
			if _, ok := rdma.DecodeFeatures(f.Payload); ok {
				// Feature negotiation: answer with our feature word. A
				// legacy client never sends one and gets the empty OK.
				resp = rdma.Frame{Op: rdma.OpOK, Payload: rdma.EncodeFeatures(ServerFeatures)}
			} else {
				resp = rdma.Frame{Op: rdma.OpOK}
			}
		case rdma.OpRead:
			req, err := rdma.DecodeRead(f.Payload)
			if err != nil {
				resp = rdma.ErrFrame(err.Error())
				break
			}
			ds, idx = int64(req.DS), int64(req.Idx)
			resp = rdma.Frame{Op: rdma.OpData, Payload: s.Store.Read(req.DS, req.Idx, req.Size)}
		case rdma.OpWrite, rdma.OpWriteTag:
			req, err := rdma.DecodeWrite(f.Payload)
			if err != nil {
				if f.Op == rdma.OpWriteTag {
					resp = rdma.ErrTagFrame(f.Tag, err.Error())
				} else {
					resp = rdma.ErrFrame(err.Error())
				}
				break
			}
			ds, idx = int64(req.DS), int64(req.Idx)
			s.Store.Write(req.DS, req.Idx, req.Data)
			if f.Op == rdma.OpWriteTag {
				resp = rdma.Frame{Op: rdma.OpAckTag, Tag: f.Tag}
			} else {
				resp = rdma.Frame{Op: rdma.OpOK}
			}
		default:
			msg := fmt.Sprintf("unexpected op %s", f.Op)
			if f.Op.Tagged() {
				resp = rdma.ErrTagFrame(f.Tag, msg)
			} else {
				resp = rdma.ErrFrame(msg)
			}
		}
		if resp.Op == rdma.OpErr || resp.Op == rdma.OpErrTag {
			s.metrics.errors.Inc()
		} else {
			s.observeVerb(f.Op, connID, start, startUS, ds, idx)
		}
		s.metrics.inflight.Add(-1)
		if err := send(resp); err != nil {
			return
		}
	}
}

// serveBatch handles one READBATCH frame on a worker goroutine: gather
// every requested object and answer with a single DATABATCH.
func (s *Server) serveBatch(f rdma.Frame, connID int, send func(rdma.Frame) error) {
	defer s.metrics.inflight.Add(-1)
	start := time.Now()
	var startUS uint64
	if s.tracer != nil {
		startUS = s.tracer.Now()
	}
	reqs, err := rdma.DecodeReadBatch(f.Payload)
	if err != nil {
		s.metrics.errors.Inc()
		send(rdma.ErrTagFrame(f.Tag, err.Error()))
		return
	}
	if rdma.DataBatchSize(reqs) > rdma.MaxFrame {
		s.metrics.errors.Inc()
		send(rdma.ErrTagFrame(f.Tag, "batch reply exceeds frame limit"))
		return
	}
	segs := make([][]byte, len(reqs))
	for i, r := range reqs {
		segs[i] = s.Store.Read(r.DS, r.Idx, r.Size)
	}
	resp, err := rdma.EncodeDataBatch(f.Tag, segs)
	if err != nil {
		s.metrics.errors.Inc()
		send(rdma.ErrTagFrame(f.Tag, err.Error()))
		return
	}
	s.observeBatch(connID, len(reqs), start, startUS)
	send(resp)
}

// Counts returns (reads, writes) served. The values are the registry's
// cards_remote_reads_total / writes_total counters.
func (s *Server) Counts() (uint64, uint64) {
	return s.metrics.reads.Load(), s.metrics.writes.Load()
}

// Close stops the listener and waits for connections to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

// Client is a farmem.Store backed by a protocol connection. Round trips
// are serialized; Close is safe to call concurrently with an in-flight
// round trip (it unblocks the stalled network I/O rather than waiting
// behind it), and after any transport failure the client fails fast
// instead of reading a stale response off a desynchronized stream.
type Client struct {
	mu        sync.Mutex // serializes round trips; never held by Close
	conn      io.ReadWriteCloser
	closed    atomic.Bool
	closeOnce sync.Once
	broken    error // sticky transport error; guarded by mu
	metrics   *clientMetrics
}

// ErrClientClosed is returned by calls made after (or unblocked by)
// Close.
var ErrClientClosed = errors.New("remote: client closed")

// Dial connects to a server address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote: dial %s: %w", addr, err)
	}
	return &Client{conn: conn}, nil
}

// NewClientConn wraps an existing connection (e.g. one end of net.Pipe).
func NewClientConn(conn io.ReadWriteCloser) *Client { return &Client{conn: conn} }

// roundTrip sends a request and reads the response.
func (c *Client) roundTrip(req rdma.Frame) (rdma.Frame, error) {
	if c.closed.Load() {
		return rdma.Frame{}, ErrClientClosed
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken != nil {
		// A previous round trip died mid-flight: the stream may hold a
		// half-written request or an unread response, so interleaving a
		// new round trip could pair it with the wrong reply. Fail fast.
		return rdma.Frame{}, fmt.Errorf("remote: connection broken: %w", c.broken)
	}
	start := time.Now()
	if err := rdma.WriteFrame(c.conn, req); err != nil {
		return rdma.Frame{}, c.breakConn(err)
	}
	resp, err := rdma.ReadFrame(c.conn)
	if err != nil {
		return rdma.Frame{}, c.breakConn(err)
	}
	if m := c.metrics; m != nil {
		m.bytesOut.Add(req.WireSize())
		m.bytesIn.Add(resp.WireSize())
		m.observe(req.Op, uint64(time.Since(start).Nanoseconds()))
	}
	if resp.Op == rdma.OpErr {
		return rdma.Frame{}, fmt.Errorf("remote: server error: %s", resp.Payload)
	}
	return resp, nil
}

// breakConn marks the stream unusable after a transport error (caller
// holds mu) and maps errors caused by a concurrent Close to
// ErrClientClosed.
func (c *Client) breakConn(err error) error {
	if c.closed.Load() {
		err = ErrClientClosed
	}
	c.broken = err
	return err
}

// Ping checks liveness.
func (c *Client) Ping() error {
	resp, err := c.roundTrip(rdma.Frame{Op: rdma.OpPing})
	if err != nil {
		return err
	}
	if resp.Op != rdma.OpOK {
		return fmt.Errorf("remote: unexpected ping response %s", resp.Op)
	}
	return nil
}

// ReadObj implements farmem.Store.
func (c *Client) ReadObj(ds, idx int, dst []byte) error {
	resp, err := c.roundTrip(rdma.EncodeRead(uint32(ds), uint32(idx), uint32(len(dst))))
	if err != nil {
		return err
	}
	if resp.Op != rdma.OpData {
		return fmt.Errorf("remote: unexpected read response %s", resp.Op)
	}
	copy(dst, resp.Payload)
	return nil
}

// WriteObj implements farmem.Store.
func (c *Client) WriteObj(ds, idx int, src []byte) error {
	resp, err := c.roundTrip(rdma.EncodeWrite(uint32(ds), uint32(idx), src))
	if err != nil {
		return err
	}
	if resp.Op != rdma.OpOK {
		return fmt.Errorf("remote: unexpected write response %s", resp.Op)
	}
	return nil
}

// Close closes the underlying connection. It never waits behind an
// in-flight round trip: closing the connection unblocks any goroutine
// stalled in network I/O, which then returns ErrClientClosed. Close is
// idempotent and safe for concurrent use.
func (c *Client) Close() error {
	var err error
	c.closeOnce.Do(func() {
		c.closed.Store(true)
		err = c.conn.Close()
	})
	return err
}
