// Package remote implements the remote memory node: a server that owns
// the far tier of objects keyed by (data structure, object index), and a
// client that implements farmem.Store over the rdma wire protocol. This
// is the process pair the paper runs on two CloudLab machines — memory
// server on one, application on the other.
//
// The server is concurrency-safe (one goroutine per connection, plus a
// per-connection worker pool answering READBATCH frames out of order).
// Two clients are provided: Client serializes one round trip at a time
// (the synchronous fault path of the runtime), while PipelinedClient
// keeps a bounded window of tagged requests in flight, coalesces queued
// frames into single doorbell writes, and implements farmem.AsyncStore
// so prefetchers can issue a whole lookahead window without blocking.
package remote

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cards/internal/obs"
	"cards/internal/rdma"
)

// ObjectStore is the server-side keyed object storage. Every object
// optionally carries a u64 epoch stamp (the FeatEpoch replication
// extension): epoch-stamped writes apply conditionally so a resync
// replaying stale images can never clobber a newer write, and
// epoch-stamped reads report the stored stamp so a client can tell a
// current image from a stale backup.
type ObjectStore struct {
	mu sync.RWMutex
	m  map[[2]uint32][]byte
	ep map[[2]uint32]uint64
}

// NewObjectStore creates an empty store.
func NewObjectStore() *ObjectStore {
	return &ObjectStore{m: make(map[[2]uint32][]byte), ep: make(map[[2]uint32]uint64)}
}

// Read copies the object into a fresh buffer of the requested size
// (zero-filled when absent or shorter).
func (s *ObjectStore) Read(ds, idx, size uint32) []byte {
	out := make([]byte, size)
	s.ReadInto(ds, idx, out)
	return out
}

// ReadInto copies the object into dst (zero-filling the tail when the
// object is absent or shorter) — the allocation-free gather path the
// batch workers use to fill reply buffers in place.
func (s *ObjectStore) ReadInto(ds, idx uint32, dst []byte) {
	s.mu.RLock()
	n := copy(dst, s.m[[2]uint32{ds, idx}])
	s.mu.RUnlock()
	for i := n; i < len(dst); i++ {
		dst[i] = 0
	}
}

// Write stores a copy of data.
func (s *ObjectStore) Write(ds, idx uint32, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	s.m[[2]uint32{ds, idx}] = cp
	s.mu.Unlock()
}

// WriteEpoch stores a copy of data stamped with epoch iff epoch is at
// least the stored stamp, and reports whether it applied. Equal epochs
// apply (write-back reissues after an uncertain ack carry the same
// stamp and must land); older epochs are stale resync images and are
// dropped. The compare-and-store is atomic under the store lock, so a
// live write and a concurrent anti-entropy replay serialize correctly
// whichever order they arrive.
func (s *ObjectStore) WriteEpoch(ds, idx uint32, epoch uint64, data []byte) bool {
	k := [2]uint32{ds, idx}
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch < s.ep[k] {
		return false
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.m[k] = cp
	s.ep[k] = epoch
	return true
}

// ReadEpochInto is ReadInto returning the object's stored epoch stamp
// (0 when absent or never epoch-stamped). The copy and the stamp read
// happen under one lock acquisition so the pair is a consistent
// snapshot.
func (s *ObjectStore) ReadEpochInto(ds, idx uint32, dst []byte) uint64 {
	k := [2]uint32{ds, idx}
	s.mu.RLock()
	n := copy(dst, s.m[k])
	epoch := s.ep[k]
	s.mu.RUnlock()
	for i := n; i < len(dst); i++ {
		dst[i] = 0
	}
	return epoch
}

// Epoch returns the stored epoch stamp for an object (0 when absent).
func (s *ObjectStore) Epoch(ds, idx uint32) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ep[[2]uint32{ds, idx}]
}

// Keys returns every stored object key — test and resync-verification
// support.
func (s *ObjectStore) Keys() [][2]uint32 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([][2]uint32, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	return keys
}

// Len returns the number of stored objects.
func (s *ObjectStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Server serves the far-memory protocol on a listener.
type Server struct {
	Store *ObjectStore

	// BatchWorkers is the number of goroutines per connection handling
	// READBATCH frames; batches are served concurrently and may be
	// answered out of order (tags route the replies). <= 0 uses
	// DefaultBatchWorkers. Set before Listen/ServeConn.
	BatchWorkers int

	// ConnWrap, when non-nil, wraps every accepted connection before it
	// is served — the hook cardsd's -chaos flag uses to interpose the
	// faultnet chaos layer. Set before Listen.
	ConnWrap func(io.ReadWriteCloser) io.ReadWriteCloser

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	conns  map[io.ReadWriteCloser]struct{}
	wg     sync.WaitGroup

	reg     *obs.Registry
	tracer  *obs.Tracer
	metrics *serverMetrics
	cpolicy compressPolicy // per-DS adaptive compression state (compact tier)
	nextCon atomic.Int64
	epoch   time.Time // base for the RecvUS server stamps
}

// DefaultBatchWorkers is the per-connection READBATCH concurrency.
const DefaultBatchWorkers = 4

// ServerFeatures is the feature word the server answers to a feature
// PING: this server speaks the tagged/batch extension (reads and
// writes), can switch the session to checksummed frames, can carry
// the trace extension (span context in, server timestamps out) on every
// tagged frame, serves the epoch-stamped verbs the replication layer
// uses, executes offloaded pointer-chase traversal programs, accepts
// the compact bit-packed batch frames (including range write-back),
// and will compress reply segments for sessions that ask for it.
const ServerFeatures = rdma.FeatBatch | rdma.FeatCRC | rdma.FeatWriteBatch | rdma.FeatTrace | rdma.FeatEpoch | rdma.FeatChase | rdma.FeatCompact | rdma.FeatCompress

// NewServer creates a server with an empty store and a private metric
// registry.
func NewServer() *Server { return NewServerWith(nil, nil) }

// NewServerWith creates a server publishing into reg (nil for a private
// registry) and, when tr is non-nil, emitting one trace span per served
// request into the ring.
func NewServerWith(reg *obs.Registry, tr *obs.Tracer) *Server {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Server{
		Store:   NewObjectStore(),
		reg:     reg,
		tracer:  tr,
		metrics: newServerMetrics(reg),
		epoch:   time.Now(),
	}
}

// batchJob carries one READBATCH/WRITEBATCH frame to the worker pool
// together with its socket receive time, so the reply stamp can split
// queue wait (receive to worker pickup) from service time.
type batchJob struct {
	f    rdma.Frame
	recv time.Time
}

// stamp fills a tagged reply's trace extension with the server-side
// timestamps when the session negotiated FeatTrace (no-op otherwise).
// Every tagged reply of such a session must carry the fixed-size
// extension — the client's framing depends on it — so error replies get
// stamped too.
func (s *Server) stamp(resp *rdma.Frame, trace bool, recv, dispatch time.Time) {
	if !trace {
		return
	}
	resp.SetServerStamp(
		uint64(recv.Sub(s.epoch).Microseconds()),
		uint32(dispatch.Sub(recv).Microseconds()),
		uint32(time.Since(dispatch).Microseconds()),
	)
}

// Listen starts accepting on addr (e.g. "127.0.0.1:0") and returns the
// bound address. Serving happens on background goroutines.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		var rwc io.ReadWriteCloser = conn
		if s.ConnWrap != nil {
			rwc = s.ConnWrap(rwc)
		}
		s.trackConn(rwc, true)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.trackConn(rwc, false)
			s.ServeConn(rwc)
		}()
	}
}

// trackConn registers accepted connections so Drain can force-close the
// stragglers once the drain timeout expires.
func (s *Server) trackConn(conn io.ReadWriteCloser, add bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if add {
		if s.conns == nil {
			s.conns = make(map[io.ReadWriteCloser]struct{})
		}
		s.conns[conn] = struct{}{}
	} else {
		delete(s.conns, conn)
	}
}

// ServeConn handles one connection until EOF or error. Exported so tests
// and in-process pairs (net.Pipe) can drive it directly.
//
// Serial verbs are handled inline, in arrival order. READBATCH and
// WRITEBATCH frames are dispatched to a small per-connection worker
// pool and answered whenever they complete — possibly out of order
// relative to each other and to later serial verbs; the tag routes each
// reply. Callers that need write-then-read ordering for an object get
// it from the write acknowledgement: ACKBATCH/ACKTAG/OK is sent only
// after the store mutation, so a read issued after the ack observes it.
// Symmetrically, two batches carrying writes to the same object may be
// applied in either order — clients must not have two unacknowledged
// writes to one object in flight (the pipelined client's runtime caller
// serializes per-object write-backs).
func (s *Server) ServeConn(conn io.ReadWriteCloser) {
	defer conn.Close()
	connID := int(s.nextCon.Add(1))
	s.metrics.connsTotal.Inc()
	s.metrics.conns.Add(1)
	defer s.metrics.conns.Add(-1)

	// Batch workers reply concurrently with the inline loop: every
	// response frame goes through send so frames never interleave.
	// crcOut/traceOut flip after the negotiation reply is sent; no batch
	// can be in flight then (clients wait for the feature OK first), so
	// each switch is ordered with every extended frame.
	var wmu sync.Mutex
	var crcOut, traceOut atomic.Bool
	send := func(resp rdma.Frame) error {
		wmu.Lock()
		defer wmu.Unlock()
		s.metrics.bytesOut.Add(resp.WireSize())
		if crcOut.Load() {
			return rdma.WriteFrameCRC(conn, resp)
		}
		return rdma.WriteFrame(conn, resp)
	}
	workers := s.BatchWorkers
	if workers <= 0 {
		workers = DefaultBatchWorkers
	}
	var compressOut atomic.Bool
	jobs := make(chan batchJob)
	var bwg sync.WaitGroup
	bwg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer bwg.Done()
			// Per-worker scratch keeps the steady-state batch path free of
			// per-frame allocations (the request slices are reused; reply
			// payloads come from the frame buffer pool).
			var rscratch []rdma.ReadReq
			var wscratch []rdma.WriteReq
			var escratch []rdma.WriteEpochReq
			var cscratch []rdma.ChaseReq
			var cb rdma.DataBatchCBuilder
			defer cb.Release()
			var cwscratch compactWriteScratch
			defer cwscratch.release()
			for j := range jobs {
				trace := traceOut.Load()
				switch j.f.Op {
				case rdma.OpWriteBatch:
					wscratch = s.serveWriteBatch(j, connID, send, trace, wscratch)
				case rdma.OpWriteEpochBatch:
					escratch = s.serveWriteEpochBatch(j, connID, send, trace, escratch)
				case rdma.OpReadEpochBatch:
					rscratch = s.serveReadEpochBatch(j, connID, send, trace, rscratch)
				case rdma.OpChaseBatch:
					cscratch = s.serveChaseBatch(j, connID, send, trace, cscratch)
				case rdma.OpReadBatchC:
					rscratch = s.serveBatchC(j, connID, send, trace, compressOut.Load(), rscratch, &cb)
				case rdma.OpWriteBatchC:
					s.serveWriteBatchC(j, connID, send, trace, false, &cwscratch)
				case rdma.OpWriteEpochBatchC:
					s.serveWriteBatchC(j, connID, send, trace, true, &cwscratch)
				default:
					rscratch = s.serveBatch(j, connID, send, trace, rscratch)
				}
				rdma.PutBuf(j.f.Payload)
			}
		}()
	}
	defer bwg.Wait()
	defer close(jobs)

	crcIn, traceIn := false, false
	for {
		f, err := rdma.ReadFramePooledOpts(conn, crcIn, traceIn)
		if err != nil {
			return
		}
		s.metrics.bytesIn.Add(f.WireSize())
		if f.Op == rdma.OpReadBatch || f.Op == rdma.OpWriteBatch ||
			f.Op == rdma.OpReadEpochBatch || f.Op == rdma.OpWriteEpochBatch ||
			f.Op == rdma.OpChaseBatch || f.Op == rdma.OpReadBatchC ||
			f.Op == rdma.OpWriteBatchC || f.Op == rdma.OpWriteEpochBatchC {
			s.metrics.inflight.Add(1)
			jobs <- batchJob{f: f, recv: time.Now()} // reply sent by a worker, possibly out of order
			continue
		}
		s.metrics.inflight.Add(1)
		start := time.Now()
		var startUS uint64
		if s.tracer != nil {
			startUS = s.tracer.Now()
		}
		var resp rdma.Frame
		var ds, idx int64
		enableCRC, enableTrace := false, false
		switch f.Op {
		case rdma.OpPing:
			if feats, ok := rdma.DecodeFeatures(f.Payload); ok {
				// Feature negotiation: answer with our feature word. A
				// legacy client never sends one and gets the empty OK. The
				// reply itself is always legacy-framed; checksummed and
				// trace framing start with the next frame in each direction.
				resp = rdma.Frame{Op: rdma.OpOK, Payload: rdma.EncodeFeatures(ServerFeatures)}
				enableCRC = feats&rdma.FeatCRC != 0
				enableTrace = feats&rdma.FeatTrace != 0
				// Reply segments may be compressed only when the client
				// asked for both the compact tier and compression — the
				// flip is ordered like crcOut/traceOut (no compact batch
				// can be in flight before the feature OK lands).
				compressOut.Store(feats&rdma.FeatCompact != 0 && feats&rdma.FeatCompress != 0)
			} else {
				resp = rdma.Frame{Op: rdma.OpOK}
			}
		case rdma.OpRead:
			req, err := rdma.DecodeRead(f.Payload)
			if err != nil {
				resp = rdma.ErrFrame(err.Error())
				break
			}
			ds, idx = int64(req.DS), int64(req.Idx)
			out := rdma.GetBuf(int(req.Size))
			s.Store.ReadInto(req.DS, req.Idx, out)
			resp = rdma.Frame{Op: rdma.OpData, Payload: out}
		case rdma.OpWrite, rdma.OpWriteTag:
			req, err := rdma.DecodeWrite(f.Payload)
			if err != nil {
				if f.Op == rdma.OpWriteTag {
					resp = rdma.ErrTagFrame(f.Tag, err.Error())
				} else {
					resp = rdma.ErrFrame(err.Error())
				}
				break
			}
			ds, idx = int64(req.DS), int64(req.Idx)
			s.Store.Write(req.DS, req.Idx, req.Data)
			if f.Op == rdma.OpWriteTag {
				resp = rdma.Frame{Op: rdma.OpAckTag, Tag: f.Tag}
			} else {
				resp = rdma.Frame{Op: rdma.OpOK}
			}
		default:
			msg := fmt.Sprintf("unexpected op %s", f.Op)
			if f.Op.Tagged() {
				resp = rdma.ErrTagFrame(f.Tag, msg)
			} else {
				resp = rdma.ErrFrame(msg)
			}
		}
		if resp.Op == rdma.OpErr || resp.Op == rdma.OpErrTag {
			s.metrics.errors.Inc()
		} else {
			s.observeVerb(f.Op, connID, start, startUS, ds, idx, reqTrace(f))
		}
		s.metrics.inflight.Add(-1)
		rdma.PutBuf(f.Payload) // request fully consumed (Store.Write copies)
		if resp.Op.Tagged() {
			// Inline verbs dispatch immediately: receive == dispatch, the
			// whole handle is service time.
			s.stamp(&resp, traceOut.Load(), start, start)
		}
		err = send(resp)
		rdma.PutBuf(resp.Payload)
		if err != nil {
			return
		}
		if enableCRC {
			crcIn = true
			crcOut.Store(true)
		}
		if enableTrace {
			traceIn = true
			traceOut.Store(true)
		}
	}
}

// reqTrace extracts the sampled trace ID riding a request's trace
// extension; 0 when the frame carries none (or the root was unsampled).
func reqTrace(f rdma.Frame) uint64 {
	if !f.HasExt {
		return 0
	}
	traceID, _, sampled := f.TraceCtx()
	if !sampled {
		return 0
	}
	return traceID
}

// serveBatch handles one READBATCH frame on a worker goroutine: gather
// every requested object directly into one pooled DATABATCH reply. The
// request scratch slice is returned for the worker to reuse.
func (s *Server) serveBatch(j batchJob, connID int, send func(rdma.Frame) error, trace bool, scratch []rdma.ReadReq) []rdma.ReadReq {
	f := j.f
	defer s.metrics.inflight.Add(-1)
	start := time.Now()
	var startUS uint64
	if s.tracer != nil {
		startUS = s.tracer.Now()
	}
	s.metrics.wire.add(f.Op, f.WireSize())
	reqs, err := rdma.DecodeReadBatchInto(f.Payload, scratch)
	if err != nil {
		s.metrics.errors.Inc()
		resp := rdma.ErrTagFrame(f.Tag, err.Error())
		s.stamp(&resp, trace, j.recv, start)
		send(resp)
		return scratch
	}
	size := rdma.DataBatchSize(reqs)
	if size > rdma.MaxFrame {
		s.metrics.errors.Inc()
		resp := rdma.ErrTagFrame(f.Tag, "batch reply exceeds frame limit")
		s.stamp(&resp, trace, j.recv, start)
		send(resp)
		return reqs
	}
	p := rdma.GetBuf(size)
	w := rdma.BeginDataBatch(p, len(reqs))
	for _, r := range reqs {
		s.Store.ReadInto(r.DS, r.Idx, w.Next(int(r.Size)))
	}
	s.observeBatch(connID, len(reqs), start, startUS, reqTrace(f))
	resp := w.Frame(f.Tag)
	s.metrics.wire.add(resp.Op, resp.WireSize())
	s.stamp(&resp, trace, j.recv, start)
	send(resp)
	rdma.PutBuf(p)
	return reqs
}

// serveWriteBatch handles one WRITEBATCH frame on a worker goroutine:
// apply every write in batch order, then acknowledge the whole batch
// with one ACKBATCH. Writes within a batch are ordered; two batches may
// be applied in either order (see the ServeConn contract).
func (s *Server) serveWriteBatch(j batchJob, connID int, send func(rdma.Frame) error, trace bool, scratch []rdma.WriteReq) []rdma.WriteReq {
	f := j.f
	defer s.metrics.inflight.Add(-1)
	start := time.Now()
	var startUS uint64
	if s.tracer != nil {
		startUS = s.tracer.Now()
	}
	s.metrics.wire.add(f.Op, f.WireSize())
	reqs, err := rdma.DecodeWriteBatchInto(f.Payload, scratch)
	if err != nil {
		s.metrics.errors.Inc()
		resp := rdma.ErrTagFrame(f.Tag, err.Error())
		s.stamp(&resp, trace, j.recv, start)
		send(resp)
		return scratch
	}
	for _, r := range reqs {
		s.Store.Write(r.DS, r.Idx, r.Data)
	}
	s.observeWriteBatch(connID, len(reqs), start, startUS, reqTrace(f))
	resp := rdma.EncodeAckBatch(f.Tag, len(reqs))
	s.metrics.wire.add(resp.Op, resp.WireSize())
	s.stamp(&resp, trace, j.recv, start)
	send(resp)
	return reqs
}

// Counts returns (reads, writes) served. The values are the registry's
// cards_remote_reads_total / writes_total counters.
func (s *Server) Counts() (uint64, uint64) {
	return s.metrics.reads.Load(), s.metrics.writes.Load()
}

// Close stops the listener and waits for connections to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

// Drain performs a graceful shutdown: stop accepting, let in-flight
// requests finish (bounded by timeout), then force-close any connection
// still open and wait for its goroutines. Clients see a clean
// disconnect after their outstanding replies, which their reconnect
// logic treats as an ordinary cut. Returns true if in-flight work hit
// zero before the timeout.
func (s *Server) Drain(timeout time.Duration) bool {
	s.mu.Lock()
	closed := s.closed
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil && !closed {
		ln.Close()
	}
	deadline := time.Now().Add(timeout)
	drained := false
	for {
		if s.metrics.inflight.Load() == 0 {
			drained = true
			break
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	s.mu.Lock()
	conns := make([]io.ReadWriteCloser, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return drained
}

// ClientOpts configures the serial client's fault handling. The zero
// value reproduces the historical behavior exactly: no deadline, no
// retries, no redial — a broken connection stays broken.
type ClientOpts struct {
	// Timeout bounds each round trip (request write + response read).
	// Expiry returns ErrTimeout and abandons the connection: the reply
	// may still arrive later and would desynchronize the stream.
	Timeout time.Duration

	// RetryMax is the number of retries (beyond the first attempt) for
	// idempotent verbs (PING, READ) and for any verb whose request never
	// reached the wire. Writes that fail mid round trip are never
	// silently retried — callers get ErrUncertainWrite.
	RetryMax int

	// RetryBase/RetryCap shape the capped exponential backoff between
	// attempts (defaults 2ms / 250ms). Seed makes the jitter
	// deterministic for tests; 0 uses a fixed default seed.
	RetryBase time.Duration
	RetryCap  time.Duration
	Seed      int64

	// Redial reopens the transport after a failure. Nil disables
	// reconnects (and with them all retries that need a fresh conn).
	Redial func() (io.ReadWriteCloser, error)
}

// Client is a farmem.Store backed by a protocol connection. Round trips
// are serialized; Close is safe to call concurrently with an in-flight
// round trip (it unblocks the stalled network I/O rather than waiting
// behind it). After a transport failure the client abandons the
// connection — with a Redial it reopens one and retries idempotent
// verbs under capped backoff; without, it fails fast as before.
type Client struct {
	mu      sync.Mutex // serializes round trips; never held by Close
	connMu  sync.Mutex // guards the conn pointer swap vs Close
	conn    io.ReadWriteCloser
	opts    ClientOpts
	rng     *rand.Rand // jitter source; guarded by mu
	closed  atomic.Bool
	broken  error // sticky transport error; guarded by mu
	wantCRC bool  // negotiate checksummed framing on every fresh conn
	crc     bool  // CRC active on the current conn; guarded by mu
	metrics *clientMetrics
}

// ErrClientClosed is returned by calls made after (or unblocked by)
// Close.
var ErrClientClosed = errors.New("remote: client closed")

// Dial connects to a server address with zero-value options (no
// deadline, no retries).
func Dial(addr string) (*Client, error) {
	return DialOpts(addr, ClientOpts{})
}

// DialOpts connects to a server address with fault handling configured.
// When opts.Redial is nil it defaults to redialing addr.
func DialOpts(addr string, opts ClientOpts) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote: dial %s: %w", addr, err)
	}
	faultTolerant := opts.RetryMax > 0 || opts.Timeout > 0
	if opts.Redial == nil && faultTolerant {
		opts.Redial = func() (io.ReadWriteCloser, error) {
			c, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			return c, nil
		}
	}
	c := NewClientConnOpts(conn, opts)
	if faultTolerant {
		// A fault-tolerant session needs checksummed framing: without it a
		// corrupted request decodes as garbage server-side and comes back
		// as a definitive ERR reply, which is never retried. Legacy servers
		// answer the feature ping with an empty OK and the session stays on
		// plain framing. If the handshake itself is garbled, the conn is
		// marked broken so the first operation redials and renegotiates
		// under the normal retry budget.
		c.wantCRC = true
		if crc, err := negotiateCRC(conn, opts.Timeout); err != nil {
			c.broken = err
		} else {
			c.crc = crc
		}
	}
	return c, nil
}

// NewClientConn wraps an existing connection (e.g. one end of net.Pipe).
func NewClientConn(conn io.ReadWriteCloser) *Client { return &Client{conn: conn} }

// NewClientConnOpts wraps an existing connection with fault handling.
func NewClientConnOpts(conn io.ReadWriteCloser, opts ClientOpts) *Client {
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	return &Client{conn: conn, opts: opts, rng: rand.New(rand.NewSource(seed))}
}

// roundTrip sends a request and reads the response, redialing and
// retrying per ClientOpts. Server ERR replies are definitive and never
// retried; transport failures on non-idempotent verbs surface as
// ErrUncertainWrite unless the request provably never hit the wire.
func (c *Client) roundTrip(req rdma.Frame) (rdma.Frame, error) {
	if c.closed.Load() {
		return rdma.Frame{}, ErrClientClosed
	}
	idempotent := req.Op == rdma.OpPing || req.Op == rdma.OpRead
	c.mu.Lock()
	defer c.mu.Unlock()
	for attempt := 0; ; attempt++ {
		if c.closed.Load() {
			return rdma.Frame{}, ErrClientClosed
		}
		sent := false
		resp, err := c.attemptLocked(req, &sent)
		if err == nil {
			return resp, nil
		}
		if errors.Is(err, ErrClientClosed) {
			return rdma.Frame{}, ErrClientClosed
		}
		if c.broken == nil {
			// The connection survived: this is a definitive server-level
			// error (ERR reply), not a transport fault. Never retried.
			return rdma.Frame{}, err
		}
		if !idempotent && sent {
			// The request may have reached the server; replaying could
			// apply the mutation twice. Surface the uncertainty instead.
			if m := c.metrics; m != nil {
				m.uncertainWrites.Inc()
			}
			return rdma.Frame{}, uncertain(err)
		}
		if attempt >= c.opts.RetryMax || c.opts.Redial == nil {
			return rdma.Frame{}, err
		}
		if m := c.metrics; m != nil {
			m.retries.Inc()
		}
		time.Sleep(backoff(c.rng, c.opts.RetryBase, c.opts.RetryCap, attempt))
	}
}

// attemptLocked performs one round-trip attempt (caller holds mu),
// redialing first when the previous connection broke. *sent reports
// whether the request may have reached the wire.
func (c *Client) attemptLocked(req rdma.Frame, sent *bool) (rdma.Frame, error) {
	if c.broken != nil {
		if c.opts.Redial == nil {
			return rdma.Frame{}, fmt.Errorf("remote: connection broken: %w", c.broken)
		}
		if err := c.redialLocked(); err != nil {
			return rdma.Frame{}, err
		}
	}
	*sent = true
	conn := c.conn
	writeFrame, readFrame := rdma.WriteFrame, rdma.ReadFrame
	if c.crc {
		writeFrame, readFrame = rdma.WriteFrameCRC, rdma.ReadFrameCRC
	}
	g := guardIO(conn, c.opts.Timeout)
	start := time.Now()
	err := writeFrame(conn, req)
	var resp rdma.Frame
	if err == nil {
		resp, err = readFrame(conn)
	}
	if err = g.finish(err); err != nil {
		if errors.Is(err, ErrTimeout) {
			if m := c.metrics; m != nil {
				m.timeouts.Inc()
			}
		}
		return rdma.Frame{}, c.breakConn(err)
	}
	if m := c.metrics; m != nil {
		m.bytesOut.Add(req.WireSize())
		m.bytesIn.Add(resp.WireSize())
		m.observe(req.Op, uint64(time.Since(start).Nanoseconds()))
	}
	if resp.Op == rdma.OpErr {
		return rdma.Frame{}, fmt.Errorf("remote: server error: %s", resp.Payload)
	}
	return resp, nil
}

// redialLocked replaces the broken connection with a fresh one (caller
// holds mu). The swap is guarded against a concurrent Close: if the
// client closed while dialing, the new conn is closed and the client
// stays closed.
func (c *Client) redialLocked() error {
	conn, err := c.opts.Redial()
	if err != nil {
		// The dial itself failed: nothing reached the wire, so even
		// writes may retry this. c.broken stays set.
		return fmt.Errorf("remote: redial: %w", err)
	}
	c.connMu.Lock()
	if c.closed.Load() {
		c.connMu.Unlock()
		conn.Close()
		return ErrClientClosed
	}
	old := c.conn
	c.conn = conn
	c.connMu.Unlock()
	if old != nil {
		old.Close()
	}
	c.broken = nil
	c.crc = false
	if c.wantCRC {
		// Re-negotiate checksummed framing on the fresh stream. A failure
		// here happens before the caller's request touches the wire, so
		// even writes may retry it.
		crc, err := negotiateCRC(conn, c.opts.Timeout)
		if err != nil {
			return c.breakConn(err)
		}
		c.crc = crc
	}
	if m := c.metrics; m != nil {
		m.reconnects.Inc()
	}
	return nil
}

// breakConn marks the stream unusable after a transport error (caller
// holds mu) and maps errors caused by a concurrent Close to
// ErrClientClosed.
func (c *Client) breakConn(err error) error {
	if c.closed.Load() {
		err = ErrClientClosed
	}
	c.broken = err
	return err
}

// Ping checks liveness.
func (c *Client) Ping() error {
	resp, err := c.roundTrip(rdma.Frame{Op: rdma.OpPing})
	if err != nil {
		return err
	}
	if resp.Op != rdma.OpOK {
		return fmt.Errorf("remote: unexpected ping response %s", resp.Op)
	}
	return nil
}

// ReadObj implements farmem.Store.
func (c *Client) ReadObj(ds, idx int, dst []byte) error {
	resp, err := c.roundTrip(rdma.EncodeRead(uint32(ds), uint32(idx), uint32(len(dst))))
	if err != nil {
		return err
	}
	if resp.Op != rdma.OpData {
		return fmt.Errorf("remote: unexpected read response %s", resp.Op)
	}
	copy(dst, resp.Payload)
	return nil
}

// WriteObj implements farmem.Store.
func (c *Client) WriteObj(ds, idx int, src []byte) error {
	resp, err := c.roundTrip(rdma.EncodeWrite(uint32(ds), uint32(idx), src))
	if err != nil {
		return err
	}
	if resp.Op != rdma.OpOK {
		return fmt.Errorf("remote: unexpected write response %s", resp.Op)
	}
	return nil
}

// Close closes the underlying connection. It never waits behind an
// in-flight round trip: closing the current connection unblocks any
// goroutine stalled in network I/O, which then returns ErrClientClosed.
// A concurrent redial observes the closed flag under connMu and closes
// its fresh connection too. Close is idempotent and safe for concurrent
// use.
func (c *Client) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	c.connMu.Lock()
	defer c.connMu.Unlock()
	return c.conn.Close()
}
