// Package remote implements the remote memory node: a server that owns
// the far tier of objects keyed by (data structure, object index), and a
// client that implements farmem.Store over the rdma wire protocol. This
// is the process pair the paper runs on two CloudLab machines — memory
// server on one, application on the other.
//
// The server is concurrency-safe (one goroutine per connection); the
// client serializes requests per connection, matching the synchronous
// fault path of the runtime.
package remote

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cards/internal/obs"
	"cards/internal/rdma"
)

// ObjectStore is the server-side keyed object storage.
type ObjectStore struct {
	mu sync.RWMutex
	m  map[[2]uint32][]byte
}

// NewObjectStore creates an empty store.
func NewObjectStore() *ObjectStore {
	return &ObjectStore{m: make(map[[2]uint32][]byte)}
}

// Read copies the object into a fresh buffer of the requested size
// (zero-filled when absent or shorter).
func (s *ObjectStore) Read(ds, idx, size uint32) []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]byte, size)
	copy(out, s.m[[2]uint32{ds, idx}])
	return out
}

// Write stores a copy of data.
func (s *ObjectStore) Write(ds, idx uint32, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	s.m[[2]uint32{ds, idx}] = cp
	s.mu.Unlock()
}

// Len returns the number of stored objects.
func (s *ObjectStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Server serves the far-memory protocol on a listener.
type Server struct {
	Store *ObjectStore

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	wg     sync.WaitGroup

	reg     *obs.Registry
	tracer  *obs.Tracer
	metrics *serverMetrics
	nextCon atomic.Int64
}

// NewServer creates a server with an empty store and a private metric
// registry.
func NewServer() *Server { return NewServerWith(nil, nil) }

// NewServerWith creates a server publishing into reg (nil for a private
// registry) and, when tr is non-nil, emitting one trace span per served
// request into the ring.
func NewServerWith(reg *obs.Registry, tr *obs.Tracer) *Server {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Server{
		Store:   NewObjectStore(),
		reg:     reg,
		tracer:  tr,
		metrics: newServerMetrics(reg),
	}
}

// Listen starts accepting on addr (e.g. "127.0.0.1:0") and returns the
// bound address. Serving happens on background goroutines.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
		}()
	}
}

// ServeConn handles one connection until EOF or error. Exported so tests
// and in-process pairs (net.Pipe) can drive it directly.
func (s *Server) ServeConn(conn io.ReadWriteCloser) {
	defer conn.Close()
	connID := int(s.nextCon.Add(1))
	s.metrics.connsTotal.Inc()
	s.metrics.conns.Add(1)
	defer s.metrics.conns.Add(-1)
	for {
		f, err := rdma.ReadFrame(conn)
		if err != nil {
			return
		}
		s.metrics.bytesIn.Add(f.WireSize())
		s.metrics.inflight.Add(1)
		start := time.Now()
		var startUS uint64
		if s.tracer != nil {
			startUS = s.tracer.Now()
		}
		var resp rdma.Frame
		var ds, idx int64
		switch f.Op {
		case rdma.OpPing:
			resp = rdma.Frame{Op: rdma.OpOK}
		case rdma.OpRead:
			req, err := rdma.DecodeRead(f.Payload)
			if err != nil {
				resp = rdma.ErrFrame(err.Error())
				break
			}
			ds, idx = int64(req.DS), int64(req.Idx)
			resp = rdma.Frame{Op: rdma.OpData, Payload: s.Store.Read(req.DS, req.Idx, req.Size)}
		case rdma.OpWrite:
			req, err := rdma.DecodeWrite(f.Payload)
			if err != nil {
				resp = rdma.ErrFrame(err.Error())
				break
			}
			ds, idx = int64(req.DS), int64(req.Idx)
			s.Store.Write(req.DS, req.Idx, req.Data)
			resp = rdma.Frame{Op: rdma.OpOK}
		default:
			resp = rdma.ErrFrame(fmt.Sprintf("unexpected op %s", f.Op))
		}
		if resp.Op == rdma.OpErr {
			s.metrics.errors.Inc()
		} else {
			s.observeVerb(f.Op, connID, start, startUS, ds, idx)
		}
		s.metrics.inflight.Add(-1)
		s.metrics.bytesOut.Add(resp.WireSize())
		if err := rdma.WriteFrame(conn, resp); err != nil {
			return
		}
	}
}

// Counts returns (reads, writes) served. The values are the registry's
// cards_remote_reads_total / writes_total counters.
func (s *Server) Counts() (uint64, uint64) {
	return s.metrics.reads.Load(), s.metrics.writes.Load()
}

// Close stops the listener and waits for connections to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

// Client is a farmem.Store backed by a protocol connection.
type Client struct {
	mu      sync.Mutex
	conn    io.ReadWriteCloser
	metrics *clientMetrics
}

// Dial connects to a server address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote: dial %s: %w", addr, err)
	}
	return &Client{conn: conn}, nil
}

// NewClientConn wraps an existing connection (e.g. one end of net.Pipe).
func NewClientConn(conn io.ReadWriteCloser) *Client { return &Client{conn: conn} }

// roundTrip sends a request and reads the response.
func (c *Client) roundTrip(req rdma.Frame) (rdma.Frame, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	start := time.Now()
	if err := rdma.WriteFrame(c.conn, req); err != nil {
		return rdma.Frame{}, err
	}
	resp, err := rdma.ReadFrame(c.conn)
	if err != nil {
		return rdma.Frame{}, err
	}
	if m := c.metrics; m != nil {
		m.bytesOut.Add(req.WireSize())
		m.bytesIn.Add(resp.WireSize())
		m.observe(req.Op, uint64(time.Since(start).Nanoseconds()))
	}
	if resp.Op == rdma.OpErr {
		return rdma.Frame{}, fmt.Errorf("remote: server error: %s", resp.Payload)
	}
	return resp, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	resp, err := c.roundTrip(rdma.Frame{Op: rdma.OpPing})
	if err != nil {
		return err
	}
	if resp.Op != rdma.OpOK {
		return fmt.Errorf("remote: unexpected ping response %s", resp.Op)
	}
	return nil
}

// ReadObj implements farmem.Store.
func (c *Client) ReadObj(ds, idx int, dst []byte) error {
	resp, err := c.roundTrip(rdma.EncodeRead(uint32(ds), uint32(idx), uint32(len(dst))))
	if err != nil {
		return err
	}
	if resp.Op != rdma.OpData {
		return fmt.Errorf("remote: unexpected read response %s", resp.Op)
	}
	copy(dst, resp.Payload)
	return nil
}

// WriteObj implements farmem.Store.
func (c *Client) WriteObj(ds, idx int, src []byte) error {
	resp, err := c.roundTrip(rdma.EncodeWrite(uint32(ds), uint32(idx), src))
	if err != nil {
		return err
	}
	if resp.Op != rdma.OpOK {
		return fmt.Errorf("remote: unexpected write response %s", resp.Op)
	}
	return nil
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }
